//! Distribution stress tests: larger primes, prime powers, and the
//! structural theorems connecting `R_k` / `Q_i` / owner maps.

use syrk_core::{affine_plane_lines, footprint, TriangleBlockDist, TwoDOwner};

#[test]
fn large_prime_distributions_validate() {
    for c in [13usize, 17, 19] {
        let d = TriangleBlockDist::new(c);
        assert!(d.validate().is_ok(), "c = {c}");
        assert_eq!(d.p(), c * (c + 1));
        // Block count bookkeeping: Σ_k |blocks_of(k)| = c²(c²−1)/2.
        let total: usize = (0..d.p()).map(|k| d.blocks_of(k).len()).sum();
        let c2 = c * c;
        assert_eq!(total, c2 * (c2 - 1) / 2);
    }
}

#[test]
fn gf16_distribution_validates() {
    let d = TriangleBlockDist::new_prime_power(16).expect("GF(16) exists");
    assert!(d.validate().is_ok());
    assert_eq!(d.p(), 16 * 17);
    assert_eq!(d.num_blocks(), 256);
}

#[test]
fn every_pair_of_row_blocks_shares_exactly_one_owner() {
    // The defining property (a.k.a. pair coverage of the affine plane):
    // for any i > j there is exactly one k with {i, j} ⊆ R_k.
    for (label, d) in [
        ("cyclic c=5", TriangleBlockDist::new(5)),
        ("affine c=4", TriangleBlockDist::new_prime_power(4).unwrap()),
    ] {
        let c2 = d.num_blocks();
        for i in 0..c2 {
            for j in 0..i {
                let owners: Vec<usize> = (0..d.p())
                    .filter(|&k| {
                        let rk = d.r_set(k);
                        rk.contains(&i) && rk.contains(&j)
                    })
                    .collect();
                assert_eq!(owners.len(), 1, "{label}: pair ({i},{j})");
                assert_eq!(owners[0], d.owner_of(i, j), "{label}");
            }
        }
    }
}

#[test]
fn q_sets_partition_work_evenly() {
    // Every block index appears in exactly c+1 R_k sets, so the conformal
    // A distribution stores each element exactly once.
    for d in [
        TriangleBlockDist::new(7),
        TriangleBlockDist::new_prime_power(8).unwrap(),
    ] {
        let c = d.c();
        let mut appearances = vec![0usize; d.num_blocks()];
        for k in 0..d.p() {
            for &i in d.r_set(k) {
                appearances[i] += 1;
            }
        }
        assert!(appearances.iter().all(|&a| a == c + 1), "c = {c}");
    }
}

#[test]
fn affine_lines_have_the_projective_structure() {
    // Lines through a fixed point form a pencil of q+1 lines covering all
    // other q²−1 points exactly once.
    let q = 5;
    let lines = affine_plane_lines(q).unwrap();
    let pt = 7usize;
    let through: Vec<&Vec<usize>> = lines.iter().filter(|l| l.contains(&pt)).collect();
    assert_eq!(through.len(), q + 1);
    let mut covered = vec![0usize; q * q];
    for l in through {
        for &x in l {
            if x != pt {
                covered[x] += 1;
            }
        }
    }
    covered[pt] = 1;
    assert!(covered.iter().all(|&c| c == 1));
}

#[test]
fn affine_footprint_balances_like_cyclic() {
    // Lemma 5 + imbalance bounds hold on an affine-plane distribution
    // exactly as on the cyclic one.
    let d = TriangleBlockDist::new_prime_power(4).unwrap();
    let (n1, n2) = (16usize, 6usize);
    let fp = footprint(n1, n2, &TwoDOwner::new(&d, n1));
    assert_eq!(fp.total_mults(), (n1 * (n1 - 1) * n2 / 2) as u64);
    assert!(fp.check_lemma5(n1, n2).is_ok());
    let max = *fp.mults.iter().max().unwrap() as f64;
    let avg = fp.total_mults() as f64 / d.p() as f64;
    assert!(max / avg < 1.6, "imbalance {}", max / avg);
}
