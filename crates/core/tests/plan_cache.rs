//! Regression tests for the plan cache under adversarial traffic:
//! incremental (never wholesale) eviction past `PLAN_CACHE_CAP`, and
//! stampede-safe miss coalescing for concurrent cold lookups.
//!
//! These live in their own integration-test binary so the process-global
//! cache and its telemetry counters are touched only by this file; the
//! `cache_lock` below serializes the tests within it, which makes every
//! counter-delta assertion exact rather than monotone.

use std::sync::{Barrier, Mutex, MutexGuard};

use syrk_core::{plan, plan_cache_len, PLAN_CACHE_CAP};
use syrk_machine::telemetry::registry::{snapshot, MetricsSnapshot};

fn cache_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn counter(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.counter(name).unwrap_or(0)
}

#[test]
fn concurrent_cold_key_hammer_records_exactly_one_miss() {
    let _serial = cache_lock();
    // A key no other test in this binary (or the sweep below, which uses
    // p <= 64) touches.
    let (n1, n2, p) = (12_345, 679, 211);
    let threads = 16;
    let before = snapshot();
    let barrier = Barrier::new(threads);
    let results: Vec<_> = std::thread::scope(|s| {
        (0..threads)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait();
                    plan(n1, n2, p)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("planner thread panicked"))
            .collect()
    });
    let after = snapshot();
    let misses =
        counter(&after, "syrk_plan_cache_misses") - counter(&before, "syrk_plan_cache_misses");
    let hits = counter(&after, "syrk_plan_cache_hits") - counter(&before, "syrk_plan_cache_hits");
    assert_eq!(misses, 1, "concurrent cold misses must coalesce into one");
    assert_eq!(
        hits,
        threads as u64 - 1,
        "every coalesced waiter is served from the one computation"
    );
    // Everyone saw the same bitwise-identical plan.
    let first = &results[0];
    for r in &results {
        assert_eq!(r.plan, first.plan);
        assert_eq!(r.predicted_cost.to_bits(), first.predicted_cost.to_bits());
        assert_eq!(r.bound.to_bits(), first.bound.to_bits());
    }
}

#[test]
fn sweep_past_cap_evicts_incrementally_and_keeps_hit_rate() {
    let _serial = cache_lock();
    // Sweep strictly more distinct keys than the cap. Keys are cheap to
    // plan (small p) and disjoint from the hammer test's key space.
    let extra = 512;
    let keys: Vec<(usize, usize, usize)> = (0..PLAN_CACHE_CAP + extra)
        .map(|i| (2 + i, 1 + (i % 97), 1 + (i % 64)))
        .collect();
    let before = snapshot();
    for &(n1, n2, p) in &keys {
        plan(n1, n2, p);
    }
    let mid = snapshot();
    let sweep_misses =
        counter(&mid, "syrk_plan_cache_misses") - counter(&before, "syrk_plan_cache_misses");
    assert_eq!(sweep_misses, keys.len() as u64, "distinct keys all miss");
    // Crossing the cap evicted *incrementally*: some entries went, but
    // the cache was never wiped — a warm working set survives.
    let evictions =
        counter(&mid, "syrk_plan_cache_evictions") - counter(&before, "syrk_plan_cache_evictions");
    assert!(evictions > 0, "the sweep must cross the cap and evict");
    assert!(
        evictions < keys.len() as u64 / 2,
        "eviction must be a bounded fraction, not a wipe ({evictions} evicted)"
    );
    let len = plan_cache_len();
    assert!(len <= PLAN_CACHE_CAP, "cache stays bounded ({len})");
    assert!(
        len >= PLAN_CACHE_CAP / 2,
        "cache must retain a warm working set after eviction ({len})"
    );
    // The most recently inserted keys survive FIFO eviction, so
    // re-querying them is all hits: the hit rate never drops to zero.
    let probes = &keys[keys.len() - 256..];
    for &(n1, n2, p) in probes {
        plan(n1, n2, p);
    }
    let after = snapshot();
    let probe_hits =
        counter(&after, "syrk_plan_cache_hits") - counter(&mid, "syrk_plan_cache_hits");
    let probe_misses =
        counter(&after, "syrk_plan_cache_misses") - counter(&mid, "syrk_plan_cache_misses");
    assert_eq!(
        probe_hits,
        probes.len() as u64,
        "recent keys must still be cached after crossing the cap"
    );
    assert_eq!(probe_misses, 0, "no recompute storm for the warm tail");
}
