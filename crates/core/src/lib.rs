//! # syrk-core — communication-optimal parallel SYRK
//!
//! Executable reproduction of *Parallel Memory-Independent Communication
//! Bounds for SYRK* (Al Daas, Ballard, Grigori, Kumar, Rouse — SPAA '23):
//!
//! * [`syrk_lower_bound`] — Theorem 1's three-case memory-independent
//!   bound, plus the matching GEMM bound ([`gemm_lower_bound`]) for the
//!   headline factor-of-2 comparison;
//! * [`TriangleBlockDist`] — the triangle block distribution of the
//!   symmetric output (§5.2.1, eqs. (4)–(8)), with runtime validation;
//! * [`syrk_1d`], [`syrk_2d`], [`syrk_3d`] — Algorithms 1–3, running on
//!   the simulated α-β-γ machine of `syrk-machine` with exact word
//!   counting;
//! * [`gemm_1d`]/[`gemm_2d`]/[`gemm_3d`]/[`scalapack_syrk_2d`] —
//!   communication-optimal GEMM and a ScaLAPACK-style SYRK baseline;
//! * [`plan`] — the §5.4 processor-grid selection.
//!
//! ```
//! use syrk_core::{syrk_2d, syrk_lower_bound};
//! use syrk_dense::{seeded_matrix, syrk_full_reference, max_abs_diff};
//! use syrk_machine::CostModel;
//!
//! // Tall-skinny SYRK on P = c(c+1) = 12 simulated processors.
//! let a = seeded_matrix::<f64>(36, 4, 0);
//! let run = syrk_2d(&a, 3, CostModel::bandwidth_only());
//! assert!(max_abs_diff(&run.c, &syrk_full_reference(&a)) < 1e-10);
//!
//! // Measured words at the busiest rank ≈ the Theorem 1 bound.
//! let bound = syrk_lower_bound(36, 4, 12).communicated();
//! let measured = run.cost.max_words_sent() as f64;
//! assert!(measured < 1.3 * bound.max(1.0) + 36.0);
//! ```

#![warn(missing_docs)]

mod abft;
mod algorithms;
mod attribution;
mod bounds;
mod coverage;
mod dist;
mod error;
mod planner;
mod primes;
mod recovery;

pub use abft::{AbftChecksums, AbftViolation, ABFT_CHECKS, ABFT_DETECTS, PHASE_ABFT};
pub use algorithms::{
    assemble_c, gemm_1d, gemm_2d, gemm_3d, scalapack_syrk_2d, symm_2d, symm_reference, syr2k_1d,
    syr2k_2d, syrk_1d, syrk_1d_traced, syrk_1d_with, syrk_2d, syrk_2d_limited, syrk_2d_padded,
    syrk_2d_traced, syrk_3d, syrk_3d_traced, try_syrk_1d, try_syrk_1d_abft, try_syrk_1d_traced,
    try_syrk_2d, try_syrk_2d_abft, try_syrk_2d_traced, try_syrk_3d, try_syrk_3d_traced, DiagBlock,
    LocalOutput, OffDiagBlock, SymmRunResult, SyrkRunResult,
};
pub use attribution::{
    attribute_bounds, AttributionReport, TermAttribution, PHASE_ALLGATHER_A, PHASE_LOCAL_GEMM,
    PHASE_LOCAL_SYRK, PHASE_REDUCE_SCATTER_C,
};
pub use bounds::{
    alg1d_predicted_cost, alg2d_predicted_cost, alg2d_tight_cost, alg3d_a_term, alg3d_c_term,
    alg3d_leading_a_term, alg3d_leading_c_term, alg3d_leading_cost, alg3d_predicted_cost,
    gemm_lower_bound, syrk_effective_bound, syrk_lower_bound, syrk_memory_dependent_bound,
    thm1_case1_c_term, thm1_case2_a_term, thm1_case2_c_term, BoundCase, SyrkBound,
};
pub use coverage::{footprint, Footprint, IterationOwner, OneDOwner, ThreeDOwner, TwoDOwner};
pub use dist::{affine_plane_lines, match_diagonals, ConformalADist, Gf, TriangleBlockDist};
pub use error::SyrkError;
pub use planner::{
    candidate_plans, constructible_orders, ideal_case3_grid, nearest_triangle_c, plan,
    plan_cache_len, predicted_cost, Plan, PlanError, RankedPlan, PLAN_CACHE_CAP,
};
pub use primes::{is_prime, largest_triangle_c_at_most, triangle_c_for, valid_grid_sizes};
pub use recovery::{
    run_with_recovery, AttemptOutcome, RecoveryAttempt, RecoveryPolicy, RecoveryReport,
    RECOVERY_ATTEMPTS, RECOVERY_RANKS_LOST,
};
