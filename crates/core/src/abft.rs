//! Algorithm-based fault tolerance (ABFT) for `C = A·Aᵀ`.
//!
//! Huang–Abraham-style checksum verification: because every entry of `C`
//! is a bilinear function of `A`, the row sums of `C` are themselves a
//! product the verifier can compute independently,
//!
//! ```text
//! C·1 = A·(Aᵀ·1)        (plain row checksums)
//! C·ω = A·(Aᵀ·ω),  ω_i = i + 1   (weighted checksums)
//! ```
//!
//! at `O(n1·n2)` cost — asymptotically free next to the `O(n1²·n2)`
//! multiply. A corrupt-but-undetected entry `C[i][j] += δ` shifts row
//! `i`'s plain checksum by `δ` and its weighted checksum by `(j+1)·δ`,
//! so the *ratio of residuals localizes the corrupted column*. The same
//! identity restricted to a block pair verifies one distributed block:
//! `C_ij·1 = A_i·(A_jᵀ·1)`, which is what the 1D/2D SYRK bodies check
//! per-rank before returning their contribution.
//!
//! Checks and detections are metered as `syrk_abft_checks` /
//! `syrk_abft_detects`; in-run check flops are charged under the
//! [`PHASE_ABFT`] phase so verification overhead is visible in the phase
//! table without polluting the Theorem 1 accounting.

use syrk_dense::{Diag, Matrix, PackedLower};
use syrk_telemetry::LazyCounter;

/// Checksum verifications performed (block-level and full-matrix).
pub static ABFT_CHECKS: LazyCounter = LazyCounter::new("syrk_abft_checks");
/// Checksum verifications that detected corruption.
pub static ABFT_DETECTS: LazyCounter = LazyCounter::new("syrk_abft_detects");

/// Phase under which in-run ABFT verification flops are charged.
pub const PHASE_ABFT: &str = "abft:verify";

/// Relative tolerance scale for checksum comparisons. Checksums and the
/// checked values are accumulated in different orders (SIMD kernels vs.
/// plain sums), so the residual of an honest result grows like
/// `n·ε·scale`; 1e-9 relative sits orders of magnitude above that for
/// every size this repo simulates, and orders below any real corruption.
const REL_TOL: f64 = 1e-9;

/// A detected checksum violation, localized as far as the residuals
/// allow.
#[derive(Debug, Clone, PartialEq)]
pub struct AbftViolation {
    /// Row of `C` whose checksum failed.
    pub row: usize,
    /// Column localized from the weighted/plain residual ratio, when the
    /// plain residual was large enough to divide by.
    pub col: Option<usize>,
    /// Plain-checksum residual `Σ_j C[row][j] − (A·(Aᵀ·1))[row]`.
    pub residual: f64,
}

impl std::fmt::Display for AbftViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "row {} checksum off by {:.3e}", self.row, self.residual)?;
        match self.col {
            Some(c) => write!(f, " (localized to column {c})"),
            None => write!(f, " (column not localizable)"),
        }
    }
}

/// Row and weighted checksums of `C = A·Aᵀ`, computed from `A` alone.
///
/// Build once from the input, verify any claimed `C` against it.
#[derive(Debug, Clone)]
pub struct AbftChecksums {
    /// Expected `C·1` (length `n1`).
    row: Vec<f64>,
    /// Expected `C·ω` with `ω_i = i + 1` (length `n1`).
    weighted: Vec<f64>,
}

impl AbftChecksums {
    /// Compute both checksum vectors from `A` in `O(n1·n2)`.
    pub fn new(a: &Matrix<f64>) -> Self {
        let (n1, n2) = a.shape();
        // s1 = Aᵀ·1, s2 = Aᵀ·ω.
        let mut s1 = vec![0.0f64; n2];
        let mut s2 = vec![0.0f64; n2];
        for i in 0..n1 {
            let w = (i + 1) as f64;
            for (j, &v) in a.row(i).iter().enumerate() {
                s1[j] += v;
                s2[j] += w * v;
            }
        }
        let dot = |row: &[f64], s: &[f64]| row.iter().zip(s).map(|(&x, &y)| x * y).sum::<f64>();
        let row = (0..n1).map(|i| dot(a.row(i), &s1)).collect();
        let weighted = (0..n1).map(|i| dot(a.row(i), &s2)).collect();
        AbftChecksums { row, weighted }
    }

    /// Verify a claimed `C` against the checksums. Returns the first
    /// violating row (lowest index) with its localized column, or `Ok`
    /// when every row checks out.
    pub fn verify(&self, c: &Matrix<f64>) -> Result<(), AbftViolation> {
        assert_eq!(c.rows(), self.row.len(), "C has the wrong dimension");
        ABFT_CHECKS.inc();
        let n = c.rows();
        for i in 0..n {
            let mut plain = 0.0f64;
            let mut weighted = 0.0f64;
            let mut scale = 0.0f64;
            for (j, &v) in c.row(i).iter().enumerate() {
                plain += v;
                weighted += (j + 1) as f64 * v;
                scale += v.abs();
            }
            let residual = plain - self.row[i];
            let tol = REL_TOL * scale.max(self.row[i].abs()).max(1.0);
            if residual.abs() > tol {
                ABFT_DETECTS.inc();
                let wres = weighted - self.weighted[i];
                let col = localize(wres, residual, n);
                return Err(AbftViolation {
                    row: i,
                    col,
                    residual,
                });
            }
        }
        Ok(())
    }
}

/// Localize the corrupted column from the weighted/plain residual ratio:
/// a single corruption `δ` at column `j` gives `wres/res = j + 1`.
fn localize(wres: f64, res: f64, n: usize) -> Option<usize> {
    if res == 0.0 || !res.is_finite() || !wres.is_finite() {
        return None;
    }
    let col = (wres / res).round() - 1.0;
    (col >= 0.0 && col < n as f64).then_some(col as usize)
}

/// Flops charged for one block check `C_blk·1` vs `A_i·(A_jᵀ·1)`:
/// the column-sum of `A_j`, the product with `A_i`, and the row sums of
/// the checked block.
pub(crate) fn block_check_flops(rows_i: usize, rows_j: usize, n2: usize) -> u64 {
    (rows_j * n2 + 2 * rows_i * n2 + rows_i * rows_j) as u64
}

/// Expected row checksums of the block product `A_i·A_jᵀ`, i.e.
/// `A_i·(A_jᵀ·1)`.
fn expected_block_rowsums(ai: &Matrix<f64>, aj: &Matrix<f64>) -> Vec<f64> {
    let n2 = ai.cols();
    debug_assert_eq!(aj.cols(), n2);
    let mut s = vec![0.0f64; n2];
    for r in 0..aj.rows() {
        for (j, &v) in aj.row(r).iter().enumerate() {
            s[j] += v;
        }
    }
    (0..ai.rows())
        .map(|r| ai.row(r).iter().zip(&s).map(|(&x, &y)| x * y).sum())
        .collect()
}

/// Check one row's sum against its expectation with a scale-aware
/// tolerance; `Err` carries a human-readable detail string.
fn check_row(
    what: &str,
    block: (usize, usize),
    row: usize,
    got: f64,
    scale: f64,
    expect: f64,
) -> Result<(), String> {
    let residual = got - expect;
    let tol = REL_TOL * scale.max(expect.abs()).max(1.0);
    if residual.abs() > tol {
        ABFT_DETECTS.inc();
        Err(format!(
            "{what} block ({}, {}) row {row} checksum off by {residual:.3e}",
            block.0, block.1
        ))
    } else {
        Ok(())
    }
}

/// Verify an off-diagonal block `C_ij = A_i·A_jᵀ` row by row.
pub(crate) fn verify_offdiag_block(
    ai: &Matrix<f64>,
    aj: &Matrix<f64>,
    cij: &Matrix<f64>,
    bi: usize,
    bj: usize,
) -> Result<(), String> {
    ABFT_CHECKS.inc();
    let expect = expected_block_rowsums(ai, aj);
    for (r, &want) in expect.iter().enumerate().take(cij.rows()) {
        let (mut sum, mut scale) = (0.0f64, 0.0f64);
        for &v in cij.row(r) {
            sum += v;
            scale += v.abs();
        }
        check_row("off-diagonal", (bi, bj), r, sum, scale, want)?;
    }
    Ok(())
}

/// Verify a diagonal block `C_ii = A_i·A_iᵀ` stored as an inclusive
/// packed lower triangle, without expanding it: entry `(r, s)` with
/// `s ≤ r` contributes to row `r`'s sum and (if off-diagonal) to row
/// `s`'s by symmetry.
pub(crate) fn verify_diag_block(
    ai: &Matrix<f64>,
    packed: &PackedLower<f64>,
    bi: usize,
) -> Result<(), String> {
    ABFT_CHECKS.inc();
    debug_assert_eq!(packed.diag(), Diag::Inclusive);
    let n = packed.n();
    let expect = expected_block_rowsums(ai, ai);
    let mut sums = vec![0.0f64; n];
    let mut scales = vec![0.0f64; n];
    let mut it = packed.as_slice().iter();
    for r in 0..n {
        for s in 0..=r {
            let v = *it.next().expect("packed length matches n(n+1)/2");
            sums[r] += v;
            scales[r] += v.abs();
            if s != r {
                sums[s] += v;
                scales[s] += v.abs();
            }
        }
    }
    for r in 0..n {
        check_row("diagonal", (bi, bi), r, sums[r], scales[r], expect[r])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use syrk_dense::{seeded_matrix, syrk_full_reference, syrk_packed_new};

    #[test]
    fn honest_c_passes_full_verification() {
        let a = seeded_matrix::<f64>(17, 9, 3);
        let c = syrk_full_reference(&a);
        AbftChecksums::new(&a).verify(&c).expect("honest C");
    }

    #[test]
    fn corruption_is_detected_and_localized() {
        let a = seeded_matrix::<f64>(17, 9, 3);
        let mut c = syrk_full_reference(&a);
        c[(5, 11)] += 0.5;
        let v = AbftChecksums::new(&a).verify(&c).unwrap_err();
        assert_eq!(v.row, 5);
        assert_eq!(v.col, Some(11));
        assert!((v.residual - 0.5).abs() < 1e-6);
    }

    #[test]
    fn block_checks_pass_honest_blocks_and_flag_tampered_ones() {
        let a = seeded_matrix::<f64>(12, 7, 4);
        let ai = a.block_owned(0, 0, 5, 7);
        let aj = a.block_owned(5, 0, 7, 7);
        let mut cij = syrk_dense::mul_nt(&ai, &aj);
        verify_offdiag_block(&ai, &aj, &cij, 1, 0).expect("honest block");
        cij[(2, 3)] -= 1.0;
        let detail = verify_offdiag_block(&ai, &aj, &cij, 1, 0).unwrap_err();
        assert!(detail.contains("row 2"), "{detail}");

        let packed = syrk_packed_new(&ai, Diag::Inclusive);
        verify_diag_block(&ai, &packed, 0).expect("honest diagonal");
        let mut bad = packed.as_slice().to_vec();
        bad[3] += 2.0;
        let tampered = PackedLower::from_vec(5, Diag::Inclusive, bad);
        verify_diag_block(&ai, &tampered, 0).unwrap_err();
    }

    #[test]
    fn checks_and_detects_are_metered() {
        use syrk_telemetry::registry;
        let before = registry::snapshot();
        let (c0, d0) = (
            before.counter("syrk_abft_checks").unwrap_or(0),
            before.counter("syrk_abft_detects").unwrap_or(0),
        );
        let a = seeded_matrix::<f64>(8, 5, 1);
        let mut c = syrk_full_reference(&a);
        AbftChecksums::new(&a).verify(&c).unwrap();
        c[(1, 2)] += 1.0;
        AbftChecksums::new(&a).verify(&c).unwrap_err();
        let after = registry::snapshot();
        assert!(after.counter("syrk_abft_checks").unwrap() >= c0 + 2);
        assert!(after.counter("syrk_abft_detects").unwrap() > d0);
    }
}
