//! Iteration-space coverage: map every scalar multiplication of the
//! strict-lower SYRK computation to the rank that performs it under each
//! algorithm, and machine-check the §4.2 (Lemma 5) access bounds against
//! those assignments.
//!
//! This is the executable bridge between the algorithms (§5) and the
//! lower-bound argument (§4): the sets `F` of Theorem 1's proof are
//! constructed *from the real algorithms* and their projections
//! `φ_i(F) ∪ φ_j(F)` (elements of `A` accessed) and `φ_k(F)` (entries of
//! `C` contributed to) are measured directly.

use std::collections::HashSet;

use crate::dist::TriangleBlockDist;
use syrk_dense::Partition1D;

/// The owner of each strict-lower iteration point under an algorithm's
/// partition of the computation.
pub trait IterationOwner {
    /// Number of ranks.
    fn ranks(&self) -> usize;
    /// The rank performing the multiplication `A[i,t]·A[j,t] → C[i,j]`
    /// (requires `j < i < n1`, `t < n2`).
    fn owner(&self, i: usize, j: usize, t: usize) -> usize;
}

/// Algorithm 1: the `n2` dimension is partitioned, so the owner depends
/// only on the column `t`.
pub struct OneDOwner {
    cols: Partition1D,
}

impl OneDOwner {
    /// Owner map for `syrk_1d` with `p` ranks on an `n1 × n2` input.
    pub fn new(n2: usize, p: usize) -> Self {
        OneDOwner {
            cols: Partition1D::new(n2, p),
        }
    }
}

impl IterationOwner for OneDOwner {
    fn ranks(&self) -> usize {
        self.cols.parts()
    }
    fn owner(&self, _i: usize, _j: usize, t: usize) -> usize {
        self.cols.owner(t)
    }
}

/// Algorithm 2: both `n1` dimensions partitioned by the triangle blocks;
/// the owner depends only on `(block(i), block(j))`.
pub struct TwoDOwner<'d> {
    dist: &'d TriangleBlockDist,
    rows: Partition1D,
}

impl<'d> TwoDOwner<'d> {
    /// Owner map for `syrk_2d` on an `n1`-row input.
    pub fn new(dist: &'d TriangleBlockDist, n1: usize) -> Self {
        TwoDOwner {
            dist,
            rows: Partition1D::new(n1, dist.num_blocks()),
        }
    }
}

impl IterationOwner for TwoDOwner<'_> {
    fn ranks(&self) -> usize {
        self.dist.p()
    }
    fn owner(&self, i: usize, j: usize, _t: usize) -> usize {
        let (bi, bj) = (self.rows.owner(i), self.rows.owner(j));
        if bi == bj {
            self.dist.diag_owner_of(bi)
        } else {
            // j < i does not imply bj < bi across uneven blocks, but the
            // row partition is monotone, so bj ≤ bi here.
            self.dist.owner_of(bi.max(bj), bi.min(bj))
        }
    }
}

/// Algorithm 3: the 2D owner within the slice selected by the column.
pub struct ThreeDOwner<'d> {
    two_d: TwoDOwner<'d>,
    cols: Partition1D,
}

impl<'d> ThreeDOwner<'d> {
    /// Owner map for `syrk_3d` (world rank = `k + ℓ·p1`, column-major).
    pub fn new(dist: &'d TriangleBlockDist, n1: usize, n2: usize, p2: usize) -> Self {
        ThreeDOwner {
            two_d: TwoDOwner::new(dist, n1),
            cols: Partition1D::new(n2, p2),
        }
    }
}

impl IterationOwner for ThreeDOwner<'_> {
    fn ranks(&self) -> usize {
        self.two_d.ranks() * self.cols.parts()
    }
    fn owner(&self, i: usize, j: usize, t: usize) -> usize {
        let k = self.two_d.owner(i, j, t);
        let l = self.cols.owner(t);
        k + l * self.two_d.ranks()
    }
}

/// Per-rank footprint of an iteration assignment: the quantities the
/// §4 lower-bound argument reasons about.
#[derive(Debug, Clone)]
pub struct Footprint {
    /// Scalar multiplications (strict-lower) performed by each rank.
    pub mults: Vec<u64>,
    /// Distinct elements of `A` each rank's multiplications touch
    /// (`|φ_i(F) ∪ φ_j(F)|`).
    pub a_elements: Vec<usize>,
    /// Distinct strict-lower entries of `C` each rank contributes to
    /// (`|φ_k(F)|`).
    pub c_entries: Vec<usize>,
}

/// Enumerate the strict prism and attribute every point to its owner.
/// Panics if an owner is out of range. Exhaustive — use small sizes.
pub fn footprint(n1: usize, n2: usize, owner: &impl IterationOwner) -> Footprint {
    let p = owner.ranks();
    let mut mults = vec![0u64; p];
    let mut a_sets: Vec<HashSet<(usize, usize)>> = vec![HashSet::new(); p];
    let mut c_sets: Vec<HashSet<(usize, usize)>> = vec![HashSet::new(); p];
    for i in 0..n1 {
        for j in 0..i {
            for t in 0..n2 {
                let k = owner.owner(i, j, t);
                assert!(k < p, "owner {k} out of range at ({i},{j},{t})");
                mults[k] += 1;
                a_sets[k].insert((i, t));
                a_sets[k].insert((j, t));
                c_sets[k].insert((i, j));
            }
        }
    }
    Footprint {
        mults,
        a_elements: a_sets.into_iter().map(|s| s.len()).collect(),
        c_entries: c_sets.into_iter().map(|s| s.len()).collect(),
    }
}

impl Footprint {
    /// Total multiplications across ranks — must be `n1(n1−1)n2/2` for a
    /// complete assignment (each point owned exactly once, by
    /// construction of [`footprint`]).
    pub fn total_mults(&self) -> u64 {
        self.mults.iter().sum()
    }

    /// Check Lemma 5 on every rank doing at least a `1/P` share: it must
    /// access ≥ `n1n2/2P` elements of `A` and contribute to ≥
    /// `n1(n1−1)/2P` entries of strict-lower `C`. Returns the offending
    /// rank if any.
    pub fn check_lemma5(&self, n1: usize, n2: usize) -> Result<(), usize> {
        let p = self.mults.len() as f64;
        let total = self.total_mults() as f64;
        for (k, &m) in self.mults.iter().enumerate() {
            if (m as f64) >= total / p {
                let a_min = (n1 * n2) as f64 / (2.0 * p);
                let c_min = (n1 * (n1 - 1)) as f64 / (2.0 * p);
                if (self.a_elements[k] as f64) < a_min || (self.c_entries[k] as f64) < c_min {
                    return Err(k);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict_volume(n1: usize, n2: usize) -> u64 {
        (n1 * (n1 - 1) * n2 / 2) as u64
    }

    #[test]
    fn one_d_covers_everything_exactly_once() {
        for (n1, n2, p) in [(6usize, 8usize, 2usize), (9, 10, 4), (5, 3, 5)] {
            let fp = footprint(n1, n2, &OneDOwner::new(n2, p));
            assert_eq!(fp.total_mults(), strict_volume(n1, n2));
            assert!(fp.check_lemma5(n1, n2).is_ok());
        }
    }

    #[test]
    fn two_d_covers_everything_exactly_once() {
        for (n1, n2, c) in [(8usize, 4usize, 2usize), (9, 5, 3), (10, 3, 3)] {
            let dist = TriangleBlockDist::new(c);
            let fp = footprint(n1, n2, &TwoDOwner::new(&dist, n1));
            assert_eq!(fp.total_mults(), strict_volume(n1, n2), "({n1},{n2},c={c})");
            assert!(fp.check_lemma5(n1, n2).is_ok(), "({n1},{n2},c={c})");
        }
    }

    #[test]
    fn three_d_covers_everything_exactly_once() {
        for (n1, n2, c, p2) in [(8usize, 6usize, 2usize, 3usize), (9, 8, 3, 2)] {
            let dist = TriangleBlockDist::new(c);
            let fp = footprint(n1, n2, &ThreeDOwner::new(&dist, n1, n2, p2));
            assert_eq!(fp.total_mults(), strict_volume(n1, n2));
            assert!(fp.check_lemma5(n1, n2).is_ok());
        }
    }

    #[test]
    fn two_d_work_is_balanced_up_to_diagonal() {
        // §5.2.3: imbalance comes only from the c ranks without diagonal
        // blocks.
        let (n1, n2, c) = (18usize, 4usize, 3usize);
        let dist = TriangleBlockDist::new(c);
        let fp = footprint(n1, n2, &TwoDOwner::new(&dist, n1));
        let max = *fp.mults.iter().max().unwrap() as f64;
        let avg = fp.total_mults() as f64 / dist.p() as f64;
        assert!(max / avg < 1.4, "imbalance {}", max / avg);
    }

    #[test]
    fn two_d_a_footprint_matches_triangle_analysis() {
        // A rank needs exactly its c row blocks of A: c·(n1/c²)·n2
        // elements — the operational-intensity advantage of triangle
        // blocks (§1, Beaumont et al.).
        let (n1, n2, c) = (8usize, 4usize, 2usize);
        let dist = TriangleBlockDist::new(c);
        let fp = footprint(n1, n2, &TwoDOwner::new(&dist, n1));
        let expect = c * (n1 / (c * c)) * n2;
        for (k, &a) in fp.a_elements.iter().enumerate() {
            assert_eq!(a, expect, "rank {k}");
        }
    }

    #[test]
    fn lemma5_detects_a_bad_assignment() {
        // A deliberately degenerate owner: rank 0 does everything but we
        // lie about P = 4 — then rank 0 exceeds the 1/P share while the
        // per-rank minimums scale with P, which a real balanced
        // assignment would satisfy but this footprint (checked against a
        // *fake* inflated P) trips on C-entries only in tiny cases.
        struct AllToZero;
        impl IterationOwner for AllToZero {
            fn ranks(&self) -> usize {
                4
            }
            fn owner(&self, _: usize, _: usize, _: usize) -> usize {
                0
            }
        }
        let fp = footprint(4, 2, &AllToZero);
        // Rank 0 holds the entire prism: Lemma 5 is satisfied *for rank
        // 0* (it accesses everything), and idle ranks are exempt (they do
        // less than a 1/P share): the checker must accept this, proving
        // it checks the right implication direction.
        assert!(fp.check_lemma5(4, 2).is_ok());
        assert_eq!(fp.mults[1], 0);
    }
}
