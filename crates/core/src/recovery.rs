//! Shrink-and-replan recovery: crash-surviving SYRK.
//!
//! [`run_with_recovery`] drives a fallible SYRK run to completion across
//! injected rank crashes and detected data corruption:
//!
//! 1. **detection + agreement** — when an attempt dies with
//!    [`MachineError::RankCrashed`], the next attempt opens with a
//!    *recovery prologue* machine in which the survivors run the
//!    fault-tolerant agreement collective
//!    (`Comm::try_agree_on_failures`), charging heartbeat probes under
//!    `recover:detect` and the suspect exchange under `recover:agree`;
//! 2. **shrink and replan** — the rank budget drops by one per crash and
//!    the §5.4 planner picks the best grid for `P′ = P − f`, which may
//!    cross a Theorem 1 bound case (each attempt records the case via
//!    [`syrk_lower_bound`]);
//! 3. **redistribution** — survivors ring-shift their `Partition1D`
//!    share of the flattened `A` (`≈ n1·n2/P′` words each) under
//!    `recover:redistribute`, modeling the re-layout of the crashed
//!    rank's operand data;
//! 4. **backoff** — each retry sleeps `backoff_base · 2^(retries−1)`
//!    simulated seconds under `recover:backoff` before re-executing;
//! 5. **verification** — with [`RecoveryPolicy::verify`] the 1D/2D
//!    bodies run their per-block ABFT checks in-machine and the final
//!    assembled `C` is checked against [`AbftChecksums`] computed from
//!    `A`; a corrupt result retries on the *same* grid (corruption does
//!    not shrink the world).
//!
//! All prologue traffic lands in the `recover:*` phase family, so the
//! Theorem 1 attribution of the productive phases stays clean: recovery
//! words sit *outside* the bound, while the replanned run re-enters it
//! at `P′`. The last prologue's cost report is merged into the
//! successful run's report (same rank count by construction), so the
//! returned [`SyrkRunResult`] accounts for the whole recovered run.

use syrk_dense::{Matrix, Partition1D};
use syrk_machine::{
    CostModel, CostReport, FaultPlan, Machine, MachineError, RECOVER_BACKOFF_PHASE,
    RECOVER_REDISTRIBUTE_PHASE,
};
use syrk_telemetry::LazyCounter;

use crate::abft::AbftChecksums;
use crate::algorithms::{
    try_syrk_1d, try_syrk_1d_abft, try_syrk_2d, try_syrk_2d_abft, try_syrk_3d, SyrkRunResult,
};
use crate::bounds::{syrk_lower_bound, BoundCase};
use crate::error::SyrkError;
use crate::planner::{plan, Plan, PlanError};

/// Recovery attempts started (i.e. retries after a failed attempt).
pub static RECOVERY_ATTEMPTS: LazyCounter = LazyCounter::new("syrk_recovery_attempts");
/// Ranks lost to crashes across all recovered runs.
pub static RECOVERY_RANKS_LOST: LazyCounter = LazyCounter::new("syrk_recovery_ranks_lost");

/// User tag for the `recover:redistribute` ring shift (kept far below
/// the collective tag space).
const TAG_REDISTRIBUTE: u64 = 77;

/// Knobs for [`run_with_recovery`].
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Total execution attempts allowed (first try included). Must be
    /// at least 1.
    pub max_attempts: usize,
    /// Simulated-clock backoff before the first retry; doubles on each
    /// further retry.
    pub backoff_base: f64,
    /// Run ABFT checksum verification (in-machine per-block checks plus
    /// a final full-`C` check) and retry on detected corruption.
    pub verify: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_attempts: 3,
            backoff_base: 64.0,
            verify: true,
        }
    }
}

/// How one execution attempt ended.
#[derive(Debug, Clone, PartialEq)]
pub enum AttemptOutcome {
    /// The attempt produced a (verified, when enabled) `C`.
    Completed,
    /// The attempt died with [`MachineError::RankCrashed`]; the next
    /// attempt shrinks the world by this rank.
    Crashed {
        /// World rank that crashed (within that attempt's machine).
        rank: usize,
    },
    /// ABFT verification rejected the attempt's output; the same grid
    /// retries.
    Corrupted {
        /// Human-readable description of the failed check.
        detail: String,
    },
}

/// One execution attempt of a recovered run.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryAttempt {
    /// Grid the attempt ran on.
    pub plan: Plan,
    /// Theorem 1 case at the attempt's rank count — shrinking `P` can
    /// move the instance across the trichotomy.
    pub bound_case: BoundCase,
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
}

/// What it took to finish a [`run_with_recovery`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Every attempt in order; the last one is always `Completed`.
    pub attempts: Vec<RecoveryAttempt>,
    /// World ranks lost to crashes, in crash order.
    pub ranks_lost: Vec<usize>,
    /// Grid the successful attempt ran on.
    pub final_plan: Plan,
    /// Whether any recovery was needed (more than one attempt).
    pub recovered: bool,
    /// Words charged to `recover:*` phases across *all* prologues (the
    /// traffic that sits outside the Theorem 1 accounting).
    pub recovery_words: u64,
    /// Total simulated backoff clock across all retries.
    pub backoff_clock: f64,
}

/// Run SYRK under `initial`, surviving injected crashes by shrinking
/// and replanning, and detected corruption by retrying, up to
/// `policy.max_attempts` total attempts.
///
/// Returns the (bitwise engine-independent) result of the successful
/// attempt — with the last recovery prologue's cost merged in — plus a
/// [`RecoveryReport`]. Unrecoverable failures (deadlock, plan
/// rejection, exhausted attempts or ranks) surface as [`SyrkError`].
pub fn run_with_recovery(
    a: &Matrix<f64>,
    initial: Plan,
    model: CostModel,
    faults: Option<&FaultPlan>,
    policy: &RecoveryPolicy,
) -> Result<(SyrkRunResult, RecoveryReport), SyrkError> {
    assert!(policy.max_attempts >= 1, "need at least one attempt");
    let (n1, n2) = a.shape();
    if n1 == 0 || n2 == 0 {
        return Err(PlanError::EmptyMatrix { n1, n2 }.into());
    }
    let checks = policy.verify.then(|| AbftChecksums::new(a));

    let mut cur_plan = initial;
    let mut p_budget = initial.ranks();
    let mut faults_now: Option<FaultPlan> = faults.cloned();
    let mut attempts: Vec<RecoveryAttempt> = Vec::new();
    let mut ranks_lost: Vec<usize> = Vec::new();
    let mut recovery_words: u64 = 0;
    let mut backoff_clock: f64 = 0.0;
    let mut prologue: Option<CostReport> = None;
    let mut last_err = SyrkError::Plan(PlanError::ZeroRanks);

    for attempt in 1..=policy.max_attempts {
        if attempt > 1 {
            RECOVERY_ATTEMPTS.inc();
            let backoff = policy.backoff_base * 2f64.powi(attempt as i32 - 2);
            let pro = recovery_prologue(a, cur_plan, model, &ranks_lost, backoff)?;
            recovery_words += pro.total_words();
            backoff_clock += backoff;
            prologue = Some(pro);
        }
        let bound_case = syrk_lower_bound(n1, n2, cur_plan.ranks()).case;
        match execute(a, cur_plan, model, faults_now.as_ref(), policy.verify) {
            Ok(mut run) => {
                if let Some(checks) = &checks {
                    if let Err(v) = checks.verify(&run.c) {
                        attempts.push(RecoveryAttempt {
                            plan: cur_plan,
                            bound_case,
                            outcome: AttemptOutcome::Corrupted {
                                detail: v.to_string(),
                            },
                        });
                        last_err = SyrkError::Machine(MachineError::DataCorruption {
                            rank: 0,
                            detail: v.to_string(),
                        });
                        continue;
                    }
                }
                if let Some(mut pro) = prologue.take() {
                    pro.absorb(&run.cost);
                    run.cost = pro;
                }
                attempts.push(RecoveryAttempt {
                    plan: cur_plan,
                    bound_case,
                    outcome: AttemptOutcome::Completed,
                });
                let recovered = attempts.len() > 1;
                return Ok((
                    run,
                    RecoveryReport {
                        attempts,
                        ranks_lost,
                        final_plan: cur_plan,
                        recovered,
                        recovery_words,
                        backoff_clock,
                    },
                ));
            }
            Err(SyrkError::Machine(MachineError::RankCrashed { rank, after_ops })) => {
                attempts.push(RecoveryAttempt {
                    plan: cur_plan,
                    bound_case,
                    outcome: AttemptOutcome::Crashed { rank },
                });
                ranks_lost.push(rank);
                RECOVERY_RANKS_LOST.inc();
                last_err = SyrkError::Machine(MachineError::RankCrashed { rank, after_ops });
                if p_budget <= 1 {
                    return Err(last_err);
                }
                p_budget -= 1;
                // The shrunken machine renumbers world ranks 0..P′, so
                // the crashed rank's pending faults must not re-fire
                // against its successor.
                faults_now = faults_now.map(|f| f.without_crashed(rank));
                cur_plan = plan(n1, n2, p_budget).plan;
            }
            Err(SyrkError::Machine(MachineError::DataCorruption { rank, detail })) => {
                attempts.push(RecoveryAttempt {
                    plan: cur_plan,
                    bound_case,
                    outcome: AttemptOutcome::Corrupted {
                        detail: detail.clone(),
                    },
                });
                // Corruption does not shrink the world: same grid retries.
                last_err = SyrkError::Machine(MachineError::DataCorruption { rank, detail });
            }
            Err(e) => return Err(e),
        }
    }
    Err(last_err)
}

/// Dispatch one attempt to the plan's algorithm, with or without
/// in-machine ABFT block checks (the 3D body relies on the final
/// full-`C` verification only).
fn execute(
    a: &Matrix<f64>,
    plan: Plan,
    model: CostModel,
    faults: Option<&FaultPlan>,
    verify: bool,
) -> Result<SyrkRunResult, SyrkError> {
    match plan {
        Plan::OneD { p } if verify => try_syrk_1d_abft(a, p, model, faults),
        Plan::OneD { p } => try_syrk_1d(a, p, model, faults),
        Plan::TwoD { c } if verify => try_syrk_2d_abft(a, c, model, faults),
        Plan::TwoD { c } => try_syrk_2d(a, c, model, faults),
        Plan::ThreeD { c, p2 } => try_syrk_3d(a, c, p2, model, faults),
    }
}

/// The detect → agree → redistribute → backoff prologue, run as its own
/// fault-free machine at the *replanned* rank count so its cost report
/// merges index-wise into the subsequent attempt's report.
fn recovery_prologue(
    a: &Matrix<f64>,
    plan: Plan,
    model: CostModel,
    lost: &[usize],
    backoff: f64,
) -> Result<CostReport, SyrkError> {
    let (n1, n2) = a.shape();
    let p = plan.ranks();
    let shares = Partition1D::new(n1 * n2, p);
    let lost: Vec<usize> = lost.to_vec();
    let machine = Machine::new(p).with_model(model);
    let out = machine.try_run(|comm| {
        let agreed = comm.try_agree_on_failures(&lost)?;
        debug_assert!(
            lost.iter().all(|r| agreed.contains(r)),
            "agreement must contain every locally known failure"
        );
        if !lost.is_empty() && comm.size() > 1 {
            // Ring-shift each survivor's share of the flattened A: the
            // crashed rank's operand block has to come from somewhere,
            // and a single shift is the cheapest all-rank re-layout
            // (every rank sends/receives one conformal share).
            let _span = comm.phase(RECOVER_REDISTRIBUTE_PHASE);
            let me = comm.rank();
            let next = (me + 1) % comm.size();
            let prev = (me + comm.size() - 1) % comm.size();
            let share = a.as_slice()[shares.range(me)].to_vec();
            let _incoming: Vec<f64> = comm.try_exchange(next, share, prev, TAG_REDISTRIBUTE)?;
        }
        let _span = comm.phase(RECOVER_BACKOFF_PHASE);
        comm.sleep(backoff);
        Ok(())
    })?;
    Ok(out.cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use syrk_dense::{max_abs_diff, seeded_matrix, syrk_full_reference};
    use syrk_machine::{RECOVER_AGREE_PHASE, RECOVER_DETECT_PHASE};

    fn model() -> CostModel {
        CostModel::bandwidth_only()
    }

    #[test]
    fn clean_run_needs_no_recovery() {
        let a = seeded_matrix::<f64>(12, 8, 5);
        let (run, report) = run_with_recovery(
            &a,
            Plan::OneD { p: 4 },
            model(),
            None,
            &RecoveryPolicy::default(),
        )
        .expect("clean run");
        assert!(!report.recovered);
        assert_eq!(report.attempts.len(), 1);
        assert_eq!(report.final_plan, Plan::OneD { p: 4 });
        assert_eq!(report.recovery_words, 0);
        assert!(max_abs_diff(&run.c, &syrk_full_reference(&a)) < 1e-10);
    }

    #[test]
    fn crash_shrinks_replans_and_completes() {
        let a = seeded_matrix::<f64>(16, 24, 7);
        let faults = FaultPlan::seeded(11).crash_rank(2, 1);
        let policy = RecoveryPolicy::default();
        let (run, report) =
            run_with_recovery(&a, Plan::OneD { p: 5 }, model(), Some(&faults), &policy)
                .expect("recovered run");
        assert!(report.recovered);
        assert_eq!(report.ranks_lost, vec![2]);
        assert_eq!(report.attempts.len(), 2);
        assert!(matches!(
            report.attempts[0].outcome,
            AttemptOutcome::Crashed { rank: 2 }
        ));
        assert_eq!(report.attempts[1].outcome, AttemptOutcome::Completed);
        assert!(report.final_plan.ranks() <= 4);
        assert!(report.recovery_words > 0);
        assert_eq!(report.backoff_clock, policy.backoff_base);
        assert!(max_abs_diff(&run.c, &syrk_full_reference(&a)) < 1e-10);
        // The merged cost report carries the recover:* phases.
        let p = report.final_plan.ranks();
        assert!((0..p).any(|r| run.cost.phase_cost(r, RECOVER_DETECT_PHASE).is_some()));
        assert!((0..p).any(|r| run.cost.phase_cost(r, RECOVER_AGREE_PHASE).is_some()));
        assert!((0..p).any(|r| run.cost.phase_cost(r, RECOVER_REDISTRIBUTE_PHASE).is_some()));
    }

    #[test]
    fn budget_exhaustion_returns_the_last_crash() {
        let a = seeded_matrix::<f64>(10, 12, 3);
        let faults = FaultPlan::seeded(4)
            .crash_rank(0, 1)
            .crash_rank(1, 1)
            .crash_rank(2, 1);
        let policy = RecoveryPolicy {
            max_attempts: 2,
            ..RecoveryPolicy::default()
        };
        let err = run_with_recovery(&a, Plan::OneD { p: 4 }, model(), Some(&faults), &policy)
            .unwrap_err();
        assert!(
            matches!(err, SyrkError::Machine(MachineError::RankCrashed { .. })),
            "{err}"
        );
    }

    #[test]
    fn backoff_doubles_per_retry() {
        let a = seeded_matrix::<f64>(10, 12, 3);
        let faults = FaultPlan::seeded(4).crash_rank(0, 1).crash_rank(1, 1);
        let policy = RecoveryPolicy {
            max_attempts: 4,
            backoff_base: 8.0,
            verify: true,
        };
        let (_, report) =
            run_with_recovery(&a, Plan::OneD { p: 4 }, model(), Some(&faults), &policy)
                .expect("recovers after two crashes");
        assert_eq!(report.ranks_lost, vec![0, 1]);
        // 8 + 16: two retries with doubling backoff.
        assert_eq!(report.backoff_clock, 24.0);
    }

    #[test]
    fn attempts_are_metered() {
        use syrk_telemetry::registry;
        let before = registry::snapshot()
            .counter("syrk_recovery_attempts")
            .unwrap_or(0);
        let a = seeded_matrix::<f64>(8, 8, 1);
        let faults = FaultPlan::seeded(2).crash_rank(1, 1);
        run_with_recovery(
            &a,
            Plan::OneD { p: 3 },
            model(),
            Some(&faults),
            &RecoveryPolicy::default(),
        )
        .expect("recovers");
        let after = registry::snapshot()
            .counter("syrk_recovery_attempts")
            .unwrap();
        assert!(after > before);
    }
}
