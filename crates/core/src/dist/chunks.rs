//! Conformal distribution of the input matrix `A` over a
//! [`TriangleBlockDist`]: row block `A_i` is split evenly among the
//! `c + 1` processors of `Q_i` (§5.2.1). The split is over the flattened
//! row-major elements of the block — the paper leaves the within-block
//! distribution arbitrary as long as it is even.

use super::triangle::TriangleBlockDist;
use syrk_dense::{Matrix, Partition1D};

/// Maps between global `A` coordinates and the per-rank chunks of the
/// conformal distribution, for an `n1 × n2` input split into `c²` row
/// blocks (near-even when `c² ∤ n1`).
#[derive(Debug, Clone)]
pub struct ConformalADist<'d> {
    dist: &'d TriangleBlockDist,
    /// Row partition of `0..n1` into `c²` row blocks.
    pub rows: Partition1D,
    n2: usize,
}

impl<'d> ConformalADist<'d> {
    /// Create the conformal distribution of an `n1 × n2` matrix.
    pub fn new(dist: &'d TriangleBlockDist, n1: usize, n2: usize) -> Self {
        let rows = Partition1D::new(n1, dist.num_blocks());
        ConformalADist { dist, rows, n2 }
    }

    /// Dimensions of row block `A_i`.
    pub fn block_shape(&self, i: usize) -> (usize, usize) {
        (self.rows.len(i), self.n2)
    }

    /// Flattened length of row block `A_i`.
    pub fn block_len(&self, i: usize) -> usize {
        self.rows.len(i) * self.n2
    }

    /// The element partition of `A_i` among its `c+1` owners, in `Q_i`
    /// order (chunk `pos` belongs to the `pos`-th member of `Q_i`).
    pub fn chunk_partition(&self, i: usize) -> Partition1D {
        Partition1D::new(self.block_len(i), self.dist.c() + 1)
    }

    /// Length of the chunk of `A_i` held by rank `k ∈ Q_i`.
    pub fn chunk_len(&self, i: usize, k: usize) -> usize {
        self.chunk_partition(i).len(self.dist.chunk_index(i, k))
    }

    /// Extract rank `k`'s chunk of `A_i` from the global matrix (used to
    /// stage the initial distribution; costs nothing on the machine).
    pub fn extract_chunk(&self, a: &Matrix<f64>, i: usize, k: usize) -> Vec<f64> {
        let range = self.rows.range(i);
        let flat: Vec<f64> = a
            .block(range.start, 0, range.len(), self.n2)
            .to_owned_matrix()
            .into_vec();
        let part = self.chunk_partition(i);
        flat[part.range(self.dist.chunk_index(i, k))].to_vec()
    }

    /// Reassemble the full row block `A_i` from its `c+1` chunks, given in
    /// `Q_i` order.
    pub fn assemble_block(&self, i: usize, chunks: &[Vec<f64>]) -> Matrix<f64> {
        assert_eq!(
            chunks.len(),
            self.dist.c() + 1,
            "need one chunk per member of Q_i"
        );
        let part = self.chunk_partition(i);
        let mut flat = Vec::with_capacity(self.block_len(i));
        for (pos, ch) in chunks.iter().enumerate() {
            assert_eq!(
                ch.len(),
                part.len(pos),
                "chunk {pos} of A_{i} has the wrong length"
            );
            flat.extend_from_slice(ch);
        }
        let (r, c) = self.block_shape(i);
        Matrix::from_vec(r, c, flat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syrk_dense::seeded_matrix;

    #[test]
    fn chunks_reassemble_every_block() {
        let dist = TriangleBlockDist::new(3);
        let (n1, n2) = (27, 5);
        let a = seeded_matrix::<f64>(n1, n2, 1);
        let ad = ConformalADist::new(&dist, n1, n2);
        for i in 0..dist.num_blocks() {
            let chunks: Vec<Vec<f64>> = dist
                .q_set(i)
                .iter()
                .map(|&k| ad.extract_chunk(&a, i, k))
                .collect();
            let asm = ad.assemble_block(i, &chunks);
            let range = ad.rows.range(i);
            let want = a.block_owned(range.start, 0, range.len(), n2);
            assert_eq!(asm, want, "block {i}");
        }
    }

    #[test]
    fn uneven_rows_still_tile() {
        // n1 = 10 with c² = 9 row blocks: one block gets 2 rows.
        let dist = TriangleBlockDist::new(3);
        let ad = ConformalADist::new(&dist, 10, 4);
        let total: usize = (0..9).map(|i| ad.block_len(i)).sum();
        assert_eq!(total, 40);
        assert_eq!(ad.block_shape(0), (2, 4));
        assert_eq!(ad.block_shape(8), (1, 4));
    }

    #[test]
    fn chunk_lengths_sum_to_block() {
        let dist = TriangleBlockDist::new(2);
        let ad = ConformalADist::new(&dist, 8, 7);
        for i in 0..4 {
            let sum: usize = dist.q_set(i).iter().map(|&k| ad.chunk_len(i, k)).sum();
            assert_eq!(sum, ad.block_len(i), "block {i}");
        }
    }

    #[test]
    fn chunks_are_even_within_one() {
        let dist = TriangleBlockDist::new(3);
        let ad = ConformalADist::new(&dist, 18, 10);
        for i in 0..9 {
            let lens: Vec<usize> = dist.q_set(i).iter().map(|&k| ad.chunk_len(i, k)).collect();
            let (mn, mx) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
            assert!(mx - mn <= 1, "block {i}: {lens:?}");
        }
    }
}
