//! Triangle block partitions from affine planes over GF(q).
//!
//! §5.2.1 notes that prime `c` is "a sufficient but not necessary
//! condition" for a valid triangle block partitioning. The structural
//! requirement is exactly an *affine plane of order c*: `c² + c` lines of
//! `c` points each over `c²` points, with every pair of points on exactly
//! one line — lines become row block sets `R_k` and the pair-coverage
//! property is precisely "every off-diagonal block owned exactly once".
//! Affine planes exist for every prime power, so this module extends the
//! paper's distribution to `c ∈ {4, 8, 9, 16, 25, 27, …}` (processor
//! counts `P = 20, 72, 90, 272, …` that the cyclic construction cannot
//! serve).

use super::gf::Gf;

/// The line sets of the affine plane AG(2, q): `q² + q` lines, each a
/// sorted set of `q` point indices in `0..q²` (point `(x, y) ↦ x·q + y`).
/// Returns `None` if GF(q) is unavailable (q not a supported prime power).
pub fn affine_plane_lines(q: usize) -> Option<Vec<Vec<usize>>> {
    let gf = Gf::new(q)?;
    let mut lines = Vec::with_capacity(q * q + q);
    // Sloped lines y = a·x + b for a, b ∈ GF(q).
    for a in 0..q {
        for b in 0..q {
            let mut line: Vec<usize> = (0..q).map(|x| x * q + gf.add(gf.mul(a, x), b)).collect();
            line.sort_unstable();
            lines.push(line);
        }
    }
    // Vertical lines x = v.
    for v in 0..q {
        lines.push((0..q).map(|y| v * q + y).collect());
    }
    Some(lines)
}

/// Assign each point (diagonal block) to exactly one line through it,
/// with no line taking more than one point — a perfect matching of the
/// `q²` points into the `q² + q` lines (Kuhn's augmenting-path
/// algorithm; the incidence structure always admits one by Hall's
/// theorem since every point lies on `q + 1` lines and every line holds
/// `q` points).
pub fn match_diagonals(q: usize, lines: &[Vec<usize>]) -> Vec<Option<usize>> {
    let num_points = q * q;
    // lines_of[pt] = indices of lines containing pt.
    let mut lines_of: Vec<Vec<usize>> = vec![Vec::new(); num_points];
    for (k, line) in lines.iter().enumerate() {
        for &pt in line {
            lines_of[pt].push(k);
        }
    }
    let mut line_taken: Vec<Option<usize>> = vec![None; lines.len()];

    fn try_assign(
        pt: usize,
        lines_of: &[Vec<usize>],
        line_taken: &mut [Option<usize>],
        visited: &mut [bool],
    ) -> bool {
        for &k in &lines_of[pt] {
            if visited[k] {
                continue;
            }
            visited[k] = true;
            match line_taken[k] {
                None => {
                    line_taken[k] = Some(pt);
                    return true;
                }
                Some(other) => {
                    if try_assign(other, lines_of, line_taken, visited) {
                        line_taken[k] = Some(pt);
                        return true;
                    }
                }
            }
        }
        false
    }

    for pt in 0..num_points {
        let mut visited = vec![false; lines.len()];
        let ok = try_assign(pt, &lines_of, &mut line_taken, &mut visited);
        assert!(
            ok,
            "no diagonal matching for point {pt} (should be impossible)"
        );
    }
    // Invert: d[k] = the point assigned to line k.
    line_taken
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_plane(q: usize) {
        let lines = affine_plane_lines(q).unwrap_or_else(|| panic!("AG(2,{q})"));
        assert_eq!(lines.len(), q * q + q);
        for line in &lines {
            assert_eq!(line.len(), q);
        }
        // Every pair of points on exactly one line.
        let mut pair_count = vec![0u8; q * q * q * q];
        for line in &lines {
            for (a, &x) in line.iter().enumerate() {
                for &y in &line[..a] {
                    pair_count[x * q * q + y] += 1;
                }
            }
        }
        for x in 0..q * q {
            for y in 0..x {
                assert_eq!(pair_count[x * q * q + y], 1, "pair ({x},{y}) in AG(2,{q})");
            }
        }
    }

    #[test]
    fn planes_over_prime_fields() {
        for q in [2usize, 3, 5, 7] {
            check_plane(q);
        }
    }

    #[test]
    fn planes_over_prime_power_fields() {
        for q in [4usize, 8, 9] {
            check_plane(q);
        }
    }

    #[test]
    fn unsupported_orders_return_none() {
        assert!(affine_plane_lines(6).is_none());
        assert!(affine_plane_lines(10).is_none());
    }

    #[test]
    fn diagonal_matching_saturates_points() {
        for q in [2usize, 3, 4, 5, 8, 9] {
            let lines = affine_plane_lines(q).unwrap();
            let d = match_diagonals(q, &lines);
            // Every point assigned exactly once; every line ≤ once; the
            // assigned line contains its point.
            let mut seen = vec![false; q * q];
            for (k, pt) in d.iter().enumerate() {
                if let Some(pt) = pt {
                    assert!(!seen[*pt], "q={q}: point {pt} assigned twice");
                    seen[*pt] = true;
                    assert!(lines[k].contains(pt), "q={q}: line {k} lacks its point");
                }
            }
            assert!(seen.iter().all(|&s| s), "q={q}: unassigned point");
            // Exactly q lines carry no diagonal (same count as the paper's
            // construction: c processors own no diagonal block).
            assert_eq!(d.iter().filter(|p| p.is_none()).count(), q);
        }
    }
}
