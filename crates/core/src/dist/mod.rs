//! Data distributions: the Triangle Block Distribution of the symmetric
//! output (§5.2.1) and the conformal distribution of the input.

mod affine;
mod chunks;
mod gf;
mod triangle;

pub use affine::{affine_plane_lines, match_diagonals};
pub use chunks::ConformalADist;
pub use gf::Gf;
pub use triangle::TriangleBlockDist;
