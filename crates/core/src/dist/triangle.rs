//! The Triangle Block Distribution (§5.2.1, eqs. (4)–(8)).
//!
//! For `P = c(c+1)` with `c` prime, the `c² × c²` grid of blocks of the
//! symmetric output `C` is partitioned so that every processor owns
//! `c(c−1)/2` off-diagonal blocks forming a *triangle block of blocks*
//! (the strict lower triangle of `R_k × R_k` for a `c`-element row block
//! set `R_k`), and `c²` of the processors own one diagonal block each
//! (`D_k ⊆ R_k`). The conformal input distribution splits row block `A_i`
//! evenly among the `c+1` processors `Q_i = {k : i ∈ R_k}`.

use super::affine::{affine_plane_lines, match_diagonals};
use crate::primes::is_prime;

/// The Triangle Block Distribution for `P = c(c+1)` processors, `c` prime.
#[derive(Debug, Clone)]
pub struct TriangleBlockDist {
    c: usize,
    /// `R_k` (sorted), indexed by processor rank `k < c(c+1)`.
    r: Vec<Vec<usize>>,
    /// `D_k`: index of the diagonal block owned by `k`, if any.
    d: Vec<Option<usize>>,
    /// `Q_i` (sorted), indexed by block row `i < c²`.
    q: Vec<Vec<usize>>,
    /// Owner of off-diagonal block `(i, j)` with `i > j`, flattened as
    /// `i·c² + j`; `usize::MAX` for unused entries.
    owner: Vec<usize>,
    /// Owner of diagonal block `(i, i)`, indexed by `i`.
    diag_owner: Vec<usize>,
}

impl TriangleBlockDist {
    /// Build the distribution for a prime `c` and validate it.
    ///
    /// ```
    /// use syrk_core::TriangleBlockDist;
    /// let d = TriangleBlockDist::new(3); // Table 1 of the paper
    /// assert_eq!(d.p(), 12);
    /// assert_eq!(d.r_set(3), &[1, 3, 7]);
    /// assert_eq!(d.q_set(6), &[0, 5, 7, 11]);
    /// assert_eq!(d.owner_of(7, 1), 3);
    /// ```
    pub fn new(c: usize) -> Self {
        assert!(
            is_prime(c),
            "triangle block distribution requires prime c (got {c})"
        );
        let p = c * (c + 1);
        let c2 = c * c;

        let fk = |k: usize, u: usize| -> usize {
            // f_k(u) = (⌊k/c⌋·(u−1) + k) mod c + c·u            (eq. 4)
            // u−1 may be −1; compute in i64 and wrap with rem_euclid.
            let t = (k / c) as i64 * (u as i64 - 1) + k as i64;
            t.rem_euclid(c as i64) as usize + c * u
        };

        // R_k (eq. 5).
        let mut r: Vec<Vec<usize>> = Vec::with_capacity(p);
        for k in 0..p {
            let mut set: Vec<usize> = if k < c2 {
                std::iter::once(k / c)
                    .chain((1..c).map(|u| fk(k, u)))
                    .collect()
            } else {
                (0..c).map(|u| (k - c2) * c + u).collect()
            };
            set.sort_unstable();
            debug_assert_eq!(set.len(), c, "R_{k} must have c elements");
            r.push(set);
        }

        // D_k (eq. 6).
        let mut d: Vec<Option<usize>> = Vec::with_capacity(p);
        for k in 0..p {
            let dk = if k < c {
                None
            } else if k < c2 {
                if k % c == 0 {
                    Some(k / c)
                } else {
                    Some(fk(k, k / c))
                }
            } else {
                let j = k - c2;
                Some(fk(c * j, j))
            };
            d.push(dk);
        }

        // Q_i (eq. 8) via h_i (eq. 7).
        let hi = |i: usize, qq: usize| -> usize {
            let t = i as i64 - ((i / c) as i64 - 1) * qq as i64;
            t.rem_euclid(c as i64) as usize + c * qq
        };
        let mut q: Vec<Vec<usize>> = Vec::with_capacity(c2);
        for i in 0..c2 {
            let mut set: Vec<usize> = if i < c {
                (0..c)
                    .map(|qq| c * i + qq)
                    .chain(std::iter::once(c2))
                    .collect()
            } else {
                (0..c)
                    .map(|qq| hi(i, qq))
                    .chain(std::iter::once(c2 + i / c))
                    .collect()
            };
            set.sort_unstable();
            debug_assert_eq!(set.len(), c + 1, "Q_{i} must have c+1 elements");
            q.push(set);
        }

        Self::from_sets(c, r, d, Some(q))
    }

    /// Build the distribution for any order `c` with a known construction:
    /// the paper's cyclic scheme for prime `c`, or an affine plane over
    /// GF(c) for prime powers (a valid scheme the paper's §5.2.1 alludes
    /// to — primality is sufficient, not necessary). Returns `None` when
    /// no construction is available (e.g. `c = 6, 10`).
    pub fn for_order(c: usize) -> Option<Self> {
        if is_prime(c) {
            Some(Self::new(c))
        } else {
            Self::new_prime_power(c)
        }
    }

    /// Build from the affine plane AG(2, c) for a prime power `c`
    /// (supports c = 4, 8, 9, 16, 25, 27, 32, 49). Lines of the plane are
    /// the row block sets; diagonal blocks are matched to incident lines.
    pub fn new_prime_power(c: usize) -> Option<Self> {
        let r = affine_plane_lines(c)?;
        let d = match_diagonals(c, &r);
        Some(Self::from_sets(c, r, d, None))
    }

    /// Assemble owner maps from row block sets + diagonal assignment and
    /// validate. `q_sets`, if given (the cyclic construction's eq. (8)),
    /// is cross-checked against the derived reverse index; otherwise the
    /// reverse index is derived from `r`.
    fn from_sets(
        c: usize,
        r: Vec<Vec<usize>>,
        d: Vec<Option<usize>>,
        q_sets: Option<Vec<Vec<usize>>>,
    ) -> Self {
        let p = c * (c + 1);
        let c2 = c * c;
        assert_eq!(r.len(), p);
        assert_eq!(d.len(), p);
        let q = q_sets.unwrap_or_else(|| {
            (0..c2)
                .map(|i| (0..p).filter(|&k| r[k].contains(&i)).collect())
                .collect()
        });

        // Owner maps derived from R_k and D_k.
        let mut owner = vec![usize::MAX; c2 * c2];
        for (k, rk) in r.iter().enumerate() {
            for (a, &i) in rk.iter().enumerate() {
                for &j in &rk[..a] {
                    // rk is sorted, so j < i: block (i, j) belongs to k.
                    let slot = &mut owner[i * c2 + j];
                    assert_eq!(
                        *slot,
                        usize::MAX,
                        "block ({i},{j}) claimed by both {} and {k}",
                        *slot
                    );
                    *slot = k;
                }
            }
        }
        let mut diag_owner = vec![usize::MAX; c2];
        for (k, dk) in d.iter().enumerate() {
            if let Some(i) = *dk {
                assert_eq!(
                    diag_owner[i],
                    usize::MAX,
                    "diagonal block {i} claimed by both {} and {k}",
                    diag_owner[i]
                );
                diag_owner[i] = k;
            }
        }

        let dist = TriangleBlockDist {
            c,
            r,
            d,
            q,
            owner,
            diag_owner,
        };
        dist.validate()
            .expect("construction must yield a valid distribution");
        dist
    }

    /// The prime block parameter `c`.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Number of processors `P = c(c+1)`.
    pub fn p(&self) -> usize {
        self.c * (self.c + 1)
    }

    /// Number of block rows/columns `c²`.
    pub fn num_blocks(&self) -> usize {
        self.c * self.c
    }

    /// The row block set `R_k` (sorted). The indices of the row blocks of
    /// `A` processor `k` needs for its computation.
    pub fn r_set(&self, k: usize) -> &[usize] {
        &self.r[k]
    }

    /// The diagonal block assigned to `k` (eq. 6), if any.
    pub fn d_block(&self, k: usize) -> Option<usize> {
        self.d[k]
    }

    /// The processor set `Q_i` (sorted): the `c+1` ranks sharing row
    /// block `A_i`.
    pub fn q_set(&self, i: usize) -> &[usize] {
        &self.q[i]
    }

    /// Owner of off-diagonal block `(i, j)`; requires `i > j`.
    pub fn owner_of(&self, i: usize, j: usize) -> usize {
        assert!(j < i && i < self.num_blocks(), "owner_of needs j < i < c²");
        self.owner[i * self.num_blocks() + j]
    }

    /// Owner of diagonal block `(i, i)`.
    pub fn diag_owner_of(&self, i: usize) -> usize {
        assert!(i < self.num_blocks());
        self.diag_owner[i]
    }

    /// The off-diagonal block pairs `(i, j)` with `i > j` owned by `k`,
    /// in row-major order of the triangle.
    pub fn blocks_of(&self, k: usize) -> Vec<(usize, usize)> {
        let rk = &self.r[k];
        let mut out = Vec::with_capacity(self.c * (self.c - 1) / 2);
        for (a, &i) in rk.iter().enumerate() {
            for &j in &rk[..a] {
                out.push((i, j));
            }
        }
        out
    }

    /// Position of rank `k` within `Q_i` (its chunk index for `A_i`).
    /// Panics if `k ∉ Q_i`.
    pub fn chunk_index(&self, i: usize, k: usize) -> usize {
        self.q[i]
            .iter()
            .position(|&m| m == k)
            .unwrap_or_else(|| panic!("rank {k} is not in Q_{i}"))
    }

    /// The unique row block shared by distinct ranks `k` and `k'`
    /// (`R_k ∩ R_k'`), or `None` if they share none.
    pub fn common_block(&self, k: usize, k2: usize) -> Option<usize> {
        debug_assert_ne!(k, k2);
        // Both sets are sorted; intersect by merge.
        let (a, b) = (&self.r[k], &self.r[k2]);
        let (mut x, mut y) = (0, 0);
        let mut found = None;
        while x < a.len() && y < b.len() {
            match a[x].cmp(&b[y]) {
                std::cmp::Ordering::Less => x += 1,
                std::cmp::Ordering::Greater => y += 1,
                std::cmp::Ordering::Equal => {
                    debug_assert!(found.is_none(), "two ranks share two row blocks");
                    found = Some(a[x]);
                    x += 1;
                    y += 1;
                }
            }
        }
        found
    }

    /// Check every structural invariant of the distribution:
    ///
    /// 1. every off-diagonal block `(i, j)`, `i > j`, has exactly one owner;
    /// 2. every diagonal block has exactly one owner and `D_k ⊆ R_k`;
    /// 3. `|R_k| = c` with distinct entries; `|Q_i| = c+1`;
    /// 4. `Q_i = {k : i ∈ R_k}` (the two indexings agree);
    /// 5. each processor owns exactly `c(c−1)/2` off-diagonal blocks.
    pub fn validate(&self) -> Result<(), String> {
        let c2 = self.num_blocks();
        for i in 0..c2 {
            for j in 0..i {
                if self.owner[i * c2 + j] == usize::MAX {
                    return Err(format!("block ({i},{j}) has no owner"));
                }
            }
            if self.diag_owner[i] == usize::MAX {
                return Err(format!("diagonal block {i} has no owner"));
            }
        }
        for (k, dk) in self.d.iter().enumerate() {
            if let Some(i) = dk {
                if !self.r[k].contains(i) {
                    return Err(format!("D_{k} = {{{i}}} ⊄ R_{k}"));
                }
            }
        }
        for (k, rk) in self.r.iter().enumerate() {
            if rk.len() != self.c || rk.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("R_{k} is not a sorted c-set: {rk:?}"));
            }
            if let Some(&max) = rk.last() {
                if max >= c2 {
                    return Err(format!("R_{k} contains out-of-range block {max}"));
                }
            }
        }
        for (i, qi) in self.q.iter().enumerate() {
            if qi.len() != self.c + 1 {
                return Err(format!("Q_{i} has {} elements, expected c+1", qi.len()));
            }
            // Cross-check eq. (8) against the reverse index of eq. (5).
            let derived: Vec<usize> = (0..self.p()).filter(|&k| self.r[k].contains(&i)).collect();
            if *qi != derived {
                return Err(format!("Q_{i} = {qi:?} but {{k : i ∈ R_k}} = {derived:?}"));
            }
        }
        let per = self.c * (self.c - 1) / 2;
        for k in 0..self.p() {
            if self.blocks_of(k).len() != per {
                return Err(format!(
                    "rank {k} owns {} blocks, expected {per}",
                    self.blocks_of(k).len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1 of the paper, verbatim (c = 3, P = 12).
    #[test]
    fn table1_row_block_sets() {
        let d = TriangleBlockDist::new(3);
        let expected_r: [&[usize]; 12] = [
            &[0, 3, 6],
            &[0, 4, 7],
            &[0, 5, 8],
            &[1, 3, 7],
            &[1, 4, 8],
            &[1, 5, 6],
            &[2, 3, 8],
            &[2, 4, 6],
            &[2, 5, 7],
            &[0, 1, 2],
            &[3, 4, 5],
            &[6, 7, 8],
        ];
        for (k, want) in expected_r.iter().enumerate() {
            assert_eq!(d.r_set(k), *want, "R_{k}");
        }
    }

    #[test]
    fn table1_diagonal_blocks() {
        let d = TriangleBlockDist::new(3);
        let expected_d: [Option<usize>; 12] = [
            None,
            None,
            None,
            Some(1),
            Some(4),
            Some(5),
            Some(2),
            Some(6),
            Some(7),
            Some(0),
            Some(3),
            Some(8),
        ];
        for (k, want) in expected_d.iter().enumerate() {
            assert_eq!(d.d_block(k), *want, "D_{k}");
        }
    }

    #[test]
    fn table1_processor_sets() {
        let d = TriangleBlockDist::new(3);
        let expected_q: [&[usize]; 9] = [
            &[0, 1, 2, 9],
            &[3, 4, 5, 9],
            &[6, 7, 8, 9],
            &[0, 3, 6, 10],
            &[1, 4, 7, 10],
            &[2, 5, 8, 10],
            &[0, 5, 7, 11],
            &[1, 3, 8, 11],
            &[2, 4, 6, 11],
        ];
        for (i, want) in expected_q.iter().enumerate() {
            assert_eq!(d.q_set(i), *want, "Q_{i}");
        }
    }

    #[test]
    fn figure2_block_owners() {
        // Spot-check ownership against Fig. 2: processor 3 owns C_31,
        // C_71, C_73 (R_3 = {1,3,7}).
        let d = TriangleBlockDist::new(3);
        assert_eq!(d.owner_of(3, 1), 3);
        assert_eq!(d.owner_of(7, 1), 3);
        assert_eq!(d.owner_of(7, 3), 3);
        assert_eq!(d.blocks_of(3), vec![(3, 1), (7, 1), (7, 3)]);
        // Last-c processors own the diagonal zones: rank 11 owns the
        // blocks within rows/cols {6,7,8}.
        assert_eq!(d.owner_of(7, 6), 11);
        assert_eq!(d.owner_of(8, 6), 11);
        assert_eq!(d.owner_of(8, 7), 11);
    }

    #[test]
    fn valid_for_all_small_primes() {
        for c in [2usize, 3, 5, 7, 11, 13] {
            let d = TriangleBlockDist::new(c);
            assert!(d.validate().is_ok(), "c = {c}");
        }
    }

    #[test]
    #[should_panic(expected = "requires prime c")]
    fn composite_c_rejected() {
        let _ = TriangleBlockDist::new(4);
    }

    #[test]
    fn exactly_c_ranks_own_no_diagonal() {
        for c in [2usize, 3, 5, 7] {
            let d = TriangleBlockDist::new(c);
            let none = (0..d.p()).filter(|&k| d.d_block(k).is_none()).count();
            assert_eq!(none, c, "c = {c}: {none} diagonal-less ranks");
        }
    }

    #[test]
    fn common_block_matches_q_sets() {
        let d = TriangleBlockDist::new(5);
        for k in 0..d.p() {
            for k2 in 0..d.p() {
                if k == k2 {
                    continue;
                }
                let via_r = d.common_block(k, k2);
                let via_q = (0..d.num_blocks())
                    .find(|&i| d.q_set(i).contains(&k) && d.q_set(i).contains(&k2));
                assert_eq!(via_r, via_q, "ranks {k},{k2}");
            }
        }
    }

    #[test]
    fn some_rank_pairs_share_nothing() {
        // The paper: "a small subset of pairs of processors do not appear
        // in any Q_i sets".
        let d = TriangleBlockDist::new(3);
        let lonely = (0..d.p())
            .flat_map(|k| (k + 1..d.p()).map(move |k2| (k, k2)))
            .filter(|&(k, k2)| d.common_block(k, k2).is_none())
            .count();
        assert!(lonely > 0);
        // Ranks 9,10,11 (the diagonal-zone owners) pairwise share nothing:
        assert_eq!(d.common_block(9, 10), None);
        assert_eq!(d.common_block(10, 11), None);
    }

    #[test]
    fn chunk_index_is_a_bijection_per_block() {
        let d = TriangleBlockDist::new(3);
        for i in 0..d.num_blocks() {
            let mut seen = vec![false; d.c() + 1];
            for &k in d.q_set(i) {
                let pos = d.chunk_index(i, k);
                assert!(!seen[pos]);
                seen[pos] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    #[should_panic(expected = "is not in Q_")]
    fn chunk_index_rejects_nonmembers() {
        let d = TriangleBlockDist::new(3);
        // Q_0 = {0,1,2,9}; rank 3 is not a member.
        let _ = d.chunk_index(0, 3);
    }
}
