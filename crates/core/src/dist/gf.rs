//! Finite-field arithmetic GF(q) for prime powers `q = p^k`, used to
//! generalize the triangle block distribution beyond prime `c` (§5.2.1
//! notes primality is sufficient but *not* necessary; any affine plane of
//! order `c` yields a valid partition, and affine planes exist for every
//! prime power).
//!
//! Elements are represented as polynomial coefficient vectors over
//! GF(p) packed into a `usize` in base `p`; multiplication reduces modulo
//! a fixed irreducible polynomial. Fields are tiny (q ≤ 32 or so), so
//! full multiplication tables are precomputed.

use crate::primes::is_prime;

/// Irreducible monic polynomials over GF(p) for the supported prime
/// powers `p^k`, encoded as base-`p` digit strings, most significant
/// first, *without* the leading 1 coefficient implied.
/// E.g. GF(4) = GF(2)[x]/(x² + x + 1) → p = 2, k = 2, tail = [1, 1].
fn irreducible_tail(p: usize, k: usize) -> Option<&'static [usize]> {
    match (p, k) {
        (2, 2) => Some(&[1, 1]),          // x^2 + x + 1
        (2, 3) => Some(&[0, 1, 1]),       // x^3 + x + 1
        (2, 4) => Some(&[0, 0, 1, 1]),    // x^4 + x + 1
        (2, 5) => Some(&[0, 0, 1, 0, 1]), // x^5 + x^2 + 1
        (3, 2) => Some(&[0, 1]),          // x^2 + 1 (irreducible mod 3)
        (3, 3) => Some(&[0, 2, 1]),       // x^3 + 2x + 1
        (5, 2) => Some(&[0, 2]),          // x^2 + 2 (2 is a non-residue mod 5)
        (7, 2) => Some(&[0, 1]),          // x^2 + 1 (−1 is a non-residue mod 7)
        _ => None,
    }
}

/// The finite field GF(q), `q = p^k`, with precomputed operation tables.
#[derive(Debug, Clone)]
pub struct Gf {
    q: usize,
    add: Vec<usize>,
    mul: Vec<usize>,
}

impl Gf {
    /// Construct GF(q). Supports all primes and the prime powers with an
    /// entry in the irreducible table (4, 8, 9, 16, 25, 27, 32, 49).
    /// Returns `None` for non-prime-powers or unsupported sizes.
    pub fn new(q: usize) -> Option<Gf> {
        if q < 2 {
            return None;
        }
        if is_prime(q) {
            // Prime field: plain modular arithmetic.
            let mut add = vec![0; q * q];
            let mut mul = vec![0; q * q];
            for a in 0..q {
                for b in 0..q {
                    add[a * q + b] = (a + b) % q;
                    mul[a * q + b] = (a * b) % q;
                }
            }
            return Some(Gf { q, add, mul });
        }
        // Prime power: find p, k.
        let (p, k) = factor_prime_power(q)?;
        let tail = irreducible_tail(p, k)?;
        // Elements are vectors of k digits base p (digit 0 = constant
        // term). Precompute tables by polynomial arithmetic.
        let to_digits = |mut x: usize| -> Vec<usize> {
            let mut d = vec![0; k];
            for slot in d.iter_mut() {
                *slot = x % p;
                x /= p;
            }
            d
        };
        let from_digits = |d: &[usize]| -> usize { d.iter().rev().fold(0, |acc, &x| acc * p + x) };
        // The reduction rule: x^k ≡ −(tail polynomial). tail is given
        // most-significant-first for degrees k−1 … 0.
        let mut red = vec![0usize; k]; // red[i] = coefficient of x^i in x^k
        for (idx, &coef) in tail.iter().enumerate() {
            let deg = k - 1 - idx;
            red[deg] = (p - coef % p) % p;
        }
        let mut add = vec![0; q * q];
        let mut mul = vec![0; q * q];
        for a in 0..q {
            let da = to_digits(a);
            for b in 0..q {
                let db = to_digits(b);
                let sum: Vec<usize> = da.iter().zip(&db).map(|(&x, &y)| (x + y) % p).collect();
                add[a * q + b] = from_digits(&sum);
                // Schoolbook multiply into 2k−1 coefficients…
                let mut prod = vec![0usize; 2 * k - 1];
                for (i, &x) in da.iter().enumerate() {
                    for (j, &y) in db.iter().enumerate() {
                        prod[i + j] = (prod[i + j] + x * y) % p;
                    }
                }
                // …then reduce degrees ≥ k using x^k ≡ red.
                for deg in (k..2 * k - 1).rev() {
                    let coef = prod[deg];
                    if coef == 0 {
                        continue;
                    }
                    prod[deg] = 0;
                    // x^deg = x^(deg−k) · x^k ≡ x^(deg−k) · red.
                    for (i, &r) in red.iter().enumerate() {
                        prod[deg - k + i] = (prod[deg - k + i] + coef * r) % p;
                    }
                }
                mul[a * q + b] = from_digits(&prod[..k]);
            }
        }
        Some(Gf { q, add, mul })
    }

    /// Field size `q`.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Field addition.
    #[inline]
    pub fn add(&self, a: usize, b: usize) -> usize {
        self.add[a * self.q + b]
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: usize, b: usize) -> usize {
        self.mul[a * self.q + b]
    }
}

/// If `q = p^k` for prime `p` and `k ≥ 2`, return `(p, k)`.
fn factor_prime_power(q: usize) -> Option<(usize, usize)> {
    for p in 2..=q {
        if !is_prime(p) {
            continue;
        }
        let mut x = q;
        let mut k = 0;
        while x.is_multiple_of(p) {
            x /= p;
            k += 1;
        }
        if x == 1 && k >= 2 {
            return Some((p, k));
        }
        if q.is_multiple_of(p) {
            return None; // divisible by p but not a pure power of it
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_field_axioms(gf: &Gf) {
        let q = gf.q();
        // Additive and multiplicative identities.
        for a in 0..q {
            assert_eq!(gf.add(a, 0), a);
            assert_eq!(gf.mul(a, 1), a);
            assert_eq!(gf.mul(a, 0), 0);
        }
        // Commutativity + associativity (exhaustive — q is tiny).
        for a in 0..q {
            for b in 0..q {
                assert_eq!(gf.add(a, b), gf.add(b, a));
                assert_eq!(gf.mul(a, b), gf.mul(b, a));
                for c in 0..q {
                    assert_eq!(gf.add(gf.add(a, b), c), gf.add(a, gf.add(b, c)));
                    assert_eq!(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
                    // Distributivity.
                    assert_eq!(gf.mul(a, gf.add(b, c)), gf.add(gf.mul(a, b), gf.mul(a, c)));
                }
            }
        }
        // Every nonzero element has a multiplicative inverse.
        for a in 1..q {
            assert!(
                (1..q).any(|b| gf.mul(a, b) == 1),
                "no inverse for {a} in GF({q})"
            );
        }
        // Additive inverses.
        for a in 0..q {
            assert!((0..q).any(|b| gf.add(a, b) == 0));
        }
    }

    #[test]
    fn prime_fields() {
        for q in [2usize, 3, 5, 7, 11, 13] {
            check_field_axioms(&Gf::new(q).unwrap());
        }
    }

    #[test]
    fn prime_power_fields() {
        for q in [4usize, 8, 9, 16, 25, 27, 32, 49] {
            let gf = Gf::new(q).unwrap_or_else(|| panic!("GF({q}) should exist"));
            check_field_axioms(&gf);
        }
    }

    #[test]
    fn non_prime_powers_rejected() {
        for q in [0usize, 1, 6, 10, 12, 15, 20, 100] {
            assert!(Gf::new(q).is_none(), "GF({q}) must not exist");
        }
    }

    #[test]
    fn gf4_known_table() {
        // GF(4) with x² = x + 1: elements {0, 1, x=2, x+1=3}.
        let gf = Gf::new(4).unwrap();
        assert_eq!(gf.mul(2, 2), 3); // x·x = x+1
        assert_eq!(gf.mul(2, 3), 1); // x·(x+1) = x²+x = (x+1)+x = 1
        assert_eq!(gf.add(2, 3), 1); // x + (x+1) = 1
    }

    #[test]
    fn factor_prime_power_basics() {
        assert_eq!(factor_prime_power(4), Some((2, 2)));
        assert_eq!(factor_prime_power(27), Some((3, 3)));
        assert_eq!(factor_prime_power(7), None); // k = 1 handled as prime
        assert_eq!(factor_prime_power(12), None);
    }
}
