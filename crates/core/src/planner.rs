//! Optimal processor-grid selection (§5.4).
//!
//! Given `(n1, n2, P)`, pick the algorithm and grid that minimize the
//! predicted bandwidth cost:
//!
//! * Case 1 → 1D with all `P` ranks,
//! * Case 2 → 2D with `P = c(c+1)` (the largest prime `c` that fits),
//! * Case 3 → 3D with `p1 = (n1/n2)^{2/3}·P^{2/3}` and
//!   `p2 = (n2/n1)^{2/3}·P^{1/3}`, with `p1 = c(c+1)` rounded to a prime
//!   `c` and `p2` chosen to fit.
//!
//! Because `c` is constrained to primes, the planner enumerates all
//! feasible configurations and ranks them by predicted cost, rather than
//! trusting the closed-form split alone.

use crate::bounds::{
    alg1d_predicted_cost, alg2d_tight_cost, alg3d_predicted_cost, syrk_lower_bound,
};
use crate::dist::Gf;
use crate::primes::is_prime;

/// Why a requested algorithm/grid configuration is invalid — detected
/// before any simulated rank starts, so the fallible entry points
/// (`try_syrk_1d`/`_2d`/`_3d`) can reject it without panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// The run was asked for zero ranks (`p = 0` or `p2 = 0`).
    ZeroRanks,
    /// No triangle block construction exists for the grid order `c`
    /// (`P = c(c+1)` requires `c` prime or a supported prime power).
    UnsupportedOrder {
        /// The rejected grid order.
        c: usize,
    },
    /// The input matrix has a zero dimension.
    EmptyMatrix {
        /// Rows of `A`.
        n1: usize,
        /// Columns of `A`.
        n2: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PlanError::ZeroRanks => write!(f, "plan needs at least one rank"),
            PlanError::UnsupportedOrder { c } => {
                write!(
                    f,
                    "no triangle block construction for c = {c} (need a prime power)"
                )
            }
            PlanError::EmptyMatrix { n1, n2 } => {
                write!(
                    f,
                    "input matrix must have nonzero dimensions, got {n1}x{n2}"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// A concrete algorithm + grid choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Plan {
    /// Algorithm 1 on `p` ranks (partitions the `n2` dimension only).
    OneD {
        /// Number of ranks.
        p: usize,
    },
    /// Algorithm 2 with `P = c(c+1)` ranks (partitions both `n1`
    /// dimensions via the Triangle Block Distribution).
    TwoD {
        /// The prime grid parameter.
        c: usize,
    },
    /// Algorithm 3 on a `c(c+1) × p2` grid (partitions all three
    /// dimensions).
    ThreeD {
        /// The prime grid parameter of each slice.
        c: usize,
        /// Number of slices (the `n2`-dimension partition).
        p2: usize,
    },
}

impl Plan {
    /// Ranks the plan actually uses (≤ the budget it was planned for).
    pub fn ranks(&self) -> usize {
        match *self {
            Plan::OneD { p } => p,
            Plan::TwoD { c } => c * (c + 1),
            Plan::ThreeD { c, p2 } => c * (c + 1) * p2,
        }
    }
}

/// A plan with its predicted cost and the matching lower bound.
#[derive(Debug, Clone, Copy)]
pub struct RankedPlan {
    /// The algorithm/grid choice.
    pub plan: Plan,
    /// Predicted bandwidth cost (words at the busiest rank).
    pub predicted_cost: f64,
    /// Theorem 1 communicated lower bound at the plan's rank count.
    pub bound: f64,
}

/// Predicted bandwidth cost of a plan for an `(n1, n2)` instance.
pub fn predicted_cost(n1: usize, n2: usize, plan: Plan) -> f64 {
    match plan {
        Plan::OneD { p } => alg1d_predicted_cost(n1, p),
        Plan::TwoD { c } => alg2d_tight_cost(n1, n2, c),
        Plan::ThreeD { c, p2 } => alg3d_predicted_cost(n1, n2, c, p2),
    }
}

/// All orders `c ≤ cmax` with a known triangle block construction:
/// primes (the paper's cyclic scheme) and supported prime powers
/// (affine planes over GF(c)).
pub fn constructible_orders(cmax: usize) -> Vec<usize> {
    (2..=cmax)
        .filter(|&c| is_prime(c) || Gf::new(c).is_some())
        .collect()
}

/// Enumerate every feasible plan within a budget of `p` ranks.
pub fn candidate_plans(p: usize) -> Vec<Plan> {
    let mut plans = vec![Plan::OneD { p }];
    for c in constructible_orders(((p as f64).sqrt() as usize) + 2) {
        let p1 = c * (c + 1);
        if p1 > p {
            continue;
        }
        plans.push(Plan::TwoD { c });
        for p2 in 2..=(p / p1) {
            plans.push(Plan::ThreeD { c, p2 });
        }
    }
    plans
}

/// Memoized [`plan`] results. Planning is a pure function of
/// `(n1, n2, p)` but enumerates O(√p·p) candidates; large-P regime
/// sweeps (the event engine makes 10⁴–10⁵-rank runs routine) and the
/// serving path hammer the same keys across experiment points.
///
/// Two properties matter under concurrent traffic:
///
/// * **Incremental eviction.** The cache is bounded at
///   [`PLAN_CACHE_CAP`] ready entries, and crossing the cap evicts only
///   the oldest quarter (FIFO over insertion order) instead of wiping
///   everything — a sustained varied sweep keeps a warm working set and
///   never triggers a whole-cache recompute storm. Evicted-entry counts
///   land on `syrk_plan_cache_evictions`.
/// * **Miss coalescing.** Concurrent misses for the same key are
///   stampede-safe: the first thread inserts a pending slot and
///   computes; later arrivals block on that slot and are served the
///   published result. Exactly one miss is counted per cold key;
///   coalesced waiters count as hits (they are served without
///   recomputing).
///
/// Hit/miss/eviction counts land on the telemetry registry
/// (`syrk_plan_cache_{hits,misses,evictions}`).
type PlanKey = (usize, usize, usize);

enum Slot {
    /// A published result.
    Ready(RankedPlan),
    /// A miss in flight: the first thread computes, the rest wait here.
    Pending(std::sync::Arc<Pending>),
}

enum PendingState {
    Computing,
    Done(RankedPlan),
    /// The computing thread unwound before publishing; waiters retry.
    Abandoned,
}

struct Pending {
    state: std::sync::Mutex<PendingState>,
    cv: std::sync::Condvar,
}

impl Pending {
    fn new() -> Self {
        Pending {
            state: std::sync::Mutex::new(PendingState::Computing),
            cv: std::sync::Condvar::new(),
        }
    }

    fn publish(&self, state: PendingState) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = state;
        self.cv.notify_all();
    }

    /// Block until the computing thread publishes; `None` means it
    /// abandoned the slot (the caller should retry the whole lookup).
    fn wait(&self) -> Option<RankedPlan> {
        let mut guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match *guard {
                PendingState::Computing => {
                    guard = self.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
                }
                PendingState::Done(v) => return Some(v),
                PendingState::Abandoned => return None,
            }
        }
    }
}

struct PlanCache {
    map: std::collections::HashMap<PlanKey, Slot>,
    /// Ready keys in publication order — the FIFO eviction queue.
    /// Invariant: `order` holds exactly the `Ready` keys, each once.
    order: std::collections::VecDeque<PlanKey>,
}

static PLAN_CACHE: std::sync::OnceLock<std::sync::Mutex<PlanCache>> = std::sync::OnceLock::new();

/// Entry cap for the plan cache; a full sweep over every (n1, n2, P)
/// point in the repo's experiments is a few hundred keys.
pub const PLAN_CACHE_CAP: usize = 4096;

static PLAN_CACHE_HITS: syrk_machine::telemetry::LazyCounter =
    syrk_machine::telemetry::LazyCounter::new("syrk_plan_cache_hits");
static PLAN_CACHE_MISSES: syrk_machine::telemetry::LazyCounter =
    syrk_machine::telemetry::LazyCounter::new("syrk_plan_cache_misses");
static PLAN_CACHE_EVICTIONS: syrk_machine::telemetry::LazyCounter =
    syrk_machine::telemetry::LazyCounter::new("syrk_plan_cache_evictions");

fn plan_cache() -> &'static std::sync::Mutex<PlanCache> {
    PLAN_CACHE.get_or_init(|| {
        std::sync::Mutex::new(PlanCache {
            map: std::collections::HashMap::new(),
            order: std::collections::VecDeque::new(),
        })
    })
}

/// Number of ready (published) entries currently cached. Exposed for
/// the eviction regression tests and the server status page.
#[doc(hidden)]
pub fn plan_cache_len() -> usize {
    plan_cache()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .order
        .len()
}

/// Removes the pending slot again if the computing thread unwinds
/// before publishing, so coalesced waiters never hang on a dead miss.
struct PendingGuard {
    key: PlanKey,
    pending: std::sync::Arc<Pending>,
    published: bool,
}

impl Drop for PendingGuard {
    fn drop(&mut self) {
        if self.published {
            return;
        }
        let mut cache = plan_cache().lock().unwrap_or_else(|e| e.into_inner());
        if matches!(cache.map.get(&self.key), Some(Slot::Pending(p)) if std::sync::Arc::ptr_eq(p, &self.pending))
        {
            cache.map.remove(&self.key);
        }
        drop(cache);
        self.pending.publish(PendingState::Abandoned);
    }
}

/// Pick the feasible plan with the lowest predicted cost for
/// `(n1, n2)` on at most `p` ranks.
///
/// Results are memoized process-wide: planning is pure, so a repeat
/// query returns the cached [`RankedPlan`] (it is `Copy`) without
/// re-enumerating candidates. Concurrent cold lookups of the same key
/// coalesce onto one computation (see the cache docs above).
pub fn plan(n1: usize, n2: usize, p: usize) -> RankedPlan {
    let key = (n1, n2, p);
    loop {
        let waiter = {
            let mut cache = plan_cache().lock().unwrap_or_else(|e| e.into_inner());
            match cache.map.get(&key) {
                Some(Slot::Ready(hit)) => {
                    let hit = *hit;
                    PLAN_CACHE_HITS.inc();
                    return hit;
                }
                Some(Slot::Pending(pending)) => std::sync::Arc::clone(pending),
                None => {
                    let pending = std::sync::Arc::new(Pending::new());
                    cache
                        .map
                        .insert(key, Slot::Pending(std::sync::Arc::clone(&pending)));
                    drop(cache);
                    // Compute outside the lock: planning can take
                    // milliseconds at large p, and concurrent queries for
                    // different keys shouldn't serialize.
                    PLAN_CACHE_MISSES.inc();
                    let mut guard = PendingGuard {
                        key,
                        pending,
                        published: false,
                    };
                    let ranked = plan_uncached(n1, n2, p);
                    let mut cache = plan_cache().lock().unwrap_or_else(|e| e.into_inner());
                    if cache.order.len() >= PLAN_CACHE_CAP {
                        // Evict the oldest quarter in one deterministic
                        // batch: bounded work, and the newest 3/4 of the
                        // working set stays warm.
                        let batch = PLAN_CACHE_CAP / 4;
                        for _ in 0..batch {
                            if let Some(old) = cache.order.pop_front() {
                                cache.map.remove(&old);
                            }
                        }
                        PLAN_CACHE_EVICTIONS.add(batch as u64);
                    }
                    cache.map.insert(key, Slot::Ready(ranked));
                    cache.order.push_back(key);
                    drop(cache);
                    guard.published = true;
                    guard.pending.publish(PendingState::Done(ranked));
                    return ranked;
                }
            }
        };
        // Wait outside the cache lock; a served waiter is a hit (the
        // coalesced miss was already counted by the computing thread).
        if let Some(ranked) = waiter.wait() {
            PLAN_CACHE_HITS.inc();
            return ranked;
        }
    }
}

/// The uncached planner: enumerate every feasible candidate and rank by
/// predicted cost.
fn plan_uncached(n1: usize, n2: usize, p: usize) -> RankedPlan {
    let best = candidate_plans(p)
        .into_iter()
        .map(|pl| (pl, predicted_cost(n1, n2, pl)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("at least the 1D plan is always feasible");
    let bound = syrk_lower_bound(n1, n2, best.0.ranks()).communicated();
    RankedPlan {
        plan: best.0,
        predicted_cost: best.1,
        bound,
    }
}

/// The paper's closed-form §5.4 grid for Case 3 (before prime rounding):
/// `p1 = (n1/n2)^{2/3}·P^{2/3}`, `p2 = (n2/n1)^{2/3}·P^{1/3}`.
pub fn ideal_case3_grid(n1: usize, n2: usize, p: usize) -> (f64, f64) {
    let (n1, n2, p) = (n1 as f64, n2 as f64, p as f64);
    (
        (n1 / n2).powf(2.0 / 3.0) * p.powf(2.0 / 3.0),
        (n2 / n1).powf(2.0 / 3.0) * p.cbrt(),
    )
}

/// The constructible `c` whose `c(c+1)` is nearest to a real target from
/// below or above, restricted to `c(c+1) ≤ cap`.
pub fn nearest_triangle_c(target: f64, cap: usize) -> Option<usize> {
    let mut best: Option<(f64, usize)> = None;
    for c in constructible_orders((cap as f64).sqrt() as usize + 1) {
        if c * (c + 1) > cap {
            continue;
        }
        let d = ((c * (c + 1)) as f64 - target).abs();
        if best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, c));
        }
    }
    best.map(|(_, c)| c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_cache_returns_identical_plans_and_counts() {
        // A key unlikely to collide with other tests, so the first query
        // is a genuine miss even when the process-wide cache is warm.
        let (n1, n2, p) = (7919, 6007, 97);
        let cold = plan(n1, n2, p);
        let before = syrk_machine::telemetry::registry::snapshot();
        let warm = plan(n1, n2, p);
        let after = syrk_machine::telemetry::registry::snapshot();
        // Bitwise-identical ranked plan from the cache.
        assert_eq!(cold.plan, warm.plan);
        assert_eq!(cold.predicted_cost.to_bits(), warm.predicted_cost.to_bits());
        assert_eq!(cold.bound.to_bits(), warm.bound.to_bits());
        // The warm query hit (other tests may hit concurrently, so the
        // counter moves by at least one and misses don't move for this
        // key — asserted as monotone non-decreasing overall).
        let hits_before = before.counter("syrk_plan_cache_hits").unwrap_or(0);
        let hits_after = after.counter("syrk_plan_cache_hits").unwrap_or(0);
        assert!(
            hits_after > hits_before,
            "warm plan() query must hit the cache"
        );
        // And the cache genuinely matches the uncached computation.
        let direct = plan_uncached(n1, n2, p);
        assert_eq!(direct.plan, warm.plan);
        assert_eq!(
            direct.predicted_cost.to_bits(),
            warm.predicted_cost.to_bits()
        );
    }

    #[test]
    fn case1_shapes_choose_1d() {
        // Short-wide A, few processors: Case 1 ⇒ 1D.
        let rp = plan(100, 100_000, 8);
        assert_eq!(rp.plan, Plan::OneD { p: 8 });
        assert!(rp.predicted_cost >= rp.bound * 0.9);
    }

    #[test]
    fn case2_shapes_choose_2d() {
        // Tall-skinny A: Case 2 ⇒ 2D with the largest prime grid ≤ P.
        let rp = plan(100_000, 10, 30);
        assert_eq!(rp.plan, Plan::TwoD { c: 5 });
    }

    #[test]
    fn case3_shapes_choose_3d() {
        // Square A with many processors: Case 3 ⇒ 3D.
        let rp = plan(1000, 1000, 120);
        match rp.plan {
            Plan::ThreeD { c, p2 } => {
                assert!(c * (c + 1) * p2 <= 120);
                assert!(p2 >= 2);
            }
            other => panic!("expected 3D, got {other:?}"),
        }
    }

    #[test]
    fn ideal_grid_matches_cost_balance() {
        // With the ideal grid the two 3D cost terms are equal:
        // n1n2/(√p1·p2) = n1²/(2p1) ⟺ p1^{1/2}/p2 · n2/n1 = 1/2 · ... —
        // verify numerically instead: plug the ideal grid into the
        // leading cost and compare to (3/2)(n1(n1−1)n2/P)^{2/3}.
        let (n1, n2, p) = (4096, 1024, 4096);
        let (p1, p2) = ideal_case3_grid(n1, n2, p);
        assert!((p1 * p2 - p as f64).abs() < 1e-6 * p as f64);
        let cost = (n1 * n2) as f64 / (p1.sqrt() * p2) + (n1 * n1) as f64 / (2.0 * p1);
        let w = crate::bounds::syrk_lower_bound(n1, n2, p).w;
        assert!((cost / w - 1.0).abs() < 0.01, "cost {cost} vs W {w}");
    }

    #[test]
    fn plan_ranks_never_exceed_budget() {
        for &(n1, n2, p) in &[(50, 5000, 13), (5000, 50, 47), (300, 300, 97), (2, 2, 1)] {
            let rp = plan(n1, n2, p);
            assert!(rp.plan.ranks() <= p, "({n1},{n2},{p}) -> {:?}", rp.plan);
        }
    }

    #[test]
    fn candidates_include_all_three_kinds() {
        let plans = candidate_plans(60);
        assert!(plans.contains(&Plan::OneD { p: 60 }));
        assert!(plans.contains(&Plan::TwoD { c: 5 }));
        assert!(plans.contains(&Plan::ThreeD { c: 2, p2: 10 }));
        assert!(plans.contains(&Plan::ThreeD { c: 3, p2: 5 }));
        // 7·8 = 56 ≤ 60 but leaves no room for p2 ≥ 2.
        assert!(plans.contains(&Plan::TwoD { c: 7 }));
        assert!(!plans.iter().any(|p| matches!(p, Plan::ThreeD { c: 7, .. })));
    }

    #[test]
    fn nearest_prime_grid() {
        assert_eq!(nearest_triangle_c(12.0, 1000), Some(3));
        assert_eq!(nearest_triangle_c(40.0, 1000), Some(5)); // 30 vs 56
        assert_eq!(nearest_triangle_c(50.0, 1000), Some(7)); // 56 beats 30
        assert_eq!(nearest_triangle_c(100.0, 30), Some(5)); // capped
        assert_eq!(nearest_triangle_c(100.0, 5), None);
    }

    #[test]
    fn crossover_moves_from_1d_to_3d_with_p() {
        // Fixed shape; as P grows past n2/√(n1(n1−1)) the best plan should
        // switch from 1D to 3D (E8).
        let (n1, n2) = (64, 4096);
        let small = plan(n1, n2, 16);
        assert!(matches!(small.plan, Plan::OneD { .. }), "{:?}", small.plan);
        let large = plan(n1, n2, 4000);
        assert!(
            matches!(large.plan, Plan::ThreeD { .. }),
            "{:?}",
            large.plan
        );
    }
}
