//! Bound attribution: measured per-phase communication vs. the paper's
//! per-term analytic predictions.
//!
//! Theorem 1's bounds decompose into per-array terms — the `A`-side
//! replication term and the `C`-side output term — and each algorithm
//! pays each term in one named phase:
//!
//! | algorithm | phase                | bound term                  | exact prediction            |
//! |-----------|----------------------|-----------------------------|-----------------------------|
//! | 1D (§5.1) | [`PHASE_REDUCE_SCATTER_C`] | `n1(n1−1)/2` (Case 1) | eq. (3): `n1(n1+1)/2·(1−1/P)` |
//! | 2D (§5.2) | [`PHASE_ALLGATHER_A`]      | `n1·n2/√P` (Case 2)   | tight: `n1n2/(c+1)`         |
//! | 3D (§5.3) | [`PHASE_ALLGATHER_A`]      | `n1n2/(√p1·p2)`       | eq. (12) `A` term           |
//! | 3D (§5.3) | [`PHASE_REDUCE_SCATTER_C`] | `n1²/(2p1)`           | eq. (12) `C` term           |
//!
//! [`attribute_bounds`] pairs the per-phase `max_words_sent` from a
//! measured [`CostReport`] with those terms and renders a residual table,
//! the term-by-term comparison style of Al Daas et al.'s SPAA '22 GEMM
//! analysis.

use std::fmt;

use syrk_machine::CostReport;

use crate::bounds::{
    alg1d_predicted_cost, alg2d_tight_cost, alg3d_a_term, alg3d_c_term, alg3d_leading_a_term,
    alg3d_leading_c_term, thm1_case1_c_term, thm1_case2_a_term,
};
use crate::planner::Plan;

/// Phase name for the exchange that replicates `A` within processor sets
/// (the 2D/3D all-to-all realizing per-block all-gathers).
pub const PHASE_ALLGATHER_A: &str = "allgather-A";
/// Phase name for the Reduce-Scatter that sums and distributes `C`.
pub const PHASE_REDUCE_SCATTER_C: &str = "reduce-scatter-C";
/// Phase name for local SYRK kernels (1D whole-block, 2D/3D diagonal).
pub const PHASE_LOCAL_SYRK: &str = "local-syrk";
/// Phase name for local off-diagonal GEMM kernels (2D/3D).
pub const PHASE_LOCAL_GEMM: &str = "local-gemm";

/// One phase's measured words compared against its analytic terms.
#[derive(Debug, Clone, PartialEq)]
pub struct TermAttribution {
    /// The instrumented phase this term is paid in.
    pub phase: &'static str,
    /// Human-readable formula of the bound term.
    pub term: &'static str,
    /// The Theorem 1 / leading-order term value in words.
    pub bound_term: f64,
    /// The algorithm's exact predicted words for this phase
    /// (eqs. (3) / tight-(10) / (12)).
    pub predicted: f64,
    /// Measured `max_p words_sent(p)` within the phase.
    pub measured: u64,
}

impl TermAttribution {
    /// `measured / bound_term` — how far above (or below: constructions
    /// can undercut a leading-order term) the measurement sits.
    pub fn ratio_to_bound(&self) -> f64 {
        if self.bound_term == 0.0 {
            if self.measured == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.measured as f64 / self.bound_term
        }
    }

    /// `measured − predicted`: the residual against the exact analysis
    /// (rounding from uneven block splits, padding, etc.).
    pub fn residual(&self) -> f64 {
        self.measured as f64 - self.predicted
    }
}

/// A per-term residual table for one measured run.
#[derive(Debug, Clone)]
pub struct AttributionReport {
    /// Rows of `C` (and its order).
    pub n1: usize,
    /// Columns of `A`.
    pub n2: usize,
    /// The plan the run executed.
    pub plan: Plan,
    /// One row per (phase, bound term) pair the plan pays.
    pub rows: Vec<TermAttribution>,
}

impl AttributionReport {
    /// The row for `phase`, if the plan pays a term there.
    pub fn row(&self, phase: &str) -> Option<&TermAttribution> {
        self.rows.iter().find(|r| r.phase == phase)
    }
}

impl fmt::Display for AttributionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let plan = match self.plan {
            Plan::OneD { p } => format!("1D (P={p})"),
            Plan::TwoD { c } => format!("2D (c={c}, P={})", self.plan.ranks()),
            Plan::ThreeD { c, p2 } => {
                format!("3D (c={c}, p2={p2}, P={})", self.plan.ranks())
            }
        };
        writeln!(f, "Bound attribution: {plan} on A {}x{}", self.n1, self.n2)?;
        writeln!(
            f,
            "  {:<18} {:<16} {:>12} {:>12} {:>10} {:>10} {:>10}",
            "phase", "term", "bound", "predicted", "measured", "meas/bnd", "residual"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<18} {:<16} {:>12.1} {:>12.1} {:>10} {:>10.3} {:>+10.1}",
                r.phase,
                r.term,
                r.bound_term,
                r.predicted,
                r.measured,
                r.ratio_to_bound(),
                r.residual(),
            )?;
        }
        Ok(())
    }
}

/// Build the per-term residual table for a measured run of `plan` on an
/// `(n1, n2)` instance: each analytic term the plan pays is paired with
/// the measured `max_words_sent` of the phase that pays it.
pub fn attribute_bounds(n1: usize, n2: usize, plan: Plan, cost: &CostReport) -> AttributionReport {
    let rows = match plan {
        Plan::OneD { p } => vec![TermAttribution {
            phase: PHASE_REDUCE_SCATTER_C,
            term: "n1(n1-1)/2",
            bound_term: thm1_case1_c_term(n1),
            predicted: alg1d_predicted_cost(n1, p),
            measured: cost.phase_max_words_sent(PHASE_REDUCE_SCATTER_C),
        }],
        Plan::TwoD { c } => vec![TermAttribution {
            phase: PHASE_ALLGATHER_A,
            term: "n1*n2/sqrt(P)",
            bound_term: thm1_case2_a_term(n1, n2, plan.ranks()),
            predicted: alg2d_tight_cost(n1, n2, c),
            measured: cost.phase_max_words_sent(PHASE_ALLGATHER_A),
        }],
        Plan::ThreeD { c, p2 } => {
            let p1 = c * (c + 1);
            vec![
                TermAttribution {
                    phase: PHASE_ALLGATHER_A,
                    term: "n1n2/(sqrt(p1)p2)",
                    bound_term: alg3d_leading_a_term(n1, n2, p1, p2),
                    predicted: alg3d_a_term(n1, n2, c, p2),
                    measured: cost.phase_max_words_sent(PHASE_ALLGATHER_A),
                },
                TermAttribution {
                    phase: PHASE_REDUCE_SCATTER_C,
                    term: "n1^2/(2p1)",
                    bound_term: alg3d_leading_c_term(n1, p1),
                    predicted: alg3d_c_term(n1, c, p2),
                    measured: cost.phase_max_words_sent(PHASE_REDUCE_SCATTER_C),
                },
            ]
        }
    };
    AttributionReport { n1, n2, plan, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{syrk_1d, syrk_2d, syrk_3d};
    use syrk_dense::seeded_matrix;
    use syrk_machine::CostModel;

    #[test]
    fn two_d_allgather_within_2x_of_case2_term() {
        // The ISSUE acceptance shape: (36, 8, c=3), P = 12.
        let (n1, n2, c) = (36, 8, 3);
        let a = seeded_matrix::<f64>(n1, n2, 4);
        let run = syrk_2d(&a, c, CostModel::bandwidth_only());
        let plan = Plan::TwoD { c };
        let report = attribute_bounds(n1, n2, plan, &run.cost);
        let row = report.row(PHASE_ALLGATHER_A).expect("2D pays the A term");
        assert!(row.measured > 0);
        let ratio = row.ratio_to_bound();
        assert!(
            (0.5..=2.0).contains(&ratio),
            "allgather-A measured {} vs bound {} (ratio {ratio})",
            row.measured,
            row.bound_term
        );
        // The exact (tight) prediction is sharp at this exact-division
        // shape: residual within one word.
        assert!(row.residual().abs() <= 1.0, "residual {}", row.residual());
        // Report renders.
        let text = report.to_string();
        assert!(text.contains("allgather-A"), "{text}");
    }

    #[test]
    fn one_d_reduction_matches_eq3() {
        let (n1, n2, p) = (20, 40, 5);
        let a = seeded_matrix::<f64>(n1, n2, 3);
        let run = syrk_1d(&a, p, CostModel::bandwidth_only());
        let report = attribute_bounds(n1, n2, Plan::OneD { p }, &run.cost);
        let row = report.row(PHASE_REDUCE_SCATTER_C).unwrap();
        assert!(row.measured > 0);
        assert!(row.residual().abs() <= 1.0, "residual {}", row.residual());
    }

    #[test]
    fn three_d_pays_both_terms() {
        let (n1, n2, c, p2) = (36, 24, 3, 4);
        let a = seeded_matrix::<f64>(n1, n2, 6);
        let run = syrk_3d(&a, c, p2, CostModel::bandwidth_only());
        let report = attribute_bounds(n1, n2, Plan::ThreeD { c, p2 }, &run.cost);
        let a_row = report.row(PHASE_ALLGATHER_A).unwrap();
        let c_row = report.row(PHASE_REDUCE_SCATTER_C).unwrap();
        assert!(a_row.measured > 0 && c_row.measured > 0);
        // Unpadded A exchange: measured ≤ the padded eq. (12) A term.
        assert!(a_row.measured as f64 <= a_row.predicted * 1.05);
        // The C term's reduce-scatter matches eq. (12) up to the exact
        // |C_k| of this grid (within a few words of rounding).
        assert!(
            (c_row.measured as f64) <= c_row.predicted * 1.3 + 2.0,
            "C measured {} vs predicted {}",
            c_row.measured,
            c_row.predicted
        );
    }
}
