//! Typed errors for the fallible `try_syrk_*` entry points.

use crate::planner::PlanError;
use syrk_machine::MachineError;

/// Why a fallible SYRK run failed: either the requested configuration was
/// rejected before any rank started ([`PlanError`]) or the simulated
/// machine aborted mid-run ([`MachineError`] — crash, deadlock, peer
/// failure, …).
#[derive(Debug, Clone, PartialEq)]
pub enum SyrkError {
    /// The grid/shape configuration is invalid.
    Plan(PlanError),
    /// The simulated machine failed during the run.
    Machine(MachineError),
}

impl std::fmt::Display for SyrkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyrkError::Plan(e) => write!(f, "invalid SYRK plan: {e}"),
            SyrkError::Machine(e) => write!(f, "machine failure: {e}"),
        }
    }
}

impl std::error::Error for SyrkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SyrkError::Plan(e) => Some(e),
            SyrkError::Machine(e) => Some(e),
        }
    }
}

impl From<PlanError> for SyrkError {
    fn from(e: PlanError) -> Self {
        SyrkError::Plan(e)
    }
}

impl From<MachineError> for SyrkError {
    fn from(e: MachineError) -> Self {
        SyrkError::Machine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn displays_carry_the_cause() {
        let e = SyrkError::from(PlanError::UnsupportedOrder { c: 4 });
        assert!(e.to_string().contains("no triangle block construction"));
        assert!(e.source().is_some());
        let e = SyrkError::from(MachineError::PeerFailed { rank: 3 });
        assert!(e.to_string().contains("machine failure"));
    }
}
