//! Primality helpers for the triangle block distribution.
//!
//! The 2D and 3D algorithms assume `p1 = c(c+1)` for a *prime* `c` (§5):
//! primality of `c` is a sufficient condition for the cyclic triangle
//! block partition of the `c² × c²` block grid to be valid.

/// Deterministic primality test (trial division; `c` values in practice
/// are tiny — a few hundred at most).
pub fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// If `p = c(c+1)` for a prime `c`, return that `c`.
pub fn triangle_c_for(p: usize) -> Option<usize> {
    // c = ⌊√p⌋ is the only candidate since c(c+1) is strictly monotone.
    let c = (p as f64).sqrt() as usize;
    [c.saturating_sub(1), c, c + 1]
        .into_iter()
        .find(|&cand| cand >= 1 && cand * (cand + 1) == p && is_prime(cand))
}

/// The largest prime `c` with `c(c+1) ≤ p`, if any (used by the planner
/// when `P` itself is not of the form `c(c+1)`).
pub fn largest_triangle_c_at_most(p: usize) -> Option<usize> {
    let mut c = (p as f64).sqrt() as usize + 1;
    while c >= 2 {
        if c * (c + 1) <= p && is_prime(c) {
            return Some(c);
        }
        c -= 1;
    }
    None
}

/// All valid processor counts `c(c+1)` with prime `c ≤ cmax`.
pub fn valid_grid_sizes(cmax: usize) -> Vec<(usize, usize)> {
    (2..=cmax)
        .filter(|&c| is_prime(c))
        .map(|c| (c, c * (c + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let primes: Vec<usize> = (0..30).filter(|&n| is_prime(n)).collect();
        assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
    }

    #[test]
    fn triangle_c_roundtrip() {
        assert_eq!(triangle_c_for(6), Some(2));
        assert_eq!(triangle_c_for(12), Some(3));
        assert_eq!(triangle_c_for(30), Some(5));
        assert_eq!(triangle_c_for(56), Some(7));
        assert_eq!(triangle_c_for(20), None); // 4·5 but 4 is not prime
        assert_eq!(triangle_c_for(7), None);
        assert_eq!(triangle_c_for(0), None);
    }

    #[test]
    fn largest_c_at_most() {
        assert_eq!(largest_triangle_c_at_most(12), Some(3));
        assert_eq!(largest_triangle_c_at_most(29), Some(3)); // 5·6=30 > 29
        assert_eq!(largest_triangle_c_at_most(30), Some(5));
        assert_eq!(largest_triangle_c_at_most(100), Some(7)); // 7·8=56; 11·12=132
        assert_eq!(largest_triangle_c_at_most(5), None);
    }

    #[test]
    fn valid_sizes_are_triangle_numbers_of_primes() {
        let v = valid_grid_sizes(11);
        assert_eq!(v, vec![(2, 6), (3, 12), (5, 30), (7, 56), (11, 132)]);
        for (c, p) in v {
            assert_eq!(triangle_c_for(p), Some(c));
        }
    }
}
