//! The distributed SYRK algorithms (§5) and the GEMM/ScaLAPACK baselines.

mod baselines;
mod common;
mod limited;
mod oned;
mod symm;
mod syr2k;
mod threed;
mod twod;

pub use baselines::{gemm_1d, gemm_2d, gemm_3d, scalapack_syrk_2d};
pub use common::{assemble_c, DiagBlock, LocalOutput, OffDiagBlock, SyrkRunResult};
pub use limited::syrk_2d_limited;
pub use oned::{
    syrk_1d, syrk_1d_traced, syrk_1d_with, try_syrk_1d, try_syrk_1d_abft, try_syrk_1d_traced,
};
pub use symm::{symm_2d, symm_reference, SymmRunResult};
pub use syr2k::{syr2k_1d, syr2k_2d};
pub use threed::{syrk_3d, syrk_3d_traced, try_syrk_3d, try_syrk_3d_traced};
pub use twod::{
    syrk_2d, syrk_2d_padded, syrk_2d_traced, try_syrk_2d, try_syrk_2d_abft, try_syrk_2d_traced,
};
