//! Distributed SYMM — `C = A·B` with a *symmetric* `A` (n×n, stored by
//! its lower triangle) and dense `B` (n×m) — the last of the paper's §6
//! future-work kernels ("symmetric matrix multiplication (SYMM)").
//!
//! The triangle block distribution now lives on the symmetric *input*:
//! processor `k` permanently owns the blocks `A_ij` with `i, j ∈ R_k`
//! (`i > j`, plus its diagonal block if assigned) — `A` never moves.
//! Each owned block serves double duty (`A_ij·B_j → C_i` and
//! `A_ijᵀ·B_i → C_j`), which is the symmetry saving. The communication
//! is two personalized All-to-Alls over the same pair structure as
//! Algorithm 2:
//!
//! 1. **gather `B`**: rank `k` collects `B_j` for `j ∈ R_k` from the
//!    conformal distribution (`n·m/(c+1)` words), and
//! 2. **reduce `C`**: partial `C_i` contributions flow back along the
//!    same pairs, leaving `C_i` conformally distributed over `Q_i`
//!    (`n·m/(c+1)` words).
//!
//! Total: `2nm/(c+1) ≈ 2nm/√P` — independent of `n²`, i.e. the
//! `n × n` symmetric operand contributes **zero** communication.

use syrk_dense::{gemm_flops, mul_nn, Matrix};
use syrk_machine::{CostModel, Machine};

use crate::dist::{ConformalADist, TriangleBlockDist};
use syrk_machine::CostReport;

/// Result of a distributed SYMM run.
#[derive(Debug)]
pub struct SymmRunResult {
    /// `C = A·B` assembled (`n × m`).
    pub c: Matrix<f64>,
    /// Cost report of the run.
    pub cost: CostReport,
}

/// Run the 2D SYMM on `P = c(c+1)` simulated ranks. `a_sym` must be
/// symmetric (only its lower triangle is read); `b` is `n × m`.
pub fn symm_2d(a_sym: &Matrix<f64>, b: &Matrix<f64>, c: usize, model: CostModel) -> SymmRunResult {
    let n = a_sym.rows();
    assert_eq!(a_sym.cols(), n, "SYMM needs a square symmetric A");
    assert_eq!(b.rows(), n, "B must have n rows");
    let m = b.cols();
    let dist = TriangleBlockDist::for_order(c)
        .unwrap_or_else(|| panic!("no triangle block construction for c = {c}"));
    // Conformal layout of the n×m operands B and C over the c² row blocks.
    let bd = ConformalADist::new(&dist, n, m);
    let rows = &bd.rows;

    let machine = Machine::new(dist.p()).with_model(model);
    let out = machine.run(|comm| {
        let k = comm.rank();
        let my_chunk = |i: usize| bd.extract_chunk(b, i, k);

        // Phase 1: gather B_j for j ∈ R_k (identical pattern to Alg. 2's
        // A gather).
        let blocks: Vec<Vec<f64>> = (0..comm.size())
            .map(|k2| {
                if k2 == k {
                    Vec::new()
                } else {
                    dist.common_block(k, k2).map(&my_chunk).unwrap_or_default()
                }
            })
            .collect();
        let received = comm.all_to_all(blocks);
        let gathered: Vec<(usize, Matrix<f64>)> = dist
            .r_set(k)
            .iter()
            .map(|&i| {
                let chunks: Vec<Vec<f64>> = dist
                    .q_set(i)
                    .iter()
                    .map(|&q| {
                        if q == k {
                            my_chunk(i)
                        } else {
                            received[q].clone()
                        }
                    })
                    .collect();
                (i, bd.assemble_block(i, &chunks))
            })
            .collect();
        let b_block = |i: usize| {
            &gathered
                .iter()
                .find(|&&(bi, _)| bi == i)
                .expect("j ∈ R_k gathered")
                .1
        };

        // Phase 2: local compute. partial[i] accumulates this rank's
        // contribution to C_i, for each i ∈ R_k.
        let mut partial: Vec<(usize, Matrix<f64>)> = dist
            .r_set(k)
            .iter()
            .map(|&i| (i, Matrix::zeros(rows.len(i), m)))
            .collect();
        let mut add_into = |i: usize, contrib: &Matrix<f64>| {
            let slot = partial
                .iter_mut()
                .find(|(bi, _)| *bi == i)
                .expect("contribution targets an owned row block");
            slot.1.add_assign(contrib);
        };
        // A block row/col ranges follow the same row partition as B.
        let a_block = |bi: usize, bj: usize| -> Matrix<f64> {
            let (ri, rj) = (rows.range(bi), rows.range(bj));
            a_sym.block_owned(ri.start, rj.start, ri.len(), rj.len())
        };
        for (i, j) in dist.blocks_of(k) {
            let aij = a_block(i, j);
            // C_i += A_ij · B_j.
            add_into(i, &mul_nn(&aij, b_block(j)));
            // C_j += A_ijᵀ · B_i  (= A_ji · B_i by symmetry): compute as
            // (B_iᵀ · A_ij)ᵀ without forming A_ijᵀ: use gemm_nt with
            // operands transposed — simplest is explicit transpose (the
            // block is small).
            add_into(j, &mul_nn(&aij.transpose(), b_block(i)));
            comm.add_flops(2 * gemm_flops(aij.rows(), m, aij.cols()));
        }
        if let Some(i) = dist.d_block(k) {
            let aii = a_block(i, i);
            // The diagonal block is symmetric; only its lower triangle is
            // authoritative, so symmetrize before multiplying.
            let mut full = aii.clone();
            for r in 0..full.rows() {
                for s in r + 1..full.cols() {
                    full[(r, s)] = full[(s, r)];
                }
            }
            add_into(i, &mul_nn(&full, b_block(i)));
            comm.add_flops(gemm_flops(full.rows(), m, full.cols()));
        }

        // Phase 3: reduce C along the same pair structure — rank k sends
        // to k' the chunk (k'’s conformal slice) of its partial C_i for
        // the shared block i; every rank then sums what it receives with
        // its own slice, ending with C conformally distributed.
        let chunk_of = |mat: &Matrix<f64>, i: usize, owner: usize| -> Vec<f64> {
            let part = syrk_dense::Partition1D::new(mat.len(), dist.c() + 1);
            let flat = mat.as_slice();
            flat[part.range(dist.chunk_index(i, owner))].to_vec()
        };
        let c_blocks: Vec<Vec<f64>> = (0..comm.size())
            .map(|k2| {
                if k2 == k {
                    return Vec::new();
                }
                match dist.common_block(k, k2) {
                    Some(i) => {
                        let mat = &partial
                            .iter()
                            .find(|(bi, _)| *bi == i)
                            .expect(
                                "common_block(k, k2) = Some(i) implies i ∈ R_k, and `partial` \
                                 holds one accumulator per block of R_k",
                            )
                            .1;
                        chunk_of(mat, i, k2)
                    }
                    None => Vec::new(),
                }
            })
            .collect();
        let c_recv = comm.all_to_all(c_blocks);
        // Final owned chunks: for each i ∈ R_k, my slice of C_i = my
        // partial slice + the slices received from the other Q_i members.
        let mut final_chunks: Vec<(usize, Vec<f64>)> = Vec::with_capacity(dist.r_set(k).len());
        for &(i, ref mat) in &partial {
            let mut acc = chunk_of(mat, i, k);
            for &q in dist.q_set(i) {
                if q == k {
                    continue;
                }
                let inc = &c_recv[q];
                assert_eq!(inc.len(), acc.len(), "C-reduce chunk length mismatch");
                for (a, b) in acc.iter_mut().zip(inc) {
                    *a += b;
                }
                comm.add_flops(acc.len() as u64);
            }
            final_chunks.push((i, acc));
        }
        final_chunks
    });

    // Assembly: collect each C_i's chunks (in Q_i order) and reconstruct.
    let mut c_full = Matrix::zeros(n, m);
    for i in 0..dist.num_blocks() {
        let chunks: Vec<Vec<f64>> = dist
            .q_set(i)
            .iter()
            .map(|&k| {
                out.results[k]
                    .iter()
                    .find(|(bi, _)| *bi == i)
                    .expect("every Q_i member ends with a chunk of C_i")
                    .1
                    .clone()
            })
            .collect();
        let block = bd.assemble_block(i, &chunks);
        c_full.set_block(rows.range(i).start, 0, &block);
    }
    SymmRunResult {
        c: c_full,
        cost: out.cost,
    }
}

/// Sequential reference: `C = sym(A)·B` where only the lower triangle of
/// `a_sym` is trusted.
pub fn symm_reference(a_sym: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<f64> {
    let n = a_sym.rows();
    let mut full = a_sym.clone();
    for i in 0..n {
        for j in i + 1..n {
            full[(i, j)] = full[(j, i)];
        }
    }
    mul_nn(&full, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use syrk_dense::{max_abs_diff, seeded_int_matrix, seeded_matrix};

    fn symmetric(n: usize, seed: u64) -> Matrix<f64> {
        let raw = seeded_matrix::<f64>(n, n, seed);
        let mut s = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                s[(i, j)] = raw[(i, j)] + raw[(j, i)];
            }
        }
        s
    }

    #[test]
    fn symm_correct_various_shapes() {
        for &(n, m, c) in &[(8usize, 3usize, 2usize), (18, 5, 3), (27, 4, 3), (10, 2, 3)] {
            let a = symmetric(n, (n + m) as u64);
            let b = seeded_matrix::<f64>(n, m, 77);
            let run = symm_2d(&a, &b, c, CostModel::bandwidth_only());
            let err = max_abs_diff(&run.c, &symm_reference(&a, &b));
            assert!(err < 1e-9, "(n={n},m={m},c={c}): {err}");
        }
    }

    #[test]
    fn symm_exact_with_integer_data() {
        let n = 16;
        let raw = seeded_int_matrix::<f64>(n, n, 3, 5);
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                a[(i, j)] = raw[(i, j)];
                a[(j, i)] = raw[(i, j)];
            }
        }
        let b = seeded_int_matrix::<f64>(n, 4, 3, 6);
        let run = symm_2d(&a, &b, 2, CostModel::bandwidth_only());
        assert_eq!(max_abs_diff(&run.c, &symm_reference(&a, &b)), 0.0);
    }

    #[test]
    fn a_never_moves_and_comm_is_2nm_over_c_plus_1() {
        // The headline property of symmetric-input SYMM: communication is
        // independent of n² — only B and C move, 2·nm/(c+1) words/rank.
        let (n, m, c) = (36usize, 8usize, 3usize);
        let a = symmetric(n, 9);
        let b = seeded_matrix::<f64>(n, m, 10);
        let run = symm_2d(&a, &b, c, CostModel::bandwidth_only());
        let expect = 2 * n * m / (c + 1);
        let measured = run.cost.max_words_sent() as usize;
        assert!(
            measured.abs_diff(expect) <= c * c,
            "measured {measured}, expected ~{expect}"
        );
        // Doubling n (with m fixed) must NOT double the communication…
        let a2 = symmetric(2 * n, 11);
        let b2 = seeded_matrix::<f64>(2 * n, m, 12);
        let run2 = symm_2d(&a2, &b2, c, CostModel::bandwidth_only());
        // …it exactly doubles with n·m (linear in n), not with n².
        let ratio = run2.cost.max_words_sent() as f64 / run.cost.max_words_sent() as f64;
        assert!((ratio - 2.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn two_all_to_alls_of_latency() {
        let (n, m, c) = (18usize, 4usize, 3usize);
        let a = symmetric(n, 1);
        let b = seeded_matrix::<f64>(n, m, 2);
        let run = symm_2d(&a, &b, c, CostModel::bandwidth_only());
        let p = c * (c + 1);
        assert_eq!(run.cost.max_messages(), 2 * (p - 1) as u64);
    }
}
