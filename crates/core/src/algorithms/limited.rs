//! Limited-memory SYRK (§6: "the 3D algorithm may not be feasible in
//! limited-memory scenarios … We plan to explore algorithms that attain
//! the memory-dependent lower bound in future work").
//!
//! This module implements the natural panel-streaming variant of the 2D
//! algorithm: instead of gathering all `n2` columns of its `R_k` row
//! blocks at once, each rank processes the columns in `rounds` panels —
//! gather a panel (All-to-All), accumulate its contribution into the
//! locally owned `C` blocks, discard the panel, repeat.
//!
//! * **Communication volume for `A` is unchanged** (every chunk still
//!   crosses the network exactly once): `n1n2/(c+1)` words per rank.
//! * **Latency multiplies by `rounds`** (one All-to-All per panel).
//! * **Peak memory shrinks**: the transient gathered-panel buffer drops
//!   from `c·(n1/c²)·n2` to `c·(n1/c²)·⌈n2/rounds⌉` words.
//!
//! That is exactly the trade the memory-dependent regime prescribes, and
//! it lets the per-rank footprint be driven down toward the
//! `O((n1²/2 + n1n2)/P)` balanced-data budget.

use syrk_dense::{
    gemm_flops, gemm_nt, syrk_flops, syrk_packed, Diag, Matrix, PackedLower, Partition1D,
};
use syrk_machine::{CostModel, Machine};

use super::common::{assemble_c, DiagBlock, LocalOutput, OffDiagBlock, SyrkRunResult};
use crate::dist::{ConformalADist, TriangleBlockDist};

/// Run the panel-streaming 2D algorithm with `rounds` column panels.
/// `rounds = 1` is exactly [`syrk_2d`](crate::syrk_2d).
pub fn syrk_2d_limited(
    a: &Matrix<f64>,
    c: usize,
    rounds: usize,
    model: CostModel,
) -> SyrkRunResult {
    assert!(rounds >= 1, "need at least one panel round");
    let dist = TriangleBlockDist::for_order(c)
        .unwrap_or_else(|| panic!("no triangle block construction for c = {c}"));
    let (n1, n2) = a.shape();
    let rows = Partition1D::new(n1, dist.num_blocks());
    let panels = Partition1D::new(n2, rounds);

    let machine = Machine::new(dist.p()).with_model(model);
    let out = machine.run(|comm| {
        let k = comm.rank();
        // Owned output blocks, accumulated across panels.
        let mut off_blocks: Vec<OffDiagBlock> = dist
            .blocks_of(k)
            .into_iter()
            .map(|(i, j)| OffDiagBlock {
                i,
                j,
                data: Matrix::zeros(rows.len(i), rows.len(j)),
            })
            .collect();
        let mut diag_block: Option<DiagBlock> = dist.d_block(k).map(|i| DiagBlock {
            i,
            data: PackedLower::zeros(rows.len(i), Diag::Inclusive),
        });
        // Persistent output footprint.
        let out_words: usize = off_blocks.iter().map(|b| b.data.len()).sum::<usize>()
            + diag_block.as_ref().map_or(0, |d| d.data.len());
        comm.note_buffer(out_words);

        for round in 0..rounds {
            let pr = panels.range(round);
            if pr.is_empty() {
                continue;
            }
            let a_panel = a.block_owned(0, pr.start, n1, pr.len());
            let ad = ConformalADist::new(&dist, n1, pr.len());
            let my_chunk = |i: usize| ad.extract_chunk(&a_panel, i, k);
            // Panel All-to-All: same pattern as Alg. 2, panel width only.
            let blocks: Vec<Vec<f64>> = (0..comm.size())
                .map(|k2| {
                    if k2 == k {
                        Vec::new()
                    } else {
                        dist.common_block(k, k2).map(&my_chunk).unwrap_or_default()
                    }
                })
                .collect();
            let received = comm.all_to_all(blocks);
            let gathered: Vec<(usize, Matrix<f64>)> = dist
                .r_set(k)
                .iter()
                .map(|&i| {
                    let chunks: Vec<Vec<f64>> = dist
                        .q_set(i)
                        .iter()
                        .map(|&m| {
                            if m == k {
                                my_chunk(i)
                            } else {
                                received[m].clone()
                            }
                        })
                        .collect();
                    (i, ad.assemble_block(i, &chunks))
                })
                .collect();
            comm.note_buffer(out_words + gathered.iter().map(|(_, m)| m.len()).sum::<usize>());
            let block_for = |i: usize| {
                &gathered
                    .iter()
                    .find(|&&(bi, _)| bi == i)
                    .expect("gathered")
                    .1
            };
            // Accumulate this panel's contribution.
            for blk in &mut off_blocks {
                let (ai, aj) = (block_for(blk.i), block_for(blk.j));
                gemm_nt(&mut blk.data, ai, aj);
                comm.add_flops(gemm_flops(ai.rows(), aj.rows(), pr.len()));
            }
            if let Some(d) = &mut diag_block {
                let ai = block_for(d.i);
                syrk_packed(&mut d.data, ai);
                comm.add_flops(syrk_flops(ai.rows(), pr.len()));
            }
        }
        LocalOutput {
            offdiag: off_blocks,
            diag: diag_block.into_iter().collect(),
        }
    });
    let c_full = assemble_c(n1, &rows, &out.results);
    SyrkRunResult {
        c: c_full,
        cost: out.cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syrk_dense::{max_abs_diff, seeded_int_matrix, seeded_matrix, syrk_full_reference};

    #[test]
    fn limited_is_correct_for_any_round_count() {
        let (n1, n2, c) = (18usize, 24usize, 3usize);
        let a = seeded_matrix::<f64>(n1, n2, 31);
        let want = syrk_full_reference(&a);
        for rounds in [1usize, 2, 3, 5, 24, 30] {
            let run = syrk_2d_limited(&a, c, rounds, CostModel::bandwidth_only());
            let err = max_abs_diff(&run.c, &want);
            assert!(err < 1e-10, "rounds={rounds}: err {err}");
        }
    }

    #[test]
    fn rounds_1_matches_plain_2d() {
        let a = seeded_int_matrix::<f64>(16, 10, 4, 7);
        let lim = syrk_2d_limited(&a, 2, 1, CostModel::bandwidth_only());
        let std = super::super::twod::syrk_2d(&a, 2, CostModel::bandwidth_only());
        assert_eq!(max_abs_diff(&lim.c, &std.c), 0.0);
        assert_eq!(lim.cost.max_words_sent(), std.cost.max_words_sent());
        assert_eq!(lim.cost.total_flops(), std.cost.total_flops());
    }

    #[test]
    fn words_constant_latency_grows_memory_shrinks() {
        // The memory-dependent trade, measured: A-volume invariant,
        // messages ×rounds, peak transient buffer ↓.
        let (n1, n2, c) = (36usize, 48usize, 3usize);
        let a = seeded_matrix::<f64>(n1, n2, 8);
        let one = syrk_2d_limited(&a, c, 1, CostModel::bandwidth_only());
        let four = syrk_2d_limited(&a, c, 4, CostModel::bandwidth_only());
        // Same total A words (each chunk crosses once).
        assert_eq!(one.cost.total_words(), four.cost.total_words());
        // Latency multiplied by the round count.
        assert_eq!(four.cost.max_messages(), 4 * one.cost.max_messages());
        // Peak buffer strictly smaller.
        assert!(
            four.cost.max_peak_buffer() < one.cost.max_peak_buffer(),
            "{} !< {}",
            four.cost.max_peak_buffer(),
            one.cost.max_peak_buffer()
        );
    }

    #[test]
    fn more_rounds_than_columns_is_fine() {
        // Empty panels are skipped (no phantom messages or flops).
        let a = seeded_matrix::<f64>(8, 3, 9);
        let run = syrk_2d_limited(&a, 2, 10, CostModel::bandwidth_only());
        assert!(max_abs_diff(&run.c, &syrk_full_reference(&a)) < 1e-12);
    }
}
