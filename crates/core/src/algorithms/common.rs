//! Shared types for the distributed SYRK algorithms: per-rank outputs,
//! global assembly, and the run result bundling output with costs.

use syrk_dense::{Diag, Matrix, PackedLower, Partition1D};
use syrk_machine::CostReport;

/// An off-diagonal block of `C` produced by a rank: block indices
/// `(i, j)` with `i > j` and the dense block values.
#[derive(Debug, Clone)]
pub struct OffDiagBlock {
    /// Block row index.
    pub i: usize,
    /// Block column index (`j < i`).
    pub j: usize,
    /// The dense `rows(i) × rows(j)` block.
    pub data: Matrix<f64>,
}

/// A diagonal block of `C` produced by a rank, stored as an inclusive
/// packed lower triangle (symmetry makes the upper half redundant).
#[derive(Debug, Clone)]
pub struct DiagBlock {
    /// Block index on the diagonal.
    pub i: usize,
    /// Packed inclusive lower triangle of the block.
    pub data: PackedLower<f64>,
}

/// Everything a rank contributes to the global output.
#[derive(Debug, Clone, Default)]
pub struct LocalOutput {
    /// Off-diagonal blocks owned by this rank.
    pub offdiag: Vec<OffDiagBlock>,
    /// Diagonal blocks owned by this rank (at most one for the paper's
    /// algorithms).
    pub diag: Vec<DiagBlock>,
}

/// The result of a distributed SYRK run: the assembled full symmetric
/// output and the machine's cost report.
#[derive(Debug)]
pub struct SyrkRunResult {
    /// `C = A·Aᵀ`, assembled and symmetrized (diagonal included).
    pub c: Matrix<f64>,
    /// Communication/computation costs of the run.
    pub cost: CostReport,
}

/// Assemble per-rank [`LocalOutput`]s into the full symmetric `C`.
///
/// `rows` is the block-row partition of `0..n1` shared by all outputs.
/// Every off-diagonal and diagonal block must appear exactly once across
/// the outputs; the strict upper triangle is filled by mirroring.
pub fn assemble_c(n1: usize, rows: &Partition1D, outputs: &[LocalOutput]) -> Matrix<f64> {
    let mut c = Matrix::zeros(n1, n1);
    let mut seen_off = std::collections::HashSet::new();
    let mut seen_diag = std::collections::HashSet::new();
    for out in outputs {
        for blk in &out.offdiag {
            assert!(blk.j < blk.i, "off-diagonal block must have j < i");
            assert!(
                seen_off.insert((blk.i, blk.j)),
                "block ({}, {}) produced twice",
                blk.i,
                blk.j
            );
            let (r, s) = (rows.range(blk.i), rows.range(blk.j));
            assert_eq!(blk.data.shape(), (r.len(), s.len()), "block shape mismatch");
            c.set_block(r.start, s.start, &blk.data);
        }
        for blk in &out.diag {
            assert!(
                seen_diag.insert(blk.i),
                "diagonal block {} produced twice",
                blk.i
            );
            let r = rows.range(blk.i);
            assert_eq!(blk.data.n(), r.len(), "diagonal block size mismatch");
            assert_eq!(blk.data.diag(), Diag::Inclusive);
            let full = blk.data.to_full_symmetric();
            c.set_block(r.start, r.start, &full);
        }
    }
    // Mirror the lower triangle up.
    for i in 0..n1 {
        for j in 0..i {
            let v = c[(i, j)];
            c[(j, i)] = v;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use syrk_dense::{max_abs_diff, mul_nt, seeded_matrix, syrk_full_reference, syrk_packed_new};

    #[test]
    fn assembly_reconstructs_reference() {
        // Split a small SYRK by hand into blocks and reassemble.
        let (n1, n2) = (6, 4);
        let a = seeded_matrix::<f64>(n1, n2, 5);
        let rows = Partition1D::new(n1, 3);
        let mut outputs = vec![LocalOutput::default(), LocalOutput::default()];
        // Rank 0: off-diagonal blocks (1,0), (2,0); rank 1: (2,1) + diagonals.
        for (rank, pairs) in [(0usize, vec![(1usize, 0usize), (2, 0)]), (1, vec![(2, 1)])] {
            for (i, j) in pairs {
                let (ri, rj) = (rows.range(i), rows.range(j));
                let ai = a.block_owned(ri.start, 0, ri.len(), n2);
                let aj = a.block_owned(rj.start, 0, rj.len(), n2);
                outputs[rank].offdiag.push(OffDiagBlock {
                    i,
                    j,
                    data: mul_nt(&ai, &aj),
                });
            }
        }
        for i in 0..3 {
            let r = rows.range(i);
            let ai = a.block_owned(r.start, 0, r.len(), n2);
            outputs[1].diag.push(DiagBlock {
                i,
                data: syrk_packed_new(&ai, syrk_dense::Diag::Inclusive),
            });
        }
        let c = assemble_c(n1, &rows, &outputs);
        let want = syrk_full_reference(&a);
        assert!(max_abs_diff(&c, &want) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "produced twice")]
    fn duplicate_block_rejected() {
        let rows = Partition1D::new(4, 2);
        let blk = OffDiagBlock {
            i: 1,
            j: 0,
            data: Matrix::zeros(2, 2),
        };
        let out = LocalOutput {
            offdiag: vec![blk.clone(), blk],
            diag: vec![],
        };
        let _ = assemble_c(4, &rows, &[out]);
    }

    #[test]
    #[should_panic(expected = "j < i")]
    fn upper_block_rejected() {
        let rows = Partition1D::new(4, 2);
        let out = LocalOutput {
            offdiag: vec![OffDiagBlock {
                i: 0,
                j: 1,
                data: Matrix::zeros(2, 2),
            }],
            diag: vec![],
        };
        let _ = assemble_c(4, &rows, &[out]);
    }
}
