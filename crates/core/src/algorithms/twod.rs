//! Algorithm 2: 2D SYRK (§5.2).
//!
//! `C` is laid out by the Triangle Block Distribution; each processor
//! gathers the `c` row blocks of `A` in its row block set `R_k` via a
//! single `All-to-All` (each pair of processors shares at most one row
//! block, so the exchange pattern is exactly personalized all-to-all),
//! then computes its `c(c−1)/2` off-diagonal blocks with local GEMMs and
//! its diagonal block (if assigned) with a local SYRK. No contribution to
//! `C` is ever communicated — only parts of `A`.

use syrk_dense::{
    available_threads, balanced_chunks_by_cost, gemm_flops, limit_threads, machine_thread_budget,
    mul_nt, par_for_each_task, steal_task_count, syrk_flops, syrk_packed_new, Diag, Matrix,
};
use syrk_machine::{Comm, CostModel, FaultPlan, Machine, MachineError};

use super::common::{assemble_c, DiagBlock, LocalOutput, OffDiagBlock, SyrkRunResult};
use crate::attribution::{PHASE_ALLGATHER_A, PHASE_LOCAL_GEMM, PHASE_LOCAL_SYRK};
use crate::dist::{ConformalADist, TriangleBlockDist};
use crate::error::SyrkError;
use crate::planner::PlanError;

/// The SPMD body of Algorithm 2, reused verbatim by each slice of the 3D
/// algorithm (Alg. 3 line 3). `a_slice` is the `n1 × n2_local` input this
/// communicator is responsible for; `comm.size()` must be `c(c+1)`.
pub(crate) fn twod_body(
    comm: &Comm,
    dist: &TriangleBlockDist,
    ad: &ConformalADist,
    a_slice: &Matrix<f64>,
) -> Result<LocalOutput, MachineError> {
    twod_body_impl(comm, dist, ad, a_slice, false, false)
}

/// Like [`twod_body`] but with the exchange buffer `B` padded to `P`
/// equal blocks of `⌈n1·n2/(c²(c+1))⌉` words, exactly as Algorithm 2's
/// pseudocode allocates it — reproducing the eq. (10) cost analysis
/// verbatim (the unpadded variant is slightly cheaper; see
/// `alg2d_tight_cost`).
pub(crate) fn twod_body_impl(
    comm: &Comm,
    dist: &TriangleBlockDist,
    ad: &ConformalADist,
    a_slice: &Matrix<f64>,
    padded: bool,
    abft: bool,
) -> Result<LocalOutput, MachineError> {
    assert_eq!(comm.size(), dist.p(), "2D body needs exactly c(c+1) ranks");
    let k = comm.rank();
    let n2l = a_slice.cols();
    // The paper's fixed block size for B: n1n2 / (c²(c+1)), rounded up to
    // cover uneven chunk splits. Only the padded variant ships it, and
    // the scan touches every chunk of every row block, so the tight path
    // skips it entirely.
    let pad_len = if padded {
        (0..dist.num_blocks())
            .flat_map(|i| dist.q_set(i).iter().map(move |&m| ad.chunk_len(i, m)))
            .max()
            .unwrap_or(0)
    } else {
        0
    };

    // Initial distribution: my chunk of each row block in R_k, staged
    // once per block (each chunk ships to c partners and is reused in
    // the reassembly below).
    let my_chunks: Vec<(usize, Vec<f64>)> = dist
        .r_set(k)
        .iter()
        .map(|&i| (i, ad.extract_chunk(a_slice, i, k)))
        .collect();
    let my_chunk = |i: usize| -> &[f64] {
        &my_chunks
            .iter()
            .find(|&&(bi, _)| bi == i)
            .expect("i ∈ R_k")
            .1
    };
    // Lines 3–9: plan and run the exchange. The block destined to k' is
    // my chunk of the unique row block shared with k' (each pair of
    // ranks shares at most one). The tight path assembles the plan
    // *sparsely*: only nonempty row blocks generate traffic, so both the
    // plan and the per-rank buffers stay O(c · nonempty blocks) instead
    // of O(P) — dense P-length buffers on every rank are O(P²) bytes
    // machine-wide, and at 10⁴ ranks that working set turns every
    // event-engine resume into a cache-cold stall. With `padded`, every
    // partner (even a partnerless pair) ships the fixed-size block like
    // the paper's B array, so that variant keeps the dense schedule and
    // reproduces eq. (10) verbatim. The exchange-and-reassemble of A is
    // the phase Theorem 1's Case-2 `n1·n2/√P` term charges: semantically
    // an all-gather of each row block within its processor set, realized
    // as one all-to-all.
    enum Exchange {
        Dense(Vec<Vec<f64>>),
        Sparse(std::vec::IntoIter<Vec<f64>>),
    }
    let ag_span = comm.phase(PHASE_ALLGATHER_A);
    let mut received = if padded {
        // The unique row block shared with each partner, read off R_k's
        // processor sets in O(c²) instead of intersecting R_k with every
        // other rank's set.
        let mut shared: Vec<Option<usize>> = vec![None; comm.size()];
        for &i in dist.r_set(k) {
            for &m in dist.q_set(i) {
                if m != k {
                    debug_assert!(shared[m].is_none(), "two ranks share two row blocks");
                    shared[m] = Some(i);
                }
            }
        }
        let blocks: Vec<Vec<f64>> = (0..comm.size())
            .map(|k2| {
                if k2 == k {
                    return Vec::new();
                }
                let mut buf = shared[k2].map(|i| my_chunk(i).to_vec()).unwrap_or_default();
                buf.resize(pad_len, 0.0);
                buf
            })
            .collect();
        Exchange::Dense(comm.try_all_to_all(blocks)?)
    } else {
        let mut sends: Vec<(usize, Vec<f64>)> = Vec::new();
        let mut recvs: Vec<(usize, usize)> = Vec::new();
        for &(i, ref ch) in &my_chunks {
            if ad.block_len(i) == 0 {
                continue;
            }
            let part = ad.chunk_partition(i);
            for (pos, &m) in dist.q_set(i).iter().enumerate() {
                if m == k {
                    continue;
                }
                if part.len(pos) > 0 {
                    recvs.push((m, part.len(pos)));
                }
                if !ch.is_empty() {
                    sends.push((m, ch.clone()));
                }
            }
        }
        Exchange::Sparse(comm.try_all_to_all_sparse(sends, &recvs)?.into_iter())
    };

    // Lines 10–14: reassemble each full row block A_i from the chunks of
    // Q_i (mine plus the one received from every other member; padded
    // buffers are truncated back to the true chunk length). Q_i order
    // *is* chunk order, so each chunk's length comes straight from the
    // block's partition — and the sparse results arrive in exactly this
    // iteration order (the order the receive plan was built in), so a
    // plain cursor pairs them up.
    let gathered: Vec<(usize, Matrix<f64>)> = dist
        .r_set(k)
        .iter()
        .map(|&i| {
            let part = ad.chunk_partition(i);
            let chunks: Vec<Vec<f64>> = dist
                .q_set(i)
                .iter()
                .enumerate()
                .map(|(pos, &m)| {
                    if m == k {
                        return my_chunk(i).to_vec();
                    }
                    match &mut received {
                        Exchange::Dense(bufs) => bufs[m][..part.len(pos)].to_vec(),
                        Exchange::Sparse(it) if part.len(pos) == 0 => Vec::new(),
                        Exchange::Sparse(it) => it.next().expect("one block per planned receive"),
                    }
                })
                .collect();
            (i, ad.assemble_block(i, &chunks))
        })
        .collect();
    comm.note_buffer(
        gathered.iter().map(|(_, m)| m.len()).sum::<usize>()
            + my_chunks.iter().map(|(_, ch)| ch.len()).sum::<usize>(),
    );
    drop(ag_span);
    let block_for = |i: usize| {
        &gathered
            .iter()
            .find(|&&(bi, _)| bi == i)
            .expect("i ∈ R_k was gathered")
            .1
    };

    // Lines 15–17: off-diagonal blocks C_ij = A_i · A_jᵀ, computed in
    // flop-balanced chunks over the rank's thread budget. Results land in
    // per-block slots so `out.offdiag` keeps `blocks_of(k)` order — the 3D
    // algorithm's C_k layout depends on it. Zero-sized blocks (n1 < c²
    // leaves row blocks empty) are omitted entirely, matching
    // `CkLayout`'s convention: at 10⁴ ranks the c(c−1)/2 pairs per rank
    // are dominated by empty ones, and materializing ~P·c²/2 zero-sized
    // outputs costs more than the whole exchange. Flops are charged up
    // front, outside the worker closure, to keep the cost report
    // deterministic (empty blocks contribute zero flops anyway).
    let mut out = LocalOutput::default();
    let gemm_span = comm.phase(PHASE_LOCAL_GEMM);
    let blocks: Vec<(usize, usize)> = dist
        .blocks_of(k)
        .into_iter()
        .filter(|&(i, j)| block_for(i).rows() > 0 && block_for(j).rows() > 0)
        .collect();
    let costs: Vec<u64> = blocks
        .iter()
        .map(|&(i, j)| gemm_flops(block_for(i).rows(), block_for(j).rows(), n2l))
        .collect();
    for &f in &costs {
        comm.add_flops(f);
    }
    let mut results: Vec<Option<OffDiagBlock>> = (0..blocks.len()).map(|_| None).collect();
    // Oversubscribe chunks past the worker count so the work-stealing
    // runtime can rebalance uneven block sizes.
    let chunks = balanced_chunks_by_cost(&costs, steal_task_count(available_threads()), 1);
    let mut tasks: Vec<(std::ops::Range<usize>, &mut [Option<OffDiagBlock>])> = Vec::new();
    let mut rest = results.as_mut_slice();
    for r in &chunks {
        let (head, tail) = rest.split_at_mut(r.len());
        tasks.push((r.clone(), head));
        rest = tail;
    }
    par_for_each_task(tasks, |_, (range, slots)| {
        for (slot, bi) in slots.iter_mut().zip(range) {
            let (i, j) = blocks[bi];
            *slot = Some(OffDiagBlock {
                i,
                j,
                data: mul_nt(block_for(i), block_for(j)),
            });
        }
    });
    out.offdiag.extend(
        results
            .into_iter()
            .map(|r| r.expect("every block computed")),
    );
    drop(gemm_span);

    // Lines 18–20: the diagonal block, if assigned (and nonempty — the
    // same zero-sized-block convention as the off-diagonal list).
    if let Some(i) = dist.d_block(k) {
        let ai = block_for(i);
        if ai.rows() > 0 {
            let _span = comm.phase(PHASE_LOCAL_SYRK);
            out.diag.push(DiagBlock {
                i,
                data: syrk_packed_new(ai, Diag::Inclusive),
            });
            comm.add_flops(syrk_flops(ai.rows(), n2l));
        }
    }

    // ABFT: verify every produced block against its row checksums,
    // computed independently from the gathered A blocks, before the
    // contribution leaves this rank (`C_ij·1 = A_i·(A_jᵀ·1)`).
    if abft {
        let _span = comm.phase(crate::abft::PHASE_ABFT);
        let corrupt = |detail| MachineError::DataCorruption {
            rank: comm.world_rank(),
            detail,
        };
        for blk in &out.offdiag {
            let (ai, aj) = (block_for(blk.i), block_for(blk.j));
            comm.add_flops(crate::abft::block_check_flops(ai.rows(), aj.rows(), n2l));
            crate::abft::verify_offdiag_block(ai, aj, &blk.data, blk.i, blk.j)
                .map_err(&corrupt)?;
        }
        for blk in &out.diag {
            let ai = block_for(blk.i);
            comm.add_flops(crate::abft::block_check_flops(ai.rows(), ai.rows(), n2l));
            crate::abft::verify_diag_block(ai, &blk.data, blk.i).map_err(&corrupt)?;
        }
    }
    Ok(out)
}

/// Run Algorithm 2 on a simulated machine with `P = c(c+1)` ranks.
///
/// Returns the assembled `C = A·Aᵀ` and the cost report.
pub fn syrk_2d(a: &Matrix<f64>, c: usize, model: CostModel) -> SyrkRunResult {
    syrk_2d_impl(a, c, model, false)
}

/// Algorithm 2 with the paper's padded exchange buffer `B` (Alg. 2
/// lines 3–9 verbatim): measured bandwidth reproduces eq. (10)'s
/// `(n1n2/c)(1 − 1/P)` exactly, at the cost of shipping some zeros.
pub fn syrk_2d_padded(a: &Matrix<f64>, c: usize, model: CostModel) -> SyrkRunResult {
    syrk_2d_impl(a, c, model, true)
}

fn syrk_2d_impl(a: &Matrix<f64>, c: usize, model: CostModel, padded: bool) -> SyrkRunResult {
    match syrk_2d_traced_impl(a, c, model, padded, false, None, false) {
        Ok((run, _)) => run,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`syrk_2d`]: invalid configurations and machine
/// failures (crash, deadlock, …) surface as [`SyrkError`] instead of
/// panicking. An optional [`FaultPlan`] injects deterministic transport
/// faults into the run.
#[must_use = "the Result carries the simulated run's outcome or failure"]
pub fn try_syrk_2d(
    a: &Matrix<f64>,
    c: usize,
    model: CostModel,
    faults: Option<&FaultPlan>,
) -> Result<SyrkRunResult, SyrkError> {
    syrk_2d_traced_impl(a, c, model, false, false, faults, false).map(|(run, _)| run)
}

/// [`try_syrk_2d`] with ABFT checksum verification: every rank checks
/// each off-diagonal block `C_ij` against `A_i·(A_jᵀ·1)` and its
/// diagonal block against the analogous packed-row checksums before the
/// blocks are assembled, so a corrupt-but-undetected local product
/// surfaces as [`MachineError::DataCorruption`] naming the block instead
/// of silently poisoning `C`. Verification flops are charged under the
/// `abft:verify` phase.
#[must_use = "the Result carries the simulated run's outcome or failure"]
pub fn try_syrk_2d_abft(
    a: &Matrix<f64>,
    c: usize,
    model: CostModel,
    faults: Option<&FaultPlan>,
) -> Result<SyrkRunResult, SyrkError> {
    syrk_2d_traced_impl(a, c, model, false, false, faults, true).map(|(run, _)| run)
}

/// Algorithm 2 with event tracing enabled: returns the run result plus
/// the per-rank communication timelines (see `syrk_machine::Event`).
pub fn syrk_2d_traced(
    a: &Matrix<f64>,
    c: usize,
    model: CostModel,
) -> (SyrkRunResult, Vec<syrk_machine::Timeline>) {
    try_syrk_2d_traced(a, c, model, None).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`syrk_2d_traced`], with optional fault injection.
#[must_use = "the Result carries the simulated run's outcome or failure"]
pub fn try_syrk_2d_traced(
    a: &Matrix<f64>,
    c: usize,
    model: CostModel,
    faults: Option<&FaultPlan>,
) -> Result<(SyrkRunResult, Vec<syrk_machine::Timeline>), SyrkError> {
    let (run, traces) = syrk_2d_traced_impl(a, c, model, false, true, faults, false)?;
    Ok((run, traces.expect("tracing was enabled")))
}

#[allow(clippy::too_many_arguments)]
fn syrk_2d_traced_impl(
    a: &Matrix<f64>,
    c: usize,
    model: CostModel,
    padded: bool,
    tracing: bool,
    faults: Option<&FaultPlan>,
    abft: bool,
) -> Result<(SyrkRunResult, Option<Vec<syrk_machine::Timeline>>), SyrkError> {
    let dist = TriangleBlockDist::for_order(c).ok_or(PlanError::UnsupportedOrder { c })?;
    let (n1, n2) = a.shape();
    if n1 == 0 || n2 == 0 {
        return Err(PlanError::EmptyMatrix { n1, n2 }.into());
    }
    let ad = ConformalADist::new(&dist, n1, n2);

    let mut machine = Machine::new(dist.p()).with_model(model);
    if tracing {
        machine = machine.with_tracing();
    }
    if let Some(plan) = faults {
        machine = machine.with_faults(plan.clone());
    }
    // Split the hardware threads evenly across the *concurrently
    // executing* ranks so the per-rank kernels don't oversubscribe the
    // host. Under the event engine ranks run one at a time, so each may
    // use the full budget.
    let _threads = limit_threads(machine_thread_budget(machine.concurrent_ranks()));
    let out = machine.try_run(|comm| twod_body_impl(&comm, &dist, &ad, a, padded, abft))?;
    let c_full = assemble_c(n1, &ad.rows, &out.results);
    Ok((
        SyrkRunResult {
            c: c_full,
            cost: out.cost,
        },
        out.traces,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{alg2d_predicted_cost, alg2d_tight_cost};
    use syrk_dense::{max_abs_diff, seeded_int_matrix, seeded_matrix, syrk_full_reference};

    #[test]
    fn correct_for_c2_and_c3() {
        for &(n1, n2, c) in &[
            (8usize, 6usize, 2usize), // c² = 4 row blocks of 2 rows
            (9, 5, 3),                // c² = 9 row blocks of 1 row
            (18, 4, 3),
            (27, 7, 3),
            (10, 3, 3), // c² ∤ n1: uneven row blocks
        ] {
            let a = seeded_matrix::<f64>(n1, n2, (n1 * 13 + n2) as u64);
            let run = syrk_2d(&a, c, CostModel::bandwidth_only());
            let err = max_abs_diff(&run.c, &syrk_full_reference(&a));
            assert!(err < 1e-10, "({n1},{n2},c={c}): err {err}");
        }
    }

    #[test]
    fn correct_for_c5() {
        // P = 30 ranks, 25 row blocks.
        let a = seeded_int_matrix::<f64>(50, 6, 4, 77);
        let run = syrk_2d(&a, 5, CostModel::bandwidth_only());
        assert_eq!(max_abs_diff(&run.c, &syrk_full_reference(&a)), 0.0);
    }

    #[test]
    fn bandwidth_matches_tight_cost() {
        // Meaningful chunks only: each rank sends n1·n2/(c+1) words
        // (= W − n1n2/P, slightly under the padded eq. (10) analysis).
        let (n1, n2, c) = (36, 8, 3); // blocks of 4 rows, chunks of 8 words
        let a = seeded_matrix::<f64>(n1, n2, 4);
        let run = syrk_2d(&a, c, CostModel::bandwidth_only());
        let tight = alg2d_tight_cost(n1, n2, c);
        let measured = run.cost.max_words_sent() as f64;
        assert!(
            (measured - tight).abs() <= 1.0,
            "measured {measured} vs tight {tight}"
        );
        assert!(measured <= alg2d_predicted_cost(n1, n2, c) + 1.0);
        // Sparse pairwise exchange: one message per sharing partner (the
        // c² other members of R_k's processor sets — every chunk is
        // nonempty at this shape); partnerless pairs are skipped. The
        // padded variant keeps the dense P − 1 schedule.
        assert_eq!(run.cost.max_messages(), (c * c) as u64);
    }

    fn dist_p(c: usize) -> usize {
        c * (c + 1)
    }

    #[test]
    fn no_c_communication() {
        // Only parts of A move: total words = P · n1n2/(c+1) exactly when
        // the chunk sizes divide evenly.
        let (n1, n2, c) = (36, 8, 3);
        let a = seeded_matrix::<f64>(n1, n2, 8);
        let run = syrk_2d(&a, c, CostModel::bandwidth_only());
        let expect = dist_p(c) * n1 * n2 / (c + 1);
        assert_eq!(run.cost.total_words(), expect as u64);
    }

    #[test]
    fn flop_imbalance_is_only_the_diagonal_effect() {
        // c ranks compute no diagonal block; the imbalance must stay under
        // the ratio (off+diag)/off = 1 + O(1/c) (§5.2.3).
        let (n1, n2, c) = (36, 10, 3);
        let a = seeded_matrix::<f64>(n1, n2, 2);
        let run = syrk_2d(&a, c, CostModel::bandwidth_only());
        let imb = run.cost.flop_imbalance();
        // Off-diagonal work per rank: c(c−1)/2 gemms = 3 gemms of
        // 2·12²·10; diagonal adds ≤ one syrk of 12·13·10.
        assert!(imb > 1.0 && imb < 1.3, "imbalance {imb}");
    }

    #[test]
    fn total_flops_equal_symmetric_work() {
        // Σ flops = n1(n1+1)n2 + cross-block corrections: with exact
        // block division, off-diagonal gemms cover all inter-block pairs
        // and diagonal syrks the intra-block triangles.
        let (n1, n2, c) = (8, 6, 2);
        let a = seeded_matrix::<f64>(n1, n2, 1);
        let run = syrk_2d(&a, c, CostModel::bandwidth_only());
        let b = n1 / (c * c); // rows per block
        let c2 = c * c;
        let off = (c2 * (c2 - 1) / 2) as u64 * gemm_flops(b, b, n2);
        let diag = c2 as u64 * syrk_flops(b, n2);
        assert_eq!(run.cost.total_flops(), off + diag);
    }

    #[test]
    fn padded_variant_matches_eq10_exactly() {
        // Exact-division sizes: chunk = n1·n2/(c²(c+1)) with no rounding.
        let (n1, n2, c) = (36, 8, 3); // chunks of 36·8/(9·4) = 8 words
        let a = seeded_matrix::<f64>(n1, n2, 21);
        let run = syrk_2d_padded(&a, c, CostModel::bandwidth_only());
        // Correctness unchanged.
        assert!(max_abs_diff(&run.c, &syrk_full_reference(&a)) < 1e-10);
        // Every rank ships P−1 blocks of the fixed size: eq. (10).
        let measured = run.cost.max_words_sent() as f64;
        let eq10 = alg2d_predicted_cost(n1, n2, c);
        assert!(
            (measured - eq10).abs() < 1e-9,
            "measured {measured} vs eq(10) {eq10}"
        );
        // And strictly more than the unpadded variant.
        let lean = syrk_2d(&a, c, CostModel::bandwidth_only());
        assert!(run.cost.max_words_sent() > lean.cost.max_words_sent());
    }
}
