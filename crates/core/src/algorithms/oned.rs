//! Algorithm 1: 1D SYRK (§5.1).
//!
//! `A` is distributed by block columns; each rank performs a local SYRK
//! with its column block (producing a full `n1 × n1` symmetric
//! contribution in packed form) and a `Reduce-Scatter` sums and evenly
//! distributes the packed triangle. No element of `A` is ever
//! communicated — only contributions to `C`.
//!
//! Bandwidth cost (eq. (3)): `(n1(n1+1)/2)·(1 − 1/P)`, matching the
//! Case 1 lower bound's leading term `n1(n1−1)/2`.

use syrk_dense::{
    limit_threads, machine_thread_budget, syrk_flops, syrk_packed_new, Diag, Matrix, PackedLower,
    Partition1D,
};
use syrk_machine::{CostModel, FaultPlan, Machine, MachineError, ReduceScatterAlg, Timeline};

use super::common::SyrkRunResult;
use crate::attribution::{PHASE_LOCAL_SYRK, PHASE_REDUCE_SCATTER_C};
use crate::error::SyrkError;
use crate::planner::PlanError;

/// Run Algorithm 1 on a simulated machine with `p` ranks.
///
/// `a` is the global input; each rank extracts its own column block
/// (modeling the required initial distribution, which costs nothing).
/// Returns the assembled `C = A·Aᵀ` and the cost report.
pub fn syrk_1d(a: &Matrix<f64>, p: usize, model: CostModel) -> SyrkRunResult {
    syrk_1d_with(a, p, model, ReduceScatterAlg::PairwiseExchange)
}

/// Algorithm 1 with an explicit Reduce-Scatter algorithm — the §6
/// latency/bandwidth trade made selectable (pairwise = the paper's
/// analysis; recursive halving = log-latency at equal bandwidth for
/// power-of-two P; tree+scatter = log-latency, bandwidth-inflated).
pub fn syrk_1d_with(
    a: &Matrix<f64>,
    p: usize,
    model: CostModel,
    rs_alg: ReduceScatterAlg,
) -> SyrkRunResult {
    match syrk_1d_impl(a, p, model, rs_alg, false, None, false) {
        Ok((run, _)) => run,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`syrk_1d`]: invalid configurations and machine
/// failures (crash, deadlock, …) surface as [`SyrkError`] instead of
/// panicking. An optional [`FaultPlan`] injects deterministic transport
/// faults into the run.
#[must_use = "the Result carries the simulated run's outcome or failure"]
pub fn try_syrk_1d(
    a: &Matrix<f64>,
    p: usize,
    model: CostModel,
    faults: Option<&FaultPlan>,
) -> Result<SyrkRunResult, SyrkError> {
    syrk_1d_impl(
        a,
        p,
        model,
        ReduceScatterAlg::PairwiseExchange,
        false,
        faults,
        false,
    )
    .map(|(run, _)| run)
}

/// [`try_syrk_1d`] with ABFT checksum verification: each rank checks its
/// local packed contribution `C̄_ℓ = A_ℓ·A_ℓᵀ` against independently
/// computed row checksums (`crate::abft`) before the Reduce-Scatter, so
/// a corrupt-but-undetected local result surfaces as
/// [`MachineError::DataCorruption`] instead of silently poisoning `C`.
/// Verification flops are charged under the `abft:verify` phase.
#[must_use = "the Result carries the simulated run's outcome or failure"]
pub fn try_syrk_1d_abft(
    a: &Matrix<f64>,
    p: usize,
    model: CostModel,
    faults: Option<&FaultPlan>,
) -> Result<SyrkRunResult, SyrkError> {
    syrk_1d_impl(
        a,
        p,
        model,
        ReduceScatterAlg::PairwiseExchange,
        false,
        faults,
        true,
    )
    .map(|(run, _)| run)
}

/// Algorithm 1 with event tracing enabled: returns the run result plus
/// the per-rank communication timelines (see `syrk_machine::Event`).
pub fn syrk_1d_traced(
    a: &Matrix<f64>,
    p: usize,
    model: CostModel,
) -> (SyrkRunResult, Vec<Timeline>) {
    try_syrk_1d_traced(a, p, model, None).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`syrk_1d_traced`], with optional fault injection.
#[must_use = "the Result carries the simulated run's outcome or failure"]
pub fn try_syrk_1d_traced(
    a: &Matrix<f64>,
    p: usize,
    model: CostModel,
    faults: Option<&FaultPlan>,
) -> Result<(SyrkRunResult, Vec<Timeline>), SyrkError> {
    let (run, traces) = syrk_1d_impl(
        a,
        p,
        model,
        ReduceScatterAlg::PairwiseExchange,
        true,
        faults,
        false,
    )?;
    Ok((run, traces.expect("tracing was enabled")))
}

#[allow(clippy::too_many_arguments)]
fn syrk_1d_impl(
    a: &Matrix<f64>,
    p: usize,
    model: CostModel,
    rs_alg: ReduceScatterAlg,
    tracing: bool,
    faults: Option<&FaultPlan>,
    abft: bool,
) -> Result<(SyrkRunResult, Option<Vec<Timeline>>), SyrkError> {
    let (n1, n2) = a.shape();
    if p == 0 {
        return Err(PlanError::ZeroRanks.into());
    }
    if n1 == 0 || n2 == 0 {
        return Err(PlanError::EmptyMatrix { n1, n2 }.into());
    }
    let cols = Partition1D::new(n2, p);
    let packed_len = Diag::Inclusive.packed_len(n1);
    let segments = Partition1D::new(packed_len, p);

    let mut machine = Machine::new(p).with_model(model);
    if tracing {
        machine = machine.with_tracing();
    }
    if let Some(plan) = faults {
        machine = machine.with_faults(plan.clone());
    }
    // Split the hardware threads evenly across the *concurrently
    // executing* ranks so the per-rank local SYRK doesn't oversubscribe
    // the host. Under the event engine ranks run one at a time, so each
    // may use the full budget.
    let _threads = limit_threads(machine_thread_budget(machine.concurrent_ranks()));
    let out = machine.try_run(|comm| {
        let l = comm.rank();
        // Line 2–3: local SYRK on the owned column block A_ℓ.
        let r = cols.range(l);
        let (cbar, a_l) = {
            let _span = comm.phase(PHASE_LOCAL_SYRK);
            let a_l = a.block_owned(0, r.start, n1, r.len());
            let cbar = syrk_packed_new(&a_l, Diag::Inclusive);
            comm.add_flops(syrk_flops(n1, r.len()));
            comm.note_buffer(a_l.len() + cbar.len());
            (cbar, a_l)
        };
        if abft {
            let _span = comm.phase(crate::abft::PHASE_ABFT);
            comm.add_flops(crate::abft::block_check_flops(n1, n1, r.len()));
            crate::abft::verify_diag_block(&a_l, &cbar, l).map_err(|detail| {
                MachineError::DataCorruption {
                    rank: comm.world_rank(),
                    detail,
                }
            })?;
        }
        // Line 4: Reduce-Scatter of the packed triangle, evenly split.
        let _span = comm.phase(PHASE_REDUCE_SCATTER_C);
        let segs: Vec<Vec<f64>> = {
            let mut out = Vec::with_capacity(p);
            let mut off = 0;
            for len in segments.lens() {
                out.push(cbar.as_slice()[off..off + len].to_vec());
                off += len;
            }
            out
        };
        comm.try_reduce_scatter_with(segs, rs_alg)
    })?;

    // Reassemble the packed triangle from the per-rank segments (the
    // "evenly distributed across Π" final state) and expand.
    let mut packed = Vec::with_capacity(packed_len);
    for seg in &out.results {
        packed.extend_from_slice(seg);
    }
    let c = PackedLower::from_vec(n1, Diag::Inclusive, packed).to_full_symmetric();
    Ok((SyrkRunResult { c, cost: out.cost }, out.traces))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::alg1d_predicted_cost;
    use syrk_dense::{max_abs_diff, seeded_int_matrix, seeded_matrix, syrk_full_reference};

    #[test]
    fn correct_for_various_shapes_and_p() {
        for &(n1, n2, p) in &[
            (1usize, 1usize, 1usize),
            (4, 8, 2),
            (6, 24, 4),
            (9, 10, 3), // P ∤ n2: uneven column blocks
            (5, 3, 4),  // P > n2: some ranks own no columns
            (16, 64, 8),
        ] {
            let a = seeded_matrix::<f64>(n1, n2, (n1 * 100 + n2) as u64);
            let run = syrk_1d(&a, p, CostModel::bandwidth_only());
            let want = syrk_full_reference(&a);
            let err = max_abs_diff(&run.c, &want);
            assert!(err < 1e-10, "({n1},{n2},{p}): err {err}");
        }
    }

    #[test]
    fn integer_inputs_are_exact() {
        let a = seeded_int_matrix::<f64>(8, 16, 4, 7);
        let run = syrk_1d(&a, 4, CostModel::bandwidth_only());
        assert_eq!(max_abs_diff(&run.c, &syrk_full_reference(&a)), 0.0);
    }

    #[test]
    fn bandwidth_matches_eq3_exactly() {
        // Every rank sends Σ_{q≠me} |segment_q| words; with the even split
        // of n1(n1+1)/2 this is (1 − 1/P)·n1(n1+1)/2 ± rounding.
        let (n1, n2, p) = (20, 40, 5);
        let a = seeded_matrix::<f64>(n1, n2, 3);
        let run = syrk_1d(&a, p, CostModel::bandwidth_only());
        let predicted = alg1d_predicted_cost(n1, p);
        let measured = run.cost.max_words_sent() as f64;
        assert!(
            (measured - predicted).abs() <= 1.0,
            "measured {measured} vs eq(3) {predicted}"
        );
        // Latency: P − 1 messages per rank (pairwise exchange).
        assert_eq!(run.cost.max_messages(), (p - 1) as u64);
    }

    #[test]
    fn no_a_communication() {
        // The 1D algorithm must move only C contributions: total traffic
        // equals P·(1−1/P)·packed = (P−1)·packed words.
        let (n1, n2, p) = (10, 30, 3);
        let a = seeded_matrix::<f64>(n1, n2, 9);
        let run = syrk_1d(&a, p, CostModel::bandwidth_only());
        let packed = n1 * (n1 + 1) / 2;
        assert_eq!(run.cost.total_words(), ((p - 1) * packed) as u64);
    }

    #[test]
    fn flops_are_load_balanced_when_p_divides_n2() {
        let (n1, n2, p) = (12, 32, 4);
        let a = seeded_matrix::<f64>(n1, n2, 11);
        let run = syrk_1d(&a, p, CostModel::bandwidth_only());
        // Local SYRK flops identical across ranks; Reduce-Scatter adds
        // (P−1)·|segment| flops, and segments differ by at most one word.
        let fmax = run.cost.ranks.iter().map(|r| r.flops).max().unwrap();
        let fmin = run.cost.ranks.iter().map(|r| r.flops).min().unwrap();
        assert!(fmax - fmin <= (p - 1) as u64, "flop spread {}", fmax - fmin);
    }

    #[test]
    fn single_rank_does_no_communication() {
        let a = seeded_matrix::<f64>(7, 5, 2);
        let run = syrk_1d(&a, 1, CostModel::bandwidth_only());
        assert_eq!(run.cost.total_words(), 0);
        assert!(max_abs_diff(&run.c, &syrk_full_reference(&a)) < 1e-12);
    }
}
