//! Baselines for the headline comparison (§1, §6):
//!
//! * **Communication-optimal GEMM** (Al Daas et al., SPAA '22): computes
//!   the *full* `C = A·Aᵀ` without exploiting symmetry. 1D, 2D (SUMMA-
//!   style all-gather on a square grid), and 3D variants — one per bound
//!   case. Their leading communication terms are exactly 2× the SYRK
//!   algorithms'.
//! * **ScaLAPACK-style SYRK**: same grid and data movement as 2D GEMM,
//!   but only lower-triangle blocks are computed — "they halve the
//!   computation but communicate the same amount of data as GEMM".

use syrk_dense::{gemm_flops, mul_nt, syrk_flops, syrk_packed_new, Diag, Matrix, Partition1D};
use syrk_machine::{CostModel, Machine, ProcessGrid};

use super::common::{assemble_c, DiagBlock, LocalOutput, OffDiagBlock, SyrkRunResult};

/// 1D GEMM baseline (Case 1 regime): `A` by block columns, local full
/// product, Reduce-Scatter of all `n1²` words — twice the 1D SYRK's
/// `n1(n1+1)/2`.
pub fn gemm_1d(a: &Matrix<f64>, p: usize, model: CostModel) -> SyrkRunResult {
    let (n1, n2) = a.shape();
    let cols = Partition1D::new(n2, p);
    let seg = Partition1D::new(n1 * n1, p);

    let machine = Machine::new(p).with_model(model);
    let out = machine.run(|comm| {
        let r = cols.range(comm.rank());
        let a_l = a.block_owned(0, r.start, n1, r.len());
        let cbar = mul_nt(&a_l, &a_l); // full product: no symmetry savings
        comm.add_flops(gemm_flops(n1, n1, r.len()));
        comm.reduce_scatter_block(cbar.as_slice(), &seg.lens())
    });
    let mut flat = Vec::with_capacity(n1 * n1);
    for s in &out.results {
        flat.extend_from_slice(s);
    }
    SyrkRunResult {
        c: Matrix::from_vec(n1, n1, flat),
        cost: out.cost,
    }
}

/// Shared body of the 2D baselines: an `r × r` grid, rank `(I, J)` owns
/// the `C` block `(I, J)`; `A_I` is spread over process row `I` and `A_J`
/// over process column `J` (by flattened elements); two all-gathers
/// reconstruct the operands. `compute` decides what the rank computes —
/// that is the *only* difference between GEMM and ScaLAPACK-style SYRK.
fn summa_like(
    a: &Matrix<f64>,
    r: usize,
    n2_range: std::ops::Range<usize>,
    model: CostModel,
    syrk_mode: bool,
) -> (Vec<LocalOutput>, syrk_machine::CostReport) {
    let n1 = a.rows();
    let n2l = n2_range.len();
    let rows = Partition1D::new(n1, r);
    let grid = ProcessGrid::new(r, r);

    let machine = Machine::new(r * r).with_model(model);
    let out = machine.run(|mut comm| {
        let gc = grid.split(&mut comm);
        let (big_i, big_j) = (gc.k, gc.l);
        // My chunks: 1/r of A_I (by flattened elements, chunk index J)
        // and 1/r of A_J (chunk index I).
        let chunk = |blk: usize, idx: usize| -> Vec<f64> {
            let rr = rows.range(blk);
            let flat = a
                .block_owned(rr.start, n2_range.start, rr.len(), n2l)
                .into_vec();
            let part = Partition1D::new(flat.len(), r);
            flat[part.range(idx)].to_vec()
        };
        // All-gather A_I along my process row (the p2-direction comm is
        // `row` in grid terms — ranks sharing I). Our grid names: `slice`
        // spans ranks with equal ℓ (= J) and `row` spans equal k (= I).
        let a_i_flat = gc.row.all_gather_concat(chunk(big_i, big_j));
        let rr = rows.range(big_i);
        let a_i = Matrix::from_vec(rr.len(), n2l, a_i_flat);
        // All-gather A_J along my process column (ranks sharing J).
        let a_j_flat = gc.slice.all_gather_concat(chunk(big_j, big_i));
        let rj = rows.range(big_j);
        let a_j = Matrix::from_vec(rj.len(), n2l, a_j_flat);

        // Compute the owned block. ScaLAPACK-style SYRK computes only the
        // lower triangle (I ≥ J): upper ranks idle after communicating.
        let mut out = LocalOutput::default();
        if syrk_mode {
            if big_i > big_j {
                out.offdiag.push(OffDiagBlock {
                    i: big_i,
                    j: big_j,
                    data: mul_nt(&a_i, &a_j),
                });
                comm.add_flops(gemm_flops(a_i.rows(), a_j.rows(), n2l));
            } else if big_i == big_j {
                out.diag.push(DiagBlock {
                    i: big_i,
                    data: syrk_packed_new(&a_i, Diag::Inclusive),
                });
                comm.add_flops(syrk_flops(a_i.rows(), n2l));
            }
        } else {
            // Full GEMM: every rank computes its block; represent upper
            // blocks implicitly by transposing into the lower triangle
            // (values are identical by symmetry of A·Aᵀ, so assembly
            // stays exact while flops count the full 2n1²n2l).
            comm.add_flops(gemm_flops(a_i.rows(), a_j.rows(), n2l));
            if big_i > big_j {
                out.offdiag.push(OffDiagBlock {
                    i: big_i,
                    j: big_j,
                    data: mul_nt(&a_i, &a_j),
                });
            } else if big_i == big_j {
                let full = mul_nt(&a_i, &a_i);
                out.diag.push(DiagBlock {
                    i: big_i,
                    data: syrk_dense::PackedLower::from_matrix(&full, Diag::Inclusive),
                });
            } else {
                let _ = mul_nt(&a_i, &a_j); // computed and discarded (upper half)
            }
        }
        out
    });
    (out.results, out.cost)
}

/// 2D GEMM baseline (SUMMA-style, Case 2 regime) on an `r × r` grid:
/// `2·n1n2/r·(1 − 1/r)` words per rank — twice the 2D SYRK cost.
pub fn gemm_2d(a: &Matrix<f64>, r: usize, model: CostModel) -> SyrkRunResult {
    let n1 = a.rows();
    let (outputs, cost) = summa_like(a, r, 0..a.cols(), model, false);
    let c = assemble_c(n1, &Partition1D::new(n1, r), &outputs);
    SyrkRunResult { c, cost }
}

/// ScaLAPACK-style 2D SYRK baseline: identical communication to
/// [`gemm_2d`], half the flops (only `I ≥ J` blocks computed).
pub fn scalapack_syrk_2d(a: &Matrix<f64>, r: usize, model: CostModel) -> SyrkRunResult {
    let n1 = a.rows();
    let (outputs, cost) = summa_like(a, r, 0..a.cols(), model, true);
    let c = assemble_c(n1, &Partition1D::new(n1, r), &outputs);
    SyrkRunResult { c, cost }
}

/// 3D GEMM baseline (Case 3 regime): an `r × r × p2` grid; each of the
/// `p2` slices runs [`gemm_2d`]'s pattern on `n2/p2` columns, then the
/// per-block contributions are reduce-scattered across slices. Leading
/// cost `2n1n2/(r·p2) + n1²/r²` — twice the 3D SYRK with the optimal
/// grids of §5.4.
pub fn gemm_3d(a: &Matrix<f64>, r: usize, p2: usize, model: CostModel) -> SyrkRunResult {
    let (n1, n2) = a.shape();
    let rows = Partition1D::new(n1, r);
    let cols = Partition1D::new(n2, p2);
    let grid = ProcessGrid::new(r * r, p2);

    let machine = Machine::new(r * r * p2).with_model(model);
    let out = machine.run(|mut comm| {
        let gc = grid.split(&mut comm);
        let (big_i, big_j) = (gc.k % r, gc.k / r);
        let cr = cols.range(gc.l);
        let n2l = cr.len();

        // 2D SUMMA within the slice (inlined: the slice communicator must
        // be subdivided again into its own rows/columns).
        let mut slice = gc.slice;
        let row_comm = slice.split(big_i as u64, big_j); // ranks sharing I
        let col_comm = slice.split((r + big_j) as u64, big_i); // sharing J
        let chunk = |blk: usize, idx: usize| -> Vec<f64> {
            let rr = rows.range(blk);
            let flat = a.block_owned(rr.start, cr.start, rr.len(), n2l).into_vec();
            let part = Partition1D::new(flat.len(), r);
            flat[part.range(idx)].to_vec()
        };
        let a_i = Matrix::from_vec(
            rows.len(big_i),
            n2l,
            row_comm.all_gather_concat(chunk(big_i, big_j)),
        );
        let a_j = Matrix::from_vec(
            rows.len(big_j),
            n2l,
            col_comm.all_gather_concat(chunk(big_j, big_i)),
        );
        let c_blk = mul_nt(&a_i, &a_j);
        comm.add_flops(gemm_flops(a_i.rows(), a_j.rows(), n2l));

        // Sum the block across slices and scatter evenly.
        let seg = Partition1D::new(c_blk.len(), p2);
        let mine = gc.row.reduce_scatter_block(c_blk.as_slice(), &seg.lens());
        (big_i, big_j, gc.l, mine)
    });

    // Assemble: concatenate segments per (I, J) and keep the lower half.
    let mut per_block: Vec<Vec<(usize, Vec<f64>)>> = vec![Vec::new(); r * r];
    for (bi, bj, l, seg) in out.results {
        per_block[bi * r + bj].push((l, seg));
    }
    let mut c = Matrix::zeros(n1, n1);
    for bi in 0..r {
        for bj in 0..r {
            let mut segs = std::mem::take(&mut per_block[bi * r + bj]);
            segs.sort_by_key(|&(l, _)| l);
            let flat: Vec<f64> = segs.into_iter().flat_map(|(_, s)| s).collect();
            let (ri, rj) = (rows.range(bi), rows.range(bj));
            c.set_block(
                ri.start,
                rj.start,
                &Matrix::from_vec(ri.len(), rj.len(), flat),
            );
        }
    }
    SyrkRunResult { c, cost: out.cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syrk_dense::{max_abs_diff, seeded_matrix, syrk_full_reference};

    fn check(run: &SyrkRunResult, a: &Matrix<f64>, label: &str) {
        let err = max_abs_diff(&run.c, &syrk_full_reference(a));
        assert!(err < 1e-10, "{label}: err {err}");
    }

    #[test]
    fn gemm_1d_correct() {
        for &(n1, n2, p) in &[(6usize, 12usize, 3usize), (5, 7, 4), (8, 8, 1)] {
            let a = seeded_matrix::<f64>(n1, n2, 31);
            check(&gemm_1d(&a, p, CostModel::bandwidth_only()), &a, "gemm_1d");
        }
    }

    #[test]
    fn gemm_1d_communicates_twice_syrk_1d() {
        let (n1, n2, p) = (20, 40, 5);
        let a = seeded_matrix::<f64>(n1, n2, 3);
        let g = gemm_1d(&a, p, CostModel::bandwidth_only());
        let s = super::super::oned::syrk_1d(&a, p, CostModel::bandwidth_only());
        let ratio = g.cost.max_words_sent() as f64 / s.cost.max_words_sent() as f64;
        // n1² vs n1(n1+1)/2 → ratio = 2n1/(n1+1) ≈ 1.90 for n1 = 20.
        assert!((ratio - 2.0 * 20.0 / 21.0).abs() < 0.05, "ratio {ratio}");
        // And flops are double (minus the diagonal discount).
        let fr = g.cost.total_flops() as f64 / s.cost.total_flops() as f64;
        assert!((fr - 2.0 * 20.0 / 21.0).abs() < 0.05, "flop ratio {fr}");
    }

    #[test]
    fn gemm_2d_correct() {
        for &(n1, n2, r) in &[(8usize, 6usize, 2usize), (12, 5, 3), (9, 9, 3)] {
            let a = seeded_matrix::<f64>(n1, n2, 17);
            check(&gemm_2d(&a, r, CostModel::bandwidth_only()), &a, "gemm_2d");
        }
    }

    #[test]
    fn scalapack_syrk_correct_and_half_flops_same_comm() {
        let (n1, n2, r) = (24, 10, 3);
        let a = seeded_matrix::<f64>(n1, n2, 5);
        let g = gemm_2d(&a, r, CostModel::bandwidth_only());
        let s = scalapack_syrk_2d(&a, r, CostModel::bandwidth_only());
        check(&s, &a, "scalapack_syrk_2d");
        // Identical communication...
        assert_eq!(g.cost.max_words_sent(), s.cost.max_words_sent());
        assert_eq!(g.cost.total_words(), s.cost.total_words());
        // ...roughly half the flops (exactly: (r(r+1)/2 blocks + diag
        // discount) vs r² blocks).
        let fr = g.cost.total_flops() as f64 / s.cost.total_flops() as f64;
        assert!(fr > 1.8 && fr < 2.1, "flop ratio {fr}");
    }

    #[test]
    fn gemm_2d_bandwidth_formula() {
        // Each rank: two all-gathers of chunks of n1n2/r² words to r−1
        // partners each: 2(r−1)·n1n2/r².
        let (n1, n2, r) = (24, 12, 2);
        let a = seeded_matrix::<f64>(n1, n2, 2);
        let g = gemm_2d(&a, r, CostModel::bandwidth_only());
        let expect = 2 * (r - 1) * n1 * n2 / (r * r);
        assert_eq!(g.cost.max_words_sent(), expect as u64);
    }

    #[test]
    fn gemm_3d_correct() {
        for &(n1, n2, r, p2) in &[
            (8usize, 6usize, 2usize, 3usize),
            (12, 8, 2, 2),
            (9, 6, 3, 2),
        ] {
            let a = seeded_matrix::<f64>(n1, n2, 23);
            check(
                &gemm_3d(&a, r, p2, CostModel::bandwidth_only()),
                &a,
                "gemm_3d",
            );
        }
    }

    #[test]
    fn gemm_3d_with_p2_1_matches_2d_comm() {
        let (n1, n2, r) = (16, 8, 2);
        let a = seeded_matrix::<f64>(n1, n2, 29);
        let g3 = gemm_3d(&a, r, 1, CostModel::bandwidth_only());
        let g2 = gemm_2d(&a, r, CostModel::bandwidth_only());
        assert_eq!(g3.cost.max_words_sent(), g2.cost.max_words_sent());
    }
}
