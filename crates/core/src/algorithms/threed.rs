//! Algorithm 3: 3D SYRK (§5.3).
//!
//! A `p1 × p2` process grid with `p1 = c(c+1)`: each of the `p2` slices
//! `Π_{*ℓ}` runs the 2D algorithm on its block column `A_{*ℓ}` (`n2/p2`
//! columns), producing identically-distributed partial results; a
//! `Reduce-Scatter` across each row `Π_{k*}` then sums the partial `C_k`
//! triangle-blocks-of-blocks and leaves the final output evenly spread.
//!
//! Bandwidth cost (eq. (12)): `n1n2/(√p1·p2) + n1²/(2p1)` to leading
//! order.

use syrk_dense::{limit_threads, machine_thread_budget, Diag, Matrix, PackedLower, Partition1D};
use syrk_machine::{CostModel, FaultPlan, Machine, ProcessGrid, Timeline};

use super::common::{assemble_c, DiagBlock, LocalOutput, OffDiagBlock, SyrkRunResult};
use super::twod::twod_body;
use crate::attribution::PHASE_REDUCE_SCATTER_C;
use crate::dist::{ConformalADist, TriangleBlockDist};
use crate::error::SyrkError;
use crate::planner::PlanError;

/// The canonical flat layout of a rank's `C_k` data: its off-diagonal
/// blocks in `blocks_of(k)` order (each row-major), followed by the
/// packed inclusive diagonal block if one is assigned. The layout is a
/// pure function of `(dist, rows, k)`, so all `p2` ranks of a grid row
/// agree on it — the precondition for reduce-scattering `C_k`.
struct CkLayout {
    offdiag: Vec<(usize, usize, usize, usize)>, // (i, j, rows, cols)
    diag: Option<(usize, usize)>,               // (i, n)
    total: usize,
}

impl CkLayout {
    fn new(dist: &TriangleBlockDist, rows: &Partition1D, k: usize) -> Self {
        let mut total = 0;
        // Zero-sized blocks are omitted, mirroring `twod_body`'s output
        // convention (they carry no data and would only bloat the layout
        // when n1 < c² leaves most row blocks empty).
        let offdiag: Vec<_> = dist
            .blocks_of(k)
            .into_iter()
            .filter_map(|(i, j)| {
                let (ri, rj) = (rows.len(i), rows.len(j));
                if ri * rj == 0 {
                    return None;
                }
                total += ri * rj;
                Some((i, j, ri, rj))
            })
            .collect();
        let diag = dist.d_block(k).and_then(|i| {
            let n = rows.len(i);
            if n == 0 {
                return None;
            }
            total += Diag::Inclusive.packed_len(n);
            Some((i, n))
        });
        CkLayout {
            offdiag,
            diag,
            total,
        }
    }

    /// Build the per-destination Reduce-Scatter payloads directly from the
    /// block storage: each of the `lens[q]`-sized segments is filled by
    /// walking the blocks in layout order, so the data is copied exactly
    /// once (block → segment) with no intermediate flat buffer.
    fn segments(&self, out: &LocalOutput, lens: &[usize]) -> Vec<Vec<f64>> {
        let mut srcs: Vec<&[f64]> = Vec::with_capacity(self.offdiag.len() + 1);
        for (idx, &(i, j, ri, rj)) in self.offdiag.iter().enumerate() {
            let blk = &out.offdiag[idx];
            assert_eq!((blk.i, blk.j), (i, j), "layout order mismatch");
            assert_eq!(blk.data.shape(), (ri, rj));
            srcs.push(blk.data.as_slice());
        }
        if let Some((i, n)) = self.diag {
            let blk = &out.diag[0];
            assert_eq!(blk.i, i);
            assert_eq!(blk.data.n(), n);
            srcs.push(blk.data.as_slice());
        }
        debug_assert_eq!(srcs.iter().map(|s| s.len()).sum::<usize>(), self.total);
        assert_eq!(lens.iter().sum::<usize>(), self.total);
        let mut segs: Vec<Vec<f64>> = lens.iter().map(|&l| Vec::with_capacity(l)).collect();
        let mut q = 0;
        for mut src in srcs {
            while !src.is_empty() {
                while segs[q].len() == lens[q] {
                    q += 1;
                }
                let take = src.len().min(lens[q] - segs[q].len());
                let (head, tail) = src.split_at(take);
                segs[q].extend_from_slice(head);
                src = tail;
            }
        }
        segs
    }

    /// Rebuild a `LocalOutput` from the reduced segments (in ℓ order),
    /// reading across segment boundaries with a cursor — the inverse of
    /// [`CkLayout::segments`], again with a single block-sized copy and no
    /// concatenated flat buffer.
    fn assemble(&self, segs: &[Vec<f64>]) -> LocalOutput {
        assert_eq!(
            segs.iter().map(Vec::len).sum::<usize>(),
            self.total,
            "C_k segments have the wrong total length"
        );
        let (mut q, mut off) = (0usize, 0usize);
        let mut take = |len: usize| -> Vec<f64> {
            let mut buf = Vec::with_capacity(len);
            while buf.len() < len {
                if off == segs[q].len() {
                    q += 1;
                    off = 0;
                    continue;
                }
                let n = (len - buf.len()).min(segs[q].len() - off);
                buf.extend_from_slice(&segs[q][off..off + n]);
                off += n;
            }
            buf
        };
        let mut out = LocalOutput::default();
        for &(i, j, ri, rj) in &self.offdiag {
            out.offdiag.push(OffDiagBlock {
                i,
                j,
                data: Matrix::from_vec(ri, rj, take(ri * rj)),
            });
        }
        if let Some((i, n)) = self.diag {
            out.diag.push(DiagBlock {
                i,
                data: PackedLower::from_vec(
                    n,
                    Diag::Inclusive,
                    take(Diag::Inclusive.packed_len(n)),
                ),
            });
        }
        out
    }
}

/// Run Algorithm 3 on a simulated machine with `P = c(c+1)·p2` ranks.
///
/// Returns the assembled `C = A·Aᵀ` and the cost report.
pub fn syrk_3d(a: &Matrix<f64>, c: usize, p2: usize, model: CostModel) -> SyrkRunResult {
    match syrk_3d_impl(a, c, p2, model, false, None) {
        Ok((run, _)) => run,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`syrk_3d`]: invalid configurations and machine
/// failures (crash, deadlock, …) surface as [`SyrkError`] instead of
/// panicking. An optional [`FaultPlan`] injects deterministic transport
/// faults into the run.
#[must_use = "the Result carries the simulated run's outcome or failure"]
pub fn try_syrk_3d(
    a: &Matrix<f64>,
    c: usize,
    p2: usize,
    model: CostModel,
    faults: Option<&FaultPlan>,
) -> Result<SyrkRunResult, SyrkError> {
    syrk_3d_impl(a, c, p2, model, false, faults).map(|(run, _)| run)
}

/// Algorithm 3 with event tracing enabled: returns the run result plus
/// the per-rank communication timelines (see `syrk_machine::Event`).
pub fn syrk_3d_traced(
    a: &Matrix<f64>,
    c: usize,
    p2: usize,
    model: CostModel,
) -> (SyrkRunResult, Vec<Timeline>) {
    try_syrk_3d_traced(a, c, p2, model, None).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`syrk_3d_traced`], with optional fault injection.
#[must_use = "the Result carries the simulated run's outcome or failure"]
pub fn try_syrk_3d_traced(
    a: &Matrix<f64>,
    c: usize,
    p2: usize,
    model: CostModel,
    faults: Option<&FaultPlan>,
) -> Result<(SyrkRunResult, Vec<Timeline>), SyrkError> {
    let (run, traces) = syrk_3d_impl(a, c, p2, model, true, faults)?;
    Ok((run, traces.expect("tracing was enabled")))
}

fn syrk_3d_impl(
    a: &Matrix<f64>,
    c: usize,
    p2: usize,
    model: CostModel,
    tracing: bool,
    faults: Option<&FaultPlan>,
) -> Result<(SyrkRunResult, Option<Vec<Timeline>>), SyrkError> {
    let dist = TriangleBlockDist::for_order(c).ok_or(PlanError::UnsupportedOrder { c })?;
    if p2 == 0 {
        return Err(PlanError::ZeroRanks.into());
    }
    let p1 = dist.p();
    let (n1, n2) = a.shape();
    if n1 == 0 || n2 == 0 {
        return Err(PlanError::EmptyMatrix { n1, n2 }.into());
    }
    let rows = Partition1D::new(n1, dist.num_blocks());
    let cols = Partition1D::new(n2, p2);
    let grid = ProcessGrid::new(p1, p2);

    let mut machine = Machine::new(p1 * p2).with_model(model);
    if tracing {
        machine = machine.with_tracing();
    }
    if let Some(plan) = faults {
        machine = machine.with_faults(plan.clone());
    }
    // Split the hardware threads evenly across the *concurrently
    // executing* ranks so the per-rank kernels don't oversubscribe the
    // host. Under the event engine ranks run one at a time, so each may
    // use the full budget.
    let _threads = limit_threads(machine_thread_budget(machine.concurrent_ranks()));
    let out = machine.try_run(|mut comm| {
        let gc = grid.split(&mut comm);
        // Line 3: run 2D SYRK within the slice on block column A_{*ℓ}.
        // Phases (allgather-A, local-gemm, local-syrk) are pushed by the
        // 2D body on the slice communicator; they land on this world
        // rank's ledger because spans are per-rank, not per-communicator.
        let cr = cols.range(gc.l);
        let a_col = a.block_owned(0, cr.start, n1, cr.len());
        let ad = ConformalADist::new(&dist, n1, cr.len());
        let local = twod_body(&gc.slice, &dist, &ad, &a_col)?;
        // Lines 4–5: Reduce-Scatter the partial C_k across Π_{k*}. The
        // payloads are built straight from the block storage (no flat
        // concatenation) and handed to the segment-based collective, which
        // moves exactly the same words as the block interface.
        let _span = comm.phase(PHASE_REDUCE_SCATTER_C);
        let layout = CkLayout::new(&dist, &rows, gc.k);
        let seg = Partition1D::new(layout.total, p2);
        let mine = gc
            .row
            .try_reduce_scatter(layout.segments(&local, &seg.lens()))?;
        Ok((gc.k, gc.l, mine))
    })?;

    // Assembly: for each grid row k, concatenate the p2 final segments in
    // ℓ order to recover the summed flat C_k, then unflatten.
    let mut per_k: Vec<Vec<(usize, Vec<f64>)>> = vec![Vec::new(); p1];
    for (k, l, seg) in out.results {
        per_k[k].push((l, seg));
    }
    let mut outputs = Vec::with_capacity(p1);
    for (k, mut segs) in per_k.into_iter().enumerate() {
        segs.sort_by_key(|&(l, _)| l);
        let segs: Vec<Vec<f64>> = segs.into_iter().map(|(_, s)| s).collect();
        outputs.push(CkLayout::new(&dist, &rows, k).assemble(&segs));
    }
    let c_full = assemble_c(n1, &rows, &outputs);
    Ok((
        SyrkRunResult {
            c: c_full,
            cost: out.cost,
        },
        out.traces,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::alg3d_predicted_cost;
    use syrk_dense::{max_abs_diff, seeded_int_matrix, seeded_matrix, syrk_full_reference};

    #[test]
    fn correct_small_grids() {
        for &(n1, n2, c, p2) in &[
            (8usize, 6usize, 2usize, 3usize), // Fig. 3's grid: p1=6, p2=3
            (8, 8, 2, 2),
            (9, 12, 3, 2),
            (12, 9, 2, 3),  // uneven: c² = 4 blocks of 3 rows, n2 = 9 over 3
            (10, 10, 2, 4), // c² ∤ n1 and p2 ∤ n2
        ] {
            let a = seeded_matrix::<f64>(n1, n2, (n1 * 7 + n2 * 3 + c) as u64);
            let run = syrk_3d(&a, c, p2, CostModel::bandwidth_only());
            let err = max_abs_diff(&run.c, &syrk_full_reference(&a));
            assert!(err < 1e-10, "({n1},{n2},c={c},p2={p2}): err {err}");
        }
    }

    #[test]
    fn p2_equals_1_reduces_to_2d() {
        // With p2 = 1 the slice is the whole machine and the final
        // Reduce-Scatter is over one rank (free): identical to Alg. 2.
        let a = seeded_int_matrix::<f64>(12, 5, 4, 5);
        let run3 = syrk_3d(&a, 2, 1, CostModel::bandwidth_only());
        let run2 = super::super::twod::syrk_2d(&a, 2, CostModel::bandwidth_only());
        assert_eq!(max_abs_diff(&run3.c, &run2.c), 0.0);
        assert_eq!(run3.cost.max_words_sent(), run2.cost.max_words_sent());
    }

    #[test]
    fn integer_inputs_are_exact() {
        let a = seeded_int_matrix::<f64>(16, 12, 4, 21);
        let run = syrk_3d(&a, 2, 3, CostModel::bandwidth_only());
        assert_eq!(max_abs_diff(&run.c, &syrk_full_reference(&a)), 0.0);
    }

    #[test]
    fn bandwidth_near_eq12() {
        // Exact-division sizes so the prediction is sharp. Our A-exchange
        // is the tight (unpadded) variant, so measured ≤ eq. (12) with the
        // A term scaled by c/(c+1), within rounding.
        let (n1, n2, c, p2) = (36, 24, 3, 4);
        let a = seeded_matrix::<f64>(n1, n2, 6);
        let run = syrk_3d(&a, c, p2, CostModel::bandwidth_only());
        let measured = run.cost.max_words_sent() as f64;
        let padded = alg3d_predicted_cost(n1, n2, c, p2);
        // Tight A-term: n1·(n2/p2)/(c+1); C-term as in eq. (12) but with
        // the exact |C_k| of this grid.
        assert!(
            measured <= padded * 1.05,
            "measured {measured} should not exceed padded eq(12) {padded}"
        );
        assert!(
            measured >= padded * 0.6,
            "measured {measured} suspiciously far below eq(12) {padded}"
        );
    }

    #[test]
    fn both_a_and_c_move() {
        // Unlike 1D (C only) and 2D (A only), the 3D algorithm moves both:
        // words exceed either single-phase total.
        let (n1, n2, c, p2) = (24, 12, 2, 2);
        let a = seeded_matrix::<f64>(n1, n2, 13);
        let run = syrk_3d(&a, c, p2, CostModel::bandwidth_only());
        let a_words_per_slice_rank = n1 * (n2 / p2) / (c + 1);
        assert!(run.cost.max_words_sent() > a_words_per_slice_rank as u64);
    }
}
