//! Distributed SYR2K — the first of the paper's §6 future-work kernels
//! (`C = A·Bᵀ + B·Aᵀ`, symmetric output), built with the *same* triangle
//! blocking machinery as SYRK.
//!
//! The symmetric-iteration-space argument carries over directly: with two
//! `n1 × n2` inputs, the 1D algorithm still communicates only the packed
//! output triangle (`(n1(n1+1)/2)(1 − 1/P)` words — unchanged from SYRK),
//! and the 2D algorithm communicates both inputs' row blocks
//! (`2·n1n2/(c+1)` words — exactly twice SYRK's input term, half of the
//! `4·n1n2/√P` a GEMM-style evaluation of the two products would move).

use syrk_dense::{
    gemm_flops, mul_nt, syr2k_flops, syr2k_packed_new, Diag, Matrix, PackedLower, Partition1D,
};
use syrk_machine::{CostModel, Machine};

use super::common::{assemble_c, DiagBlock, LocalOutput, OffDiagBlock, SyrkRunResult};
use crate::dist::{ConformalADist, TriangleBlockDist};

/// 1D SYR2K: both inputs column-distributed, local SYR2K, Reduce-Scatter
/// of the packed triangle. Identical communication to [`syrk_1d`]
/// (`crate::syrk_1d`) — the output is the only thing that moves.
pub fn syr2k_1d(a: &Matrix<f64>, b: &Matrix<f64>, p: usize, model: CostModel) -> SyrkRunResult {
    let (n1, n2) = a.shape();
    assert_eq!(
        b.shape(),
        (n1, n2),
        "syr2k: A and B must have identical shapes"
    );
    let cols = Partition1D::new(n2, p);
    let packed_len = Diag::Inclusive.packed_len(n1);
    let segments = Partition1D::new(packed_len, p);

    let machine = Machine::new(p).with_model(model);
    let out = machine.run(|comm| {
        let r = cols.range(comm.rank());
        let a_l = a.block_owned(0, r.start, n1, r.len());
        let b_l = b.block_owned(0, r.start, n1, r.len());
        let cbar = syr2k_packed_new(&a_l, &b_l, Diag::Inclusive);
        comm.add_flops(syr2k_flops(n1, r.len()));
        comm.reduce_scatter_block(cbar.as_slice(), &segments.lens())
    });

    let mut packed = Vec::with_capacity(packed_len);
    for seg in &out.results {
        packed.extend_from_slice(seg);
    }
    let c = PackedLower::from_vec(n1, Diag::Inclusive, packed).to_full_symmetric();
    SyrkRunResult { c, cost: out.cost }
}

/// 2D SYR2K on the Triangle Block Distribution: one All-to-All gathers
/// the `R_k` row blocks of *both* inputs (two chunks per partner), then
/// each off-diagonal block is `C_ij = A_i·B_jᵀ + B_i·A_jᵀ` and each
/// diagonal block a local SYR2K.
pub fn syr2k_2d(a: &Matrix<f64>, b: &Matrix<f64>, c: usize, model: CostModel) -> SyrkRunResult {
    let dist = TriangleBlockDist::for_order(c).unwrap_or_else(|| {
        panic!("no triangle block construction for c = {c} (need a prime power)")
    });
    let (n1, n2) = a.shape();
    assert_eq!(
        b.shape(),
        (n1, n2),
        "syr2k: A and B must have identical shapes"
    );
    let ad = ConformalADist::new(&dist, n1, n2);

    let machine = Machine::new(dist.p()).with_model(model);
    let out = machine.run(|comm| {
        let k = comm.rank();
        let n2l = n2;
        // Chunks of both inputs are packed back-to-back per partner, so
        // the exchange is still a single (sparse) All-to-All: latency
        // matches SYRK's pair-per-partner schedule, bandwidth doubled.
        let my_chunk = |m: &Matrix<f64>, i: usize| ad.extract_chunk(m, i, k);
        let mut recv_words: Vec<usize> = vec![0; comm.size()];
        for &i in dist.r_set(k) {
            let part = ad.chunk_partition(i);
            for (pos, &m) in dist.q_set(i).iter().enumerate() {
                if m != k {
                    recv_words[m] = 2 * part.len(pos);
                }
            }
        }
        let blocks: Vec<Vec<f64>> = (0..comm.size())
            .map(|k2| {
                if k2 == k {
                    return Vec::new();
                }
                match dist.common_block(k, k2) {
                    Some(i) => {
                        let mut buf = my_chunk(a, i);
                        buf.extend(my_chunk(b, i));
                        buf
                    }
                    None => Vec::new(),
                }
            })
            .collect();
        let received = comm
            .try_all_to_all_v(blocks, &recv_words)
            .unwrap_or_else(|e| panic!("{e}"));

        // Reassemble A_i and B_i from the paired chunks.
        let gather = |i: usize| -> (Matrix<f64>, Matrix<f64>) {
            let mut a_chunks = Vec::new();
            let mut b_chunks = Vec::new();
            for &m in dist.q_set(i) {
                if m == k {
                    a_chunks.push(my_chunk(a, i));
                    b_chunks.push(my_chunk(b, i));
                } else {
                    let buf = &received[m];
                    let half = ad.chunk_len(i, m);
                    assert_eq!(buf.len(), 2 * half, "paired chunk length mismatch");
                    a_chunks.push(buf[..half].to_vec());
                    b_chunks.push(buf[half..].to_vec());
                }
            }
            (
                ad.assemble_block(i, &a_chunks),
                ad.assemble_block(i, &b_chunks),
            )
        };
        type BlockPair = (Matrix<f64>, Matrix<f64>);
        let gathered: Vec<(usize, BlockPair)> =
            dist.r_set(k).iter().map(|&i| (i, gather(i))).collect();
        let pair_for = |i: usize| {
            &gathered
                .iter()
                .find(|&&(bi, _)| bi == i)
                .expect("i ∈ R_k was gathered")
                .1
        };

        let mut out = LocalOutput::default();
        for (i, j) in dist.blocks_of(k) {
            let (ai, bi) = pair_for(i);
            let (aj, bj) = pair_for(j);
            // C_ij = A_i·B_jᵀ + B_i·A_jᵀ.
            let mut blk = mul_nt(ai, bj);
            blk.add_assign(&mul_nt(bi, aj));
            comm.add_flops(2 * gemm_flops(ai.rows(), aj.rows(), n2l));
            out.offdiag.push(OffDiagBlock { i, j, data: blk });
        }
        if let Some(i) = dist.d_block(k) {
            let (ai, bi) = pair_for(i);
            out.diag.push(DiagBlock {
                i,
                data: syr2k_packed_new(ai, bi, Diag::Inclusive),
            });
            comm.add_flops(syr2k_flops(ai.rows(), n2l));
        }
        out
    });
    let c_full = assemble_c(n1, &ad.rows, &out.results);
    SyrkRunResult {
        c: c_full,
        cost: out.cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syrk_dense::{max_abs_diff, seeded_int_matrix, seeded_matrix, syr2k_full_reference};

    #[test]
    fn syr2k_1d_correct() {
        for &(n1, n2, p) in &[(6usize, 12usize, 3usize), (9, 7, 4), (16, 16, 1)] {
            let a = seeded_matrix::<f64>(n1, n2, 1);
            let b = seeded_matrix::<f64>(n1, n2, 2);
            let run = syr2k_1d(&a, &b, p, CostModel::bandwidth_only());
            let err = max_abs_diff(&run.c, &syr2k_full_reference(&a, &b));
            assert!(err < 1e-10, "({n1},{n2},{p}): {err}");
        }
    }

    #[test]
    fn syr2k_2d_correct() {
        for &(n1, n2, c) in &[(8usize, 5usize, 2usize), (18, 4, 3), (27, 6, 3)] {
            let a = seeded_int_matrix::<f64>(n1, n2, 4, 3);
            let b = seeded_int_matrix::<f64>(n1, n2, 4, 4);
            let run = syr2k_2d(&a, &b, c, CostModel::bandwidth_only());
            assert_eq!(
                max_abs_diff(&run.c, &syr2k_full_reference(&a, &b)),
                0.0,
                "({n1},{n2},c={c})"
            );
        }
    }

    #[test]
    fn syr2k_1d_communication_equals_syrk_1d() {
        // The §6 insight carried over: the output triangle is all that
        // moves, so SYR2K costs the same words as SYRK in 1D.
        let (n1, n2, p) = (20, 40, 5);
        let a = seeded_matrix::<f64>(n1, n2, 5);
        let b = seeded_matrix::<f64>(n1, n2, 6);
        let s2 = syr2k_1d(&a, &b, p, CostModel::bandwidth_only());
        let s1 = super::super::oned::syrk_1d(&a, p, CostModel::bandwidth_only());
        assert_eq!(s2.cost.max_words_sent(), s1.cost.max_words_sent());
        // Local flops double (two rank-k updates); the Reduce-Scatter
        // additions are unchanged (same output size).
        let rs_flops = ((p - 1) * n1 * (n1 + 1) / 2) as u64;
        assert_eq!(
            s2.cost.total_flops(),
            2 * (s1.cost.total_flops() - rs_flops) + rs_flops
        );
    }

    #[test]
    fn syr2k_2d_communication_is_twice_syrk_2d() {
        let (n1, n2, c) = (36, 8, 3);
        let a = seeded_matrix::<f64>(n1, n2, 7);
        let b = seeded_matrix::<f64>(n1, n2, 8);
        let s2 = syr2k_2d(&a, &b, c, CostModel::bandwidth_only());
        let s1 = super::super::twod::syrk_2d(&a, c, CostModel::bandwidth_only());
        assert_eq!(s2.cost.max_words_sent(), 2 * s1.cost.max_words_sent());
        // Same latency: chunks are paired into the same messages.
        assert_eq!(s2.cost.max_messages(), s1.cost.max_messages());
    }

    #[test]
    #[should_panic(expected = "identical shapes")]
    fn shape_mismatch_rejected() {
        let a = Matrix::<f64>::zeros(4, 3);
        let b = Matrix::<f64>::zeros(4, 2);
        let _ = syr2k_1d(&a, &b, 2, CostModel::bandwidth_only());
    }
}
