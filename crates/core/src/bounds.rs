//! Communication lower bounds: Theorem 1 for SYRK, the matching GEMM
//! bounds of Al Daas et al. (SPAA '22) for comparison, and the predicted
//! costs of Algorithms 1–3 (eqs. (3), (10)–(12)).

pub use syrk_geometry::BoundCase;
use syrk_geometry::Lemma6Problem;

/// The Theorem 1 lower bound for an `(n1, n2, P)` SYRK instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyrkBound {
    /// The data-access term `W` (three cases).
    pub w: f64,
    /// The resident-data term `(n1(n1−1)/2 + n1·n2)/P` subtracted from `W`.
    pub resident: f64,
    /// Which case of the trichotomy applies.
    pub case: BoundCase,
}

impl SyrkBound {
    /// Words that must cross the network at some processor: `W − resident`.
    pub fn communicated(&self) -> f64 {
        (self.w - self.resident).max(0.0)
    }
}

/// Theorem 1: any parallel algorithm on `P` processors starting with one
/// copy of `A` and ending with one copy of strict-lower `C`, load
/// balancing computation or data, must move at least
/// `W − (n1(n1−1)/2 + n1n2)/P` words at some processor, with
///
/// * Case 1: `W = n1n2/P + n1(n1−1)/2`
/// * Case 2: `W = n1n2/√P + n1(n1−1)/2P`
/// * Case 3: `W = (3/2)·(n1(n1−1)n2/P)^(2/3)`
///
/// ```
/// use syrk_core::{syrk_lower_bound, BoundCase};
/// let b = syrk_lower_bound(10_000, 50, 400); // tall-skinny, P = 400
/// assert_eq!(b.case, BoundCase::Case2);
/// assert!(b.communicated() > 0.0);
/// ```
pub fn syrk_lower_bound(n1: usize, n2: usize, p: usize) -> SyrkBound {
    assert!(n1 >= 2 && n2 >= 1 && p >= 1, "need n1 ≥ 2, n2 ≥ 1, P ≥ 1");
    let problem = Lemma6Problem::new(n1 as u64, n2 as u64, p as u64);
    let (n1f, n2f, pf) = (n1 as f64, n2 as f64, p as f64);
    let t = n1f * (n1f - 1.0);
    let w = match problem.case() {
        BoundCase::Case1 => n1f * n2f / pf + t / 2.0,
        BoundCase::Case2 => n1f * n2f / pf.sqrt() + t / (2.0 * pf),
        BoundCase::Case3 => 1.5 * (t * n2f / pf).powf(2.0 / 3.0),
    };
    let resident = (t / 2.0 + n1f * n2f) / pf;
    SyrkBound {
        w,
        resident,
        case: problem.case(),
    }
}

/// The matching memory-independent GEMM lower bound (Al Daas et al.,
/// SPAA '22) for the *same product* computed without exploiting symmetry:
/// `C = A·Bᵀ` with `A, B: n1 × n2` (so `C: n1 × n1`). Each case's leading
/// term is exactly twice the corresponding SYRK term — the paper's
/// headline factor of 2.
pub fn gemm_lower_bound(n1: usize, n2: usize, p: usize) -> SyrkBound {
    assert!(n1 >= 1 && n2 >= 1 && p >= 1);
    let (n1f, n2f, pf) = (n1 as f64, n2 as f64, p as f64);
    // Case conditions with the symmetric t = n1(n1−1) replaced by the full
    // output size n1² (aspect-ratio thresholds of the rectangular bound
    // specialized to m = n = n1, k = n2).
    let (w, case) = if n1 <= n2 && pf <= n2f / n1f {
        (2.0 * n1f * n2f / pf + n1f * n1f, BoundCase::Case1)
    } else if n1 > n2 && pf <= (n1f * n1f) / (n2f * n2f) {
        (
            2.0 * n1f * n2f / pf.sqrt() + n1f * n1f / pf,
            BoundCase::Case2,
        )
    } else {
        (
            3.0 * (n1f * n1f * n2f / pf).powf(2.0 / 3.0),
            BoundCase::Case3,
        )
    };
    let resident = (n1f * n1f + 2.0 * n1f * n2f) / pf;
    SyrkBound { w, resident, case }
}

/// The memory-dependent parallel lower bound obtained by extending the
/// sequential I/O bound of Beaumont et al. (SPAA '22) — which the paper
/// cites as `(1/√2)·n1²n2/√M` — to `P` processors with local memory `M`
/// words (§6: "an extension of the memory-dependent sequential bound to
/// the parallel case gives a tighter lower bound" when memory is
/// limited): a processor performing the balanced `n1(n1−1)n2/2P`
/// multiplications must move at least
///
/// ```text
/// W_mem = n1(n1−1)·n2 / (√2 · P · √M)
/// ```
///
/// words. The *effective* bound is `max(W_mem, Theorem-1 communicated)`;
/// `W_mem` dominates exactly when `M` is small relative to the
/// memory-independent regime's working set.
pub fn syrk_memory_dependent_bound(n1: usize, n2: usize, p: usize, m: usize) -> f64 {
    assert!(m >= 1, "local memory must be positive");
    let (n1f, n2f, pf) = (n1 as f64, n2 as f64, p as f64);
    n1f * (n1f - 1.0) * n2f / (2f64.sqrt() * pf * (m as f64).sqrt())
}

/// `max` of the memory-independent (Theorem 1) and memory-dependent
/// bounds — the §6 combined bound.
pub fn syrk_effective_bound(n1: usize, n2: usize, p: usize, m: usize) -> f64 {
    syrk_lower_bound(n1, n2, p)
        .communicated()
        .max(syrk_memory_dependent_bound(n1, n2, p, m))
}

/// Predicted bandwidth cost of Algorithm 1 (eq. (3)):
/// `(n1(n1+1)/2)·(1 − 1/P)` — the Reduce-Scatter of the packed triangle.
pub fn alg1d_predicted_cost(n1: usize, p: usize) -> f64 {
    let n1 = n1 as f64;
    let p = p as f64;
    n1 * (n1 + 1.0) / 2.0 * (1.0 - 1.0 / p)
}

/// Predicted bandwidth cost of Algorithm 2 as analyzed in eq. (10):
/// `(n1n2/c)·(1 − 1/P)` with `P = c(c+1)` — the All-to-All over the
/// padded buffer `B`.
pub fn alg2d_predicted_cost(n1: usize, n2: usize, c: usize) -> f64 {
    let p = (c * (c + 1)) as f64;
    (n1 * n2) as f64 / c as f64 * (1.0 - 1.0 / p)
}

/// Bandwidth cost of Algorithm 2 when only *meaningful* chunks are
/// exchanged (no padding): each processor sends its chunk of each of its
/// `c` row blocks to the other `c` members of that block's processor set,
/// `c²` chunks of `n1n2/(c²(c+1))` words: `n1n2/(c+1)`.
///
/// This equals `W − n1n2/P` exactly (the Theorem 1 communicated bound up
/// to the `C`-side resident term), slightly below eq. (10)'s padded cost;
/// both are `n1n2/√P` to leading order.
pub fn alg2d_tight_cost(n1: usize, n2: usize, c: usize) -> f64 {
    (n1 * n2) as f64 / (c + 1) as f64
}

/// The `A`-side term of eq. (12) with exact prefactors: the slice-level
/// All-to-All of `A` chunks (each slice works on `n2/p2` columns),
/// `n1n2/(c·p2)·(1 − 1/p1)` with `p1 = c(c+1)`.
pub fn alg3d_a_term(n1: usize, n2: usize, c: usize, p2: usize) -> f64 {
    let p1 = (c * (c + 1)) as f64;
    (n1 * n2) as f64 / (c as f64 * p2 as f64) * (1.0 - 1.0 / p1)
}

/// The `C`-side term of eq. (12) with exact prefactors: the Reduce-Scatter
/// of each `C_k` panel across `p2` ranks, `n1²/(2c²)·(1 − 1/p2)`.
pub fn alg3d_c_term(n1: usize, c: usize, p2: usize) -> f64 {
    let n1f = n1 as f64;
    0.5 * n1f * n1f / (c * c) as f64 * (1.0 - 1.0 / p2 as f64)
}

/// Predicted bandwidth cost of Algorithm 3 (eq. (12) with exact
/// prefactors): the slice-level 2D exchange on `n2/p2` columns plus the
/// Reduce-Scatter of `C_k` across `p2` ranks —
/// [`alg3d_a_term`] + [`alg3d_c_term`].
pub fn alg3d_predicted_cost(n1: usize, n2: usize, c: usize, p2: usize) -> f64 {
    alg3d_a_term(n1, n2, c, p2) + alg3d_c_term(n1, c, p2)
}

/// Leading-order `A`-side term of eq. (12): `n1n2/(√p1·p2)`.
pub fn alg3d_leading_a_term(n1: usize, n2: usize, p1: usize, p2: usize) -> f64 {
    (n1 * n2) as f64 / ((p1 as f64).sqrt() * p2 as f64)
}

/// Leading-order `C`-side term of eq. (12): `n1²/(2p1)`.
pub fn alg3d_leading_c_term(n1: usize, p1: usize) -> f64 {
    let n1f = n1 as f64;
    n1f * n1f / (2.0 * p1 as f64)
}

/// Leading-order simplification of eq. (12): `n1n2/(√p1·p2) + n1²/(2p1)` —
/// [`alg3d_leading_a_term`] + [`alg3d_leading_c_term`].
pub fn alg3d_leading_cost(n1: usize, n2: usize, p1: usize, p2: usize) -> f64 {
    alg3d_leading_a_term(n1, n2, p1, p2) + alg3d_leading_c_term(n1, p1)
}

/// Theorem 1 Case 1's output term `n1(n1−1)/2`: the strict lower triangle
/// of `C` that must leave whichever processor computes it — the term the
/// 1D algorithm's Reduce-Scatter of `C` pays.
pub fn thm1_case1_c_term(n1: usize) -> f64 {
    let n1f = n1 as f64;
    n1f * (n1f - 1.0) / 2.0
}

/// Theorem 1 Case 2's `A`-side term `n1·n2/√P`: the replication of `A`
/// that any algorithm in the tall-output regime must pay — the term the
/// 2D algorithm's All-to-All of `A` chunks (its allgather of `A` within
/// each processor set) pays.
pub fn thm1_case2_a_term(n1: usize, n2: usize, p: usize) -> f64 {
    (n1 * n2) as f64 / (p as f64).sqrt()
}

/// Theorem 1 Case 2's `C`-side term `n1(n1−1)/2P`.
pub fn thm1_case2_c_term(n1: usize, p: usize) -> f64 {
    thm1_case1_c_term(n1) / p as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_case1_formula() {
        // n1 = 10 ≤ n2 = 1000, P = 5 ≤ 1000/√90 ≈ 105.4.
        let b = syrk_lower_bound(10, 1000, 5);
        assert_eq!(b.case, BoundCase::Case1);
        assert!((b.w - (10.0 * 1000.0 / 5.0 + 45.0)).abs() < 1e-9);
        assert!((b.resident - (45.0 + 10_000.0) / 5.0).abs() < 1e-9);
    }

    #[test]
    fn bound_case2_formula() {
        // n1 = 1000 > n2 = 10, P = 100 ≤ 999000/100 = 9990.
        let b = syrk_lower_bound(1000, 10, 100);
        assert_eq!(b.case, BoundCase::Case2);
        let expect = 1000.0 * 10.0 / 10.0 + 999_000.0 / 200.0;
        assert!((b.w - expect).abs() < 1e-9);
    }

    #[test]
    fn bound_case3_formula() {
        let b = syrk_lower_bound(100, 100, 10_000);
        assert_eq!(b.case, BoundCase::Case3);
        let expect = 1.5 * (100.0 * 99.0 * 100.0 / 10_000.0f64).powf(2.0 / 3.0);
        assert!((b.w - expect).abs() < 1e-9);
    }

    #[test]
    fn gemm_is_twice_syrk_in_every_case_leading_order() {
        // Case 1: SYRK W ≈ n1²/2 vs GEMM W ≈ n1² (the n1n2/P terms vanish
        // relative to the output term as n2 grows).
        let s = syrk_lower_bound(100, 100_000, 10);
        let g = gemm_lower_bound(100, 100_000, 10);
        let s_lead = 100.0 * 99.0 / 2.0;
        let g_lead = 100.0 * 100.0;
        assert!((s.w - 100.0 * 100_000.0 / 10.0 - s_lead).abs() < 1e-6);
        assert!((g.w - 2.0 * 100.0 * 100_000.0 / 10.0 - g_lead).abs() < 1e-6);

        // Case 2: SYRK ≈ n1n2/√P vs GEMM ≈ 2n1n2/√P.
        let s = syrk_lower_bound(10_000, 50, 400);
        let g = gemm_lower_bound(10_000, 50, 400);
        assert!(s.case == BoundCase::Case2 && g.case == BoundCase::Case2);
        // Both W terms (A exchange and C footprint) double: exact ratio 2
        // up to the n1−1 vs n1 discount.
        assert!(
            ((g.w - s.w * 2.0) / g.w).abs() < 0.01,
            "ratio {}",
            g.w / s.w
        );

        // Case 3: 3 vs 3/2 prefactor exactly (up to n1−1 vs n1).
        let s = syrk_lower_bound(1000, 1000, 1_000_000);
        let g = gemm_lower_bound(1000, 1000, 1_000_000);
        assert!(s.case == BoundCase::Case3 && g.case == BoundCase::Case3);
        let ratio = g.w / s.w;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn communicated_is_nonnegative() {
        for &(n1, n2, p) in &[
            (2, 1, 1),
            (10, 10, 1),
            (100, 3, 7),
            (4, 4000, 12),
            (50, 50, 2500),
        ] {
            let b = syrk_lower_bound(n1, n2, p);
            assert!(b.communicated() >= 0.0, "({n1},{n2},{p})");
        }
    }

    #[test]
    fn p_equals_one_needs_no_communication() {
        let b = syrk_lower_bound(64, 32, 1);
        // W = n1n2 + n1(n1−1)/2 = resident exactly: nothing to move.
        assert!(b.communicated() < 1e-9);
    }

    #[test]
    fn alg_costs_match_bounds_leading_terms() {
        // 1D (Case 1): cost ≈ n1²/2 = the W leading term for huge n2.
        let cost = alg1d_predicted_cost(1000, 50);
        let b = syrk_lower_bound(1000, 10_000_000, 50);
        assert_eq!(b.case, BoundCase::Case1);
        // W − n1n2/P = n1(n1−1)/2 ≈ cost.
        let lead = b.w - 1000.0 * 10_000_000.0 / 50.0;
        // cost = n1(n1+1)/2·(1−1/P) vs lead = n1(n1−1)/2: within
        // (n1+1)/(n1−1)·(1−1/P) of each other.
        assert!((cost / lead - 1.0).abs() < 0.03, "{cost} vs {lead}");

        // 2D (Case 2): tight cost = n1n2/(c+1); W − resident ≈ same.
        let (n1, n2, c) = (10_000, 20, 7);
        let p = c * (c + 1);
        let b = syrk_lower_bound(n1, n2, p);
        assert_eq!(b.case, BoundCase::Case2);
        let tight = alg2d_tight_cost(n1, n2, c);
        // W = n1n2/√P + t/2P; communicated bound subtracts resident.
        // tight = n1n2/(c+1) and n1n2/√(c(c+1)) − n1n2/(c(c+1)) =
        // n1n2·(√p − 1)/p ≈ n1n2/(c+1) for c not too small.
        assert!(
            (tight / b.communicated() - 1.0).abs() < 0.15,
            "{tight} vs {}",
            b.communicated()
        );
        // And the padded eq. (10) cost is slightly larger than tight.
        assert!(alg2d_predicted_cost(n1, n2, c) > tight);

        // 3D: leading cost with the optimal grid ≈ (3/2)(n1(n1−1)n2/P)^(2/3).
        let (n1, n2) = (512, 512);
        let (p1, p2) = (56, 8); // c = 7
        let p = p1 * p2;
        let lead = alg3d_leading_cost(n1, n2, p1, p2);
        let b = syrk_lower_bound(n1, n2, p);
        assert_eq!(b.case, BoundCase::Case3);
        // Not exactly the optimal grid (c is constrained to primes), so
        // allow some slack.
        assert!(
            lead >= b.w * 0.85 && lead <= b.w * 1.6,
            "{lead} vs W {}",
            b.w
        );
    }

    #[test]
    fn memory_dependent_bound_takes_over_for_small_m() {
        // Square Case 3 instance: with ample memory the Theorem 1 bound
        // governs; starve the memory and W_mem overtakes it.
        let (n1, n2, p) = (1024, 1024, 1056);
        let indep = syrk_lower_bound(n1, n2, p).communicated();
        // The 3D algorithm's per-rank working set is about
        // n1·n2/(√p1·p2) + n1²/(2p1); at M equal to that, the
        // memory-independent bound should still dominate.
        let ample = 1 << 20;
        assert!(syrk_memory_dependent_bound(n1, n2, p, ample) < indep);
        assert_eq!(syrk_effective_bound(n1, n2, p, ample), indep);
        // Tiny memory: W_mem dominates.
        let tiny = 64;
        assert!(syrk_memory_dependent_bound(n1, n2, p, tiny) > indep);
        assert!(syrk_effective_bound(n1, n2, p, tiny) > indep);
    }

    #[test]
    fn memory_dependent_matches_beaumont_at_p1() {
        // P = 1 reduces to the sequential I/O bound (1/√2)·n1(n1−1)n2/√M
        // (the paper quotes (1/√2)·n1²n2/√M with the same leading term).
        let (n1, n2, m) = (512, 256, 4096);
        let got = syrk_memory_dependent_bound(n1, n2, 1, m);
        let beaumont = (n1 * (n1 - 1) * n2) as f64 / (2f64.sqrt() * (m as f64).sqrt());
        assert!((got - beaumont).abs() < 1e-9);
    }

    #[test]
    fn per_term_helpers_sum_to_totals() {
        let (n1, n2, c, p2) = (512, 256, 7, 8);
        let sum = alg3d_a_term(n1, n2, c, p2) + alg3d_c_term(n1, c, p2);
        assert!((sum - alg3d_predicted_cost(n1, n2, c, p2)).abs() < 1e-9);
        let p1 = c * (c + 1);
        let lead = alg3d_leading_a_term(n1, n2, p1, p2) + alg3d_leading_c_term(n1, p1);
        assert!((lead - alg3d_leading_cost(n1, n2, p1, p2)).abs() < 1e-9);
        // Case-2 W decomposes into the A and C terms.
        let (n1, n2, p) = (1000, 10, 100);
        let b = syrk_lower_bound(n1, n2, p);
        assert_eq!(b.case, BoundCase::Case2);
        let sum = thm1_case2_a_term(n1, n2, p) + thm1_case2_c_term(n1, p);
        assert!((sum - b.w).abs() < 1e-9);
    }

    #[test]
    fn memory_dependent_scales_inverse_sqrt_m() {
        let a = syrk_memory_dependent_bound(100, 100, 10, 100);
        let b = syrk_memory_dependent_bound(100, 100, 10, 400);
        assert!((a / b - 2.0).abs() < 1e-12);
    }
}
