//! A minimal strict JSON parser for `/run` request bodies.
//!
//! The workspace is dependency-free, so the server parses the few
//! fields it accepts (`recovery`, `faults`) with its own
//! recursive-descent parser instead of pulling in serde. It accepts
//! exactly RFC 8259 syntax — no trailing commas, no comments, no bare
//! NaN/Infinity — and bounds nesting depth so a hostile body cannot
//! blow the worker's stack.

/// Maximum nesting depth of arrays/objects.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys are kept; `get`
    /// returns the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object, `None` for other variants or a
    /// missing key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number that is
    /// one (rejects fractions, negatives, and overflow).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Num(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as a `usize`, via [`Json::as_u64`].
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Parse one complete JSON document; trailing non-whitespace is an
/// error, as is anything outside RFC 8259.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected {:?} at offset {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    format!("malformed \\u escape at offset {}", self.pos)
                                })?;
                            // Surrogates are rejected rather than paired:
                            // none of this API's fields carry them.
                            let c = char::from_u32(hex).ok_or_else(|| {
                                format!("invalid \\u code point at offset {}", self.pos)
                            })?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at offset {}", self.pos))
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unchanged
                    // (the body was validated as UTF-8 before parsing).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| format!("invalid UTF-8 at offset {start}"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let from = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > from
        };
        // RFC 8259 integer part: a lone 0, or a nonzero digit then more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                digits(self);
            }
            _ => return Err(format!("malformed number at offset {start}")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("malformed number at offset {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("malformed number at offset {start}"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("unrepresentable number at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_run_body_shape() {
        let v = parse(
            r#"{"recovery": {"max_attempts": 4}, "faults": {"seed": 9, "crash_rank": 1, "crash_op": 2}}"#,
        )
        .unwrap();
        assert_eq!(
            v.get("recovery")
                .and_then(|r| r.get("max_attempts"))
                .and_then(Json::as_usize),
            Some(4)
        );
        let faults = v.get("faults").unwrap();
        assert_eq!(faults.get("seed").and_then(Json::as_u64), Some(9));
        assert_eq!(faults.get("crash_rank").and_then(Json::as_usize), Some(1));
        assert_eq!(faults.get("crash_op").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn scalars_arrays_and_escapes() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(
            parse(r#""a\"b\n\u0041""#).unwrap(),
            Json::Str("a\"b\nA".into())
        );
        assert_eq!(
            parse("[1, [2], {}]").unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Arr(vec![Json::Num(2.0)]),
                Json::Obj(vec![])
            ])
        );
        // Non-ASCII passes through.
        assert_eq!(parse("\"é\"").unwrap(), Json::Str("é".into()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "01",
            "1.",
            "nul",
            "\"\\x\"",
            "\"unterminated",
            "{\"a\":1} extra",
            "NaN",
            "+1",
            "--1",
            "{'a': 1}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).unwrap_err().contains("nesting"));
    }

    #[test]
    fn integer_coercions_are_strict() {
        assert_eq!(parse("3").unwrap().as_usize(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_usize(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("\"3\"").unwrap().as_u64(), None);
    }
}
