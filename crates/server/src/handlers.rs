//! Endpoint handlers: route a parsed [`Request`] to a [`Response`].
//!
//! Every endpoint renders JSON by hand (the workspace is
//! dependency-free); the output is strict JSON — the integration tests
//! round-trip every body through `syrk_bench`'s parser. Handlers never
//! panic on client input: bad parameters become 4xx documents, and
//! algorithm errors (unsupported grid orders, empty matrices) become
//! 422s with the error text.

use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use syrk_core::{
    alg1d_predicted_cost, alg2d_tight_cost, alg3d_a_term, alg3d_c_term, alg3d_leading_a_term,
    alg3d_leading_c_term, candidate_plans, gemm_lower_bound, plan, predicted_cost,
    run_with_recovery, syrk_lower_bound, thm1_case1_c_term, thm1_case2_a_term, try_syrk_1d,
    try_syrk_2d, try_syrk_3d, AttemptOutcome, Plan, RankedPlan, RecoveryPolicy, RecoveryReport,
    SyrkBound, SyrkRunResult,
};
use syrk_dense::seeded_matrix;
use syrk_machine::{scoped_failure_dump_path, CostModel, FaultPlan};
use syrk_telemetry::registry;

use crate::http::{escape, Request, Response};
use crate::json::{self, Json};
use crate::state::{self, AdmitError, SharedState};

/// Dispatch one request. Also the place where per-endpoint counters and
/// the latency histogram are recorded.
pub fn handle(state: &Arc<SharedState>, req: &Request) -> Response {
    let started = Instant::now();
    state::REQUESTS.inc();
    let resp = route(state, req);
    if (400..500).contains(&resp.status) {
        state::RESPONSES_4XX.inc();
    } else if resp.status >= 500 {
        state::RESPONSES_5XX.inc();
    }
    state::REQUEST_NANOS.observe(started.elapsed().as_nanos() as u64);
    resp
}

fn route(state: &Arc<SharedState>, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/plan") => {
            state::PLAN_REQUESTS.inc();
            handle_plan(state, req)
        }
        ("GET", "/bounds") => {
            state::BOUNDS_REQUESTS.inc();
            handle_bounds(state, req)
        }
        ("POST", "/run") => {
            state::RUN_REQUESTS.inc();
            handle_run(state, req)
        }
        ("GET", "/metrics") => {
            state::METRICS_REQUESTS.inc();
            Response::text(200, syrk_telemetry::prometheus_text(&registry::snapshot()))
        }
        ("GET", "/status") => {
            state::STATUS_REQUESTS.inc();
            handle_status(state)
        }
        ("POST", "/shutdown") => {
            state.shutdown();
            Response::json(200, "{\"ok\": true, \"draining\": true}\n".to_string())
        }
        (_, "/plan" | "/bounds" | "/metrics" | "/status") => {
            Response::json_error(405, "use GET for this endpoint")
        }
        (_, "/run" | "/shutdown") => Response::json_error(405, "use POST for this endpoint"),
        _ => Response::json_error(404, &format!("no such endpoint {}", req.path)),
    }
}

// ---------------------------------------------------------------------------
// Parameter parsing

/// A required positive-integer query parameter; `Err` is the 400
/// response the client is owed.
fn required_usize(req: &Request, name: &str) -> Result<usize, Response> {
    let raw = req
        .query_param(name)
        .ok_or_else(|| Response::json_error(400, &format!("missing query parameter {name:?}")))?;
    raw.parse::<usize>()
        .ok()
        .filter(|&v| v >= 1)
        .ok_or_else(|| {
            Response::json_error(
                400,
                &format!("query parameter {name:?} must be a positive integer, got {raw:?}"),
            )
        })
}

fn optional_u64(req: &Request, name: &str, default: u64) -> Result<u64, Response> {
    match req.query_param(name) {
        None => Ok(default),
        Some(raw) => raw.parse::<u64>().map_err(|_| {
            Response::json_error(
                400,
                &format!("query parameter {name:?} must be an integer, got {raw:?}"),
            )
        }),
    }
}

/// Parse the optional JSON request body. An empty (or all-whitespace)
/// body is `None`; a malformed one is the 400 the client is owed.
fn parse_body(req: &Request) -> Result<Option<Json>, Response> {
    if req.body.is_empty() {
        return Ok(None);
    }
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| Response::json_error(400, "request body is not UTF-8"))?;
    if text.trim().is_empty() {
        return Ok(None);
    }
    json::parse(text)
        .map(Some)
        .map_err(|e| Response::json_error(400, &format!("malformed JSON body: {e}")))
}

/// An optional non-negative integer for `/run`, read from the body
/// member `section.key` when present, else the query parameter `qname`.
fn body_or_query_u64(
    body: Option<&Json>,
    section: &str,
    key: &str,
    req: &Request,
    qname: &str,
) -> Result<Option<u64>, Response> {
    if let Some(v) = body.and_then(|b| b.get(section)).and_then(|s| s.get(key)) {
        return v.as_u64().map(Some).ok_or_else(|| {
            Response::json_error(
                400,
                &format!("body field {section}.{key} must be a non-negative integer"),
            )
        });
    }
    match req.query_param(qname) {
        None => Ok(None),
        Some(raw) => raw.parse::<u64>().map(Some).map_err(|_| {
            Response::json_error(
                400,
                &format!("query parameter {qname:?} must be a non-negative integer, got {raw:?}"),
            )
        }),
    }
}

/// Parse the common `(n1, n2, p)` triple and enforce the planner's
/// domain (`n1 ≥ 2` for Theorem 1) and the CPU cap on `p`.
fn problem_params(state: &SharedState, req: &Request) -> Result<(usize, usize, usize), Response> {
    let n1 = required_usize(req, "n1")?;
    let n2 = required_usize(req, "n2")?;
    let p = required_usize(req, "p")?;
    if n1 < 2 {
        return Err(Response::json_error(
            422,
            "n1 must be at least 2 (Theorem 1 needs a nontrivial symmetric output)",
        ));
    }
    if p > state.config.max_plan_ranks {
        return Err(Response::json_error(
            413,
            &format!(
                "p = {p} exceeds this server's planning cap of {}",
                state.config.max_plan_ranks
            ),
        ));
    }
    Ok((n1, n2, p))
}

// ---------------------------------------------------------------------------
// JSON rendering helpers

fn json_plan(plan: Plan) -> String {
    match plan {
        Plan::OneD { p } => format!("{{\"algorithm\": \"1d\", \"p\": {p}, \"ranks\": {p}}}"),
        Plan::TwoD { c } => format!(
            "{{\"algorithm\": \"2d\", \"c\": {c}, \"ranks\": {}}}",
            plan.ranks()
        ),
        Plan::ThreeD { c, p2 } => format!(
            "{{\"algorithm\": \"3d\", \"c\": {c}, \"p2\": {p2}, \"ranks\": {}}}",
            plan.ranks()
        ),
    }
}

fn json_ranked(r: &RankedPlan) -> String {
    format!(
        "{{\"plan\": {}, \"predicted_cost\": {}, \"bound\": {}}}",
        json_plan(r.plan),
        json_f64(r.predicted_cost),
        json_f64(r.bound)
    )
}

fn json_bound(b: &SyrkBound) -> String {
    format!(
        "{{\"case\": \"{:?}\", \"w\": {}, \"resident\": {}, \"communicated\": {}}}",
        b.case,
        json_f64(b.w),
        json_f64(b.resident),
        json_f64(b.communicated())
    )
}

/// Finite floats in plain notation (strict JSON has no NaN/inf tokens).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// The analytic per-term table for `plan` — the same (phase, term,
/// bound, prediction) rows `syrk_core::attribute_bounds` pairs with
/// measurements, rendered without a run.
fn json_terms(n1: usize, n2: usize, plan: Plan) -> String {
    let rows: Vec<(&str, &str, f64, f64)> = match plan {
        Plan::OneD { p } => vec![(
            "reduce-scatter-C",
            "n1(n1-1)/2",
            thm1_case1_c_term(n1),
            alg1d_predicted_cost(n1, p),
        )],
        Plan::TwoD { c } => vec![(
            "allgather-A",
            "n1*n2/sqrt(P)",
            thm1_case2_a_term(n1, n2, plan.ranks()),
            alg2d_tight_cost(n1, n2, c),
        )],
        Plan::ThreeD { c, p2 } => {
            let p1 = c * (c + 1);
            vec![
                (
                    "allgather-A",
                    "n1n2/(sqrt(p1)p2)",
                    alg3d_leading_a_term(n1, n2, p1, p2),
                    alg3d_a_term(n1, n2, c, p2),
                ),
                (
                    "reduce-scatter-C",
                    "n1^2/(2p1)",
                    alg3d_leading_c_term(n1, p1),
                    alg3d_c_term(n1, c, p2),
                ),
            ]
        }
    };
    let body: Vec<String> = rows
        .iter()
        .map(|(phase, term, bound, predicted)| {
            format!(
                "{{\"phase\": \"{phase}\", \"term\": \"{term}\", \"bound_term\": {}, \
                 \"predicted\": {}}}",
                json_f64(*bound),
                json_f64(*predicted)
            )
        })
        .collect();
    format!("[{}]", body.join(", "))
}

// ---------------------------------------------------------------------------
// GET /plan

fn handle_plan(state: &Arc<SharedState>, req: &Request) -> Response {
    let (n1, n2, p) = match problem_params(state, req) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let best = plan(n1, n2, p);
    let bound = syrk_lower_bound(n1, n2, p);
    let mut ranked: Vec<RankedPlan> = candidate_plans(p)
        .into_iter()
        .map(|pl| RankedPlan {
            plan: pl,
            predicted_cost: predicted_cost(n1, n2, pl),
            bound: syrk_lower_bound(n1, n2, pl.ranks()).communicated(),
        })
        .collect();
    ranked.sort_by(|a, b| a.predicted_cost.total_cmp(&b.predicted_cost));
    let candidates: Vec<String> = ranked.iter().map(json_ranked).collect();
    let body = format!(
        "{{\"n1\": {n1}, \"n2\": {n2}, \"p\": {p}, \"best\": {}, \"terms\": {}, \
         \"bound\": {}, \"candidates\": [{}]}}\n",
        json_ranked(&best),
        json_terms(n1, n2, best.plan),
        json_bound(&bound),
        candidates.join(", ")
    );
    Response::json(200, body)
}

// ---------------------------------------------------------------------------
// GET /bounds

fn handle_bounds(state: &Arc<SharedState>, req: &Request) -> Response {
    let (n1, n2, p) = match problem_params(state, req) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let syrk = syrk_lower_bound(n1, n2, p);
    let gemm = gemm_lower_bound(n1, n2, p);
    let ratio = if syrk.communicated() > 0.0 {
        gemm.communicated() / syrk.communicated()
    } else {
        f64::NAN
    };
    // One attribution table per algorithm family at this rank budget —
    // the cheapest feasible grid of each family keeps the table short.
    let mut best_of: [Option<(f64, Plan)>; 3] = [None, None, None];
    for pl in candidate_plans(p) {
        let family = match pl {
            Plan::OneD { .. } => 0,
            Plan::TwoD { .. } => 1,
            Plan::ThreeD { .. } => 2,
        };
        let cost = predicted_cost(n1, n2, pl);
        if best_of[family].is_none_or(|(c, _)| cost < c) {
            best_of[family] = Some((cost, pl));
        }
    }
    let tables: Vec<String> = best_of
        .iter()
        .flatten()
        .map(|&(cost, pl)| {
            format!(
                "{{\"plan\": {}, \"predicted_cost\": {}, \"terms\": {}}}",
                json_plan(pl),
                json_f64(cost),
                json_terms(n1, n2, pl)
            )
        })
        .collect();
    let body = format!(
        "{{\"n1\": {n1}, \"n2\": {n2}, \"p\": {p}, \"syrk\": {}, \"gemm\": {}, \
         \"gemm_over_syrk\": {}, \"attribution\": [{}]}}\n",
        json_bound(&syrk),
        json_bound(&gemm),
        json_f64(ratio),
        tables.join(", ")
    );
    Response::json(200, body)
}

// ---------------------------------------------------------------------------
// POST /run

fn handle_run(state: &Arc<SharedState>, req: &Request) -> Response {
    // Validate everything before asking admission for a slot, so
    // malformed requests never occupy run capacity.
    let n1 = match required_usize(req, "n1") {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let n2 = match required_usize(req, "n2") {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if n1 < 2 {
        return Response::json_error(422, "n1 must be at least 2");
    }
    let seed = match optional_u64(req, "seed", 0) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    for section in ["recovery", "faults"] {
        if let Some(v) = body.as_ref().and_then(|b| b.get(section)) {
            if !matches!(v, Json::Obj(_)) {
                return Response::json_error(
                    400,
                    &format!("body field {section:?} must be an object"),
                );
            }
        }
    }
    // Fault injection: a deterministic crash of one rank, from the body
    // (`"faults": {"seed": S, "crash_rank": R, "crash_op": OP}`) or the
    // equivalent query parameters.
    let crash_rank =
        match body_or_query_u64(body.as_ref(), "faults", "crash_rank", req, "crash_rank") {
            Ok(v) => v,
            Err(resp) => return resp,
        };
    let crash_op = match body_or_query_u64(body.as_ref(), "faults", "crash_op", req, "crash_op") {
        Ok(v) => v.unwrap_or(1),
        Err(resp) => return resp,
    };
    let fault_seed = match body_or_query_u64(body.as_ref(), "faults", "seed", req, "fault_seed") {
        Ok(v) => v.unwrap_or(0),
        Err(resp) => return resp,
    };
    let faults: Option<FaultPlan> =
        crash_rank.map(|r| FaultPlan::seeded(fault_seed).crash_rank(r as usize, crash_op));
    // Recovery: `"recovery": {"max_attempts": N}` (or ?max_attempts=N)
    // routes the run through the shrink-and-replan driver; an injected
    // crash without it gets the driver's default budget, so faulted runs
    // recover instead of 500ing.
    let max_attempts = match body_or_query_u64(
        body.as_ref(),
        "recovery",
        "max_attempts",
        req,
        "max_attempts",
    ) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if max_attempts == Some(0) {
        return Response::json_error(400, "recovery.max_attempts must be at least 1");
    }
    let policy = max_attempts
        .map(|n| RecoveryPolicy {
            max_attempts: n as usize,
            ..RecoveryPolicy::default()
        })
        .or_else(|| faults.is_some().then(RecoveryPolicy::default));
    let alg = req.query_param("alg").unwrap_or("auto");
    let chosen: Plan = match alg {
        "1d" => match required_usize(req, "p") {
            Ok(p) => Plan::OneD { p },
            Err(resp) => return resp,
        },
        "2d" => match required_usize(req, "c") {
            Ok(c) => Plan::TwoD { c },
            Err(resp) => return resp,
        },
        "3d" => match (required_usize(req, "c"), required_usize(req, "p2")) {
            (Ok(c), Ok(p2)) => Plan::ThreeD { c, p2 },
            (Err(resp), _) | (_, Err(resp)) => return resp,
        },
        "auto" => match problem_params(state, req) {
            Ok((_, _, p)) => plan(n1, n2, p).plan,
            Err(resp) => return resp,
        },
        other => {
            return Response::json_error(
                400,
                &format!("alg must be one of 1d, 2d, 3d, auto; got {other:?}"),
            )
        }
    };
    let cells = n1.saturating_mul(n2);
    if cells > state.config.max_run_cells {
        return Response::json_error(
            413,
            &format!(
                "n1*n2 = {cells} exceeds this server's run cap of {} cells",
                state.config.max_run_cells
            ),
        );
    }
    if chosen.ranks() > state.config.max_run_ranks {
        return Response::json_error(
            413,
            &format!(
                "plan needs {} ranks, over this server's run cap of {}",
                chosen.ranks(),
                state.config.max_run_ranks
            ),
        );
    }

    // Admission: bounded concurrency, bounded queue, reject beyond.
    let permit = match state.gate.admit(&state.running) {
        Ok(p) => p,
        Err(AdmitError::QueueFull) => {
            state::RUN_REJECTED.inc();
            return Response::json_error(429, "run queue is full; retry later");
        }
        Err(AdmitError::Draining) => {
            state::RUN_REJECTED.inc();
            return Response::json_error(503, "server is draining; not accepting new runs");
        }
        Err(AdmitError::QueueTimeout) => {
            state::RUN_REJECTED.inc();
            let retry = state.config.queue_wait.as_secs().max(1);
            return Response::json_error(
                503,
                "timed out waiting for a run slot; retry after the indicated delay",
            )
            .with_header("Retry-After", retry.to_string());
        }
    };

    // Per-run failure-dump destination, if the server was configured
    // with a dump directory.
    let _dump_scope = state.config.dump_dir.as_ref().map(|dir| {
        let seq = state.run_seq.fetch_add(1, Ordering::Relaxed);
        scoped_failure_dump_path(Some(dir.join(format!("run_{seq}.json"))))
    });

    let a = seeded_matrix::<f64>(n1, n2, seed);
    let model = CostModel::bandwidth_only();
    if let Some(policy) = policy {
        let result = run_with_recovery(&a, chosen, model, faults.as_ref(), &policy);
        drop(permit);
        return match result {
            Ok((run, report)) => Response::json(
                200,
                render_run(n1, n2, seed, report.final_plan, &run, Some(&report)),
            ),
            Err(e) => Response::json_error(
                422,
                &format!("run failed after {} attempt(s): {e}", policy.max_attempts),
            ),
        };
    }
    let result = match chosen {
        Plan::OneD { p } => try_syrk_1d(&a, p, model, faults.as_ref()),
        Plan::TwoD { c } => try_syrk_2d(&a, c, model, faults.as_ref()),
        Plan::ThreeD { c, p2 } => try_syrk_3d(&a, c, p2, model, faults.as_ref()),
    };
    drop(permit);

    match result {
        Ok(run) => Response::json(200, render_run(n1, n2, seed, chosen, &run, None)),
        Err(e) => Response::json_error(422, &format!("run failed: {e}")),
    }
}

fn json_outcome(outcome: &AttemptOutcome) -> String {
    match outcome {
        AttemptOutcome::Completed => "{\"kind\": \"completed\"}".to_string(),
        AttemptOutcome::Crashed { rank } => {
            format!("{{\"kind\": \"crashed\", \"rank\": {rank}}}")
        }
        AttemptOutcome::Corrupted { detail } => {
            format!(
                "{{\"kind\": \"corrupted\", \"detail\": \"{}\"}}",
                escape(detail)
            )
        }
    }
}

fn json_recovery(report: &RecoveryReport) -> String {
    let attempts: Vec<String> = report
        .attempts
        .iter()
        .map(|a| {
            format!(
                "{{\"plan\": {}, \"bound_case\": \"{:?}\", \"outcome\": {}}}",
                json_plan(a.plan),
                a.bound_case,
                json_outcome(&a.outcome)
            )
        })
        .collect();
    let lost: Vec<String> = report.ranks_lost.iter().map(|r| r.to_string()).collect();
    format!(
        "{{\"recovered\": {}, \"attempts\": [{}], \"ranks_lost\": [{}], \
         \"final_plan\": {}, \"recovery_words\": {}, \"backoff_clock\": {}}}",
        report.recovered,
        attempts.join(", "),
        lost.join(", "),
        json_plan(report.final_plan),
        report.recovery_words,
        json_f64(report.backoff_clock)
    )
}

fn render_run(
    n1: usize,
    n2: usize,
    seed: u64,
    plan: Plan,
    run: &SyrkRunResult,
    recovery: Option<&RecoveryReport>,
) -> String {
    let bound = syrk_lower_bound(n1, n2, plan.ranks());
    let measured = run.cost.max_words_sent();
    let ratio = if bound.communicated() > 0.0 {
        measured as f64 / bound.communicated()
    } else {
        f64::NAN
    };
    // A small output fingerprint so clients can check determinism
    // without shipping the n1×n1 matrix over the wire.
    let checksum: f64 = run.c.as_slice().iter().sum();
    let recovery_frag = recovery
        .map(|r| format!(", \"recovery\": {}", json_recovery(r)))
        .unwrap_or_default();
    let mut body = String::with_capacity(512);
    let _ = writeln!(
        body,
        "{{\"n1\": {n1}, \"n2\": {n2}, \"seed\": {seed}, \"plan\": {}, \
         \"cost\": {{\"max_words_sent\": {measured}, \"total_words\": {}, \
         \"max_flops\": {}, \"elapsed\": {}}}, \
         \"bound\": {}, \"measured_over_bound\": {}, \"terms\": {}, \
         \"c_checksum\": {}{recovery_frag}}}",
        json_plan(plan),
        run.cost.total_words(),
        run.cost.max_flops(),
        json_f64(run.cost.elapsed()),
        json_bound(&bound),
        json_f64(ratio),
        json_terms(n1, n2, plan),
        json_f64(checksum)
    );
    body
}

// ---------------------------------------------------------------------------
// GET /status

fn handle_status(state: &Arc<SharedState>) -> Response {
    let snap = registry::snapshot();
    let hits = snap.counter("syrk_plan_cache_hits").unwrap_or(0);
    let misses = snap.counter("syrk_plan_cache_misses").unwrap_or(0);
    let evictions = snap.counter("syrk_plan_cache_evictions").unwrap_or(0);
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    let (active, queued) = state.gate.depth();
    let inflight = snap.gauge("syrk_server_inflight").unwrap_or(0);
    let requests = snap.counter("syrk_server_requests").unwrap_or(0);
    let rejected = snap.counter("syrk_server_run_rejected").unwrap_or(0);
    let uptime = state.started.elapsed().as_secs();
    let running = state.running.load(Ordering::Acquire);
    fn row(html: &mut String, k: &str, v: String) {
        let _ = writeln!(html, "<tr><td>{k}</td><td>{v}</td></tr>");
    }
    let mut html = String::with_capacity(1024);
    html.push_str("<!DOCTYPE html>\n<html><head><title>syrk-server status</title></head><body>\n");
    html.push_str("<h1>syrk-server</h1>\n<table>\n");
    row(
        &mut html,
        "state",
        if running { "running" } else { "draining" }.into(),
    );
    row(&mut html, "uptime_seconds", format!("{uptime}"));
    row(&mut html, "requests_total", format!("{requests}"));
    row(&mut html, "inflight_requests", format!("{inflight}"));
    row(&mut html, "runs_active", format!("{active}"));
    row(&mut html, "run_queue_depth", format!("{queued}"));
    row(&mut html, "runs_rejected", format!("{rejected}"));
    row(&mut html, "plan_cache_hits", format!("{hits}"));
    row(&mut html, "plan_cache_misses", format!("{misses}"));
    row(&mut html, "plan_cache_hit_rate", format!("{hit_rate:.4}"));
    row(&mut html, "plan_cache_evictions", format!("{evictions}"));
    row(
        &mut html,
        "plan_cache_len",
        format!("{}", syrk_core::plan_cache_len()),
    );
    html.push_str("</table>\n</body></html>\n");
    Response::html(200, html)
}
