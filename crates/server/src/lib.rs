//! # syrk-server — SYRK planning and execution as a persistent service
//!
//! The rest of the workspace is batch-shaped: a binary plans or runs one
//! instance and exits. This crate keeps the planner, the Theorem 1 bound
//! calculators, and the simulated machine resident behind a tiny HTTP/1.1
//! API, so repeated queries amortize the plan cache and a dashboard can
//! watch live telemetry:
//!
//! | endpoint | method | body |
//! |---|---|---|
//! | `/plan?n1=&n2=&p=` | GET | ranked plans + per-term predicted bounds (JSON) |
//! | `/bounds?n1=&n2=&p=` | GET | Theorem 1 SYRK vs. GEMM bound attribution (JSON) |
//! | `/run?alg=&n1=&n2=&…` | POST | size-capped simulated 1D/2D/3D SYRK run (JSON) |
//! | `/metrics` | GET | Prometheus text exposition of the telemetry registry |
//! | `/status` | GET | live HTML status page |
//! | `/shutdown` | POST | graceful drain: stop accepting, finish in-flight |
//!
//! Everything is `std`-only (the workspace builds on a bare toolchain):
//! a blocking accept loop feeds a bounded connection queue drained by a
//! fixed worker pool, and `/run` passes through [`state::RunGate`]
//! admission control so a burst of large simulated runs queues (bounded,
//! then 429) instead of occupying every worker and starving `/plan`.
//!
//! ```no_run
//! let server = syrk_server::Server::bind("127.0.0.1:8080").unwrap();
//! println!("listening on http://{}", server.local_addr());
//! server.run().unwrap(); // returns after POST /shutdown drains
//! ```

#![warn(missing_docs)]

mod handlers;
pub mod http;
pub mod json;
pub mod state;

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

pub use state::{AdmitError, RunGate, RunPermit, ServerConfig, SharedState};

/// Per-connection socket-read timeout: a stalled or half-open client
/// frees its worker after this long instead of pinning it forever.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Accepted connections waiting for a worker, bounded so a connect flood
/// degrades to fast 503s instead of unbounded memory.
struct ConnQueue {
    inner: Mutex<ConnQueueInner>,
    cv: Condvar,
    cap: usize,
}

struct ConnQueueInner {
    pending: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(cap: usize) -> Self {
        ConnQueue {
            inner: Mutex::new(ConnQueueInner {
                pending: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueue for a worker; hands the stream back if the queue is full
    /// or closed, so the caller can shed load on it.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed || inner.pending.len() >= self.cap {
            return Err(stream);
        }
        inner.pending.push_back(stream);
        drop(inner);
        self.cv.notify_one();
        Ok(())
    }

    /// Next connection to serve; `None` once the queue is closed *and*
    /// drained — workers finish queued work before exiting.
    fn pop(&self) -> Option<TcpStream> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(stream) = inner.pending.pop_front() {
                return Some(stream);
            }
            if inner.closed {
                return None;
            }
            inner = self.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        drop(inner);
        self.cv.notify_all();
    }
}

/// A bound, not-yet-running server. [`Server::run`] consumes it and
/// blocks until graceful shutdown completes.
pub struct Server {
    listener: TcpListener,
    state: Arc<SharedState>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:8080"`, port 0 for ephemeral) with
    /// the default [`ServerConfig`].
    pub fn bind(addr: &str) -> io::Result<Server> {
        Self::bind_with(addr, ServerConfig::default())
    }

    /// Bind `addr` with explicit tunables.
    pub fn bind_with(addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        Ok(Server {
            listener,
            state: Arc::new(SharedState::new(config, local)),
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// The shared state — lets an embedding test trigger
    /// [`SharedState::shutdown`] without going through the socket.
    pub fn state(&self) -> Arc<SharedState> {
        Arc::clone(&self.state)
    }

    /// Serve until `/shutdown`: accept connections onto the bounded
    /// queue, let the worker pool drain it, then join every worker once
    /// the running flag clears. In-flight and already-queued requests
    /// complete before this returns.
    pub fn run(self) -> io::Result<()> {
        let queue = Arc::new(ConnQueue::new(self.state.config.max_pending_connections));
        let workers: Vec<_> = (0..self.state.config.workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let state = Arc::clone(&self.state);
                std::thread::Builder::new()
                    .name(format!("syrk-server-worker-{i}"))
                    .spawn(move || {
                        while let Some(mut stream) = queue.pop() {
                            serve_connection(&state, &mut stream);
                        }
                    })
                    .expect("spawn server worker")
            })
            .collect();

        for stream in self.listener.incoming() {
            if !self.state.running.load(Ordering::Acquire) {
                // The shutdown self-connect (or whoever raced it) wakes
                // the acceptor; the connection itself is discarded.
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                // Transient per-connection failures (reset before
                // accept) don't take the server down.
                Err(_) => continue,
            };
            if let Err(mut shed) = queue.push(stream) {
                state::CONN_REJECTED.inc();
                let _ =
                    http::Response::json_error(503, "connection queue is full").write_to(&mut shed);
            }
        }

        queue.close();
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// Serve exactly one request on `stream` (`Connection: close`).
fn serve_connection(state: &Arc<SharedState>, stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    state::INFLIGHT.add(1);
    match http::read_request(stream) {
        Ok(req) => {
            let resp = handlers::handle(state, &req);
            let _ = resp.write_to(stream);
        }
        Err(err) => {
            // Parse failures still count as served requests; I/O
            // failures get no response (the peer is gone).
            if let Some(resp) = err.to_response() {
                state::REQUESTS.inc();
                state::RESPONSES_4XX.inc();
                let _ = resp.write_to(stream);
                drain_unread(stream);
            }
        }
    }
    state::INFLIGHT.sub(1);
}

/// Consume whatever the client is still sending (bounded, short
/// timeout) before closing an errored connection. Closing with unread
/// bytes in the receive buffer makes the kernel send RST, which can
/// destroy the 4xx response before the client reads it.
fn drain_unread(stream: &mut TcpStream) {
    use std::io::Read as _;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    // 1 MiB bound: enough for any over-cap request the tests or curl
    // produce, without letting a hostile client pin the worker.
    while drained < 1 << 20 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}
