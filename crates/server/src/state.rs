//! Shared server state: the running flag that gates the accept loop,
//! admission control for simulated runs, size caps, and the server's
//! telemetry metrics.
//!
//! The shape follows the chain-net `SharedState` pattern: one `Arc`'d
//! struct owning an `AtomicBool` running flag plus the coordination
//! primitives, threaded through the accept loop, every worker, and the
//! handlers.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use syrk_telemetry::{LazyCounter, LazyGauge, LazyHistogram};

/// Total requests served (any endpoint, any status).
pub static REQUESTS: LazyCounter = LazyCounter::new("syrk_server_requests");
/// `/plan` requests.
pub static PLAN_REQUESTS: LazyCounter = LazyCounter::new("syrk_server_plan_requests");
/// `/bounds` requests.
pub static BOUNDS_REQUESTS: LazyCounter = LazyCounter::new("syrk_server_bounds_requests");
/// `/run` requests (admitted or not).
pub static RUN_REQUESTS: LazyCounter = LazyCounter::new("syrk_server_run_requests");
/// `/metrics` requests.
pub static METRICS_REQUESTS: LazyCounter = LazyCounter::new("syrk_server_metrics_requests");
/// `/status` requests.
pub static STATUS_REQUESTS: LazyCounter = LazyCounter::new("syrk_server_status_requests");
/// Responses with a 4xx status.
pub static RESPONSES_4XX: LazyCounter = LazyCounter::new("syrk_server_responses_4xx");
/// Responses with a 5xx status.
pub static RESPONSES_5XX: LazyCounter = LazyCounter::new("syrk_server_responses_5xx");
/// `/run` requests rejected by admission control (queue full/draining).
pub static RUN_REJECTED: LazyCounter = LazyCounter::new("syrk_server_run_rejected");
/// Connections dropped because the pending-connection queue was full.
pub static CONN_REJECTED: LazyCounter = LazyCounter::new("syrk_server_conn_rejected");
/// End-to-end request service time (parse → response written), nanoseconds.
pub static REQUEST_NANOS: LazyHistogram = LazyHistogram::new("syrk_server_request_nanos");
/// Requests currently being served by workers.
pub static INFLIGHT: LazyGauge = LazyGauge::new("syrk_server_inflight");
/// Simulated runs currently executing.
pub static RUNS_ACTIVE: LazyGauge = LazyGauge::new("syrk_server_runs_active");
/// Simulated runs waiting in the admission queue.
pub static RUN_QUEUE_DEPTH: LazyGauge = LazyGauge::new("syrk_server_run_queue_depth");
/// Queued runs that hit the queue-wait deadline and were bounced (503).
pub static RUN_QUEUE_TIMEOUTS: LazyCounter = LazyCounter::new("syrk_server_run_queue_timeouts");

/// Tunables for one server instance. `Default` is sized so that plan
/// queries can never be starved: `workers` strictly exceeds
/// `max_concurrent_runs + max_queued_runs`, so even with every run slot
/// busy and the run queue full there are free workers for `/plan`.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// HTTP worker threads draining the accepted-connection queue.
    pub workers: usize,
    /// Simulated runs allowed to execute at once.
    pub max_concurrent_runs: usize,
    /// Runs allowed to wait for a slot before admission rejects (429).
    pub max_queued_runs: usize,
    /// How long a queued run may wait for a slot before it is bounced
    /// with a 503 + `Retry-After` instead of pinning its HTTP worker.
    pub queue_wait: Duration,
    /// Accepted connections allowed to queue for a worker before the
    /// accept loop sheds load with an immediate 503.
    pub max_pending_connections: usize,
    /// Cap on `n1 * n2` for a `/run` request (413 above).
    pub max_run_cells: usize,
    /// Cap on simulated ranks for a `/run` request (413 above).
    pub max_run_ranks: usize,
    /// Cap on the rank budget `p` for `/plan` and `/bounds` queries —
    /// candidate enumeration is O(p), so unbounded p is a CPU DoS.
    pub max_plan_ranks: usize,
    /// When set, each `/run` gets a scoped per-run failure-dump path
    /// `run_<seq>.json` under this directory (see
    /// `syrk_machine::scoped_failure_dump_path`).
    pub dump_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 16,
            max_concurrent_runs: 2,
            max_queued_runs: 4,
            queue_wait: Duration::from_secs(3),
            max_pending_connections: 1024,
            max_run_cells: 1 << 20,
            max_run_ranks: 4096,
            max_plan_ranks: 1_000_000,
            dump_dir: None,
        }
    }
}

/// Why a `/run` was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// Active slots and the wait queue are both full → 429.
    QueueFull,
    /// The server is shutting down; queued runs are bounced → 503.
    Draining,
    /// A queued run waited out the configured deadline without getting a
    /// slot → 503 with `Retry-After`.
    QueueTimeout,
}

#[derive(Debug)]
struct GateState {
    active: usize,
    queued: usize,
}

/// Admission control for simulated runs: a bounded set of concurrent
/// execution slots plus a bounded wait queue. Large traced runs queue
/// behind each other here instead of occupying every HTTP worker, so
/// small `/plan` queries always find a free worker.
#[derive(Debug)]
pub struct RunGate {
    state: Mutex<GateState>,
    cv: Condvar,
    max_active: usize,
    max_queued: usize,
    max_wait: Duration,
}

impl RunGate {
    fn new(max_active: usize, max_queued: usize, max_wait: Duration) -> Self {
        RunGate {
            state: Mutex::new(GateState {
                active: 0,
                queued: 0,
            }),
            cv: Condvar::new(),
            max_active: max_active.max(1),
            max_queued,
            max_wait,
        }
    }

    /// Acquire an execution slot, waiting in the bounded queue (up to
    /// the configured deadline) if all slots are busy. Returns the RAII
    /// permit, or why admission failed.
    pub fn admit(&self, running: &AtomicBool) -> Result<RunPermit<'_>, AdmitError> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if !running.load(Ordering::Acquire) {
            return Err(AdmitError::Draining);
        }
        if state.active >= self.max_active {
            if state.queued >= self.max_queued {
                return Err(AdmitError::QueueFull);
            }
            state.queued += 1;
            RUN_QUEUE_DEPTH.add(1);
            let deadline = Instant::now() + self.max_wait;
            let mut timed_out = false;
            while state.active >= self.max_active && running.load(Ordering::Acquire) {
                let Some(left) = deadline
                    .checked_duration_since(Instant::now())
                    .filter(|d| !d.is_zero())
                else {
                    timed_out = true;
                    break;
                };
                let (s, _t) = self
                    .cv
                    .wait_timeout(state, left)
                    .unwrap_or_else(|e| e.into_inner());
                state = s;
            }
            state.queued -= 1;
            RUN_QUEUE_DEPTH.sub(1);
            if timed_out {
                RUN_QUEUE_TIMEOUTS.inc();
                return Err(AdmitError::QueueTimeout);
            }
            if !running.load(Ordering::Acquire) {
                // Shutdown won the race: bounce the queued run (it has
                // not started; in-flight actives drain normally).
                self.cv.notify_all();
                return Err(AdmitError::Draining);
            }
        }
        state.active += 1;
        RUNS_ACTIVE.add(1);
        Ok(RunPermit { gate: self })
    }

    /// Wake queued waiters (used on shutdown so they observe the
    /// cleared running flag and bounce instead of hanging).
    pub fn wake_all(&self) {
        let _guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        self.cv.notify_all();
    }

    /// `(active, queued)` — for the status page.
    pub fn depth(&self) -> (usize, usize) {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        (state.active, state.queued)
    }
}

/// RAII execution slot from [`RunGate::admit`]; releases the slot and
/// wakes one queued waiter on drop.
#[derive(Debug)]
pub struct RunPermit<'a> {
    gate: &'a RunGate,
}

impl Drop for RunPermit<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().unwrap_or_else(|e| e.into_inner());
        state.active -= 1;
        RUNS_ACTIVE.sub(1);
        drop(state);
        self.gate.cv.notify_one();
    }
}

/// State shared by the accept loop, the workers, and every handler.
pub struct SharedState {
    /// Server tunables.
    pub config: ServerConfig,
    /// Cleared by `/shutdown`; the accept loop exits and queued runs
    /// bounce once this is false.
    pub running: AtomicBool,
    /// Admission control for `/run`.
    pub gate: RunGate,
    /// The bound listen address (used by shutdown to wake the acceptor).
    pub addr: SocketAddr,
    /// Server start time, for the status page's uptime.
    pub started: Instant,
    /// Monotonic per-run sequence for scoped dump file names.
    pub run_seq: AtomicU64,
}

impl SharedState {
    /// Fresh state for a server bound at `addr`.
    pub fn new(config: ServerConfig, addr: SocketAddr) -> Self {
        let gate = RunGate::new(
            config.max_concurrent_runs,
            config.max_queued_runs,
            config.queue_wait,
        );
        SharedState {
            config,
            running: AtomicBool::new(true),
            gate,
            addr,
            started: Instant::now(),
            run_seq: AtomicU64::new(0),
        }
    }

    /// Begin graceful shutdown: clear the running flag, bounce queued
    /// runs, and poke the accept loop awake with a throwaway connection.
    pub fn shutdown(&self) {
        self.running.store(false, Ordering::Release);
        self.gate.wake_all();
        let mut addr = self.addr;
        if addr.ip().is_unspecified() {
            addr.set_ip(std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST));
        }
        let _ = std::net::TcpStream::connect_timeout(&addr, std::time::Duration::from_secs(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A generous wait for tests that must not hit the deadline.
    const LONG: Duration = Duration::from_secs(30);

    #[test]
    fn gate_admits_up_to_capacity_then_queue_fills() {
        let running = AtomicBool::new(true);
        let gate = RunGate::new(2, 0, LONG);
        let a = gate.admit(&running).expect("slot 1");
        let b = gate.admit(&running).expect("slot 2");
        assert_eq!(gate.admit(&running).unwrap_err(), AdmitError::QueueFull);
        assert_eq!(gate.depth(), (2, 0));
        drop(a);
        let c = gate.admit(&running).expect("freed slot");
        drop(b);
        drop(c);
        assert_eq!(gate.depth(), (0, 0));
    }

    #[test]
    fn gate_queued_waiter_gets_freed_slot() {
        let running = AtomicBool::new(true);
        let gate = RunGate::new(1, 2, LONG);
        let held = gate.admit(&running).expect("slot");
        std::thread::scope(|s| {
            let waiter = s.spawn(|| gate.admit(&running).map(drop));
            // Give the waiter time to enqueue, then free the slot.
            while gate.depth().1 == 0 {
                std::thread::yield_now();
            }
            drop(held);
            waiter.join().unwrap().expect("queued waiter admitted");
        });
        assert_eq!(gate.depth(), (0, 0));
    }

    #[test]
    fn gate_bounces_on_shutdown() {
        let running = AtomicBool::new(false);
        let gate = RunGate::new(1, 2, LONG);
        assert_eq!(gate.admit(&running).unwrap_err(), AdmitError::Draining);
    }

    #[test]
    fn gate_queued_waiter_times_out_when_slot_never_frees() {
        let running = AtomicBool::new(true);
        let gate = RunGate::new(1, 2, Duration::from_millis(30));
        let held = gate.admit(&running).expect("slot");
        let start = Instant::now();
        assert_eq!(gate.admit(&running).unwrap_err(), AdmitError::QueueTimeout);
        assert!(
            start.elapsed() >= Duration::from_millis(30),
            "bounced before the deadline"
        );
        // The timed-out waiter left the queue; the slot is still held.
        assert_eq!(gate.depth(), (1, 0));
        drop(held);
        // A later run is unaffected by the earlier timeout.
        drop(gate.admit(&running).expect("slot after timeout"));
        assert_eq!(gate.depth(), (0, 0));
    }

    #[test]
    fn config_default_cannot_starve_plan_queries() {
        let c = ServerConfig::default();
        assert!(c.workers > c.max_concurrent_runs + c.max_queued_runs);
    }
}
