//! Hand-rolled HTTP/1.1 over `std::net`: just enough of RFC 9112 to
//! serve the REST-ish endpoints — request-line + headers + optional
//! `Content-Length` body in, status + headers + body out, one request
//! per connection (`Connection: close`).
//!
//! The workspace builds without external crates, so there is no hyper
//! here on purpose. Limits are strict and enforced before any
//! allocation proportional to client input: oversized heads and bodies
//! are rejected, malformed syntax becomes a 4xx response, and nothing
//! in this module panics on wire input.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Cap on the request head (request line + headers). Generous for any
/// curl/browser query against this API.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Cap on a request body. The API carries parameters in the query
/// string, so bodies are essentially always empty.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// A parsed request: method, decoded path, decoded query parameters.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method token (`GET`, `POST`, …).
    pub method: String,
    /// The path component of the target, percent-decoded.
    pub path: String,
    /// Query parameters in order of appearance, percent-decoded.
    pub query: Vec<(String, String)>,
    /// The request body (bounded by [`MAX_BODY_BYTES`]).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of query parameter `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed; each maps to one 4xx status.
#[derive(Debug)]
pub enum ParseError {
    /// Malformed syntax → 400.
    BadRequest(String),
    /// Head or body over the caps → 431 / 413.
    TooLarge(&'static str),
    /// The socket failed mid-read; no response is owed.
    Io(std::io::Error),
}

impl ParseError {
    /// Render the error as the HTTP response the client is owed
    /// (`None` for I/O failures, where the connection is just dropped).
    pub fn to_response(&self) -> Option<Response> {
        match self {
            ParseError::BadRequest(msg) => Some(Response::json_error(400, msg)),
            ParseError::TooLarge(what) => Some(Response::json_error(413, what)),
            ParseError::Io(_) => None,
        }
    }
}

/// Read and parse one request from `stream`.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ParseError> {
    // Accumulate bytes until the blank line ending the head; anything
    // read past it is the start of the body.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(ParseError::TooLarge("request head exceeds 16 KiB"));
        }
        let n = stream.read(&mut chunk).map_err(ParseError::Io)?;
        if n == 0 {
            return Err(ParseError::BadRequest(
                "connection closed before end of request head".into(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ParseError::BadRequest("request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ParseError::BadRequest("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(ParseError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::BadRequest(format!(
            "unsupported protocol {version:?}"
        )));
    }
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::BadRequest(format!(
                "malformed header line {line:?}"
            )));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| ParseError::BadRequest("malformed Content-Length".into()))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::TooLarge("request body exceeds 64 KiB"));
    }
    // The body: whatever was read past the head, then the remainder off
    // the wire.
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(ParseError::Io)?;
        if n == 0 {
            return Err(ParseError::BadRequest(
                "connection closed before end of request body".into(),
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    let (path, query) = split_target(target)?;
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        body,
    })
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Split a request target into its decoded path and query parameters.
fn split_target(target: &str) -> Result<(String, Vec<(String, String)>), ParseError> {
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path)
        .ok_or_else(|| ParseError::BadRequest("malformed percent-encoding in path".into()))?;
    let mut query = Vec::new();
    if let Some(raw) = raw_query {
        for pair in raw.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            let k = percent_decode(k).ok_or_else(|| {
                ParseError::BadRequest("malformed percent-encoding in query".into())
            })?;
            let v = percent_decode(v).ok_or_else(|| {
                ParseError::BadRequest("malformed percent-encoding in query".into())
            })?;
            query.push((k, v));
        }
    }
    Ok((path, query))
}

/// Decode `%XX` escapes and `+`-as-space; `None` on truncated or
/// non-hex escapes or non-UTF-8 results.
fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hi = (hex[0] as char).to_digit(16)?;
                let lo = (hex[1] as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// An HTTP response ready to serialize: status, content type, body,
/// plus any extra headers (e.g. `Retry-After` on a 503).
#[derive(Debug)]
pub struct Response {
    /// Status code (200, 400, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// Extra headers appended after the standard set.
    pub headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body,
            headers: Vec::new(),
        }
    }

    /// A JSON error document: `{"error": "..."}`.
    pub fn json_error(status: u16, message: &str) -> Self {
        Self::json(status, format!("{{\"error\": \"{}\"}}\n", escape(message)))
    }

    /// An HTML response.
    pub fn html(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/html; charset=utf-8",
            body,
            headers: Vec::new(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body,
            headers: Vec::new(),
        }
    }

    /// Append an extra response header (builder-style).
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.headers.push((name, value));
        self
    }

    /// Serialize status line, headers, and body onto the socket in a
    /// single write (two writes would hand Nagle's algorithm a stalled
    /// small segment per response).
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        use std::fmt::Write as _;
        let mut wire = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            let _ = write!(wire, "{name}: {value}\r\n");
        }
        wire.push_str("\r\n");
        wire.push_str(&self.body);
        stream.write_all(wire.as_bytes())?;
        stream.flush()
    }
}

/// Reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Escape a string for embedding inside JSON double quotes.
pub fn escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c").as_deref(), Some("a b c"));
        assert_eq!(percent_decode("%2Fx").as_deref(), Some("/x"));
        assert_eq!(percent_decode("plain").as_deref(), Some("plain"));
        assert!(percent_decode("%zz").is_none());
        assert!(percent_decode("%2").is_none());
    }

    #[test]
    fn target_splitting() {
        let (path, query) = split_target("/plan?n1=10&n2=20&p=4").unwrap();
        assert_eq!(path, "/plan");
        assert_eq!(
            query,
            vec![
                ("n1".into(), "10".into()),
                ("n2".into(), "20".into()),
                ("p".into(), "4".into())
            ]
        );
        let (path, query) = split_target("/metrics").unwrap();
        assert_eq!(path, "/metrics");
        assert!(query.is_empty());
        // Empty pairs are skipped, valueless keys decode to "".
        let (_, query) = split_target("/x?a&&b=1").unwrap();
        assert_eq!(
            query,
            vec![("a".into(), "".into()), ("b".into(), "1".into())]
        );
    }

    #[test]
    fn escape_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
