//! End-to-end tests for the SYRK-as-a-service server: every endpoint
//! round-trips through `syrk_bench`'s strict JSON parser, malformed
//! input degrades to 4xx without killing the server, `/run` admission
//! control rejects deterministically when the queue is full without
//! starving `/plan`, and `/shutdown` drains in-flight work.
//!
//! Each test binds its own ephemeral-port server; telemetry counters
//! are process-global, so assertions on them are deltas or lower
//! bounds only.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;

use syrk_bench::json::{self, Json};
use syrk_server::{Server, ServerConfig, SharedState};

// ---------------------------------------------------------------------------
// Harness

struct TestServer {
    addr: SocketAddr,
    state: Arc<SharedState>,
    handle: Option<JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    fn start(config: ServerConfig) -> TestServer {
        let server = Server::bind_with("127.0.0.1:0", config).expect("bind ephemeral port");
        let addr = server.local_addr();
        let state = server.state();
        let handle = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            state,
            handle: Some(handle),
        }
    }

    fn start_default() -> TestServer {
        Self::start(ServerConfig::default())
    }

    /// POST /shutdown and assert the accept loop exits cleanly.
    fn shutdown(mut self) {
        let (status, _) = post(self.addr, "/shutdown");
        assert_eq!(status, 200);
        self.join();
    }

    fn join(&mut self) {
        if let Some(h) = self.handle.take() {
            h.join()
                .expect("server thread panicked")
                .expect("accept loop failed");
        }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.state.shutdown();
            self.join();
        }
    }
}

/// One raw HTTP exchange; returns `(status, body)`.
fn raw(addr: SocketAddr, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line in {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    raw(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str) -> (u16, String) {
    raw(
        addr,
        &format!("POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n"),
    )
}

/// POST with a JSON body; returns `(status, headers, body)`.
fn post_json(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line in {response:?}"));
    let (head, body) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    (status, head, body)
}

fn parse_ok(status: u16, body: &str) -> Json {
    assert_eq!(status, 200, "unexpected status, body: {body}");
    json::parse(body).unwrap_or_else(|e| panic!("body is not strict JSON ({e}): {body}"))
}

/// The current value of a counter as scraped from `/metrics` (0 when
/// not yet registered — counters appear on first use).
fn scrape_counter(addr: SocketAddr, name: &str) -> u64 {
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    body.lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Endpoint round-trips

#[test]
fn plan_round_trips_through_strict_json() {
    let srv = TestServer::start_default();
    let (status, body) = get(srv.addr, "/plan?n1=100&n2=50&p=12");
    let doc = parse_ok(status, &body);
    let best = doc.get("best").expect("best plan");
    assert!(best.get("plan").and_then(|p| p.get("algorithm")).is_some());
    let predicted = best
        .get("predicted_cost")
        .and_then(Json::as_num)
        .expect("predicted cost");
    assert!(predicted > 0.0);
    let candidates = doc
        .get("candidates")
        .and_then(Json::as_arr)
        .expect("candidates");
    assert!(!candidates.is_empty());
    // Candidates arrive sorted by predicted cost; the best is first.
    let first = candidates[0].get("predicted_cost").and_then(Json::as_num);
    assert_eq!(first, Some(predicted));
    let terms = doc.get("terms").and_then(Json::as_arr).expect("terms");
    assert!(!terms.is_empty());
    for t in terms {
        assert!(t.get("phase").and_then(Json::as_str).is_some());
        assert!(t.get("bound_term").and_then(Json::as_num).is_some());
    }
    srv.shutdown();
}

#[test]
fn bounds_reports_syrk_vs_gemm_attribution() {
    let srv = TestServer::start_default();
    let (status, body) = get(srv.addr, "/bounds?n1=64&n2=64&p=12");
    let doc = parse_ok(status, &body);
    let syrk = doc
        .get("syrk")
        .and_then(|b| b.get("communicated"))
        .and_then(Json::as_num)
        .expect("syrk bound");
    let gemm = doc
        .get("gemm")
        .and_then(|b| b.get("communicated"))
        .and_then(Json::as_num)
        .expect("gemm bound");
    assert!(syrk > 0.0 && gemm > syrk, "gemm {gemm} vs syrk {syrk}");
    let tables = doc
        .get("attribution")
        .and_then(Json::as_arr)
        .expect("attribution tables");
    assert!(!tables.is_empty());
    for t in tables {
        assert!(t.get("plan").is_some() && t.get("terms").is_some());
    }
    srv.shutdown();
}

#[test]
fn run_executes_and_reports_measured_cost() {
    let srv = TestServer::start_default();
    let (status, body) = post(srv.addr, "/run?alg=2d&n1=36&n2=8&c=3&seed=7");
    let doc = parse_ok(status, &body);
    let words = doc
        .get("cost")
        .and_then(|c| c.get("max_words_sent"))
        .and_then(Json::as_num)
        .expect("measured words");
    assert!(words > 0.0);
    let ratio = doc
        .get("measured_over_bound")
        .and_then(Json::as_num)
        .expect("ratio");
    assert!(ratio > 0.0 && ratio < 10.0, "ratio {ratio}");
    // Determinism: same seed, same checksum.
    let checksum = doc.get("c_checksum").and_then(Json::as_num).unwrap();
    let (status2, body2) = post(srv.addr, "/run?alg=2d&n1=36&n2=8&c=3&seed=7");
    let again = parse_ok(status2, &body2)
        .get("c_checksum")
        .and_then(Json::as_num)
        .unwrap();
    assert_eq!(checksum, again);
    srv.shutdown();
}

#[test]
fn metrics_and_status_expose_live_telemetry() {
    let srv = TestServer::start_default();
    // Warm the plan cache through the API so hit counters move.
    let key = "/plan?n1=321&n2=123&p=20";
    let (s1, _) = get(srv.addr, key);
    let (s2, _) = get(srv.addr, key);
    assert_eq!((s1, s2), (200, 200));
    let (status, text) = get(srv.addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        text.contains("# TYPE syrk_plan_cache_hits counter"),
        "{text}"
    );
    assert!(text.contains("syrk_server_requests"), "{text}");
    assert!(text.contains("syrk_server_plan_requests"), "{text}");
    let (status, html) = get(srv.addr, "/status");
    assert_eq!(status, 200);
    for field in [
        "uptime_seconds",
        "plan_cache_hit_rate",
        "run_queue_depth",
        "runs_active",
        ">running<",
    ] {
        assert!(
            html.contains(field),
            "missing {field} in status page:\n{html}"
        );
    }
    srv.shutdown();
}

#[test]
fn run_with_injected_crash_recovers_and_reports() {
    let srv = TestServer::start_default();
    let attempts_before = scrape_counter(srv.addr, "syrk_recovery_attempts");
    let (status, _head, body) = post_json(
        srv.addr,
        "/run?alg=2d&n1=36&n2=8&c=3&seed=7",
        r#"{"recovery": {"max_attempts": 3}, "faults": {"seed": 5, "crash_rank": 1, "crash_op": 1}}"#,
    );
    let doc = parse_ok(status, &body);
    let recovery = doc.get("recovery").expect("recovery report in response");
    assert_eq!(recovery.get("recovered"), Some(&Json::Bool(true)), "{body}");
    let lost = recovery
        .get("ranks_lost")
        .and_then(Json::as_arr)
        .expect("ranks_lost");
    assert_eq!(lost.len(), 1);
    assert_eq!(lost[0].as_num(), Some(1.0));
    let attempts = recovery
        .get("attempts")
        .and_then(Json::as_arr)
        .expect("attempts");
    assert_eq!(attempts.len(), 2, "{body}");
    assert!(attempts[0]
        .get("outcome")
        .and_then(|o| o.get("kind"))
        .and_then(Json::as_str)
        .is_some_and(|k| k == "crashed"));
    assert!(attempts
        .iter()
        .all(|a| a.get("bound_case").and_then(Json::as_str).is_some()));
    // The replanned grid shrank below the original 12 ranks.
    let final_ranks = recovery
        .get("final_plan")
        .and_then(|p| p.get("ranks"))
        .and_then(Json::as_num)
        .expect("final plan ranks");
    assert!(final_ranks <= 11.0, "{body}");
    let words = recovery
        .get("recovery_words")
        .and_then(Json::as_num)
        .expect("recovery words");
    assert!(words > 0.0, "{body}");
    // The recovery counters are live on /metrics.
    let attempts_after = scrape_counter(srv.addr, "syrk_recovery_attempts");
    assert!(attempts_after > attempts_before);
    // Determinism survives recovery: same request, same checksum.
    let checksum = doc.get("c_checksum").and_then(Json::as_num).unwrap();
    let (status2, _, body2) = post_json(
        srv.addr,
        "/run?alg=2d&n1=36&n2=8&c=3&seed=7",
        r#"{"recovery": {"max_attempts": 3}, "faults": {"seed": 5, "crash_rank": 1, "crash_op": 1}}"#,
    );
    let again = parse_ok(status2, &body2);
    assert_eq!(
        again.get("c_checksum").and_then(Json::as_num),
        Some(checksum)
    );
    srv.shutdown();
}

#[test]
fn run_crash_without_recovery_budget_survives_as_422() {
    // A crash with max_attempts=1 must surface as a typed 422, never a
    // 500, and the server keeps serving afterwards.
    let srv = TestServer::start_default();
    let (status, _head, body) = post_json(
        srv.addr,
        "/run?alg=1d&n1=16&n2=8&p=4",
        r#"{"recovery": {"max_attempts": 1}, "faults": {"crash_rank": 2, "crash_op": 1}}"#,
    );
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("crash"), "{body}");
    assert!(json::parse(&body).is_ok(), "{body}");
    let (status, _) = get(srv.addr, "/plan?n1=30&n2=10&p=6");
    assert_eq!(status, 200);
    srv.shutdown();
}

#[test]
fn queued_run_times_out_with_retry_after() {
    let srv = TestServer::start(ServerConfig {
        max_concurrent_runs: 1,
        max_queued_runs: 2,
        queue_wait: std::time::Duration::from_millis(80),
        workers: 8,
        ..ServerConfig::default()
    });
    let timeouts_before = scrape_counter(srv.addr, "syrk_server_run_queue_timeouts");
    // Occupy the only slot; the next run queues, waits out the 80 ms
    // deadline, and bounces with 503 + Retry-After.
    let permit = srv.state.gate.admit(&srv.state.running).expect("free slot");
    let (status, head, body) = post_json(srv.addr, "/run?alg=1d&n1=16&n2=8&p=2", "");
    assert_eq!(status, 503, "{body}");
    assert!(
        head.to_ascii_lowercase().contains("retry-after:"),
        "missing Retry-After in {head}"
    );
    assert!(json::parse(&body).is_ok(), "{body}");
    let timeouts_after = scrape_counter(srv.addr, "syrk_server_run_queue_timeouts");
    assert!(timeouts_after > timeouts_before);
    drop(permit);
    // The slot is free again: the same run now succeeds.
    let (status, body) = post(srv.addr, "/run?alg=1d&n1=16&n2=8&p=2");
    assert_eq!(status, 200, "{body}");
    srv.shutdown();
}

// ---------------------------------------------------------------------------
// Malformed input

#[test]
fn malformed_requests_get_4xx_and_the_server_keeps_serving() {
    let srv = TestServer::start_default();
    let cases: Vec<(u16, (u16, String))> = vec![
        // Missing / non-numeric / non-positive parameters.
        (400, get(srv.addr, "/plan")),
        (400, get(srv.addr, "/plan?n1=10&n2=5")),
        (400, get(srv.addr, "/plan?n1=abc&n2=5&p=4")),
        (400, get(srv.addr, "/plan?n1=0&n2=5&p=4")),
        (400, get(srv.addr, "/plan?n1=10&n2=5&p=-3")),
        // Broken percent-encoding.
        (400, get(srv.addr, "/plan?n1=%zz&n2=5&p=4")),
        // Semantically invalid domain.
        (422, get(srv.addr, "/plan?n1=1&n2=5&p=4")),
        // Over the planning cap.
        (413, get(srv.addr, "/plan?n1=10&n2=5&p=999999999")),
        // Unknown endpoint and wrong methods.
        (404, get(srv.addr, "/nope")),
        (405, get(srv.addr, "/run?alg=1d&n1=4&n2=4&p=2")),
        (405, post(srv.addr, "/plan?n1=10&n2=5&p=4")),
        // Bad run parameters.
        (400, post(srv.addr, "/run?alg=warp&n1=10&n2=5")),
        (413, post(srv.addr, "/run?alg=1d&n1=4000&n2=4000&p=2")),
        (422, post(srv.addr, "/run?alg=2d&n1=36&n2=8&c=10")),
        // Unparseable request line and oversized head.
        (400, raw(srv.addr, "BOGUS\r\n\r\n")),
        (
            413,
            raw(
                srv.addr,
                &format!(
                    "GET /plan HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
                    "a".repeat(20_000)
                ),
            ),
        ),
    ];
    for (i, (want, (got, body))) in cases.iter().enumerate() {
        assert_eq!(got, want, "case {i}: body {body}");
        // Every error body is itself strict JSON.
        assert!(json::parse(body).is_ok(), "case {i}: non-JSON error {body}");
    }
    // Malformed and mistyped JSON bodies are 400s, not 500s.
    for bad in [
        "{not json",
        r#"{"recovery": {"max_attempts": 0}}"#,
        r#"{"recovery": {"max_attempts": "three"}}"#,
        r#"{"recovery": 7}"#,
        r#"{"faults": {"crash_rank": -1}}"#,
    ] {
        let (status, _h, body) = post_json(srv.addr, "/run?alg=1d&n1=16&n2=8&p=2", bad);
        assert_eq!(status, 400, "body {bad:?} -> {body}");
        assert!(json::parse(&body).is_ok(), "non-JSON error {body}");
    }
    // The server survived the whole battery.
    let (status, _) = get(srv.addr, "/plan?n1=30&n2=10&p=6");
    assert_eq!(status, 200);
    srv.shutdown();
}

// ---------------------------------------------------------------------------
// Concurrency: warm-cache /plan load and /run admission control

#[test]
fn sustains_64_concurrent_plan_queries_with_observable_hit_rate() {
    let srv = TestServer::start_default();
    // Unique key for this test; first query warms the process-wide cache.
    let path = "/plan?n1=4321&n2=1234&p=24";
    let (status, _) = get(srv.addr, path);
    assert_eq!(status, 200);
    let hits_before = scrape_counter(srv.addr, "syrk_plan_cache_hits");
    let clients = 64;
    let barrier = Barrier::new(clients);
    let failures = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..clients {
            s.spawn(|| {
                barrier.wait();
                let (status, body) = get(srv.addr, path);
                if status != 200 || json::parse(&body).is_err() {
                    failures.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(failures.load(Ordering::Relaxed), 0);
    let hits_after = scrape_counter(srv.addr, "syrk_plan_cache_hits");
    assert!(
        hits_after >= hits_before + clients as u64,
        "warm-cache hits did not move: {hits_before} -> {hits_after}"
    );
    srv.shutdown();
}

#[test]
fn run_admission_rejects_when_full_without_starving_plan() {
    let srv = TestServer::start(ServerConfig {
        max_concurrent_runs: 1,
        max_queued_runs: 0,
        workers: 8,
        ..ServerConfig::default()
    });

    // Deterministic single rejection: occupy the only run slot directly
    // through the gate, then a POST /run must bounce with 429 while
    // /plan still answers.
    let permit = srv.state.gate.admit(&srv.state.running).expect("free slot");
    let rejected_before = scrape_counter(srv.addr, "syrk_server_run_rejected");
    let (status, body) = post(srv.addr, "/run?alg=1d&n1=16&n2=8&p=2");
    assert_eq!(status, 429, "expected queue-full rejection, got {body}");
    assert!(json::parse(&body).is_ok());
    let (status, _) = get(srv.addr, "/plan?n1=50&n2=25&p=6");
    assert_eq!(status, 200, "/plan starved while run queue was full");
    let rejected_after = scrape_counter(srv.addr, "syrk_server_run_rejected");
    assert!(rejected_after > rejected_before);
    drop(permit);

    // With the slot free again the same run goes through.
    let (status, body) = post(srv.addr, "/run?alg=1d&n1=16&n2=8&p=2");
    assert_eq!(status, 200, "{body}");

    // Concurrent hammer: 12 simultaneous runs against 1 slot / 0 queue
    // must produce only 200s and 429s, at least one of each.
    let clients = 12;
    let barrier = Barrier::new(clients);
    let ok = AtomicUsize::new(0);
    let busy = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..clients {
            s.spawn(|| {
                barrier.wait();
                let (status, body) = post(srv.addr, "/run?alg=1d&n1=64&n2=48&p=4");
                match status {
                    200 => drop(ok.fetch_add(1, Ordering::Relaxed)),
                    429 => drop(busy.fetch_add(1, Ordering::Relaxed)),
                    other => panic!("unexpected status {other}: {body}"),
                }
            });
        }
    });
    let (ok, busy) = (ok.load(Ordering::Relaxed), busy.load(Ordering::Relaxed));
    assert_eq!(ok + busy, clients);
    assert!(ok >= 1, "no run ever got the slot");
    srv.shutdown();
}

// ---------------------------------------------------------------------------
// Graceful shutdown

#[test]
fn shutdown_drains_in_flight_runs_then_exits_cleanly() {
    let mut srv = TestServer::start_default();
    let addr = srv.addr;
    // Racing an in-flight /run against /shutdown: whichever order the
    // sockets land in, the in-flight request must complete with a real
    // (non-torn) response and run() must return Ok.
    let worker = std::thread::spawn(move || {
        let (status, body) = post(addr, "/run?alg=2d&n1=60&n2=30&c=3");
        assert!(
            status == 200 || status == 503,
            "in-flight run got torn response {status}: {body}"
        );
        assert!(json::parse(&body).is_ok(), "torn body: {body}");
    });
    // Give the run a moment to be accepted before draining.
    std::thread::sleep(std::time::Duration::from_millis(20));
    let (status, body) = post(addr, "/shutdown");
    assert_eq!(status, 200, "{body}");
    assert!(json::parse(&body).is_ok());
    srv.join(); // run() returned Ok(()) — clean drain
    worker.join().expect("in-flight client panicked");
    // The listener is gone: new connections are refused (or reset).
    assert!(
        TcpStream::connect(addr).is_err() || {
            // Some platforms accept briefly in the backlog; a request on it
            // must then fail.
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET /status HTTP/1.1\r\nHost: t\r\n\r\n").ok();
            let mut out = String::new();
            s.read_to_string(&mut out).map(|n| n == 0).unwrap_or(true)
        }
    );
}
