//! The SYRK iteration space: a triangular prism (Fig. 1 of the paper).

use crate::points::PointSet;

/// The iteration space of `C = A·Aᵀ` with `A: n1 × n2`.
///
/// An iteration point `(i, j, k)` performs the scalar multiplication
/// `A[i,k] · A[j,k]` contributing to `C[i,j]`. Restricting to `j ≤ i`
/// (the lower triangle of `C`) gives `n1(n1+1)n2/2` points; restricting
/// to `j < i` (the *strict* lower triangle, which Theorem 1 reasons
/// about) gives `n1(n1−1)n2/2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyrkIterationSpace {
    /// Rows of `A` (and dimension of `C`).
    pub n1: usize,
    /// Columns of `A` (the reduction dimension).
    pub n2: usize,
}

impl SyrkIterationSpace {
    /// Create the iteration space for an `n1 × n2` input.
    pub fn new(n1: usize, n2: usize) -> Self {
        SyrkIterationSpace { n1, n2 }
    }

    /// Number of iteration points with `j ≤ i` — the `n1·n2·(n1+1)/2`
    /// total from Fig. 1.
    pub fn volume_inclusive(&self) -> u64 {
        let (n1, n2) = (self.n1 as u64, self.n2 as u64);
        n1 * (n1 + 1) * n2 / 2
    }

    /// Number of iteration points with `j < i` — `n1(n1−1)n2/2`
    /// (the multiplication count of Lemma 5 / Theorem 1).
    pub fn volume_strict(&self) -> u64 {
        let (n1, n2) = (self.n1 as u64, self.n2 as u64);
        n1 * n1.saturating_sub(1) * n2 / 2
    }

    /// Enumerate the strict prism `{(i,j,k) : 0 ≤ j < i < n1, 0 ≤ k < n2}`.
    /// Only sensible for small sizes (used in tests and E1).
    pub fn enumerate_strict(&self) -> PointSet {
        let mut v = PointSet::new();
        for i in 0..self.n1 as i64 {
            for j in 0..i {
                for k in 0..self.n2 as i64 {
                    v.insert((i, j, k));
                }
            }
        }
        v
    }

    /// Enumerate the inclusive prism (`j ≤ i`).
    pub fn enumerate_inclusive(&self) -> PointSet {
        let mut v = PointSet::new();
        for i in 0..self.n1 as i64 {
            for j in 0..=i {
                for k in 0..self.n2 as i64 {
                    v.insert((i, j, k));
                }
            }
        }
        v
    }

    /// Sizes of the three projections of the *strict* prism:
    /// `(|φ_i|, |φ_j|, |φ_k|)`. `φ_i` and `φ_j` are the footprints on `A`
    /// (and `Aᵀ`); `φ_k` is the footprint on the strict lower triangle
    /// of `C`.
    pub fn strict_projection_sizes(&self) -> (u64, u64, u64) {
        let (n1, n2) = (self.n1 as u64, self.n2 as u64);
        if n1 < 2 {
            return (0, 0, 0);
        }
        // φ_i: pairs (j,k) with j < i for some i, so j ∈ [0, n1−1).
        // φ_j: pairs (i,k) with i > j for some j, so i ∈ [1, n1).
        // φ_k: pairs (i,j) with j < i — the strict triangle.
        ((n1 - 1) * n2, (n1 - 1) * n2, n1 * (n1 - 1) / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loomis_whitney::{check_lemma3_proof_steps, check_symmetric_lw};

    #[test]
    fn volumes_match_enumeration() {
        for (n1, n2) in [(0, 3), (1, 5), (2, 2), (5, 3), (7, 1), (6, 6)] {
            let s = SyrkIterationSpace::new(n1, n2);
            assert_eq!(
                s.enumerate_strict().len() as u64,
                s.volume_strict(),
                "{n1}x{n2}"
            );
            assert_eq!(
                s.enumerate_inclusive().len() as u64,
                s.volume_inclusive(),
                "{n1}x{n2}"
            );
        }
    }

    #[test]
    fn figure1_totals() {
        // Fig. 1 caption: n1·n2·(n1+1)/2 iteration points in total.
        let s = SyrkIterationSpace::new(4, 3);
        assert_eq!(s.volume_inclusive(), 4 * 3 * 5 / 2);
        assert_eq!(s.volume_strict(), 4 * 3 * 3 / 2);
    }

    #[test]
    fn projection_sizes_match_enumeration() {
        for (n1, n2) in [(2, 2), (4, 3), (6, 5), (3, 7)] {
            let s = SyrkIterationSpace::new(n1, n2);
            let v = s.enumerate_strict();
            let (pi, pj, pk) = s.strict_projection_sizes();
            assert_eq!(v.proj_i().len() as u64, pi, "{n1}x{n2} φi");
            assert_eq!(v.proj_j().len() as u64, pj, "{n1}x{n2} φj");
            assert_eq!(v.proj_k().len() as u64, pk, "{n1}x{n2} φk");
        }
    }

    #[test]
    fn strict_prism_satisfies_lemma3() {
        for (n1, n2) in [(2, 1), (5, 4), (8, 3)] {
            let v = SyrkIterationSpace::new(n1, n2).enumerate_strict();
            assert!(check_symmetric_lw(&v));
            assert!(check_lemma3_proof_steps(&v));
        }
    }

    #[test]
    fn degenerate_spaces() {
        let s = SyrkIterationSpace::new(1, 10);
        assert_eq!(s.volume_strict(), 0);
        assert_eq!(s.volume_inclusive(), 10);
        assert_eq!(s.strict_projection_sizes(), (0, 0, 0));
        let s = SyrkIterationSpace::new(0, 0);
        assert_eq!(s.volume_inclusive(), 0);
    }
}
