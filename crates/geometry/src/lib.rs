//! # syrk-geometry — iteration-space geometry and the Lemma 6 optimization
//!
//! The lower-bound side of the SPAA '23 SYRK paper, made executable:
//!
//! * finite point sets in Z³ with axis projections ([`PointSet`]),
//! * the Loomis–Whitney inequality (Lemma 1) and the paper's symmetric
//!   extension for `j < i` sets (Lemma 3) as checkable predicates,
//! * the SYRK iteration space — a triangular prism — with its exact
//!   volumes and projection sizes (Fig. 1),
//! * the constrained optimization problem of Lemma 6 with the analytic
//!   three-case solution, an independent numerical solver, and a
//!   machine-checked KKT certificate (Lemma 2/Definition 3), plus the
//!   Lemma 4 quasiconvexity predicate.
//!
//! ```
//! use syrk_geometry::{Lemma6Problem, SyrkIterationSpace, check_symmetric_lw};
//!
//! // Lemma 3 holds on the strict SYRK prism…
//! let v = SyrkIterationSpace::new(6, 4).enumerate_strict();
//! assert!(check_symmetric_lw(&v));
//!
//! // …and the analytic optimum of Lemma 6 agrees with an independent
//! // numerical solve.
//! let pr = Lemma6Problem::new(100, 4, 100);
//! let (a, n) = (pr.analytic_solution(), pr.numeric_solution());
//! assert!((a.objective() - n.objective()).abs() < 1e-6 * a.objective());
//! ```

#![warn(missing_docs)]

mod loomis_whitney;
mod optimization;
mod points;
mod prism;

pub use loomis_whitney::{
    check_lemma3_proof_steps, check_loomis_whitney, check_symmetric_lw, loomis_whitney_sides,
    symmetric_lw_sides,
};
pub use optimization::quasiconvex;
pub use optimization::{BoundCase, KktReport, Lemma6Problem, Point};
pub use points::{Point3, PointSet};
pub use prism::SyrkIterationSpace;
