//! Finite point sets in Z³ and their axis projections.

use std::collections::HashSet;

/// A point of the 3-D iteration space. For SYRK, `(i, j, k)` indexes the
/// scalar multiplication `A[i,k]·A[j,k]` contributing to `C[i,j]`.
pub type Point3 = (i64, i64, i64);

/// A finite set of points in Z³.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PointSet {
    points: HashSet<Point3>,
}

impl PointSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of points (duplicates collapse).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(points: impl IntoIterator<Item = Point3>) -> Self {
        PointSet {
            points: points.into_iter().collect(),
        }
    }

    /// Insert a point; returns `true` if it was new.
    pub fn insert(&mut self, p: Point3) -> bool {
        self.points.insert(p)
    }

    /// Whether `p` is a member.
    pub fn contains(&self, p: &Point3) -> bool {
        self.points.contains(p)
    }

    /// Cardinality `|V|`.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterate over members.
    pub fn iter(&self) -> impl Iterator<Item = &Point3> {
        self.points.iter()
    }

    /// Projection in the i-direction: `φ_i(V) = {(j,k) : ∃i (i,j,k) ∈ V}`.
    pub fn proj_i(&self) -> HashSet<(i64, i64)> {
        self.points.iter().map(|&(_, j, k)| (j, k)).collect()
    }

    /// Projection in the j-direction: `φ_j(V) = {(i,k) : ∃j (i,j,k) ∈ V}`.
    pub fn proj_j(&self) -> HashSet<(i64, i64)> {
        self.points.iter().map(|&(i, _, k)| (i, k)).collect()
    }

    /// Projection in the k-direction: `φ_k(V) = {(i,j) : ∃k (i,j,k) ∈ V}`.
    pub fn proj_k(&self) -> HashSet<(i64, i64)> {
        self.points.iter().map(|&(i, j, _)| (i, j)).collect()
    }

    /// Whether every point satisfies `j < i` (the strict-lower-triangle
    /// premise of Lemma 3).
    pub fn is_strictly_lower(&self) -> bool {
        self.points.iter().all(|&(i, j, _)| j < i)
    }

    /// The symmetric closure `Ṽ = {(i,j,k) : (i,j,k) ∈ V or (j,i,k) ∈ V}`
    /// used in the proof of Lemma 3.
    pub fn symmetric_closure(&self) -> PointSet {
        let mut s = HashSet::with_capacity(2 * self.points.len());
        for &(i, j, k) in &self.points {
            s.insert((i, j, k));
            s.insert((j, i, k));
        }
        PointSet { points: s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_len() {
        let mut v = PointSet::new();
        assert!(v.is_empty());
        assert!(v.insert((1, 0, 0)));
        assert!(!v.insert((1, 0, 0)));
        assert_eq!(v.len(), 1);
        assert!(v.contains(&(1, 0, 0)));
    }

    #[test]
    fn projections_of_single_point() {
        let v = PointSet::from_iter([(3, 1, 7)]);
        assert_eq!(v.proj_i(), HashSet::from([(1, 7)]));
        assert_eq!(v.proj_j(), HashSet::from([(3, 7)]));
        assert_eq!(v.proj_k(), HashSet::from([(3, 1)]));
    }

    #[test]
    fn projections_collapse_fibers() {
        // A full line in the i-direction projects to one point under φ_i.
        let v = PointSet::from_iter((0..10).map(|i| (i, 2, 3)));
        assert_eq!(v.proj_i().len(), 1);
        assert_eq!(v.proj_j().len(), 10);
        assert_eq!(v.proj_k().len(), 10);
    }

    #[test]
    fn strictly_lower_detection() {
        assert!(PointSet::from_iter([(2, 1, 0), (5, 0, 3)]).is_strictly_lower());
        assert!(!PointSet::from_iter([(1, 1, 0)]).is_strictly_lower());
        assert!(!PointSet::from_iter([(0, 4, 2)]).is_strictly_lower());
        assert!(PointSet::new().is_strictly_lower());
    }

    #[test]
    fn symmetric_closure_doubles_strict_sets() {
        // Lemma 3 proof step: for V with j < i everywhere, |Ṽ| = 2|V|.
        let v = PointSet::from_iter([(2, 1, 0), (3, 1, 5), (4, 2, 5)]);
        let vt = v.symmetric_closure();
        assert_eq!(vt.len(), 2 * v.len());
        assert!(vt.contains(&(1, 2, 0)));
        assert!(vt.contains(&(2, 1, 0)));
    }

    #[test]
    fn symmetric_closure_fixes_diagonal() {
        let v = PointSet::from_iter([(1, 1, 0)]);
        assert_eq!(v.symmetric_closure().len(), 1);
    }
}
