//! The closed-form optimal solution of Lemma 6 (three cases).

use crate::optimization::problem::{BoundCase, Lemma6Problem, Point};

impl Lemma6Problem {
    /// The optimal solution `x*` of Lemma 6, by the paper's case analysis:
    ///
    /// * Case 1: `x1* = n2·√(n1(n1−1))/P`,     `x2* = n1(n1−1)/2`
    /// * Case 2: `x1* = n2·√(n1(n1−1)/P)`,     `x2* = n1(n1−1)/(2P)`
    /// * Case 3: `x1* = (n1(n1−1)n2/P)^(2/3)`, `x2* = x1*/2`
    pub fn analytic_solution(&self) -> Point {
        let (n2, p) = (self.n2 as f64, self.p as f64);
        let t = self.t();
        match self.case() {
            BoundCase::Case1 => Point {
                x1: n2 * t.sqrt() / p,
                x2: t / 2.0,
            },
            BoundCase::Case2 => Point {
                x1: n2 * (t / p).sqrt(),
                x2: t / (2.0 * p),
            },
            BoundCase::Case3 => {
                let x1 = (t * n2 / p).powf(2.0 / 3.0);
                Point { x1, x2: x1 / 2.0 }
            }
        }
    }

    /// The optimal objective value `x1* + x2*` — the data-access lower
    /// bound `W` of Theorem 1 before subtracting the resident data.
    pub fn optimal_value(&self) -> f64 {
        self.analytic_solution().objective()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_solutions_are_feasible() {
        for (n1, n2, p) in [
            (4, 100, 2),
            (4, 100, 60),
            (100, 4, 100),
            (100, 4, 1000),
            (50, 50, 1),
            (50, 50, 7),
            (50, 50, 5000),
            (2, 2, 1),
        ] {
            let pr = Lemma6Problem::new(n1, n2, p);
            let x = pr.analytic_solution();
            assert!(
                pr.is_feasible(x, 1e-9),
                "({n1},{n2},{p}) case {:?}: {:?} infeasible, g = {:?}",
                pr.case(),
                x,
                pr.constraints(x)
            );
        }
    }

    #[test]
    fn case1_pins_x2_to_cap() {
        let pr = Lemma6Problem::new(4, 100, 2);
        let x = pr.analytic_solution();
        assert_eq!(x.x2, pr.x2_hi());
        // x1 = 100·√12/2 ≈ 173.2.
        assert!((x.x1 - 100.0 * 12f64.sqrt() / 2.0).abs() < 1e-9);
    }

    #[test]
    fn case2_pins_x2_to_floor() {
        let pr = Lemma6Problem::new(100, 4, 100);
        let x = pr.analytic_solution();
        assert_eq!(x.x2, pr.x2_lo());
        assert!((x.x1 - 4.0 * (9900.0f64 / 100.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn case3_has_half_ratio() {
        let pr = Lemma6Problem::new(50, 50, 5000);
        let x = pr.analytic_solution();
        assert!((x.x2 / x.x1 - 0.5).abs() < 1e-12);
        // Objective = (3/2)(n1(n1−1)n2/P)^(2/3).
        let expect = 1.5 * (50.0 * 49.0 * 50.0 / 5000.0f64).powf(2.0 / 3.0);
        assert!((pr.optimal_value() - expect).abs() < 1e-9);
    }

    #[test]
    fn constraint1_is_tight_at_optimum_in_every_case() {
        // The dual variable µ1 is strictly positive in all three cases, so
        // g1 must be active: x1²·x2 = K.
        for (n1, n2, p) in [(4, 100, 2), (100, 4, 100), (50, 50, 5000)] {
            let pr = Lemma6Problem::new(n1, n2, p);
            let x = pr.analytic_solution();
            let g1 = pr.k() - x.x1 * x.x1 * x.x2;
            assert!(
                g1.abs() <= 1e-9 * pr.k(),
                "({n1},{n2},{p}): g1 = {g1} not tight (K = {})",
                pr.k()
            );
        }
    }

    #[test]
    fn solutions_continuous_at_case_boundaries() {
        // Lemma 6's note: optimal solutions coincide at boundary points.
        // Boundary between Case 1 and Case 3: P = n2/√(n1(n1−1)).
        // With n1 = 2, t = 2: pick n2 = 10·√2 impossible in integers, so
        // check near-boundary continuity numerically instead.
        let (n1, n2) = (10u64, 300u64);
        let t = (n1 * (n1 - 1)) as f64;
        let p_star = (n2 as f64 / t.sqrt()).floor() as u64; // just inside Case 1
        let before = Lemma6Problem::new(n1, n2, p_star).optimal_value();
        let after = Lemma6Problem::new(n1, n2, p_star + 1).optimal_value();
        let rel_jump = (before - after).abs() / before;
        // Crossing the boundary by ΔP = 1 moves the value by O(1/P), not a
        // jump: the two case formulas agree at the boundary.
        assert!(rel_jump < 0.15, "rel jump {rel_jump}");

        // Case 2 / Case 3 boundary: P = n1(n1−1)/n2².
        let (n1, n2) = (60u64, 3u64);
        let p_star = ((n1 * (n1 - 1)) as f64 / 9.0).floor() as u64;
        let before = Lemma6Problem::new(n1, n2, p_star).optimal_value();
        let after = Lemma6Problem::new(n1, n2, p_star + 1).optimal_value();
        let rel_jump = (before - after).abs() / before;
        assert!(rel_jump < 0.15, "rel jump {rel_jump}");
    }
}
