//! The constrained optimization problem of Lemma 6.

/// An instance of the Lemma 6 problem:
///
/// ```text
/// min  x1 + x2
/// s.t. (n1(n1−1)n2 / (√2·P))² ≤ x1²·x2          (g1, from Lemma 3)
///      0 ≤ x1                                    (g2)
///      n1(n1−1)/(2P) ≤ x2 ≤ n1(n1−1)/2           (g3, g4, from Lemma 5)
/// ```
///
/// `x1` models the number of elements of `A` a processor accesses
/// (`|φ_i(F) ∪ φ_j(F)|`) and `x2` the number of elements of the strict
/// lower triangle of `C` it contributes to (`|φ_k(F)|`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lemma6Problem {
    /// Rows of `A`.
    pub n1: u64,
    /// Columns of `A`.
    pub n2: u64,
    /// Number of processors.
    pub p: u64,
}

/// Which of the three analytic cases an instance falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundCase {
    /// `n1 ≤ n2` and `P ≤ n2/√(n1(n1−1))`: short-wide `A`, few processors.
    Case1,
    /// `n1 > n2` and `P ≤ n1(n1−1)/n2²`: tall-skinny `A`, few processors.
    Case2,
    /// Everything else: enough processors that all three dimensions of the
    /// iteration space must be partitioned.
    Case3,
}

/// A candidate point for the problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Elements of `A` accessed.
    pub x1: f64,
    /// Elements of strict-lower `C` contributed to.
    pub x2: f64,
}

impl Point {
    /// Objective value `x1 + x2`.
    pub fn objective(&self) -> f64 {
        self.x1 + self.x2
    }
}

impl Lemma6Problem {
    /// Create an instance. Requires `n1 ≥ 2` (otherwise the strict lower
    /// triangle is empty and the problem degenerates), `n2 ≥ 1`, `P ≥ 1`.
    pub fn new(n1: u64, n2: u64, p: u64) -> Self {
        assert!(n1 >= 2, "Lemma 6 needs n1 ≥ 2 (nonempty strict triangle)");
        assert!(n2 >= 1 && p >= 1, "n2 and P must be positive");
        Lemma6Problem { n1, n2, p }
    }

    /// `n1(n1−1)` as `f64` — appears throughout the formulas.
    pub fn t(&self) -> f64 {
        (self.n1 * (self.n1 - 1)) as f64
    }

    /// The constant `K = (n1(n1−1)·n2 / (√2·P))²` of constraint g1.
    pub fn k(&self) -> f64 {
        let l = self.t() * self.n2 as f64 / (2f64.sqrt() * self.p as f64);
        l * l
    }

    /// Lower bound on `x2`: `n1(n1−1)/(2P)`.
    pub fn x2_lo(&self) -> f64 {
        self.t() / (2.0 * self.p as f64)
    }

    /// Upper bound on `x2`: `n1(n1−1)/2`.
    pub fn x2_hi(&self) -> f64 {
        self.t() / 2.0
    }

    /// The constraint vector `g(x) ≤ 0` at a point.
    pub fn constraints(&self, pt: Point) -> [f64; 4] {
        [
            self.k() - pt.x1 * pt.x1 * pt.x2,
            -pt.x1,
            self.x2_lo() - pt.x2,
            pt.x2 - self.x2_hi(),
        ]
    }

    /// Whether `pt` is feasible within relative tolerance `tol`.
    pub fn is_feasible(&self, pt: Point, tol: f64) -> bool {
        let scale = self.k().max(self.x2_hi()).max(1.0);
        self.constraints(pt).iter().all(|&g| g <= tol * scale)
    }

    /// Which analytic case this instance falls in (Lemma 6's trichotomy).
    pub fn case(&self) -> BoundCase {
        let (n1, n2, p) = (self.n1 as f64, self.n2 as f64, self.p as f64);
        if n1 <= n2 {
            if p <= n2 / self.t().sqrt() {
                BoundCase::Case1
            } else {
                BoundCase::Case3
            }
        } else if p <= self.t() / (n2 * n2) {
            BoundCase::Case2
        } else {
            BoundCase::Case3
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        let pr = Lemma6Problem::new(4, 6, 2);
        assert_eq!(pr.t(), 12.0);
        // K = (12·6 / (√2·2))² = (72/(2√2))² = (25.455…)² = 648.
        assert!((pr.k() - 648.0).abs() < 1e-9);
        assert_eq!(pr.x2_lo(), 3.0);
        assert_eq!(pr.x2_hi(), 6.0);
    }

    #[test]
    fn case_classification() {
        // n1=4 ≤ n2=100, P=2 ≤ 100/√12 ≈ 28.9 → Case 1.
        assert_eq!(Lemma6Problem::new(4, 100, 2).case(), BoundCase::Case1);
        // Same shape, P = 60 > 28.9 → Case 3.
        assert_eq!(Lemma6Problem::new(4, 100, 60).case(), BoundCase::Case3);
        // n1=100 > n2=4, P=100 ≤ 9900/16 ≈ 618 → Case 2.
        assert_eq!(Lemma6Problem::new(100, 4, 100).case(), BoundCase::Case2);
        // n1=100 > n2=4, P=1000 > 618 → Case 3.
        assert_eq!(Lemma6Problem::new(100, 4, 1000).case(), BoundCase::Case3);
    }

    #[test]
    fn feasibility() {
        let pr = Lemma6Problem::new(4, 6, 2);
        // Generous point: x1 huge, x2 at its cap.
        assert!(pr.is_feasible(Point { x1: 100.0, x2: 6.0 }, 1e-12));
        // x2 below its floor is infeasible.
        assert!(!pr.is_feasible(Point { x1: 100.0, x2: 1.0 }, 1e-12));
        // Violating the volume constraint is infeasible.
        assert!(!pr.is_feasible(Point { x1: 1.0, x2: 6.0 }, 1e-12));
    }

    #[test]
    #[should_panic(expected = "n1 ≥ 2")]
    fn tiny_n1_rejected() {
        let _ = Lemma6Problem::new(1, 5, 1);
    }
}
