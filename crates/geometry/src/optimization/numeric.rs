//! Independent numerical solve of the Lemma 6 problem.
//!
//! At any optimum the volume constraint g1 is active (its dual variable is
//! strictly positive in every case of the paper's proof), so the problem
//! reduces to one dimension: with `x1²·x2 = K`,
//!
//! ```text
//! minimize  g(x2) = √(K/x2) + x2   over   x2 ∈ [n1(n1−1)/2P, n1(n1−1)/2].
//! ```
//!
//! `g` is strictly convex on `(0, ∞)` (sum of a convex power and a linear
//! term), so golden-section search converges to the global optimum. This
//! gives a solver that shares *no* formulas with the analytic solution —
//! experiment E11 cross-checks one against the other.

use crate::optimization::problem::{Lemma6Problem, Point};

/// Golden-section minimization of a unimodal function on `[lo, hi]`.
fn golden_section(mut lo: f64, mut hi: f64, f: impl Fn(f64) -> f64, iters: usize) -> f64 {
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let mut c = hi - INV_PHI * (hi - lo);
    let mut d = lo + INV_PHI * (hi - lo);
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..iters {
        if fc < fd {
            hi = d;
            d = c;
            fd = fc;
            c = hi - INV_PHI * (hi - lo);
            fc = f(c);
        } else {
            lo = c;
            c = d;
            fc = fd;
            d = lo + INV_PHI * (hi - lo);
            fd = f(d);
        }
    }
    0.5 * (lo + hi)
}

impl Lemma6Problem {
    /// Numerically solve the problem (independent of the analytic
    /// formulas). Accurate to ~12 significant digits.
    pub fn numeric_solution(&self) -> Point {
        let k = self.k();
        let (lo, hi) = (self.x2_lo(), self.x2_hi());
        let g = |x2: f64| (k / x2).sqrt() + x2;
        let x2 = if hi <= lo {
            lo
        } else {
            golden_section(lo, hi, g, 200)
        };
        Point {
            x1: (k / x2).sqrt(),
            x2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_section_finds_parabola_min() {
        let x = golden_section(-10.0, 10.0, |x| (x - 3.0) * (x - 3.0), 100);
        assert!((x - 3.0).abs() < 1e-9);
    }

    #[test]
    fn numeric_matches_analytic_across_cases() {
        for (n1, n2, p) in [
            (4, 100, 2),    // Case 1
            (4, 100, 29),   // near the 1↔3 boundary
            (4, 100, 60),   // Case 3
            (100, 4, 100),  // Case 2
            (100, 4, 618),  // near the 2↔3 boundary
            (100, 4, 1000), // Case 3
            (50, 50, 1),
            (50, 50, 49),
            (50, 50, 50),
            (50, 50, 12345),
            (2, 2, 1),
            (2, 7, 3),
        ] {
            let pr = Lemma6Problem::new(n1, n2, p);
            let a = pr.analytic_solution();
            let n = pr.numeric_solution();
            let rel = |u: f64, v: f64| (u - v).abs() / v.abs().max(1.0);
            assert!(
                rel(a.x1, n.x1) < 1e-6 && rel(a.x2, n.x2) < 1e-6,
                "({n1},{n2},{p}) case {:?}: analytic {:?} vs numeric {:?}",
                pr.case(),
                a,
                n
            );
            assert!(rel(a.objective(), n.objective()) < 1e-9);
        }
    }

    #[test]
    fn numeric_is_feasible() {
        for (n1, n2, p) in [(7, 3, 2), (30, 30, 900), (12, 240, 5)] {
            let pr = Lemma6Problem::new(n1, n2, p);
            assert!(pr.is_feasible(pr.numeric_solution(), 1e-6));
        }
    }

    #[test]
    fn p_equals_one_collapses_bounds() {
        // With P = 1, x2 is pinned: lo = hi = n1(n1−1)/2.
        let pr = Lemma6Problem::new(10, 10, 1);
        let n = pr.numeric_solution();
        assert!((n.x2 - pr.x2_hi()).abs() < 1e-9);
    }
}
