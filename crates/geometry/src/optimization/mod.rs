//! The constrained optimization machinery behind the lower bound (§4.3).
//!
//! * [`problem`] — the Lemma 6 problem statement (objective, constraints,
//!   case trichotomy).
//! * [`analytic`] — the paper's closed-form solution.
//! * [`numeric`] — an independent golden-section solve (cross-check, E11).
//! * [`kkt`] — machine-checking the KKT certificate with the paper's dual
//!   variables.
//! * [`quasiconvex`] — Lemma 4's quasiconvexity predicate.

mod analytic;
mod kkt;
mod numeric;
mod problem;
pub mod quasiconvex;

pub use kkt::KktReport;
pub use problem::{BoundCase, Lemma6Problem, Point};
