//! Lemma 4: quasiconvexity of `g0(x) = L − x1²·x2` on the positive
//! quadrant, as a checkable predicate (Definition 2).

/// Evaluate `g0(x) = L − x1²·x2`.
pub fn g0(l: f64, x: (f64, f64)) -> f64 {
    l - x.0 * x.0 * x.1
}

/// Gradient of `g0`: `(−2·x1·x2, −x1²)`.
pub fn grad_g0(x: (f64, f64)) -> (f64, f64) {
    (-2.0 * x.0 * x.1, -x.0 * x.0)
}

/// Definition 2 instanceal check: if `g0(y) ≤ g0(x)` then
/// `⟨∇g0(x), y − x⟩ ≤ 0` must hold (for `x`, `y` in the positive
/// quadrant). Returns `true` when the implication holds at `(x, y)`.
pub fn quasiconvex_witness(l: f64, x: (f64, f64), y: (f64, f64)) -> bool {
    assert!(
        x.0 > 0.0 && x.1 > 0.0 && y.0 > 0.0 && y.1 > 0.0,
        "positive quadrant only"
    );
    if g0(l, y) <= g0(l, x) {
        let g = grad_g0(x);
        let inner = g.0 * (y.0 - x.0) + g.1 * (y.1 - x.1);
        // Tiny epsilon absorbs rounding when g0(y) == g0(x) exactly.
        inner <= 1e-9 * (1.0 + inner.abs())
    } else {
        true // premise false ⇒ implication vacuously true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_formula() {
        let g = grad_g0((2.0, 3.0));
        assert_eq!(g, (-12.0, -4.0));
    }

    #[test]
    fn witness_holds_on_a_grid() {
        // Exhaustive small grid in the positive quadrant, for several L.
        let pts: Vec<(f64, f64)> = (1..=8)
            .flat_map(|a| (1..=8).map(move |b| (a as f64 * 0.7, b as f64 * 1.3)))
            .collect();
        for &l in &[0.0, 1.0, 100.0, -5.0] {
            for &x in &pts {
                for &y in &pts {
                    assert!(quasiconvex_witness(l, x, y), "L={l} x={x:?} y={y:?}");
                }
            }
        }
    }

    #[test]
    fn g0_is_not_convex() {
        // Why Lemma 4 (quasiconvexity) is needed: g0 itself fails the
        // convexity inequality f(y) ≥ f(x) + ⟨∇f(x), y−x⟩.
        let l = 0.0;
        let x = (1.0, 1.0);
        let y = (3.0, 3.0);
        let g = grad_g0(x);
        let linear = g0(l, x) + g.0 * (y.0 - x.0) + g.1 * (y.1 - x.1);
        assert!(
            g0(l, y) < linear,
            "g0 should dip below its tangent plane ({} vs {})",
            g0(l, y),
            linear
        );
    }

    #[test]
    #[should_panic(expected = "positive quadrant")]
    fn rejects_nonpositive_points() {
        let _ = quasiconvex_witness(1.0, (0.0, 1.0), (1.0, 1.0));
    }
}
