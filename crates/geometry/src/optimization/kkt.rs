//! KKT-condition verification for the Lemma 6 solution.
//!
//! Lemma 2 (from Al Daas et al. '22) says the KKT conditions are
//! *sufficient* for optimality here because the objective is convex and
//! every constraint is quasiconvex (Lemma 4 covers the nonlinear one).
//! This module reconstructs the paper's dual variables `µ*` for each case
//! and verifies the four KKT conditions numerically — i.e. it machine-
//! checks the proof of Lemma 6 for concrete instances.

use crate::optimization::problem::{BoundCase, Lemma6Problem, Point};

/// The four KKT residuals for a primal/dual pair.
#[derive(Debug, Clone, Copy)]
pub struct KktReport {
    /// Max positive constraint violation `max_i g_i(x)` (≤ 0 required).
    pub primal: f64,
    /// Most negative dual variable `min_i µ_i` (≥ 0 required).
    pub dual: f64,
    /// ∞-norm of the stationarity residual `∇f + µᵀ·Jg`.
    pub stationarity: f64,
    /// Max of `|µ_i·g_i(x)|` (complementary slackness).
    pub slackness: f64,
}

impl KktReport {
    /// Whether all four conditions hold within `tol` (relative to the
    /// instance scale supplied).
    pub fn holds(&self, tol: f64) -> bool {
        self.primal <= tol && self.dual >= -tol && self.stationarity <= tol && self.slackness <= tol
    }
}

impl Lemma6Problem {
    /// The paper's dual variables `µ*` for this instance's case
    /// (§4.3, proof of Lemma 6).
    pub fn paper_duals(&self) -> [f64; 4] {
        let (n2, p) = (self.n2 as f64, self.p as f64);
        let t = self.t();
        match self.case() {
            BoundCase::Case1 => [p / (t.powf(1.5) * n2), 0.0, 0.0, n2 / (t.sqrt() * p) - 1.0],
            BoundCase::Case2 => [
                p.powf(1.5) / (t.powf(1.5) * n2),
                0.0,
                1.0 - n2 * (p / t).sqrt(),
                0.0,
            ],
            BoundCase::Case3 => [(p / (t * n2)).powf(4.0 / 3.0), 0.0, 0.0, 0.0],
        }
    }

    /// Evaluate the KKT residuals at `(x, µ)`. Residuals are normalized by
    /// the natural scale of each row so `holds(1e-9)` is meaningful across
    /// wildly different instance sizes.
    pub fn kkt_report(&self, x: Point, mu: [f64; 4]) -> KktReport {
        let g = self.constraints(x);
        let scale_g = self.k().max(self.x2_hi()).max(1.0);
        let primal = g.iter().fold(f64::MIN, |a, &b| a.max(b)) / scale_g;
        let dual = mu.iter().fold(f64::MAX, |a, &b| a.min(b));

        // Jacobian rows of g at x (cf. the proof of Lemma 6):
        //   ∇g1 = (−2·x1·x2, −x1²), ∇g2 = (−1, 0), ∇g3 = (0, −1), ∇g4 = (0, 1).
        let jg = [
            [-2.0 * x.x1 * x.x2, -x.x1 * x.x1],
            [-1.0, 0.0],
            [0.0, -1.0],
            [0.0, 1.0],
        ];
        let mut station = [1.0, 1.0]; // ∇f = (1, 1)
        for (mi, row) in mu.iter().zip(&jg) {
            station[0] += mi * row[0];
            station[1] += mi * row[1];
        }
        let stationarity = station[0].abs().max(station[1].abs());

        let slackness = mu
            .iter()
            .zip(&g)
            .map(|(m, gi)| (m * gi).abs() / scale_g.max(1.0))
            .fold(0.0, f64::max);

        KktReport {
            primal,
            dual,
            stationarity,
            slackness,
        }
    }

    /// Machine-check the proof of Lemma 6 for this instance: the analytic
    /// solution together with the paper's duals must satisfy all four KKT
    /// conditions.
    pub fn verify_kkt(&self) -> KktReport {
        self.kkt_report(self.analytic_solution(), self.paper_duals())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kkt_holds_in_all_three_cases() {
        for (n1, n2, p) in [
            (4, 100, 2),    // Case 1
            (4, 100, 28),   // Case 1, near boundary
            (4, 100, 60),   // Case 3 (short-wide branch)
            (100, 4, 100),  // Case 2
            (100, 4, 618),  // Case 2, near boundary
            (100, 4, 1000), // Case 3 (tall-skinny branch)
            (2, 2, 1),      // smallest legal instance (Case 1)
            (64, 64, 4032), // square, huge P (Case 3)
        ] {
            let pr = Lemma6Problem::new(n1, n2, p);
            let rep = pr.verify_kkt();
            assert!(
                rep.holds(1e-9),
                "({n1},{n2},{p}) case {:?}: {rep:?}",
                pr.case()
            );
        }
    }

    #[test]
    fn duals_match_paper_structure() {
        // Case 1: µ2 = µ3 = 0 and µ4 ≥ 0 exactly when P ≤ n2/√(n1(n1−1)).
        let pr = Lemma6Problem::new(4, 100, 2);
        let mu = pr.paper_duals();
        assert!(mu[0] > 0.0 && mu[1] == 0.0 && mu[2] == 0.0 && mu[3] >= 0.0);

        // Case 2: µ2 = µ4 = 0 and µ3 ≥ 0.
        let pr = Lemma6Problem::new(100, 4, 100);
        let mu = pr.paper_duals();
        assert!(mu[0] > 0.0 && mu[1] == 0.0 && mu[2] >= 0.0 && mu[3] == 0.0);

        // Case 3: only µ1 > 0.
        let pr = Lemma6Problem::new(50, 50, 5000);
        let mu = pr.paper_duals();
        assert!(mu[0] > 0.0 && mu[1..] == [0.0, 0.0, 0.0]);
    }

    #[test]
    fn wrong_point_fails_stationarity() {
        let pr = Lemma6Problem::new(4, 100, 2);
        let mut x = pr.analytic_solution();
        x.x1 *= 2.0; // feasible but suboptimal
        let rep = pr.kkt_report(x, pr.paper_duals());
        assert!(
            !rep.holds(1e-6),
            "perturbed point should violate KKT: {rep:?}"
        );
    }

    #[test]
    fn wrong_duals_fail() {
        let pr = Lemma6Problem::new(100, 4, 100);
        let rep = pr.kkt_report(pr.analytic_solution(), [0.0, 0.0, 0.0, 0.0]);
        // With all duals zero, stationarity is ∇f = (1,1) ≠ 0.
        assert!(rep.stationarity > 0.5);
    }
}
