//! The Loomis–Whitney inequality (Lemma 1) and the paper's symmetric
//! extension (Lemma 3), as checkable predicates over finite point sets.

use crate::points::PointSet;

/// Left- and right-hand sides of the Loomis–Whitney inequality
/// `|V| ≤ √(|φ_i(V)|·|φ_j(V)|·|φ_k(V)|)` (Lemma 1).
pub fn loomis_whitney_sides(v: &PointSet) -> (f64, f64) {
    let lhs = v.len() as f64;
    let rhs = ((v.proj_i().len() * v.proj_j().len() * v.proj_k().len()) as f64).sqrt();
    (lhs, rhs)
}

/// Check Lemma 1 for `v` (with a tiny epsilon for the square root).
pub fn check_loomis_whitney(v: &PointSet) -> bool {
    let (lhs, rhs) = loomis_whitney_sides(v);
    lhs <= rhs * (1.0 + 1e-12) + 1e-9
}

/// Left- and right-hand sides of the symmetric Loomis–Whitney extension
/// (Lemma 3): for `V ⊆ {(i,j,k) : j < i}`,
/// `2|V| ≤ |φ_i(V) ∪ φ_j(V)| · √(2|φ_k(V)|)`.
///
/// Panics if `v` contains a point with `j ≥ i` (the lemma's premise).
pub fn symmetric_lw_sides(v: &PointSet) -> (f64, f64) {
    assert!(
        v.is_strictly_lower(),
        "Lemma 3 requires j < i for every point"
    );
    let lhs = 2.0 * v.len() as f64;
    let union: std::collections::HashSet<_> = v.proj_i().union(&v.proj_j()).copied().collect();
    let rhs = union.len() as f64 * (2.0 * v.proj_k().len() as f64).sqrt();
    (lhs, rhs)
}

/// Check Lemma 3 for `v`.
pub fn check_symmetric_lw(v: &PointSet) -> bool {
    let (lhs, rhs) = symmetric_lw_sides(v);
    lhs <= rhs * (1.0 + 1e-12) + 1e-9
}

/// The three set identities established inside the proof of Lemma 3,
/// checked explicitly for `v` (strictly lower):
///
/// 1. `|Ṽ| = 2|V|`,
/// 2. `φ_i(Ṽ) = φ_j(Ṽ) = φ_i(V) ∪ φ_j(V)`,
/// 3. `|φ_k(Ṽ)| = 2|φ_k(V)|`.
pub fn check_lemma3_proof_steps(v: &PointSet) -> bool {
    assert!(
        v.is_strictly_lower(),
        "Lemma 3 requires j < i for every point"
    );
    let vt = v.symmetric_closure();
    let union: std::collections::HashSet<_> = v.proj_i().union(&v.proj_j()).copied().collect();
    vt.len() == 2 * v.len()
        && vt.proj_i() == union
        && vt.proj_j() == union
        && vt.proj_k().len() == 2 * v.proj_k().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A full a×b×c box: LW is tight (equality).
    fn boxed(a: i64, b: i64, c: i64) -> PointSet {
        let mut v = PointSet::new();
        for i in 0..a {
            for j in 0..b {
                for k in 0..c {
                    v.insert((i, j, k));
                }
            }
        }
        v
    }

    /// The strict-lower triangular prism of SYRK: j < i < n, k < m.
    fn prism(n: i64, m: i64) -> PointSet {
        let mut v = PointSet::new();
        for i in 0..n {
            for j in 0..i {
                for k in 0..m {
                    v.insert((i, j, k));
                }
            }
        }
        v
    }

    #[test]
    fn lw_tight_on_boxes() {
        for (a, b, c) in [(1, 1, 1), (2, 3, 4), (5, 5, 5)] {
            let v = boxed(a, b, c);
            let (lhs, rhs) = loomis_whitney_sides(&v);
            assert!((lhs - rhs).abs() < 1e-9, "box {a}x{b}x{c}: {lhs} vs {rhs}");
            assert!(check_loomis_whitney(&v));
        }
    }

    #[test]
    fn lw_holds_on_prisms_but_not_tight() {
        let v = prism(6, 4);
        assert!(check_loomis_whitney(&v));
        let (lhs, rhs) = loomis_whitney_sides(&v);
        // The gap that motivates Lemma 3: plain LW is slack on the prism.
        assert!(lhs < rhs * 0.95, "expected clear slack, got {lhs} vs {rhs}");
    }

    #[test]
    fn symmetric_lw_holds_on_prisms() {
        for (n, m) in [(2, 1), (3, 5), (6, 4), (10, 2), (8, 8)] {
            assert!(check_symmetric_lw(&prism(n, m)), "prism({n},{m})");
            assert!(
                check_lemma3_proof_steps(&prism(n, m)),
                "prism({n},{m}) steps"
            );
        }
    }

    #[test]
    fn symmetric_lw_near_tight_on_triangle_blocks() {
        // A triangle block (strict lower triangle of an s×s index square)
        // times a full k-range is where Lemma 3 approaches equality as s
        // grows: 2|V| = s(s-1)m, union = s·m, φ_k = s(s-1)/2, so
        // rhs = s·m·√(s(s-1)) ≈ lhs·√(s/(s-1)) → tight.
        let (s, m) = (30, 7);
        let mut v = PointSet::new();
        for i in 0..s {
            for j in 0..i {
                for k in 0..m {
                    v.insert((i, j, k));
                }
            }
        }
        let (lhs, rhs) = symmetric_lw_sides(&v);
        assert!(lhs <= rhs);
        assert!(
            rhs / lhs < 1.03,
            "should be within ~√(s/(s−1)) of equality: {}",
            rhs / lhs
        );
    }

    #[test]
    #[should_panic(expected = "requires j < i")]
    fn lemma3_rejects_diagonal_points() {
        let v = PointSet::from_iter([(1, 1, 0)]);
        let _ = symmetric_lw_sides(&v);
    }

    #[test]
    fn empty_set_trivially_satisfies_both() {
        let v = PointSet::new();
        assert!(check_loomis_whitney(&v));
        assert!(check_symmetric_lw(&v));
        assert!(check_lemma3_proof_steps(&v));
    }

    #[test]
    fn single_point_cases() {
        let v = PointSet::from_iter([(5, 2, 9)]);
        // LW: 1 ≤ √(1·1·1).
        assert!(check_loomis_whitney(&v));
        // Lemma 3: 2 ≤ 2·√2.
        let (lhs, rhs) = symmetric_lw_sides(&v);
        assert_eq!(lhs, 2.0);
        assert!((rhs - 2.0 * 2.0f64.sqrt()).abs() < 1e-12);
    }
}
