//! A broad battery for the paper's lemmas: structured families of point
//! sets (the shapes the algorithms actually generate) for Lemma 3, and a
//! dense instance grid for Lemma 6 / KKT.

use syrk_geometry::{
    check_lemma3_proof_steps, check_symmetric_lw, symmetric_lw_sides, Lemma6Problem, PointSet,
    SyrkIterationSpace,
};

/// Minimal deterministic RNG (splitmix64) — this crate builds with no
/// dependencies, so the battery carries its own generator.
struct TestRng(u64);

impl TestRng {
    fn seed_from_u64(seed: u64) -> Self {
        TestRng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn gen_range(&mut self, r: std::ops::Range<i64>) -> i64 {
        r.start + (self.next_u64() % (r.end - r.start) as u64) as i64
    }
}

/// A union of triangle blocks over disjoint index sets × a k-range —
/// exactly what one processor of the 2D algorithm owns.
fn triangle_block_union(index_sets: &[Vec<i64>], krange: i64) -> PointSet {
    let mut v = PointSet::new();
    for set in index_sets {
        for (a, &i) in set.iter().enumerate() {
            for &j in &set[..a] {
                let (hi, lo) = (i.max(j), i.min(j));
                for k in 0..krange {
                    v.insert((hi, lo, k));
                }
            }
        }
    }
    v
}

#[test]
fn lemma3_on_processor_shaped_sets() {
    // Row block sets of the c = 3 distribution, lifted to point sets.
    let r_sets: [&[i64]; 4] = [&[0, 3, 6], &[1, 4, 8], &[2, 5, 7], &[0, 1, 2]];
    for rk in r_sets {
        let v = triangle_block_union(&[rk.to_vec()], 5);
        assert!(check_symmetric_lw(&v));
        assert!(check_lemma3_proof_steps(&v));
        // For a single triangle block the inequality is near-tight:
        // 2|V| = c(c−1)·m, rhs = c·m·√(c(c−1)).
        let (lhs, rhs) = symmetric_lw_sides(&v);
        let c = rk.len() as f64;
        let expect_ratio = (c / (c - 1.0)).sqrt();
        assert!((rhs / lhs - expect_ratio).abs() < 1e-9, "{rk:?}");
    }
}

#[test]
fn lemma3_on_random_triangle_unions() {
    let mut rng = TestRng::seed_from_u64(99);
    for _ in 0..50 {
        let sets: Vec<Vec<i64>> = (0..rng.gen_range(1..4))
            .map(|_| {
                let size = rng.gen_range(2..6);
                let mut s: Vec<i64> = (0..size).map(|_| rng.gen_range(0..30)).collect();
                s.sort_unstable();
                s.dedup();
                s
            })
            .filter(|s| s.len() >= 2)
            .collect();
        if sets.is_empty() {
            continue;
        }
        let v = triangle_block_union(&sets, rng.gen_range(1..6));
        assert!(check_symmetric_lw(&v), "{sets:?}");
        assert!(check_lemma3_proof_steps(&v), "{sets:?}");
    }
}

#[test]
fn lemma3_on_sparse_random_columns() {
    // Sets where different (i, j) pairs use different k-subsets — the
    // general position Lemma 3 must cover (not just full prisms).
    let mut rng = TestRng::seed_from_u64(7);
    for trial in 0..30 {
        let mut v = PointSet::new();
        for _ in 0..rng.gen_range(1..300) {
            let i = rng.gen_range(1..20i64);
            let j = rng.gen_range(0..i);
            let k = rng.gen_range(0..8i64);
            v.insert((i, j, k));
        }
        assert!(check_symmetric_lw(&v), "trial {trial}");
    }
}

#[test]
fn lemma6_grid_sweep() {
    // A dense grid of instances spanning all cases and both boundaries;
    // each must pass analytic/numeric agreement and the KKT certificate.
    let mut checked = 0usize;
    for &n1 in &[2u64, 3, 8, 32, 129, 1024] {
        for &n2 in &[1u64, 2, 9, 33, 128, 1023] {
            for &p in &[1u64, 2, 3, 12, 56, 1000, 131072] {
                let pr = Lemma6Problem::new(n1, n2, p);
                let a = pr.analytic_solution();
                let n = pr.numeric_solution();
                let rel = (a.objective() - n.objective()).abs() / a.objective();
                assert!(rel < 1e-6, "({n1},{n2},{p}): {rel}");
                assert!(pr.is_feasible(a, 1e-9), "({n1},{n2},{p})");
                assert!(pr.verify_kkt().holds(1e-8), "({n1},{n2},{p})");
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 6 * 6 * 7);
}

#[test]
fn prism_volumes_scale_quadratically_in_n1() {
    let m = 7usize;
    let mut prev = 0u64;
    for n1 in 2..40usize {
        let v = SyrkIterationSpace::new(n1, m).volume_strict();
        // Increment between consecutive n1: (n1−1)·m.
        assert_eq!(v - prev, ((n1 - 1) * m) as u64);
        prev = v;
    }
}

#[test]
fn lemma6_optimum_decreases_in_p_and_increases_in_n() {
    for p in 1..50u64 {
        let a = Lemma6Problem::new(64, 64, p).optimal_value();
        let b = Lemma6Problem::new(64, 64, p + 1).optimal_value();
        assert!(b <= a * (1.0 + 1e-12), "P={p}");
    }
    for n in 2..50u64 {
        let a = Lemma6Problem::new(n, 64, 8).optimal_value();
        let b = Lemma6Problem::new(n + 1, 64, 8).optimal_value();
        assert!(b >= a, "n={n}");
    }
}
