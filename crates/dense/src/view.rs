//! Borrowed, strided matrix views.

use crate::scalar::Scalar;
use std::ops::Index;

/// An immutable view of a `rows × cols` block inside a row-major buffer
/// with row stride `stride ≥ cols`.
#[derive(Clone, Copy)]
pub struct MatrixView<'a, T = f64> {
    data: &'a [T],
    rows: usize,
    cols: usize,
    stride: usize,
}

impl<'a, T: Scalar> MatrixView<'a, T> {
    /// Wrap `data` as a view. `data` must contain at least
    /// `(rows−1)·stride + cols` elements.
    pub fn new(data: &'a [T], rows: usize, cols: usize, stride: usize) -> Self {
        assert!(stride >= cols, "stride {stride} < cols {cols}");
        if rows > 0 {
            assert!(
                data.len() >= (rows - 1) * stride + cols,
                "buffer too small for {rows}x{cols} view with stride {stride}"
            );
        }
        MatrixView {
            data,
            rows,
            cols,
            stride,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [T] {
        debug_assert!(i < self.rows);
        &self.data[i * self.stride..i * self.stride + self.cols]
    }

    /// A sub-view of this view.
    pub fn sub(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> MatrixView<'a, T> {
        assert!(
            row0 + rows <= self.rows && col0 + cols <= self.cols,
            "sub-view out of range"
        );
        MatrixView::new(
            &self.data[row0 * self.stride + col0..],
            rows,
            cols,
            self.stride,
        )
    }

    /// Copy into a new owned matrix.
    pub fn to_owned_matrix(&self) -> crate::matrix::Matrix<T> {
        crate::matrix::Matrix::from_fn(self.rows, self.cols, |i, j| self[(i, j)])
    }
}

impl<T: Scalar> Index<(usize, usize)> for MatrixView<'_, T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.stride + j]
    }
}

/// A mutable view of a `rows × cols` block inside a row-major buffer.
pub struct MatrixViewMut<'a, T = f64> {
    data: &'a mut [T],
    rows: usize,
    cols: usize,
    stride: usize,
}

impl<'a, T: Scalar> MatrixViewMut<'a, T> {
    /// Wrap `data` as a mutable view (same size contract as
    /// [`MatrixView::new`]).
    pub fn new(data: &'a mut [T], rows: usize, cols: usize, stride: usize) -> Self {
        assert!(stride >= cols, "stride {stride} < cols {cols}");
        if rows > 0 {
            assert!(
                data.len() >= (rows - 1) * stride + cols,
                "buffer too small for {rows}x{cols} view with stride {stride}"
            );
        }
        MatrixViewMut {
            data,
            rows,
            cols,
            stride,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.stride + j]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.stride + j]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.stride..i * self.stride + self.cols]
    }

    /// Reborrow as an immutable view.
    pub fn as_view(&self) -> MatrixView<'_, T> {
        MatrixView::new(self.data, self.rows, self.cols, self.stride)
    }
}

#[cfg(test)]
mod tests {
    use crate::matrix::Matrix;

    #[test]
    fn view_indexes_with_stride() {
        let m = Matrix::from_fn(4, 6, |i, j| (i * 6 + j) as f64);
        let v = m.block(1, 2, 2, 3);
        assert_eq!(v.rows(), 2);
        assert_eq!(v.cols(), 3);
        assert_eq!(v[(0, 0)], 8.0);
        assert_eq!(v[(1, 2)], 16.0);
        assert_eq!(v.row(1), &[14.0, 15.0, 16.0]);
    }

    #[test]
    fn sub_view_composes() {
        let m = Matrix::from_fn(5, 5, |i, j| (i * 5 + j) as f64);
        let v = m.block(1, 1, 4, 4).sub(1, 2, 2, 1);
        assert_eq!(v[(0, 0)], m[(2, 3)]);
        assert_eq!(v[(1, 0)], m[(3, 3)]);
    }

    #[test]
    fn to_owned_copies() {
        let m = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        let o = m.block(0, 1, 2, 2).to_owned_matrix();
        assert_eq!(o[(0, 0)], 1.0);
        assert_eq!(o[(1, 1)], 3.0);
    }

    #[test]
    fn mut_view_writes_through() {
        let mut m = Matrix::<f64>::zeros(3, 3);
        {
            let mut v = m.view_mut();
            *v.at_mut(1, 2) = 7.0;
            v.row_mut(0)[1] = 3.0;
            assert_eq!(v.get(1, 2), 7.0);
        }
        assert_eq!(m[(1, 2)], 7.0);
        assert_eq!(m[(0, 1)], 3.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_sub_view_panics() {
        let m = Matrix::<f64>::zeros(3, 3);
        let _ = m.block(0, 0, 3, 3).sub(1, 1, 3, 1);
    }

    #[test]
    fn zero_row_view_is_ok() {
        let m = Matrix::<f64>::zeros(3, 3);
        let v = m.block(1, 1, 0, 2);
        assert_eq!(v.rows(), 0);
    }
}
