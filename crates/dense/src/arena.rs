//! Reusable packed-panel workspace arena.
//!
//! Every packed kernel call needs scratch buffers for micro-panel packs
//! (`A`-blocks, `B`-panels, Cholesky panels). Allocating them fresh per
//! call — the pre-arena behaviour — put an allocator round-trip and a
//! page-fault warm-up on every kernel invocation, multiplied by every
//! worker; in the simulated-machine runs the same shapes recur thousands
//! of times, so the steady state should allocate **nothing**.
//!
//! The arena is two-tiered because the runtime's workers are *scoped*
//! threads that die at the end of every parallel region:
//!
//! * a **thread-local cache** serves checkouts and check-ins with no
//!   synchronization (the hot path), and
//! * a **process-global pool** backs it: when a scoped worker exits, its
//!   thread-local destructor drains the cache into the pool, and the
//!   next region's fresh workers pull those buffers back out.
//!
//! Buffers are grow-only and reset-not-freed: a checkout guarantees
//! *capacity*, never zeroes contents (the pack routines fully initialize
//! what they use), and a returned buffer keeps its backing storage.
//! Hit/miss/alloc-bytes counters flush into [`crate::stats`], so the
//! trace binary and the scaling bench can prove the steady state: after
//! warm-up, `arena_misses` and `arena_alloc_bytes` deltas are zero.

use crate::scalar::Scalar;
use crate::stats;
use std::any::Any;
use std::cell::RefCell;
use std::sync::Mutex;

/// Cap on pooled buffers so pathological workloads (many distinct huge
/// shapes) cannot hoard unbounded memory; beyond this, returned buffers
/// are simply freed.
const GLOBAL_POOL_CAP: usize = 64;

/// Buffers surrendered by exiting worker threads, type-erased (`Vec<f64>`
/// and `Vec<f32>` coexist; checkout filters by downcast).
static GLOBAL_POOL: Mutex<Vec<Box<dyn Any + Send>>> = Mutex::new(Vec::new());

struct LocalArena {
    slots: Vec<Box<dyn Any + Send>>,
}

impl Drop for LocalArena {
    fn drop(&mut self) {
        // Scoped workers die at the end of every parallel region; park
        // their cached buffers in the process pool so the next region's
        // workers start warm instead of re-allocating.
        let mut pool = GLOBAL_POOL.lock().unwrap_or_else(|e| e.into_inner());
        while pool.len() < GLOBAL_POOL_CAP {
            match self.slots.pop() {
                Some(b) => pool.push(b),
                None => break,
            }
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalArena> = RefCell::new(LocalArena { slots: Vec::new() });
}

/// A packed-panel scratch buffer checked out of the arena. Returns its
/// storage to the calling thread's cache on drop (or, if the thread is
/// already tearing down, to the global pool).
pub struct PackBuf<T: Scalar> {
    vec: Vec<T>,
}

impl<T: Scalar> PackBuf<T> {
    /// The underlying vector, for pack routines that manage length
    /// themselves (capacity was pre-reserved at checkout, so in the
    /// steady state they never trigger a reallocation).
    pub fn vec_mut(&mut self) -> &mut Vec<T> {
        &mut self.vec
    }

    /// A mutable slice of exactly `len` elements, growing (zero-filling
    /// new storage) or truncating as needed. Existing contents are
    /// **stale** — callers must fully overwrite what they read; the
    /// shared-pack packers do.
    pub fn resized(&mut self, len: usize) -> &mut [T] {
        if self.vec.len() < len {
            reserve_counted(&mut self.vec, len);
            self.vec.resize(len, T::zero());
        } else {
            self.vec.truncate(len);
        }
        &mut self.vec[..]
    }
}

impl<T: Scalar> Drop for PackBuf<T> {
    fn drop(&mut self) {
        let vec = std::mem::take(&mut self.vec);
        if vec.capacity() == 0 {
            return;
        }
        let mut slot: Option<Box<dyn Any + Send>> = Some(Box::new(vec));
        // `try_with` because a PackBuf may be dropped while the thread's
        // TLS is being destroyed; fall back to the global pool directly.
        let _ = LOCAL.try_with(|l| {
            if let Some(b) = slot.take() {
                l.borrow_mut().slots.push(b);
            }
        });
        if let Some(b) = slot {
            let mut pool = GLOBAL_POOL.lock().unwrap_or_else(|e| e.into_inner());
            if pool.len() < GLOBAL_POOL_CAP {
                pool.push(b);
            }
        }
    }
}

/// Grow `vec`'s capacity to at least `len`, charging the allocation to
/// the arena counters. (A `Vec` realloc allocates a fresh block of the
/// full new size, so the whole target is charged, not the increment.)
fn reserve_counted<T: Scalar>(vec: &mut Vec<T>, len: usize) {
    if vec.capacity() < len {
        stats::add_arena_alloc_bytes(len * std::mem::size_of::<T>());
        vec.reserve_exact(len - vec.len());
    }
}

/// Check a scratch buffer with capacity for at least `len` elements of
/// `T` out of the arena: best-fit from the thread-local cache, then the
/// global pool, then (a counted miss) a fresh allocation. The buffer's
/// *contents* are unspecified; only capacity is guaranteed.
pub fn acquire<T: Scalar>(len: usize) -> PackBuf<T> {
    if let Some(vec) = take_best_fit::<T>(len) {
        stats::add_arena_hit();
        let mut vec = vec;
        reserve_counted(&mut vec, len);
        return PackBuf { vec };
    }
    stats::add_arena_miss();
    let mut vec = Vec::new();
    reserve_counted(&mut vec, len);
    PackBuf { vec }
}

/// Best-fit extraction: the smallest cached `Vec<T>` whose capacity
/// covers `len`, else the largest available (it will grow once and then
/// stick). Local cache first, global pool second.
fn take_best_fit<T: Scalar>(len: usize) -> Option<Vec<T>> {
    let local = LOCAL
        .try_with(|l| take_from(&mut l.borrow_mut().slots, len))
        .ok()
        .flatten();
    if local.is_some() {
        return local;
    }
    let mut pool = GLOBAL_POOL.lock().unwrap_or_else(|e| e.into_inner());
    take_from(&mut pool, len)
}

fn take_from<T: Scalar>(slots: &mut Vec<Box<dyn Any + Send>>, len: usize) -> Option<Vec<T>> {
    let mut best: Option<(usize, usize, bool)> = None; // (idx, cap, fits)
    for (i, slot) in slots.iter().enumerate() {
        let Some(v) = slot.downcast_ref::<Vec<T>>() else {
            continue;
        };
        let cap = v.capacity();
        let fits = cap >= len;
        let better = match best {
            None => true,
            // Prefer any fitting buffer over any non-fitting one; among
            // fitting ones the smallest, among non-fitting the largest.
            Some((_, bcap, bfits)) => match (fits, bfits) {
                (true, false) => true,
                (false, true) => false,
                (true, true) => cap < bcap,
                (false, false) => cap > bcap,
            },
        };
        if better {
            best = Some((i, cap, fits));
        }
    }
    let (idx, _, _) = best?;
    let boxed = slots.swap_remove(idx);
    Some(*boxed.downcast::<Vec<T>>().expect("type checked above"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::kernel_stats;

    #[test]
    fn second_checkout_reuses_storage() {
        // Use a size no other test plausibly uses so the concurrent test
        // harness cannot steal the buffer between our two checkouts.
        const LEN: usize = 12_345;
        {
            let mut b = acquire::<f64>(LEN);
            b.resized(LEN)[0] = 1.0;
        }
        let before = kernel_stats();
        {
            let mut b = acquire::<f64>(LEN);
            assert!(b.vec_mut().capacity() >= LEN);
        }
        let d = kernel_stats().since(&before);
        assert_eq!(d.arena_alloc_bytes, 0, "steady state must not allocate");
        assert!(d.arena_hits >= 1);
    }

    #[test]
    fn resized_truncates_and_grows() {
        let mut b = acquire::<f64>(16);
        assert_eq!(b.resized(16).len(), 16);
        assert_eq!(b.resized(4).len(), 4);
        assert_eq!(b.resized(32).len(), 32);
    }

    #[test]
    fn distinct_scalar_types_do_not_cross() {
        {
            let mut b = acquire::<f32>(777);
            b.resized(777).fill(2.0f32);
        }
        // An f64 checkout must not receive the f32 buffer.
        let mut b = acquire::<f64>(777);
        assert!(b.vec_mut().capacity() >= 777);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let mut slots: Vec<Box<dyn Any + Send>> = vec![
            Box::new(Vec::<f64>::with_capacity(100)),
            Box::new(Vec::<f64>::with_capacity(50)),
            Box::new(Vec::<f64>::with_capacity(10)),
        ];
        let got = take_from::<f64>(&mut slots, 40).unwrap();
        assert_eq!(got.capacity(), 50);
        // Nothing fits 1000: take the largest.
        let got = take_from::<f64>(&mut slots, 1000).unwrap();
        assert_eq!(got.capacity(), 100);
    }
}
