//! 1-D block partitions with remainder handling.

use std::ops::Range;

/// An even partition of `0..n` into `parts` contiguous blocks whose sizes
/// differ by at most one (the first `n mod parts` blocks get the extra
/// element) — the distribution used for "evenly divided" data in the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition1D {
    n: usize,
    parts: usize,
}

impl Partition1D {
    /// Partition `0..n` into `parts` blocks.
    pub fn new(n: usize, parts: usize) -> Self {
        assert!(parts >= 1, "a partition needs at least one part");
        Partition1D { n, parts }
    }

    /// Total length being partitioned.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of blocks.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// The index range of block `q`.
    pub fn range(&self, q: usize) -> Range<usize> {
        assert!(q < self.parts, "block {q} out of {} parts", self.parts);
        let base = self.n / self.parts;
        let extra = self.n % self.parts;
        let start = q * base + q.min(extra);
        let len = base + usize::from(q < extra);
        start..start + len
    }

    /// Length of block `q`.
    pub fn len(&self, q: usize) -> usize {
        self.range(q).len()
    }

    /// Whether the partitioned range is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The block containing index `i`.
    pub fn owner(&self, i: usize) -> usize {
        assert!(i < self.n, "index {i} out of range {}", self.n);
        let base = self.n / self.parts;
        let extra = self.n % self.parts;
        let big = (base + 1) * extra; // total elements in the larger blocks
        if i < big {
            i / (base + 1)
        } else {
            extra + (i - big) / base
        }
    }

    /// All block sizes, indexed by block.
    pub fn lens(&self) -> Vec<usize> {
        (0..self.parts).map(|q| self.len(q)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let p = Partition1D::new(12, 4);
        assert_eq!(p.range(0), 0..3);
        assert_eq!(p.range(3), 9..12);
        assert!(p.lens().iter().all(|&l| l == 3));
    }

    #[test]
    fn remainder_goes_to_leading_blocks() {
        let p = Partition1D::new(10, 4);
        assert_eq!(p.lens(), vec![3, 3, 2, 2]);
        assert_eq!(p.range(1), 3..6);
        assert_eq!(p.range(2), 6..8);
    }

    #[test]
    fn ranges_tile_the_interval() {
        for n in [0, 1, 5, 17, 100] {
            for parts in [1, 2, 3, 7, 16] {
                let p = Partition1D::new(n, parts);
                let mut next = 0;
                for q in 0..parts {
                    let r = p.range(q);
                    assert_eq!(r.start, next, "n={n} parts={parts} q={q}");
                    next = r.end;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn owner_inverts_range() {
        for n in [1, 9, 30] {
            for parts in [1, 4, 7] {
                let p = Partition1D::new(n, parts);
                for i in 0..n {
                    let q = p.owner(i);
                    assert!(p.range(q).contains(&i), "n={n} parts={parts} i={i} q={q}");
                }
            }
        }
    }

    #[test]
    fn more_parts_than_elements() {
        let p = Partition1D::new(2, 5);
        assert_eq!(p.lens(), vec![1, 1, 0, 0, 0]);
        assert_eq!(p.owner(1), 1);
    }
}
