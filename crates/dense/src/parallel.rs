//! Scoped worker-pool parallelism for the dense kernels.
//!
//! The workspace builds without external crates, so the rayon layer the
//! kernels used to sit on is replaced by a small scoped pool: tasks are
//! drained from a shared queue by `std::thread::scope` workers. Two knobs
//! control the thread count:
//!
//! * the `SYRK_NUM_THREADS` environment variable, and
//! * a process-wide budget set by [`limit_threads`], which the simulated
//!   machine uses to split hardware threads fairly across its ranks
//!   (each of `P` rank threads runs kernels with `available/P` workers
//!   instead of oversubscribing `P × available`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide thread budget; 0 means "unset, use the hardware count".
static THREAD_BUDGET: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads a kernel may use right now: the active
/// [`limit_threads`] budget if one is set, else `SYRK_NUM_THREADS`, else
/// the hardware parallelism.
pub fn available_threads() -> usize {
    let budget = THREAD_BUDGET.load(Ordering::Relaxed);
    if budget != 0 {
        return budget;
    }
    if let Some(n) = std::env::var("SYRK_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// RAII guard restoring the previous thread budget on drop.
#[must_use = "the budget is restored when the guard drops"]
#[derive(Debug)]
pub struct ThreadBudgetGuard {
    prev: usize,
}

impl Drop for ThreadBudgetGuard {
    fn drop(&mut self) {
        THREAD_BUDGET.store(self.prev, Ordering::Relaxed);
    }
}

/// Cap kernel parallelism at `n` threads until the returned guard drops.
/// The budget is process-wide (it must reach the machine's rank threads,
/// which a thread-local could not), so nesting different budgets from
/// concurrent callers is last-writer-wins — acceptable because the budget
/// only affects performance, never results.
pub fn limit_threads(n: usize) -> ThreadBudgetGuard {
    let prev = THREAD_BUDGET.swap(n.max(1), Ordering::Relaxed);
    ThreadBudgetGuard { prev }
}

/// The per-rank kernel thread budget for a machine run with `p` ranks:
/// the caller's [`available_threads`] budget split evenly, at least one
/// each. Deriving from `available_threads` (not raw hardware) lets an
/// outer [`limit_threads`] guard cap a whole simulated run — e.g. pinning
/// every rank to one kernel worker for reproducible timelines.
pub fn machine_thread_budget(p: usize) -> usize {
    (available_threads() / p.max(1)).max(1)
}

/// Run `f(index, task)` for every task, on up to [`available_threads`]
/// scoped workers. Tasks are handed out in order from a shared queue, so
/// early (typically larger) tasks start first; with one worker or one
/// task everything runs inline on the caller's thread. Panics in workers
/// propagate to the caller.
pub fn par_for_each_task<T, F>(tasks: Vec<T>, f: F)
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    let workers = available_threads().min(tasks.len());
    if workers <= 1 {
        for (i, t) in tasks.into_iter().enumerate() {
            f(i, t);
        }
        return;
    }
    let queue = Mutex::new(tasks.into_iter().enumerate());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| loop {
                    let next = queue.lock().unwrap_or_else(|e| e.into_inner()).next();
                    match next {
                        Some((i, t)) => f(i, t),
                        None => break,
                    }
                })
            })
            .collect();
        // Join explicitly so a worker's panic payload reaches the caller
        // (scope's implicit join replaces it with a generic message).
        let mut first_panic = None;
        for h in handles {
            if let Err(e) = h.join() {
                first_panic.get_or_insert(e);
            }
        }
        if let Some(e) = first_panic {
            std::panic::resume_unwind(e);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn budget_guard_restores() {
        let before = available_threads();
        {
            let _g = limit_threads(1);
            assert_eq!(available_threads(), 1);
            {
                let _g2 = limit_threads(3);
                assert_eq!(available_threads(), 3);
            }
            assert_eq!(available_threads(), 1);
        }
        assert_eq!(available_threads(), before);
    }

    #[test]
    fn machine_budget_never_zero() {
        assert!(machine_thread_budget(1) >= 1);
        assert!(machine_thread_budget(1000) >= 1);
    }

    #[test]
    fn par_for_each_runs_every_task_once() {
        let sum = AtomicU64::new(0);
        let tasks: Vec<u64> = (1..=100).collect();
        par_for_each_task(tasks, |i, t| {
            assert_eq!(i as u64 + 1, t);
            sum.fetch_add(t, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn par_for_each_disjoint_mutation() {
        let mut data = vec![0u64; 64];
        let chunks: Vec<&mut [u64]> = data.chunks_mut(8).collect();
        par_for_each_task(chunks, |i, chunk| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = (i * 8 + j) as u64;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    #[should_panic(expected = "task boom")]
    fn worker_panic_propagates() {
        let _g = limit_threads(2);
        par_for_each_task(vec![0usize; 8], |i, _| {
            if i == 5 {
                panic!("task boom");
            }
        });
    }
}
