//! Work-stealing kernel runtime for the dense kernels.
//!
//! The workspace builds without external crates, so the rayon layer the
//! kernels used to sit on is replaced by an in-repo runtime. Earlier
//! revisions drained one `Mutex<VecDeque>` shared by every worker, which
//! serialized task handout exactly when the flop-balanced chunks of
//! [`crate::schedule`] were supposed to scale; the current runtime uses
//! **per-worker deques with work stealing**:
//!
//! * tasks are dealt to per-worker deques up front (contiguous blocks,
//!   so neighbouring chunks stay on one worker's cache),
//! * each worker pops its own deque **LIFO** (newest first, cache-warm),
//! * an idle worker picks a victim by an atomic round-robin counter and
//!   steals **FIFO** (oldest first — the task its owner would reach
//!   last, and the coarsest remaining granularity),
//! * the caller participates as worker 0, so a `workers == 1` run stays
//!   on the calling thread with no handoff at all.
//!
//! Tasks never spawn subtasks, so termination is simple: a worker exits
//! after a full sweep finds every deque empty. Steal counts are flushed
//! to [`crate::stats`] for the trace binary; every run also meters
//! `syrk_tasks_scheduled` / `syrk_tasks_run` and the `syrk_queue_depth`
//! gauge on the telemetry registry, and — when the flight recorder is
//! enabled — records a wall-clock span per task and an instant event per
//! steal. This runtime has no parker: idle workers exit after one empty
//! sweep instead of blocking, so there are no park/unpark events to meter
//! (DESIGN.md §9 records the deviation from the issue's wish list).
//!
//! Two knobs control the thread count:
//!
//! * the `SYRK_NUM_THREADS` environment variable (parsed **once** into a
//!   `OnceLock` — it used to be re-read and re-parsed on every call from
//!   the hot scheduling path), and
//! * a process-wide budget set by [`limit_threads`], which the simulated
//!   machine uses to split hardware threads fairly across its ranks
//!   (each of `P` rank threads runs kernels with `available/P` workers
//!   instead of oversubscribing `P × available`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use syrk_telemetry::flight::{self, FlightKind};

/// Process-wide thread budget; 0 means "unset, use the hardware count".
static THREAD_BUDGET: AtomicUsize = AtomicUsize::new(0);

/// Parse a `SYRK_NUM_THREADS` value: a positive integer, or `None` for
/// anything invalid (`0`, negatives, non-numeric) — the caller then falls
/// back to the hardware count instead of propagating garbage.
pub(crate) fn parse_thread_count(s: &str) -> Option<usize> {
    s.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// The `SYRK_NUM_THREADS` override, read and parsed exactly once per
/// process. [`available_threads`] sits on the scheduling hot path, and
/// `std::env::var` + parse per call was measurable overhead; the
/// environment of a running process is ours, so caching is safe.
fn env_thread_override() -> Option<usize> {
    static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();
    *ENV_THREADS.get_or_init(|| {
        std::env::var("SYRK_NUM_THREADS")
            .ok()
            .as_deref()
            .and_then(parse_thread_count)
    })
}

/// The host's hardware thread count (what `std::thread` reports), before
/// any budget or environment override. Bench metadata records this next
/// to the *effective* [`available_threads`] so a thread-starved host is
/// distinguishable from a capped run.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of worker threads a kernel may use right now: the active
/// [`limit_threads`] budget if one is set, else `SYRK_NUM_THREADS`, else
/// the hardware parallelism.
pub fn available_threads() -> usize {
    let budget = THREAD_BUDGET.load(Ordering::Relaxed);
    if budget != 0 {
        return budget;
    }
    if let Some(n) = env_thread_override() {
        return n;
    }
    hardware_threads()
}

/// RAII guard restoring the previous thread budget on drop.
#[must_use = "the budget is restored when the guard drops"]
#[derive(Debug)]
pub struct ThreadBudgetGuard {
    prev: usize,
}

impl Drop for ThreadBudgetGuard {
    fn drop(&mut self) {
        THREAD_BUDGET.store(self.prev, Ordering::Relaxed);
    }
}

/// Cap kernel parallelism at `n` threads until the returned guard drops.
/// The budget is process-wide (it must reach the machine's rank threads,
/// which a thread-local could not), so nesting different budgets from
/// concurrent callers is last-writer-wins — acceptable because the budget
/// only affects performance, never results.
pub fn limit_threads(n: usize) -> ThreadBudgetGuard {
    let prev = THREAD_BUDGET.swap(n.max(1), Ordering::Relaxed);
    ThreadBudgetGuard { prev }
}

/// The per-rank kernel thread budget for a machine run with `p` ranks:
/// the caller's [`available_threads`] budget split evenly, at least one
/// each. Deriving from `available_threads` (not raw hardware) lets an
/// outer [`limit_threads`] guard cap a whole simulated run — e.g. pinning
/// every rank to one kernel worker for reproducible timelines.
pub fn machine_thread_budget(p: usize) -> usize {
    (available_threads() / p.max(1)).max(1)
}

/// Stealable-task oversubscription: chunks created per worker so thieves
/// have granularity to balance with. ×4 keeps chunks large enough that
/// per-chunk loop overhead stays negligible while a worker that finishes
/// early still finds work to steal.
pub const TASKS_PER_WORKER: usize = 4;

/// How many flop-balanced chunks a driver should create for `workers`
/// workers under the stealing runtime: oversubscribed by
/// [`TASKS_PER_WORKER`] when parallel, a single chunk when serial (the
/// inline path has nobody to steal from).
pub fn steal_task_count(workers: usize) -> usize {
    if workers > 1 {
        workers * TASKS_PER_WORKER
    } else {
        1
    }
}

/// One worker's end of the task pool: a deque the owner pops LIFO and
/// thieves pop FIFO. A `Mutex<VecDeque>` per worker (instead of one
/// global lock) keeps the common case — owner popping its own work —
/// contention-free; steals are rare and touch one victim at a time.
struct WorkerDeque<T> {
    tasks: Mutex<VecDeque<(usize, T)>>,
}

impl<T> WorkerDeque<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<(usize, T)>> {
        // A panicking worker never holds the lock across user code, so a
        // poisoned mutex still guards a consistent deque.
        self.tasks.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Owner path: newest task first.
    fn pop_own(&self) -> Option<(usize, T)> {
        self.lock().pop_back()
    }

    /// Thief path: oldest task first.
    fn steal(&self) -> Option<(usize, T)> {
        self.lock().pop_front()
    }
}

/// Run `f(index, task)` for every task on up to [`available_threads`]
/// work-stealing workers (the caller is worker 0). With one worker or
/// one task everything runs inline on the caller's thread. Which worker
/// runs which task is nondeterministic under stealing; callers must make
/// task *results* placement-determined (disjoint `&mut` output chunks,
/// fixed per-element accumulation order), which every kernel driver in
/// this crate does. Panics in workers propagate to the caller.
pub fn par_for_each_task<T, F>(tasks: Vec<T>, f: F)
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    // One flight-recorded, counter-metered task execution. The counters
    // are relaxed atomics (one inc per task, tasks are coarse); the
    // flight span costs two `Instant` reads only while recording.
    let run_task = |i: usize, t: T| {
        if flight::is_enabled() {
            let t0 = flight::now_ns();
            f(i, t);
            flight::record(FlightKind::Task, t0, flight::now_ns(), i as u64);
        } else {
            f(i, t);
        }
        crate::stats::add_task_run();
    };

    let workers = available_threads().min(tasks.len());
    crate::stats::add_tasks_scheduled(tasks.len() as u64);
    if workers <= 1 {
        for (i, t) in tasks.into_iter().enumerate() {
            run_task(i, t);
        }
        return;
    }

    // Deal contiguous blocks of tasks to the worker deques, pushed in
    // reverse so the owner's LIFO pop walks its block front-to-back and
    // a thief's FIFO steal takes the block's tail first.
    let total = tasks.len();
    let mut deques: Vec<WorkerDeque<T>> = (0..workers)
        .map(|_| WorkerDeque {
            tasks: Mutex::new(VecDeque::new()),
        })
        .collect();
    for (i, t) in tasks.into_iter().enumerate().rev() {
        let w = i * workers / total;
        deques[w].tasks.get_mut().unwrap().push_back((i, t));
    }
    let deques = &deques;
    let steal_hint = AtomicUsize::new(0);
    let steal_hint = &steal_hint;
    let run_task = &run_task;

    let run_worker = move |me: usize| {
        let mut steals = 0u64;
        'work: loop {
            // Drain own deque LIFO.
            while let Some((i, t)) = deques[me].pop_own() {
                run_task(i, t);
            }
            // Steal FIFO from a round-robin victim. Tasks never spawn
            // subtasks, so a full empty sweep means the pool is drained.
            let start = steal_hint.fetch_add(1, Ordering::Relaxed);
            for off in 0..workers {
                let victim = (start + off) % workers;
                if victim == me {
                    continue;
                }
                if let Some((i, t)) = deques[victim].steal() {
                    steals += 1;
                    flight::instant(FlightKind::Steal, victim as u64);
                    run_task(i, t);
                    continue 'work;
                }
            }
            break;
        }
        crate::stats::add_steals(steals);
    };

    std::thread::scope(|s| {
        let handles: Vec<_> = (1..workers)
            .map(|w| s.spawn(move || run_worker(w)))
            .collect();
        run_worker(0);
        // Join explicitly so a worker's panic payload reaches the caller
        // (scope's implicit join replaces it with a generic message).
        let mut first_panic = None;
        for h in handles {
            if let Err(e) = h.join() {
                first_panic.get_or_insert(e);
            }
        }
        if let Some(e) = first_panic {
            std::panic::resume_unwind(e);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn budget_guard_restores() {
        let before = available_threads();
        {
            let _g = limit_threads(1);
            assert_eq!(available_threads(), 1);
            {
                let _g2 = limit_threads(3);
                assert_eq!(available_threads(), 3);
            }
            assert_eq!(available_threads(), 1);
        }
        assert_eq!(available_threads(), before);
    }

    #[test]
    fn machine_budget_never_zero() {
        assert!(machine_thread_budget(1) >= 1);
        assert!(machine_thread_budget(1000) >= 1);
    }

    #[test]
    fn thread_env_parser_rejects_garbage() {
        // Invalid values fall back to `None` (→ hardware count) instead
        // of being silently re-parsed — and never panic.
        for bad in [
            "0",
            "-3",
            "abc",
            "",
            "  ",
            "1.5",
            "0x4",
            "18446744073709551616",
        ] {
            assert_eq!(parse_thread_count(bad), None, "{bad:?} must be rejected");
        }
        assert_eq!(parse_thread_count("1"), Some(1));
        assert_eq!(parse_thread_count(" 8 "), Some(8));
    }

    #[test]
    fn env_override_is_cached() {
        // Whatever the ambient environment, repeated reads must agree:
        // the OnceLock answers every call after the first without
        // touching the environment again.
        let first = env_thread_override();
        for _ in 0..100 {
            assert_eq!(env_thread_override(), first);
        }
    }

    #[test]
    fn steal_task_count_scales_with_workers() {
        assert_eq!(steal_task_count(1), 1);
        assert_eq!(steal_task_count(2), 2 * TASKS_PER_WORKER);
        assert_eq!(steal_task_count(8), 8 * TASKS_PER_WORKER);
    }

    #[test]
    fn par_for_each_runs_every_task_once() {
        let sum = AtomicU64::new(0);
        let tasks: Vec<u64> = (1..=100).collect();
        par_for_each_task(tasks, |i, t| {
            assert_eq!(i as u64 + 1, t);
            sum.fetch_add(t, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn par_for_each_runs_every_task_once_under_stealing() {
        // Uneven task durations force steals; every index must still be
        // executed exactly once.
        let _g = limit_threads(4);
        let counts: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        let tasks: Vec<usize> = (0..64).collect();
        par_for_each_task(tasks, |i, t| {
            assert_eq!(i, t);
            if t % 7 == 0 {
                // Skewed work so fast workers go stealing.
                std::hint::black_box((0..20_000).sum::<u64>());
            }
            counts[t].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "task {i} ran wrong number of times"
            );
        }
    }

    #[test]
    fn par_for_each_disjoint_mutation() {
        let mut data = vec![0u64; 64];
        let chunks: Vec<&mut [u64]> = data.chunks_mut(8).collect();
        par_for_each_task(chunks, |i, chunk| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = (i * 8 + j) as u64;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    #[should_panic(expected = "task boom")]
    fn worker_panic_propagates() {
        let _g = limit_threads(2);
        par_for_each_task(vec![0usize; 8], |i, _| {
            if i == 5 {
                panic!("task boom");
            }
        });
    }
}
