//! Local symmetric rank-k update kernels: `C += A·Aᵀ` (lower triangle).
//!
//! These are the *sequential building blocks* the distributed algorithms
//! call on each rank (`Local-SYRK` in Algorithms 1–3). The symmetry of the
//! output halves the flops relative to GEMM: computing the inclusive lower
//! triangle of `A·Aᵀ` for `A: n×k` takes `n(n+1)·k` flops instead of
//! `2n²k`.
//!
//! The packed kernel shares the register-blocked machinery of
//! [`crate::microkernel`], with geometry taken from the dispatched
//! [`crate::microkernel::KernelSpec`]: per `kc`-wide panel of `A`,
//! k-major [`SharedPack`]s of all rows serve the two sides of the
//! product **across every worker** — row blocks are packed
//! cooperatively, each exactly once behind a publication flag, instead
//! of serially by the caller or redundantly per chunk. When the
//! dispatched tile is square (`mr == nr`, the scalar spec) *one* shared
//! pack feeds both operands of every register tile; rectangular SIMD
//! tiles keep a second pack at lane width `nr` for the column side.
//! Threads work-steal flop-balanced row chunks of the packed triangle
//! (see [`crate::schedule`] — row `i` costs `Θ(i·k)`, so an even row
//! split would be badly skewed), pulling pack buffers from the workspace
//! [`crate::arena`] so the steady state allocates nothing. Diagonal
//! register tiles are computed in full and stored clamped to `j ≤ i`
//! (or `j < i`); the scalar-ISA f64 path uses the dual-panel wide
//! microkernel away from chunk tails.

use crate::arena;
use crate::matrix::Matrix;
use crate::microkernel::{flatten_acc, microkernel_wide, MAX_ACC, MR, NR};
use crate::pack::{pack_rows_into, packed_panel_len, SharedPack};
use crate::packed::{Diag, PackedLower};
use crate::parallel::{available_threads, par_for_each_task, steal_task_count};
use crate::scalar::Scalar;
use crate::schedule::balanced_triangle_chunks;
use std::ops::Range;

/// Flops to compute the inclusive lower triangle of `A·Aᵀ`, `A: n×k`
/// (one multiply + one add per iteration point; `n(n+1)/2 · 2k`).
pub fn syrk_flops(n: usize, k: usize) -> u64 {
    (n as u64) * (n as u64 + 1) * (k as u64)
}

/// Flops to compute only the strict lower triangle (`n(n−1)/2 · 2k`),
/// the quantity Lemma 5 and Theorem 1 reason about.
pub fn syrk_strict_flops(n: usize, k: usize) -> u64 {
    (n as u64) * (n as u64).saturating_sub(1) * (k as u64)
}

/// Reference kernel: dense `C += A·Aᵀ` writing only entries with `j ≤ i`.
/// The strict upper triangle of `C` is left untouched.
pub fn syrk_lower_ref<T: Scalar>(c: &mut Matrix<T>, a: &Matrix<T>) {
    let (n, _k) = a.shape();
    assert_eq!(c.shape(), (n, n), "syrk: C must be n×n");
    for i in 0..n {
        let arow = a.row(i);
        for j in 0..=i {
            let brow = a.row(j);
            let mut acc = T::zero();
            for (&x, &y) in arow.iter().zip(brow) {
                acc = x.mul_add(y, acc);
            }
            c[(i, j)] += acc;
        }
    }
}

/// Offset of packed row `i` and its first column bound for `diag`.
#[inline]
fn row_off(diag: Diag, i: usize) -> usize {
    match diag {
        Diag::Inclusive => i * (i + 1) / 2,
        Diag::Strict => i * i.saturating_sub(1) / 2,
    }
}

#[inline]
fn row_end(diag: Diag, i: usize) -> usize {
    match diag {
        Diag::Inclusive => i + 1,
        Diag::Strict => i,
    }
}

/// Add the leading `rr` rows of the row-major `acc` tile (row stride
/// `nr`) into the packed chunk slice `cbuf` (whose first element is
/// packed offset `base`), clamping each row to its `diag` column bound.
#[inline]
#[allow(clippy::too_many_arguments)]
fn store_packed_tile<T: Scalar>(
    diag: Diag,
    base: usize,
    cbuf: &mut [T],
    acc: &[T],
    nr: usize,
    it: usize,
    rr: usize,
    j0: usize,
) {
    // Store row by row: packed rows are contiguous, and tiles straddling
    // the diagonal clamp to the row's column bound.
    for u in 0..rr {
        let i = it + u;
        let jend = (j0 + nr).min(row_end(diag, i));
        if jend <= j0 {
            continue;
        }
        let off = row_off(diag, i) - base + j0;
        let dst = &mut cbuf[off..off + jend - j0];
        for (d, &v) in dst.iter_mut().zip(&acc[u * nr..]) {
            *d += v;
        }
    }
}

/// Shared packed-triangle driver for SYRK (`b = None`, `C += A·Aᵀ`) and
/// SYR2K (`b = Some`, `C += A·Bᵀ + B·Aᵀ`). `kc`-panel loop outside,
/// flop-balanced work-stolen row chunks inside; every packed entry is
/// accumulated in ascending-k order independent of the chunking, and
/// each row block of a shared pack is packed exactly once per panel by
/// whichever worker first needs it. Square tiles (`mr == nr`) alias one
/// pack per operand matrix for both sides of the product; rectangular
/// SIMD tiles add a second pack at lane width `nr` for the column side.
pub(crate) fn packed_rank_update<T: Scalar>(
    c: &mut PackedLower<T>,
    a: &Matrix<T>,
    b: Option<&Matrix<T>>,
) {
    let (n, k) = a.shape();
    assert_eq!(c.n(), n, "packed rank update: dimension mismatch");
    if let Some(b) = b {
        assert_eq!(
            b.shape(),
            (n, k),
            "syr2k: A and B must have identical shapes"
        );
    }
    if n == 0 || k == 0 {
        return;
    }
    let d = T::dispatch();
    let (mr, nr, kc, mc) = (d.spec.mr, d.spec.nr, d.spec.kc, d.spec.mc);
    let square = mr == nr;
    // Column-side publication granularity: the smallest nr-multiple
    // covering an mc-row block (SharedPack blocks must align to lanes).
    let col_block = mc.div_ceil(nr) * nr;
    let diag = c.diag();
    let workers = available_threads();
    // Oversubscribe chunks so idle workers always find something to
    // steal; the chunk a tile lands in never affects its value.
    let chunks = balanced_triangle_chunks(n, diag, steal_task_count(workers), mr);
    let kc_cap = kc.min(k);
    let mut a_row_buf = arena::acquire::<T>(packed_panel_len(n, kc_cap, mr));
    let mut a_col_buf = (!square).then(|| arena::acquire::<T>(packed_panel_len(n, kc_cap, nr)));
    let mut b_row_buf = b.map(|_| arena::acquire::<T>(packed_panel_len(n, kc_cap, mr)));
    let mut b_col_buf =
        (b.is_some() && !square).then(|| arena::acquire::<T>(packed_panel_len(n, kc_cap, nr)));
    for p0 in (0..k).step_by(kc) {
        let pb = kc.min(k - p0);
        let cols = p0..p0 + pb;
        // Full-height shared packs publish row blocks once on first
        // demand, for all workers.
        let a_row = SharedPack::new(
            a_row_buf.resized(packed_panel_len(n, pb, mr)),
            n,
            pb,
            mr,
            mc,
        );
        let a_col = a_col_buf.as_mut().map(|buf| {
            SharedPack::new(
                buf.resized(packed_panel_len(n, pb, nr)),
                n,
                pb,
                nr,
                col_block,
            )
        });
        let b_row = b_row_buf
            .as_mut()
            .map(|buf| SharedPack::new(buf.resized(packed_panel_len(n, pb, mr)), n, pb, mr, mc));
        let b_col = b_col_buf.as_mut().map(|buf| {
            SharedPack::new(
                buf.resized(packed_panel_len(n, pb, nr)),
                n,
                pb,
                nr,
                col_block,
            )
        });
        let pack_a_row = |rows: Range<usize>, dst: &mut [T]| {
            pack_rows_into(dst, a, rows, cols.clone(), mr);
        };
        let pack_a_col = |rows: Range<usize>, dst: &mut [T]| {
            pack_rows_into(dst, a, rows, cols.clone(), nr);
        };
        let pack_b_row = |rows: Range<usize>, dst: &mut [T]| {
            pack_rows_into(dst, b.expect("b_row implies b"), rows, cols.clone(), mr);
        };
        let pack_b_col = |rows: Range<usize>, dst: &mut [T]| {
            pack_rows_into(dst, b.expect("b_col implies b"), rows, cols.clone(), nr);
        };
        // Column-side views: alias the row-side pack when tiles are
        // square, so SYRK still packs A exactly once per panel.
        let acol = a_col.as_ref().unwrap_or(&a_row);
        let bcol = b_col.as_ref().or(b_row.as_ref());
        let pack_acol: &(dyn Fn(Range<usize>, &mut [T]) + Sync) =
            if square { &pack_a_row } else { &pack_a_col };
        let pack_bcol: &(dyn Fn(Range<usize>, &mut [T]) + Sync) =
            if square { &pack_b_row } else { &pack_b_col };
        let tasks = split_triangle(c, &chunks);
        par_for_each_task(tasks, |_, (rows, cbuf)| {
            let base = row_off(diag, rows.start);
            let mut acc = [T::zero(); MAX_ACC];
            let mut acc2 = [T::zero(); MAX_ACC];
            let mut tiles = 0u64;
            let mut it = rows.start;
            while it < rows.end {
                // Dual-panel wide tiles away from the chunk tail
                // (scalar-ISA only, where mr == MR == nr == NR); SYR2K
                // keeps the narrow path (its tile fuses two products).
                let wide = d.spec.wide && b.is_none() && it + 2 * mr <= rows.end;
                let take = if wide { 2 * mr } else { mr.min(rows.end - it) };
                let colmax = row_end(diag, it + take - 1);
                a_row.ensure_rows(it..it + take, &pack_a_row);
                acol.ensure_rows(0..colmax, &pack_acol);
                if let Some(brow) = &b_row {
                    brow.ensure_rows(it..it + take, &pack_b_row);
                }
                if let Some(bc) = bcol {
                    bc.ensure_rows(0..colmax, &pack_bcol);
                }
                if wide {
                    let ap0 = a_row.panel(it);
                    let ap1 = a_row.panel(it + MR);
                    for j0 in (0..colmax).step_by(NR) {
                        let (acc0, acc1) = microkernel_wide(pb, ap0, ap1, acol.panel(j0));
                        tiles += 2;
                        flatten_acc(&acc0, &mut acc[..MR * NR]);
                        store_packed_tile(diag, base, cbuf, &acc[..MR * NR], NR, it, MR, j0);
                        flatten_acc(&acc1, &mut acc[..MR * NR]);
                        store_packed_tile(diag, base, cbuf, &acc[..MR * NR], NR, it + MR, MR, j0);
                    }
                } else {
                    for j0 in (0..colmax).step_by(nr) {
                        if let Some(bc) = bcol {
                            // A·Bᵀ tile plus B·Aᵀ tile, fused before the
                            // store (ab + ba elementwise, fixed order).
                            let brow = b_row.as_ref().expect("bcol implies b_row");
                            (d.kernel)(pb, a_row.panel(it), bc.panel(j0), &mut acc[..mr * nr]);
                            (d.kernel)(pb, brow.panel(it), acol.panel(j0), &mut acc2[..mr * nr]);
                            tiles += 2;
                            for (x, &y) in acc[..mr * nr].iter_mut().zip(&acc2[..mr * nr]) {
                                *x += y;
                            }
                        } else {
                            (d.kernel)(pb, a_row.panel(it), acol.panel(j0), &mut acc[..mr * nr]);
                            tiles += 1;
                        }
                        store_packed_tile(diag, base, cbuf, &acc[..mr * nr], nr, it, take, j0);
                    }
                }
                it += take;
            }
            crate::stats::add_microkernel_calls(d.spec.isa, tiles);
        });
    }
}

/// Split the packed buffer into per-chunk sub-slices (each chunk's rows
/// are contiguous in packed row-major order).
fn split_triangle<'c, T: Scalar>(
    c: &'c mut PackedLower<T>,
    chunks: &[Range<usize>],
) -> Vec<(Range<usize>, &'c mut [T])> {
    let diag = c.diag();
    let mut rest = c.as_mut_slice();
    let mut out = Vec::with_capacity(chunks.len());
    for r in chunks {
        let len = row_off(diag, r.end) - row_off(diag, r.start);
        let (head, tail) = rest.split_at_mut(len);
        out.push((r.clone(), head));
        rest = tail;
    }
    out
}

/// Packed kernel: accumulate the lower triangle of `A·Aᵀ` into packed
/// storage via the register-blocked driver.
pub fn syrk_packed<T: Scalar>(c: &mut PackedLower<T>, a: &Matrix<T>) {
    packed_rank_update(c, a, None);
}

/// Convenience: the lower triangle of `A·Aᵀ` as packed storage.
pub fn syrk_packed_new<T: Scalar>(a: &Matrix<T>, diag: Diag) -> PackedLower<T> {
    let mut c = PackedLower::zeros(a.rows(), diag);
    syrk_packed(&mut c, a);
    c
}

/// Sequential reference for the full SYRK product as a dense symmetric
/// matrix — the ground truth the distributed algorithms are verified
/// against.
pub fn syrk_full_reference<T: Scalar>(a: &Matrix<T>) -> Matrix<T> {
    let n = a.rows();
    let mut c = Matrix::zeros(n, n);
    syrk_lower_ref(&mut c, a);
    // Mirror to the upper triangle.
    for i in 0..n {
        for j in 0..i {
            let v = c[(i, j)];
            c[(j, i)] = v;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::mul_nt;
    use crate::rng::seeded_matrix;

    #[test]
    fn syrk_matches_gemm_lower_triangle() {
        for (n, k) in [(1, 1), (4, 2), (7, 13), (33, 65), (64, 10)] {
            let a = seeded_matrix::<f64>(n, k, n as u64 * 31 + k as u64);
            let full = mul_nt(&a, &a);
            let mut c = Matrix::zeros(n, n);
            syrk_lower_ref(&mut c, &a);
            for i in 0..n {
                for j in 0..=i {
                    assert!(
                        (c[(i, j)] - full[(i, j)]).abs() < 1e-10,
                        "n={n} k={k} ({i},{j})"
                    );
                }
                for j in i + 1..n {
                    assert_eq!(c[(i, j)], 0.0, "upper triangle must be untouched");
                }
            }
        }
    }

    #[test]
    fn packed_inclusive_matches_reference() {
        for (n, k) in [(1, 3), (5, 5), (17, 9), (40, 64), (70, 300)] {
            let a = seeded_matrix::<f64>(n, k, 7 * n as u64 + k as u64);
            let p = syrk_packed_new(&a, Diag::Inclusive);
            let mut dense = Matrix::zeros(n, n);
            syrk_lower_ref(&mut dense, &a);
            for i in 0..n {
                for j in 0..=i {
                    assert!(
                        (p.get(i, j) - dense[(i, j)]).abs() < 1e-10,
                        "n={n} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_strict_skips_diagonal() {
        let a = seeded_matrix::<f64>(6, 4, 3);
        let p = syrk_packed_new(&a, Diag::Strict);
        assert_eq!(p.len(), 15);
        let mut dense = Matrix::zeros(6, 6);
        syrk_lower_ref(&mut dense, &a);
        for i in 0..6 {
            for j in 0..i {
                assert!((p.get(i, j) - dense[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn packed_accumulates() {
        let a = seeded_matrix::<f64>(5, 3, 11);
        let mut p = syrk_packed_new(&a, Diag::Inclusive);
        syrk_packed(&mut p, &a); // second accumulation doubles everything
        let single = syrk_packed_new(&a, Diag::Inclusive);
        for (two, one) in p.as_slice().iter().zip(single.as_slice()) {
            assert!((two - 2.0 * one).abs() < 1e-10);
        }
    }

    #[test]
    fn full_reference_is_symmetric() {
        let a = seeded_matrix::<f64>(9, 4, 42);
        let c = syrk_full_reference(&a);
        for i in 0..9 {
            for j in 0..9 {
                assert_eq!(c[(i, j)], c[(j, i)]);
            }
        }
        // And equals A·Aᵀ.
        let g = mul_nt(&a, &a);
        for i in 0..9 {
            for j in 0..9 {
                assert!((c[(i, j)] - g[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn flop_formulas() {
        assert_eq!(syrk_flops(4, 10), 4 * 5 * 10);
        assert_eq!(syrk_strict_flops(4, 10), 4 * 3 * 10);
        // Strict + n diagonal dot products (2k flops each) = inclusive.
        let (n, k) = (9u64, 5u64);
        assert_eq!(syrk_strict_flops(9, 5) + 2 * n * k, syrk_flops(9, 5));
    }

    #[test]
    fn zero_k_is_noop() {
        let a = Matrix::<f64>::zeros(4, 0);
        let p = syrk_packed_new(&a, Diag::Inclusive);
        assert!(p.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn packed_result_independent_of_thread_count() {
        // Bitwise assertion: a concurrent ISA-override flip mid-run
        // would change rounding, so serialize against the force tests.
        let _serial = crate::isa::test_lock::serial();
        let a = seeded_matrix::<f64>(101, 67, 13);
        for diag in [Diag::Inclusive, Diag::Strict] {
            let one = {
                let _g = crate::parallel::limit_threads(1);
                syrk_packed_new(&a, diag)
            };
            let many = {
                let _g = crate::parallel::limit_threads(5);
                syrk_packed_new(&a, diag)
            };
            assert_eq!(one, many, "accumulation order must not depend on chunking");
        }
    }
}
