//! Local symmetric rank-k update kernels: `C += A·Aᵀ` (lower triangle).
//!
//! These are the *sequential building blocks* the distributed algorithms
//! call on each rank (`Local-SYRK` in Algorithms 1–3). The symmetry of the
//! output halves the flops relative to GEMM: computing the inclusive lower
//! triangle of `A·Aᵀ` for `A: n×k` takes `n(n+1)·k` flops instead of
//! `2n²k`.

use crate::matrix::Matrix;
use crate::packed::{Diag, PackedLower};
use crate::scalar::Scalar;
use rayon::prelude::*;

/// Flops to compute the inclusive lower triangle of `A·Aᵀ`, `A: n×k`
/// (one multiply + one add per iteration point; `n(n+1)/2 · 2k`).
pub fn syrk_flops(n: usize, k: usize) -> u64 {
    (n as u64) * (n as u64 + 1) * (k as u64)
}

/// Flops to compute only the strict lower triangle (`n(n−1)/2 · 2k`),
/// the quantity Lemma 5 and Theorem 1 reason about.
pub fn syrk_strict_flops(n: usize, k: usize) -> u64 {
    (n as u64) * (n as u64).saturating_sub(1) * (k as u64)
}

/// Reference kernel: dense `C += A·Aᵀ` writing only entries with `j ≤ i`.
/// The strict upper triangle of `C` is left untouched.
pub fn syrk_lower_ref<T: Scalar>(c: &mut Matrix<T>, a: &Matrix<T>) {
    let (n, _k) = a.shape();
    assert_eq!(c.shape(), (n, n), "syrk: C must be n×n");
    for i in 0..n {
        let arow = a.row(i);
        for j in 0..=i.min(n - 1) {
            let brow = a.row(j);
            let mut acc = T::zero();
            for (&x, &y) in arow.iter().zip(brow) {
                acc = x.mul_add(y, acc);
            }
            c[(i, j)] += acc;
        }
    }
}

/// Packed kernel: accumulate the lower triangle of `A·Aᵀ` into packed
/// storage. Rayon-parallel over rows of `C` (each row of the packed
/// triangle is an independent chunk of the packed buffer).
pub fn syrk_packed<T: Scalar>(c: &mut PackedLower<T>, a: &Matrix<T>) {
    let (n, _k) = a.shape();
    assert_eq!(c.n(), n, "syrk_packed: dimension mismatch");
    match c.diag() {
        Diag::Inclusive => {
            let rows: Vec<&[T]> = (0..n).map(|i| a.row(i)).collect();
            // Row i of the inclusive packed triangle starts at i(i+1)/2 and
            // has i+1 entries; build disjoint mutable slices via split_at.
            let buf = c.as_mut_slice();
            par_rows(
                buf,
                n,
                |i| (i * (i + 1) / 2, i + 1),
                |i, j, out| {
                    *out = dot(rows[i], rows[j]);
                },
            );
        }
        Diag::Strict => {
            let rows: Vec<&[T]> = (0..n).map(|i| a.row(i)).collect();
            let buf = c.as_mut_slice();
            par_rows(
                buf,
                n,
                |i| (i * i.saturating_sub(1) / 2, i),
                |i, j, out| {
                    *out = dot(rows[i], rows[j]);
                },
            );
        }
    }
}

fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    let mut acc = T::zero();
    for (&a, &b) in x.iter().zip(y) {
        acc = a.mul_add(b, acc);
    }
    acc
}

/// Apply `f(i, j, &mut out)` for every packed entry, parallel over rows.
/// `layout(i)` returns `(offset, len)` of row `i` in the packed buffer.
/// Accumulates: `out += f`'s value is written via the closure which adds.
fn par_rows<T: Scalar>(
    buf: &mut [T],
    n: usize,
    layout: impl Fn(usize) -> (usize, usize) + Sync,
    f: impl Fn(usize, usize, &mut T) + Sync,
) {
    // Slice the packed buffer into per-row chunks (disjoint by layout).
    let mut chunks: Vec<(usize, &mut [T])> = Vec::with_capacity(n);
    let mut rest = buf;
    let mut consumed = 0;
    for i in 0..n {
        let (off, len) = layout(i);
        debug_assert_eq!(off, consumed, "rows must tile the packed buffer");
        let (row, tail) = rest.split_at_mut(len);
        chunks.push((i, row));
        rest = tail;
        consumed += len;
    }
    chunks.into_par_iter().for_each(|(i, row)| {
        for (j, out) in row.iter_mut().enumerate() {
            let mut acc = T::zero();
            f(i, j, &mut acc);
            *out += acc;
        }
    });
}

/// Convenience: the inclusive lower triangle of `A·Aᵀ` as packed storage.
pub fn syrk_packed_new<T: Scalar>(a: &Matrix<T>, diag: Diag) -> PackedLower<T> {
    let mut c = PackedLower::zeros(a.rows(), diag);
    syrk_packed(&mut c, a);
    c
}

/// Sequential reference for the full SYRK product as a dense symmetric
/// matrix — the ground truth the distributed algorithms are verified
/// against.
pub fn syrk_full_reference<T: Scalar>(a: &Matrix<T>) -> Matrix<T> {
    let n = a.rows();
    let mut c = Matrix::zeros(n, n);
    syrk_lower_ref(&mut c, a);
    // Mirror to the upper triangle.
    for i in 0..n {
        for j in 0..i {
            let v = c[(i, j)];
            c[(j, i)] = v;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::mul_nt;
    use crate::rng::seeded_matrix;

    #[test]
    fn syrk_matches_gemm_lower_triangle() {
        for (n, k) in [(1, 1), (4, 2), (7, 13), (33, 65), (64, 10)] {
            let a = seeded_matrix::<f64>(n, k, n as u64 * 31 + k as u64);
            let full = mul_nt(&a, &a);
            let mut c = Matrix::zeros(n, n);
            syrk_lower_ref(&mut c, &a);
            for i in 0..n {
                for j in 0..=i {
                    assert!(
                        (c[(i, j)] - full[(i, j)]).abs() < 1e-10,
                        "n={n} k={k} ({i},{j})"
                    );
                }
                for j in i + 1..n {
                    assert_eq!(c[(i, j)], 0.0, "upper triangle must be untouched");
                }
            }
        }
    }

    #[test]
    fn packed_inclusive_matches_reference() {
        for (n, k) in [(1, 3), (5, 5), (17, 9), (40, 64)] {
            let a = seeded_matrix::<f64>(n, k, 7 * n as u64 + k as u64);
            let p = syrk_packed_new(&a, Diag::Inclusive);
            let mut dense = Matrix::zeros(n, n);
            syrk_lower_ref(&mut dense, &a);
            for i in 0..n {
                for j in 0..=i {
                    assert!(
                        (p.get(i, j) - dense[(i, j)]).abs() < 1e-10,
                        "n={n} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_strict_skips_diagonal() {
        let a = seeded_matrix::<f64>(6, 4, 3);
        let p = syrk_packed_new(&a, Diag::Strict);
        assert_eq!(p.len(), 15);
        let mut dense = Matrix::zeros(6, 6);
        syrk_lower_ref(&mut dense, &a);
        for i in 0..6 {
            for j in 0..i {
                assert!((p.get(i, j) - dense[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn packed_accumulates() {
        let a = seeded_matrix::<f64>(5, 3, 11);
        let mut p = syrk_packed_new(&a, Diag::Inclusive);
        syrk_packed(&mut p, &a); // second accumulation doubles everything
        let single = syrk_packed_new(&a, Diag::Inclusive);
        for (two, one) in p.as_slice().iter().zip(single.as_slice()) {
            assert!((two - 2.0 * one).abs() < 1e-10);
        }
    }

    #[test]
    fn full_reference_is_symmetric() {
        let a = seeded_matrix::<f64>(9, 4, 42);
        let c = syrk_full_reference(&a);
        for i in 0..9 {
            for j in 0..9 {
                assert_eq!(c[(i, j)], c[(j, i)]);
            }
        }
        // And equals A·Aᵀ.
        let g = mul_nt(&a, &a);
        for i in 0..9 {
            for j in 0..9 {
                assert!((c[(i, j)] - g[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn flop_formulas() {
        assert_eq!(syrk_flops(4, 10), 4 * 5 * 10);
        assert_eq!(syrk_strict_flops(4, 10), 4 * 3 * 10);
        // Strict + n diagonal dot products (2k flops each) = inclusive.
        let (n, k) = (9u64, 5u64);
        assert_eq!(syrk_strict_flops(9, 5) + 2 * n * k, syrk_flops(9, 5));
    }

    #[test]
    fn zero_k_is_noop() {
        let a = Matrix::<f64>::zeros(4, 0);
        let p = syrk_packed_new(&a, Diag::Inclusive);
        assert!(p.as_slice().iter().all(|&x| x == 0.0));
    }
}
