//! Local symmetric rank-k update kernels: `C += A·Aᵀ` (lower triangle).
//!
//! These are the *sequential building blocks* the distributed algorithms
//! call on each rank (`Local-SYRK` in Algorithms 1–3). The symmetry of the
//! output halves the flops relative to GEMM: computing the inclusive lower
//! triangle of `A·Aᵀ` for `A: n×k` takes `n(n+1)·k` flops instead of
//! `2n²k`.
//!
//! The packed kernel shares the register-blocked machinery of
//! [`crate::microkernel`]: per `KC`-wide panel of `A`, *one* k-major
//! [`SharedPack`] of all rows serves both sides of the product (possible
//! because `MR == NR`) **across every worker** — `MC`-row blocks are
//! packed cooperatively, each exactly once behind a publication flag,
//! instead of serially by the caller or redundantly per chunk. Threads
//! work-steal flop-balanced row chunks of the packed triangle (see
//! [`crate::schedule`] — row `i` costs `Θ(i·k)`, so an even row split
//! would be badly skewed), pulling pack buffers from the workspace
//! [`crate::arena`] so the steady state allocates nothing. Diagonal
//! register tiles are computed in full and stored clamped to `j ≤ i`
//! (or `j < i`); f64 uses the dual-panel wide microkernel away from
//! chunk tails.

use crate::arena;
use crate::matrix::Matrix;
use crate::microkernel::{acc_add, microkernel, microkernel_wide, Acc, MR, NR};
use crate::pack::{pack_rows_into, packed_panel_len, SharedPack};
use crate::packed::{Diag, PackedLower};
use crate::parallel::{available_threads, par_for_each_task, steal_task_count};
use crate::scalar::Scalar;
use crate::schedule::balanced_triangle_chunks;
use std::ops::Range;

/// Flops to compute the inclusive lower triangle of `A·Aᵀ`, `A: n×k`
/// (one multiply + one add per iteration point; `n(n+1)/2 · 2k`).
pub fn syrk_flops(n: usize, k: usize) -> u64 {
    (n as u64) * (n as u64 + 1) * (k as u64)
}

/// Flops to compute only the strict lower triangle (`n(n−1)/2 · 2k`),
/// the quantity Lemma 5 and Theorem 1 reason about.
pub fn syrk_strict_flops(n: usize, k: usize) -> u64 {
    (n as u64) * (n as u64).saturating_sub(1) * (k as u64)
}

/// Reference kernel: dense `C += A·Aᵀ` writing only entries with `j ≤ i`.
/// The strict upper triangle of `C` is left untouched.
pub fn syrk_lower_ref<T: Scalar>(c: &mut Matrix<T>, a: &Matrix<T>) {
    let (n, _k) = a.shape();
    assert_eq!(c.shape(), (n, n), "syrk: C must be n×n");
    for i in 0..n {
        let arow = a.row(i);
        for j in 0..=i {
            let brow = a.row(j);
            let mut acc = T::zero();
            for (&x, &y) in arow.iter().zip(brow) {
                acc = x.mul_add(y, acc);
            }
            c[(i, j)] += acc;
        }
    }
}

/// Offset of packed row `i` and its first column bound for `diag`.
#[inline]
fn row_off(diag: Diag, i: usize) -> usize {
    match diag {
        Diag::Inclusive => i * (i + 1) / 2,
        Diag::Strict => i * i.saturating_sub(1) / 2,
    }
}

#[inline]
fn row_end(diag: Diag, i: usize) -> usize {
    match diag {
        Diag::Inclusive => i + 1,
        Diag::Strict => i,
    }
}

/// Add `acc`'s leading `rr` rows into the packed chunk slice `cbuf`
/// (whose first element is packed offset `base`), clamping each row to
/// its `diag` column bound.
#[inline]
fn store_packed_tile<T: Scalar>(
    diag: Diag,
    base: usize,
    cbuf: &mut [T],
    acc: &Acc<T>,
    it: usize,
    rr: usize,
    j0: usize,
) {
    // Store row by row: packed rows are contiguous, and tiles straddling
    // the diagonal clamp to the row's column bound.
    for (u, arow) in acc.iter().enumerate().take(rr) {
        let i = it + u;
        let jend = (j0 + NR).min(row_end(diag, i));
        if jend <= j0 {
            continue;
        }
        let off = row_off(diag, i) - base + j0;
        let dst = &mut cbuf[off..off + jend - j0];
        for (d, &v) in dst.iter_mut().zip(arow.iter()) {
            *d += v;
        }
    }
}

/// Shared packed-triangle driver for SYRK (`b = None`, `C += A·Aᵀ`) and
/// SYR2K (`b = Some`, `C += A·Bᵀ + B·Aᵀ`). `KC`-panel loop outside,
/// flop-balanced work-stolen row chunks inside; every packed entry is
/// accumulated in ascending-k order independent of the chunking, and
/// each `MC`-row block of the shared pack is packed exactly once per
/// panel by whichever worker first needs it.
pub(crate) fn packed_rank_update<T: Scalar>(
    c: &mut PackedLower<T>,
    a: &Matrix<T>,
    b: Option<&Matrix<T>>,
) {
    let (n, k) = a.shape();
    assert_eq!(c.n(), n, "packed rank update: dimension mismatch");
    if let Some(b) = b {
        assert_eq!(
            b.shape(),
            (n, k),
            "syr2k: A and B must have identical shapes"
        );
    }
    if n == 0 || k == 0 {
        return;
    }
    let diag = c.diag();
    let workers = available_threads();
    // Oversubscribe chunks so idle workers always find something to
    // steal; the chunk a tile lands in never affects its value.
    let chunks = balanced_triangle_chunks(n, diag, steal_task_count(workers), MR);
    let kc_cap = crate::gemm::KC.min(k);
    let mut apack = arena::acquire::<T>(packed_panel_len(n, kc_cap, MR));
    let mut bpack = b.map(|_| arena::acquire::<T>(packed_panel_len(n, kc_cap, MR)));
    for p0 in (0..k).step_by(crate::gemm::KC) {
        let pb = crate::gemm::KC.min(k - p0);
        let cols = p0..p0 + pb;
        // One full-height shared pack serves the row side and the column
        // side of every register tile (MR == NR) for *all* workers;
        // MC-row blocks publish once on first demand.
        let ashared = SharedPack::new(
            apack.resized(packed_panel_len(n, pb, MR)),
            n,
            pb,
            MR,
            crate::gemm::MC,
        );
        let bshared = bpack.as_mut().map(|bb| {
            SharedPack::new(
                bb.resized(packed_panel_len(n, pb, MR)),
                n,
                pb,
                MR,
                crate::gemm::MC,
            )
        });
        let pack_a = |rows: Range<usize>, dst: &mut [T]| {
            pack_rows_into(dst, a, rows, cols.clone(), MR);
        };
        let pack_b = |rows: Range<usize>, dst: &mut [T]| {
            pack_rows_into(dst, b.expect("bshared implies b"), rows, cols.clone(), MR);
        };
        let tasks = split_triangle(c, &chunks);
        par_for_each_task(tasks, |_, (rows, cbuf)| {
            let base = row_off(diag, rows.start);
            let mut tiles = 0u64;
            let mut it = rows.start;
            while it < rows.end {
                // Dual-panel wide tiles away from the chunk tail; SYR2K
                // keeps the narrow path (its tile fuses two products).
                let wide = T::WIDE_KERNEL && b.is_none() && it + 2 * MR <= rows.end;
                let take = if wide { 2 * MR } else { MR.min(rows.end - it) };
                let colmax = row_end(diag, it + take - 1);
                ashared.ensure_rows(it..it + take, &pack_a);
                ashared.ensure_rows(0..colmax, &pack_a);
                if let Some(bs) = &bshared {
                    bs.ensure_rows(it..it + take, &pack_b);
                    bs.ensure_rows(0..colmax, &pack_b);
                }
                if wide {
                    let ap0 = ashared.panel(it);
                    let ap1 = ashared.panel(it + MR);
                    for j0 in (0..colmax).step_by(NR) {
                        let (acc0, acc1) = microkernel_wide(pb, ap0, ap1, ashared.panel(j0));
                        tiles += 2;
                        store_packed_tile(diag, base, cbuf, &acc0, it, MR, j0);
                        store_packed_tile(diag, base, cbuf, &acc1, it + MR, MR, j0);
                    }
                } else {
                    for j0 in (0..colmax).step_by(NR) {
                        let acc = if let Some(bs) = &bshared {
                            // A·Bᵀ tile plus B·Aᵀ tile, fused before the
                            // store.
                            let ab = microkernel(pb, ashared.panel(it), bs.panel(j0));
                            let ba = microkernel(pb, bs.panel(it), ashared.panel(j0));
                            tiles += 2;
                            acc_add(&ab, &ba)
                        } else {
                            tiles += 1;
                            microkernel(pb, ashared.panel(it), ashared.panel(j0))
                        };
                        store_packed_tile(diag, base, cbuf, &acc, it, take, j0);
                    }
                }
                it += take;
            }
            crate::stats::add_microkernel_calls(tiles);
        });
    }
}

/// Split the packed buffer into per-chunk sub-slices (each chunk's rows
/// are contiguous in packed row-major order).
fn split_triangle<'c, T: Scalar>(
    c: &'c mut PackedLower<T>,
    chunks: &[Range<usize>],
) -> Vec<(Range<usize>, &'c mut [T])> {
    let diag = c.diag();
    let mut rest = c.as_mut_slice();
    let mut out = Vec::with_capacity(chunks.len());
    for r in chunks {
        let len = row_off(diag, r.end) - row_off(diag, r.start);
        let (head, tail) = rest.split_at_mut(len);
        out.push((r.clone(), head));
        rest = tail;
    }
    out
}

/// Packed kernel: accumulate the lower triangle of `A·Aᵀ` into packed
/// storage via the register-blocked driver.
pub fn syrk_packed<T: Scalar>(c: &mut PackedLower<T>, a: &Matrix<T>) {
    packed_rank_update(c, a, None);
}

/// Convenience: the lower triangle of `A·Aᵀ` as packed storage.
pub fn syrk_packed_new<T: Scalar>(a: &Matrix<T>, diag: Diag) -> PackedLower<T> {
    let mut c = PackedLower::zeros(a.rows(), diag);
    syrk_packed(&mut c, a);
    c
}

/// Sequential reference for the full SYRK product as a dense symmetric
/// matrix — the ground truth the distributed algorithms are verified
/// against.
pub fn syrk_full_reference<T: Scalar>(a: &Matrix<T>) -> Matrix<T> {
    let n = a.rows();
    let mut c = Matrix::zeros(n, n);
    syrk_lower_ref(&mut c, a);
    // Mirror to the upper triangle.
    for i in 0..n {
        for j in 0..i {
            let v = c[(i, j)];
            c[(j, i)] = v;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::mul_nt;
    use crate::rng::seeded_matrix;

    #[test]
    fn syrk_matches_gemm_lower_triangle() {
        for (n, k) in [(1, 1), (4, 2), (7, 13), (33, 65), (64, 10)] {
            let a = seeded_matrix::<f64>(n, k, n as u64 * 31 + k as u64);
            let full = mul_nt(&a, &a);
            let mut c = Matrix::zeros(n, n);
            syrk_lower_ref(&mut c, &a);
            for i in 0..n {
                for j in 0..=i {
                    assert!(
                        (c[(i, j)] - full[(i, j)]).abs() < 1e-10,
                        "n={n} k={k} ({i},{j})"
                    );
                }
                for j in i + 1..n {
                    assert_eq!(c[(i, j)], 0.0, "upper triangle must be untouched");
                }
            }
        }
    }

    #[test]
    fn packed_inclusive_matches_reference() {
        for (n, k) in [(1, 3), (5, 5), (17, 9), (40, 64), (70, 300)] {
            let a = seeded_matrix::<f64>(n, k, 7 * n as u64 + k as u64);
            let p = syrk_packed_new(&a, Diag::Inclusive);
            let mut dense = Matrix::zeros(n, n);
            syrk_lower_ref(&mut dense, &a);
            for i in 0..n {
                for j in 0..=i {
                    assert!(
                        (p.get(i, j) - dense[(i, j)]).abs() < 1e-10,
                        "n={n} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_strict_skips_diagonal() {
        let a = seeded_matrix::<f64>(6, 4, 3);
        let p = syrk_packed_new(&a, Diag::Strict);
        assert_eq!(p.len(), 15);
        let mut dense = Matrix::zeros(6, 6);
        syrk_lower_ref(&mut dense, &a);
        for i in 0..6 {
            for j in 0..i {
                assert!((p.get(i, j) - dense[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn packed_accumulates() {
        let a = seeded_matrix::<f64>(5, 3, 11);
        let mut p = syrk_packed_new(&a, Diag::Inclusive);
        syrk_packed(&mut p, &a); // second accumulation doubles everything
        let single = syrk_packed_new(&a, Diag::Inclusive);
        for (two, one) in p.as_slice().iter().zip(single.as_slice()) {
            assert!((two - 2.0 * one).abs() < 1e-10);
        }
    }

    #[test]
    fn full_reference_is_symmetric() {
        let a = seeded_matrix::<f64>(9, 4, 42);
        let c = syrk_full_reference(&a);
        for i in 0..9 {
            for j in 0..9 {
                assert_eq!(c[(i, j)], c[(j, i)]);
            }
        }
        // And equals A·Aᵀ.
        let g = mul_nt(&a, &a);
        for i in 0..9 {
            for j in 0..9 {
                assert!((c[(i, j)] - g[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn flop_formulas() {
        assert_eq!(syrk_flops(4, 10), 4 * 5 * 10);
        assert_eq!(syrk_strict_flops(4, 10), 4 * 3 * 10);
        // Strict + n diagonal dot products (2k flops each) = inclusive.
        let (n, k) = (9u64, 5u64);
        assert_eq!(syrk_strict_flops(9, 5) + 2 * n * k, syrk_flops(9, 5));
    }

    #[test]
    fn zero_k_is_noop() {
        let a = Matrix::<f64>::zeros(4, 0);
        let p = syrk_packed_new(&a, Diag::Inclusive);
        assert!(p.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn packed_result_independent_of_thread_count() {
        let a = seeded_matrix::<f64>(101, 67, 13);
        for diag in [Diag::Inclusive, Diag::Strict] {
            let one = {
                let _g = crate::parallel::limit_threads(1);
                syrk_packed_new(&a, diag)
            };
            let many = {
                let _g = crate::parallel::limit_threads(5);
                syrk_packed_new(&a, diag)
            };
            assert_eq!(one, many, "accumulation order must not depend on chunking");
        }
    }
}
