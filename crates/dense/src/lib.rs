//! # syrk-dense — dense linear algebra substrate
//!
//! Matrices, packed symmetric storage, and the local GEMM/SYRK kernels the
//! distributed SYRK algorithms of the SPAA '23 paper run on each rank.
//! Everything is written from scratch (no BLAS — or any other —
//! dependency): operands are packed into k-major micro-panels
//! ([`mod@pack`]) and consumed by a register-blocked `MR × NR`
//! microkernel ([`mod@microkernel`]); triangular outputs are partitioned
//! into flop-balanced row chunks ([`mod@schedule`]) executed on a scoped
//! worker pool ([`mod@parallel`]).
//!
//! ```
//! use syrk_dense::{seeded_matrix, syrk_full_reference, mul_nt, max_abs_diff};
//!
//! let a = seeded_matrix::<f64>(6, 4, 0);
//! let c = syrk_full_reference(&a);      // C = A·Aᵀ, symmetric
//! let g = mul_nt(&a, &a);               // same thing via GEMM
//! assert!(max_abs_diff(&c, &g) < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod arena;
mod blocking;
mod cholesky;
mod gemm;
pub mod isa;
mod matrix;
pub mod microkernel;
mod norms;
pub mod pack;
mod packed;
pub mod parallel;
mod rng;
mod scalar;
pub mod schedule;
mod simd;
pub mod stats;
mod syr2k;
mod syrk;
mod view;

pub use blocking::Partition1D;
pub use cholesky::{
    cholesky, trsm_left_lower, trsm_left_transpose, trsm_right_transpose, CholeskyError,
};
pub use gemm::{gemm_flops, gemm_nn, gemm_nn_ref, gemm_nt, gemm_nt_ref, mul_nn, mul_nt};
pub use isa::{available_isas, detected_isa, dispatched_isa, force_isa, ForcedIsaGuard, Isa};
pub use matrix::Matrix;
pub use microkernel::{dispatch_f64, Dispatch, KernelSpec};
pub use norms::{frobenius, max_abs_diff, max_abs_diff_lower, syrk_tolerance};
pub use packed::{Diag, PackedLower};
pub use parallel::{
    available_threads, hardware_threads, limit_threads, machine_thread_budget, par_for_each_task,
    steal_task_count,
};
pub use rng::{seeded_int_matrix, seeded_matrix, DetRng};
pub use scalar::Scalar;
pub use schedule::{balanced_chunks_by_cost, balanced_triangle_chunks, per_chunk_pack_words};
pub use stats::{kernel_stats, reset_kernel_stats, KernelStats};
pub use syr2k::{
    syr2k_flops, syr2k_full_reference, syr2k_lower_ref, syr2k_packed, syr2k_packed_new,
};
pub use syrk::{
    syrk_flops, syrk_full_reference, syrk_lower_ref, syrk_packed, syrk_packed_new,
    syrk_strict_flops,
};
pub use view::{MatrixView, MatrixViewMut};
