//! Panel packing for the register-blocked kernels.
//!
//! The microkernel streams its operands from *packed* panels: `R`
//! rows (or columns) interleaved k-major, so each step of the k-loop
//! reads one contiguous group of `R` values per operand. Packing costs
//! `O(m·k)` copies but turns the inner loop into unit-stride loads, which
//! is what lets LLVM vectorize it.
//!
//! Layout of a packed buffer for rows `r0..r1` over columns `c0..c1`
//! with register width `R` and `kc = c1 − c0`:
//!
//! ```text
//! panel 0: [a(r0,c0) a(r0+1,c0) … a(r0+R−1,c0)] [a(r0,c0+1) … ] … kc groups
//! panel 1: rows r0+R … r0+2R−1, same k-major layout
//! …
//! ```
//!
//! Tail panels with fewer than `R` live rows are zero-padded, so the
//! microkernel never needs a fringe case: padded lanes multiply into
//! zeros that are simply not stored back.

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use std::ops::Range;

/// Number of scalars in a packed panel buffer for `rows` rows (or
/// columns), `kc` inner iterations, and register width `r`.
pub fn packed_panel_len(rows: usize, kc: usize, r: usize) -> usize {
    rows.div_ceil(r) * r * kc
}

/// Offset of the micro-panel that starts at local row `row` (a multiple
/// of `r`) inside a packed buffer with inner length `kc`.
#[inline]
pub fn panel_offset(row: usize, kc: usize, r: usize) -> usize {
    debug_assert_eq!(row % r, 0, "micro-panels start at multiples of R");
    row * kc
}

/// Pack rows `rows` of `a`, restricted to columns `cols`, into `buf` as
/// zero-padded `r`-row k-major micro-panels. `buf` is cleared and
/// resized; reuse one buffer across panels to amortize the allocation.
pub fn pack_rows<T: Scalar>(
    buf: &mut Vec<T>,
    a: &Matrix<T>,
    rows: Range<usize>,
    cols: Range<usize>,
    r: usize,
) {
    let m = rows.len();
    let kc = cols.len();
    buf.clear();
    buf.resize(packed_panel_len(m, kc, r), T::zero());
    for q in 0..m.div_ceil(r) {
        let i0 = rows.start + q * r;
        let live = r.min(rows.end - i0);
        let dst = &mut buf[q * r * kc..(q + 1) * r * kc];
        for u in 0..live {
            let src = &a.row(i0 + u)[cols.clone()];
            for (p, &v) in src.iter().enumerate() {
                dst[p * r + u] = v;
            }
        }
    }
    crate::stats::add_pack_words(buf.len());
}

/// Pack columns `cols` of `b`, restricted to rows `rows` (the inner
/// dimension), into `r`-column k-major micro-panels — the B-side pack for
/// `C += A·B` where B is stored `k × n`. Same layout contract as
/// [`pack_rows`]; copies are contiguous because columns of a row-major
/// matrix are walked row by row.
pub fn pack_cols<T: Scalar>(
    buf: &mut Vec<T>,
    b: &Matrix<T>,
    rows: Range<usize>,
    cols: Range<usize>,
    r: usize,
) {
    let kc = rows.len();
    let n = cols.len();
    buf.clear();
    buf.resize(packed_panel_len(n, kc, r), T::zero());
    for q in 0..n.div_ceil(r) {
        let j0 = cols.start + q * r;
        let live = r.min(cols.end - j0);
        let dst = &mut buf[q * r * kc..(q + 1) * r * kc];
        for p in 0..kc {
            let src = &b.row(rows.start + p)[j0..j0 + live];
            dst[p * r..p * r + live].copy_from_slice(src);
        }
    }
    crate::stats::add_pack_words(buf.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_rows_layout_and_padding() {
        // 5 rows packed with R = 4 → two panels, second padded with 3
        // zero lanes.
        let a = Matrix::from_fn(6, 3, |i, j| (10 * i + j) as f64);
        let mut buf = Vec::new();
        pack_rows(&mut buf, &a, 1..6, 0..3, 4);
        assert_eq!(buf.len(), packed_panel_len(5, 3, 4));
        // Panel 0, k = 0 holds column 0 of rows 1..5.
        assert_eq!(&buf[0..4], &[10.0, 20.0, 30.0, 40.0]);
        // Panel 0, k = 2 holds column 2 of rows 1..5.
        assert_eq!(&buf[8..12], &[12.0, 22.0, 32.0, 42.0]);
        // Panel 1 holds row 5 in lane 0, zeros elsewhere.
        let p1 = &buf[panel_offset(4, 3, 4)..];
        assert_eq!(&p1[0..4], &[50.0, 0.0, 0.0, 0.0]);
        assert_eq!(&p1[4..8], &[51.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn pack_cols_matches_pack_rows_of_transpose() {
        let b = Matrix::from_fn(5, 7, |i, j| (i * 7 + j) as f64);
        let bt = b.transpose();
        let (mut by_cols, mut by_rows) = (Vec::new(), Vec::new());
        pack_cols(&mut by_cols, &b, 1..4, 2..7, 4);
        pack_rows(&mut by_rows, &bt, 2..7, 1..4, 4);
        assert_eq!(by_cols, by_rows);
    }

    #[test]
    fn empty_ranges_pack_to_empty() {
        let a = Matrix::<f64>::zeros(4, 4);
        let mut buf = vec![1.0];
        pack_rows(&mut buf, &a, 2..2, 0..4, 4);
        assert!(buf.is_empty());
        pack_cols(&mut buf, &a, 0..4, 3..3, 4);
        assert!(buf.is_empty());
    }
}
