//! Panel packing for the register-blocked kernels.
//!
//! The microkernel streams its operands from *packed* panels: `R`
//! rows (or columns) interleaved k-major, so each step of the k-loop
//! reads one contiguous group of `R` values per operand. Packing costs
//! `O(m·k)` copies but turns the inner loop into unit-stride loads, which
//! is what lets LLVM vectorize it.
//!
//! Layout of a packed buffer for rows `r0..r1` over columns `c0..c1`
//! with register width `R` and `kc = c1 − c0`:
//!
//! ```text
//! panel 0: [a(r0,c0) a(r0+1,c0) … a(r0+R−1,c0)] [a(r0,c0+1) … ] … kc groups
//! panel 1: rows r0+R … r0+2R−1, same k-major layout
//! …
//! ```
//!
//! Tail panels with fewer than `R` live rows are zero-padded, so the
//! microkernel never needs a fringe case: padded lanes multiply into
//! zeros that are simply not stored back.
//!
//! Two packing surfaces exist:
//!
//! * [`pack_rows`] / [`pack_cols`] fill a caller-owned `Vec` (typically
//!   an arena buffer) — the per-task path for operands only one worker
//!   reads, and
//! * [`SharedPack`] — a panel buffer **shared across workers** with
//!   once-cell-style per-block publication: the first worker to need a
//!   `block_rows`-row block packs it (exactly once), everyone else reads
//!   the published panels. This is what lets SYRK feed each packed copy
//!   of A to every register tile across all workers, instead of each
//!   chunk packing its own overlapping copy — when the dispatched tile
//!   is square (`mr == nr`) *one* pack even serves both operands.

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use std::cell::UnsafeCell;
use std::ops::Range;
use std::sync::atomic::{AtomicU8, Ordering};
use syrk_telemetry::flight::{self, FlightKind};

/// Number of scalars in a packed panel buffer for `rows` rows (or
/// columns), `kc` inner iterations, and register width `r`.
pub fn packed_panel_len(rows: usize, kc: usize, r: usize) -> usize {
    rows.div_ceil(r) * r * kc
}

/// Offset of the micro-panel that starts at local row `row` (a multiple
/// of `r`) inside a packed buffer with inner length `kc`.
#[inline]
pub fn panel_offset(row: usize, kc: usize, r: usize) -> usize {
    debug_assert_eq!(row % r, 0, "micro-panels start at multiples of R");
    row * kc
}

/// Set `buf`'s length to exactly `len` without touching retained
/// contents: grow-with-zeros only past the current length, truncate
/// otherwise. The pack routines below fully overwrite every element, so
/// reused (arena) buffers skip the O(len) zero-fill a clear+resize pays.
fn set_pack_len<T: Scalar>(buf: &mut Vec<T>, len: usize) {
    if buf.len() < len {
        buf.resize(len, T::zero());
    } else {
        buf.truncate(len);
    }
}

/// Pack rows `rows` of `a`, restricted to columns `cols`, into `buf` as
/// zero-padded `r`-row k-major micro-panels. `buf` is resized; reuse one
/// (arena) buffer across panels to amortize the allocation.
pub fn pack_rows<T: Scalar>(
    buf: &mut Vec<T>,
    a: &Matrix<T>,
    rows: Range<usize>,
    cols: Range<usize>,
    r: usize,
) {
    set_pack_len(buf, packed_panel_len(rows.len(), cols.len(), r));
    pack_rows_into(&mut buf[..], a, rows, cols, r);
}

/// [`pack_rows`] into a caller-provided slice of exactly
/// [`packed_panel_len`] elements. Fully initializes `dst` — live lanes
/// from `a`, padding lanes zero — so the destination's prior contents
/// (stale arena data, a reused shared buffer) never leak through.
pub fn pack_rows_into<T: Scalar>(
    dst: &mut [T],
    a: &Matrix<T>,
    rows: Range<usize>,
    cols: Range<usize>,
    r: usize,
) {
    let m = rows.len();
    let kc = cols.len();
    debug_assert_eq!(dst.len(), packed_panel_len(m, kc, r));
    for q in 0..m.div_ceil(r) {
        let i0 = rows.start + q * r;
        let live = r.min(rows.end - i0);
        let chunk = &mut dst[q * r * kc..(q + 1) * r * kc];
        if live < r {
            chunk.fill(T::zero());
        }
        for u in 0..live {
            let src = &a.row(i0 + u)[cols.clone()];
            for (p, &v) in src.iter().enumerate() {
                chunk[p * r + u] = v;
            }
        }
    }
    crate::stats::add_pack_words(dst.len());
}

/// Pack columns `cols` of `b`, restricted to rows `rows` (the inner
/// dimension), into `r`-column k-major micro-panels — the B-side pack for
/// `C += A·B` where B is stored `k × n`. Same layout contract as
/// [`pack_rows`]; copies are contiguous because columns of a row-major
/// matrix are walked row by row.
pub fn pack_cols<T: Scalar>(
    buf: &mut Vec<T>,
    b: &Matrix<T>,
    rows: Range<usize>,
    cols: Range<usize>,
    r: usize,
) {
    set_pack_len(buf, packed_panel_len(cols.len(), rows.len(), r));
    pack_cols_into(&mut buf[..], b, rows, cols, r);
}

/// [`pack_cols`] into a caller-provided slice of exactly
/// [`packed_panel_len`] elements; fully initializes `dst` like
/// [`pack_rows_into`].
pub fn pack_cols_into<T: Scalar>(
    dst: &mut [T],
    b: &Matrix<T>,
    rows: Range<usize>,
    cols: Range<usize>,
    r: usize,
) {
    let kc = rows.len();
    let n = cols.len();
    debug_assert_eq!(dst.len(), packed_panel_len(n, kc, r));
    for q in 0..n.div_ceil(r) {
        let j0 = cols.start + q * r;
        let live = r.min(cols.end - j0);
        let chunk = &mut dst[q * r * kc..(q + 1) * r * kc];
        if live < r {
            chunk.fill(T::zero());
        }
        for p in 0..kc {
            let src = &b.row(rows.start + p)[j0..j0 + live];
            chunk[p * r..p * r + live].copy_from_slice(src);
        }
    }
    crate::stats::add_pack_words(dst.len());
}

const BLOCK_EMPTY: u8 = 0;
const BLOCK_PACKING: u8 = 1;
const BLOCK_READY: u8 = 2;

/// A packed panel buffer shared by every worker of a parallel region,
/// published block-by-block exactly once.
///
/// The buffer covers `rows` logical rows at register width `r` and inner
/// depth `kc`, split into blocks of `block_rows` rows (a multiple of
/// `r`, so micro-panels never straddle blocks). Each block carries a
/// once-cell-style state machine (`empty → packing → ready`): the first
/// worker to [`ensure`](SharedPack::ensure) a block wins a CAS and packs
/// it in place; latecomers spin (with yields) until the `ready` flag is
/// published with release ordering, then read the panels through
/// [`panel`](SharedPack::panel). Packed content is a pure function of
/// the source matrix, so *who* packs is immaterial — results are
/// deterministic under any steal schedule.
///
/// Safety model: the storage is borrowed exclusively (`&mut [T]`) for
/// the lifetime of the `SharedPack` and re-exposed through
/// [`UnsafeCell`]s. A block is written only by the CAS winner while in
/// the `packing` state, and read only after the acquire-load of
/// `ready` — the release/acquire pair orders the pack writes before
/// every read, and disjoint blocks never alias.
pub struct SharedPack<'a, T: Scalar> {
    cells: &'a [UnsafeCell<T>],
    kc: usize,
    r: usize,
    rows: usize,
    block_rows: usize,
    states: Vec<AtomicU8>,
}

// SAFETY: concurrent access to `cells` is mediated by the per-block
// release/acquire state machine described on the type; `T: Scalar` is
// `Send + Sync` plain data.
unsafe impl<T: Scalar> Sync for SharedPack<'_, T> {}

impl<'a, T: Scalar> SharedPack<'a, T> {
    /// Wrap `buf` (length exactly `packed_panel_len(rows, kc, r)`) as an
    /// unpacked shared panel buffer with `block_rows`-row publication
    /// granularity. `buf` contents are treated as uninitialized.
    pub fn new(buf: &'a mut [T], rows: usize, kc: usize, r: usize, block_rows: usize) -> Self {
        assert!(r >= 1 && block_rows >= r && block_rows.is_multiple_of(r));
        assert_eq!(
            buf.len(),
            packed_panel_len(rows, kc, r),
            "shared pack buffer size"
        );
        let nblocks = rows.div_ceil(block_rows);
        // SAFETY: `UnsafeCell<T>` has the same layout as `T`; we hold the
        // unique `&mut` borrow for 'a, so re-typing its target as cells
        // is sound.
        let cells = unsafe { &*(buf as *mut [T] as *const [UnsafeCell<T>]) };
        SharedPack {
            cells,
            kc,
            r,
            rows,
            block_rows,
            states: (0..nblocks).map(|_| AtomicU8::new(BLOCK_EMPTY)).collect(),
        }
    }

    /// The publication block containing logical row `row`.
    #[inline]
    pub fn block_of(&self, row: usize) -> usize {
        row / self.block_rows
    }

    /// The logical row range of block `b` (unpadded).
    fn block_range(&self, b: usize) -> Range<usize> {
        let r0 = b * self.block_rows;
        r0..(r0 + self.block_rows).min(self.rows)
    }

    /// The cell range of block `b`, padded to whole micro-panels.
    fn cell_range(&self, b: usize) -> Range<usize> {
        let rr = self.block_range(b);
        rr.start * self.kc..rr.end.div_ceil(self.r) * self.r * self.kc
    }

    /// Make block `b` available, packing it via `pack(rows, dst)` if this
    /// caller wins the publication race. `pack` receives the block's
    /// logical row range and its exactly-sized destination slice, and
    /// must fully initialize it (the `pack_*_into` routines do).
    pub fn ensure<F: Fn(Range<usize>, &mut [T])>(&self, b: usize, pack: &F) {
        // Fast path: drivers re-ensure blocks once per register-tile
        // group, so the common case must be one acquire load, not a CAS
        // ping-ponging the cache line between workers.
        if self.states[b].load(Ordering::Acquire) == BLOCK_READY {
            return;
        }
        match self.states[b].compare_exchange(
            BLOCK_EMPTY,
            BLOCK_PACKING,
            Ordering::Acquire,
            Ordering::Acquire,
        ) {
            Ok(_) => {
                // Publish even if `pack` unwinds, so waiters never hang:
                // the panicking worker's region is garbage, but the whole
                // parallel call is already propagating the panic.
                struct Publish<'s>(&'s AtomicU8);
                impl Drop for Publish<'_> {
                    fn drop(&mut self) {
                        self.0.store(BLOCK_READY, Ordering::Release);
                    }
                }
                let publish = Publish(&self.states[b]);
                let t0 = if flight::is_enabled() {
                    Some(flight::now_ns())
                } else {
                    None
                };
                let span = self.cell_range(b);
                let cells = &self.cells[span];
                // SAFETY: the CAS made this caller the unique packer of
                // this block; readers wait for `ready` below.
                let dst = unsafe {
                    std::slice::from_raw_parts_mut(cells.as_ptr() as *mut T, cells.len())
                };
                pack(self.block_range(b), dst);
                drop(publish);
                if let Some(t0) = t0 {
                    flight::record(FlightKind::PackPublish, t0, flight::now_ns(), b as u64);
                }
            }
            Err(state) => {
                if state == BLOCK_READY {
                    return;
                }
                let t0 = if flight::is_enabled() {
                    Some(flight::now_ns())
                } else {
                    None
                };
                let mut spins = 0u32;
                while self.states[b].load(Ordering::Acquire) != BLOCK_READY {
                    spins += 1;
                    if spins.is_multiple_of(64) {
                        // Single-core hosts: let the packer run.
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
                if let Some(t0) = t0 {
                    flight::record(FlightKind::PackWait, t0, flight::now_ns(), b as u64);
                }
            }
        }
    }

    /// Make every block covering logical rows `rows` available.
    pub fn ensure_rows<F: Fn(Range<usize>, &mut [T])>(&self, rows: Range<usize>, pack: &F) {
        if rows.is_empty() {
            return;
        }
        for b in self.block_of(rows.start)..=self.block_of(rows.end - 1) {
            self.ensure(b, pack);
        }
    }

    /// The packed `r`-row micro-panel starting at logical row `row`
    /// (`row` must be a multiple of `r` and inside an ensured block).
    /// Returns exactly `r · kc` scalars.
    #[inline]
    pub fn panel(&self, row: usize) -> &[T] {
        debug_assert_eq!(row % self.r, 0);
        debug_assert!(row < self.rows);
        debug_assert_eq!(
            self.states[self.block_of(row)].load(Ordering::Acquire),
            BLOCK_READY,
            "panel read before its block was ensured"
        );
        let off = row * self.kc;
        let len = self.r * self.kc;
        // SAFETY: the block holding this panel is `ready` (caller
        // contract, checked above in debug builds): its cells were
        // release-published and are never written again.
        unsafe { std::slice::from_raw_parts(self.cells[off..off + len].as_ptr() as *const T, len) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_matrix;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pack_rows_layout_and_padding() {
        // 5 rows packed with R = 4 → two panels, second padded with 3
        // zero lanes.
        let a = Matrix::from_fn(6, 3, |i, j| (10 * i + j) as f64);
        let mut buf = Vec::new();
        pack_rows(&mut buf, &a, 1..6, 0..3, 4);
        assert_eq!(buf.len(), packed_panel_len(5, 3, 4));
        // Panel 0, k = 0 holds column 0 of rows 1..5.
        assert_eq!(&buf[0..4], &[10.0, 20.0, 30.0, 40.0]);
        // Panel 0, k = 2 holds column 2 of rows 1..5.
        assert_eq!(&buf[8..12], &[12.0, 22.0, 32.0, 42.0]);
        // Panel 1 holds row 5 in lane 0, zeros elsewhere.
        let p1 = &buf[panel_offset(4, 3, 4)..];
        assert_eq!(&p1[0..4], &[50.0, 0.0, 0.0, 0.0]);
        assert_eq!(&p1[4..8], &[51.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn packing_into_dirty_buffer_leaves_no_residue() {
        // A reused arena buffer arrives full of stale junk; padding lanes
        // must still come out zero.
        let a = Matrix::from_fn(6, 3, |i, j| (10 * i + j) as f64);
        let mut dirty = vec![9e9; packed_panel_len(5, 3, 4) + 7];
        pack_rows(&mut dirty, &a, 1..6, 0..3, 4);
        let mut fresh = Vec::new();
        pack_rows(&mut fresh, &a, 1..6, 0..3, 4);
        assert_eq!(dirty, fresh);

        let b = Matrix::from_fn(5, 7, |i, j| (i * 7 + j) as f64);
        let mut dirty = vec![-3.0; 2];
        pack_cols(&mut dirty, &b, 1..4, 2..7, 4);
        let mut fresh = Vec::new();
        pack_cols(&mut fresh, &b, 1..4, 2..7, 4);
        assert_eq!(dirty, fresh);
    }

    #[test]
    fn pack_cols_matches_pack_rows_of_transpose() {
        let b = Matrix::from_fn(5, 7, |i, j| (i * 7 + j) as f64);
        let bt = b.transpose();
        let (mut by_cols, mut by_rows) = (Vec::new(), Vec::new());
        pack_cols(&mut by_cols, &b, 1..4, 2..7, 4);
        pack_rows(&mut by_rows, &bt, 2..7, 1..4, 4);
        assert_eq!(by_cols, by_rows);
    }

    #[test]
    fn empty_ranges_pack_to_empty() {
        let a = Matrix::<f64>::zeros(4, 4);
        let mut buf = vec![1.0];
        pack_rows(&mut buf, &a, 2..2, 0..4, 4);
        assert!(buf.is_empty());
        pack_cols(&mut buf, &a, 0..4, 3..3, 4);
        assert!(buf.is_empty());
    }

    #[test]
    fn shared_pack_matches_direct_pack() {
        let a = seeded_matrix::<f64>(23, 9, 77);
        let mut direct = Vec::new();
        pack_rows(&mut direct, &a, 0..23, 0..9, 4);

        let mut buf = vec![0.0f64; packed_panel_len(23, 9, 4)];
        let shared = SharedPack::new(&mut buf, 23, 9, 4, 8);
        let pack = |rows: Range<usize>, dst: &mut [f64]| {
            pack_rows_into(dst, &a, rows, 0..9, 4);
        };
        shared.ensure_rows(0..23, &pack);
        for row in (0..23).step_by(4) {
            let off = panel_offset(row, 9, 4);
            assert_eq!(shared.panel(row), &direct[off..off + 4 * 9], "row {row}");
        }
    }

    #[test]
    fn shared_pack_publishes_each_block_once() {
        let a = seeded_matrix::<f64>(64, 16, 5);
        let mut buf = vec![0.0f64; packed_panel_len(64, 16, 4)];
        let shared = SharedPack::new(&mut buf, 64, 16, 4, 16);
        let packs = AtomicUsize::new(0);
        let pack = |rows: Range<usize>, dst: &mut [f64]| {
            packs.fetch_add(1, Ordering::Relaxed);
            pack_rows_into(dst, &a, rows, 0..16, 4);
        };
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    // Every thread demands every block, in clashing order.
                    shared.ensure_rows(0..64, &pack);
                    for row in (0..64).step_by(4) {
                        assert_eq!(shared.panel(row).len(), 4 * 16);
                    }
                });
            }
        });
        // 64 rows / 16-row blocks = 4 blocks, each packed exactly once
        // despite 4 threads demanding all of them.
        assert_eq!(packs.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn shared_pack_ragged_tail_block() {
        // 21 rows, block_rows 8, r 4: blocks are 8/8/5 rows, the last
        // padded to 8 lanes in its final panel.
        let a = seeded_matrix::<f64>(21, 5, 6);
        let mut direct = Vec::new();
        pack_rows(&mut direct, &a, 0..21, 0..5, 4);
        let mut buf = vec![7.7f64; packed_panel_len(21, 5, 4)];
        let shared = SharedPack::new(&mut buf, 21, 5, 4, 8);
        let pack = |rows: Range<usize>, dst: &mut [f64]| {
            pack_rows_into(dst, &a, rows, 0..5, 4);
        };
        shared.ensure_rows(0..21, &pack);
        for row in (0..21).step_by(4) {
            let off = panel_offset(row, 5, 4);
            assert_eq!(shared.panel(row), &direct[off..off + 4 * 5], "row {row}");
        }
    }
}
