//! General matrix multiplication kernels.
//!
//! Two operation shapes are provided, both accumulating into `C`:
//!
//! * [`gemm_nn`]: `C += A·B`     (`A: m×k`, `B: k×n`, `C: m×n`)
//! * [`gemm_nt`]: `C += A·Bᵀ`    (`A: m×k`, `B: n×k`, `C: m×n`)
//!
//! `gemm_nt` is the shape the SYRK algorithms use for off-diagonal blocks
//! (`C_ij = A_i · A_jᵀ`, Alg. 2 line 16). Each kernel exists as a simple
//! reference implementation and a packed, register-blocked variant built
//! on [`crate::microkernel`]: the operands are packed into k-major
//! micro-panels per `KC`-wide panel of the inner dimension, and an
//! `MR × NR` register tile is accumulated per inner call. Parallelism is
//! over disjoint row chunks of `C`, work-stolen from per-worker deques
//! (see [`crate::parallel`]); the B-side pack of each inner panel is a
//! [`SharedPack`] published `NC`-column block by block, each packed
//! exactly once by whichever worker first sweeps it, while A row blocks
//! are packed per task into [`crate::arena`] buffers. Every `C` element
//! is accumulated in ascending-k order regardless of blocking, stealing,
//! or thread count, so results are deterministic.

use crate::arena;
use crate::matrix::Matrix;
use crate::microkernel::{flatten_acc, microkernel_wide, store_add, MAX_ACC, MR, NR};
use crate::pack::{
    pack_cols_into, pack_rows, pack_rows_into, packed_panel_len, panel_offset, SharedPack,
};
use crate::parallel::{par_for_each_task, steal_task_count};
use crate::scalar::Scalar;
use crate::schedule::balanced_chunks_by_cost;
use std::ops::Range;

/// Flops performed by `C += A·B` with `A: m×k`, `B: k×n`
/// (a multiply and an add per inner iteration).
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * (m as u64) * (n as u64) * (k as u64)
}

/// Reference `C += A·B`. Row-major ikj loop order.
pub fn gemm_nn_ref<T: Scalar>(c: &mut Matrix<T>, a: &Matrix<T>, b: &Matrix<T>) {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "gemm_nn: inner dimensions {k} vs {k2}");
    assert_eq!(c.shape(), (m, n), "gemm_nn: output shape mismatch");
    for i in 0..m {
        for p in 0..k {
            let aip = a[(i, p)];
            let brow = b.row(p);
            let crow = c.row_mut(i);
            for (cj, &bj) in crow.iter_mut().zip(brow) {
                *cj = aip.mul_add(bj, *cj);
            }
        }
    }
}

/// Reference `C += A·Bᵀ`. Dot products of rows.
pub fn gemm_nt_ref<T: Scalar>(c: &mut Matrix<T>, a: &Matrix<T>, b: &Matrix<T>) {
    let (m, k) = a.shape();
    let (n, k2) = b.shape();
    assert_eq!(k, k2, "gemm_nt: inner dimensions {k} vs {k2}");
    assert_eq!(c.shape(), (m, n), "gemm_nt: output shape mismatch");
    for i in 0..m {
        let arow = a.row(i);
        for j in 0..n {
            let brow = b.row(j);
            let mut acc = T::zero();
            for (&x, &y) in arow.iter().zip(brow) {
                acc = x.mul_add(y, acc);
            }
            c[(i, j)] += acc;
        }
    }
}

/// Evenly sized `mr`-aligned row chunks of `m` rows, at most `parts` of
/// them (callers oversubscribe the worker count so stealing has slack).
fn row_chunks(m: usize, parts: usize, mr: usize) -> Vec<Range<usize>> {
    balanced_chunks_by_cost(&vec![1u64; m], parts, mr)
}

/// Split `c`'s backing slice at chunk row boundaries (rows are contiguous
/// in a row-major matrix, so each chunk is one disjoint sub-slice).
fn split_rows<'c, T: Scalar>(
    c: &'c mut Matrix<T>,
    chunks: &[Range<usize>],
) -> Vec<(Range<usize>, &'c mut [T])> {
    let cols = c.cols();
    let mut rest = c.as_mut_slice();
    let mut out = Vec::with_capacity(chunks.len());
    for r in chunks {
        let (head, tail) = rest.split_at_mut(r.len() * cols);
        out.push((r.clone(), head));
        rest = tail;
    }
    out
}

/// The packed-kernel GEMM driver. The tile geometry and blocking come
/// from the dispatched [`crate::microkernel::KernelSpec`], resolved once
/// per call so every tile of one GEMM runs the same kernel. The B-side
/// pack of the current inner panel is a [`SharedPack`] over all `n`
/// packed columns, published in `nc`-column blocks by whichever worker
/// first sweeps each window; `pack_b(cols, ks, nr, dst)` fills one such
/// block for inner range `ks` at lane width `nr`. Each task packs its
/// own A row blocks into an arena buffer and sweeps register tiles
/// (dual-panel wide on the scalar-ISA f64 path).
fn gemm_driver<T: Scalar>(
    c: &mut Matrix<T>,
    a: &Matrix<T>,
    pack_b: impl Fn(Range<usize>, Range<usize>, usize, &mut [T]) + Sync,
) {
    let d = T::dispatch();
    let (mr, nr, kc, mc, nc) = (d.spec.mr, d.spec.nr, d.spec.kc, d.spec.mc, d.spec.nc);
    let (m, k) = a.shape();
    let n = c.cols();
    let workers = crate::parallel::available_threads();
    // Oversubscribe row chunks so idle workers can steal; which chunk a
    // tile lands in never affects its value (chunk boundaries stay on
    // the global mr-tile grid).
    let chunks = row_chunks(m, steal_task_count(workers), mr);
    let kc_cap = kc.min(k);
    let mut bbuf = arena::acquire::<T>(packed_panel_len(n, kc_cap, nr));
    for p0 in (0..k).step_by(kc) {
        let pb = kc.min(k - p0);
        let ks = p0..p0 + pb;
        let bshared = SharedPack::new(bbuf.resized(packed_panel_len(n, pb, nr)), n, pb, nr, nc);
        let pack_b_block = |cols: Range<usize>, dst: &mut [T]| pack_b(cols, ks.clone(), nr, dst);
        let tasks = split_rows(c, &chunks);
        par_for_each_task(tasks, |_, (rows, cbuf)| {
            let mut apack = arena::acquire::<T>(packed_panel_len(mc.min(rows.len()), pb, mr));
            let mut acc = [T::zero(); MAX_ACC];
            let mut tiles = 0u64;
            for i0 in (rows.start..rows.end).step_by(mc) {
                let ib = mc.min(rows.end - i0);
                pack_rows(apack.vec_mut(), a, i0..i0 + ib, ks.clone(), mr);
                for jc in (0..n).step_by(nc) {
                    let jc_end = (jc + nc).min(n);
                    // nc-aligned windows map 1:1 onto publication blocks.
                    bshared.ensure_rows(jc..jc_end, &pack_b_block);
                    let mut it = 0;
                    while it < ib {
                        let wide = d.spec.wide && it + 2 * mr <= ib;
                        let take = if wide { 2 * mr } else { mr.min(ib - it) };
                        let ap0 = &apack.vec_mut()[panel_offset(it, pb, mr)..];
                        for j0 in (jc..jc_end).step_by(nr) {
                            let cc = nr.min(jc_end - j0);
                            let bp = bshared.panel(j0);
                            let off = (i0 - rows.start + it) * n + j0;
                            if wide {
                                // Scalar-ISA only, where mr == MR, nr == NR.
                                let ap1 = &ap0[panel_offset(MR, pb, MR)..];
                                let (acc0, acc1) = microkernel_wide(pb, ap0, ap1, bp);
                                tiles += 2;
                                flatten_acc(&acc0, &mut acc[..MR * NR]);
                                store_add(&mut cbuf[off..], n, MR, cc, &acc[..MR * NR], NR);
                                flatten_acc(&acc1, &mut acc[..MR * NR]);
                                store_add(
                                    &mut cbuf[off + MR * n..],
                                    n,
                                    MR,
                                    cc,
                                    &acc[..MR * NR],
                                    NR,
                                );
                            } else {
                                (d.kernel)(pb, ap0, bp, &mut acc[..mr * nr]);
                                tiles += 1;
                                store_add(&mut cbuf[off..], n, take, cc, &acc[..mr * nr], nr);
                            }
                        }
                        it += take;
                    }
                }
            }
            crate::stats::add_microkernel_calls(d.spec.isa, tiles);
        });
    }
}

/// Packed, register-blocked, multi-threaded `C += A·Bᵀ`.
pub fn gemm_nt<T: Scalar>(c: &mut Matrix<T>, a: &Matrix<T>, b: &Matrix<T>) {
    let (m, k) = a.shape();
    let (n, k2) = b.shape();
    assert_eq!(k, k2, "gemm_nt: inner dimensions {k} vs {k2}");
    assert_eq!(c.shape(), (m, n), "gemm_nt: output shape mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // Bᵀ's columns are B's rows, so the B-side pack is a row pack.
    gemm_driver(c, a, |cols, ks, r, dst| pack_rows_into(dst, b, cols, ks, r));
}

/// Packed, register-blocked, multi-threaded `C += A·B`.
pub fn gemm_nn<T: Scalar>(c: &mut Matrix<T>, a: &Matrix<T>, b: &Matrix<T>) {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "gemm_nn: inner dimensions {k} vs {k2}");
    assert_eq!(c.shape(), (m, n), "gemm_nn: output shape mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    gemm_driver(c, a, |cols, ks, r, dst| pack_cols_into(dst, b, ks, cols, r));
}

/// Convenience: `A·Bᵀ` into a fresh matrix.
pub fn mul_nt<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    let mut c = Matrix::zeros(a.rows(), b.rows());
    gemm_nt(&mut c, a, b);
    c
}

/// Convenience: `A·B` into a fresh matrix.
pub fn mul_nn<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_nn(&mut c, a, b);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_matrix;

    fn assert_close(a: &Matrix<f64>, b: &Matrix<f64>, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert!(
                    (a[(i, j)] - b[(i, j)]).abs() <= tol,
                    "mismatch at ({i},{j}): {} vs {}",
                    a[(i, j)],
                    b[(i, j)]
                );
            }
        }
    }

    #[test]
    fn gemm_nn_small_known() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = mul_nn(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gemm_nt_equals_nn_with_transpose() {
        let a = seeded_matrix(13, 9, 1);
        let b = seeded_matrix(7, 9, 2);
        let via_nt = mul_nt(&a, &b);
        let via_nn = mul_nn(&a, &b.transpose());
        assert_close(&via_nt, &via_nn, 1e-12);
    }

    #[test]
    fn blocked_matches_reference_across_shapes() {
        for (m, n, k) in [
            (1, 1, 1),
            (3, 5, 7),
            (64, 64, 64),
            (65, 130, 33),
            (100, 1, 200),
            (33, 70, 300), // spans a KC panel boundary
        ] {
            let a = seeded_matrix(m, k, 10 + m as u64);
            let b = seeded_matrix(n, k, 20 + n as u64);
            let mut c_ref = Matrix::zeros(m, n);
            gemm_nt_ref(&mut c_ref, &a, &b);
            let c_blk = mul_nt(&a, &b);
            assert_close(&c_blk, &c_ref, 1e-10);

            let bt = b.transpose();
            let mut c2_ref = Matrix::zeros(m, n);
            gemm_nn_ref(&mut c2_ref, &a, &bt);
            let c2_blk = mul_nn(&a, &bt);
            assert_close(&c2_blk, &c2_ref, 1e-10);
        }
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let a = seeded_matrix(4, 3, 5);
        let b = seeded_matrix(6, 3, 6);
        let mut c = Matrix::from_fn(4, 6, |i, j| (i + j) as f64);
        let base = c.clone();
        gemm_nt(&mut c, &a, &b);
        let mut expect = mul_nt(&a, &b);
        expect.add_assign(&base);
        assert_close(&c, &expect, 1e-12);
    }

    #[test]
    fn degenerate_dims_are_noops() {
        let a = Matrix::<f64>::zeros(0, 5);
        let b = Matrix::<f64>::zeros(3, 5);
        let mut c = Matrix::<f64>::zeros(0, 3);
        gemm_nt(&mut c, &a, &b); // must not panic

        let a = Matrix::<f64>::zeros(2, 0);
        let b = Matrix::<f64>::zeros(3, 0);
        let mut c = Matrix::from_fn(2, 3, |_, _| 1.0);
        gemm_nt(&mut c, &a, &b);
        assert_eq!(c[(1, 2)], 1.0, "k = 0 leaves C unchanged");
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
        assert_eq!(gemm_flops(0, 3, 4), 0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_inner_dims_panic() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(2, 4);
        let mut c = Matrix::<f64>::zeros(2, 2);
        gemm_nt(&mut c, &a, &b);
    }

    #[test]
    fn result_independent_of_thread_count() {
        // Bitwise assertion: a concurrent ISA-override flip mid-run
        // would change rounding, so serialize against the force tests.
        let _serial = crate::isa::test_lock::serial();
        let a = seeded_matrix::<f64>(70, 90, 31);
        let b = seeded_matrix::<f64>(50, 90, 32);
        let one = {
            let _g = crate::parallel::limit_threads(1);
            mul_nt(&a, &b)
        };
        let four = {
            let _g = crate::parallel::limit_threads(4);
            mul_nt(&a, &b)
        };
        // Bit-identical: per-element accumulation order is k-order in
        // both cases.
        assert_eq!(one, four);
    }
}
