//! General matrix multiplication kernels.
//!
//! Two operation shapes are provided, both accumulating into `C`:
//!
//! * [`gemm_nn`]: `C += A·B`     (`A: m×k`, `B: k×n`, `C: m×n`)
//! * [`gemm_nt`]: `C += A·Bᵀ`    (`A: m×k`, `B: n×k`, `C: m×n`)
//!
//! `gemm_nt` is the shape the SYRK algorithms use for off-diagonal blocks
//! (`C_ij = A_i · A_jᵀ`, Alg. 2 line 16). Each kernel exists as a simple
//! reference implementation and a cache-blocked, rayon-parallel variant;
//! the blocked variants are bit-for-bit order-compatible per row so results
//! are deterministic.

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use rayon::prelude::*;

/// Flops performed by `C += A·B` with `A: m×k`, `B: k×n`
/// (a multiply and an add per inner iteration).
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * (m as u64) * (n as u64) * (k as u64)
}

/// Reference `C += A·B`. Row-major ikj loop order.
pub fn gemm_nn_ref<T: Scalar>(c: &mut Matrix<T>, a: &Matrix<T>, b: &Matrix<T>) {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "gemm_nn: inner dimensions {k} vs {k2}");
    assert_eq!(c.shape(), (m, n), "gemm_nn: output shape mismatch");
    for i in 0..m {
        for p in 0..k {
            let aip = a[(i, p)];
            let brow = b.row(p);
            let crow = c.row_mut(i);
            for (cj, &bj) in crow.iter_mut().zip(brow) {
                *cj = aip.mul_add(bj, *cj);
            }
        }
    }
}

/// Reference `C += A·Bᵀ`. Dot products of rows.
pub fn gemm_nt_ref<T: Scalar>(c: &mut Matrix<T>, a: &Matrix<T>, b: &Matrix<T>) {
    let (m, k) = a.shape();
    let (n, k2) = b.shape();
    assert_eq!(k, k2, "gemm_nt: inner dimensions {k} vs {k2}");
    assert_eq!(c.shape(), (m, n), "gemm_nt: output shape mismatch");
    for i in 0..m {
        let arow = a.row(i);
        for j in 0..n {
            let brow = b.row(j);
            let mut acc = T::zero();
            for (&x, &y) in arow.iter().zip(brow) {
                acc = x.mul_add(y, acc);
            }
            c[(i, j)] += acc;
        }
    }
}

/// Tile edge used by the blocked kernels. Chosen so three f64 tiles fit
/// comfortably in L1 (3·64²·8 B ≈ 96 KiB is too big for L1 but fine for
/// L2; 64 empirically balances loop overhead against reuse here).
const TILE: usize = 64;

/// Blocked, rayon-parallel `C += A·Bᵀ`.
///
/// Parallelism is over disjoint row tiles of `C`, so the accumulation
/// order within each row is identical to [`gemm_nt_ref`]'s per-tile order.
pub fn gemm_nt<T: Scalar>(c: &mut Matrix<T>, a: &Matrix<T>, b: &Matrix<T>) {
    let (m, k) = a.shape();
    let (n, k2) = b.shape();
    assert_eq!(k, k2, "gemm_nt: inner dimensions {k} vs {k2}");
    assert_eq!(c.shape(), (m, n), "gemm_nt: output shape mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let cols = c.cols();
    c.as_mut_slice()
        .par_chunks_mut(TILE * cols)
        .enumerate()
        .for_each(|(ti, ctile)| {
            let i0 = ti * TILE;
            let rows = TILE.min(m - i0);
            for j0 in (0..n).step_by(TILE) {
                let jb = TILE.min(n - j0);
                for p0 in (0..k).step_by(TILE) {
                    let pb = TILE.min(k - p0);
                    for i in 0..rows {
                        let arow = &a.row(i0 + i)[p0..p0 + pb];
                        let crow = &mut ctile[i * cols + j0..i * cols + j0 + jb];
                        for (j, cj) in crow.iter_mut().enumerate() {
                            let brow = &b.row(j0 + j)[p0..p0 + pb];
                            let mut acc = T::zero();
                            for (&x, &y) in arow.iter().zip(brow) {
                                acc = x.mul_add(y, acc);
                            }
                            *cj += acc;
                        }
                    }
                }
            }
        });
}

/// Blocked, rayon-parallel `C += A·B`.
pub fn gemm_nn<T: Scalar>(c: &mut Matrix<T>, a: &Matrix<T>, b: &Matrix<T>) {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "gemm_nn: inner dimensions {k} vs {k2}");
    assert_eq!(c.shape(), (m, n), "gemm_nn: output shape mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let cols = c.cols();
    c.as_mut_slice()
        .par_chunks_mut(TILE * cols)
        .enumerate()
        .for_each(|(ti, ctile)| {
            let i0 = ti * TILE;
            let rows = TILE.min(m - i0);
            for p0 in (0..k).step_by(TILE) {
                let pb = TILE.min(k - p0);
                for i in 0..rows {
                    for p in 0..pb {
                        let aip = a[(i0 + i, p0 + p)];
                        let brow = b.row(p0 + p);
                        let crow = &mut ctile[i * cols..i * cols + n];
                        for (cj, &bj) in crow.iter_mut().zip(brow) {
                            *cj = aip.mul_add(bj, *cj);
                        }
                    }
                }
            }
        });
}

/// Convenience: `A·Bᵀ` into a fresh matrix.
pub fn mul_nt<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    let mut c = Matrix::zeros(a.rows(), b.rows());
    gemm_nt(&mut c, a, b);
    c
}

/// Convenience: `A·B` into a fresh matrix.
pub fn mul_nn<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_nn(&mut c, a, b);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_matrix;

    fn assert_close(a: &Matrix<f64>, b: &Matrix<f64>, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert!(
                    (a[(i, j)] - b[(i, j)]).abs() <= tol,
                    "mismatch at ({i},{j}): {} vs {}",
                    a[(i, j)],
                    b[(i, j)]
                );
            }
        }
    }

    #[test]
    fn gemm_nn_small_known() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = mul_nn(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gemm_nt_equals_nn_with_transpose() {
        let a = seeded_matrix(13, 9, 1);
        let b = seeded_matrix(7, 9, 2);
        let via_nt = mul_nt(&a, &b);
        let via_nn = mul_nn(&a, &b.transpose());
        assert_close(&via_nt, &via_nn, 1e-12);
    }

    #[test]
    fn blocked_matches_reference_across_shapes() {
        for (m, n, k) in [
            (1, 1, 1),
            (3, 5, 7),
            (64, 64, 64),
            (65, 130, 33),
            (100, 1, 200),
        ] {
            let a = seeded_matrix(m, k, 10 + m as u64);
            let b = seeded_matrix(n, k, 20 + n as u64);
            let mut c_ref = Matrix::zeros(m, n);
            gemm_nt_ref(&mut c_ref, &a, &b);
            let c_blk = mul_nt(&a, &b);
            assert_close(&c_blk, &c_ref, 1e-10);

            let bt = b.transpose();
            let mut c2_ref = Matrix::zeros(m, n);
            gemm_nn_ref(&mut c2_ref, &a, &bt);
            let c2_blk = mul_nn(&a, &bt);
            assert_close(&c2_blk, &c2_ref, 1e-10);
        }
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let a = seeded_matrix(4, 3, 5);
        let b = seeded_matrix(6, 3, 6);
        let mut c = Matrix::from_fn(4, 6, |i, j| (i + j) as f64);
        let base = c.clone();
        gemm_nt(&mut c, &a, &b);
        let mut expect = mul_nt(&a, &b);
        expect.add_assign(&base);
        assert_close(&c, &expect, 1e-12);
    }

    #[test]
    fn degenerate_dims_are_noops() {
        let a = Matrix::<f64>::zeros(0, 5);
        let b = Matrix::<f64>::zeros(3, 5);
        let mut c = Matrix::<f64>::zeros(0, 3);
        gemm_nt(&mut c, &a, &b); // must not panic

        let a = Matrix::<f64>::zeros(2, 0);
        let b = Matrix::<f64>::zeros(3, 0);
        let mut c = Matrix::from_fn(2, 3, |_, _| 1.0);
        gemm_nt(&mut c, &a, &b);
        assert_eq!(c[(1, 2)], 1.0, "k = 0 leaves C unchanged");
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
        assert_eq!(gemm_flops(0, 3, 4), 0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_inner_dims_panic() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(2, 4);
        let mut c = Matrix::<f64>::zeros(2, 2);
        gemm_nt(&mut c, &a, &b);
    }
}
