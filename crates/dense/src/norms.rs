//! Error norms for verifying distributed results against references.

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Maximum absolute element-wise difference between two matrices.
pub fn max_abs_diff<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "max_abs_diff shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x - y).abs().to_f64())
        .fold(0.0, f64::max)
}

/// Maximum absolute difference restricted to the lower triangle (`j ≤ i`);
/// used when only the lower triangle of a symmetric result is meaningful.
pub fn max_abs_diff_lower<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "max_abs_diff_lower shape mismatch");
    assert_eq!(
        a.rows(),
        a.cols(),
        "max_abs_diff_lower needs square matrices"
    );
    let mut worst = 0.0f64;
    for i in 0..a.rows() {
        for j in 0..=i {
            worst = worst.max((a[(i, j)] - b[(i, j)]).abs().to_f64());
        }
    }
    worst
}

/// Frobenius norm.
pub fn frobenius<T: Scalar>(a: &Matrix<T>) -> f64 {
    a.as_slice()
        .iter()
        .map(|&x| x.to_f64() * x.to_f64())
        .sum::<f64>()
        .sqrt()
}

/// A relative tolerance suitable for verifying an `n1 × n2` SYRK in `T`:
/// roughly `n2 · ε · scale`, with head-room for reduction reordering.
pub fn syrk_tolerance<T: Scalar>(n2: usize, scale: f64) -> f64 {
    64.0 * n2 as f64 * T::epsilon().to_f64() * scale.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_abs_diff_finds_worst_entry() {
        let a = Matrix::from_fn(2, 3, |i, j| (i + j) as f64);
        let mut b = a.clone();
        b[(1, 2)] += 0.5;
        b[(0, 0)] -= 0.25;
        assert_eq!(max_abs_diff(&a, &b), 0.5);
        assert_eq!(max_abs_diff(&a, &a), 0.0);
    }

    #[test]
    fn lower_variant_ignores_upper() {
        let a = Matrix::<f64>::zeros(3, 3);
        let mut b = Matrix::<f64>::zeros(3, 3);
        b[(0, 2)] = 100.0; // upper triangle: ignored
        b[(2, 0)] = 0.125;
        assert_eq!(max_abs_diff_lower(&a, &b), 0.125);
    }

    #[test]
    fn frobenius_known() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((frobenius(&a) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn tolerance_scales_with_k() {
        assert!(syrk_tolerance::<f64>(1000, 1.0) > syrk_tolerance::<f64>(10, 1.0));
        assert!(syrk_tolerance::<f64>(10, 1.0) > 0.0);
    }
}
