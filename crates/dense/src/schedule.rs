//! Flop-balanced work partitioning for triangular iteration spaces.
//!
//! Splitting the rows of a lower triangle evenly by *count* puts
//! `(p−1)/p` of the flops in the last chunk's neighbourhood — row `i`
//! costs `Θ(i·k)` flops. The schedulers here split by *cost* instead: a
//! prefix sum over per-row costs is cut at equal-cost targets, with chunk
//! boundaries rounded to a register-tile multiple so every chunk starts
//! on a micro-panel boundary of the packed kernels.

use crate::packed::Diag;
use std::ops::Range;

/// Split `0..costs.len()` into at most `parts` contiguous ranges of
/// approximately equal total cost, with every internal boundary a
/// multiple of `align`. The ranges tile the index space exactly: they are
/// disjoint, in order, and cover every index once. Fewer than `parts`
/// ranges are returned when rounding collapses a boundary (e.g. more
/// parts than aligned rows).
pub fn balanced_chunks_by_cost(costs: &[u64], parts: usize, align: usize) -> Vec<Range<usize>> {
    let n = costs.len();
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.max(1);
    let align = align.max(1);
    // prefix[i] = total cost of rows 0..i.
    let mut prefix = Vec::with_capacity(n + 1);
    let mut acc = 0u64;
    prefix.push(0u64);
    for &c in costs {
        acc += c;
        prefix.push(acc);
    }
    let total = acc as u128;
    let mut bounds = vec![0usize];
    for t in 1..parts {
        let target = (total * t as u128 / parts as u128) as u64;
        // Smallest boundary whose prefix reaches the target, rounded down
        // to the alignment so chunks start on micro-panel boundaries.
        let b = prefix.partition_point(|&x| x < target) / align * align;
        let prev = *bounds.last().unwrap();
        if b > prev && b < n {
            bounds.push(b);
        }
    }
    bounds.push(n);
    bounds.windows(2).map(|w| w[0]..w[1]).collect()
}

/// Flop-balanced row chunks for a packed `n × n` lower triangle: row `i`
/// holds `i+1` (inclusive) or `i` (strict) entries, each costing the same
/// `2k` flops, so entry counts are the cost weights.
pub fn balanced_triangle_chunks(
    n: usize,
    diag: Diag,
    parts: usize,
    align: usize,
) -> Vec<Range<usize>> {
    let costs: Vec<u64> = (0..n)
        .map(|i| match diag {
            Diag::Inclusive => i as u64 + 1,
            Diag::Strict => i as u64,
        })
        .collect();
    balanced_chunks_by_cost(&costs, parts, align)
}

/// Packed words a *per-chunk* packing strategy would copy for one
/// `kc`-wide inner panel of a SYRK-shaped triangle split into `chunks`:
/// the chunk covering rows `i..e` reads row micro-panels `0..e` of `A`
/// (its own rows on the tile's row side plus every row below the
/// diagonal bound on the column side), so packing privately it copies
/// `e.div_ceil(r)·r·kc` words. Summed over chunks this overlaps heavily —
/// the shared pack copies `packed_panel_len(n, kc, r)` words once, and
/// the scaling bench reports the ratio (≈3× at 4 chunks, growing with
/// the chunk count).
pub fn per_chunk_pack_words(chunks: &[Range<usize>], kc: usize, r: usize) -> u64 {
    let r = r.max(1);
    chunks
        .iter()
        .map(|c| (c.end.div_ceil(r) * r * kc) as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_tiling(chunks: &[Range<usize>], n: usize, align: usize) {
        assert!(!chunks.is_empty() || n == 0);
        let mut next = 0;
        for c in chunks {
            assert_eq!(c.start, next, "chunks must be contiguous");
            assert!(c.start < c.end, "chunks must be non-empty");
            assert_eq!(c.start % align, 0, "starts must be aligned");
            next = c.end;
        }
        assert_eq!(next, n, "chunks must cover all rows");
    }

    #[test]
    fn chunks_tile_and_balance() {
        for n in [1usize, 4, 7, 64, 257, 1000] {
            for parts in [1usize, 2, 3, 8] {
                for diag in [Diag::Inclusive, Diag::Strict] {
                    let chunks = balanced_triangle_chunks(n, diag, parts, 4);
                    check_tiling(&chunks, n, 4);
                    // Each chunk's cost is within one aligned row-group of
                    // the ideal share (loose check: no chunk more than
                    // twice the ideal once n is large enough).
                    if n >= 64 && parts > 1 {
                        let total = diag.packed_len(n) as f64;
                        let cost = |r: &Range<usize>| {
                            diag.packed_len(r.end) as f64 - diag.packed_len(r.start) as f64
                        };
                        for c in &chunks {
                            assert!(
                                cost(c) < 2.0 * total / parts as f64 + (4 * n) as f64,
                                "n={n} parts={parts} chunk {c:?} too heavy"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn balanced_beats_even_split() {
        // The whole point: equal-cost chunks give earlier rows more rows.
        let chunks = balanced_triangle_chunks(1024, Diag::Inclusive, 4, 4);
        assert_eq!(chunks.len(), 4);
        assert!(
            chunks[0].len() > chunks[3].len(),
            "first chunk must take more rows than the last: {chunks:?}"
        );
        // And the last boundary is near n/√2 … n, not at 3n/4.
        assert!(chunks[3].start > 1024 * 3 / 4, "{chunks:?}");
    }

    #[test]
    fn more_parts_than_rows_degrades_gracefully() {
        let chunks = balanced_triangle_chunks(3, Diag::Inclusive, 16, 4);
        check_tiling(&chunks, 3, 4);
        assert_eq!(chunks.len(), 1, "alignment collapses tiny splits");
    }

    #[test]
    fn per_chunk_pack_model_exceeds_shared_pack() {
        // n = k = 512, 4 balanced chunks: private per-chunk packing moves
        // ≈3× the words of the one shared pack (chunk ends near n/2,
        // n/√2, n·(3/4)^½… sum ≈ 3.07·n).
        let n = 512usize;
        let chunks = balanced_triangle_chunks(n, Diag::Inclusive, 4, 4);
        let per_chunk = per_chunk_pack_words(&chunks, 256, 4);
        let shared = (n.div_ceil(4) * 4 * 256) as u64;
        assert!(
            per_chunk as f64 >= 1.8 * shared as f64,
            "per-chunk {per_chunk} vs shared {shared}"
        );
        // One chunk degenerates to the shared cost.
        let one = per_chunk_pack_words(std::slice::from_ref(&(0..n)), 256, 4);
        assert_eq!(one, shared);
    }

    #[test]
    fn zero_rows_zero_chunks() {
        assert!(balanced_triangle_chunks(0, Diag::Strict, 4, 4).is_empty());
        assert!(balanced_chunks_by_cost(&[], 4, 1).is_empty());
    }

    #[test]
    fn generic_costs_split_at_mass() {
        // All the mass in the last row: one chunk ends up holding it.
        let costs = [0u64, 0, 0, 0, 0, 0, 0, 1000];
        let chunks = balanced_chunks_by_cost(&costs, 2, 1);
        check_tiling(&chunks, 8, 1);
        let last = chunks.last().unwrap();
        assert!(last.contains(&7));
    }
}
