//! Packed storage for the lower triangle of a symmetric matrix.
//!
//! SYRK's output `C = A·Aᵀ` is symmetric, so algorithms store and
//! communicate only its lower triangle. The paper's bounds distinguish the
//! *strict* lower triangle (`n(n−1)/2` entries, Theorem 1) from the
//! inclusive one (`n(n+1)/2` entries, communicated by Algorithm 1).

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Which diagonal convention a packed triangle uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Diag {
    /// Entries with `j ≤ i` are stored: `n(n+1)/2` elements.
    Inclusive,
    /// Entries with `j < i` are stored: `n(n−1)/2` elements.
    Strict,
}

impl Diag {
    /// Number of packed entries for an `n × n` triangle.
    pub fn packed_len(self, n: usize) -> usize {
        match self {
            Diag::Inclusive => n * (n + 1) / 2,
            Diag::Strict => n * (n.saturating_sub(1)) / 2,
        }
    }
}

/// The lower triangle of an `n × n` symmetric matrix in packed row-major
/// order: row `i` contributes entries `(i,0), (i,1), …` up to the diagonal.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedLower<T = f64> {
    n: usize,
    diag: Diag,
    data: Vec<T>,
}

impl<T: Scalar> PackedLower<T> {
    /// A packed triangle of zeros.
    pub fn zeros(n: usize, diag: Diag) -> Self {
        PackedLower {
            n,
            diag,
            data: vec![T::zero(); diag.packed_len(n)],
        }
    }

    /// Wrap an existing packed buffer.
    pub fn from_vec(n: usize, diag: Diag, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            diag.packed_len(n),
            "packed buffer length mismatch"
        );
        PackedLower { n, diag, data }
    }

    /// Pack the lower triangle of a square matrix.
    pub fn from_matrix(m: &Matrix<T>, diag: Diag) -> Self {
        assert_eq!(m.rows(), m.cols(), "packed triangle needs a square matrix");
        let n = m.rows();
        let mut data = Vec::with_capacity(diag.packed_len(n));
        for i in 0..n {
            let jmax = match diag {
                Diag::Inclusive => i + 1,
                Diag::Strict => i,
            };
            for j in 0..jmax {
                data.push(m[(i, j)]);
            }
        }
        PackedLower { n, diag, data }
    }

    /// Matrix dimension `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Diagonal convention.
    pub fn diag(&self) -> Diag {
        self.diag
    }

    /// Number of packed entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether there are no packed entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Packed buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Packed buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the packed buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Index of entry `(i, j)` in the packed buffer. Requires `j ≤ i`
    /// (inclusive) or `j < i` (strict).
    #[inline]
    pub fn idx(&self, i: usize, j: usize) -> usize {
        match self.diag {
            Diag::Inclusive => {
                debug_assert!(j <= i && i < self.n);
                i * (i + 1) / 2 + j
            }
            Diag::Strict => {
                debug_assert!(j < i && i < self.n);
                i * (i - 1) / 2 + j
            }
        }
    }

    /// Entry `(i, j)` of the triangle.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        self.data[self.idx(i, j)]
    }

    /// Set entry `(i, j)` of the triangle.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        let k = self.idx(i, j);
        self.data[k] = v;
    }

    /// Add `v` into entry `(i, j)`.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: T) {
        let k = self.idx(i, j);
        self.data[k] += v;
    }

    /// Expand to a full symmetric matrix (the strict variant leaves the
    /// diagonal zero).
    pub fn to_full_symmetric(&self) -> Matrix<T> {
        let mut m = Matrix::zeros(self.n, self.n);
        for i in 0..self.n {
            let jmax = match self.diag {
                Diag::Inclusive => i + 1,
                Diag::Strict => i,
            };
            for j in 0..jmax {
                let v = self.get(i, j);
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        m
    }

    /// `self += other` element-wise.
    pub fn add_assign(&mut self, other: &PackedLower<T>) {
        assert_eq!(self.n, other.n, "dimension mismatch");
        assert_eq!(self.diag, other.diag, "diagonal convention mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_lengths() {
        assert_eq!(Diag::Inclusive.packed_len(4), 10);
        assert_eq!(Diag::Strict.packed_len(4), 6);
        assert_eq!(Diag::Strict.packed_len(0), 0);
        assert_eq!(Diag::Strict.packed_len(1), 0);
        assert_eq!(Diag::Inclusive.packed_len(1), 1);
    }

    #[test]
    fn idx_is_dense_and_ordered() {
        let p = PackedLower::<f64>::zeros(5, Diag::Inclusive);
        let mut expect = 0;
        for i in 0..5 {
            for j in 0..=i {
                assert_eq!(p.idx(i, j), expect);
                expect += 1;
            }
        }
        assert_eq!(expect, p.len());

        let s = PackedLower::<f64>::zeros(5, Diag::Strict);
        let mut expect = 0;
        for i in 0..5 {
            for j in 0..i {
                assert_eq!(s.idx(i, j), expect);
                expect += 1;
            }
        }
        assert_eq!(expect, s.len());
    }

    #[test]
    fn matrix_roundtrip_inclusive() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let p = PackedLower::from_matrix(&m, Diag::Inclusive);
        let full = p.to_full_symmetric();
        for i in 0..4 {
            for j in 0..=i {
                assert_eq!(full[(i, j)], m[(i, j)]);
                assert_eq!(full[(j, i)], m[(i, j)]); // symmetrized
            }
        }
    }

    #[test]
    fn matrix_roundtrip_strict_zeroes_diagonal() {
        let m = Matrix::from_fn(3, 3, |i, j| (1 + i + j) as f64);
        let p = PackedLower::from_matrix(&m, Diag::Strict);
        let full = p.to_full_symmetric();
        assert_eq!(full[(0, 0)], 0.0);
        assert_eq!(full[(2, 2)], 0.0);
        assert_eq!(full[(2, 1)], m[(2, 1)]);
        assert_eq!(full[(1, 2)], m[(2, 1)]);
    }

    #[test]
    fn set_get_add() {
        let mut p = PackedLower::<f64>::zeros(3, Diag::Strict);
        p.set(2, 1, 5.0);
        p.add(2, 1, 1.5);
        assert_eq!(p.get(2, 1), 6.5);
        assert_eq!(p.get(1, 0), 0.0);
    }

    #[test]
    fn add_assign_sums() {
        let mut a = PackedLower::from_vec(3, Diag::Strict, vec![1.0, 2.0, 3.0]);
        let b = PackedLower::from_vec(3, Diag::Strict, vec![10.0, 20.0, 30.0]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[11.0, 22.0, 33.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bad_packed_len_panics() {
        let _ = PackedLower::from_vec(3, Diag::Strict, vec![1.0, 2.0]);
    }
}
