//! Sequential Cholesky factorization and triangular solves.
//!
//! SYRK "gets its name from its use as a subroutine within algorithms for
//! computing the Cholesky decomposition" (§1); these small local kernels
//! close the loop for the CholeskyQR / normal-equations examples — the
//! distributed SYRK produces the Gram matrix, these consume it.

use crate::arena;
use crate::matrix::Matrix;
use crate::microkernel::{flatten_acc, microkernel_wide, MAX_ACC, MR, NR};
use crate::pack::{pack_rows, packed_panel_len, panel_offset};
use crate::parallel::{available_threads, par_for_each_task, steal_task_count};
use crate::scalar::Scalar;
use crate::schedule::balanced_triangle_chunks;

/// Errors from the Cholesky factorization.
#[derive(Debug, Clone, PartialEq)]
pub enum CholeskyError {
    /// The matrix is not (numerically) positive definite: the pivot at
    /// the given index was non-positive.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
        /// The offending pivot value.
        value: f64,
    },
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CholeskyError::NotPositiveDefinite { pivot, value } => {
                write!(f, "matrix not positive definite: pivot {pivot} = {value}")
            }
        }
    }
}

impl std::error::Error for CholeskyError {}

/// Cholesky factorization `G = L·Lᵀ` of a symmetric positive-definite
/// matrix (only the lower triangle of `G` is read). Returns lower `L`.
///
/// ```
/// use syrk_dense::{Matrix, cholesky};
/// let g = Matrix::from_vec(2, 2, vec![4.0, 2.0, 2.0, 10.0]);
/// let l = cholesky(&g).unwrap();
/// assert_eq!(l[(0, 0)], 2.0);
/// assert_eq!(l[(1, 0)], 1.0);
/// assert_eq!(l[(1, 1)], 3.0);
/// ```
pub fn cholesky<T: Scalar>(g: &Matrix<T>) -> Result<Matrix<T>, CholeskyError> {
    let n = g.rows();
    assert_eq!(g.cols(), n, "cholesky needs a square matrix");
    if n <= CHOLESKY_BLOCK {
        cholesky_unblocked(g)
    } else {
        cholesky_blocked(g)
    }
}

/// Panel width of the blocked factorization; also the dispatch threshold
/// below which the unblocked kernel runs directly (the trailing-update
/// microkernel only pays off once the trailing matrix dwarfs the panel).
const CHOLESKY_BLOCK: usize = 64;

/// Textbook scalar factorization, used for small matrices and for the
/// diagonal blocks of the blocked path.
fn cholesky_unblocked<T: Scalar>(g: &Matrix<T>) -> Result<Matrix<T>, CholeskyError> {
    let n = g.rows();
    let mut l = Matrix::<T>::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = g[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if s.to_f64() <= 0.0 {
                    return Err(CholeskyError::NotPositiveDefinite {
                        pivot: i,
                        value: s.to_f64(),
                    });
                }
                l[(i, j)] = T::from_f64(s.to_f64().sqrt());
            } else {
                l[(i, j)] = s / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Right-looking blocked factorization: factor a diagonal block, solve
/// the panel below it, then subtract the panel's rank-`nb` outer product
/// from the trailing lower triangle through the register-blocked
/// microkernel (the SYRK shape is where the cubic work lives).
fn cholesky_blocked<T: Scalar>(g: &Matrix<T>) -> Result<Matrix<T>, CholeskyError> {
    let n = g.rows();
    let d = T::dispatch();
    let (mr, nr) = (d.spec.mr, d.spec.nr);
    // Work in place on the lower triangle; the strict upper stays zero.
    let mut l = Matrix::from_fn(n, n, |i, j| if j <= i { g[(i, j)] } else { T::zero() });
    // Arena-backed panel workspace, sized once for the largest trailing
    // pack (the first iteration's) so later packs never reallocate. The
    // column side gets its own pack at lane width nr when the dispatched
    // tile is rectangular; square tiles read both sides from one pack.
    let trailing_cap = n.saturating_sub(CHOLESKY_BLOCK);
    let mut panel = arena::acquire::<T>(packed_panel_len(trailing_cap, CHOLESKY_BLOCK, mr));
    let mut panel_col =
        (mr != nr).then(|| arena::acquire::<T>(packed_panel_len(trailing_cap, CHOLESKY_BLOCK, nr)));
    for k0 in (0..n).step_by(CHOLESKY_BLOCK) {
        let nb = CHOLESKY_BLOCK.min(n - k0);
        let k1 = k0 + nb;
        // Factor the diagonal block in place (prior panels are already
        // subtracted, so only intra-block updates remain).
        for i in k0..k1 {
            for j in k0..=i {
                let mut s = l[(i, j)];
                for t in k0..j {
                    s -= l[(i, t)] * l[(j, t)];
                }
                if i == j {
                    if s.to_f64() <= 0.0 {
                        return Err(CholeskyError::NotPositiveDefinite {
                            pivot: i,
                            value: s.to_f64(),
                        });
                    }
                    l[(i, j)] = T::from_f64(s.to_f64().sqrt());
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        if k1 == n {
            break;
        }
        // Panel solve: L21 · L11ᵀ = A21, row-forward substitution.
        for i in k1..n {
            for j in k0..k1 {
                let mut s = l[(i, j)];
                for t in k0..j {
                    s -= l[(i, t)] * l[(j, t)];
                }
                l[(i, j)] = s / l[(j, j)];
            }
        }
        // Trailing update: lower(A22) −= L21·L21ᵀ. The panel is packed
        // once by the caller (a task's row slice of `l` spans the full
        // matrix width including the pack-source columns, so cooperative
        // packing would alias the read with concurrent writes), then
        // flop-balanced, work-stolen row chunks of the trailing triangle
        // run in parallel — chunk rows are contiguous slices of the
        // matrix. The scalar-ISA f64 path sweeps dual-panel wide tiles
        // away from chunk tails.
        let trailing = n - k1;
        pack_rows(panel.vec_mut(), &l, k1..n, k0..k1, mr);
        if let Some(pc) = panel_col.as_mut() {
            pack_rows(pc.vec_mut(), &l, k1..n, k0..k1, nr);
        }
        let chunks = balanced_triangle_chunks(
            trailing,
            crate::packed::Diag::Inclusive,
            steal_task_count(available_threads()),
            mr,
        );
        let mut rest = &mut l.as_mut_slice()[k1 * n..];
        let mut tasks = Vec::with_capacity(chunks.len());
        for r in &chunks {
            let (head, tail) = rest.split_at_mut(r.len() * n);
            tasks.push((r.clone(), head));
            rest = tail;
        }
        let panel: &[T] = panel.vec_mut();
        let pcol: &[T] = match panel_col.as_mut() {
            Some(pc) => pc.vec_mut(),
            None => panel,
        };
        // Subtract the leading `rr` rows of the row-major `acc` tile
        // (row stride `nrs`) from the trailing triangle, clamping each
        // row `i` to its inclusive diagonal bound.
        let store = |lbuf: &mut [T],
                     acc: &[T],
                     nrs: usize,
                     row0: usize,
                     it: usize,
                     rr: usize,
                     j0: usize| {
            for u in 0..rr {
                let i = it + u;
                let jend = (j0 + nrs).min(i + 1);
                if jend <= j0 {
                    continue;
                }
                let off = (i - row0) * n + k1 + j0;
                let dst = &mut lbuf[off..off + jend - j0];
                for (d, &v) in dst.iter_mut().zip(&acc[u * nrs..]) {
                    *d -= v;
                }
            }
        };
        par_for_each_task(tasks, |_, (rows, lbuf)| {
            let mut acc = [T::zero(); MAX_ACC];
            let mut tiles = 0u64;
            let mut it = rows.start;
            while it < rows.end {
                let wide = d.spec.wide && it + 2 * mr <= rows.end;
                let take = if wide { 2 * mr } else { mr.min(rows.end - it) };
                let ap = &panel[panel_offset(it, nb, mr)..];
                if wide {
                    // Scalar-ISA only, where mr == MR, nr == NR and the
                    // column pack aliases the row pack.
                    let ap1 = &panel[panel_offset(it + MR, nb, MR)..];
                    for j0 in (0..it + take).step_by(NR) {
                        let bp = &panel[panel_offset(j0, nb, NR)..];
                        let (acc0, acc1) = microkernel_wide(nb, ap, ap1, bp);
                        tiles += 2;
                        flatten_acc(&acc0, &mut acc[..MR * NR]);
                        store(lbuf, &acc[..MR * NR], NR, rows.start, it, MR, j0);
                        flatten_acc(&acc1, &mut acc[..MR * NR]);
                        store(lbuf, &acc[..MR * NR], NR, rows.start, it + MR, MR, j0);
                    }
                } else {
                    for j0 in (0..it + take).step_by(nr) {
                        let bp = &pcol[panel_offset(j0, nb, nr)..];
                        (d.kernel)(nb, ap, bp, &mut acc[..mr * nr]);
                        tiles += 1;
                        store(lbuf, &acc[..mr * nr], nr, rows.start, it, take, j0);
                    }
                }
                it += take;
            }
            crate::stats::add_microkernel_calls(d.spec.isa, tiles);
        });
    }
    Ok(l)
}

/// Solve `X·Lᵀ = B` for `X` given lower-triangular `L` (i.e. multiply by
/// `R⁻¹` on the right, `R = Lᵀ`). Used by CholeskyQR: `Q = M·R⁻¹`.
pub fn trsm_right_transpose<T: Scalar>(b: &Matrix<T>, l: &Matrix<T>) -> Matrix<T> {
    let (m, n) = b.shape();
    assert_eq!(l.shape(), (n, n), "trsm: L must be n×n with n = B.cols()");
    let mut x = b.clone();
    for j in 0..n {
        for row in 0..m {
            let mut s = x[(row, j)];
            for k in 0..j {
                s -= x[(row, k)] * l[(j, k)]; // R[k][j] = L[j][k]
            }
            x[(row, j)] = s / l[(j, j)];
        }
    }
    x
}

/// Solve `Lᵀ·X = B` (back substitution) for each column of `B`. Completes
/// the SPD solve `G·x = b` after [`trsm_left_lower`]: `L·y = b`, then
/// `Lᵀ·x = y`.
pub fn trsm_left_transpose<T: Scalar>(l: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    let n = l.rows();
    assert_eq!(l.cols(), n);
    assert_eq!(b.rows(), n, "trsm: B must have n rows");
    let mut x = b.clone();
    for i in (0..n).rev() {
        for col in 0..b.cols() {
            let mut s = x[(i, col)];
            for k in i + 1..n {
                s -= l[(k, i)] * x[(k, col)]; // (Lᵀ)[i][k] = L[k][i]
            }
            x[(i, col)] = s / l[(i, i)];
        }
    }
    x
}

/// Solve `L·y = b` (forward substitution) for each column of `B`.
pub fn trsm_left_lower<T: Scalar>(l: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    let n = l.rows();
    assert_eq!(l.cols(), n);
    assert_eq!(b.rows(), n, "trsm: B must have n rows");
    let mut x = b.clone();
    for i in 0..n {
        for col in 0..b.cols() {
            let mut s = x[(i, col)];
            for k in 0..i {
                s -= l[(i, k)] * x[(k, col)];
            }
            x[(i, col)] = s / l[(i, i)];
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{mul_nn, mul_nt};
    use crate::norms::max_abs_diff;
    use crate::rng::seeded_matrix;
    use crate::syrk::syrk_full_reference;

    /// A random SPD matrix: G = AAᵀ + n·I.
    fn spd(n: usize, seed: u64) -> Matrix<f64> {
        let a = seeded_matrix::<f64>(n, n, seed);
        let mut g = syrk_full_reference(&a);
        for i in 0..n {
            g[(i, i)] += n as f64;
        }
        g
    }

    #[test]
    fn factorization_reconstructs() {
        for n in [1usize, 2, 5, 16, 33] {
            let g = spd(n, n as u64);
            let l = cholesky(&g).expect("SPD must factor");
            let llt = mul_nt(&l, &l);
            assert!(max_abs_diff(&llt, &g) < 1e-9 * n as f64, "n={n}");
            // L is lower triangular with positive diagonal.
            for i in 0..n {
                assert!(l[(i, i)] > 0.0);
                for j in i + 1..n {
                    assert_eq!(l[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn blocked_path_matches_unblocked() {
        // n > CHOLESKY_BLOCK exercises the microkernel trailing update,
        // including a ragged final block (150 = 2·64 + 22).
        for n in [100usize, 150] {
            let g = spd(n, n as u64);
            let blocked = cholesky(&g).expect("SPD must factor");
            let unblocked = cholesky_unblocked(&g).expect("SPD must factor");
            assert!(
                max_abs_diff(&blocked, &unblocked) < 1e-8,
                "n={n}: blocked and unblocked factors disagree"
            );
            let llt = mul_nt(&blocked, &blocked);
            assert!(max_abs_diff(&llt, &g) < 1e-8 * n as f64, "n={n}");
            for i in 0..n {
                for j in i + 1..n {
                    assert_eq!(blocked[(i, j)], 0.0, "upper triangle must stay zero");
                }
            }
        }
    }

    #[test]
    fn blocked_indefinite_reports_global_pivot() {
        // SPD leading part, a negative pivot deep in the trailing part.
        let mut g = spd(100, 9);
        g[(90, 90)] = -1e6;
        match cholesky(&g) {
            Err(CholeskyError::NotPositiveDefinite { pivot, .. }) => assert_eq!(pivot, 90),
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn indefinite_matrix_errors() {
        let mut g = Matrix::<f64>::zeros(2, 2);
        g[(0, 0)] = 1.0;
        g[(1, 1)] = -1.0;
        match cholesky(&g) {
            Err(CholeskyError::NotPositiveDefinite { pivot: 1, value }) => {
                assert!(value <= 0.0)
            }
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn trsm_right_inverts_r() {
        let g = spd(6, 3);
        let l = cholesky(&g).unwrap();
        let b = seeded_matrix::<f64>(4, 6, 8);
        let x = trsm_right_transpose(&b, &l);
        // X·Lᵀ must reproduce B.
        let xr = mul_nn(&x, &l.transpose());
        assert!(max_abs_diff(&xr, &b) < 1e-10);
    }

    #[test]
    fn trsm_left_inverts_l() {
        let g = spd(5, 4);
        let l = cholesky(&g).unwrap();
        let b = seeded_matrix::<f64>(5, 3, 9);
        let y = trsm_left_lower(&l, &b);
        let ly = mul_nn(&l, &y);
        assert!(max_abs_diff(&ly, &b) < 1e-10);
    }

    #[test]
    fn normal_equations_solve() {
        // Least squares via the normal equations — the paper's §1
        // motivating application: min ‖Mx − b‖ with G = MᵀM from SYRK.
        let (m, n) = (40usize, 6usize);
        let mm = {
            let mut t = seeded_matrix::<f64>(m, n, 5);
            for i in 0..n {
                t[(i, i)] += 3.0;
            }
            t
        };
        // Build b = M·x_true.
        let x_true = seeded_matrix::<f64>(n, 1, 6);
        let b = mul_nn(&mm, &x_true);
        // G = MᵀM, rhs = Mᵀb; solve G x = rhs via L Lᵀ.
        let g = syrk_full_reference(&mm.transpose());
        let rhs = mul_nn(&mm.transpose(), &b);
        let l = cholesky(&g).unwrap();
        let y = trsm_left_lower(&l, &rhs);
        let x = trsm_left_transpose(&l, &y);
        assert!(max_abs_diff(&x, &x_true) < 1e-8);
    }

    #[test]
    fn error_displays() {
        let e = CholeskyError::NotPositiveDefinite {
            pivot: 3,
            value: -0.5,
        };
        assert!(e.to_string().contains("pivot 3"));
    }
}
