//! Scalar element types for dense kernels.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A floating-point scalar usable in the dense kernels.
///
/// Implemented for `f32` and `f64`; the distributed algorithms are
/// instantiated with `f64` (one `f64` = one machine word in the cost
/// accounting of `syrk-machine`).
pub trait Scalar:
    Copy
    + Default
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
{
    /// Whether the dual-panel wide (`2·MR × NR`) microkernel variant
    /// pays off for this scalar. `f64` turns it on (eight 4-lane rows of
    /// accumulator fit the register file and double the reuse of each
    /// B-panel load); other scalars keep the plain `MR × NR` path. The
    /// wide kernel is bitwise-identical per element to two narrow calls,
    /// so this is purely a performance switch — results never depend on
    /// it.
    const WIDE_KERNEL: bool;
    /// The kernel dispatch for this scalar: tile geometry plus kernel
    /// function, resolved from the process ISA selection
    /// ([`crate::isa::dispatched_isa`]). `f64` picks among the explicit
    /// SIMD kernels; every other scalar always runs the portable kernel.
    /// Drivers call this once per kernel invocation so one call never
    /// mixes ISAs.
    fn dispatch() -> crate::microkernel::Dispatch<Self>;
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Lossy conversion from `f64` (used for test data generation).
    fn from_f64(x: f64) -> Self;
    /// Lossy conversion to `f64` (used for error norms).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Fused `self * a + b` (may or may not be fused in hardware).
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Machine epsilon of the type.
    fn epsilon() -> Self;
}

macro_rules! impl_scalar {
    ($t:ty, $wide:expr, $dispatch:expr) => {
        impl Scalar for $t {
            const WIDE_KERNEL: bool = $wide;
            #[inline]
            fn dispatch() -> crate::microkernel::Dispatch<Self> {
                $dispatch
            }
            #[inline(always)]
            fn zero() -> Self {
                0.0
            }
            #[inline(always)]
            fn one() -> Self {
                1.0
            }
            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline(always)]
            fn epsilon() -> Self {
                <$t>::EPSILON
            }
        }
    };
}

impl_scalar!(
    f32,
    false,
    crate::microkernel::scalar_dispatch::<Self>(Self::WIDE_KERNEL)
);
impl_scalar!(f64, true, crate::microkernel::dispatch_f64());

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_ops<T: Scalar>() -> T {
        let two = T::one() + T::one();
        let m = two * two - T::one(); // 3
        m.mul_add(two, T::one()) // 7
    }

    #[test]
    fn scalar_ops_f64() {
        assert_eq!(generic_ops::<f64>(), 7.0);
        assert_eq!((-3.5f64).abs(), 3.5);
        assert_eq!(f64::from_f64(2.5), 2.5);
    }

    #[test]
    fn scalar_ops_f32() {
        assert_eq!(generic_ops::<f32>(), 7.0);
        assert_eq!(f32::from_f64(0.5).to_f64(), 0.5);
    }
}
