//! Deterministic random matrix generation for tests and experiments.

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use rand::distributions::{Distribution, Uniform};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A `rows × cols` matrix with entries uniform in `[-1, 1)`, generated
/// deterministically from `seed` (same seed ⇒ same matrix, on any
/// platform).
pub fn seeded_matrix<T: Scalar>(rows: usize, cols: usize, seed: u64) -> Matrix<T> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dist = Uniform::new(-1.0f64, 1.0);
    Matrix::from_fn(rows, cols, |_, _| T::from_f64(dist.sample(&mut rng)))
}

/// Deterministic integer-valued matrix with entries in `[0, modulus)`.
/// Integer inputs make distributed results *exactly* equal to the
/// sequential reference (no floating-point reduction-order noise), which
/// lets the tests assert equality instead of tolerances.
pub fn seeded_int_matrix<T: Scalar>(
    rows: usize,
    cols: usize,
    modulus: u64,
    seed: u64,
) -> Matrix<T> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dist = Uniform::new(0, modulus);
    Matrix::from_fn(rows, cols, |_, _| T::from_f64(dist.sample(&mut rng) as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_matrix() {
        let a: Matrix<f64> = seeded_matrix(5, 7, 99);
        let b: Matrix<f64> = seeded_matrix(5, 7, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Matrix<f64> = seeded_matrix(5, 7, 1);
        let b: Matrix<f64> = seeded_matrix(5, 7, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn entries_in_range() {
        let a: Matrix<f64> = seeded_matrix(20, 20, 3);
        assert!(a.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
        let b: Matrix<f64> = seeded_int_matrix(20, 20, 8, 4);
        assert!(b
            .as_slice()
            .iter()
            .all(|&x| x.fract() == 0.0 && (0.0..8.0).contains(&x)));
    }
}
