//! Deterministic random matrix generation for tests and experiments.
//!
//! The generator is an in-repo xoshiro256** seeded through splitmix64 —
//! no external RNG crates, bit-identical streams on every platform. The
//! raw generator is exported as [`DetRng`] so property-style tests across
//! the workspace can share one deterministic source.

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// A small deterministic RNG (xoshiro256** with splitmix64 seeding).
///
/// Streams are a pure function of the seed and identical on every
/// platform, which is what the reproduction needs from randomness:
/// repeatable experiment inputs, not cryptographic quality.
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl DetRng {
    /// Seed the generator; any `u64` (including 0) is a valid seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            s: std::array::from_fn(|_| splitmix64(&mut sm)),
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits of a raw draw).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.gen_f64() * (hi - lo)
    }

    /// Uniform `u64` in `[0, n)` (modulo draw — the bias is far below
    /// what any test here can observe). Panics if `n == 0`.
    pub fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_below needs a positive bound");
        self.next_u64() % n
    }

    /// Uniform `usize` in `lo..hi`. Panics if the range is empty.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "gen_range needs a non-empty range");
        lo + self.gen_below((hi - lo) as u64) as usize
    }
}

/// A `rows × cols` matrix with entries uniform in `[-1, 1)`, generated
/// deterministically from `seed` (same seed ⇒ same matrix, on any
/// platform).
pub fn seeded_matrix<T: Scalar>(rows: usize, cols: usize, seed: u64) -> Matrix<T> {
    let mut rng = DetRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| T::from_f64(rng.gen_range_f64(-1.0, 1.0)))
}

/// Deterministic integer-valued matrix with entries in `[0, modulus)`.
/// Integer inputs make distributed results *exactly* equal to the
/// sequential reference (no floating-point reduction-order noise), which
/// lets the tests assert equality instead of tolerances.
pub fn seeded_int_matrix<T: Scalar>(
    rows: usize,
    cols: usize,
    modulus: u64,
    seed: u64,
) -> Matrix<T> {
    let mut rng = DetRng::seed_from_u64(seed);
    Matrix::from_fn(
        rows,
        cols,
        |_, _| T::from_f64(rng.gen_below(modulus) as f64),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_matrix() {
        let a: Matrix<f64> = seeded_matrix(5, 7, 99);
        let b: Matrix<f64> = seeded_matrix(5, 7, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Matrix<f64> = seeded_matrix(5, 7, 1);
        let b: Matrix<f64> = seeded_matrix(5, 7, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn entries_in_range() {
        let a: Matrix<f64> = seeded_matrix(20, 20, 3);
        assert!(a.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
        let b: Matrix<f64> = seeded_int_matrix(20, 20, 8, 4);
        assert!(b
            .as_slice()
            .iter()
            .all(|&x| x.fract() == 0.0 && (0.0..8.0).contains(&x)));
    }

    #[test]
    fn raw_generator_is_reproducible_and_spread() {
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Not all equal, and ranged draws respect bounds.
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        let mut r = DetRng::seed_from_u64(0);
        for _ in 0..1000 {
            let v = r.gen_range(3, 9);
            assert!((3..9).contains(&v));
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
