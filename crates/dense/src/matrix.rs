//! Row-major owned matrices.

use crate::scalar::Scalar;
use crate::view::{MatrixView, MatrixViewMut};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major, owned matrix.
///
/// The SYRK algorithms use `Matrix<f64>` so that one element equals one
/// machine word in the communication accounting.
#[derive(Clone, PartialEq)]
pub struct Matrix<T = f64> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// Build a matrix from a function of the index pair.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wrap an existing row-major buffer (`data.len()` must be `rows·cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer does not match {rows}x{cols}"
        );
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The underlying row-major buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the underlying buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// A borrowed view of the whole matrix.
    pub fn view(&self) -> MatrixView<'_, T> {
        MatrixView::new(&self.data, self.rows, self.cols, self.cols)
    }

    /// A mutable view of the whole matrix.
    pub fn view_mut(&mut self) -> MatrixViewMut<'_, T> {
        MatrixViewMut::new(&mut self.data, self.rows, self.cols, self.cols)
    }

    /// A borrowed view of the block `rows_range × cols_range`.
    pub fn block(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> MatrixView<'_, T> {
        assert!(
            row0 + rows <= self.rows && col0 + cols <= self.cols,
            "block out of range"
        );
        let start = row0 * self.cols + col0;
        MatrixView::new(&self.data[start..], rows, cols, self.cols)
    }

    /// Copy the block at `(row0, col0)` of size `rows × cols` into a new
    /// owned matrix.
    pub fn block_owned(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> Matrix<T> {
        let v = self.block(row0, col0, rows, cols);
        Matrix::from_fn(rows, cols, |i, j| v[(i, j)])
    }

    /// Write `src` into the block at `(row0, col0)`.
    pub fn set_block(&mut self, row0: usize, col0: usize, src: &Matrix<T>) {
        assert!(
            row0 + src.rows <= self.rows && col0 + src.cols <= self.cols,
            "set_block out of range"
        );
        for i in 0..src.rows {
            let dst_start = (row0 + i) * self.cols + col0;
            self.data[dst_start..dst_start + src.cols].copy_from_slice(src.row(i));
        }
    }

    /// The transpose as a new owned matrix.
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// `self += other` element-wise.
    pub fn add_assign(&mut self, other: &Matrix<T>) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// Scale every element by `s`.
    pub fn scale(&mut self, s: T) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Maximum absolute element, as `f64`.
    pub fn max_abs(&self) -> f64 {
        self.data
            .iter()
            .map(|x| x.abs().to_f64())
            .fold(0.0, f64::max)
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl<T: Scalar> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn blocks_and_set_block() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let b = m.block_owned(1, 2, 2, 2);
        assert_eq!(b[(0, 0)], 6.0);
        assert_eq!(b[(1, 1)], 11.0);

        let mut z = Matrix::zeros(4, 4);
        z.set_block(1, 2, &b);
        assert_eq!(z[(1, 2)], 6.0);
        assert_eq!(z[(2, 3)], 11.0);
        assert_eq!(z[(0, 0)], 0.0);
    }

    #[test]
    fn transpose_is_involution() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 7 + j * 3) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(2, 2, |_, _| 1.0);
        a.add_assign(&b);
        assert_eq!(a[(1, 1)], 3.0);
        a.scale(2.0);
        assert_eq!(a[(0, 0)], 2.0);
        assert_eq!(a.max_abs(), 6.0);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = Matrix::<f64>::zeros(0, 5);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.transpose().shape(), (5, 0));
    }
}
