//! Lightweight process-wide counters for the packed kernel engine.
//!
//! The distributed algorithms meter *communication* through the machine's
//! cost ledger; these counters meter the *local* engine underneath — how
//! many words the packing routines staged into micro-panels and how many
//! register-blocked microkernel tiles ran. The `trace` binary reports
//! them next to the per-phase communication table so one run shows both
//! sides of the α-β-γ model (network words and γ-side kernel work).
//!
//! Counters are relaxed atomics: kernels accumulate locally per task and
//! flush once, so the hot loops see no contention. They are cumulative
//! per process; call [`reset_kernel_stats`] before the region you want to
//! measure and [`kernel_stats`] after.

use std::sync::atomic::{AtomicU64, Ordering};

static PACK_WORDS: AtomicU64 = AtomicU64::new(0);
static MICROKERNEL_CALLS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the kernel-engine counters (see [`kernel_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Words copied into packed micro-panel buffers (A- and B-side).
    pub pack_words: u64,
    /// Register-blocked `MR × NR` microkernel invocations.
    pub microkernel_calls: u64,
}

impl KernelStats {
    /// The counter deltas since an earlier snapshot (saturating, in case
    /// another thread reset the counters in between).
    pub fn since(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            pack_words: self.pack_words.saturating_sub(earlier.pack_words),
            microkernel_calls: self
                .microkernel_calls
                .saturating_sub(earlier.microkernel_calls),
        }
    }
}

/// Snapshot the cumulative kernel-engine counters for this process.
pub fn kernel_stats() -> KernelStats {
    KernelStats {
        pack_words: PACK_WORDS.load(Ordering::Relaxed),
        microkernel_calls: MICROKERNEL_CALLS.load(Ordering::Relaxed),
    }
}

/// Zero the kernel-engine counters.
pub fn reset_kernel_stats() {
    PACK_WORDS.store(0, Ordering::Relaxed);
    MICROKERNEL_CALLS.store(0, Ordering::Relaxed);
}

pub(crate) fn add_pack_words(n: usize) {
    PACK_WORDS.fetch_add(n as u64, Ordering::Relaxed);
}

pub(crate) fn add_microkernel_calls(n: u64) {
    MICROKERNEL_CALLS.fetch_add(n, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        // Other tests in the same process also bump the counters, so only
        // assert on deltas driven from here.
        let before = kernel_stats();
        add_pack_words(128);
        add_microkernel_calls(3);
        let after = kernel_stats();
        let delta = after.since(&before);
        assert!(delta.pack_words >= 128);
        assert!(delta.microkernel_calls >= 3);
    }

    #[test]
    fn since_saturates() {
        let a = KernelStats {
            pack_words: 1,
            microkernel_calls: 1,
        };
        let b = KernelStats {
            pack_words: 5,
            microkernel_calls: 5,
        };
        let d = a.since(&b);
        assert_eq!(d.pack_words, 0);
        assert_eq!(d.microkernel_calls, 0);
    }
}
