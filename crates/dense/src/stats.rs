//! Lightweight process-wide counters for the packed kernel engine.
//!
//! The distributed algorithms meter *communication* through the machine's
//! cost ledger; these counters meter the *local* engine underneath — how
//! many words the packing routines staged into micro-panels, how many
//! register-blocked microkernel tiles ran, how the workspace arena is
//! behaving (buffer reuse vs fresh allocation), and how the
//! work-stealing runtime scheduled and migrated tasks. The `trace` binary
//! reports them next to the per-phase communication table so one run
//! shows both sides of the α-β-γ model (network words and γ-side kernel
//! work), and the scaling bench uses the arena counters to prove the
//! steady state allocates nothing.
//!
//! Since the telemetry layer landed, the counters live on the process
//! [`syrk_telemetry::registry`] under `syrk_*` names (so a Prometheus
//! scrape or `--metrics` dump sees them), and this module is the
//! engine-facing façade: the [`KernelStats`] snapshot API is unchanged,
//! and the hot-path helpers still accumulate locally per task and flush
//! once, so kernel loops see one relaxed `fetch_add` per flush and no
//! locks. They are cumulative per process; call [`reset_kernel_stats`]
//! before the region you want to measure and [`kernel_stats`] after.

use crate::isa::Isa;
use syrk_telemetry::{LazyCounter, LazyGauge};

static PACK_WORDS: LazyCounter = LazyCounter::new("syrk_pack_words");
static MICROKERNEL_CALLS: LazyCounter = LazyCounter::new("syrk_microkernel_calls");
static ARENA_HITS: LazyCounter = LazyCounter::new("syrk_arena_hits");
static ARENA_MISSES: LazyCounter = LazyCounter::new("syrk_arena_misses");
static ARENA_ALLOC_BYTES: LazyCounter = LazyCounter::new("syrk_arena_alloc_bytes");
static STEALS: LazyCounter = LazyCounter::new("syrk_steals");
/// Microkernel calls per dispatched ISA, indexed by [`Isa::index`].
static ISA_CALLS: [LazyCounter; Isa::COUNT] = [
    LazyCounter::new("syrk_microkernel_calls_scalar"),
    LazyCounter::new("syrk_microkernel_calls_avx2"),
    LazyCounter::new("syrk_microkernel_calls_avx512"),
    LazyCounter::new("syrk_microkernel_calls_neon"),
];
static TASKS_SCHEDULED: LazyCounter = LazyCounter::new("syrk_tasks_scheduled");
static TASKS_RUN: LazyCounter = LazyCounter::new("syrk_tasks_run");
static QUEUE_DEPTH: LazyGauge = LazyGauge::new("syrk_queue_depth");

/// A snapshot of the kernel-engine counters (see [`kernel_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Words copied into packed micro-panel buffers (A- and B-side).
    pub pack_words: u64,
    /// Register-blocked `MR × NR` microkernel invocations (a dual-panel
    /// wide call counts as two: it produces two tiles).
    pub microkernel_calls: u64,
    /// Workspace-arena checkouts satisfied by a cached buffer.
    pub arena_hits: u64,
    /// Workspace-arena checkouts that had to create a fresh buffer.
    pub arena_misses: u64,
    /// Bytes of backing storage newly allocated (or grown) by the arena.
    /// Zero over a region means the packed-panel working set ran entirely
    /// out of reused buffers — the steady state the arena exists for.
    pub arena_alloc_bytes: u64,
    /// Tasks executed by a worker other than the one they were dealt to.
    pub steals: u64,
    /// Microkernel calls attributed to each dispatched ISA, indexed by
    /// [`Isa::index`] (sums to `microkernel_calls`). Shows which kernel
    /// actually ran — a forced-scalar run and an AVX-512 run are
    /// otherwise indistinguishable from the aggregate count.
    pub isa_calls: [u64; Isa::COUNT],
}

impl KernelStats {
    /// The counter deltas since an earlier snapshot (saturating, in case
    /// another thread reset the counters in between).
    pub fn since(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            pack_words: self.pack_words.saturating_sub(earlier.pack_words),
            microkernel_calls: self
                .microkernel_calls
                .saturating_sub(earlier.microkernel_calls),
            arena_hits: self.arena_hits.saturating_sub(earlier.arena_hits),
            arena_misses: self.arena_misses.saturating_sub(earlier.arena_misses),
            arena_alloc_bytes: self
                .arena_alloc_bytes
                .saturating_sub(earlier.arena_alloc_bytes),
            steals: self.steals.saturating_sub(earlier.steals),
            isa_calls: std::array::from_fn(|i| {
                self.isa_calls[i].saturating_sub(earlier.isa_calls[i])
            }),
        }
    }

    /// `(name, calls)` per ISA with a nonzero count — the reporting shape
    /// the `trace` binary and the benches print.
    pub fn isa_calls_by_name(&self) -> Vec<(&'static str, u64)> {
        Isa::ALL
            .iter()
            .map(|isa| (isa.name(), self.isa_calls[isa.index()]))
            .filter(|&(_, n)| n != 0)
            .collect()
    }
}

/// Snapshot the cumulative kernel-engine counters for this process.
pub fn kernel_stats() -> KernelStats {
    KernelStats {
        pack_words: PACK_WORDS.get().get(),
        microkernel_calls: MICROKERNEL_CALLS.get().get(),
        arena_hits: ARENA_HITS.get().get(),
        arena_misses: ARENA_MISSES.get().get(),
        arena_alloc_bytes: ARENA_ALLOC_BYTES.get().get(),
        steals: STEALS.get().get(),
        isa_calls: std::array::from_fn(|i| ISA_CALLS[i].get().get()),
    }
}

/// Zero the kernel-engine counters (the runtime scheduling counters —
/// `syrk_tasks_*` — are left monotone; they are consistency-checked
/// against each other, not region-measured).
pub fn reset_kernel_stats() {
    PACK_WORDS.get().reset();
    MICROKERNEL_CALLS.get().reset();
    ARENA_HITS.get().reset();
    ARENA_MISSES.get().reset();
    ARENA_ALLOC_BYTES.get().reset();
    STEALS.get().reset();
    for c in &ISA_CALLS {
        c.get().reset();
    }
}

pub(crate) fn add_pack_words(n: usize) {
    PACK_WORDS.add(n as u64);
}

pub(crate) fn add_microkernel_calls(isa: Isa, n: u64) {
    MICROKERNEL_CALLS.add(n);
    ISA_CALLS[isa.index()].add(n);
}

pub(crate) fn add_arena_hit() {
    ARENA_HITS.inc();
}

pub(crate) fn add_arena_miss() {
    ARENA_MISSES.inc();
}

pub(crate) fn add_arena_alloc_bytes(n: usize) {
    ARENA_ALLOC_BYTES.add(n as u64);
}

pub(crate) fn add_steals(n: u64) {
    STEALS.add(n);
}

/// `n` tasks were dealt to the runtime (inline or stealing path alike).
pub(crate) fn add_tasks_scheduled(n: u64) {
    TASKS_SCHEDULED.add(n);
    QUEUE_DEPTH.add(n as i64);
}

/// One task finished executing on some worker.
pub(crate) fn add_task_run() {
    TASKS_RUN.inc();
    QUEUE_DEPTH.sub(1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use syrk_telemetry::registry;

    #[test]
    fn counters_accumulate_and_reset() {
        // Other tests in the same process also bump the counters, so only
        // assert on deltas driven from here.
        let before = kernel_stats();
        add_pack_words(128);
        add_microkernel_calls(Isa::Scalar, 3);
        add_arena_hit();
        add_arena_miss();
        add_arena_alloc_bytes(4096);
        add_steals(2);
        let after = kernel_stats();
        let delta = after.since(&before);
        assert!(delta.pack_words >= 128);
        assert!(delta.microkernel_calls >= 3);
        assert!(delta.arena_hits >= 1);
        assert!(delta.arena_misses >= 1);
        assert!(delta.arena_alloc_bytes >= 4096);
        assert!(delta.steals >= 2);
        assert!(delta.isa_calls[Isa::Scalar.index()] >= 3);
        assert!(delta
            .isa_calls_by_name()
            .iter()
            .any(|&(name, n)| name == "scalar" && n >= 3));
    }

    #[test]
    fn since_saturates() {
        let a = KernelStats {
            pack_words: 1,
            microkernel_calls: 1,
            arena_hits: 0,
            arena_misses: 0,
            arena_alloc_bytes: 0,
            steals: 0,
            isa_calls: [1, 0, 0, 0],
        };
        let b = KernelStats {
            pack_words: 5,
            microkernel_calls: 5,
            arena_hits: 7,
            arena_misses: 7,
            arena_alloc_bytes: 7,
            steals: 7,
            isa_calls: [7, 7, 7, 7],
        };
        let d = a.since(&b);
        assert_eq!(d.pack_words, 0);
        assert_eq!(d.microkernel_calls, 0);
        assert_eq!(d.arena_hits, 0);
        assert_eq!(d.arena_alloc_bytes, 0);
        assert_eq!(d.isa_calls, [0; Isa::COUNT]);
    }

    #[test]
    fn counters_surface_on_the_registry() {
        add_pack_words(1);
        add_microkernel_calls(Isa::Scalar, 1);
        let snap = registry::snapshot();
        assert!(snap.counter("syrk_pack_words").unwrap() >= 1);
        assert!(snap.counter("syrk_microkernel_calls").unwrap() >= 1);
        assert!(snap.counter("syrk_microkernel_calls_scalar").unwrap() >= 1);
        // The registry view and the KernelStats view are the same atomics.
        assert_eq!(kernel_stats().pack_words, PACK_WORDS.get().get());
    }

    #[test]
    fn isa_counter_names_follow_isa_order() {
        // The static array is indexed by Isa::index(); the registered
        // names must agree with Isa::name() so dashboards stay truthful.
        for isa in Isa::ALL {
            let expected = match isa {
                Isa::Scalar => "syrk_microkernel_calls_scalar",
                Isa::Avx2 => "syrk_microkernel_calls_avx2",
                Isa::Avx512 => "syrk_microkernel_calls_avx512",
                Isa::Neon => "syrk_microkernel_calls_neon",
            };
            assert!(expected.ends_with(isa.name()));
            assert!(std::ptr::eq(
                ISA_CALLS[isa.index()].get(),
                registry::counter(expected)
            ));
        }
    }

    #[test]
    fn task_counters_move_together() {
        let snap = registry::snapshot();
        let (sched0, run0) = (
            snap.counter("syrk_tasks_scheduled").unwrap_or(0),
            snap.counter("syrk_tasks_run").unwrap_or(0),
        );
        add_tasks_scheduled(3);
        add_task_run();
        add_task_run();
        add_task_run();
        let snap = registry::snapshot();
        assert!(snap.counter("syrk_tasks_scheduled").unwrap() >= sched0 + 3);
        assert!(snap.counter("syrk_tasks_run").unwrap() >= run0 + 3);
        assert!(snap.gauge("syrk_queue_depth").is_some());
    }
}
