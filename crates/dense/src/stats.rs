//! Lightweight process-wide counters for the packed kernel engine.
//!
//! The distributed algorithms meter *communication* through the machine's
//! cost ledger; these counters meter the *local* engine underneath — how
//! many words the packing routines staged into micro-panels, how many
//! register-blocked microkernel tiles ran, how the workspace arena is
//! behaving (buffer reuse vs fresh allocation), and how often the
//! work-stealing runtime had to migrate a task. The `trace` binary
//! reports them next to the per-phase communication table so one run
//! shows both sides of the α-β-γ model (network words and γ-side kernel
//! work), and the scaling bench uses the arena counters to prove the
//! steady state allocates nothing.
//!
//! Counters are relaxed atomics: kernels accumulate locally per task and
//! flush once, so the hot loops see no contention. They are cumulative
//! per process; call [`reset_kernel_stats`] before the region you want to
//! measure and [`kernel_stats`] after.

use crate::isa::Isa;
use std::sync::atomic::{AtomicU64, Ordering};

static PACK_WORDS: AtomicU64 = AtomicU64::new(0);
static MICROKERNEL_CALLS: AtomicU64 = AtomicU64::new(0);
static ARENA_HITS: AtomicU64 = AtomicU64::new(0);
static ARENA_MISSES: AtomicU64 = AtomicU64::new(0);
static ARENA_ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static STEALS: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
/// Microkernel calls per dispatched ISA, indexed by [`Isa::index`].
static ISA_CALLS: [AtomicU64; Isa::COUNT] = [ZERO; Isa::COUNT];

/// A snapshot of the kernel-engine counters (see [`kernel_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Words copied into packed micro-panel buffers (A- and B-side).
    pub pack_words: u64,
    /// Register-blocked `MR × NR` microkernel invocations (a dual-panel
    /// wide call counts as two: it produces two tiles).
    pub microkernel_calls: u64,
    /// Workspace-arena checkouts satisfied by a cached buffer.
    pub arena_hits: u64,
    /// Workspace-arena checkouts that had to create a fresh buffer.
    pub arena_misses: u64,
    /// Bytes of backing storage newly allocated (or grown) by the arena.
    /// Zero over a region means the packed-panel working set ran entirely
    /// out of reused buffers — the steady state the arena exists for.
    pub arena_alloc_bytes: u64,
    /// Tasks executed by a worker other than the one they were dealt to.
    pub steals: u64,
    /// Microkernel calls attributed to each dispatched ISA, indexed by
    /// [`Isa::index`] (sums to `microkernel_calls`). Shows which kernel
    /// actually ran — a forced-scalar run and an AVX-512 run are
    /// otherwise indistinguishable from the aggregate count.
    pub isa_calls: [u64; Isa::COUNT],
}

impl KernelStats {
    /// The counter deltas since an earlier snapshot (saturating, in case
    /// another thread reset the counters in between).
    pub fn since(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            pack_words: self.pack_words.saturating_sub(earlier.pack_words),
            microkernel_calls: self
                .microkernel_calls
                .saturating_sub(earlier.microkernel_calls),
            arena_hits: self.arena_hits.saturating_sub(earlier.arena_hits),
            arena_misses: self.arena_misses.saturating_sub(earlier.arena_misses),
            arena_alloc_bytes: self
                .arena_alloc_bytes
                .saturating_sub(earlier.arena_alloc_bytes),
            steals: self.steals.saturating_sub(earlier.steals),
            isa_calls: std::array::from_fn(|i| {
                self.isa_calls[i].saturating_sub(earlier.isa_calls[i])
            }),
        }
    }

    /// `(name, calls)` per ISA with a nonzero count — the reporting shape
    /// the `trace` binary and the benches print.
    pub fn isa_calls_by_name(&self) -> Vec<(&'static str, u64)> {
        Isa::ALL
            .iter()
            .map(|isa| (isa.name(), self.isa_calls[isa.index()]))
            .filter(|&(_, n)| n != 0)
            .collect()
    }
}

/// Snapshot the cumulative kernel-engine counters for this process.
pub fn kernel_stats() -> KernelStats {
    KernelStats {
        pack_words: PACK_WORDS.load(Ordering::Relaxed),
        microkernel_calls: MICROKERNEL_CALLS.load(Ordering::Relaxed),
        arena_hits: ARENA_HITS.load(Ordering::Relaxed),
        arena_misses: ARENA_MISSES.load(Ordering::Relaxed),
        arena_alloc_bytes: ARENA_ALLOC_BYTES.load(Ordering::Relaxed),
        steals: STEALS.load(Ordering::Relaxed),
        isa_calls: std::array::from_fn(|i| ISA_CALLS[i].load(Ordering::Relaxed)),
    }
}

/// Zero the kernel-engine counters.
pub fn reset_kernel_stats() {
    PACK_WORDS.store(0, Ordering::Relaxed);
    MICROKERNEL_CALLS.store(0, Ordering::Relaxed);
    ARENA_HITS.store(0, Ordering::Relaxed);
    ARENA_MISSES.store(0, Ordering::Relaxed);
    ARENA_ALLOC_BYTES.store(0, Ordering::Relaxed);
    STEALS.store(0, Ordering::Relaxed);
    for c in &ISA_CALLS {
        c.store(0, Ordering::Relaxed);
    }
}

pub(crate) fn add_pack_words(n: usize) {
    PACK_WORDS.fetch_add(n as u64, Ordering::Relaxed);
}

pub(crate) fn add_microkernel_calls(isa: Isa, n: u64) {
    MICROKERNEL_CALLS.fetch_add(n, Ordering::Relaxed);
    ISA_CALLS[isa.index()].fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn add_arena_hit() {
    ARENA_HITS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn add_arena_miss() {
    ARENA_MISSES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn add_arena_alloc_bytes(n: usize) {
    ARENA_ALLOC_BYTES.fetch_add(n as u64, Ordering::Relaxed);
}

pub(crate) fn add_steals(n: u64) {
    if n != 0 {
        STEALS.fetch_add(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        // Other tests in the same process also bump the counters, so only
        // assert on deltas driven from here.
        let before = kernel_stats();
        add_pack_words(128);
        add_microkernel_calls(Isa::Scalar, 3);
        add_arena_hit();
        add_arena_miss();
        add_arena_alloc_bytes(4096);
        add_steals(2);
        let after = kernel_stats();
        let delta = after.since(&before);
        assert!(delta.pack_words >= 128);
        assert!(delta.microkernel_calls >= 3);
        assert!(delta.arena_hits >= 1);
        assert!(delta.arena_misses >= 1);
        assert!(delta.arena_alloc_bytes >= 4096);
        assert!(delta.steals >= 2);
        assert!(delta.isa_calls[Isa::Scalar.index()] >= 3);
        assert!(delta
            .isa_calls_by_name()
            .iter()
            .any(|&(name, n)| name == "scalar" && n >= 3));
    }

    #[test]
    fn since_saturates() {
        let a = KernelStats {
            pack_words: 1,
            microkernel_calls: 1,
            arena_hits: 0,
            arena_misses: 0,
            arena_alloc_bytes: 0,
            steals: 0,
            isa_calls: [1, 0, 0, 0],
        };
        let b = KernelStats {
            pack_words: 5,
            microkernel_calls: 5,
            arena_hits: 7,
            arena_misses: 7,
            arena_alloc_bytes: 7,
            steals: 7,
            isa_calls: [7, 7, 7, 7],
        };
        let d = a.since(&b);
        assert_eq!(d.pack_words, 0);
        assert_eq!(d.microkernel_calls, 0);
        assert_eq!(d.arena_hits, 0);
        assert_eq!(d.arena_alloc_bytes, 0);
        assert_eq!(d.isa_calls, [0; Isa::COUNT]);
    }
}
