//! Local symmetric rank-2k update: `C += A·Bᵀ + B·Aᵀ` (lower triangle).
//!
//! SYR2K is the first kernel the paper's §6 names as future work for the
//! symmetric-iteration-space technique. Like SYRK it has a symmetric
//! output, so only the lower triangle is computed: `2·n(n+1)·k` flops
//! instead of GEMM's `4n²k` for the same product.

use crate::matrix::Matrix;
use crate::packed::{Diag, PackedLower};
use crate::scalar::Scalar;

/// Flops for the inclusive lower triangle of `A·Bᵀ + B·Aᵀ`, `A, B: n×k`:
/// two fused dot products per entry, `n(n+1)/2 · 4k`.
pub fn syr2k_flops(n: usize, k: usize) -> u64 {
    2 * (n as u64) * (n as u64 + 1) * (k as u64)
}

/// Reference kernel: dense `C += A·Bᵀ + B·Aᵀ` writing only `j ≤ i`.
pub fn syr2k_lower_ref<T: Scalar>(c: &mut Matrix<T>, a: &Matrix<T>, b: &Matrix<T>) {
    let (n, k) = a.shape();
    assert_eq!(
        b.shape(),
        (n, k),
        "syr2k: A and B must have identical shapes"
    );
    assert_eq!(c.shape(), (n, n), "syr2k: C must be n×n");
    for i in 0..n {
        let (ai, bi) = (a.row(i), b.row(i));
        for j in 0..=i {
            let (aj, bj) = (a.row(j), b.row(j));
            let mut acc = T::zero();
            for t in 0..k {
                acc = ai[t].mul_add(bj[t], acc);
                acc = bi[t].mul_add(aj[t], acc);
            }
            c[(i, j)] += acc;
        }
    }
}

/// Packed SYR2K: accumulate the lower triangle of `A·Bᵀ + B·Aᵀ` into
/// packed storage, via the register-blocked driver shared with
/// [`crate::syrk_packed`]: both operands are full-height shared packs
/// published cooperatively across the work-stealing workers (per side of
/// the tile when the dispatched kernel is rectangular), and each
/// register tile fuses two (narrow) microkernel calls before the store —
/// the dual-panel wide path stays off here because the fused tile
/// already consumes the extra register pressure.
pub fn syr2k_packed<T: Scalar>(c: &mut PackedLower<T>, a: &Matrix<T>, b: &Matrix<T>) {
    crate::syrk::packed_rank_update(c, a, Some(b));
}

/// Convenience: packed lower triangle of `A·Bᵀ + B·Aᵀ`.
pub fn syr2k_packed_new<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>, diag: Diag) -> PackedLower<T> {
    let mut c = PackedLower::zeros(a.rows(), diag);
    syr2k_packed(&mut c, a, b);
    c
}

/// Sequential full reference `C = A·Bᵀ + B·Aᵀ` (symmetrized), the ground
/// truth the distributed SYR2K is verified against.
pub fn syr2k_full_reference<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    let n = a.rows();
    let mut c = Matrix::zeros(n, n);
    syr2k_lower_ref(&mut c, a, b);
    for i in 0..n {
        for j in 0..i {
            let v = c[(i, j)];
            c[(j, i)] = v;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::mul_nt;
    use crate::rng::seeded_matrix;

    #[test]
    fn matches_two_gemms() {
        for (n, k) in [(1usize, 1usize), (5, 3), (16, 9), (33, 20)] {
            let a = seeded_matrix::<f64>(n, k, 1);
            let b = seeded_matrix::<f64>(n, k, 2);
            let mut want = mul_nt(&a, &b);
            want.add_assign(&mul_nt(&b, &a));
            let got = syr2k_full_reference(&a, &b);
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        (got[(i, j)] - want[(i, j)]).abs() < 1e-10,
                        "n={n} k={k} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn output_is_symmetric_by_construction() {
        let a = seeded_matrix::<f64>(7, 4, 3);
        let b = seeded_matrix::<f64>(7, 4, 4);
        let c = syr2k_full_reference(&a, &b);
        for i in 0..7 {
            for j in 0..7 {
                assert_eq!(c[(i, j)], c[(j, i)]);
            }
        }
    }

    #[test]
    fn packed_agrees_with_dense() {
        let a = seeded_matrix::<f64>(8, 5, 9);
        let b = seeded_matrix::<f64>(8, 5, 10);
        let p = syr2k_packed_new(&a, &b, Diag::Inclusive);
        let full = syr2k_full_reference(&a, &b);
        for i in 0..8 {
            for j in 0..=i {
                assert!((p.get(i, j) - full[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn syr2k_with_b_equals_a_is_twice_syrk() {
        let a = seeded_matrix::<f64>(6, 4, 7);
        let two_syrk = {
            let mut m = crate::syrk::syrk_full_reference(&a);
            m.scale(2.0);
            m
        };
        let s2 = syr2k_full_reference(&a, &a);
        for i in 0..6 {
            for j in 0..6 {
                assert!((s2[(i, j)] - two_syrk[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn flop_formula() {
        assert_eq!(syr2k_flops(4, 10), 2 * 4 * 5 * 10);
        // Exactly twice the SYRK flops for the same n, k.
        assert_eq!(syr2k_flops(9, 5), 2 * crate::syrk::syrk_flops(9, 5));
    }

    #[test]
    #[should_panic(expected = "identical shapes")]
    fn shape_mismatch_panics() {
        let a = Matrix::<f64>::zeros(3, 2);
        let b = Matrix::<f64>::zeros(3, 3);
        let _ = syr2k_full_reference(&a, &b);
    }
}
