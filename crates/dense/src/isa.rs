//! Runtime ISA selection for the f64 microkernels.
//!
//! The portable register-blocked kernel of [`crate::microkernel`] relies
//! on LLVM's autovectorizer, which tops out well below what explicit f64
//! FMA units deliver. [`crate::simd`] provides hand-written `std::arch`
//! kernels per instruction set; this module decides **which one runs**:
//!
//! 1. an in-process override installed by [`force_isa`] (an RAII guard,
//!    used by the forced-ISA test matrix and per-ISA benches),
//! 2. else the `SYRK_FORCE_ISA` environment variable (`scalar`, `avx2`,
//!    `avx512`, or `neon` — parsed and validated **once**; an unknown
//!    name or an ISA the host cannot run is a hard error, never silently
//!    ignored),
//! 3. else the best ISA runtime feature detection reports
//!    (`is_x86_feature_detected!` on x86_64; NEON is baseline on
//!    aarch64), cached in a `OnceLock` so detection happens once per
//!    process.
//!
//! The selected [`Isa`] indexes the kernel-dispatch table in
//! [`crate::microkernel`]; every dense driver resolves its
//! [`crate::microkernel::KernelSpec`] from it once per kernel call.
//! Results are **bitwise deterministic for a fixed ISA** across thread
//! counts and steal schedules (each output element accumulates in the
//! same ascending-k op sequence regardless of scheduling), but *different
//! ISAs round differently* (FMA fuses the multiply-add), so anything
//! asserting bitwise equality must pin the ISA first.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// An instruction-set architecture a microkernel is specialized for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Isa {
    /// The portable autovectorized 4×4 kernel — runs everywhere.
    Scalar,
    /// x86_64 AVX2 + FMA, 8×6 register tile.
    Avx2,
    /// x86_64 AVX-512F, 16×14 register tile.
    Avx512,
    /// aarch64 NEON, 8×6 register tile.
    Neon,
}

impl Isa {
    /// Number of ISA variants (sizes the per-ISA stat counters).
    pub const COUNT: usize = 4;

    /// All variants, in [`Isa::index`] order.
    pub const ALL: [Isa; Isa::COUNT] = [Isa::Scalar, Isa::Avx2, Isa::Avx512, Isa::Neon];

    /// Stable index of this ISA into per-ISA counter arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Isa::Scalar => 0,
            Isa::Avx2 => 1,
            Isa::Avx512 => 2,
            Isa::Neon => 3,
        }
    }

    /// The name used by `SYRK_FORCE_ISA` and in bench/trace output.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
            Isa::Neon => "neon",
        }
    }

    /// Parse a `SYRK_FORCE_ISA` value. `None` for unknown names — the
    /// caller turns that into a hard error listing the valid spellings.
    pub fn from_name(s: &str) -> Option<Isa> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Isa::Scalar),
            "avx2" => Some(Isa::Avx2),
            "avx512" => Some(Isa::Avx512),
            "neon" => Some(Isa::Neon),
            _ => None,
        }
    }

    /// Whether the running host can execute this ISA's kernel.
    pub fn available(self) -> bool {
        match self {
            Isa::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(target_arch = "aarch64")]
            Isa::Neon => true,
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Every ISA the running host can execute, best first, `Scalar` always
/// last — the iteration set of the forced-ISA test matrix and the
/// per-ISA benches.
pub fn available_isas() -> Vec<Isa> {
    let mut out: Vec<Isa> = [Isa::Avx512, Isa::Avx2, Isa::Neon]
        .into_iter()
        .filter(|isa| isa.available())
        .collect();
    out.push(Isa::Scalar);
    out
}

/// The best ISA runtime feature detection reports for this host,
/// detected once per process.
pub fn detected_isa() -> Isa {
    static DETECTED: OnceLock<Isa> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        if Isa::Avx512.available() {
            Isa::Avx512
        } else if Isa::Avx2.available() {
            Isa::Avx2
        } else if Isa::Neon.available() {
            Isa::Neon
        } else {
            Isa::Scalar
        }
    })
}

/// Validate that `isa` can run here, or die with an actionable message
/// naming who asked for it.
fn require_available(isa: Isa, origin: &str) {
    assert!(
        isa.available(),
        "{origin} requests ISA `{isa}`, but this host cannot execute it \
         (detected best: `{}`)",
        detected_isa()
    );
}

/// The `SYRK_FORCE_ISA` override, read, parsed, and validated exactly
/// once per process. Invalid values are a hard error — a typo silently
/// falling back to autodetection would publish benchmark numbers for the
/// wrong kernel.
fn env_forced_isa() -> Option<Isa> {
    static ENV_ISA: OnceLock<Option<Isa>> = OnceLock::new();
    *ENV_ISA.get_or_init(|| {
        let value = std::env::var("SYRK_FORCE_ISA").ok()?;
        let Some(isa) = Isa::from_name(&value) else {
            panic!(
                "SYRK_FORCE_ISA: unknown ISA {value:?} \
                 (valid values: scalar, avx2, avx512, neon)"
            );
        };
        require_available(isa, "SYRK_FORCE_ISA");
        Some(isa)
    })
}

/// In-process override: 0 = unset, else `Isa::index() + 1`. Process-wide
/// (the kernel dispatch must be visible to worker threads), like the
/// thread budget of [`crate::parallel::limit_threads`].
static ISA_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// RAII guard restoring the previous in-process ISA override on drop.
#[must_use = "the ISA override is restored when the guard drops"]
#[derive(Debug)]
pub struct ForcedIsaGuard {
    prev: u8,
}

impl Drop for ForcedIsaGuard {
    fn drop(&mut self) {
        ISA_OVERRIDE.store(self.prev, Ordering::Relaxed);
    }
}

/// Pin the kernel dispatch to `isa` until the returned guard drops —
/// the in-process analogue of `SYRK_FORCE_ISA`, used by the forced-ISA
/// test matrix and the per-ISA benches. Panics if the host cannot
/// execute `isa`. Process-wide and last-writer-wins under concurrent
/// guards; every ISA computes correct results, so the override affects
/// performance and rounding, never correctness.
pub fn force_isa(isa: Isa) -> ForcedIsaGuard {
    require_available(isa, "force_isa");
    let prev = ISA_OVERRIDE.swap(isa.index() as u8 + 1, Ordering::Relaxed);
    ForcedIsaGuard { prev }
}

/// The ISA the next kernel call will dispatch to: the [`force_isa`]
/// override if one is active, else `SYRK_FORCE_ISA`, else the detected
/// best. Drivers resolve this once per kernel invocation.
pub fn dispatched_isa() -> Isa {
    let forced = ISA_OVERRIDE.load(Ordering::Relaxed);
    if forced != 0 {
        return Isa::ALL[(forced - 1) as usize];
    }
    if let Some(isa) = env_forced_isa() {
        return isa;
    }
    detected_isa()
}

/// Crate-internal serialization for unit tests that either flip the
/// process-global ISA override or assert bitwise determinism that a
/// concurrent override flip would break. Integration tests and benches
/// run single-binary suites with their own locks; this one covers the
/// unit-test binary, where the cargo test harness runs modules
/// concurrently.
#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    /// Hold for the duration of any test sensitive to the ISA override.
    pub(crate) fn serial() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for isa in Isa::ALL {
            assert_eq!(Isa::from_name(isa.name()), Some(isa));
            assert_eq!(Isa::ALL[isa.index()], isa);
        }
        assert_eq!(Isa::from_name(" AVX2 "), Some(Isa::Avx2), "trim + case");
        for bad in ["", "sse", "avx", "avx512vl", "scalar2", "0"] {
            assert_eq!(Isa::from_name(bad), None, "{bad:?} must be rejected");
        }
    }

    #[test]
    fn scalar_is_always_available() {
        assert!(Isa::Scalar.available());
        let avail = available_isas();
        assert_eq!(avail.last(), Some(&Isa::Scalar));
        assert!(avail.iter().all(|i| i.available()));
        // The detected best is one of the available set.
        assert!(avail.contains(&detected_isa()));
    }

    #[test]
    fn force_guard_restores_in_order() {
        let _serial = super::test_lock::serial();
        let ambient = dispatched_isa();
        {
            let _g = force_isa(Isa::Scalar);
            assert_eq!(dispatched_isa(), Isa::Scalar);
            if Isa::Avx2.available() {
                let _g2 = force_isa(Isa::Avx2);
                assert_eq!(dispatched_isa(), Isa::Avx2);
            }
            assert_eq!(dispatched_isa(), Isa::Scalar);
        }
        assert_eq!(dispatched_isa(), ambient);
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn neon_is_unavailable_on_x86() {
        assert!(!Isa::Neon.available());
    }
}
