//! Explicit `std::arch` f64 FMA microkernels, one per ISA.
//!
//! Each kernel computes one fully-accumulated `MR × NR` register tile of
//! `Ap · Bpᵀ` from k-major packed panels (the layout contract of
//! [`crate::pack`]: `ap` holds `MR` row lanes per k-step, `bp` holds `NR`
//! column lanes; tails are zero-padded to the full tile, so these kernels
//! never see a fringe). The tile is written **row-major** into the
//! caller's `acc` scratch (`acc[i · NR + j]`), overwriting it — the same
//! contract as the portable kernel's wrapper in [`crate::microkernel`].
//!
//! Tile shapes fill each ISA's register file with accumulators while
//! leaving room for the A vectors and one B broadcast:
//!
//! * **AVX2 8×6** — 6 columns × 2 `__m256d` row vectors = 12 of 16 ymm
//!   registers accumulating, 2 for the A load pair, 1 for the broadcast.
//! * **AVX-512 16×14** — 14 × 2 `__m512d` = 28 of 32 zmm accumulating,
//!   2 + 1 for operands (31 live).
//! * **NEON 8×6** — 6 × 4 `float64x2_t` = 24 of 32 q-registers
//!   accumulating, 4 + 1 for operands.
//!
//! Determinism: every kernel accumulates in ascending-k order with a
//! fixed per-element op sequence (one fused multiply-add per k-step), so
//! for a fixed ISA the result is bitwise independent of how drivers
//! block, chunk, or steal. Across ISAs the *rounding* differs — FMA
//! skips the intermediate rounding the portable kernel's separate `*`
//! and `+` perform — which is why the dispatch is pinned per process
//! (see [`crate::isa`]) and tests compare ISAs by norm tolerance, never
//! bitwise.
//!
//! Safety: the public wrappers assert panel/scratch lengths and are only
//! reachable through the dispatch table, which offers an ISA solely when
//! [`crate::isa::Isa::available`] reported the required CPU features.

#![allow(dead_code)] // per-target: each arch compiles only its own kernels

/// Debug-check the panel/scratch contract shared by every kernel.
#[inline]
fn check_panels(kc: usize, ap: &[f64], bp: &[f64], acc: &[f64], mr: usize, nr: usize) {
    debug_assert!(ap.len() >= kc * mr, "A panel: {} < {}", ap.len(), kc * mr);
    debug_assert!(bp.len() >= kc * nr, "B panel: {} < {}", bp.len(), kc * nr);
    debug_assert!(acc.len() >= mr * nr, "acc: {} < {}", acc.len(), mr * nr);
}

#[cfg(target_arch = "x86_64")]
pub mod x86 {
    use super::check_panels;
    use core::arch::x86_64::*;

    /// AVX2 + FMA 8×6 tile of `Ap · Bpᵀ` into row-major `acc`.
    ///
    /// Caller contract: the host supports AVX2 and FMA (guaranteed by the
    /// dispatch table; debug-asserted here).
    pub fn microkernel_avx2_8x6(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [f64]) {
        check_panels(kc, ap, bp, acc, 8, 6);
        debug_assert!(is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"));
        // SAFETY: feature availability is the dispatch-table invariant;
        // panel and scratch bounds were checked above.
        unsafe { avx2_8x6(kc, ap.as_ptr(), bp.as_ptr(), acc.as_mut_ptr()) }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn avx2_8x6(kc: usize, ap: *const f64, bp: *const f64, acc: *mut f64) {
        // c[j][h] accumulates rows 4h..4h+4 of column j.
        let mut c = [[_mm256_setzero_pd(); 2]; 6];
        for p in 0..kc {
            let a0 = _mm256_loadu_pd(ap.add(p * 8));
            let a1 = _mm256_loadu_pd(ap.add(p * 8 + 4));
            // Fixed j order per k-step: each element's accumulation is
            // one FMA per k in ascending-k order — deterministic under
            // any outer blocking.
            for (j, cj) in c.iter_mut().enumerate() {
                let b = _mm256_broadcast_sd(&*bp.add(p * 6 + j));
                cj[0] = _mm256_fmadd_pd(a0, b, cj[0]);
                cj[1] = _mm256_fmadd_pd(a1, b, cj[1]);
            }
        }
        // Transpose the column-vector accumulators into the row-major
        // tile. O(mr·nr) scalar stores once per kc-long k-sweep: noise.
        let mut lane = [0.0f64; 4];
        for (j, cj) in c.iter().enumerate() {
            for (h, &v) in cj.iter().enumerate() {
                _mm256_storeu_pd(lane.as_mut_ptr(), v);
                for (l, &x) in lane.iter().enumerate() {
                    *acc.add((h * 4 + l) * 6 + j) = x;
                }
            }
        }
    }

    /// AVX-512F 16×14 tile of `Ap · Bpᵀ` into row-major `acc`.
    pub fn microkernel_avx512_16x14(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [f64]) {
        check_panels(kc, ap, bp, acc, 16, 14);
        debug_assert!(is_x86_feature_detected!("avx512f"));
        // SAFETY: as for AVX2 — dispatch guarantees avx512f; bounds
        // checked above.
        unsafe { avx512_16x14(kc, ap.as_ptr(), bp.as_ptr(), acc.as_mut_ptr()) }
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn avx512_16x14(kc: usize, ap: *const f64, bp: *const f64, acc: *mut f64) {
        // 14 columns × 2 zmm (8 rows each) = 28 accumulators; with the
        // two A vectors and the broadcast, 31 of 32 zmm are live.
        let mut c = [[_mm512_setzero_pd(); 2]; 14];
        for p in 0..kc {
            let a0 = _mm512_loadu_pd(ap.add(p * 16));
            let a1 = _mm512_loadu_pd(ap.add(p * 16 + 8));
            for (j, cj) in c.iter_mut().enumerate() {
                let b = _mm512_set1_pd(*bp.add(p * 14 + j));
                cj[0] = _mm512_fmadd_pd(a0, b, cj[0]);
                cj[1] = _mm512_fmadd_pd(a1, b, cj[1]);
            }
        }
        let mut lane = [0.0f64; 8];
        for (j, cj) in c.iter().enumerate() {
            for (h, &v) in cj.iter().enumerate() {
                _mm512_storeu_pd(lane.as_mut_ptr(), v);
                for (l, &x) in lane.iter().enumerate() {
                    *acc.add((h * 8 + l) * 14 + j) = x;
                }
            }
        }
    }
}

#[cfg(target_arch = "aarch64")]
pub mod arm {
    use super::check_panels;
    use core::arch::aarch64::*;

    /// NEON 8×6 tile of `Ap · Bpᵀ` into row-major `acc`. NEON (with f64
    /// FMA) is baseline on aarch64, so no runtime feature check is
    /// needed.
    pub fn microkernel_neon_8x6(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [f64]) {
        check_panels(kc, ap, bp, acc, 8, 6);
        // SAFETY: NEON is mandatory on aarch64; bounds checked above.
        unsafe { neon_8x6(kc, ap.as_ptr(), bp.as_ptr(), acc.as_mut_ptr()) }
    }

    #[target_feature(enable = "neon")]
    unsafe fn neon_8x6(kc: usize, ap: *const f64, bp: *const f64, acc: *mut f64) {
        // 6 columns × 4 two-lane vectors (rows 2h..2h+2) = 24 of the 32
        // q-registers accumulating.
        let mut c = [[vdupq_n_f64(0.0); 4]; 6];
        for p in 0..kc {
            let a = [
                vld1q_f64(ap.add(p * 8)),
                vld1q_f64(ap.add(p * 8 + 2)),
                vld1q_f64(ap.add(p * 8 + 4)),
                vld1q_f64(ap.add(p * 8 + 6)),
            ];
            for (j, cj) in c.iter_mut().enumerate() {
                let b = vdupq_n_f64(*bp.add(p * 6 + j));
                for (h, acc_v) in cj.iter_mut().enumerate() {
                    *acc_v = vfmaq_f64(*acc_v, a[h], b);
                }
            }
        }
        let mut lane = [0.0f64; 2];
        for (j, cj) in c.iter().enumerate() {
            for (h, &v) in cj.iter().enumerate() {
                vst1q_f64(lane.as_mut_ptr(), v);
                *acc.add((h * 2) * 6 + j) = lane[0];
                *acc.add((h * 2 + 1) * 6 + j) = lane[1];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::microkernel::dispatch_for_isa_f64;
    use crate::pack::pack_rows;
    use crate::rng::seeded_matrix;

    /// Every available SIMD kernel must agree with a plain dot-product
    /// evaluation of its tile to norm tolerance (FMA rounds differently
    /// from separate `*`/`+`, so the comparison is approximate), and
    /// padded tail lanes must come out exactly zero.
    #[test]
    fn simd_kernels_match_dot_products() {
        for isa in crate::isa::available_isas() {
            let d = dispatch_for_isa_f64(isa);
            let (mr, nr) = (d.spec.mr, d.spec.nr);
            for kc in [0usize, 1, 3, 7, 64, 257] {
                // Two live rows fewer than the tile on each side
                // exercises the zero-padded lanes.
                for (rows, cols) in [(mr, nr), (mr.saturating_sub(2), nr.saturating_sub(2))] {
                    let a = seeded_matrix::<f64>(rows, kc, 1000 + kc as u64);
                    let b = seeded_matrix::<f64>(cols, kc, 2000 + kc as u64);
                    let (mut ap, mut bp) = (Vec::new(), Vec::new());
                    pack_rows(&mut ap, &a, 0..rows, 0..kc, mr);
                    pack_rows(&mut bp, &b, 0..cols, 0..kc, nr);
                    // Zero-length packs still need one padded tile.
                    ap.resize(kc * mr, 0.0);
                    bp.resize(kc * nr, 0.0);
                    let mut acc = vec![f64::NAN; mr * nr];
                    (d.kernel)(kc, &ap, &bp, &mut acc);
                    for i in 0..mr {
                        for j in 0..nr {
                            let got = acc[i * nr + j];
                            if i >= rows || j >= cols {
                                assert_eq!(got, 0.0, "{isa} ({i},{j}): padded lane leaked");
                                continue;
                            }
                            let want: f64 = (0..kc).map(|p| a[(i, p)] * b[(j, p)]).sum();
                            assert!(
                                (got - want).abs() < 1e-10 * (kc.max(1) as f64),
                                "{isa} kc={kc} ({i},{j}): {got} vs {want}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Same panels, same ISA, repeated calls: bitwise-identical tiles
    /// (the determinism contract drivers rely on).
    #[test]
    fn simd_kernels_are_bitwise_repeatable() {
        for isa in crate::isa::available_isas() {
            let d = dispatch_for_isa_f64(isa);
            let (mr, nr, kc) = (d.spec.mr, d.spec.nr, 129usize);
            let a = seeded_matrix::<f64>(mr, kc, 3);
            let b = seeded_matrix::<f64>(nr, kc, 4);
            let (mut ap, mut bp) = (Vec::new(), Vec::new());
            pack_rows(&mut ap, &a, 0..mr, 0..kc, mr);
            pack_rows(&mut bp, &b, 0..nr, 0..kc, nr);
            let mut first = vec![0.0; mr * nr];
            (d.kernel)(kc, &ap, &bp, &mut first);
            for _ in 0..3 {
                let mut again = vec![f64::NAN; mr * nr];
                (d.kernel)(kc, &ap, &bp, &mut again);
                assert!(
                    first
                        .iter()
                        .zip(&again)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "{isa}: repeated kernel call diverged bitwise"
                );
            }
        }
    }
}
