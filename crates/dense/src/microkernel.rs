//! The register-blocked inner kernel.
//!
//! One call computes a full `MR × NR` tile of the product of two packed
//! panels (see [`crate::pack`]): the accumulator lives in a fixed-size
//! 2-D array that LLVM keeps in vector registers, the k-loop is unrolled
//! by four, and the multiply-add is written as separate `*` and `+` so
//! the autovectorizer can use packed mul/add instructions on every
//! target (a call into a fused `mul_add` libm routine would serialize
//! the loop on targets without a hardware FMA mapping).
//!
//! `MR == NR` is deliberate: SYRK-shaped drivers then feed *one* packed
//! copy of `A` to both sides of the kernel, halving pack traffic.

use crate::scalar::Scalar;

/// Register-tile rows per microkernel call.
pub const MR: usize = 4;
/// Register-tile columns per microkernel call.
pub const NR: usize = 4;

/// One fully-accumulated register tile.
pub type Acc<T> = [[T; NR]; MR];

/// Rank-1 update of the accumulator from one k-step of each panel.
#[inline(always)]
fn step<T: Scalar>(acc: &mut Acc<T>, a: &[T], b: &[T]) {
    let a: &[T; MR] = a.try_into().unwrap();
    let b: &[T; NR] = b.try_into().unwrap();
    for i in 0..MR {
        for j in 0..NR {
            acc[i][j] += a[i] * b[j];
        }
    }
}

/// `MR × NR` tile of `Ap · Bpᵀ` over `kc` inner iterations, where `ap`
/// is one k-major micro-panel of MR rows and `bp` one of NR rows.
/// Accumulation is in ascending k order, so results are deterministic
/// and independent of how callers block the surrounding loops.
#[inline]
pub fn microkernel<T: Scalar>(kc: usize, ap: &[T], bp: &[T]) -> Acc<T> {
    let mut acc = [[T::zero(); NR]; MR];
    let ap = &ap[..kc * MR];
    let bp = &bp[..kc * NR];
    let mut a4 = ap.chunks_exact(4 * MR);
    let mut b4 = bp.chunks_exact(4 * NR);
    for (a, b) in a4.by_ref().zip(b4.by_ref()) {
        step(&mut acc, &a[..MR], &b[..NR]);
        step(&mut acc, &a[MR..2 * MR], &b[NR..2 * NR]);
        step(&mut acc, &a[2 * MR..3 * MR], &b[2 * NR..3 * NR]);
        step(&mut acc, &a[3 * MR..], &b[3 * NR..]);
    }
    for (a, b) in a4
        .remainder()
        .chunks_exact(MR)
        .zip(b4.remainder().chunks_exact(NR))
    {
        step(&mut acc, a, b);
    }
    acc
}

/// Dual-panel wide kernel: two vertically adjacent `MR × NR` tiles of
/// `Ap · Bpᵀ` in one k-sweep. `ap0` and `ap1` are two *consecutive*
/// k-major micro-panels of A (rows `i..i+MR` and `i+MR..i+2MR`), `bp`
/// one panel of B; each loaded B group feeds both accumulators, doubling
/// the arithmetic per B-load and filling the register file an `MR × NR`
/// tile leaves half empty on f64 targets.
///
/// Every element's accumulation is the *same sequence* of `+`/`*` ops,
/// in the same ascending-k order and 4× unroll grouping, as the plain
/// [`microkernel`] — the two tiles' updates interleave in program order
/// but never mix lanes — so `(acc0, acc1)` is **bitwise identical** to
/// two separate narrow calls. Drivers may therefore pick wide or narrow
/// freely (per chunk, per tail) without perturbing results.
#[inline]
pub fn microkernel_wide<T: Scalar>(kc: usize, ap0: &[T], ap1: &[T], bp: &[T]) -> (Acc<T>, Acc<T>) {
    let mut acc0 = [[T::zero(); NR]; MR];
    let mut acc1 = [[T::zero(); NR]; MR];
    let ap0 = &ap0[..kc * MR];
    let ap1 = &ap1[..kc * MR];
    let bp = &bp[..kc * NR];
    let mut a0 = ap0.chunks_exact(4 * MR);
    let mut a1 = ap1.chunks_exact(4 * MR);
    let mut b4 = bp.chunks_exact(4 * NR);
    for ((x0, x1), y) in a0.by_ref().zip(a1.by_ref()).zip(b4.by_ref()) {
        step(&mut acc0, &x0[..MR], &y[..NR]);
        step(&mut acc1, &x1[..MR], &y[..NR]);
        step(&mut acc0, &x0[MR..2 * MR], &y[NR..2 * NR]);
        step(&mut acc1, &x1[MR..2 * MR], &y[NR..2 * NR]);
        step(&mut acc0, &x0[2 * MR..3 * MR], &y[2 * NR..3 * NR]);
        step(&mut acc1, &x1[2 * MR..3 * MR], &y[2 * NR..3 * NR]);
        step(&mut acc0, &x0[3 * MR..], &y[3 * NR..]);
        step(&mut acc1, &x1[3 * MR..], &y[3 * NR..]);
    }
    for ((x0, x1), y) in a0
        .remainder()
        .chunks_exact(MR)
        .zip(a1.remainder().chunks_exact(MR))
        .zip(b4.remainder().chunks_exact(NR))
    {
        step(&mut acc0, x0, y);
        step(&mut acc1, x1, y);
    }
    (acc0, acc1)
}

/// `acc[i1] + acc[i2]` lane-wise — used by SYR2K to fuse its two products
/// before a single store.
#[inline]
pub fn acc_add<T: Scalar>(x: &Acc<T>, y: &Acc<T>) -> Acc<T> {
    let mut out = [[T::zero(); NR]; MR];
    for i in 0..MR {
        for j in 0..NR {
            out[i][j] = x[i][j] + y[i][j];
        }
    }
    out
}

/// Add the leading `rows × cols` corner of `acc` into a row-major
/// destination `dst` with row stride `stride`, starting at `dst[0]`.
#[inline]
pub fn store_add<T: Scalar>(dst: &mut [T], stride: usize, rows: usize, cols: usize, acc: &Acc<T>) {
    for (i, arow) in acc.iter().enumerate().take(rows) {
        let drow = &mut dst[i * stride..i * stride + cols];
        for (d, &v) in drow.iter_mut().zip(arow.iter()) {
            *d += v;
        }
    }
}

/// Subtract variant of [`store_add`] — the Cholesky trailing update is
/// `C −= L·Lᵀ`.
#[inline]
pub fn store_sub<T: Scalar>(dst: &mut [T], stride: usize, rows: usize, cols: usize, acc: &Acc<T>) {
    for (i, arow) in acc.iter().enumerate().take(rows) {
        let drow = &mut dst[i * stride..i * stride + cols];
        for (d, &v) in drow.iter_mut().zip(arow.iter()) {
            *d -= v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::pack::pack_rows;
    use crate::rng::seeded_matrix;

    #[test]
    fn kernel_matches_scalar_dot_products() {
        for kc in [0usize, 1, 3, 4, 5, 8, 17, 64] {
            let a = seeded_matrix::<f64>(MR, kc, 100 + kc as u64);
            let b = seeded_matrix::<f64>(NR, kc, 200 + kc as u64);
            let (mut ap, mut bp) = (Vec::new(), Vec::new());
            pack_rows(&mut ap, &a, 0..MR, 0..kc, MR);
            pack_rows(&mut bp, &b, 0..NR, 0..kc, NR);
            let acc = microkernel(kc, &ap, &bp);
            for i in 0..MR {
                for j in 0..NR {
                    let want: f64 = (0..kc).map(|p| a[(i, p)] * b[(j, p)]).sum();
                    assert!(
                        (acc[i][j] - want).abs() < 1e-12,
                        "kc={kc} ({i},{j}): {} vs {want}",
                        acc[i][j]
                    );
                }
            }
        }
    }

    #[test]
    fn wide_kernel_bitwise_matches_two_narrow_calls() {
        for kc in [0usize, 1, 3, 4, 5, 8, 17, 64, 129] {
            let a = seeded_matrix::<f64>(2 * MR, kc, 300 + kc as u64);
            let b = seeded_matrix::<f64>(NR, kc, 400 + kc as u64);
            let (mut ap, mut bp) = (Vec::new(), Vec::new());
            pack_rows(&mut ap, &a, 0..2 * MR, 0..kc, MR);
            pack_rows(&mut bp, &b, 0..NR, 0..kc, NR);
            let ap0 = &ap[..kc * MR];
            let ap1 = &ap[kc * MR..];
            let (w0, w1) = microkernel_wide(kc, ap0, ap1, &bp);
            let n0 = microkernel(kc, ap0, &bp);
            let n1 = microkernel(kc, ap1, &bp);
            // Bitwise, not approximate: the wide kernel must be a pure
            // scheduling change.
            assert_eq!(w0, n0, "kc={kc} upper tile");
            assert_eq!(w1, n1, "kc={kc} lower tile");
        }
    }

    #[test]
    fn padded_lanes_do_not_leak() {
        // Pack only 2 live rows on each side; lanes 2..4 are zeros and
        // the corresponding accumulator entries must be exactly zero.
        let a = seeded_matrix::<f64>(2, 9, 5);
        let (mut ap, mut bp) = (Vec::new(), Vec::new());
        pack_rows(&mut ap, &a, 0..2, 0..9, MR);
        pack_rows(&mut bp, &a, 0..2, 0..9, NR);
        let acc = microkernel(9, &ap, &bp);
        for (i, row) in acc.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if i >= 2 || j >= 2 {
                    assert_eq!(v, 0.0);
                }
            }
        }
    }

    #[test]
    fn stores_clamp_and_accumulate() {
        let acc: Acc<f64> = std::array::from_fn(|i| std::array::from_fn(|j| (i * NR + j) as f64));
        let mut m = Matrix::from_fn(3, 5, |_, _| 1.0);
        let stride = m.cols();
        store_add(&mut m.as_mut_slice()[stride..], stride, 2, 3, &acc);
        assert_eq!(m[(0, 0)], 1.0, "rows above the store untouched");
        assert_eq!(m[(1, 0)], 1.0 + acc[0][0]);
        assert_eq!(m[(2, 2)], 1.0 + acc[1][2]);
        assert_eq!(m[(1, 3)], 1.0, "clamped columns untouched");
        store_sub(&mut m.as_mut_slice()[stride..], stride, 2, 3, &acc);
        assert!(m.as_slice().iter().all(|&x| x == 1.0));
    }
}
