//! The register-blocked inner kernels and the per-ISA dispatch table.
//!
//! One kernel call computes a full `mr × nr` tile of the product of two
//! packed panels (see [`crate::pack`]). Two kernel families exist:
//!
//! * the **portable** `MR × NR = 4 × 4` kernel below — the accumulator
//!   lives in a fixed-size 2-D array that LLVM keeps in vector
//!   registers, the k-loop is unrolled by four, and the multiply-add is
//!   written as separate `*` and `+` so the autovectorizer can use
//!   packed mul/add instructions on every target (a call into a fused
//!   `mul_add` libm routine would serialize the loop on targets without
//!   a hardware FMA mapping);
//! * the **explicit SIMD** f64 kernels of [`crate::simd`] — 8×6 AVX2,
//!   16×14 AVX-512, 8×6 NEON — selected at runtime by [`crate::isa`].
//!
//! The tile geometry is therefore no longer a compile-time constant:
//! every driver resolves a [`Dispatch`] (a [`KernelSpec`] plus a kernel
//! function pointer) once per kernel invocation via
//! [`crate::scalar::Scalar::dispatch`] and sizes its packing, blocking,
//! and chunking from the spec. The portable kernel keeps `MR == NR`
//! deliberately: SYRK-shaped drivers then feed *one* packed copy of `A`
//! to both sides of the kernel, halving pack traffic; the SIMD specs
//! have `mr ≠ nr` and those drivers fall back to one pack per operand
//! side.

use crate::isa::Isa;
use crate::scalar::Scalar;

/// Register-tile rows per portable-microkernel call.
pub const MR: usize = 4;
/// Register-tile columns per portable-microkernel call.
pub const NR: usize = 4;

/// Largest `mr` any [`KernelSpec`] uses (the AVX-512 tile height).
pub const MAX_MR: usize = 16;
/// Largest `nr` any [`KernelSpec`] uses (the AVX-512 tile width).
pub const MAX_NR: usize = 14;
/// Scratch size (in scalars) that holds any spec's `mr × nr` tile —
/// drivers keep one stack buffer of this size per task.
pub const MAX_ACC: usize = MAX_MR * MAX_NR;

/// The tile geometry and cache blocking of one dispatched kernel.
///
/// Every field is a runtime value so the same drivers serve all ISAs:
///
/// * `mr`/`nr` — register-tile shape; packed-panel lane widths follow it
///   (row-side packs use `mr` lanes, column-side packs `nr`).
/// * `kc` — inner-dimension panel depth (one `kc`-deep strip of packed
///   A and B is live at a time, ≈ L2-resident for f64).
/// * `mc` — row-block height packed per task iteration; a multiple of
///   every `mr` so shared-pack publication blocks align with tiles.
/// * `nc` — column-block width swept per row block **and** the B-side
///   shared-pack publication granularity, so it must be a multiple of
///   `nr` (which is why the SIMD specs use 252, not 256).
/// * `wide` — whether the dual-panel `2·MR × NR` portable variant runs
///   away from chunk tails (scalar f64 only; the SIMD tiles already
///   fill their register files).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelSpec {
    /// The ISA this spec belongs to.
    pub isa: Isa,
    /// Register-tile rows per kernel call.
    pub mr: usize,
    /// Register-tile columns per kernel call.
    pub nr: usize,
    /// Inner-dimension (k) panel depth.
    pub kc: usize,
    /// Row-block height per task pack iteration (multiple of `mr`).
    pub mc: usize,
    /// Column-block width / B-side publication block (multiple of `nr`).
    pub nc: usize,
    /// Whether the dual-panel wide portable kernel is used.
    pub wide: bool,
}

/// The f64 tile geometry of each ISA. `wide` is set for the scalar spec;
/// [`crate::scalar::Scalar::dispatch`] clears it for scalars whose
/// `WIDE_KERNEL` is off (f32).
pub fn spec_for_isa(isa: Isa) -> KernelSpec {
    match isa {
        Isa::Scalar => KernelSpec {
            isa,
            mr: MR,
            nr: NR,
            kc: 256,
            mc: 64,
            nc: 256,
            wide: true,
        },
        // 12 of 16 ymm (AVX2) / 24 of 32 q-regs (NEON) accumulate.
        Isa::Avx2 | Isa::Neon => KernelSpec {
            isa,
            mr: 8,
            nr: 6,
            kc: 256,
            mc: 64,
            nc: 252,
            wide: false,
        },
        // 28 of 32 zmm accumulate; 252 = 14 · 18 keeps NC | nr.
        Isa::Avx512 => KernelSpec {
            isa,
            mr: 16,
            nr: 14,
            kc: 256,
            mc: 64,
            nc: 252,
            wide: false,
        },
    }
}

/// A dispatchable microkernel: `kernel(kc, ap, bp, acc)` overwrites the
/// row-major `spec.mr × spec.nr` tile `acc` with the fully accumulated
/// product of the two packed panels.
pub type KernelFn<T> = fn(usize, &[T], &[T], &mut [T]);

/// One resolved kernel dispatch: the tile/blocking geometry plus the
/// kernel function pointer that computes tiles of that shape.
#[derive(Debug, Clone, Copy)]
pub struct Dispatch<T: Scalar> {
    /// Tile geometry and cache blocking.
    pub spec: KernelSpec,
    /// The `mr × nr` tile kernel.
    pub kernel: KernelFn<T>,
}

/// The portable kernel behind the dispatchable slice interface: computes
/// the `MR × NR` tile and copies it row-major into `acc`.
pub fn portable_kernel<T: Scalar>(kc: usize, ap: &[T], bp: &[T], acc: &mut [T]) {
    let tile = microkernel(kc, ap, bp);
    flatten_acc(&tile, acc);
}

/// The scalar-ISA dispatch for any element type. `wide` mirrors the
/// scalar's `WIDE_KERNEL` choice.
pub fn scalar_dispatch<T: Scalar>(wide: bool) -> Dispatch<T> {
    let mut spec = spec_for_isa(Isa::Scalar);
    spec.wide = wide;
    Dispatch {
        spec,
        kernel: portable_kernel::<T>,
    }
}

/// The f64 dispatch for a specific ISA. The caller must only pass ISAs
/// the host can execute (see [`crate::isa::Isa::available`]); asking for
/// a foreign-architecture ISA panics.
pub fn dispatch_for_isa_f64(isa: Isa) -> Dispatch<f64> {
    let kernel: KernelFn<f64> = match isa {
        Isa::Scalar => return scalar_dispatch::<f64>(f64::WIDE_KERNEL),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => crate::simd::x86::microkernel_avx2_8x6,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => crate::simd::x86::microkernel_avx512_16x14,
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => crate::simd::arm::microkernel_neon_8x6,
        #[allow(unreachable_patterns)]
        other => panic!("ISA {other} has no kernel on this target architecture"),
    };
    Dispatch {
        spec: spec_for_isa(isa),
        kernel,
    }
}

/// The f64 dispatch the process ISA selection picks (see
/// [`crate::isa::dispatched_isa`]). Drivers resolve this once per kernel
/// invocation, so a [`crate::isa::force_isa`] guard or `SYRK_FORCE_ISA`
/// pins every tile of a call to one kernel.
pub fn dispatch_f64() -> Dispatch<f64> {
    dispatch_for_isa_f64(crate::isa::dispatched_isa())
}

/// One fully-accumulated register tile.
pub type Acc<T> = [[T; NR]; MR];

/// Rank-1 update of the accumulator from one k-step of each panel.
#[inline(always)]
fn step<T: Scalar>(acc: &mut Acc<T>, a: &[T], b: &[T]) {
    let a: &[T; MR] = a.try_into().unwrap();
    let b: &[T; NR] = b.try_into().unwrap();
    for i in 0..MR {
        for j in 0..NR {
            acc[i][j] += a[i] * b[j];
        }
    }
}

/// `MR × NR` tile of `Ap · Bpᵀ` over `kc` inner iterations, where `ap`
/// is one k-major micro-panel of MR rows and `bp` one of NR rows.
/// Accumulation is in ascending k order, so results are deterministic
/// and independent of how callers block the surrounding loops.
#[inline]
pub fn microkernel<T: Scalar>(kc: usize, ap: &[T], bp: &[T]) -> Acc<T> {
    let mut acc = [[T::zero(); NR]; MR];
    let ap = &ap[..kc * MR];
    let bp = &bp[..kc * NR];
    let mut a4 = ap.chunks_exact(4 * MR);
    let mut b4 = bp.chunks_exact(4 * NR);
    for (a, b) in a4.by_ref().zip(b4.by_ref()) {
        step(&mut acc, &a[..MR], &b[..NR]);
        step(&mut acc, &a[MR..2 * MR], &b[NR..2 * NR]);
        step(&mut acc, &a[2 * MR..3 * MR], &b[2 * NR..3 * NR]);
        step(&mut acc, &a[3 * MR..], &b[3 * NR..]);
    }
    for (a, b) in a4
        .remainder()
        .chunks_exact(MR)
        .zip(b4.remainder().chunks_exact(NR))
    {
        step(&mut acc, a, b);
    }
    acc
}

/// Dual-panel wide kernel: two vertically adjacent `MR × NR` tiles of
/// `Ap · Bpᵀ` in one k-sweep. `ap0` and `ap1` are two *consecutive*
/// k-major micro-panels of A (rows `i..i+MR` and `i+MR..i+2MR`), `bp`
/// one panel of B; each loaded B group feeds both accumulators, doubling
/// the arithmetic per B-load and filling the register file an `MR × NR`
/// tile leaves half empty on f64 targets.
///
/// Every element's accumulation is the *same sequence* of `+`/`*` ops,
/// in the same ascending-k order and 4× unroll grouping, as the plain
/// [`microkernel`] — the two tiles' updates interleave in program order
/// but never mix lanes — so `(acc0, acc1)` is **bitwise identical** to
/// two separate narrow calls. Drivers may therefore pick wide or narrow
/// freely (per chunk, per tail) without perturbing results.
#[inline]
pub fn microkernel_wide<T: Scalar>(kc: usize, ap0: &[T], ap1: &[T], bp: &[T]) -> (Acc<T>, Acc<T>) {
    let mut acc0 = [[T::zero(); NR]; MR];
    let mut acc1 = [[T::zero(); NR]; MR];
    let ap0 = &ap0[..kc * MR];
    let ap1 = &ap1[..kc * MR];
    let bp = &bp[..kc * NR];
    let mut a0 = ap0.chunks_exact(4 * MR);
    let mut a1 = ap1.chunks_exact(4 * MR);
    let mut b4 = bp.chunks_exact(4 * NR);
    for ((x0, x1), y) in a0.by_ref().zip(a1.by_ref()).zip(b4.by_ref()) {
        step(&mut acc0, &x0[..MR], &y[..NR]);
        step(&mut acc1, &x1[..MR], &y[..NR]);
        step(&mut acc0, &x0[MR..2 * MR], &y[NR..2 * NR]);
        step(&mut acc1, &x1[MR..2 * MR], &y[NR..2 * NR]);
        step(&mut acc0, &x0[2 * MR..3 * MR], &y[2 * NR..3 * NR]);
        step(&mut acc1, &x1[2 * MR..3 * MR], &y[2 * NR..3 * NR]);
        step(&mut acc0, &x0[3 * MR..], &y[3 * NR..]);
        step(&mut acc1, &x1[3 * MR..], &y[3 * NR..]);
    }
    for ((x0, x1), y) in a0
        .remainder()
        .chunks_exact(MR)
        .zip(a1.remainder().chunks_exact(MR))
        .zip(b4.remainder().chunks_exact(NR))
    {
        step(&mut acc0, x0, y);
        step(&mut acc1, x1, y);
    }
    (acc0, acc1)
}

/// `acc[i1] + acc[i2]` lane-wise — used by SYR2K to fuse its two products
/// before a single store.
#[inline]
pub fn acc_add<T: Scalar>(x: &Acc<T>, y: &Acc<T>) -> Acc<T> {
    let mut out = [[T::zero(); NR]; MR];
    for i in 0..MR {
        for j in 0..NR {
            out[i][j] = x[i][j] + y[i][j];
        }
    }
    out
}

/// Copy a portable `MR × NR` accumulator into the row-major slice layout
/// the dispatchable kernels produce (`out[i · NR + j] = acc[i][j]`), so
/// the wide portable path and the SIMD path share one store routine.
#[inline]
pub fn flatten_acc<T: Scalar>(acc: &Acc<T>, out: &mut [T]) {
    for (row, dst) in acc.iter().zip(out.chunks_exact_mut(NR)) {
        dst.copy_from_slice(row);
    }
}

/// Add the leading `rows × cols` corner of a row-major `mr × nr` tile
/// `acc` (row stride `nr`) into a row-major destination `dst` with row
/// stride `stride`, starting at `dst[0]`.
#[inline]
pub fn store_add<T: Scalar>(
    dst: &mut [T],
    stride: usize,
    rows: usize,
    cols: usize,
    acc: &[T],
    nr: usize,
) {
    for (i, arow) in acc.chunks_exact(nr).enumerate().take(rows) {
        let drow = &mut dst[i * stride..i * stride + cols];
        for (d, &v) in drow.iter_mut().zip(arow.iter()) {
            *d += v;
        }
    }
}

/// Subtract variant of [`store_add`] — the Cholesky trailing update is
/// `C −= L·Lᵀ`.
#[inline]
pub fn store_sub<T: Scalar>(
    dst: &mut [T],
    stride: usize,
    rows: usize,
    cols: usize,
    acc: &[T],
    nr: usize,
) {
    for (i, arow) in acc.chunks_exact(nr).enumerate().take(rows) {
        let drow = &mut dst[i * stride..i * stride + cols];
        for (d, &v) in drow.iter_mut().zip(arow.iter()) {
            *d -= v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::pack::pack_rows;
    use crate::rng::seeded_matrix;

    #[test]
    fn kernel_matches_scalar_dot_products() {
        for kc in [0usize, 1, 3, 4, 5, 8, 17, 64] {
            let a = seeded_matrix::<f64>(MR, kc, 100 + kc as u64);
            let b = seeded_matrix::<f64>(NR, kc, 200 + kc as u64);
            let (mut ap, mut bp) = (Vec::new(), Vec::new());
            pack_rows(&mut ap, &a, 0..MR, 0..kc, MR);
            pack_rows(&mut bp, &b, 0..NR, 0..kc, NR);
            let acc = microkernel(kc, &ap, &bp);
            for i in 0..MR {
                for j in 0..NR {
                    let want: f64 = (0..kc).map(|p| a[(i, p)] * b[(j, p)]).sum();
                    assert!(
                        (acc[i][j] - want).abs() < 1e-12,
                        "kc={kc} ({i},{j}): {} vs {want}",
                        acc[i][j]
                    );
                }
            }
        }
    }

    #[test]
    fn wide_kernel_bitwise_matches_two_narrow_calls() {
        for kc in [0usize, 1, 3, 4, 5, 8, 17, 64, 129] {
            let a = seeded_matrix::<f64>(2 * MR, kc, 300 + kc as u64);
            let b = seeded_matrix::<f64>(NR, kc, 400 + kc as u64);
            let (mut ap, mut bp) = (Vec::new(), Vec::new());
            pack_rows(&mut ap, &a, 0..2 * MR, 0..kc, MR);
            pack_rows(&mut bp, &b, 0..NR, 0..kc, NR);
            let ap0 = &ap[..kc * MR];
            let ap1 = &ap[kc * MR..];
            let (w0, w1) = microkernel_wide(kc, ap0, ap1, &bp);
            let n0 = microkernel(kc, ap0, &bp);
            let n1 = microkernel(kc, ap1, &bp);
            // Bitwise, not approximate: the wide kernel must be a pure
            // scheduling change.
            assert_eq!(w0, n0, "kc={kc} upper tile");
            assert_eq!(w1, n1, "kc={kc} lower tile");
        }
    }

    #[test]
    fn padded_lanes_do_not_leak() {
        // Pack only 2 live rows on each side; lanes 2..4 are zeros and
        // the corresponding accumulator entries must be exactly zero.
        let a = seeded_matrix::<f64>(2, 9, 5);
        let (mut ap, mut bp) = (Vec::new(), Vec::new());
        pack_rows(&mut ap, &a, 0..2, 0..9, MR);
        pack_rows(&mut bp, &a, 0..2, 0..9, NR);
        let acc = microkernel(9, &ap, &bp);
        for (i, row) in acc.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if i >= 2 || j >= 2 {
                    assert_eq!(v, 0.0);
                }
            }
        }
    }

    #[test]
    fn stores_clamp_and_accumulate() {
        let acc: Vec<f64> = (0..MR * NR).map(|x| x as f64).collect();
        let mut m = Matrix::from_fn(3, 5, |_, _| 1.0);
        let stride = m.cols();
        store_add(&mut m.as_mut_slice()[stride..], stride, 2, 3, &acc, NR);
        assert_eq!(m[(0, 0)], 1.0, "rows above the store untouched");
        assert_eq!(m[(1, 0)], 1.0 + acc[0]);
        assert_eq!(m[(2, 2)], 1.0 + acc[NR + 2]);
        assert_eq!(m[(1, 3)], 1.0, "clamped columns untouched");
        store_sub(&mut m.as_mut_slice()[stride..], stride, 2, 3, &acc, NR);
        assert!(m.as_slice().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn portable_kernel_flattens_the_tile() {
        let kc = 11;
        let a = seeded_matrix::<f64>(MR, kc, 9);
        let b = seeded_matrix::<f64>(NR, kc, 10);
        let (mut ap, mut bp) = (Vec::new(), Vec::new());
        pack_rows(&mut ap, &a, 0..MR, 0..kc, MR);
        pack_rows(&mut bp, &b, 0..NR, 0..kc, NR);
        let tile = microkernel(kc, &ap, &bp);
        let mut flat = vec![f64::NAN; MR * NR];
        portable_kernel(kc, &ap, &bp, &mut flat);
        for i in 0..MR {
            for j in 0..NR {
                assert_eq!(flat[i * NR + j].to_bits(), tile[i][j].to_bits());
            }
        }
    }

    #[test]
    fn specs_satisfy_blocking_invariants() {
        for isa in Isa::ALL {
            let s = spec_for_isa(isa);
            assert_eq!(s.isa, isa);
            assert!(s.mr <= MAX_MR && s.nr <= MAX_NR, "{isa}: tile too big");
            assert!(s.mc.is_multiple_of(s.mr), "{isa}: mc must align to mr");
            assert!(s.nc.is_multiple_of(s.nr), "{isa}: nc must align to nr");
            assert!(s.kc > 0 && s.mc > 0 && s.nc > 0);
            assert_eq!(s.wide, isa == Isa::Scalar, "only scalar runs wide");
        }
        let d32 = <f32 as Scalar>::dispatch();
        assert!(!d32.spec.wide, "f32 keeps the wide kernel off");
        assert_eq!(d32.spec.isa, Isa::Scalar);
    }
}
