//! End-to-end tests of the work-stealing kernel runtime: thread-budget
//! nesting, bitwise determinism of every parallel kernel across thread
//! counts (the chunking, the steal schedule, and the wide/narrow kernel
//! choice must all be invisible in the results), and the arena's
//! zero-allocation steady state.
//!
//! The thread budget and the arena counters are process-global, and the
//! test harness runs tests on concurrent threads, so every test
//! serializes on one mutex: assertions about budget values or counter
//! deltas would otherwise race.

use std::sync::{Mutex, MutexGuard};
use syrk_dense::{
    available_isas, available_threads, cholesky, dispatched_isa, force_isa, kernel_stats,
    limit_threads, max_abs_diff, mul_nn, mul_nt, seeded_matrix, syr2k_packed_new,
    syrk_full_reference, syrk_packed_new, Diag, Isa, Matrix, PackedLower,
};

static LOCK: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Ragged edge cases around the register tiles (scalar 4×4 up to
/// AVX-512 16×14) plus shapes that span mc/kc block boundaries.
const SIZES: [usize; 6] = [1, 4, 5, 64, 257, 13];

#[test]
fn budget_guard_nesting_restores_in_order() {
    let _s = serial();
    let ambient = available_threads();
    {
        let _outer = limit_threads(5);
        assert_eq!(available_threads(), 5);
        {
            let _inner = limit_threads(2);
            assert_eq!(available_threads(), 2);
            {
                let _innermost = limit_threads(7);
                assert_eq!(available_threads(), 7);
            }
            assert_eq!(available_threads(), 2, "innermost guard restores");
        }
        assert_eq!(available_threads(), 5, "inner guard restores");
    }
    assert_eq!(available_threads(), ambient, "outer guard restores");
}

#[test]
fn syrk_bitwise_identical_across_thread_counts() {
    let _s = serial();
    for &n in &SIZES {
        for &k in &[1usize, 5, 64, 257] {
            let a = seeded_matrix::<f64>(n, k, (31 * n + k) as u64);
            for diag in [Diag::Inclusive, Diag::Strict] {
                let baseline = {
                    let _g = limit_threads(1);
                    syrk_packed_new(&a, diag)
                };
                for threads in [2usize, 4] {
                    let _g = limit_threads(threads);
                    let got = syrk_packed_new(&a, diag);
                    assert_eq!(
                        got, baseline,
                        "syrk n={n} k={k} {diag:?} diverged at {threads} threads"
                    );
                }
            }
        }
    }
}

#[test]
fn gemm_bitwise_identical_across_thread_counts() {
    let _s = serial();
    for &(m, n, k) in &[
        (1usize, 1usize, 1usize),
        (5, 7, 5),
        (64, 64, 64),
        (257, 65, 129),
    ] {
        let a = seeded_matrix::<f64>(m, k, 3 * m as u64 + 1);
        let b = seeded_matrix::<f64>(n, k, 5 * n as u64 + 2);
        let bt = b.transpose();
        let (base_nt, base_nn) = {
            let _g = limit_threads(1);
            (mul_nt(&a, &b), mul_nn(&a, &bt))
        };
        for threads in [2usize, 4] {
            let _g = limit_threads(threads);
            assert_eq!(
                mul_nt(&a, &b),
                base_nt,
                "gemm_nt {m}x{n}x{k} at {threads} threads"
            );
            assert_eq!(
                mul_nn(&a, &bt),
                base_nn,
                "gemm_nn {m}x{n}x{k} at {threads} threads"
            );
        }
    }
}

#[test]
fn syr2k_bitwise_identical_across_thread_counts() {
    let _s = serial();
    let (n, k) = (101usize, 67usize);
    let a = seeded_matrix::<f64>(n, k, 17);
    let b = seeded_matrix::<f64>(n, k, 18);
    let baseline = {
        let _g = limit_threads(1);
        syr2k_packed_new(&a, &b, Diag::Inclusive)
    };
    for threads in [2usize, 4] {
        let _g = limit_threads(threads);
        assert_eq!(
            syr2k_packed_new(&a, &b, Diag::Inclusive),
            baseline,
            "syr2k diverged at {threads} threads"
        );
    }
}

/// A random SPD matrix: G = A·Aᵀ + n·I.
fn spd(n: usize, seed: u64) -> Matrix<f64> {
    let a = seeded_matrix::<f64>(n, n, seed);
    let mut g = syrk_full_reference(&a);
    for i in 0..n {
        g[(i, i)] += n as f64;
    }
    g
}

#[test]
fn cholesky_bitwise_identical_across_thread_counts() {
    let _s = serial();
    // n > 2 panel blocks with a ragged tail exercises the parallel
    // trailing update (wide + narrow paths).
    let g = spd(257, 7);
    let baseline = {
        let _g = limit_threads(1);
        cholesky(&g).expect("SPD must factor")
    };
    for threads in [2usize, 4] {
        let _g2 = limit_threads(threads);
        let got = cholesky(&g).expect("SPD must factor");
        assert_eq!(got, baseline, "cholesky diverged at {threads} threads");
    }
}

#[test]
fn repeated_stolen_runs_are_identical() {
    let _s = serial();
    // Same budget, four runs: the steal schedule differs run to run, the
    // bits must not.
    let a = seeded_matrix::<f64>(157, 93, 23);
    let _g = limit_threads(4);
    let first = syrk_packed_new(&a, Diag::Inclusive);
    for run in 1..4 {
        assert_eq!(
            syrk_packed_new(&a, Diag::Inclusive),
            first,
            "run {run} diverged under identical budget"
        );
    }
}

fn packed_max_abs_diff(a: &PackedLower<f64>, b: &PackedLower<f64>) -> f64 {
    assert_eq!(a.len(), b.len());
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// The full forced-ISA matrix: every ISA this host can execute ×
/// {syrk, gemm_nt, gemm_nn, syr2k, cholesky} on ragged (off-tile-grid)
/// shapes. Per ISA the results must be bitwise identical across 1, 2,
/// and 4 threads; across ISAs they must agree with the scalar-forced
/// reference to norm tolerance (FMA kernels round differently, so
/// bitwise equality across ISAs is not expected and not asserted).
#[test]
fn forced_isa_matrix_is_deterministic_and_agrees_with_scalar() {
    let _s = serial();
    // Ragged shapes: prime-ish sizes off every ISA's tile grid, big
    // enough to span kc/mc block boundaries.
    let (n, k) = (83usize, 71usize);
    let a = seeded_matrix::<f64>(n, k, 91);
    let b = seeded_matrix::<f64>(n, k, 92);
    let bt = b.transpose();
    let g = spd(n, 93);
    struct Results {
        syrk: PackedLower<f64>,
        nt: Matrix<f64>,
        nn: Matrix<f64>,
        syr2k: PackedLower<f64>,
        chol: Matrix<f64>,
    }
    let run_all = || Results {
        syrk: syrk_packed_new(&a, Diag::Inclusive),
        nt: mul_nt(&a, &b),
        nn: mul_nn(&a, &bt),
        syr2k: syr2k_packed_new(&a, &b, Diag::Inclusive),
        chol: cholesky(&g).expect("SPD must factor"),
    };
    let scalar = {
        let _f = force_isa(Isa::Scalar);
        let _g1 = limit_threads(1);
        run_all()
    };
    for isa in available_isas() {
        let _f = force_isa(isa);
        assert_eq!(dispatched_isa(), isa, "force guard must win the dispatch");
        let base = {
            let _g1 = limit_threads(1);
            run_all()
        };
        let tol = 1e-8;
        assert!(
            packed_max_abs_diff(&base.syrk, &scalar.syrk) < tol,
            "{isa}: syrk disagrees with scalar reference"
        );
        assert!(
            max_abs_diff(&base.nt, &scalar.nt) < tol,
            "{isa}: gemm_nt disagrees with scalar reference"
        );
        assert!(
            max_abs_diff(&base.nn, &scalar.nn) < tol,
            "{isa}: gemm_nn disagrees with scalar reference"
        );
        assert!(
            packed_max_abs_diff(&base.syr2k, &scalar.syr2k) < tol,
            "{isa}: syr2k disagrees with scalar reference"
        );
        assert!(
            max_abs_diff(&base.chol, &scalar.chol) < tol,
            "{isa}: cholesky disagrees with scalar reference"
        );
        for threads in [2usize, 4] {
            let _gt = limit_threads(threads);
            let got = run_all();
            assert_eq!(got.syrk, base.syrk, "{isa}: syrk at {threads} threads");
            assert_eq!(got.nt, base.nt, "{isa}: gemm_nt at {threads} threads");
            assert_eq!(got.nn, base.nn, "{isa}: gemm_nn at {threads} threads");
            assert_eq!(got.syr2k, base.syr2k, "{isa}: syr2k at {threads} threads");
            assert_eq!(got.chol, base.chol, "{isa}: cholesky at {threads} threads");
        }
    }
}

#[test]
fn arena_steady_state_allocates_nothing() {
    let _s = serial();
    let a = seeded_matrix::<f64>(130, 300, 41);
    let _g = limit_threads(2);
    // Warm-up run populates the arena (its buffers return to the pool
    // when the workers exit).
    let warm = syrk_packed_new(&a, Diag::Inclusive);
    let before = kernel_stats();
    let again = syrk_packed_new(&a, Diag::Inclusive);
    let d = kernel_stats().since(&before);
    assert_eq!(again, warm);
    assert_eq!(
        d.arena_alloc_bytes, 0,
        "second identical kernel call must reuse every pack buffer"
    );
    assert_eq!(d.arena_misses, 0, "steady state must not miss the arena");
    assert!(d.arena_hits >= 1, "steady state must hit the arena");
}
