//! Kernel integration tests: f32 instantiation, large blocked shapes,
//! cross-kernel consistency, and the flop-count identities the cost
//! accounting relies on.

use syrk_dense::{
    gemm_flops, gemm_nn_ref, gemm_nt, gemm_nt_ref, mul_nn, mul_nt, seeded_matrix, syr2k_flops,
    syr2k_full_reference, syrk_flops, syrk_full_reference, syrk_packed_new, syrk_strict_flops,
    Diag, Matrix, PackedLower,
};

#[test]
fn f32_kernels_work() {
    let a = seeded_matrix::<f32>(20, 12, 1);
    let b = seeded_matrix::<f32>(16, 12, 2);
    let mut c_ref = Matrix::<f32>::zeros(20, 16);
    gemm_nt_ref(&mut c_ref, &a, &b);
    let mut c_blk = Matrix::<f32>::zeros(20, 16);
    gemm_nt(&mut c_blk, &a, &b);
    for i in 0..20 {
        for j in 0..16 {
            assert!((c_ref[(i, j)] - c_blk[(i, j)]).abs() < 1e-4);
        }
    }
    // f32 SYRK too.
    let p = syrk_packed_new(&a, Diag::Inclusive);
    let full = syrk_full_reference(&a);
    for i in 0..20 {
        for j in 0..=i {
            assert!((p.get(i, j) - full[(i, j)]).abs() < 1e-4);
        }
    }
}

#[test]
fn large_blocked_gemm_crosses_tile_boundaries() {
    // Sizes straddling the 64-wide tile: 65, 127, 129.
    let (m, n, k) = (65usize, 129usize, 127usize);
    let a = seeded_matrix::<f64>(m, k, 3);
    let b = seeded_matrix::<f64>(k, n, 4);
    let mut c_ref = Matrix::zeros(m, n);
    gemm_nn_ref(&mut c_ref, &a, &b);
    let c_blk = mul_nn(&a, &b);
    for i in 0..m {
        for j in 0..n {
            assert!((c_ref[(i, j)] - c_blk[(i, j)]).abs() < 1e-9, "({i},{j})");
        }
    }
}

#[test]
fn syrk_equals_half_of_symmetric_gemm() {
    // C = A·Aᵀ: gemm and syrk agree; syrk touches only the lower half.
    let a = seeded_matrix::<f64>(40, 25, 5);
    let g = mul_nt(&a, &a);
    let s = syrk_full_reference(&a);
    for i in 0..40 {
        for j in 0..40 {
            assert!((g[(i, j)] - s[(i, j)]).abs() < 1e-10);
        }
    }
}

#[test]
fn syr2k_is_the_symmetrized_cross_product() {
    let a = seeded_matrix::<f64>(12, 7, 8);
    let b = seeded_matrix::<f64>(12, 7, 9);
    let s = syr2k_full_reference(&a, &b);
    let mut g = mul_nt(&a, &b);
    g.add_assign(&mul_nt(&b, &a));
    for i in 0..12 {
        for j in 0..12 {
            assert!((s[(i, j)] - g[(i, j)]).abs() < 1e-10);
        }
    }
}

#[test]
fn flop_identities() {
    // The §1 story in flop counts: SYRK = half of the GEMM it replaces
    // (asymptotically), SYR2K = twice SYRK.
    let (n, k) = (1000usize, 77usize);
    assert_eq!(gemm_flops(n, n, k), 2 * (n * n * k) as u64);
    assert_eq!(syrk_flops(n, k), (n * (n + 1) * k) as u64);
    assert_eq!(syr2k_flops(n, k), 2 * syrk_flops(n, k));
    // syrk/gemm → 1/2 as n grows.
    let ratio = syrk_flops(n, k) as f64 / gemm_flops(n, n, k) as f64;
    assert!((ratio - 0.5).abs() < 1e-3);
    // Strict + diagonal = inclusive.
    assert_eq!(
        syrk_strict_flops(n, k) + 2 * (n * k) as u64,
        syrk_flops(n, k)
    );
}

#[test]
fn packed_strict_and_inclusive_interconvert() {
    let a = seeded_matrix::<f64>(9, 6, 10);
    let incl = syrk_packed_new(&a, Diag::Inclusive);
    let strict = syrk_packed_new(&a, Diag::Strict);
    // The strict entries are embedded in the inclusive packing.
    for i in 0..9 {
        for j in 0..i {
            assert_eq!(incl.get(i, j), strict.get(i, j));
        }
    }
    // Lengths: n(n+1)/2 vs n(n−1)/2.
    assert_eq!(incl.len() - strict.len(), 9);
}

#[test]
fn packed_from_vec_and_back() {
    let data: Vec<f64> = (0..10).map(|x| x as f64).collect();
    let p = PackedLower::from_vec(4, Diag::Inclusive, data.clone());
    assert_eq!(p.as_slice(), &data[..]);
    assert_eq!(p.clone().into_vec(), data);
    let full = p.to_full_symmetric();
    let back = PackedLower::from_matrix(&full, Diag::Inclusive);
    assert_eq!(back.as_slice(), &data[..]);
}
