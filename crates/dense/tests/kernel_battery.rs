//! Shape battery for the packed register-blocked kernels: every
//! combination of dimensions straddling the portable microkernel tile
//! size (`MR = NR = 4`), plus tall, wide, and square shapes, compared
//! against the scalar reference kernels to 1e-10 — plus a forced-ISA
//! battery that re-runs edge shapes derived from each available ISA's
//! own tile geometry, and a coverage check that the flop-balanced
//! triangular schedule tiles the packed triangle exactly once.

use syrk_dense::microkernel::{dispatch_for_isa_f64, MR, NR};
use syrk_dense::{
    available_isas, balanced_triangle_chunks, force_isa, gemm_nt, gemm_nt_ref, seeded_matrix,
    syrk_lower_ref, syrk_packed_new, Diag, Matrix, PackedLower,
};

/// Dimensions around the register-tile edges: 0, 1, MR−1, MR, MR+1 (NR
/// equals MR, so the same set straddles both tile dimensions).
const EDGE: [usize; 5] = [0, 1, MR - 1, MR, MR + 1];

fn max_abs(a: &Matrix<f64>, b: &Matrix<f64>) -> f64 {
    assert_eq!(a.shape(), b.shape());
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn gemm_nt_matches_reference_on_edge_shapes() {
    // m, n, k each sweep the edge set independently — 125 shapes covering
    // every packing/microkernel fringe combination.
    for &m in &EDGE {
        for &n in &EDGE {
            for &k in &EDGE {
                let a = seeded_matrix::<f64>(m, k, (m * 31 + k) as u64 + 1);
                let b = seeded_matrix::<f64>(n, k, (n * 17 + k) as u64 + 2);
                let mut want = Matrix::zeros(m, n);
                gemm_nt_ref(&mut want, &a, &b);
                let mut got = Matrix::zeros(m, n);
                gemm_nt(&mut got, &a, &b);
                let err = max_abs(&got, &want);
                assert!(err < 1e-10, "gemm_nt ({m},{n},{k}): err {err}");
            }
        }
    }
}

#[test]
fn gemm_nt_matches_reference_on_aspect_extremes() {
    // Tall (m ≫ n), wide (n ≫ m), deep (k ≫ m,n), and square — all sized
    // to cross the L2 panel boundaries (KC = 256, MC = 64, NC = 256).
    for &(m, n, k) in &[
        (300usize, 5usize, 70usize), // tall
        (5, 300, 70),                // wide
        (9, 11, 700),                // deep: several KC panels
        (130, 130, 130),             // square, off the tile grid
    ] {
        let a = seeded_matrix::<f64>(m, k, 5);
        let b = seeded_matrix::<f64>(n, k, 6);
        let mut want = Matrix::zeros(m, n);
        gemm_nt_ref(&mut want, &a, &b);
        let mut got = Matrix::zeros(m, n);
        gemm_nt(&mut got, &a, &b);
        let err = max_abs(&got, &want);
        assert!(err < 1e-10, "gemm_nt ({m},{n},{k}): err {err}");
    }
}

fn syrk_reference_packed(a: &Matrix<f64>, diag: Diag) -> PackedLower<f64> {
    let n = a.rows();
    let mut full = Matrix::zeros(n, n);
    syrk_lower_ref(&mut full, a);
    let mut out = PackedLower::zeros(n, diag);
    for i in 0..n {
        let jmax = match diag {
            Diag::Inclusive => i + 1,
            Diag::Strict => i,
        };
        for j in 0..jmax {
            out.set(i, j, full[(i, j)]);
        }
    }
    out
}

#[test]
fn syrk_packed_matches_reference_on_edge_shapes() {
    for &n in &EDGE {
        for &k in &EDGE {
            for diag in [Diag::Inclusive, Diag::Strict] {
                let a = seeded_matrix::<f64>(n, k, (n * 13 + k) as u64 + 3);
                let want = syrk_reference_packed(&a, diag);
                let got = syrk_packed_new(&a, diag);
                assert_eq!(got.len(), want.len());
                let err = want
                    .as_slice()
                    .iter()
                    .zip(got.as_slice())
                    .map(|(x, y)| (x - y).abs())
                    .fold(0.0, f64::max);
                assert!(err < 1e-10, "syrk_packed (n={n},k={k},{diag:?}): err {err}");
            }
        }
    }
}

#[test]
fn syrk_packed_matches_reference_on_aspect_extremes() {
    for &(n, k) in &[(130usize, 5usize), (5, 700), (130, 130)] {
        for diag in [Diag::Inclusive, Diag::Strict] {
            let a = seeded_matrix::<f64>(n, k, 7);
            let want = syrk_reference_packed(&a, diag);
            let got = syrk_packed_new(&a, diag);
            let err = want
                .as_slice()
                .iter()
                .zip(got.as_slice())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-10, "syrk_packed (n={n},k={k},{diag:?}): err {err}");
        }
    }
}

/// Forced-ISA shape battery: for every ISA this host can execute, edge
/// shapes derived from *that ISA's* tile geometry (0, 1, mr±1, nr±1,
/// one past a dual tile) run through gemm_nt and syrk_packed against
/// the scalar references. Tolerance-based on purpose: the comparison
/// must hold for any ISA, and this binary's other tests may run
/// concurrently with the force guard active.
#[test]
fn forced_isa_edge_shape_battery() {
    for isa in available_isas() {
        let spec = dispatch_for_isa_f64(isa).spec;
        let _f = force_isa(isa);
        let mut edges = vec![
            0,
            1,
            spec.mr - 1,
            spec.mr,
            spec.mr + 1,
            spec.nr - 1,
            spec.nr,
            spec.nr + 1,
            2 * spec.mr + 1,
        ];
        edges.sort_unstable();
        edges.dedup();
        for &m in &edges {
            for &n in &edges {
                for &k in &[0usize, 1, 7, 65] {
                    let a = seeded_matrix::<f64>(m, k, (m * 31 + k) as u64 + 1);
                    let b = seeded_matrix::<f64>(n, k, (n * 17 + k) as u64 + 2);
                    let mut want = Matrix::zeros(m, n);
                    gemm_nt_ref(&mut want, &a, &b);
                    let mut got = Matrix::zeros(m, n);
                    gemm_nt(&mut got, &a, &b);
                    let err = max_abs(&got, &want);
                    assert!(err < 1e-10, "{isa} gemm_nt ({m},{n},{k}): err {err}");
                }
            }
        }
        for &n in &edges {
            for &k in &[1usize, 7, 65] {
                for diag in [Diag::Inclusive, Diag::Strict] {
                    let a = seeded_matrix::<f64>(n, k, (n * 13 + k) as u64 + 3);
                    let want = syrk_reference_packed(&a, diag);
                    let got = syrk_packed_new(&a, diag);
                    let err = want
                        .as_slice()
                        .iter()
                        .zip(got.as_slice())
                        .map(|(x, y)| (x - y).abs())
                        .fold(0.0, f64::max);
                    assert!(err < 1e-10, "{isa} syrk (n={n},k={k},{diag:?}): err {err}");
                }
            }
        }
    }
}

/// The flop-balanced schedule must partition the packed triangle: writing
/// each chunk's packed row range exactly once touches every word exactly
/// once, with no gaps, overlaps, or misaligned boundaries.
#[test]
fn balanced_chunks_cover_packed_triangle_exactly_once() {
    for &n in &[1usize, 4, 7, 64, 257] {
        for diag in [Diag::Inclusive, Diag::Strict] {
            for parts in [1usize, 2, 3, 8] {
                let chunks = balanced_triangle_chunks(n, diag, parts, MR.min(NR));
                let mut touched = vec![0u32; diag.packed_len(n)];
                let mut covered_rows = 0;
                for r in &chunks {
                    assert!(
                        r.start == covered_rows,
                        "gap or overlap at row {covered_rows}"
                    );
                    assert!(
                        r.start % MR == 0,
                        "chunk start {} not aligned to MR={MR}",
                        r.start
                    );
                    covered_rows = r.end;
                    for i in r.clone() {
                        let (off, len) = match diag {
                            Diag::Inclusive => (i * (i + 1) / 2, i + 1),
                            Diag::Strict => (i * i.saturating_sub(1) / 2, i),
                        };
                        for w in &mut touched[off..off + len] {
                            *w += 1;
                        }
                    }
                }
                assert_eq!(covered_rows, n, "chunks must tile all {n} rows");
                assert!(
                    touched.iter().all(|&w| w == 1),
                    "n={n} {diag:?} parts={parts}: some packed word not covered exactly once"
                );
            }
        }
    }
}
