//! Semantic edge cases of the simulated machine: self-messaging, nested
//! sub-communicators, clock/critical-path behaviour, and collectives on
//! sub-communicators.

use std::time::Duration;
use syrk_machine::{CostModel, Machine};

#[test]
fn send_to_self_is_legal() {
    // The transport is buffered, so a rank may mail itself (useful for
    // uniform collective code paths).
    let out = Machine::new(2).run(|comm| {
        comm.send(comm.rank(), 5, vec![comm.rank() as f64 + 0.5]);
        let v: Vec<f64> = comm.recv(comm.rank(), 5);
        v[0]
    });
    assert_eq!(out.results, vec![0.5, 1.5]);
}

#[test]
fn nested_splits_isolate_traffic() {
    // Split the world 8 → two halves → quarters; traffic stays within the
    // innermost group and ranks renumber correctly at each level.
    let out = Machine::new(8).run(|comm| {
        let mut comm = comm;
        let half = comm.rank() / 4;
        let mut sub = comm.split(half as u64, comm.rank());
        assert_eq!(sub.size(), 4);
        let quarter = sub.rank() / 2;
        let subsub = sub.split(quarter as u64, sub.rank());
        assert_eq!(subsub.size(), 2);
        // All-reduce world ranks within the pair.
        let sum = subsub.all_reduce(&[comm.rank() as f64]);
        sum[0]
    });
    // Pairs are (0,1), (2,3), (4,5), (6,7).
    assert_eq!(out.results, vec![1.0, 1.0, 5.0, 5.0, 9.0, 9.0, 13.0, 13.0]);
}

#[test]
fn split_then_collective_on_parent_still_works() {
    let out = Machine::new(4).run(|comm| {
        let mut comm = comm;
        let sub = comm.split((comm.rank() % 2) as u64, 0);
        let sub_sum = sub.all_reduce(&[1.0])[0];
        // Parent communicator remains fully functional after splitting.

        comm.all_reduce(&[sub_sum])[0]
    });
    assert!(out.results.iter().all(|&x| x == 8.0)); // 4 ranks × subgroup size 2
}

#[test]
fn clock_tracks_critical_path_through_a_chain() {
    // A relay 0 → 1 → 2: rank 2's clock must include both hops.
    let model = CostModel {
        alpha: 1.0,
        beta: 1.0,
        gamma: 0.0,
    };
    let out = Machine::new(3)
        .with_model(model)
        .run(|comm| match comm.rank() {
            0 => comm.send(1, 0, vec![1.0; 10]),
            1 => {
                let v: Vec<f64> = comm.recv(0, 0);
                comm.send(2, 0, v);
            }
            _ => {
                let _: Vec<f64> = comm.recv(1, 0);
            }
        });
    // Hop cost = α + β·10 = 11. Rank 1 receives at 11, sends (clock 22);
    // rank 2 receives: max(0, ready=11) + 11 = 22? Sender's ready for the
    // second hop is 11 (its clock before sending), so rank 2 ends at
    // 11 + 11 = 22.
    assert!((out.cost.ranks[2].clock - 22.0).abs() < 1e-12);
    // The elapsed time is the maximum clock anywhere.
    assert!((out.cost.elapsed() - 22.0).abs() < 1e-12);
}

#[test]
fn flops_delay_downstream_receivers() {
    // γ-work on the sender pushes the send later, which the receiver's
    // clock must reflect (compute/communication dependency).
    let model = CostModel {
        alpha: 0.0,
        beta: 1.0,
        gamma: 1.0,
    };
    let out = Machine::new(2).with_model(model).run(|comm| {
        if comm.rank() == 0 {
            comm.add_flops(100);
            comm.send(1, 0, vec![1.0]);
        } else {
            let _: Vec<f64> = comm.recv(0, 0);
        }
    });
    // Receiver: max(0, sender_ready=100) + 1 = 101.
    assert!((out.cost.ranks[1].clock - 101.0).abs() < 1e-12);
}

#[test]
fn collectives_work_on_subcommunicators() {
    let out = Machine::new(6).run(|comm| {
        let mut comm = comm;
        let color = (comm.rank() % 3) as u64;
        let sub = comm.split(color, comm.rank());
        assert_eq!(sub.size(), 2);
        // all_to_all within the pair.
        let blocks: Vec<Vec<f64>> = (0..2)
            .map(|q| vec![(comm.rank() * 10 + q) as f64])
            .collect();
        let recv = sub.all_to_all(blocks);
        // gather at sub-root.
        let g = sub.gather(0, vec![comm.rank() as f64]);
        (recv[1 - sub.rank()][0], g.map(|v| v.len()))
    });
    // Pairs by color: {0,3}, {1,4}, {2,5}. Rank 0 receives 3's block 0.
    assert_eq!(out.results[0].0, 30.0);
    assert_eq!(out.results[3].0, 1.0); // rank 3 receives 0's block 1
    assert_eq!(out.results[0].1, Some(2));
    assert_eq!(out.results[3].1, None);
}

#[test]
fn timeout_reports_deadlock_instead_of_hanging() {
    let result = std::panic::catch_unwind(|| {
        Machine::new(2)
            .with_timeout(Duration::from_millis(200))
            .run(|comm| {
                if comm.rank() == 0 {
                    // Rank 0 waits for a message nobody sends.
                    let _: Vec<f64> = comm.recv(1, 77);
                }
            });
    });
    assert!(
        result.is_err(),
        "deadlocked recv must panic after the timeout"
    );
}

#[test]
fn heterogeneous_payload_types_coexist() {
    let out = Machine::new(2).run(|comm| {
        if comm.rank() == 0 {
            comm.send(1, 1, vec![1.0f64, 2.0]);
            comm.send(1, 2, vec![3u64, 4]);
            comm.send(1, 3, 7usize);
            comm.send(1, 4, ());
            0
        } else {
            let a: Vec<f64> = comm.recv(0, 1);
            let b: Vec<u64> = comm.recv(0, 2);
            let c: usize = comm.recv(0, 3);
            let _: () = comm.recv(0, 4);
            a.len() + b.len() + c
        }
    });
    assert_eq!(out.results[1], 2 + 2 + 7);
    // Word accounting: 2 + 2 + 1 + 0.
    assert_eq!(out.cost.ranks[0].words_sent, 5);
}

#[test]
fn broadcast_on_subcommunicator_uses_group_ranks() {
    let out = Machine::new(6).run(|comm| {
        let mut comm = comm;
        let sub = comm.split((comm.rank() / 3) as u64, comm.rank());
        // Root 2 *within the group* = world rank 2 or 5.
        let data = (sub.rank() == 2).then(|| vec![comm.rank() as f64]);
        sub.broadcast(2, data)[0]
    });
    assert_eq!(out.results[..3], [2.0, 2.0, 2.0]);
    assert_eq!(out.results[3..], [5.0, 5.0, 5.0]);
}

#[test]
fn tracing_records_the_timeline() {
    let out = Machine::new(2).with_tracing().run(|comm| {
        if comm.rank() == 0 {
            comm.add_flops(5);
            comm.send(1, 0, vec![1.0; 3]);
        } else {
            let _: Vec<f64> = comm.recv(0, 0);
        }
    });
    let traces = out.traces.expect("tracing was enabled");
    use syrk_machine::EventKind;
    assert_eq!(traces[0].len(), 2);
    assert_eq!(traces[0][0].kind, EventKind::Flops);
    assert_eq!(traces[0][0].amount, 5);
    assert_eq!(traces[0][1].kind, EventKind::Send);
    assert_eq!(traces[0][1].peer, 1);
    assert_eq!(traces[0][1].amount, 3);
    assert_eq!(traces[1].len(), 1);
    assert_eq!(traces[1][0].kind, EventKind::Recv);
    // Clocks are monotone within a rank.
    assert!(traces[0][0].clock <= traces[0][1].clock);
}

#[test]
fn tracing_off_by_default() {
    let out = Machine::new(2).run(|comm| comm.barrier());
    assert!(out.traces.is_none());
}

#[test]
fn collective_traces_show_pairwise_structure() {
    let p = 4;
    let out = Machine::new(p).with_tracing().run(|comm| {
        comm.all_to_all(vec![vec![1.0; 2]; p]);
    });
    let traces = out.traces.unwrap();
    for (r, tl) in traces.iter().enumerate() {
        // P−1 exchange events per rank, peers = everyone else exactly once.
        use syrk_machine::EventKind;
        let peers: Vec<usize> = tl
            .iter()
            .filter(|e| e.kind == EventKind::Exchange)
            .map(|e| e.peer)
            .collect();
        assert_eq!(peers.len(), p - 1, "rank {r}");
        let mut sorted = peers.clone();
        sorted.sort_unstable();
        let expect: Vec<usize> = (0..p).filter(|&q| q != r).collect();
        assert_eq!(sorted, expect, "rank {r}");
    }
}
