//! Messages exchanged between simulated ranks.

use std::any::Any;

use crate::fault::mix64;

/// Data that can be sent between ranks.
///
/// The machine charges bandwidth by *words*; a word is one `f64`-sized
/// element. Implementors report how many words their wire representation
/// occupies so the cost accounting matches the paper's word counts, and a
/// checksum of those words so corrupted deliveries can be detected when a
/// fault plan is active.
pub trait Payload: Send + 'static {
    /// Number of machine words this payload occupies on the wire.
    fn words(&self) -> usize;

    /// Order-sensitive checksum of the wire representation. Only computed
    /// when a fault plan perturbs messages; the default folds nothing.
    fn checksum(&self) -> u64 {
        0
    }
}

/// Fold one 64-bit word into a running checksum (order-sensitive).
fn fold(acc: u64, word: u64) -> u64 {
    mix64(acc.rotate_left(7) ^ word)
}

impl Payload for Vec<f64> {
    fn words(&self) -> usize {
        self.len()
    }

    fn checksum(&self) -> u64 {
        self.iter().fold(0xf64, |a, x| fold(a, x.to_bits()))
    }
}

impl Payload for Vec<u64> {
    fn words(&self) -> usize {
        self.len()
    }

    fn checksum(&self) -> u64 {
        self.iter().fold(0x64, |a, &x| fold(a, x))
    }
}

impl Payload for Vec<usize> {
    fn words(&self) -> usize {
        self.len()
    }

    fn checksum(&self) -> u64 {
        self.iter().fold(0x512e, |a, &x| fold(a, x as u64))
    }
}

impl Payload for f64 {
    fn words(&self) -> usize {
        1
    }

    fn checksum(&self) -> u64 {
        fold(0x1f64, self.to_bits())
    }
}

impl Payload for u64 {
    fn words(&self) -> usize {
        1
    }

    fn checksum(&self) -> u64 {
        fold(0x164, *self)
    }
}

impl Payload for usize {
    fn words(&self) -> usize {
        1
    }

    fn checksum(&self) -> u64 {
        fold(0x1512e, *self as u64)
    }
}

/// The unit payload: a pure synchronization message of zero words
/// (only the latency α is charged).
impl Payload for () {
    fn words(&self) -> usize {
        0
    }

    fn checksum(&self) -> u64 {
        0x0717
    }
}

/// Stand-in payload carried by injected duplicate/corrupt copies. The
/// receive path discards those copies before any downcast, so if one ever
/// leaked through, the downcast would fail loudly instead of silently
/// returning garbage.
pub(crate) struct Garbled;

/// A typed message envelope traveling through the simulated network.
pub(crate) struct Envelope {
    /// World rank of the sender.
    pub src: usize,
    /// Communicator id + user tag; receives match on both.
    pub tag: (u64, u64),
    /// Word count, for cost accounting on the receive side.
    pub words: usize,
    /// Sender's clock when the message was dispatched.
    pub sender_ready: f64,
    /// Per-link (`src → dst`) sequence number assigned in program order.
    /// Retransmissions and injected copies of one logical message share it.
    pub seq: u64,
    /// Checksum the sender computed over the true payload (0 when no
    /// fault plan is active — checksums are then skipped entirely).
    pub checksum: u64,
    /// Checksum of the bits as delivered; differs from `checksum` exactly
    /// when the copy was corrupted in flight.
    pub wire_checksum: u64,
    /// The type-erased payload; downcast on receive.
    pub payload: Box<dyn Any + Send>,
}

impl Envelope {
    /// Whether this envelope satisfies a receive posted for `(src, tag)`.
    /// The single matching predicate of both engines' receive loops —
    /// keeping it in one place is part of the cross-engine equivalence
    /// argument (see `crate::engine`).
    pub(crate) fn matches(&self, src_world: usize, tag: (u64, u64)) -> bool {
        self.src == src_world && self.tag == tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_counts() {
        assert_eq!(vec![1.0f64; 7].words(), 7);
        assert_eq!(vec![1u64, 2, 3].words(), 3);
        assert_eq!(vec![1usize; 5].words(), 5);
        assert_eq!(3.5f64.words(), 1);
        assert_eq!(7u64.words(), 1);
        assert_eq!(9usize.words(), 1);
        assert_eq!(().words(), 0);
    }

    #[test]
    fn checksums_are_order_and_value_sensitive() {
        assert_ne!(vec![1.0f64, 2.0].checksum(), vec![2.0f64, 1.0].checksum());
        assert_ne!(vec![1u64, 2].checksum(), vec![1u64, 3].checksum());
        assert_eq!(vec![1.0f64, 2.0].checksum(), vec![1.0f64, 2.0].checksum());
        // Different payload types never share a checksum stream trivially.
        assert_ne!(vec![1u64].checksum(), vec![1usize].checksum());
    }

    #[test]
    fn envelope_downcast_roundtrip() {
        let e = Envelope {
            src: 3,
            tag: (0, 42),
            words: 2,
            sender_ready: 1.5,
            seq: 0,
            checksum: 0,
            wire_checksum: 0,
            payload: Box::new(vec![1.0f64, 2.0]),
        };
        let v = e.payload.downcast::<Vec<f64>>().expect("type should match");
        assert_eq!(*v, vec![1.0, 2.0]);
    }
}
