//! Messages exchanged between simulated ranks.

use std::any::Any;

/// Data that can be sent between ranks.
///
/// The machine charges bandwidth by *words*; a word is one `f64`-sized
/// element. Implementors report how many words their wire representation
/// occupies so the cost accounting matches the paper's word counts.
pub trait Payload: Send + 'static {
    /// Number of machine words this payload occupies on the wire.
    fn words(&self) -> usize;
}

impl Payload for Vec<f64> {
    fn words(&self) -> usize {
        self.len()
    }
}

impl Payload for Vec<u64> {
    fn words(&self) -> usize {
        self.len()
    }
}

impl Payload for Vec<usize> {
    fn words(&self) -> usize {
        self.len()
    }
}

impl Payload for f64 {
    fn words(&self) -> usize {
        1
    }
}

impl Payload for u64 {
    fn words(&self) -> usize {
        1
    }
}

impl Payload for usize {
    fn words(&self) -> usize {
        1
    }
}

/// The unit payload: a pure synchronization message of zero words
/// (only the latency α is charged).
impl Payload for () {
    fn words(&self) -> usize {
        0
    }
}

/// A typed message envelope traveling through the simulated network.
pub(crate) struct Envelope {
    /// World rank of the sender.
    pub src: usize,
    /// Communicator id + user tag; receives match on both.
    pub tag: (u64, u64),
    /// Word count, for cost accounting on the receive side.
    pub words: usize,
    /// Sender's clock when the message was dispatched.
    pub sender_ready: f64,
    /// The type-erased payload; downcast on receive.
    pub payload: Box<dyn Any + Send>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_counts() {
        assert_eq!(vec![1.0f64; 7].words(), 7);
        assert_eq!(vec![1u64, 2, 3].words(), 3);
        assert_eq!(vec![1usize; 5].words(), 5);
        assert_eq!(3.5f64.words(), 1);
        assert_eq!(7u64.words(), 1);
        assert_eq!(9usize.words(), 1);
        assert_eq!(().words(), 0);
    }

    #[test]
    fn envelope_downcast_roundtrip() {
        let e = Envelope {
            src: 3,
            tag: (0, 42),
            words: 2,
            sender_ready: 1.5,
            payload: Box::new(vec![1.0f64, 2.0]),
        };
        let v = e.payload.downcast::<Vec<f64>>().expect("type should match");
        assert_eq!(*v, vec![1.0, 2.0]);
    }
}
