//! The discrete-event engine: a single-threaded scheduler that advances
//! rank coroutines in deterministic α-β-γ clock order.
//!
//! The threaded runner simulates `P` ranks with `P` OS threads, which
//! caps experiments at tens of ranks. This engine runs the same SPMD
//! closures as stackful coroutines (see [`crate::context`]) driven by one
//! event loop: a min-heap of runnable ranks keyed by `(clock, rank)`.
//! Each pop resumes one rank, which runs until it blocks in a receive
//! (registering itself in [`EventState::blocked`] and yielding) or its
//! closure returns. Sends never block — delivery is a queue push into the
//! destination's inbox — and a send to a blocked destination moves it to
//! the wake list, from which the scheduler re-heaps it at its current
//! clock. A 10⁵-rank 2D SYRK run therefore fits in one process: memory
//! is bounded by the coroutine stacks plus in-flight envelopes, not by
//! OS threads.
//!
//! **Determinism.** The loop is single-threaded and its only ordering
//! input is the heap key `(clock.to_bits(), rank)` — `f64::to_bits` is
//! order-preserving for the non-negative clocks the cost model produces,
//! and ties break by rank. Given the same machine configuration the
//! resume order, and hence every rank's observed message order, is a pure
//! function of the run. Per-rank results are *also* independent of that
//! order: envelopes between a pair of ranks stay FIFO per link, and the
//! receive loop matches on `(src, tag)`, so cross-link interleaving only
//! changes which envelopes sit in `pending` — never what a receive
//! returns. That is the equivalence argument with the threaded engine,
//! asserted bitwise by the differential tests (`tests/engine_equivalence.rs`).
//!
//! **Exact deadlock detection.** The watchdog's grace window exists
//! because OS threads cannot see each other's instantaneous state. Here
//! the scheduler *is* the global state: an empty ready heap with live
//! ranks means every live rank is blocked with nothing in flight to wake
//! it — that configuration is the deadlock, detected exactly and
//! immediately. The wait-for graph is snapshotted with the same code path
//! as the watchdog, so `DeadlockInfo` is identical across engines.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};

use crate::comm::World;
use crate::context::{Coroutine, Status};
use crate::envelope::Envelope;
use crate::error::MachineError;
use crate::sync::Mutex;
use syrk_telemetry::LazyCounter;

static RESUMES: LazyCounter = LazyCounter::new("syrk_engine_resumes");
static WAKES: LazyCounter = LazyCounter::new("syrk_engine_wakes");
static EVENT_RUNS: LazyCounter = LazyCounter::new("syrk_engine_event_runs");

/// Per-run fabric state of the event engine, owned by the [`World`] when
/// the machine runs on this engine (`world.event.is_some()` is the
/// engine discriminant throughout `comm.rs`).
///
/// The fields are behind mutexes/atomics only so `World` stays `Sync`
/// (the threaded engine shares the type); under the event engine exactly
/// one rank runs at a time, so every lock is uncontended.
pub(crate) struct EventState {
    /// Per-rank incoming envelope queues (the event-engine analogue of
    /// the per-rank mpsc channels).
    pub(crate) inboxes: Vec<Mutex<VecDeque<Envelope>>>,
    /// `blocked[r]` is set by rank `r` just before it yields out of a
    /// blocking receive, and cleared by whoever schedules it again.
    pub(crate) blocked: Vec<AtomicBool>,
    /// Ranks unblocked by a delivery since the scheduler last drained
    /// this list.
    pub(crate) woken: Mutex<Vec<usize>>,
}

impl EventState {
    pub(crate) fn new(p: usize) -> EventState {
        EventState {
            inboxes: (0..p).map(|_| Mutex::new(VecDeque::new())).collect(),
            blocked: (0..p).map(|_| AtomicBool::new(false)).collect(),
            woken: Mutex::new(Vec::new()),
        }
    }

    /// Deliver one envelope into `dst`'s inbox; if `dst` was parked in a
    /// blocking receive, move it to the wake list.
    pub(crate) fn deliver(&self, dst: usize, env: Envelope) {
        self.inboxes[dst].lock().push_back(env);
        if self.blocked[dst].swap(false, Ordering::Relaxed) {
            WAKES.inc();
            self.woken.lock().push(dst);
        }
    }

    /// Park the calling rank: the scheduler will not resume it until a
    /// delivery (or the deadlock wake-all) unparks it.
    pub(crate) fn park(&self, rank: usize) {
        self.blocked[rank].store(true, Ordering::Relaxed);
    }
}

/// Scheduler-side deadlock declaration: the event-loop analogue of the
/// watchdog's `declare_deadlock`, sharing its wait-for-graph snapshot so
/// both engines report the identical [`DeadlockInfo`](crate::DeadlockInfo).
/// A lost CAS means some rank already failed — the stalled configuration
/// is then an abort cascade, not a deadlock, and the first error stands.
fn declare_deadlock(world: &World) {
    if world
        .aborted
        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return;
    }
    let info = world.snapshot_deadlock();
    let reporter = info.edges.first().map(|e| e.from).unwrap_or(0);
    let mut slot = world.first_error.lock();
    if slot.is_none() {
        *slot = Some((reporter, MachineError::Deadlock(info)));
    }
}

/// Run every coroutine to completion in deterministic clock order.
///
/// Invariant on exit: all coroutines are done — even under failures,
/// blocked ranks are woken to observe the abort flag and unwind through
/// their own error paths, exactly like threaded ranks do. Callers rely on
/// this to drop the coroutines (and the borrows captured in them) before
/// touching the world again.
pub(crate) fn drive(world: &World, coroutines: &mut [Coroutine]) {
    EVENT_RUNS.inc();
    let ev = world.event.as_ref().expect("drive needs an event world");
    let mut live = coroutines.len();
    // Min-heap on (clock bits, rank): non-negative clocks compare by bits,
    // ties resolve to the lowest rank. Every rank starts runnable at 0.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..coroutines.len()).map(|r| Reverse((0, r))).collect();
    while live > 0 {
        while let Some(Reverse((_, rank))) = heap.pop() {
            if coroutines[rank].is_done() {
                continue;
            }
            RESUMES.inc();
            if coroutines[rank].resume() == Status::Complete {
                live -= 1;
            }
            // Deliveries made during this resume may have unparked ranks;
            // re-heap them at their *current* clock so the next pop is
            // still the globally earliest rank.
            let woken = std::mem::take(&mut *ev.woken.lock());
            for w in woken {
                if !coroutines[w].is_done() {
                    let key = world.costs[w].lock().total.clock_key();
                    heap.push(Reverse((key, w)));
                }
            }
        }
        if live == 0 {
            break;
        }
        // No runnable rank, live ranks parked, nothing in flight: this
        // configuration *is* a deadlock (or the tail of an abort already
        // in progress). Declare it, then wake everyone so each blocked
        // receive observes the abort flag and completes its error path.
        declare_deadlock(world);
        for (r, co) in coroutines.iter().enumerate() {
            if !co.is_done() {
                ev.blocked[r].store(false, Ordering::Relaxed);
                let key = world.costs[r].lock().total.clock_key();
                heap.push(Reverse((key, r)));
            }
        }
    }
}
