//! Communicators: point-to-point messaging, sub-communicators, and the
//! shared world state of a simulated machine run.
//!
//! Every transmission funnels through one dispatch path and every receive
//! through one matching loop, which is where the robustness machinery
//! lives: per-link sequence numbers and payload checksums (so injected
//! duplicates and corruption are *detected*, see [`crate::FaultPlan`]),
//! `retry:*` phase attribution for all fault-handling traffic, and the
//! deadlock watchdog that aborts a run with a wait-for graph when every
//! live rank is blocked with nothing in flight.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::sync::{
    channel::{Receiver, Sender},
    Mutex,
};

use crate::cost::{CostModel, RankCost, RankLedger};
use crate::envelope::{Envelope, Garbled, Payload};
use crate::error::{DeadlockInfo, MachineError, WaitEdge};
use crate::fault::{mix64, FaultPlan, MessageFaults};
use crate::trace::{Event, EventKind, Timeline};
use syrk_telemetry::flight::{self, FlightKind};

/// Phase names under which fault-handling costs are recorded. They are
/// deliberately distinct from any algorithm phase so that `retry:*` rows
/// in a [`CostReport`](crate::CostReport) isolate robustness overhead
/// from the Theorem 1 accounting.
pub const RETRY_DROP_PHASE: &str = "retry:drop";
/// Receive-side cost of discarding a detected duplicate delivery.
pub const RETRY_DUP_PHASE: &str = "retry:dup";
/// Receive-side cost of discarding a checksum-failed delivery.
pub const RETRY_CORRUPT_PHASE: &str = "retry:corrupt";
/// Clock lost to an injected rank stall.
pub const RETRY_STALL_PHASE: &str = "retry:stall";

/// Phase names under which crash-recovery costs are recorded. Like the
/// `retry:*` family they are distinct from every algorithm phase, so
/// `recover:*` rows in a [`CostReport`](crate::CostReport) isolate the
/// price of surviving a rank loss from the Theorem 1 accounting (the
/// *replanned* run re-enters the bounds at P′; recovery traffic itself
/// sits outside them).
///
/// Heartbeat probes and the timeout clock spent declaring a rank dead.
pub const RECOVER_DETECT_PHASE: &str = "recover:detect";
/// Survivor-to-survivor exchange of suspect lists until agreement.
pub const RECOVER_AGREE_PHASE: &str = "recover:agree";
/// Re-shipping surviving A blocks into the replanned grid's layout.
pub const RECOVER_REDISTRIBUTE_PHASE: &str = "recover:redistribute";
/// Exponential-backoff clock charged before a re-execution attempt.
pub const RECOVER_BACKOFF_PHASE: &str = "recover:backoff";

/// Model-time a survivor waits on a silent link before declaring the
/// peer dead, in units of `CostModel::message(1)` (one α + β): the
/// detector sends this many unanswered heartbeat probes per suspect.
pub const HEARTBEAT_TIMEOUT_PROBES: u64 = 4;

/// Per-rank incoming message queue with out-of-order matching.
///
/// Channels deliver envelopes in send order per link; a receive for a
/// specific `(src, tag)` buffers any non-matching envelopes in `pending`
/// until they are asked for. The mailbox also holds this rank's per-link
/// sequence counters: `tx_seq[d]` numbers messages this rank sends to
/// world rank `d`, `rx_next[s]` is the next sequence number expected from
/// world rank `s` (everything below it is a duplicate).
pub(crate) struct Mailbox {
    /// The mpsc endpoint under the threaded engine; `None` under the
    /// event engine, which delivers through
    /// [`EventState::inboxes`](crate::engine::EventState) instead.
    rx: Option<Receiver<Envelope>>,
    pending: PendingQueue,
    /// Per-link sequence counters, allocated only when the installed
    /// fault plan perturbs messages — an unfaulted 10⁵-rank run must not
    /// pay O(P) per rank (O(P²) machine-wide) for screening it never does.
    tx_seq: Vec<u64>,
    rx_next: Vec<u64>,
}

/// Unmatched-envelope buffer indexed by `(src, tag)`. Sparse collectives
/// at 10⁴ ranks desynchronize the ranks enough that thousands of
/// out-of-order envelopes sit buffered at a hot receiver, so matching
/// must be a keyed lookup, not a linear scan. Each key's queue keeps
/// arrival order — the per-link FIFO guarantee that back-to-back
/// collectives reusing a tag rely on to match their rounds in send
/// order. Matching itself stays [`Envelope::matches`]: a queue is keyed
/// by exactly the `(src, tag)` that predicate tests.
#[derive(Default)]
struct PendingQueue {
    by_key: HashMap<(usize, (u64, u64)), VecDeque<Envelope>>,
    len: usize,
}

impl PendingQueue {
    fn push(&mut self, env: Envelope) {
        debug_assert!(env.matches(env.src, env.tag));
        self.len += 1;
        self.by_key
            .entry((env.src, env.tag))
            .or_default()
            .push_back(env);
    }

    /// Pop the oldest buffered envelope matching `(src, tag)`, if any.
    fn take(&mut self, src: usize, tag: (u64, u64)) -> Option<Envelope> {
        let q = self.by_key.get_mut(&(src, tag))?;
        let env = q.pop_front()?;
        if q.is_empty() {
            self.by_key.remove(&(src, tag));
        }
        self.len -= 1;
        Some(env)
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Why a blocking receive gave up. Carries enough context to reproduce
/// the legacy panic messages exactly in the panicking wrappers.
pub(crate) enum RecvErr {
    /// The world's poison flag is set: some rank panicked.
    PeerPanicked,
    /// Some rank failed first (clean error, crash, or watchdog abort
    /// elsewhere); `0` is the first recorded error when known.
    Aborted(MachineError),
    /// No matching message within the machine timeout.
    Timeout {
        /// Unmatched envelopes buffered at the blocked rank.
        pending: usize,
    },
    /// This rank's watchdog declared the deadlock (it won the race).
    Deadlock(DeadlockInfo),
}

/// Shared state of one machine run: the network fabric, cost ledger, and
/// the failure/watchdog flags.
pub(crate) struct World {
    pub size: usize,
    pub model: CostModel,
    pub senders: Vec<Sender<Envelope>>,
    pub costs: Vec<Mutex<RankLedger>>,
    pub timeout: Duration,
    /// Set when any rank panics so blocked receives abort promptly.
    pub poisoned: AtomicBool,
    /// Set when any rank fails for any reason (panic, clean error, crash,
    /// deadlock); blocked receives abort promptly.
    pub aborted: AtomicBool,
    /// First failure recorded in the run: `(world rank, error)`. Set-once;
    /// cascade failures on other ranks never overwrite it.
    pub first_error: Mutex<Option<(usize, MachineError)>>,
    /// What each rank is currently blocked on (for the wait-for graph).
    pub waiting: Vec<Mutex<Option<WaitEdge>>>,
    /// Ranks that have returned from the SPMD closure.
    pub finished: Vec<AtomicBool>,
    /// Bumped on every envelope pulled off any channel; the watchdog only
    /// fires after a full grace window with no progress machine-wide.
    pub progress: AtomicU64,
    /// Grace window of global silence before the watchdog declares a
    /// deadlock (all live ranks blocked the whole time).
    pub watchdog: Duration,
    /// Per-rank communication-operation counters (for crash/stall faults).
    pub ops: Vec<AtomicU64>,
    /// World ranks killed by injected crash faults, in the order the
    /// crashes fired. Survivors read this through
    /// [`Comm::try_agree_on_failures`] to learn *who* died without
    /// touching the (aborted) network.
    pub crashed: Mutex<Vec<usize>>,
    /// The installed fault plan, if any.
    pub faults: Option<FaultPlan>,
    /// Per-rank event logs when tracing is enabled.
    pub traces: Option<Vec<Mutex<Timeline>>>,
    /// The event-engine fabric when this run is driven by the discrete
    /// event loop (`None` ⇒ threaded engine, mpsc fabric).
    pub event: Option<crate::engine::EventState>,
}

impl World {
    /// Record the first failure of the run (set-once) and flip the abort
    /// flag so every blocked rank bails out promptly.
    pub(crate) fn record_error(&self, rank: usize, err: MachineError) {
        {
            let mut slot = self.first_error.lock();
            if slot.is_none() {
                *slot = Some((rank, err));
            }
        }
        self.aborted.store(true, Ordering::SeqCst);
    }

    fn first_error_or(&self, fallback: MachineError) -> MachineError {
        self.first_error
            .lock()
            .as_ref()
            .map(|(_, e)| e.clone())
            .unwrap_or(fallback)
    }

    /// Snapshot the wait-for graph: one edge per live blocked rank, in
    /// rank order, plus the set of cleanly finished ranks. Shared by the
    /// watchdog and the event engine's exact detection so both report an
    /// identical [`DeadlockInfo`] for the same stalled configuration.
    pub(crate) fn snapshot_deadlock(&self) -> DeadlockInfo {
        let mut edges = Vec::new();
        let mut finished = Vec::new();
        for r in 0..self.size {
            if self.finished[r].load(Ordering::SeqCst) {
                finished.push(r);
            } else if let Some(e) = self.waiting[r].lock().clone() {
                edges.push(e);
            }
        }
        edges.sort_by_key(|e| e.from);
        DeadlockInfo { edges, finished }
    }
}

/// Clears this rank's wait-for edge when the blocking receive exits.
struct ClearWait<'a> {
    slot: &'a Mutex<Option<WaitEdge>>,
}

impl Drop for ClearWait<'_> {
    fn drop(&mut self) {
        *self.slot.lock() = None;
    }
}

/// Records a `recv:block` flight span from construction to drop, so every
/// exit path of the blocking receive (match, abort, timeout, deadlock)
/// closes the span.
struct RecvSpan {
    start_ns: Option<u64>,
    src_world: usize,
}

impl RecvSpan {
    fn begin(src_world: usize) -> Self {
        RecvSpan {
            start_ns: flight::is_enabled().then(flight::now_ns),
            src_world,
        }
    }
}

impl Drop for RecvSpan {
    fn drop(&mut self) {
        if let Some(t0) = self.start_ns {
            flight::record(
                FlightKind::RecvBlock,
                t0,
                flight::now_ns(),
                self.src_world as u64,
            );
        }
    }
}

/// A communicator handle held by a single simulated rank.
///
/// The world communicator is handed to the SPMD closure by
/// [`Machine::run`](crate::machine::Machine::run); sub-communicators are
/// created collectively with [`Comm::split`]. Group ranks (`0..size`) are
/// always used in the public API; translation to world ranks is internal.
pub struct Comm {
    world: Arc<World>,
    mailbox: Arc<Mutex<Mailbox>>,
    /// World ranks of this communicator's members, indexed by group rank.
    group: Arc<Vec<usize>>,
    /// This rank's position within `group`.
    group_rank: usize,
    /// Communicator id; tags are namespaced per communicator.
    comm_id: u64,
    /// Number of `split` calls performed on this communicator (local, but
    /// consistent across members because splits are collective).
    split_seq: u64,
}

impl Comm {
    pub(crate) fn new_world(
        world: Arc<World>,
        rank: usize,
        rx: Option<Receiver<Envelope>>,
        group: Arc<Vec<usize>>,
    ) -> Self {
        // Sequence screening is only exercised when faults can perturb
        // messages; skip the per-rank O(P) counters otherwise.
        let screened = world.faults.as_ref().is_some_and(|p| p.perturbs_messages());
        let size = if screened { world.size } else { 0 };
        Comm {
            mailbox: Arc::new(Mutex::new(Mailbox {
                rx,
                pending: PendingQueue::default(),
                tx_seq: vec![0; size],
                rx_next: vec![0; size],
            })),
            group,
            group_rank: rank,
            comm_id: 0,
            split_seq: 0,
            world,
        }
    }

    /// This rank within this communicator (`0..size`).
    pub fn rank(&self) -> usize {
        self.group_rank
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// This rank in the world communicator.
    pub fn world_rank(&self) -> usize {
        self.group[self.group_rank]
    }

    /// The cost model the run is charged under.
    pub fn model(&self) -> CostModel {
        self.world.model
    }

    fn with_ledger<R>(&self, f: impl FnOnce(&mut RankLedger) -> R) -> R {
        let mut guard = self.world.costs[self.world_rank()].lock();
        f(&mut guard)
    }

    pub(crate) fn with_cost<R>(&self, f: impl FnOnce(&mut RankCost, &CostModel) -> R) -> R {
        let model = self.world.model;
        self.with_ledger(|l| l.apply(&model, f))
    }

    pub(crate) fn trace(&self, kind: EventKind, peer: usize, amount: u64) {
        if let Some(traces) = &self.world.traces {
            let (clock, phase) = self.with_ledger(|l| (l.total.clock, l.active_phase()));
            traces[self.world_rank()].lock().push(Event {
                kind,
                peer,
                amount,
                clock,
                phase,
            });
        }
    }

    /// Charge `n` flops to this rank.
    pub fn add_flops(&self, n: u64) {
        self.with_cost(|c, m| c.on_flops(n, m));
        self.trace(EventKind::Flops, usize::MAX, n);
    }

    /// Record `w` words of transient buffer space (memory footprint probe).
    pub fn note_buffer(&self, w: usize) {
        self.with_ledger(|l| l.note_buffer(w));
    }

    /// Charge `clock` model-time units of pure waiting to this rank,
    /// attributed to the current phase. No words, messages, or flops move
    /// — this is how recovery drivers pay for backoff delays and timeout
    /// windows on the simulated clock.
    pub fn sleep(&self, clock: f64) {
        assert!(clock >= 0.0, "sleep clock must be non-negative");
        self.with_cost(|c, _| c.clock += clock);
    }

    /// World ranks of this communicator's group that the fault plan has
    /// crashed so far, as *group* ranks, sorted. Read from the world's
    /// crash registry — the simulation's stand-in for the out-of-band
    /// failure detector a real runtime (e.g. ULFM) queries.
    pub(crate) fn crashed_in_group(&self) -> Vec<usize> {
        let crashed = self.world.crashed.lock().clone();
        let mut group_ranks: Vec<usize> = crashed
            .iter()
            .filter_map(|w| self.group.iter().position(|g| g == w))
            .collect();
        group_ranks.sort_unstable();
        group_ranks.dedup();
        group_ranks
    }

    /// Whether the world has aborted (some rank failed): survivors must
    /// not touch the network once this is set.
    pub(crate) fn world_aborted(&self) -> bool {
        self.world.aborted.load(Ordering::SeqCst)
    }

    /// Current cost counters of this rank (snapshot).
    pub fn my_cost(&self) -> RankCost {
        self.with_ledger(|l| l.total.clone())
    }

    /// Open a named phase on this *rank*: until the matching
    /// [`pop_phase`](Comm::pop_phase), every cost delta and traced event
    /// charged by this rank — on this communicator or any communicator
    /// derived from the same world — is attributed to `name`. Phases nest;
    /// deltas go to the innermost one. Prefer the RAII form
    /// [`Comm::phase`].
    pub fn push_phase(&self, name: &'static str) {
        self.with_ledger(|l| l.push(name));
    }

    /// Close the innermost phase opened by [`push_phase`](Comm::push_phase).
    ///
    /// Panics if no phase is open (unbalanced pop).
    pub fn pop_phase(&self) {
        self.with_ledger(|l| l.pop());
    }

    /// Open phase `name` for the lifetime of the returned guard.
    ///
    /// ```
    /// # use syrk_machine::Machine;
    /// # Machine::new(1).run(|comm| {
    /// let _span = comm.phase("local-syrk");
    /// comm.add_flops(100); // attributed to "local-syrk"
    /// # });
    /// ```
    pub fn phase(&self, name: &'static str) -> PhaseScope<'_> {
        self.push_phase(name);
        PhaseScope { comm: self }
    }

    /// The innermost phase currently open on this rank, if any.
    pub fn current_phase(&self) -> Option<&'static str> {
        self.with_ledger(|l| l.active_phase())
    }

    /// Collectives call this to self-report under a `coll:*` name when the
    /// caller has not opened a phase of its own; inside a user phase the
    /// guard is `None` and the user's attribution stands.
    pub(crate) fn collective_phase(&self, name: &'static str) -> Option<PhaseScope<'_>> {
        if self.with_ledger(|l| l.is_idle()) {
            Some(self.phase(name))
        } else {
            None
        }
    }

    /// Whether the installed fault plan perturbs messages (checksums and
    /// sequence screening are only paid for when it does).
    fn faults_active(&self) -> bool {
        self.world
            .faults
            .as_ref()
            .is_some_and(|p| p.perturbs_messages())
    }

    /// Charge one communication operation against the fault plan's
    /// crash/stall schedule for this rank.
    fn fault_op_check(&self) -> Result<(), MachineError> {
        let Some(plan) = &self.world.faults else {
            return Ok(());
        };
        if !plan.perturbs_ranks() {
            return Ok(());
        }
        let me = self.world_rank();
        let op = self.world.ops[me].fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(clock) = plan.stall_at(me, op) {
            crate::fault::note_stall();
            self.charge_retry(
                RETRY_STALL_PHASE,
                EventKind::Flops,
                usize::MAX,
                0,
                |c, _| {
                    c.clock += clock;
                },
            );
        }
        if plan.crash_at(me, op) {
            crate::fault::note_crash();
            self.world.crashed.lock().push(me);
            let e = MachineError::RankCrashed {
                rank: me,
                after_ops: op - 1,
            };
            self.world.record_error(me, e.clone());
            return Err(e);
        }
        Ok(())
    }

    fn push_to(&self, dst_world: usize, env: Envelope) -> Result<(), MachineError> {
        if let Some(ev) = &self.world.event {
            // Event-engine fabric: a queue push that can also unpark the
            // destination. Inboxes outlive their rank's closure, so the
            // send itself never fails.
            ev.deliver(dst_world, env);
            return Ok(());
        }
        self.world.senders[dst_world].send(env).map_err(|_| {
            // The peer's inbox closed because its thread exited. Like the
            // recv path, a crash is not anonymized into `PeerFailed`:
            // survivors need the crashed rank's identity to agree on
            // failures and shrink the world around it.
            match self.world.first_error_or(MachineError::PeerFailed {
                rank: self.world_rank(),
            }) {
                e @ MachineError::RankCrashed { .. } => e,
                _ => MachineError::PeerFailed {
                    rank: self.world_rank(),
                },
            }
        })
    }

    /// Push a fault-injected extra copy (a garbled duplicate or
    /// corruption). Unlike the real copy, the receiver may legitimately
    /// have consumed everything it needed and returned already — its
    /// channel is then closed and the trailing artifact is discarded by
    /// the "network", not reported as a failure (which would race the
    /// first-error slot against the run's own completion).
    fn push_extra(&self, dst_world: usize, env: Envelope) -> Result<(), MachineError> {
        let r = self.push_to(dst_world, env);
        if r.is_err() {
            // The receiver's channel closes when its closure returns;
            // wait for the flags to settle so a clean exit is never
            // misclassified, then swallow the artifact either way (a
            // genuine failure is recorded by the failing rank itself).
            let world = &*self.world;
            while !world.finished[dst_world].load(Ordering::SeqCst)
                && !world.poisoned.load(Ordering::SeqCst)
                && !world.aborted.load(Ordering::SeqCst)
            {
                std::thread::yield_now();
            }
        }
        Ok(())
    }

    /// Charge a fault-handling receive (or retransmit) under `phase`,
    /// metering it on the telemetry registry (`syrk_retry_*_handled`).
    fn charge_retry(
        &self,
        phase: &'static str,
        kind: EventKind,
        peer: usize,
        amount: u64,
        f: impl FnOnce(&mut RankCost, &CostModel),
    ) {
        crate::fault::note_retry(phase);
        self.with_ledger(|l| l.push(phase));
        self.with_cost(f);
        // Traced while the retry phase is still open, so the slice in the
        // exported timeline is named `retry:*` and a viewer can see which
        // transmissions were fault repair rather than algorithm traffic.
        self.trace(kind, peer, amount);
        self.with_ledger(|l| l.pop());
    }

    /// The single dispatch path every transmission goes through: assigns
    /// the per-link sequence number, applies the fault plan (dropped
    /// attempts are retransmitted and charged to `retry:drop`; corrupted
    /// and duplicated copies are delivered around the real one), and
    /// charges the real attempt in the caller's phase. `charge_send` is
    /// false for the exchange path (charged as one duplex step at match
    /// time) and for zero-cost metadata; `exempt` messages (split
    /// bookkeeping) still carry sequence numbers but never fault.
    fn dispatch<T: Payload>(
        &self,
        dst: usize,
        tag: (u64, u64),
        payload: T,
        charge_send: bool,
        exempt: bool,
    ) -> Result<(), MachineError> {
        self.fault_op_check()?;
        let dst_world = self.group[dst];
        let me = self.world_rank();
        let words = payload.words();
        let active = self.faults_active();
        let (seq, checksum) = if active {
            let mut mb = self.mailbox.lock();
            let s = mb.tx_seq[dst_world];
            mb.tx_seq[dst_world] += 1;
            (s, payload.checksum())
        } else {
            (0, 0)
        };
        let mf = if active && !exempt {
            let mf = self
                .world
                .faults
                .as_ref()
                .expect("faults_active implies a plan")
                .decide(me, dst_world, seq);
            crate::fault::note_injected(&mf);
            mf
        } else {
            MessageFaults::default()
        };
        // Retransmits: each lost attempt costs a full message on the
        // sender but never reaches the wire.
        for _ in 0..mf.drops {
            self.charge_retry(
                RETRY_DROP_PHASE,
                EventKind::Send,
                dst_world,
                words as u64,
                |c, m| c.on_send(words, m),
            );
        }
        if mf.corrupt {
            // The garbled copy arrives first and fails the checksum; the
            // retransmission below is the one the receiver consumes.
            let ready = self.with_cost(|c, _| c.clock);
            self.push_extra(
                dst_world,
                Envelope {
                    src: me,
                    tag,
                    words,
                    sender_ready: ready,
                    seq,
                    checksum,
                    wire_checksum: checksum ^ 0xbad_c0de,
                    payload: Box::new(Garbled),
                },
            )?;
        }
        let sender_ready = if charge_send {
            self.with_cost(|c, m| {
                let ready = c.clock;
                c.on_send(words, m);
                ready
            })
        } else {
            self.with_cost(|c, _| c.clock)
        };
        self.push_to(
            dst_world,
            Envelope {
                src: me,
                tag,
                words,
                sender_ready: sender_ready + mf.delay,
                seq,
                checksum,
                wire_checksum: checksum,
                payload: Box::new(payload),
            },
        )?;
        if mf.duplicate {
            // A stale second copy with the same sequence number; the
            // receiver detects and discards it.
            self.push_extra(
                dst_world,
                Envelope {
                    src: me,
                    tag,
                    words,
                    sender_ready: sender_ready + mf.delay,
                    seq,
                    checksum,
                    wire_checksum: checksum,
                    payload: Box::new(Garbled),
                },
            )?;
        }
        Ok(())
    }

    /// Receive-side fault screening, applied to every envelope pulled off
    /// the channel *before* tag matching: a checksum mismatch is a
    /// corrupted delivery, a sequence number below the link cursor is a
    /// duplicate. Both are discarded, with the wasted receive charged to
    /// the matching `retry:*` phase.
    fn screen(&self, mb: &mut Mailbox, env: Envelope) -> Option<Envelope> {
        if !self.faults_active() {
            return Some(env);
        }
        if env.wire_checksum != env.checksum {
            self.charge_retry(
                RETRY_CORRUPT_PHASE,
                EventKind::Recv,
                env.src,
                env.words as u64,
                |c, m| c.on_recv(env.words, env.sender_ready, m),
            );
            return None;
        }
        let next = &mut mb.rx_next[env.src];
        if env.seq < *next {
            self.charge_retry(
                RETRY_DUP_PHASE,
                EventKind::Recv,
                env.src,
                env.words as u64,
                |c, m| c.on_recv(env.words, env.sender_ready, m),
            );
            return None;
        }
        *next = env.seq + 1;
        Some(env)
    }

    /// Watchdog declaration: first rank to flip the abort flag snapshots
    /// the wait-for graph; racers get `None` and report the cascade.
    fn declare_deadlock(&self) -> Option<DeadlockInfo> {
        let world = &*self.world;
        if world
            .aborted
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return None;
        }
        let info = world.snapshot_deadlock();
        let mut slot = world.first_error.lock();
        if slot.is_none() {
            *slot = Some((self.world_rank(), MachineError::Deadlock(info.clone())));
        }
        Some(info)
    }

    /// The single blocking matching loop every receive goes through.
    /// Registers this rank's wait-for edge, screens every delivery for
    /// injected faults, and gives up on poisoning, abort, watchdog
    /// deadlock, or the machine timeout.
    fn recv_env(
        &self,
        src_world: usize,
        tag: (u64, u64),
        op: &'static str,
    ) -> Result<Envelope, RecvErr> {
        let me = self.world_rank();
        let world = &*self.world;
        let mut mb = self.mailbox.lock();
        if let Some(env) = mb.pending.take(src_world, tag) {
            return Ok(env);
        }
        *world.waiting[me].lock() = Some(WaitEdge {
            from: me,
            to: src_world,
            op,
            tag,
            phase: self.with_ledger(|l| l.active_phase()),
        });
        let _clear = ClearWait {
            slot: &world.waiting[me],
        };
        // Wall-clock span covering the whole blocked receive (recorded on
        // every exit path by the guard — including the deadlock one, so a
        // failure dump shows how long each rank really sat blocked).
        let _recv_span = RecvSpan::begin(src_world);
        if world.event.is_some() {
            return self.recv_env_event(&mut mb, src_world, tag);
        }
        let deadline = Instant::now() + world.timeout;
        // `(since, progress epoch)` of the oldest tick at which every live
        // rank was observed blocked with this epoch.
        let mut stuck: Option<(Instant, u64)> = None;
        loop {
            // Poll in short slices so failures elsewhere (panic, crash,
            // watchdog) abort this receive promptly instead of stalling
            // until the full deadlock timeout.
            let rx = mb.rx.as_ref().expect("threaded engine owns a channel");
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(env) => {
                    world.progress.fetch_add(1, Ordering::SeqCst);
                    stuck = None;
                    let Some(env) = self.screen(&mut mb, env) else {
                        continue;
                    };
                    if env.matches(src_world, tag) {
                        return Ok(env);
                    }
                    mb.pending.push(env);
                }
                Err(_) => {
                    if world.poisoned.load(Ordering::Relaxed) {
                        return Err(RecvErr::PeerPanicked);
                    }
                    if world.aborted.load(Ordering::SeqCst) {
                        return Err(RecvErr::Aborted(
                            world.first_error_or(MachineError::PeerFailed { rank: me }),
                        ));
                    }
                    let prog = world.progress.load(Ordering::SeqCst);
                    let all_blocked = (0..world.size).all(|r| {
                        r == me
                            || world.finished[r].load(Ordering::SeqCst)
                            || world.waiting[r].lock().is_some()
                    });
                    if all_blocked {
                        match stuck {
                            Some((since, epoch)) if epoch == prog => {
                                if since.elapsed() >= world.watchdog {
                                    return match self.declare_deadlock() {
                                        Some(info) => Err(RecvErr::Deadlock(info)),
                                        None => Err(RecvErr::Aborted(world.first_error_or(
                                            MachineError::PeerFailed { rank: me },
                                        ))),
                                    };
                                }
                            }
                            _ => stuck = Some((Instant::now(), prog)),
                        }
                    } else {
                        stuck = None;
                    }
                    if Instant::now() >= deadline {
                        return Err(RecvErr::Timeout {
                            pending: mb.pending.len(),
                        });
                    }
                }
            }
        }
    }

    /// Event-engine tail of the blocking receive: drain this rank's
    /// inbox, and when it runs dry with no match, park and yield to the
    /// scheduler. No timeouts and no watchdog heuristics — a deadlock is
    /// detected exactly by the scheduler (empty ready heap, live ranks),
    /// which records the error and wakes everyone to observe the abort.
    ///
    /// Holding the mailbox guard across the yield is sound: only the
    /// owning rank ever locks its own mailbox (senders touch the
    /// [`EventState`](crate::engine::EventState) inbox, not the mailbox),
    /// and all ranks share one OS thread, so nobody can contend while
    /// this rank is parked.
    fn recv_env_event(
        &self,
        mb: &mut Mailbox,
        src_world: usize,
        tag: (u64, u64),
    ) -> Result<Envelope, RecvErr> {
        let me = self.world_rank();
        let world = &*self.world;
        let ev = world.event.as_ref().expect("event engine state");
        loop {
            loop {
                let Some(env) = ev.inboxes[me].lock().pop_front() else {
                    break;
                };
                world.progress.fetch_add(1, Ordering::Relaxed);
                let Some(env) = self.screen(mb, env) else {
                    continue;
                };
                if env.matches(src_world, tag) {
                    return Ok(env);
                }
                mb.pending.push(env);
            }
            if world.poisoned.load(Ordering::Relaxed) {
                return Err(RecvErr::PeerPanicked);
            }
            if world.aborted.load(Ordering::SeqCst) {
                return Err(RecvErr::Aborted(
                    world.first_error_or(MachineError::PeerFailed { rank: me }),
                ));
            }
            ev.park(me);
            crate::context::yield_now();
        }
    }

    /// Like [`recv_env`](Comm::recv_env) but panicking, with the legacy
    /// diagnostic messages.
    fn recv_env_or_panic(&self, src_world: usize, tag: (u64, u64), op: &'static str) -> Envelope {
        let me = self.world_rank();
        match self.recv_env(src_world, tag, op) {
            Ok(env) => env,
            Err(RecvErr::PeerPanicked) => panic!(
                "rank {me}: aborting recv from {src_world} tag {tag:?}: another rank panicked"
            ),
            Err(RecvErr::Aborted(e)) => {
                panic!("rank {me}: aborting recv from {src_world} tag {tag:?}: {e}")
            }
            Err(RecvErr::Timeout { pending }) => panic!(
                "rank {me}: recv from {src_world} tag {tag:?} timed out after {:?} \
                 ({pending} unmatched envelopes pending)",
                self.world.timeout
            ),
            Err(RecvErr::Deadlock(info)) => {
                panic!("rank {me}: {}", MachineError::Deadlock(info))
            }
        }
    }

    fn recv_err_to_machine(&self, e: RecvErr, src_world: usize, tag: (u64, u64)) -> MachineError {
        let me = self.world_rank();
        match e {
            // A crash is not anonymized into `PeerFailed`: survivors need
            // the crashed rank's identity to agree on failures and shrink
            // the world around it, so the run's first error propagates.
            RecvErr::Aborted(e @ MachineError::RankCrashed { .. }) => e,
            RecvErr::PeerPanicked | RecvErr::Aborted(_) => MachineError::PeerFailed { rank: me },
            RecvErr::Timeout { .. } => MachineError::RecvTimeout {
                rank: me,
                src: src_world,
                tag,
            },
            RecvErr::Deadlock(info) => MachineError::Deadlock(info),
        }
    }

    /// Send `payload` to group rank `dst` with `tag`. Blocking-send
    /// semantics are simulated for cost purposes only; the transport is
    /// buffered, so `send` never deadlocks.
    ///
    /// Panics on injected crash faults or a dead peer; see
    /// [`try_send`](Comm::try_send) for the `Result` form.
    pub fn send<T: Payload>(&self, dst: usize, tag: u64, payload: T) {
        self.try_send(dst, tag, payload)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible form of [`send`](Comm::send): returns an error instead of
    /// panicking when this rank is crashed by the fault plan or the peer
    /// is gone.
    #[must_use = "the Result carries transport failures that must be handled"]
    pub fn try_send<T: Payload>(
        &self,
        dst: usize,
        tag: u64,
        payload: T,
    ) -> Result<(), MachineError> {
        assert!(
            dst < self.size(),
            "send: dst {dst} out of range for size {}",
            self.size()
        );
        let words = payload.words() as u64;
        self.dispatch(dst, (self.comm_id, tag), payload, true, false)?;
        self.trace(EventKind::Send, self.group[dst], words);
        Ok(())
    }

    /// Receive a `T` from group rank `src` with `tag`.
    ///
    /// Panics if the next matching message does not contain a `T`, or if no
    /// matching message arrives within the machine's timeout (a deadlock
    /// diagnostic rather than a hang). See [`try_recv`](Comm::try_recv)
    /// for the `Result` form.
    pub fn recv<T: Payload>(&self, src: usize, tag: u64) -> T {
        assert!(
            src < self.size(),
            "recv: src {src} out of range for size {}",
            self.size()
        );
        self.fault_op_check().unwrap_or_else(|e| panic!("{e}"));
        let env = self.recv_env_or_panic(self.group[src], (self.comm_id, tag), "recv");
        self.with_cost(|c, m| c.on_recv(env.words, env.sender_ready, m));
        self.trace(EventKind::Recv, self.group[src], env.words as u64);
        *env.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch receiving from {} tag {}",
                self.rank(),
                src,
                tag
            )
        })
    }

    /// Fallible form of [`recv`](Comm::recv): a watchdog-detected
    /// deadlock, timeout, peer failure, injected crash, or payload type
    /// mismatch is returned as a [`MachineError`] instead of panicking.
    #[must_use = "the Result carries transport failures that must be handled"]
    pub fn try_recv<T: Payload>(&self, src: usize, tag: u64) -> Result<T, MachineError> {
        assert!(
            src < self.size(),
            "recv: src {src} out of range for size {}",
            self.size()
        );
        self.fault_op_check()?;
        let src_world = self.group[src];
        let env = self
            .recv_env(src_world, (self.comm_id, tag), "recv")
            .map_err(|e| self.recv_err_to_machine(e, src_world, (self.comm_id, tag)))?;
        self.with_cost(|c, m| c.on_recv(env.words, env.sender_ready, m));
        self.trace(EventKind::Recv, src_world, env.words as u64);
        env.payload
            .downcast::<T>()
            .map(|b| *b)
            .map_err(|_| MachineError::TypeMismatch {
                rank: self.rank(),
                src,
                tag,
            })
    }

    /// Simultaneously send `payload` to `dst` and receive a `T` from `src`
    /// (both group ranks). Under the bidirectional-link assumption of §3.2
    /// the step is charged once at `α + β·max(w_out, w_in)`, which is what
    /// makes pairwise-exchange collectives cost `(1 − 1/P)·w`.
    pub fn exchange<T: Payload, U: Payload>(&self, dst: usize, out: T, src: usize, tag: u64) -> U {
        assert!(dst < self.size() && src < self.size());
        let w_out = out.words();
        // Dispatch without advancing the clock: the exchange is charged as
        // one duplex step when the inbound message is matched below.
        self.dispatch(dst, (self.comm_id, tag), out, false, false)
            .unwrap_or_else(|e| panic!("{e}"));
        let env = self.recv_env_or_panic(self.group[src], (self.comm_id, tag), "exchange");
        self.with_cost(|c, m| c.on_exchange(w_out, env.words, env.sender_ready, m));
        self.trace(
            EventKind::Exchange,
            self.group[dst],
            w_out.max(env.words) as u64,
        );
        *env.payload.downcast::<U>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch in exchange with src {} tag {}",
                self.rank(),
                src,
                tag
            )
        })
    }

    /// Fallible form of [`exchange`](Comm::exchange).
    #[must_use = "the Result carries transport failures that must be handled"]
    pub fn try_exchange<T: Payload, U: Payload>(
        &self,
        dst: usize,
        out: T,
        src: usize,
        tag: u64,
    ) -> Result<U, MachineError> {
        assert!(dst < self.size() && src < self.size());
        let w_out = out.words();
        self.dispatch(dst, (self.comm_id, tag), out, false, false)?;
        let src_world = self.group[src];
        let env = self
            .recv_env(src_world, (self.comm_id, tag), "exchange")
            .map_err(|e| self.recv_err_to_machine(e, src_world, (self.comm_id, tag)))?;
        self.with_cost(|c, m| c.on_exchange(w_out, env.words, env.sender_ready, m));
        self.trace(
            EventKind::Exchange,
            self.group[dst],
            w_out.max(env.words) as u64,
        );
        env.payload
            .downcast::<U>()
            .map(|b| *b)
            .map_err(|_| MachineError::TypeMismatch {
                rank: self.rank(),
                src,
                tag,
            })
    }

    /// Collectively split this communicator into disjoint sub-communicators.
    ///
    /// All members of `self` must call `split` together (it is collective in
    /// the SPMD sense — same call sequence on every rank). Ranks passing the
    /// same `color` end up in the same child communicator, ordered by
    /// `key` (ties broken by parent rank). Mirrors `MPI_Comm_split`.
    pub fn split(&mut self, color: u64, key: usize) -> Comm {
        self.split_seq += 1;
        // Agree on membership: all-gather (color, key) as metadata.
        // This is bookkeeping, not algorithm communication, so it is
        // performed out-of-band (no cost charged) via a zero-cost gather:
        // every rank sends its (color, key) to everyone. To keep the
        // simulation honest we avoid the network entirely: membership is a
        // pure function of the arguments, which every rank must supply
        // consistently, so each rank exchanges metadata envelopes of zero
        // words. The metadata is exempt from fault injection (it still
        // carries sequence numbers so link cursors stay consistent).
        let tag = mix64(self.comm_id ^ self.split_seq.wrapping_mul(0x51ab_3c47));
        let me = self.group_rank;
        let meta = vec![color, key as u64];
        for dst in 0..self.size() {
            if dst != me {
                // Zero-word metadata: charge nothing.
                self.dispatch(dst, (self.comm_id, tag), meta.clone(), false, true)
                    .unwrap_or_else(|e| panic!("{e}"));
            }
        }
        let mut members: Vec<(u64, usize, usize)> = vec![(color, key, me)];
        for src in 0..self.size() {
            if src != me {
                let env = self.recv_env_or_panic(self.group[src], (self.comm_id, tag), "split");
                let v = env
                    .payload
                    .downcast::<Vec<u64>>()
                    .expect("split metadata must be Vec<u64>");
                if v[0] == color {
                    members.push((v[0], v[1] as usize, src));
                }
            }
        }
        members.sort_by_key(|&(_, key, parent_rank)| (key, parent_rank));
        let group: Vec<usize> = members.iter().map(|&(_, _, pr)| self.group[pr]).collect();
        let group_rank = members
            .iter()
            .position(|&(_, _, pr)| pr == me)
            .expect("caller is always a member of its own color group");
        let comm_id = mix64(self.comm_id ^ mix64(self.split_seq) ^ mix64(color.wrapping_add(1)));
        Comm {
            world: Arc::clone(&self.world),
            mailbox: Arc::clone(&self.mailbox),
            group: Arc::new(group),
            group_rank,
            comm_id,
            split_seq: 0,
        }
    }
}

/// RAII guard for a phase opened with [`Comm::phase`]; pops on drop.
#[must_use = "the phase pops when the guard drops"]
pub struct PhaseScope<'a> {
    comm: &'a Comm,
}

impl Drop for PhaseScope<'_> {
    fn drop(&mut self) {
        self.comm.pop_phase();
    }
}

#[cfg(test)]
mod tests {
    use crate::cost::UNTAGGED_PHASE;
    use crate::machine::Machine;

    #[test]
    fn send_recv_roundtrip() {
        let out = Machine::new(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.0f64, 2.0, 3.0]);
                0.0
            } else {
                let v: Vec<f64> = comm.recv(0, 7);
                v.iter().sum()
            }
        });
        assert_eq!(out.results[1], 6.0);
        assert_eq!(out.cost.ranks[0].words_sent, 3);
        assert_eq!(out.cost.ranks[1].words_recv, 3);
    }

    #[test]
    fn out_of_order_tags_are_matched() {
        let out = Machine::new(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![10.0f64]);
                comm.send(1, 2, vec![20.0f64]);
                0.0
            } else {
                // Receive in the opposite order of sending.
                let b: Vec<f64> = comm.recv(0, 2);
                let a: Vec<f64> = comm.recv(0, 1);
                a[0] - b[0]
            }
        });
        assert_eq!(out.results[1], -10.0);
    }

    #[test]
    fn exchange_is_duplex_charged() {
        let out = Machine::new(2).run(|comm| {
            let partner = 1 - comm.rank();
            let mine = vec![comm.rank() as f64; 5];
            let theirs: Vec<f64> = comm.exchange(partner, mine, partner, 3);
            theirs[0]
        });
        assert_eq!(out.results[0], 1.0);
        assert_eq!(out.results[1], 0.0);
        // One duplex step: each rank sent 5 and received 5 words but the
        // clock advanced by a single message cost (β·5 under bandwidth-only).
        assert_eq!(out.cost.ranks[0].words_sent, 5);
        assert_eq!(out.cost.ranks[0].words_recv, 5);
        assert!((out.cost.ranks[0].clock - 5.0).abs() < 1e-12);
    }

    #[test]
    fn split_creates_disjoint_groups() {
        let out = Machine::new(6).run(|comm| {
            let color = (comm.rank() % 2) as u64;
            let mut comm = comm;
            let sub = comm.split(color, comm.rank());
            // Even ranks {0,2,4} form one comm, odd ranks {1,3,5} another.
            assert_eq!(sub.size(), 3);
            // Exchange ranks within the subgroup to prove isolation.
            let next = (sub.rank() + 1) % sub.size();
            let prev = (sub.rank() + sub.size() - 1) % sub.size();
            sub.send(next, 9, vec![comm.rank() as f64]);
            let v: Vec<f64> = sub.recv(prev, 9);
            v[0]
        });
        // rank 2's predecessor in the even group is rank 0, etc.
        assert_eq!(out.results[2], 0.0);
        assert_eq!(out.results[4], 2.0);
        assert_eq!(out.results[0], 4.0);
        assert_eq!(out.results[3], 1.0);
    }

    #[test]
    fn split_respects_key_ordering() {
        let out = Machine::new(4).run(|comm| {
            // Reverse the ordering via key.
            let mut comm = comm;
            let sub = comm.split(0, 100 - comm.rank());
            sub.rank()
        });
        assert_eq!(out.results, vec![3, 2, 1, 0]);
    }

    #[test]
    fn flops_are_charged() {
        let out = Machine::new(3).run(|comm| {
            comm.add_flops(10 * (comm.rank() as u64 + 1));
        });
        assert_eq!(out.cost.total_flops(), 60);
        assert_eq!(out.cost.max_flops(), 30);
    }

    #[test]
    fn phases_attribute_deltas_and_events() {
        let out = Machine::new(2).with_tracing().run(|comm| {
            let partner = 1 - comm.rank();
            {
                let _span = comm.phase("ring");
                comm.send(partner, 1, vec![1.0f64; 4]);
                let _: Vec<f64> = comm.recv(partner, 1);
            }
            assert_eq!(comm.current_phase(), None);
            comm.add_flops(50);
        });
        for r in 0..2 {
            let ring = out.cost.phase_cost(r, "ring").unwrap();
            assert_eq!(ring.words_sent, 4);
            assert_eq!(ring.words_recv, 4);
            assert_eq!(ring.flops, 0);
            let untagged = out.cost.phase_cost(r, UNTAGGED_PHASE).unwrap();
            assert_eq!(untagged.flops, 50);
            assert_eq!(untagged.words_sent, 0);
        }
        // Events carry the phase active when they were recorded.
        let traces = out.traces.unwrap();
        for t in &traces {
            assert!(t
                .iter()
                .all(|e| (e.kind == crate::trace::EventKind::Flops) == (e.phase.is_none())));
        }
        assert_eq!(out.cost.phase_max_words_sent("ring"), 4);
    }

    #[test]
    fn phases_survive_split() {
        let out = Machine::new(4).run(|comm| {
            let mut comm = comm;
            comm.push_phase("sub");
            let sub = comm.split((comm.rank() % 2) as u64, comm.rank());
            let partner = 1 - sub.rank();
            sub.send(partner, 5, vec![0.0f64; 3]);
            let _: Vec<f64> = sub.recv(partner, 5);
            comm.pop_phase();
        });
        for r in 0..4 {
            let c = out.cost.phase_cost(r, "sub").unwrap();
            assert_eq!(c.words_sent, 3);
        }
    }

    #[test]
    #[should_panic(expected = "pop_phase without a matching push_phase")]
    fn unbalanced_pop_panics() {
        Machine::new(1).run(|comm| comm.pop_phase());
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        Machine::new(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![1.0f64]);
            } else {
                let _: Vec<u64> = comm.recv(0, 0);
            }
        });
    }
}
