//! Communicators: point-to-point messaging, sub-communicators, and the
//! shared world state of a simulated machine run.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::sync::{
    channel::{Receiver, Sender},
    Mutex,
};

use crate::cost::{CostModel, RankCost, RankLedger};
use crate::envelope::{Envelope, Payload};
use crate::trace::{Event, EventKind, Timeline};

/// Per-rank incoming message queue with out-of-order matching.
///
/// Channels deliver envelopes in send order per link; a receive for a
/// specific `(src, tag)` buffers any non-matching envelopes in `pending`
/// until they are asked for.
pub(crate) struct Mailbox {
    rx: Receiver<Envelope>,
    pending: Vec<Envelope>,
}

impl Mailbox {
    fn take_matching(
        &mut self,
        src: usize,
        tag: (u64, u64),
        timeout: Duration,
        me: usize,
        poisoned: &AtomicBool,
    ) -> Envelope {
        if let Some(pos) = self
            .pending
            .iter()
            .position(|e| e.src == src && e.tag == tag)
        {
            // `remove`, not `swap_remove`: per-link FIFO order must be
            // preserved so that back-to-back collectives reusing a tag
            // match their rounds in send order.
            return self.pending.remove(pos);
        }
        let deadline = Instant::now() + timeout;
        loop {
            // Poll in short slices so a panic on another rank (which can
            // never satisfy this receive) aborts the run promptly instead
            // of stalling until the full deadlock timeout.
            match self.rx.recv_timeout(Duration::from_millis(50)) {
                Ok(env) if env.src == src && env.tag == tag => return env,
                Ok(env) => self.pending.push(env),
                Err(_) => {
                    if poisoned.load(Ordering::Relaxed) {
                        panic!(
                            "rank {me}: aborting recv from {src} tag {tag:?}: another rank panicked"
                        );
                    }
                    if Instant::now() >= deadline {
                        panic!(
                            "rank {me}: recv from {src} tag {tag:?} timed out after {timeout:?} \
                             ({} unmatched envelopes pending)",
                            self.pending.len()
                        );
                    }
                }
            }
        }
    }
}

/// Shared state of one machine run: the network fabric and cost ledger.
pub(crate) struct World {
    pub size: usize,
    pub model: CostModel,
    pub senders: Vec<Sender<Envelope>>,
    pub costs: Vec<Mutex<RankLedger>>,
    pub timeout: Duration,
    /// Set when any rank panics so blocked receives abort promptly.
    pub poisoned: AtomicBool,
    /// Per-rank event logs when tracing is enabled.
    pub traces: Option<Vec<Mutex<Timeline>>>,
}

/// A communicator handle held by a single simulated rank.
///
/// The world communicator is handed to the SPMD closure by
/// [`Machine::run`](crate::machine::Machine::run); sub-communicators are
/// created collectively with [`Comm::split`]. Group ranks (`0..size`) are
/// always used in the public API; translation to world ranks is internal.
pub struct Comm {
    world: Arc<World>,
    mailbox: Arc<Mutex<Mailbox>>,
    /// World ranks of this communicator's members, indexed by group rank.
    group: Arc<Vec<usize>>,
    /// This rank's position within `group`.
    group_rank: usize,
    /// Communicator id; tags are namespaced per communicator.
    comm_id: u64,
    /// Number of `split` calls performed on this communicator (local, but
    /// consistent across members because splits are collective).
    split_seq: u64,
}

/// splitmix64 finalizer — used to derive child communicator ids
/// deterministically and identically on every member.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl Comm {
    pub(crate) fn new_world(world: Arc<World>, rank: usize, rx: Receiver<Envelope>) -> Self {
        Comm {
            mailbox: Arc::new(Mutex::new(Mailbox {
                rx,
                pending: Vec::new(),
            })),
            group: Arc::new((0..world.size).collect()),
            group_rank: rank,
            comm_id: 0,
            split_seq: 0,
            world,
        }
    }

    /// This rank within this communicator (`0..size`).
    pub fn rank(&self) -> usize {
        self.group_rank
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// This rank in the world communicator.
    pub fn world_rank(&self) -> usize {
        self.group[self.group_rank]
    }

    /// The cost model the run is charged under.
    pub fn model(&self) -> CostModel {
        self.world.model
    }

    fn with_ledger<R>(&self, f: impl FnOnce(&mut RankLedger) -> R) -> R {
        let mut guard = self.world.costs[self.world_rank()].lock();
        f(&mut guard)
    }

    fn with_cost<R>(&self, f: impl FnOnce(&mut RankCost, &CostModel) -> R) -> R {
        let model = self.world.model;
        self.with_ledger(|l| l.apply(&model, f))
    }

    fn trace(&self, kind: EventKind, peer: usize, amount: u64) {
        if let Some(traces) = &self.world.traces {
            let (clock, phase) = self.with_ledger(|l| (l.total.clock, l.active_phase()));
            traces[self.world_rank()].lock().push(Event {
                kind,
                peer,
                amount,
                clock,
                phase,
            });
        }
    }

    /// Charge `n` flops to this rank.
    pub fn add_flops(&self, n: u64) {
        self.with_cost(|c, m| c.on_flops(n, m));
        self.trace(EventKind::Flops, usize::MAX, n);
    }

    /// Record `w` words of transient buffer space (memory footprint probe).
    pub fn note_buffer(&self, w: usize) {
        self.with_ledger(|l| l.note_buffer(w));
    }

    /// Current cost counters of this rank (snapshot).
    pub fn my_cost(&self) -> RankCost {
        self.with_ledger(|l| l.total.clone())
    }

    /// Open a named phase on this *rank*: until the matching
    /// [`pop_phase`](Comm::pop_phase), every cost delta and traced event
    /// charged by this rank — on this communicator or any communicator
    /// derived from the same world — is attributed to `name`. Phases nest;
    /// deltas go to the innermost one. Prefer the RAII form
    /// [`Comm::phase`].
    pub fn push_phase(&self, name: &'static str) {
        self.with_ledger(|l| l.push(name));
    }

    /// Close the innermost phase opened by [`push_phase`](Comm::push_phase).
    ///
    /// Panics if no phase is open (unbalanced pop).
    pub fn pop_phase(&self) {
        self.with_ledger(|l| l.pop());
    }

    /// Open phase `name` for the lifetime of the returned guard.
    ///
    /// ```
    /// # use syrk_machine::Machine;
    /// # Machine::new(1).run(|comm| {
    /// let _span = comm.phase("local-syrk");
    /// comm.add_flops(100); // attributed to "local-syrk"
    /// # });
    /// ```
    pub fn phase(&self, name: &'static str) -> PhaseScope<'_> {
        self.push_phase(name);
        PhaseScope { comm: self }
    }

    /// The innermost phase currently open on this rank, if any.
    pub fn current_phase(&self) -> Option<&'static str> {
        self.with_ledger(|l| l.active_phase())
    }

    /// Collectives call this to self-report under a `coll:*` name when the
    /// caller has not opened a phase of its own; inside a user phase the
    /// guard is `None` and the user's attribution stands.
    pub(crate) fn collective_phase(&self, name: &'static str) -> Option<PhaseScope<'_>> {
        if self.with_ledger(|l| l.is_idle()) {
            Some(self.phase(name))
        } else {
            None
        }
    }

    fn push_to(&self, dst_world: usize, env: Envelope) {
        self.world.senders[dst_world]
            .send(env)
            .expect("simulated network channel closed while ranks are live");
    }

    /// Send `payload` to group rank `dst` with `tag`. Blocking-send
    /// semantics are simulated for cost purposes only; the transport is
    /// buffered, so `send` never deadlocks.
    pub fn send<T: Payload>(&self, dst: usize, tag: u64, payload: T) {
        assert!(
            dst < self.size(),
            "send: dst {dst} out of range for size {}",
            self.size()
        );
        let words = payload.words();
        let sender_ready = self.with_cost(|c, m| {
            let ready = c.clock;
            c.on_send(words, m);
            ready
        });
        self.push_to(
            self.group[dst],
            Envelope {
                src: self.world_rank(),
                tag: (self.comm_id, tag),
                words,
                sender_ready,
                payload: Box::new(payload),
            },
        );
        self.trace(EventKind::Send, self.group[dst], words as u64);
    }

    /// Receive a `T` from group rank `src` with `tag`.
    ///
    /// Panics if the next matching message does not contain a `T`, or if no
    /// matching message arrives within the machine's timeout (a deadlock
    /// diagnostic rather than a hang).
    pub fn recv<T: Payload>(&self, src: usize, tag: u64) -> T {
        assert!(
            src < self.size(),
            "recv: src {src} out of range for size {}",
            self.size()
        );
        let env = self.mailbox.lock().take_matching(
            self.group[src],
            (self.comm_id, tag),
            self.world.timeout,
            self.world_rank(),
            &self.world.poisoned,
        );
        self.with_cost(|c, m| c.on_recv(env.words, env.sender_ready, m));
        self.trace(EventKind::Recv, self.group[src], env.words as u64);
        *env.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch receiving from {} tag {}",
                self.rank(),
                src,
                tag
            )
        })
    }

    /// Simultaneously send `payload` to `dst` and receive a `T` from `src`
    /// (both group ranks). Under the bidirectional-link assumption of §3.2
    /// the step is charged once at `α + β·max(w_out, w_in)`, which is what
    /// makes pairwise-exchange collectives cost `(1 − 1/P)·w`.
    pub fn exchange<T: Payload, U: Payload>(&self, dst: usize, out: T, src: usize, tag: u64) -> U {
        assert!(dst < self.size() && src < self.size());
        let w_out = out.words();
        // Dispatch without advancing the clock: the exchange is charged as
        // one duplex step when the inbound message is matched below.
        let sender_ready = self.with_cost(|c, _| c.clock);
        self.push_to(
            self.group[dst],
            Envelope {
                src: self.world_rank(),
                tag: (self.comm_id, tag),
                words: w_out,
                sender_ready,
                payload: Box::new(out),
            },
        );
        let env = self.mailbox.lock().take_matching(
            self.group[src],
            (self.comm_id, tag),
            self.world.timeout,
            self.world_rank(),
            &self.world.poisoned,
        );
        self.with_cost(|c, m| c.on_exchange(w_out, env.words, env.sender_ready, m));
        self.trace(
            EventKind::Exchange,
            self.group[dst],
            w_out.max(env.words) as u64,
        );
        *env.payload.downcast::<U>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch in exchange with src {} tag {}",
                self.rank(),
                src,
                tag
            )
        })
    }

    /// Collectively split this communicator into disjoint sub-communicators.
    ///
    /// All members of `self` must call `split` together (it is collective in
    /// the SPMD sense — same call sequence on every rank). Ranks passing the
    /// same `color` end up in the same child communicator, ordered by
    /// `key` (ties broken by parent rank). Mirrors `MPI_Comm_split`.
    pub fn split(&mut self, color: u64, key: usize) -> Comm {
        self.split_seq += 1;
        // Agree on membership: all-gather (color, key) as metadata.
        // This is bookkeeping, not algorithm communication, so it is
        // performed out-of-band (no cost charged) via a zero-cost gather:
        // every rank sends its (color, key) to everyone. To keep the
        // simulation honest we avoid the network entirely: membership is a
        // pure function of the arguments, which every rank must supply
        // consistently, so each rank exchanges metadata envelopes of zero
        // words.
        let tag = mix64(self.comm_id ^ self.split_seq.wrapping_mul(0x51ab_3c47));
        let me = self.group_rank;
        let meta = vec![color, key as u64];
        for dst in 0..self.size() {
            if dst != me {
                // Zero-word metadata: charge nothing.
                let sender_ready = self.with_cost(|c, _| c.clock);
                self.push_to(
                    self.group[dst],
                    Envelope {
                        src: self.world_rank(),
                        tag: (self.comm_id, tag),
                        words: 0,
                        sender_ready,
                        payload: Box::new(meta.clone()),
                    },
                );
            }
        }
        let mut members: Vec<(u64, usize, usize)> = vec![(color, key, me)];
        for src in 0..self.size() {
            if src != me {
                let env = self.mailbox.lock().take_matching(
                    self.group[src],
                    (self.comm_id, tag),
                    self.world.timeout,
                    self.world_rank(),
                    &self.world.poisoned,
                );
                let v = env
                    .payload
                    .downcast::<Vec<u64>>()
                    .expect("split metadata must be Vec<u64>");
                if v[0] == color {
                    members.push((v[0], v[1] as usize, src));
                }
            }
        }
        members.sort_by_key(|&(_, key, parent_rank)| (key, parent_rank));
        let group: Vec<usize> = members.iter().map(|&(_, _, pr)| self.group[pr]).collect();
        let group_rank = members
            .iter()
            .position(|&(_, _, pr)| pr == me)
            .expect("caller is always a member of its own color group");
        let comm_id = mix64(self.comm_id ^ mix64(self.split_seq) ^ mix64(color.wrapping_add(1)));
        Comm {
            world: Arc::clone(&self.world),
            mailbox: Arc::clone(&self.mailbox),
            group: Arc::new(group),
            group_rank,
            comm_id,
            split_seq: 0,
        }
    }
}

/// RAII guard for a phase opened with [`Comm::phase`]; pops on drop.
#[must_use = "the phase pops when the guard drops"]
pub struct PhaseScope<'a> {
    comm: &'a Comm,
}

impl Drop for PhaseScope<'_> {
    fn drop(&mut self) {
        self.comm.pop_phase();
    }
}

#[cfg(test)]
mod tests {
    use crate::cost::UNTAGGED_PHASE;
    use crate::machine::Machine;

    #[test]
    fn send_recv_roundtrip() {
        let out = Machine::new(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.0f64, 2.0, 3.0]);
                0.0
            } else {
                let v: Vec<f64> = comm.recv(0, 7);
                v.iter().sum()
            }
        });
        assert_eq!(out.results[1], 6.0);
        assert_eq!(out.cost.ranks[0].words_sent, 3);
        assert_eq!(out.cost.ranks[1].words_recv, 3);
    }

    #[test]
    fn out_of_order_tags_are_matched() {
        let out = Machine::new(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![10.0f64]);
                comm.send(1, 2, vec![20.0f64]);
                0.0
            } else {
                // Receive in the opposite order of sending.
                let b: Vec<f64> = comm.recv(0, 2);
                let a: Vec<f64> = comm.recv(0, 1);
                a[0] - b[0]
            }
        });
        assert_eq!(out.results[1], -10.0);
    }

    #[test]
    fn exchange_is_duplex_charged() {
        let out = Machine::new(2).run(|comm| {
            let partner = 1 - comm.rank();
            let mine = vec![comm.rank() as f64; 5];
            let theirs: Vec<f64> = comm.exchange(partner, mine, partner, 3);
            theirs[0]
        });
        assert_eq!(out.results[0], 1.0);
        assert_eq!(out.results[1], 0.0);
        // One duplex step: each rank sent 5 and received 5 words but the
        // clock advanced by a single message cost (β·5 under bandwidth-only).
        assert_eq!(out.cost.ranks[0].words_sent, 5);
        assert_eq!(out.cost.ranks[0].words_recv, 5);
        assert!((out.cost.ranks[0].clock - 5.0).abs() < 1e-12);
    }

    #[test]
    fn split_creates_disjoint_groups() {
        let out = Machine::new(6).run(|comm| {
            let color = (comm.rank() % 2) as u64;
            let mut comm = comm;
            let sub = comm.split(color, comm.rank());
            // Even ranks {0,2,4} form one comm, odd ranks {1,3,5} another.
            assert_eq!(sub.size(), 3);
            // Exchange ranks within the subgroup to prove isolation.
            let next = (sub.rank() + 1) % sub.size();
            let prev = (sub.rank() + sub.size() - 1) % sub.size();
            sub.send(next, 9, vec![comm.rank() as f64]);
            let v: Vec<f64> = sub.recv(prev, 9);
            v[0]
        });
        // rank 2's predecessor in the even group is rank 0, etc.
        assert_eq!(out.results[2], 0.0);
        assert_eq!(out.results[4], 2.0);
        assert_eq!(out.results[0], 4.0);
        assert_eq!(out.results[3], 1.0);
    }

    #[test]
    fn split_respects_key_ordering() {
        let out = Machine::new(4).run(|comm| {
            // Reverse the ordering via key.
            let mut comm = comm;
            let sub = comm.split(0, 100 - comm.rank());
            sub.rank()
        });
        assert_eq!(out.results, vec![3, 2, 1, 0]);
    }

    #[test]
    fn flops_are_charged() {
        let out = Machine::new(3).run(|comm| {
            comm.add_flops(10 * (comm.rank() as u64 + 1));
        });
        assert_eq!(out.cost.total_flops(), 60);
        assert_eq!(out.cost.max_flops(), 30);
    }

    #[test]
    fn phases_attribute_deltas_and_events() {
        let out = Machine::new(2).with_tracing().run(|comm| {
            let partner = 1 - comm.rank();
            {
                let _span = comm.phase("ring");
                comm.send(partner, 1, vec![1.0f64; 4]);
                let _: Vec<f64> = comm.recv(partner, 1);
            }
            assert_eq!(comm.current_phase(), None);
            comm.add_flops(50);
        });
        for r in 0..2 {
            let ring = out.cost.phase_cost(r, "ring").unwrap();
            assert_eq!(ring.words_sent, 4);
            assert_eq!(ring.words_recv, 4);
            assert_eq!(ring.flops, 0);
            let untagged = out.cost.phase_cost(r, UNTAGGED_PHASE).unwrap();
            assert_eq!(untagged.flops, 50);
            assert_eq!(untagged.words_sent, 0);
        }
        // Events carry the phase active when they were recorded.
        let traces = out.traces.unwrap();
        for t in &traces {
            assert!(t
                .iter()
                .all(|e| (e.kind == crate::trace::EventKind::Flops) == (e.phase.is_none())));
        }
        assert_eq!(out.cost.phase_max_words_sent("ring"), 4);
    }

    #[test]
    fn phases_survive_split() {
        let out = Machine::new(4).run(|comm| {
            let mut comm = comm;
            comm.push_phase("sub");
            let sub = comm.split((comm.rank() % 2) as u64, comm.rank());
            let partner = 1 - sub.rank();
            sub.send(partner, 5, vec![0.0f64; 3]);
            let _: Vec<f64> = sub.recv(partner, 5);
            comm.pop_phase();
        });
        for r in 0..4 {
            let c = out.cost.phase_cost(r, "sub").unwrap();
            assert_eq!(c.words_sent, 3);
        }
    }

    #[test]
    #[should_panic(expected = "pop_phase without a matching push_phase")]
    fn unbalanced_pop_panics() {
        Machine::new(1).run(|comm| comm.pop_phase());
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        Machine::new(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![1.0f64]);
            } else {
                let _: Vec<u64> = comm.recv(0, 0);
            }
        });
    }
}
