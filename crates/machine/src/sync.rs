//! Minimal synchronization primitives for the simulated machine.
//!
//! The workspace builds with no external crates, so the two pieces of
//! parking_lot/crossbeam the machine used are provided here on top of
//! `std`: a panic-transparent [`Mutex`] (lock-poisoning is ignored — a
//! panicking rank already poisons the whole run via the `poisoned` flag)
//! and an unbounded MPSC [`channel`] (std's `mpsc::Sender` is `Sync`
//! since Rust 1.72, which is all the fully connected fabric needs).

use std::sync::{self, MutexGuard};

/// A mutex whose `lock` never returns a poison error: if a thread
/// panicked while holding the lock, the data is handed out anyway. The
/// machine's cost ledgers and mailboxes stay consistent under panics
/// because every mutation is a single short critical section.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Unbounded MPSC channel used as the network fabric between ranks.
pub mod channel {
    pub use std::sync::mpsc::{channel as unbounded, Receiver, Sender};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn channel_delivers_in_order() {
        let (tx, rx) = channel::unbounded();
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(
            (0..4).map(|_| rx.recv().unwrap()).collect::<Vec<_>>(),
            [0, 1, 2, 3]
        );
    }
}
