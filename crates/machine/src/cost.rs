//! Cost accounting for the simulated machine.
//!
//! The paper (§3.2) uses the α-β-γ model: a message of `w` words costs
//! `α + β·w`, and each arithmetic operation costs `γ`. The quantity bounded
//! by Theorem 1 is the *bandwidth cost along the critical path*, i.e. the
//! maximum over processors of the number of words it sends (equivalently
//! receives, for the symmetric collectives used here).
//!
//! Every rank carries a [`RankCost`]: monotone counters for words/messages
//! sent and received and flops performed, plus a scalar *clock* that models
//! elapsed time under the α-β-γ model. The clock advances on every
//! communication event; on a receive it is joined (`max`) with the sender's
//! clock at send time, so the final per-rank clock is a valid critical-path
//! time for the run.

use std::fmt;

/// Parameters of the α-β-γ machine model.
///
/// * `alpha` — per-message latency cost,
/// * `beta`  — per-word bandwidth cost,
/// * `gamma` — per-flop arithmetic cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-message latency cost.
    pub alpha: f64,
    /// Per-word bandwidth cost.
    pub beta: f64,
    /// Per-flop arithmetic cost.
    pub gamma: f64,
}

impl CostModel {
    /// A model that only charges bandwidth (β = 1). Useful when comparing
    /// measured word counts against the paper's bandwidth lower bounds.
    pub fn bandwidth_only() -> Self {
        CostModel {
            alpha: 0.0,
            beta: 1.0,
            gamma: 0.0,
        }
    }

    /// A model with typical relative magnitudes (α ≫ β ≫ γ) for
    /// latency-vs-bandwidth trade-off experiments (§6 of the paper).
    pub fn typical() -> Self {
        CostModel {
            alpha: 1e-6,
            beta: 1e-9,
            gamma: 1e-12,
        }
    }

    /// Cost of a single message of `w` words under this model.
    pub fn message(&self, w: usize) -> f64 {
        self.alpha + self.beta * w as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::bandwidth_only()
    }
}

/// Monotone cost counters plus the α-β-γ clock for a single rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankCost {
    /// Number of point-to-point messages this rank sent.
    pub msgs_sent: u64,
    /// Number of point-to-point messages this rank received.
    pub msgs_recv: u64,
    /// Total words this rank sent.
    pub words_sent: u64,
    /// Total words this rank received.
    pub words_recv: u64,
    /// Total floating-point operations this rank performed.
    pub flops: u64,
    /// α-β-γ clock: a critical-path elapsed time for this rank.
    pub clock: f64,
    /// High-water mark of words simultaneously buffered by collectives on
    /// this rank (a proxy for the extra memory footprint of an algorithm).
    pub peak_buffer_words: u64,
}

impl RankCost {
    /// Record a send of one message with `w` words, advancing the clock.
    pub fn on_send(&mut self, w: usize, model: &CostModel) {
        self.msgs_sent += 1;
        self.words_sent += w as u64;
        self.clock += model.message(w);
    }

    /// Record a receive of one message with `w` words that the sender
    /// dispatched at time `sender_ready`.
    pub fn on_recv(&mut self, w: usize, sender_ready: f64, model: &CostModel) {
        self.msgs_recv += 1;
        self.words_recv += w as u64;
        self.clock = self.clock.max(sender_ready) + model.message(w);
    }

    /// Record a simultaneous exchange: `w_out` words sent while `w_in` words
    /// are received (bidirectional links, §3.2 — the step costs
    /// `α + β·max(w_out, w_in)`).
    pub fn on_exchange(
        &mut self,
        w_out: usize,
        w_in: usize,
        partner_ready: f64,
        model: &CostModel,
    ) {
        self.msgs_sent += 1;
        self.msgs_recv += 1;
        self.words_sent += w_out as u64;
        self.words_recv += w_in as u64;
        self.clock = self.clock.max(partner_ready) + model.message(w_out.max(w_in));
    }

    /// Record `n` floating-point operations.
    pub fn on_flops(&mut self, n: u64, model: &CostModel) {
        self.flops += n;
        self.clock += model.gamma * n as f64;
    }

    /// Record `w` words of transient buffer space in use.
    pub fn on_buffer(&mut self, w: usize) {
        self.peak_buffer_words = self.peak_buffer_words.max(w as u64);
    }
}

/// Aggregated cost report for a full run of the machine.
#[derive(Debug, Clone)]
pub struct CostReport {
    /// The model the run was charged under.
    pub model: CostModel,
    /// Per-rank cost rows, indexed by world rank.
    pub ranks: Vec<RankCost>,
}

impl CostReport {
    /// Number of ranks in the run.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Bandwidth cost along the critical path: `max_p words_sent(p)`.
    ///
    /// This is the quantity Theorem 1 lower-bounds (the paper counts the
    /// words a single processor must move; with symmetric collectives,
    /// sends and receives coincide to leading order).
    pub fn max_words_sent(&self) -> u64 {
        self.ranks.iter().map(|r| r.words_sent).max().unwrap_or(0)
    }

    /// `max_p words_recv(p)` — receive-side critical-path bandwidth cost.
    pub fn max_words_recv(&self) -> u64 {
        self.ranks.iter().map(|r| r.words_recv).max().unwrap_or(0)
    }

    /// `max_p (words_sent(p) + words_recv(p))` — total traffic at the
    /// busiest rank.
    pub fn max_words_total(&self) -> u64 {
        self.ranks
            .iter()
            .map(|r| r.words_sent + r.words_recv)
            .max()
            .unwrap_or(0)
    }

    /// Latency cost along the critical path: `max_p msgs_sent(p)`.
    pub fn max_messages(&self) -> u64 {
        self.ranks.iter().map(|r| r.msgs_sent).max().unwrap_or(0)
    }

    /// Total words moved over the whole network (each word counted once,
    /// on the send side).
    pub fn total_words(&self) -> u64 {
        self.ranks.iter().map(|r| r.words_sent).sum()
    }

    /// Total flops across all ranks.
    pub fn total_flops(&self) -> u64 {
        self.ranks.iter().map(|r| r.flops).sum()
    }

    /// Maximum flops on any one rank (the computational critical path).
    pub fn max_flops(&self) -> u64 {
        self.ranks.iter().map(|r| r.flops).max().unwrap_or(0)
    }

    /// Final α-β-γ clock: maximum over ranks.
    pub fn elapsed(&self) -> f64 {
        self.ranks.iter().map(|r| r.clock).fold(0.0, f64::max)
    }

    /// Computational load imbalance: `max_p flops(p) / (total / P)`, or 1.0
    /// when no flops were performed.
    pub fn flop_imbalance(&self) -> f64 {
        let total = self.total_flops();
        if total == 0 {
            return 1.0;
        }
        let avg = total as f64 / self.num_ranks() as f64;
        self.max_flops() as f64 / avg
    }

    /// Largest transient collective buffer across ranks, in words.
    pub fn max_peak_buffer(&self) -> u64 {
        self.ranks
            .iter()
            .map(|r| r.peak_buffer_words)
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "CostReport: P={} max_words_sent={} max_msgs={} total_flops={} imbalance={:.3} elapsed={:.3e}",
            self.num_ranks(),
            self.max_words_sent(),
            self.max_messages(),
            self.total_flops(),
            self.flop_imbalance(),
            self.elapsed(),
        )?;
        for (p, r) in self.ranks.iter().enumerate() {
            writeln!(
                f,
                "  rank {p:>3}: sent {:>10} w / {:>6} msg, recv {:>10} w / {:>6} msg, flops {:>12}, clock {:.3e}",
                r.words_sent, r.msgs_sent, r.words_recv, r.msgs_recv, r.flops, r.clock
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_cost_combines_alpha_beta() {
        let m = CostModel {
            alpha: 2.0,
            beta: 0.5,
            gamma: 0.0,
        };
        assert_eq!(m.message(10), 2.0 + 5.0);
        assert_eq!(m.message(0), 2.0);
    }

    #[test]
    fn send_recv_update_counters_and_clock() {
        let m = CostModel {
            alpha: 1.0,
            beta: 1.0,
            gamma: 0.0,
        };
        let mut c = RankCost::default();
        c.on_send(4, &m);
        assert_eq!(c.msgs_sent, 1);
        assert_eq!(c.words_sent, 4);
        assert_eq!(c.clock, 5.0);
        c.on_recv(2, 10.0, &m);
        assert_eq!(c.words_recv, 2);
        // clock jumps to the sender's ready time, then pays α + β·w.
        assert_eq!(c.clock, 10.0 + 3.0);
    }

    #[test]
    fn exchange_charges_max_direction() {
        let m = CostModel {
            alpha: 1.0,
            beta: 1.0,
            gamma: 0.0,
        };
        let mut c = RankCost::default();
        c.on_exchange(3, 7, 0.0, &m);
        assert_eq!(c.words_sent, 3);
        assert_eq!(c.words_recv, 7);
        assert_eq!(c.clock, 1.0 + 7.0);
    }

    #[test]
    fn flops_advance_clock_by_gamma() {
        let m = CostModel {
            alpha: 0.0,
            beta: 0.0,
            gamma: 2.0,
        };
        let mut c = RankCost::default();
        c.on_flops(5, &m);
        assert_eq!(c.flops, 5);
        assert_eq!(c.clock, 10.0);
    }

    #[test]
    fn report_aggregates() {
        let model = CostModel::bandwidth_only();
        let mut a = RankCost::default();
        let mut b = RankCost::default();
        a.on_send(10, &model);
        b.on_send(4, &model);
        b.on_flops(100, &model);
        let rep = CostReport {
            model,
            ranks: vec![a, b],
        };
        assert_eq!(rep.max_words_sent(), 10);
        assert_eq!(rep.total_words(), 14);
        assert_eq!(rep.total_flops(), 100);
        assert_eq!(rep.max_flops(), 100);
        // one rank does all flops of two ranks: imbalance = 2.
        assert!((rep.flop_imbalance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_safe() {
        let rep = CostReport {
            model: CostModel::default(),
            ranks: vec![],
        };
        assert_eq!(rep.max_words_sent(), 0);
        assert_eq!(rep.elapsed(), 0.0);
        assert_eq!(rep.flop_imbalance(), 1.0);
    }

    #[test]
    fn peak_buffer_tracks_high_water_mark() {
        let mut c = RankCost::default();
        c.on_buffer(10);
        c.on_buffer(3);
        assert_eq!(c.peak_buffer_words, 10);
        c.on_buffer(20);
        assert_eq!(c.peak_buffer_words, 20);
    }
}
