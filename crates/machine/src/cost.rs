//! Cost accounting for the simulated machine.
//!
//! The paper (§3.2) uses the α-β-γ model: a message of `w` words costs
//! `α + β·w`, and each arithmetic operation costs `γ`. The quantity bounded
//! by Theorem 1 is the *bandwidth cost along the critical path*, i.e. the
//! maximum over processors of the number of words it sends (equivalently
//! receives, for the symmetric collectives used here).
//!
//! Every rank carries a [`RankCost`]: monotone counters for words/messages
//! sent and received and flops performed, plus a scalar *clock* that models
//! elapsed time under the α-β-γ model. The clock advances on every
//! communication event; on a receive it is joined (`max`) with the sender's
//! clock at send time, so the final per-rank clock is a valid critical-path
//! time for the run.
//!
//! On top of the machine-wide totals, every rank keeps a **per-phase
//! breakdown**: algorithms name their phases through the span API on
//! [`Comm`](crate::Comm) (`push_phase` / `phase`), and every cost delta is
//! attributed to the innermost active phase (or [`UNTAGGED_PHASE`] when
//! none is active). Theorem 1's bounds decompose into per-array, per-phase
//! terms — e.g. the 2D algorithm's `n1·n2/√P` allgather-of-A term vs. the
//! 1D algorithm's `n1(n1−1)/2` output-reduction term — and the breakdown
//! (surfaced by [`CostReport::phase_table`]) is what lets a measured run
//! be compared against those terms one by one.

use std::fmt;

/// Parameters of the α-β-γ machine model.
///
/// * `alpha` — per-message latency cost,
/// * `beta`  — per-word bandwidth cost,
/// * `gamma` — per-flop arithmetic cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-message latency cost.
    pub alpha: f64,
    /// Per-word bandwidth cost.
    pub beta: f64,
    /// Per-flop arithmetic cost.
    pub gamma: f64,
}

impl CostModel {
    /// A model that only charges bandwidth (β = 1). Useful when comparing
    /// measured word counts against the paper's bandwidth lower bounds.
    pub fn bandwidth_only() -> Self {
        CostModel {
            alpha: 0.0,
            beta: 1.0,
            gamma: 0.0,
        }
    }

    /// A model with typical relative magnitudes (α ≫ β ≫ γ) for
    /// latency-vs-bandwidth trade-off experiments (§6 of the paper).
    pub fn typical() -> Self {
        CostModel {
            alpha: 1e-6,
            beta: 1e-9,
            gamma: 1e-12,
        }
    }

    /// Cost of a single message of `w` words under this model.
    pub fn message(&self, w: usize) -> f64 {
        self.alpha + self.beta * w as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::bandwidth_only()
    }
}

/// Monotone cost counters plus the α-β-γ clock for a single rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankCost {
    /// Number of point-to-point messages this rank sent.
    pub msgs_sent: u64,
    /// Number of point-to-point messages this rank received.
    pub msgs_recv: u64,
    /// Total words this rank sent.
    pub words_sent: u64,
    /// Total words this rank received.
    pub words_recv: u64,
    /// Total floating-point operations this rank performed.
    pub flops: u64,
    /// α-β-γ clock: a critical-path elapsed time for this rank.
    pub clock: f64,
    /// High-water mark of words simultaneously buffered by collectives on
    /// this rank (a proxy for the extra memory footprint of an algorithm).
    pub peak_buffer_words: u64,
}

impl RankCost {
    /// Record a send of one message with `w` words, advancing the clock.
    pub fn on_send(&mut self, w: usize, model: &CostModel) {
        self.msgs_sent += 1;
        self.words_sent += w as u64;
        self.clock += model.message(w);
    }

    /// Record a receive of one message with `w` words that the sender
    /// dispatched at time `sender_ready`.
    pub fn on_recv(&mut self, w: usize, sender_ready: f64, model: &CostModel) {
        self.msgs_recv += 1;
        self.words_recv += w as u64;
        self.clock = self.clock.max(sender_ready) + model.message(w);
    }

    /// Record a simultaneous exchange: `w_out` words sent while `w_in` words
    /// are received (bidirectional links, §3.2 — the step costs
    /// `α + β·max(w_out, w_in)`).
    pub fn on_exchange(
        &mut self,
        w_out: usize,
        w_in: usize,
        partner_ready: f64,
        model: &CostModel,
    ) {
        self.msgs_sent += 1;
        self.msgs_recv += 1;
        self.words_sent += w_out as u64;
        self.words_recv += w_in as u64;
        self.clock = self.clock.max(partner_ready) + model.message(w_out.max(w_in));
    }

    /// Record `n` floating-point operations.
    pub fn on_flops(&mut self, n: u64, model: &CostModel) {
        self.flops += n;
        self.clock += model.gamma * n as f64;
    }

    /// Record `w` words of transient buffer space in use.
    pub fn on_buffer(&mut self, w: usize) {
        self.peak_buffer_words = self.peak_buffer_words.max(w as u64);
    }

    /// Fold another rank's counters into this one: monotone counters and
    /// the clock add (the other run happened sequentially on the same
    /// rank), peak buffer takes the high-water mark.
    pub fn absorb(&mut self, other: &RankCost) {
        self.msgs_sent += other.msgs_sent;
        self.msgs_recv += other.msgs_recv;
        self.words_sent += other.words_sent;
        self.words_recv += other.words_recv;
        self.flops += other.flops;
        self.clock += other.clock;
        self.peak_buffer_words = self.peak_buffer_words.max(other.peak_buffer_words);
    }

    /// The clock as a totally ordered integer sort key: `f64::to_bits`
    /// preserves ordering for the non-negative finite clocks the cost
    /// model produces. The event engine's ready heap is keyed on this.
    pub(crate) fn clock_key(&self) -> u64 {
        self.clock.to_bits()
    }
}

/// Name under which cost deltas are recorded while no phase is active.
pub const UNTAGGED_PHASE: &str = "(untagged)";

/// One named phase's accumulated costs on one rank.
///
/// `cost.clock` holds the model-time *spent inside* the phase (a duration,
/// not an absolute timestamp); `cost.peak_buffer_words` is the largest
/// buffer noted while the phase was innermost-active. All other fields are
/// plain counter deltas, so summing a rank's phases reproduces its totals.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseCost {
    /// Phase name (the static string passed to `Comm::push_phase`), or
    /// [`UNTAGGED_PHASE`].
    pub name: &'static str,
    /// Counters accumulated while this phase was the innermost span.
    pub cost: RankCost,
}

/// Per-rank cost ledger: machine-wide totals plus the phase stack and the
/// per-phase breakdown. One ledger per *world* rank, shared by every
/// sub-communicator of that rank, so spans survive `Comm::split`.
#[derive(Debug, Default)]
pub(crate) struct RankLedger {
    pub(crate) total: RankCost,
    stack: Vec<&'static str>,
    phases: Vec<PhaseCost>,
}

impl RankLedger {
    /// The innermost active phase, if any.
    pub(crate) fn active_phase(&self) -> Option<&'static str> {
        self.stack.last().copied()
    }

    /// Whether no phase is active (used by collectives to self-report).
    pub(crate) fn is_idle(&self) -> bool {
        self.stack.is_empty()
    }

    pub(crate) fn push(&mut self, name: &'static str) {
        self.stack.push(name);
    }

    pub(crate) fn pop(&mut self) {
        self.stack
            .pop()
            .expect("pop_phase without a matching push_phase");
    }

    fn entry(&mut self, name: &'static str) -> &mut RankCost {
        if let Some(pos) = self.phases.iter().position(|p| p.name == name) {
            return &mut self.phases[pos].cost;
        }
        self.phases.push(PhaseCost {
            name,
            cost: RankCost::default(),
        });
        &mut self.phases.last_mut().unwrap().cost
    }

    /// Apply a cost mutation to the totals and attribute the delta to the
    /// innermost active phase (or [`UNTAGGED_PHASE`]). Pure reads (no
    /// counter or clock change) leave the breakdown untouched.
    pub(crate) fn apply<R>(
        &mut self,
        model: &CostModel,
        f: impl FnOnce(&mut RankCost, &CostModel) -> R,
    ) -> R {
        let before = self.total.clone();
        let r = f(&mut self.total, model);
        let t = self.total.clone();
        let d_clock = t.clock - before.clock;
        let peak_up = t.peak_buffer_words > before.peak_buffer_words;
        if t.msgs_sent != before.msgs_sent
            || t.msgs_recv != before.msgs_recv
            || t.words_sent != before.words_sent
            || t.words_recv != before.words_recv
            || t.flops != before.flops
            || d_clock != 0.0
            || peak_up
        {
            let name = self.active_phase().unwrap_or(UNTAGGED_PHASE);
            let e = self.entry(name);
            e.msgs_sent += t.msgs_sent - before.msgs_sent;
            e.msgs_recv += t.msgs_recv - before.msgs_recv;
            e.words_sent += t.words_sent - before.words_sent;
            e.words_recv += t.words_recv - before.words_recv;
            e.flops += t.flops - before.flops;
            e.clock += d_clock;
            if peak_up {
                e.peak_buffer_words = e.peak_buffer_words.max(t.peak_buffer_words);
            }
        }
        r
    }

    /// Record a buffer high-water probe both globally and in the active
    /// phase (phases record the largest buffer noted *while active*, even
    /// when the global high-water mark does not move).
    pub(crate) fn note_buffer(&mut self, w: usize) {
        self.total.on_buffer(w);
        let name = self.active_phase().unwrap_or(UNTAGGED_PHASE);
        self.entry(name).on_buffer(w);
    }

    pub(crate) fn into_parts(self) -> (RankCost, Vec<PhaseCost>) {
        (self.total, self.phases)
    }
}

/// Aggregated cost report for a full run of the machine.
#[derive(Debug, Clone)]
pub struct CostReport {
    /// The model the run was charged under.
    pub model: CostModel,
    /// Per-rank cost rows, indexed by world rank.
    pub ranks: Vec<RankCost>,
    /// Per-rank, per-phase breakdown (phases in first-use order per rank).
    /// For every rank the field-wise sum of its phases equals its entry in
    /// `ranks` (exactly for the integer counters; up to rounding for the
    /// clock).
    pub phases: Vec<Vec<PhaseCost>>,
}

impl CostReport {
    /// Build a report with every rank's whole cost attributed to the
    /// untagged phase (useful for tests and synthetic reports).
    pub fn untagged(model: CostModel, ranks: Vec<RankCost>) -> Self {
        let phases = ranks
            .iter()
            .map(|r| {
                vec![PhaseCost {
                    name: UNTAGGED_PHASE,
                    cost: r.clone(),
                }]
            })
            .collect();
        CostReport {
            model,
            ranks,
            phases,
        }
    }

    /// Number of ranks in the run.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Bandwidth cost along the critical path: `max_p words_sent(p)`.
    ///
    /// This is the quantity Theorem 1 lower-bounds (the paper counts the
    /// words a single processor must move; with symmetric collectives,
    /// sends and receives coincide to leading order).
    pub fn max_words_sent(&self) -> u64 {
        self.ranks.iter().map(|r| r.words_sent).max().unwrap_or(0)
    }

    /// `max_p words_recv(p)` — receive-side critical-path bandwidth cost.
    pub fn max_words_recv(&self) -> u64 {
        self.ranks.iter().map(|r| r.words_recv).max().unwrap_or(0)
    }

    /// `max_p (words_sent(p) + words_recv(p))` — total traffic at the
    /// busiest rank.
    pub fn max_words_total(&self) -> u64 {
        self.ranks
            .iter()
            .map(|r| r.words_sent + r.words_recv)
            .max()
            .unwrap_or(0)
    }

    /// Latency cost along the critical path: `max_p msgs_sent(p)`.
    pub fn max_messages(&self) -> u64 {
        self.ranks.iter().map(|r| r.msgs_sent).max().unwrap_or(0)
    }

    /// Total words moved over the whole network (each word counted once,
    /// on the send side).
    pub fn total_words(&self) -> u64 {
        self.ranks.iter().map(|r| r.words_sent).sum()
    }

    /// Total flops across all ranks.
    pub fn total_flops(&self) -> u64 {
        self.ranks.iter().map(|r| r.flops).sum()
    }

    /// Maximum flops on any one rank (the computational critical path).
    pub fn max_flops(&self) -> u64 {
        self.ranks.iter().map(|r| r.flops).max().unwrap_or(0)
    }

    /// Final α-β-γ clock: maximum over ranks.
    pub fn elapsed(&self) -> f64 {
        self.ranks.iter().map(|r| r.clock).fold(0.0, f64::max)
    }

    /// Computational load imbalance: `max_p flops(p) / (total / P)`, or 1.0
    /// when no flops were performed.
    pub fn flop_imbalance(&self) -> f64 {
        let total = self.total_flops();
        if total == 0 {
            return 1.0;
        }
        let avg = total as f64 / self.num_ranks() as f64;
        self.max_flops() as f64 / avg
    }

    /// Largest transient collective buffer across ranks, in words.
    pub fn max_peak_buffer(&self) -> u64 {
        self.ranks
            .iter()
            .map(|r| r.peak_buffer_words)
            .max()
            .unwrap_or(0)
    }

    /// All phase names seen in the run, in first-use order (rank 0's
    /// phases first, then any additional names from later ranks).
    pub fn phase_names(&self) -> Vec<&'static str> {
        let mut names = Vec::new();
        for rank in &self.phases {
            for p in rank {
                if !names.contains(&p.name) {
                    names.push(p.name);
                }
            }
        }
        names
    }

    /// The accumulated cost of phase `name` on `rank`, if that rank ever
    /// charged anything under it.
    pub fn phase_cost(&self, rank: usize, name: &str) -> Option<&RankCost> {
        self.phases
            .get(rank)?
            .iter()
            .find(|p| p.name == name)
            .map(|p| &p.cost)
    }

    /// Fold another report over the *same number of ranks* into this one
    /// (panics otherwise): rank counters and clocks add, peak buffers
    /// take the max, and phases merge by name — so summing a rank's
    /// phases still reconstructs its totals exactly. Recovery drivers
    /// use this to prepend a recovery prologue's `recover:*` charges to
    /// the successful re-execution's report.
    pub fn absorb(&mut self, other: &CostReport) {
        assert_eq!(
            self.ranks.len(),
            other.ranks.len(),
            "absorb: reports cover different rank counts"
        );
        for (mine, theirs) in self.ranks.iter_mut().zip(&other.ranks) {
            mine.absorb(theirs);
        }
        for (mine, theirs) in self.phases.iter_mut().zip(&other.phases) {
            for pc in theirs {
                match mine.iter_mut().find(|p| p.name == pc.name) {
                    Some(slot) => slot.cost.absorb(&pc.cost),
                    None => mine.push(pc.clone()),
                }
            }
        }
    }

    /// `max_p words_sent(p)` restricted to one phase — the per-term analog
    /// of [`CostReport::max_words_sent`] used by the bound attribution.
    pub fn phase_max_words_sent(&self, name: &str) -> u64 {
        self.phases
            .iter()
            .flat_map(|rank| rank.iter().filter(|p| p.name == name))
            .map(|p| p.cost.words_sent)
            .max()
            .unwrap_or(0)
    }

    /// Aggregate the per-rank breakdown into one row per phase.
    pub fn phase_table(&self) -> PhaseTable {
        let p = self.num_ranks().max(1);
        let rows = self
            .phase_names()
            .into_iter()
            .map(|name| {
                let per_rank: Vec<&RankCost> = (0..self.num_ranks())
                    .filter_map(|r| self.phase_cost(r, name))
                    .collect();
                let max_words_sent = per_rank.iter().map(|c| c.words_sent).max().unwrap_or(0);
                let total_words: u64 = per_rank.iter().map(|c| c.words_sent).sum();
                let words_imbalance = if total_words == 0 {
                    1.0
                } else {
                    max_words_sent as f64 / (total_words as f64 / p as f64)
                };
                PhaseRow {
                    name,
                    max_words_sent,
                    total_words,
                    max_msgs: per_rank.iter().map(|c| c.msgs_sent).max().unwrap_or(0),
                    total_flops: per_rank.iter().map(|c| c.flops).sum(),
                    max_flops: per_rank.iter().map(|c| c.flops).max().unwrap_or(0),
                    max_clock: per_rank.iter().map(|c| c.clock).fold(0.0, f64::max),
                    words_imbalance,
                }
            })
            .collect();
        PhaseTable { rows }
    }
}

/// One aggregated row of a [`PhaseTable`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    /// Phase name.
    pub name: &'static str,
    /// `max_p words_sent(p)` within this phase — the quantity compared
    /// against the phase's analytic bound term.
    pub max_words_sent: u64,
    /// Total words sent by all ranks within this phase.
    pub total_words: u64,
    /// `max_p msgs_sent(p)` within this phase.
    pub max_msgs: u64,
    /// Total flops across ranks within this phase.
    pub total_flops: u64,
    /// `max_p flops(p)` within this phase.
    pub max_flops: u64,
    /// Largest model-time any rank spent inside this phase.
    pub max_clock: f64,
    /// `max_p words_sent(p) / (total_words / P)`; 1.0 when no words moved.
    pub words_imbalance: f64,
}

/// A per-phase cost breakdown aggregated over ranks, one row per phase in
/// first-use order. Renders as an aligned text table via `Display`.
#[derive(Debug, Clone)]
pub struct PhaseTable {
    /// One aggregated row per phase.
    pub rows: Vec<PhaseRow>,
}

impl PhaseTable {
    /// The row for phase `name`, if present.
    pub fn row(&self, name: &str) -> Option<&PhaseRow> {
        self.rows.iter().find(|r| r.name == name)
    }
}

impl fmt::Display for PhaseTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "  {:<20} {:>12} {:>12} {:>8} {:>14} {:>10} {:>9}",
            "phase", "max words", "tot words", "max msg", "tot flops", "max clock", "imbal"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<20} {:>12} {:>12} {:>8} {:>14} {:>10.3e} {:>9.3}",
                r.name,
                r.max_words_sent,
                r.total_words,
                r.max_msgs,
                r.total_flops,
                r.max_clock,
                r.words_imbalance,
            )?;
        }
        Ok(())
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "CostReport: P={} max_words_sent={} max_msgs={} total_flops={} imbalance={:.3} max_peak_buffer={} elapsed={:.3e}",
            self.num_ranks(),
            self.max_words_sent(),
            self.max_messages(),
            self.total_flops(),
            self.flop_imbalance(),
            self.max_peak_buffer(),
            self.elapsed(),
        )?;
        for (p, r) in self.ranks.iter().enumerate() {
            writeln!(
                f,
                "  rank {p:>3}: sent {:>10} w / {:>6} msg, recv {:>10} w / {:>6} msg, flops {:>12}, peak {:>8} w, clock {:.3e}",
                r.words_sent, r.msgs_sent, r.words_recv, r.msgs_recv, r.flops, r.peak_buffer_words, r.clock
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_cost_combines_alpha_beta() {
        let m = CostModel {
            alpha: 2.0,
            beta: 0.5,
            gamma: 0.0,
        };
        assert_eq!(m.message(10), 2.0 + 5.0);
        assert_eq!(m.message(0), 2.0);
    }

    #[test]
    fn send_recv_update_counters_and_clock() {
        let m = CostModel {
            alpha: 1.0,
            beta: 1.0,
            gamma: 0.0,
        };
        let mut c = RankCost::default();
        c.on_send(4, &m);
        assert_eq!(c.msgs_sent, 1);
        assert_eq!(c.words_sent, 4);
        assert_eq!(c.clock, 5.0);
        c.on_recv(2, 10.0, &m);
        assert_eq!(c.words_recv, 2);
        // clock jumps to the sender's ready time, then pays α + β·w.
        assert_eq!(c.clock, 10.0 + 3.0);
    }

    #[test]
    fn exchange_charges_max_direction() {
        let m = CostModel {
            alpha: 1.0,
            beta: 1.0,
            gamma: 0.0,
        };
        let mut c = RankCost::default();
        c.on_exchange(3, 7, 0.0, &m);
        assert_eq!(c.words_sent, 3);
        assert_eq!(c.words_recv, 7);
        assert_eq!(c.clock, 1.0 + 7.0);
    }

    #[test]
    fn flops_advance_clock_by_gamma() {
        let m = CostModel {
            alpha: 0.0,
            beta: 0.0,
            gamma: 2.0,
        };
        let mut c = RankCost::default();
        c.on_flops(5, &m);
        assert_eq!(c.flops, 5);
        assert_eq!(c.clock, 10.0);
    }

    #[test]
    fn report_aggregates() {
        let model = CostModel::bandwidth_only();
        let mut a = RankCost::default();
        let mut b = RankCost::default();
        a.on_send(10, &model);
        b.on_send(4, &model);
        b.on_flops(100, &model);
        let rep = CostReport::untagged(model, vec![a, b]);
        assert_eq!(rep.max_words_sent(), 10);
        assert_eq!(rep.total_words(), 14);
        assert_eq!(rep.total_flops(), 100);
        assert_eq!(rep.max_flops(), 100);
        // one rank does all flops of two ranks: imbalance = 2.
        assert!((rep.flop_imbalance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_safe() {
        let rep = CostReport::untagged(CostModel::default(), vec![]);
        assert_eq!(rep.max_words_sent(), 0);
        assert_eq!(rep.elapsed(), 0.0);
        assert_eq!(rep.flop_imbalance(), 1.0);
        assert!(rep.phase_names().is_empty());
        assert!(rep.phase_table().rows.is_empty());
    }

    #[test]
    fn peak_buffer_tracks_high_water_mark() {
        let mut c = RankCost::default();
        c.on_buffer(10);
        c.on_buffer(3);
        assert_eq!(c.peak_buffer_words, 10);
        c.on_buffer(20);
        assert_eq!(c.peak_buffer_words, 20);
    }

    #[test]
    fn ledger_attributes_to_innermost_phase() {
        let model = CostModel::bandwidth_only();
        let mut l = RankLedger::default();
        l.apply(&model, |c, m| c.on_send(5, m)); // untagged
        l.push("outer");
        l.apply(&model, |c, m| c.on_send(10, m));
        l.push("inner");
        l.apply(&model, |c, m| c.on_flops(7, m));
        l.pop();
        l.apply(&model, |c, m| c.on_send(1, m)); // outer again
        l.pop();
        let (total, phases) = l.into_parts();
        assert_eq!(total.words_sent, 16);
        assert_eq!(total.flops, 7);
        let by_name: Vec<(&str, u64, u64)> = phases
            .iter()
            .map(|p| (p.name, p.cost.words_sent, p.cost.flops))
            .collect();
        assert_eq!(
            by_name,
            vec![(UNTAGGED_PHASE, 5, 0), ("outer", 11, 0), ("inner", 0, 7),]
        );
        // Phase sums reproduce the totals.
        let sum_words: u64 = phases.iter().map(|p| p.cost.words_sent).sum();
        assert_eq!(sum_words, total.words_sent);
    }

    #[test]
    fn ledger_ignores_pure_reads() {
        let model = CostModel::bandwidth_only();
        let mut l = RankLedger::default();
        let clock = l.apply(&model, |c, _| c.clock);
        assert_eq!(clock, 0.0);
        let (_, phases) = l.into_parts();
        assert!(phases.is_empty(), "a read must not open a phase entry");
    }

    #[test]
    fn ledger_notes_buffer_per_phase() {
        let mut l = RankLedger::default();
        l.note_buffer(100);
        l.push("a");
        // Smaller than the global high-water mark, but the phase still
        // records its own largest probe.
        l.note_buffer(40);
        l.pop();
        let (total, phases) = l.into_parts();
        assert_eq!(total.peak_buffer_words, 100);
        assert_eq!(phases[0].name, UNTAGGED_PHASE);
        assert_eq!(phases[0].cost.peak_buffer_words, 100);
        assert_eq!(phases[1].name, "a");
        assert_eq!(phases[1].cost.peak_buffer_words, 40);
    }

    #[test]
    fn phase_table_aggregates_across_ranks() {
        let model = CostModel::bandwidth_only();
        let mk = |w: u64, f: u64| RankCost {
            words_sent: w,
            flops: f,
            ..Default::default()
        };
        let rep = CostReport {
            model,
            ranks: vec![mk(30, 10), mk(10, 10)],
            phases: vec![
                vec![
                    PhaseCost {
                        name: "comm",
                        cost: mk(30, 0),
                    },
                    PhaseCost {
                        name: "compute",
                        cost: mk(0, 10),
                    },
                ],
                vec![
                    PhaseCost {
                        name: "comm",
                        cost: mk(10, 0),
                    },
                    PhaseCost {
                        name: "compute",
                        cost: mk(0, 10),
                    },
                ],
            ],
        };
        assert_eq!(rep.phase_names(), vec!["comm", "compute"]);
        assert_eq!(rep.phase_max_words_sent("comm"), 30);
        let table = rep.phase_table();
        let comm = table.row("comm").unwrap();
        assert_eq!(comm.max_words_sent, 30);
        assert_eq!(comm.total_words, 40);
        assert!((comm.words_imbalance - 1.5).abs() < 1e-12);
        let compute = table.row("compute").unwrap();
        assert_eq!(compute.total_flops, 20);
        assert_eq!(compute.words_imbalance, 1.0);
        // Table renders without panicking and mentions every phase.
        let text = table.to_string();
        assert!(text.contains("comm") && text.contains("compute"));
    }

    #[test]
    fn display_includes_peak_buffer() {
        let model = CostModel::bandwidth_only();
        let mut a = RankCost::default();
        a.on_buffer(123);
        let rep = CostReport::untagged(model, vec![a]);
        let text = rep.to_string();
        assert!(text.contains("max_peak_buffer=123"), "{text}");
        assert!(text.contains("peak      123 w"), "{text}");
    }
}
