//! The SPMD runner: executes the user closure on every simulated rank and
//! collects results plus the cost report.
//!
//! Two interchangeable engines sit behind [`Machine::run`]/[`Machine::try_run`]:
//!
//! * **Threaded** — one OS thread per rank over an mpsc fabric. Simple and
//!   truly concurrent, but capped at tens-to-hundreds of ranks by thread
//!   cost, and its deadlock detection is a grace-window watchdog.
//! * **Event** — every rank is a stackful coroutine (see [`crate::context`])
//!   advanced by a single-threaded discrete-event loop in deterministic
//!   α-β-γ clock order (see [`crate::engine`]). 10⁴–10⁵-rank runs fit in
//!   one process, and deadlock detection is exact: an empty ready queue
//!   with live ranks *is* the deadlock.
//!
//! Selection, highest precedence first: [`Machine::with_engine`], the
//! in-process [`force_engine`] override, the `SYRK_MACHINE_ENGINE`
//! environment variable (`threaded` | `event`), then the default — the
//! event engine wherever its context switch is implemented (x86_64,
//! aarch64), threaded elsewhere. Both engines produce bitwise-identical
//! results, costs, phase tables, and traces for the same configuration
//! (asserted by `tests/engine_equivalence.rs`).

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crate::sync::{channel::unbounded, Mutex};

use crate::comm::{Comm, World};
use crate::context::Coroutine;
use crate::cost::{CostModel, CostReport, RankLedger};
use crate::engine::EventState;
use crate::error::MachineError;
use crate::fault::FaultPlan;

/// Which runner executes the simulated ranks. See the module docs for
/// the trade-offs; results are identical on both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// One OS thread per rank (the legacy runner).
    Threaded,
    /// Cooperatively scheduled coroutines on a discrete-event loop.
    Event,
}

impl EngineKind {
    /// Lower-case name, matching the `SYRK_MACHINE_ENGINE` values.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Threaded => "threaded",
            EngineKind::Event => "event",
        }
    }
}

/// In-process engine override: 0 = unset, 1 = threaded, 2 = event.
/// Process-wide like the ISA and thread-budget overrides, because
/// algorithms construct machines internally where no builder is
/// reachable.
static ENGINE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// RAII guard restoring the previous in-process engine override on drop.
#[must_use = "the engine override is restored when the guard drops"]
#[derive(Debug)]
pub struct ForcedEngineGuard {
    prev: u8,
}

impl Drop for ForcedEngineGuard {
    fn drop(&mut self) {
        ENGINE_OVERRIDE.store(self.prev, Ordering::Relaxed);
    }
}

/// Pin every machine constructed until the guard drops to `kind` — the
/// in-process analogue of `SYRK_MACHINE_ENGINE`, used by the differential
/// engine tests (algorithms build their machines internally, so an env
/// variable cached per process could not switch engines between tests).
/// An explicit [`Machine::with_engine`] still wins. Process-wide and
/// last-writer-wins under concurrent guards; both engines compute
/// identical results, so the override affects scale and scheduling,
/// never correctness.
pub fn force_engine(kind: EngineKind) -> ForcedEngineGuard {
    if kind == EngineKind::Event {
        // Runtime guard, not a compile-time one: unsupported targets
        // must still build and run the threaded engine.
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(
                crate::context::SUPPORTED,
                "force_engine: the event engine is not supported on this target"
            );
        }
    }
    let code = match kind {
        EngineKind::Threaded => 1,
        EngineKind::Event => 2,
    };
    let prev = ENGINE_OVERRIDE.swap(code, Ordering::Relaxed);
    ForcedEngineGuard { prev }
}

/// `SYRK_MACHINE_ENGINE`, parsed once per process. Invalid values are a
/// hard error — a typo silently falling back to the default engine would
/// publish benchmark numbers for the wrong runner.
fn env_engine() -> Option<EngineKind> {
    static ENV_ENGINE: OnceLock<Option<EngineKind>> = OnceLock::new();
    *ENV_ENGINE.get_or_init(|| {
        let value = std::env::var("SYRK_MACHINE_ENGINE").ok()?;
        let kind = match value.as_str() {
            "threaded" => EngineKind::Threaded,
            "event" => EngineKind::Event,
            _ => panic!(
                "SYRK_MACHINE_ENGINE: unknown engine {value:?} \
                 (valid values: threaded, event)"
            ),
        };
        if kind == EngineKind::Event {
            #[allow(clippy::assertions_on_constants)]
            {
                assert!(
                    crate::context::SUPPORTED,
                    "SYRK_MACHINE_ENGINE=event: the event engine is not supported on this target"
                );
            }
        }
        Some(kind)
    })
}

/// `SYRK_MACHINE_STACK_KB`, parsed once per process: per-rank coroutine
/// stack size for the event engine, in KiB.
fn env_stack_kb() -> Option<usize> {
    static ENV_STACK: OnceLock<Option<usize>> = OnceLock::new();
    *ENV_STACK.get_or_init(|| {
        let value = std::env::var("SYRK_MACHINE_STACK_KB").ok()?;
        match value.parse::<usize>() {
            Ok(kb) if kb >= 16 => Some(kb),
            _ => panic!("SYRK_MACHINE_STACK_KB: expected an integer >= 16 (KiB), got {value:?}"),
        }
    })
}

/// Output of one machine run: the per-rank results of the SPMD closure and
/// the aggregated communication/computation cost report.
#[derive(Debug)]
pub struct RunOutput<R> {
    /// Closure results, indexed by world rank.
    pub results: Vec<R>,
    /// Cost accounting for the whole run.
    pub cost: CostReport,
    /// Per-rank event timelines, present when tracing was enabled.
    pub traces: Option<Vec<crate::trace::Timeline>>,
}

/// A simulated distributed-memory machine with `P` processors, a fully
/// connected network with bidirectional links, and α-β-γ cost accounting
/// (§3.2 of the paper).
///
/// ```
/// use syrk_machine::{Machine, CostModel};
///
/// let out = Machine::new(4).run(|comm| {
///     // Each rank contributes its rank; ranks all-reduce the sum.
///     let mine = vec![comm.rank() as f64];
///     let total = comm.all_reduce(&mine);
///     total[0]
/// });
/// assert!(out.results.iter().all(|&r| r == 6.0));
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    size: usize,
    model: CostModel,
    timeout: Duration,
    watchdog: Duration,
    faults: Option<FaultPlan>,
    tracing: bool,
    failure_dump: Option<PathBuf>,
    engine: Option<EngineKind>,
    rank_stack_kb: Option<usize>,
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Erase the borrow lifetimes of a coroutine body so it can be stored in
/// a [`Coroutine`].
///
/// # Safety
///
/// Sound only because `try_run_event` drives every coroutine to
/// completion (the engine's exit invariant, upheld even under failures
/// via the abort wake-all) and drops the coroutine vector before the
/// borrowed locals — the closure can neither run nor be dropped after
/// its borrows end.
unsafe fn erase_lifetime<'a>(b: Box<dyn FnOnce() + 'a>) -> Box<dyn FnOnce() + 'static> {
    unsafe { std::mem::transmute(b) }
}

impl Machine {
    /// A machine with `size` processors and bandwidth-only cost accounting
    /// (α = γ = 0, β = 1), so that clocks directly report word counts.
    pub fn new(size: usize) -> Self {
        assert!(size >= 1, "a machine needs at least one processor");
        Machine {
            size,
            model: CostModel::bandwidth_only(),
            timeout: Duration::from_secs(120),
            watchdog: Duration::from_secs(2),
            faults: None,
            tracing: false,
            failure_dump: None,
            engine: None,
            rank_stack_kb: None,
        }
    }

    /// Write a post-mortem artifact to `path` if the run fails: the
    /// error, the wait-for graph (for deadlocks), a metrics snapshot,
    /// and the flight recording as Chrome trace events (see
    /// [`crate::dump`]). Overrides any process-wide
    /// [`set_failure_dump_path`](crate::dump::set_failure_dump_path).
    pub fn with_failure_dump(mut self, path: impl Into<PathBuf>) -> Self {
        self.failure_dump = Some(path.into());
        self
    }

    /// Enable per-rank communication-event tracing (see
    /// [`RunOutput::traces`]).
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Set the α-β-γ cost model.
    pub fn with_model(mut self, model: CostModel) -> Self {
        self.model = model;
        self
    }

    /// Set the deadlock-detection timeout for blocking receives (the
    /// coarse per-receive fallback under the threaded engine; the
    /// watchdog usually fires first, and the event engine detects
    /// deadlocks exactly without either).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Set the watchdog grace window for the threaded engine: when every
    /// live rank has been blocked in a receive with no message delivered
    /// machine-wide for this long, the run aborts with a wait-for-graph
    /// [`MachineError::Deadlock`] instead of hanging. The event engine
    /// needs no grace window — it reports the identical diagnostic the
    /// moment the stalled configuration arises.
    pub fn with_watchdog(mut self, grace: Duration) -> Self {
        self.watchdog = grace;
        self
    }

    /// Install a deterministic fault-injection plan for the run.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Pin this machine to `kind`, overriding [`force_engine`] and
    /// `SYRK_MACHINE_ENGINE`. Panics (at run time) if the event engine is
    /// requested on a target without a context switch.
    pub fn with_engine(mut self, kind: EngineKind) -> Self {
        self.engine = Some(kind);
        self
    }

    /// Set the per-rank coroutine stack size for the event engine, in
    /// KiB (min 16). Overrides `SYRK_MACHINE_STACK_KB` and the size-based
    /// default. Ignored by the threaded engine, whose ranks use OS thread
    /// stacks.
    pub fn with_rank_stack_kb(mut self, kb: usize) -> Self {
        assert!(kb >= 16, "with_rank_stack_kb: need at least 16 KiB");
        self.rank_stack_kb = Some(kb);
        self
    }

    /// Number of processors.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The engine this machine will run on, after applying the full
    /// precedence chain: [`with_engine`](Machine::with_engine), then
    /// [`force_engine`], then `SYRK_MACHINE_ENGINE`, then the platform
    /// default (event where supported).
    pub fn selected_engine(&self) -> EngineKind {
        if let Some(kind) = self.engine {
            return kind;
        }
        match ENGINE_OVERRIDE.load(Ordering::Relaxed) {
            1 => return EngineKind::Threaded,
            2 => return EngineKind::Event,
            _ => {}
        }
        if let Some(kind) = env_engine() {
            return kind;
        }
        if crate::context::SUPPORTED {
            EngineKind::Event
        } else {
            EngineKind::Threaded
        }
    }

    /// How many ranks execute simultaneously under the selected engine:
    /// `size` on the threaded engine (one OS thread each), 1 on the
    /// event engine (cooperative, one at a time). Algorithms derive
    /// their per-rank kernel thread budget from this — an event-engine
    /// rank may use the whole host for local compute because no other
    /// rank computes concurrently.
    pub fn concurrent_ranks(&self) -> usize {
        match self.selected_engine() {
            EngineKind::Threaded => self.size,
            EngineKind::Event => 1,
        }
    }

    /// Per-rank coroutine stack in bytes: the builder override, else
    /// `SYRK_MACHINE_STACK_KB`, else 256 KiB for small machines (panic
    /// formatting and backtraces want headroom) dropping to 64 KiB past
    /// 4096 ranks — below the allocator's mmap threshold, so huge
    /// machines draw stacks from the heap arena instead of exhausting
    /// the kernel's mapping budget (`vm.max_map_count`).
    fn rank_stack_bytes(&self) -> usize {
        let kb = self
            .rank_stack_kb
            .or_else(env_stack_kb)
            .unwrap_or(if self.size <= 4096 { 256 } else { 64 });
        kb * 1024
    }

    /// The shared world state, minus the engine-specific fabric.
    fn build_world(
        &self,
        senders: Vec<crate::sync::channel::Sender<crate::envelope::Envelope>>,
        event: Option<EventState>,
    ) -> World {
        let p = self.size;
        World {
            size: p,
            model: self.model,
            senders,
            costs: (0..p).map(|_| Mutex::new(RankLedger::default())).collect(),
            timeout: self.timeout,
            poisoned: AtomicBool::new(false),
            aborted: AtomicBool::new(false),
            first_error: Mutex::new(None),
            waiting: (0..p).map(|_| Mutex::new(None)).collect(),
            finished: (0..p).map(|_| AtomicBool::new(false)).collect(),
            progress: AtomicU64::new(0),
            watchdog: self.watchdog,
            ops: (0..p).map(|_| AtomicU64::new(0)).collect(),
            crashed: Mutex::new(Vec::new()),
            faults: self.faults.clone(),
            traces: self
                .tracing
                .then(|| (0..p).map(|_| Mutex::new(Vec::new())).collect()),
            event,
        }
    }

    /// Run `f` in SPMD fashion on every rank and collect results and costs.
    ///
    /// If any rank fails (panic, injected crash, deadlock), the *first*
    /// failure is reported by panicking with its message; cascade failures
    /// on other ranks are suppressed.
    pub fn run<R, F>(&self, f: F) -> RunOutput<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Sync,
    {
        match self.try_run(|comm| Ok(f(comm))) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Run `f` in SPMD fashion, returning the first failure as a
    /// [`MachineError`] instead of panicking.
    ///
    /// The closure returns `Result`, so fallible communication (the
    /// `try_*` methods on [`Comm`]) composes with `?`. A rank that
    /// panics is reported as [`MachineError::RankPanicked`]; the first
    /// failure wins and later cascades (ranks aborting because a peer
    /// already failed) are suppressed.
    ///
    /// ```
    /// use syrk_machine::{Machine, MachineError};
    ///
    /// let err = Machine::new(2)
    ///     .try_run(|comm| -> Result<(), MachineError> {
    ///         let _: Vec<f64> = comm.try_recv(1 - comm.rank(), 0)?; // nobody sends
    ///         Ok(())
    ///     })
    ///     .unwrap_err();
    /// assert!(matches!(err, MachineError::Deadlock(_)));
    /// ```
    #[must_use = "the Result carries the run's output or its first failure"]
    pub fn try_run<R, F>(&self, f: F) -> Result<RunOutput<R>, MachineError>
    where
        R: Send,
        F: Fn(Comm) -> Result<R, MachineError> + Sync,
    {
        match self.selected_engine() {
            EngineKind::Threaded => self.try_run_threaded(f),
            EngineKind::Event => self.try_run_event(f),
        }
    }

    /// The legacy runner: one OS thread per rank over the mpsc fabric.
    fn try_run_threaded<R, F>(&self, f: F) -> Result<RunOutput<R>, MachineError>
    where
        R: Send,
        F: Fn(Comm) -> Result<R, MachineError> + Sync,
    {
        let p = self.size;
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let world = Arc::new(self.build_world(senders, None));
        let group: Arc<Vec<usize>> = Arc::new((0..p).collect());

        let results: Vec<Option<R>> = std::thread::scope(|s| {
            receivers
                .into_iter()
                .enumerate()
                .map(|(rank, rx)| {
                    let world = Arc::clone(&world);
                    let group = Arc::clone(&group);
                    let f = &f;
                    s.spawn(move || {
                        let comm = Comm::new_world(Arc::clone(&world), rank, Some(rx), group);
                        let r = panic::catch_unwind(AssertUnwindSafe(|| f(comm)));
                        let out = match r {
                            Ok(Ok(v)) => Some(v),
                            Ok(Err(e)) => {
                                world.record_error(rank, e);
                                None
                            }
                            Err(payload) => {
                                // Record the originating failure *before*
                                // raising the flags, so ranks that abort in
                                // cascade can never claim the first-error
                                // slot.
                                world.record_error(
                                    rank,
                                    MachineError::RankPanicked {
                                        rank,
                                        message: panic_message(payload.as_ref()),
                                    },
                                );
                                world.poisoned.store(true, Ordering::SeqCst);
                                None
                            }
                        };
                        world.finished[rank].store(true, Ordering::SeqCst);
                        out
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("rank thread died outside catch_unwind"))
                .collect()
        });

        self.collect(world, results)
    }

    /// The discrete-event runner: rank coroutines on one scheduler
    /// thread, advanced in deterministic clock order.
    fn try_run_event<R, F>(&self, f: F) -> Result<RunOutput<R>, MachineError>
    where
        R: Send,
        F: Fn(Comm) -> Result<R, MachineError> + Sync,
    {
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(
                crate::context::SUPPORTED,
                "the event engine has no context switch for this target; \
                 use SYRK_MACHINE_ENGINE=threaded or Machine::with_engine"
            );
        }
        let p = self.size;
        let world = Arc::new(self.build_world(Vec::new(), Some(EventState::new(p))));
        let group: Arc<Vec<usize>> = Arc::new((0..p).collect());
        let stack_bytes = self.rank_stack_bytes();
        // Result slots live above the coroutines so the erased borrows in
        // the rank bodies are dropped (with the coroutine vector) first.
        let result_slots: Vec<Mutex<Option<R>>> = (0..p).map(|_| Mutex::new(None)).collect();
        let mut coroutines: Vec<Coroutine> = (0..p)
            .map(|rank| {
                let world = Arc::clone(&world);
                let group = Arc::clone(&group);
                let f = &f;
                let slots = &result_slots;
                // Mirrors the threaded rank body exactly, so failure
                // bookkeeping (first error, poison, finished) is shared
                // behavior, not engine behavior.
                let body = move || {
                    let comm = Comm::new_world(Arc::clone(&world), rank, None, group);
                    let r = panic::catch_unwind(AssertUnwindSafe(|| f(comm)));
                    match r {
                        Ok(Ok(v)) => *slots[rank].lock() = Some(v),
                        Ok(Err(e)) => world.record_error(rank, e),
                        Err(payload) => {
                            world.record_error(
                                rank,
                                MachineError::RankPanicked {
                                    rank,
                                    message: panic_message(payload.as_ref()),
                                },
                            );
                            world.poisoned.store(true, Ordering::SeqCst);
                        }
                    }
                    world.finished[rank].store(true, Ordering::SeqCst);
                };
                let erased = unsafe { erase_lifetime(Box::new(body)) };
                Coroutine::new(stack_bytes, erased)
            })
            .collect();
        crate::engine::drive(&world, &mut coroutines);
        drop(coroutines);
        let results: Vec<Option<R>> = result_slots.into_iter().map(|m| m.into_inner()).collect();
        self.collect(world, results)
    }

    /// Engine-independent epilogue: unwrap the world, surface the first
    /// recorded error (writing the failure dump), or assemble the
    /// [`RunOutput`].
    fn collect<R>(
        &self,
        world: Arc<World>,
        results: Vec<Option<R>>,
    ) -> Result<RunOutput<R>, MachineError> {
        let world = Arc::try_unwrap(world).unwrap_or_else(|_| {
            panic!("a Comm outlived the machine run; do not leak communicators from the closure")
        });
        if let Some((_, e)) = world.first_error.into_inner() {
            crate::dump::dump_on_error(self.failure_dump.as_deref(), &e);
            return Err(e);
        }
        let mut ranks = Vec::with_capacity(self.size);
        let mut phases = Vec::with_capacity(self.size);
        for m in world.costs {
            let (total, rank_phases) = m.into_inner().into_parts();
            ranks.push(total);
            phases.push(rank_phases);
        }
        let traces = world
            .traces
            .map(|ts| ts.into_iter().map(|m| m.into_inner()).collect());
        Ok(RunOutput {
            results: results
                .into_iter()
                .map(|o| o.expect("rank produced no result yet no error was recorded"))
                .collect(),
            cost: CostReport {
                model: self.model,
                ranks,
                phases,
            },
            traces,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the process-global engine override
    /// (the cargo harness runs sibling tests concurrently).
    fn engine_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn single_rank_runs() {
        let out = Machine::new(1).run(|comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            42
        });
        assert_eq!(out.results, vec![42]);
        assert_eq!(out.cost.total_words(), 0);
    }

    #[test]
    fn results_are_indexed_by_rank() {
        let out = Machine::new(8).run(|comm| comm.rank() * 10);
        assert_eq!(out.results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn many_ranks_spawn() {
        // The simulator must scale to the processor counts used in the
        // experiments (e.g. P = c(c+1) up to 110 or more).
        let out = Machine::new(110).run(|comm| comm.size());
        assert!(out.results.iter().all(|&s| s == 110));
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_ranks_rejected() {
        let _ = Machine::new(0);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn rank_panic_propagates() {
        Machine::new(3).run(|comm| {
            if comm.rank() == 2 {
                panic!("deliberate");
            }
        });
    }

    #[test]
    fn first_error_wins_over_cascades() {
        // Rank 1 fails first; ranks 0 and 2 then abort inside a blocked
        // receive. The reported error must be rank 1's, not a cascade.
        let err = Machine::new(3)
            .try_run(|comm| -> Result<(), MachineError> {
                if comm.rank() == 1 {
                    return Err(MachineError::RankCrashed {
                        rank: 1,
                        after_ops: 0,
                    });
                }
                let _: Vec<f64> = comm.try_recv(1, 0)?;
                Ok(())
            })
            .unwrap_err();
        assert_eq!(
            err,
            MachineError::RankCrashed {
                rank: 1,
                after_ops: 0
            }
        );
    }

    #[test]
    fn try_run_reports_panics_as_errors() {
        let err = Machine::new(2)
            .try_run(|comm| {
                if comm.rank() == 0 {
                    panic!("kaboom {}", 7);
                }
                Ok(comm.rank())
            })
            .unwrap_err();
        assert_eq!(
            err,
            MachineError::RankPanicked {
                rank: 0,
                message: "kaboom 7".to_string()
            }
        );
    }

    #[test]
    fn try_run_collects_results_on_success() {
        let out = Machine::new(4)
            .try_run(|comm| Ok(comm.rank() * 2))
            .expect("clean run");
        assert_eq!(out.results, vec![0, 2, 4, 6]);
    }

    #[test]
    fn cost_model_is_applied() {
        let model = CostModel {
            alpha: 10.0,
            beta: 2.0,
            gamma: 0.0,
        };
        let out = Machine::new(2).with_model(model).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![1.0f64; 4]);
            } else {
                let _: Vec<f64> = comm.recv(0, 0);
            }
        });
        // Sender clock: α + β·4 = 18.
        assert!((out.cost.ranks[0].clock - 18.0).abs() < 1e-12);
        assert!((out.cost.elapsed() - 18.0).abs() < 1e-12);
    }

    #[test]
    fn engines_agree_on_a_small_run() {
        // A ring exchange with per-rank clocks: both engines must produce
        // bitwise-identical results and cost reports (the full matrix
        // lives in tests/engine_equivalence.rs).
        let run = |kind: EngineKind| {
            Machine::new(6)
                .with_engine(kind)
                .with_model(CostModel::typical())
                .run(|comm| {
                    let p = comm.size();
                    let next = (comm.rank() + 1) % p;
                    let prev = (comm.rank() + p - 1) % p;
                    let mine = vec![comm.rank() as f64; 8];
                    let got: Vec<f64> = comm.exchange(next, mine, prev, 1);
                    comm.add_flops(100);
                    got[0]
                })
        };
        let threaded = run(EngineKind::Threaded);
        let event = run(EngineKind::Event);
        assert_eq!(threaded.results, event.results);
        assert_eq!(threaded.cost.ranks, event.cost.ranks);
        assert_eq!(threaded.cost.phases, event.cost.phases);
    }

    #[test]
    fn event_engine_scales_past_thread_limits() {
        // More ranks than any reasonable thread budget, one process, and
        // an actual data dependency chain across all of them.
        let p = 3000;
        let out = Machine::new(p).with_engine(EngineKind::Event).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![1.0f64]);
                0.0
            } else {
                let v: Vec<f64> = comm.recv(comm.rank() - 1, 0);
                let acc = v[0] + 1.0;
                if comm.rank() + 1 < comm.size() {
                    comm.send(comm.rank() + 1, 0, vec![acc]);
                }
                acc
            }
        });
        assert_eq!(out.results[p - 1], p as f64);
    }

    #[test]
    fn event_engine_detects_deadlock_exactly() {
        // Two ranks each waiting on the other: the scheduler must report
        // the same wait-for graph the watchdog would, without any grace
        // window (so no with_watchdog tuning here — detection is exact).
        let err = Machine::new(2)
            .with_engine(EngineKind::Event)
            .try_run(|comm| -> Result<(), MachineError> {
                let peer = 1 - comm.rank();
                let _: Vec<f64> = comm.try_recv(peer, 9)?;
                Ok(())
            })
            .unwrap_err();
        let MachineError::Deadlock(info) = err else {
            panic!("expected a deadlock, got {err}");
        };
        assert_eq!(info.edges.len(), 2);
        assert_eq!(info.edges[0].from, 0);
        assert_eq!(info.edges[0].to, 1);
        assert_eq!(info.edges[1].from, 1);
        assert_eq!(info.edges[1].to, 0);
        assert!(info.finished.is_empty());
    }

    #[test]
    fn force_engine_guard_sets_and_restores() {
        let _serial = engine_lock();
        let default_kind = Machine::new(2).selected_engine();
        {
            let _g = force_engine(EngineKind::Threaded);
            assert_eq!(Machine::new(2).selected_engine(), EngineKind::Threaded);
            // An explicit builder choice still wins over the override.
            assert_eq!(
                Machine::new(2)
                    .with_engine(EngineKind::Event)
                    .selected_engine(),
                EngineKind::Event
            );
        }
        assert_eq!(Machine::new(2).selected_engine(), default_kind);
    }

    #[test]
    fn concurrent_ranks_reflects_engine() {
        let _serial = engine_lock();
        let m = Machine::new(40);
        assert_eq!(
            m.clone()
                .with_engine(EngineKind::Threaded)
                .concurrent_ranks(),
            40
        );
        assert_eq!(m.with_engine(EngineKind::Event).concurrent_ranks(), 1);
    }

    #[test]
    fn event_engine_runs_with_tiny_stacks() {
        // The large-P stack policy (64 KiB) must be enough for the
        // communication paths; the canary turns an overflow into a
        // loud failure rather than corruption.
        let out = Machine::new(64)
            .with_engine(EngineKind::Event)
            .with_rank_stack_kb(64)
            .run(|comm| {
                let mine = vec![comm.rank() as f64; 4];
                let sum: f64 = comm.all_reduce(&mine).iter().sum();
                sum
            });
        let expect = (0..64).sum::<usize>() as f64 * 4.0;
        assert!(out.results.iter().all(|&r| r == expect));
    }
}
