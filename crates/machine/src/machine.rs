//! The SPMD runner: spawns one OS thread per simulated rank, executes the
//! user closure, and collects results plus the cost report.

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::sync::{channel::unbounded, Mutex};

use crate::comm::{Comm, World};
use crate::cost::{CostModel, CostReport, RankLedger};
use crate::error::MachineError;
use crate::fault::FaultPlan;

/// Output of one machine run: the per-rank results of the SPMD closure and
/// the aggregated communication/computation cost report.
#[derive(Debug)]
pub struct RunOutput<R> {
    /// Closure results, indexed by world rank.
    pub results: Vec<R>,
    /// Cost accounting for the whole run.
    pub cost: CostReport,
    /// Per-rank event timelines, present when tracing was enabled.
    pub traces: Option<Vec<crate::trace::Timeline>>,
}

/// A simulated distributed-memory machine with `P` processors, a fully
/// connected network with bidirectional links, and α-β-γ cost accounting
/// (§3.2 of the paper).
///
/// ```
/// use syrk_machine::{Machine, CostModel};
///
/// let out = Machine::new(4).run(|comm| {
///     // Each rank contributes its rank; ranks all-reduce the sum.
///     let mine = vec![comm.rank() as f64];
///     let total = comm.all_reduce(&mine);
///     total[0]
/// });
/// assert!(out.results.iter().all(|&r| r == 6.0));
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    size: usize,
    model: CostModel,
    timeout: Duration,
    watchdog: Duration,
    faults: Option<FaultPlan>,
    tracing: bool,
    failure_dump: Option<PathBuf>,
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Machine {
    /// A machine with `size` processors and bandwidth-only cost accounting
    /// (α = γ = 0, β = 1), so that clocks directly report word counts.
    pub fn new(size: usize) -> Self {
        assert!(size >= 1, "a machine needs at least one processor");
        Machine {
            size,
            model: CostModel::bandwidth_only(),
            timeout: Duration::from_secs(120),
            watchdog: Duration::from_secs(2),
            faults: None,
            tracing: false,
            failure_dump: None,
        }
    }

    /// Write a post-mortem artifact to `path` if the run fails: the
    /// error, the wait-for graph (for deadlocks), a metrics snapshot,
    /// and the flight recording as Chrome trace events (see
    /// [`crate::dump`]). Overrides any process-wide
    /// [`set_failure_dump_path`](crate::dump::set_failure_dump_path).
    pub fn with_failure_dump(mut self, path: impl Into<PathBuf>) -> Self {
        self.failure_dump = Some(path.into());
        self
    }

    /// Enable per-rank communication-event tracing (see
    /// [`RunOutput::traces`]).
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Set the α-β-γ cost model.
    pub fn with_model(mut self, model: CostModel) -> Self {
        self.model = model;
        self
    }

    /// Set the deadlock-detection timeout for blocking receives (the
    /// coarse per-receive fallback; the watchdog usually fires first).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Set the watchdog grace window: when every live rank has been
    /// blocked in a receive with no message delivered machine-wide for
    /// this long, the run aborts with a wait-for-graph
    /// [`MachineError::Deadlock`] instead of hanging.
    pub fn with_watchdog(mut self, grace: Duration) -> Self {
        self.watchdog = grace;
        self
    }

    /// Install a deterministic fault-injection plan for the run.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Number of processors.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Run `f` in SPMD fashion on every rank and collect results and costs.
    ///
    /// If any rank fails (panic, injected crash, deadlock), the *first*
    /// failure is reported by panicking with its message; cascade failures
    /// on other ranks are suppressed.
    pub fn run<R, F>(&self, f: F) -> RunOutput<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Sync,
    {
        match self.try_run(|comm| Ok(f(comm))) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Run `f` in SPMD fashion, returning the first failure as a
    /// [`MachineError`] instead of panicking.
    ///
    /// The closure returns `Result`, so fallible communication (the
    /// `try_*` methods on [`Comm`]) composes with `?`. A rank that
    /// panics is reported as [`MachineError::RankPanicked`]; the first
    /// failure in wall-clock order wins and later cascades (ranks
    /// aborting because a peer already failed) are suppressed.
    ///
    /// ```
    /// use syrk_machine::{Machine, MachineError};
    ///
    /// let err = Machine::new(2)
    ///     .try_run(|comm| -> Result<(), MachineError> {
    ///         let _: Vec<f64> = comm.try_recv(1 - comm.rank(), 0)?; // nobody sends
    ///         Ok(())
    ///     })
    ///     .unwrap_err();
    /// assert!(matches!(err, MachineError::Deadlock(_)));
    /// ```
    #[must_use = "the Result carries the run's output or its first failure"]
    pub fn try_run<R, F>(&self, f: F) -> Result<RunOutput<R>, MachineError>
    where
        R: Send,
        F: Fn(Comm) -> Result<R, MachineError> + Sync,
    {
        let p = self.size;
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let world = Arc::new(World {
            size: p,
            model: self.model,
            senders,
            costs: (0..p).map(|_| Mutex::new(RankLedger::default())).collect(),
            timeout: self.timeout,
            poisoned: AtomicBool::new(false),
            aborted: AtomicBool::new(false),
            first_error: Mutex::new(None),
            waiting: (0..p).map(|_| Mutex::new(None)).collect(),
            finished: (0..p).map(|_| AtomicBool::new(false)).collect(),
            progress: AtomicU64::new(0),
            watchdog: self.watchdog,
            ops: (0..p).map(|_| AtomicU64::new(0)).collect(),
            faults: self.faults.clone(),
            traces: self
                .tracing
                .then(|| (0..p).map(|_| Mutex::new(Vec::new())).collect()),
        });

        let results: Vec<Option<R>> = std::thread::scope(|s| {
            receivers
                .into_iter()
                .enumerate()
                .map(|(rank, rx)| {
                    let world = Arc::clone(&world);
                    let f = &f;
                    s.spawn(move || {
                        let comm = Comm::new_world(Arc::clone(&world), rank, rx);
                        let r = panic::catch_unwind(AssertUnwindSafe(|| f(comm)));
                        let out = match r {
                            Ok(Ok(v)) => Some(v),
                            Ok(Err(e)) => {
                                world.record_error(rank, e);
                                None
                            }
                            Err(payload) => {
                                // Record the originating failure *before*
                                // raising the flags, so ranks that abort in
                                // cascade can never claim the first-error
                                // slot.
                                world.record_error(
                                    rank,
                                    MachineError::RankPanicked {
                                        rank,
                                        message: panic_message(payload.as_ref()),
                                    },
                                );
                                world.poisoned.store(true, Ordering::SeqCst);
                                None
                            }
                        };
                        world.finished[rank].store(true, Ordering::SeqCst);
                        out
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("rank thread died outside catch_unwind"))
                .collect()
        });

        let world = Arc::try_unwrap(world).unwrap_or_else(|_| {
            panic!("a Comm outlived the machine run; do not leak communicators from the closure")
        });
        if let Some((_, e)) = world.first_error.into_inner() {
            crate::dump::dump_on_error(self.failure_dump.as_deref(), &e);
            return Err(e);
        }
        let mut ranks = Vec::with_capacity(p);
        let mut phases = Vec::with_capacity(p);
        for m in world.costs {
            let (total, rank_phases) = m.into_inner().into_parts();
            ranks.push(total);
            phases.push(rank_phases);
        }
        let traces = world
            .traces
            .map(|ts| ts.into_iter().map(|m| m.into_inner()).collect());
        Ok(RunOutput {
            results: results
                .into_iter()
                .map(|o| o.expect("rank produced no result yet no error was recorded"))
                .collect(),
            cost: CostReport {
                model: self.model,
                ranks,
                phases,
            },
            traces,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = Machine::new(1).run(|comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            42
        });
        assert_eq!(out.results, vec![42]);
        assert_eq!(out.cost.total_words(), 0);
    }

    #[test]
    fn results_are_indexed_by_rank() {
        let out = Machine::new(8).run(|comm| comm.rank() * 10);
        assert_eq!(out.results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn many_ranks_spawn() {
        // The simulator must scale to the processor counts used in the
        // experiments (e.g. P = c(c+1) up to 110 or more).
        let out = Machine::new(110).run(|comm| comm.size());
        assert!(out.results.iter().all(|&s| s == 110));
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_ranks_rejected() {
        let _ = Machine::new(0);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn rank_panic_propagates() {
        Machine::new(3).run(|comm| {
            if comm.rank() == 2 {
                panic!("deliberate");
            }
        });
    }

    #[test]
    fn first_error_wins_over_cascades() {
        // Rank 1 fails first; ranks 0 and 2 then abort inside a blocked
        // receive. The reported error must be rank 1's, not a cascade.
        let err = Machine::new(3)
            .try_run(|comm| -> Result<(), MachineError> {
                if comm.rank() == 1 {
                    return Err(MachineError::RankCrashed {
                        rank: 1,
                        after_ops: 0,
                    });
                }
                let _: Vec<f64> = comm.try_recv(1, 0)?;
                Ok(())
            })
            .unwrap_err();
        assert_eq!(
            err,
            MachineError::RankCrashed {
                rank: 1,
                after_ops: 0
            }
        );
    }

    #[test]
    fn try_run_reports_panics_as_errors() {
        let err = Machine::new(2)
            .try_run(|comm| {
                if comm.rank() == 0 {
                    panic!("kaboom {}", 7);
                }
                Ok(comm.rank())
            })
            .unwrap_err();
        assert_eq!(
            err,
            MachineError::RankPanicked {
                rank: 0,
                message: "kaboom 7".to_string()
            }
        );
    }

    #[test]
    fn try_run_collects_results_on_success() {
        let out = Machine::new(4)
            .try_run(|comm| Ok(comm.rank() * 2))
            .expect("clean run");
        assert_eq!(out.results, vec![0, 2, 4, 6]);
    }

    #[test]
    fn cost_model_is_applied() {
        let model = CostModel {
            alpha: 10.0,
            beta: 2.0,
            gamma: 0.0,
        };
        let out = Machine::new(2).with_model(model).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![1.0f64; 4]);
            } else {
                let _: Vec<f64> = comm.recv(0, 0);
            }
        });
        // Sender clock: α + β·4 = 18.
        assert!((out.cost.ranks[0].clock - 18.0).abs() < 1e-12);
        assert!((out.cost.elapsed() - 18.0).abs() < 1e-12);
    }
}
