//! Post-mortem failure dumps: when a machine run fails, the wait-for
//! graph, a metrics snapshot, and the wall-clock flight recording are
//! written to one JSON artifact.
//!
//! The watchdog's [`DeadlockInfo`](crate::DeadlockInfo) already says
//! *who* was blocked on *whom*; the dump adds *what the process was
//! actually doing* — every registered `syrk_*` counter and, when the
//! [flight recorder](syrk_telemetry::flight) was enabled, the wall-clock
//! spans (including the `recv:block` spans of the deadlocked receives
//! themselves, closed on the abort path) rendered as Chrome trace
//! events.
//!
//! A dump destination can be set three ways, highest precedence first:
//!
//! * per machine, with
//!   [`Machine::with_failure_dump`](crate::Machine::with_failure_dump);
//! * per calling thread, with [`scoped_failure_dump_path`] — an RAII
//!   scope for callers (like the `syrk-core` algorithms and the serving
//!   path) that construct machines internally but want each concurrent
//!   run's dump routed independently. A process-wide slot cannot do
//!   this: concurrent `Machine::try_run` callers would clobber each
//!   other's setting;
//! * process-wide, with [`set_failure_dump_path`] — the coarse fallback
//!   for single-run binaries.
//!
//! Dump writing is best-effort: an unwritable path is reported on stderr
//! and never masks the run's own error. Writes are serialized through a
//! process-wide lock and land via a write-then-rename, so two
//! simultaneous failing runs pointed at the same path can never
//! interleave or truncate each other's JSON — the file always holds one
//! complete document.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::error::MachineError;
use syrk_telemetry::{flight, registry, wall_trace_events};

static GLOBAL_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);

thread_local! {
    /// Innermost [`scoped_failure_dump_path`] scope for this thread.
    static SCOPED_PATH: RefCell<Vec<Option<PathBuf>>> = const { RefCell::new(Vec::new()) };
}

/// Set (or clear, with `None`) the process-wide failure-dump path used
/// by every [`Machine`](crate::Machine) run that has no per-machine or
/// scoped path. Returns the previous setting.
pub fn set_failure_dump_path(path: Option<PathBuf>) -> Option<PathBuf> {
    let mut slot = GLOBAL_PATH.lock().unwrap_or_else(|e| e.into_inner());
    std::mem::replace(&mut slot, path)
}

/// Route failure dumps from machine runs on *this thread* to `path`
/// until the returned guard drops (`None` suppresses dumps for the
/// scope, shadowing any process-wide path). Scopes nest; the innermost
/// wins. A per-machine [`with_failure_dump`](crate::Machine::with_failure_dump)
/// still takes precedence.
///
/// This is the concurrency-safe alternative to [`set_failure_dump_path`]
/// for servers and test harnesses running several machines at once:
/// each run's dump destination is scoped to its own thread instead of a
/// single process-wide slot that concurrent callers would clobber.
#[must_use = "the scoped dump path is active only until the guard drops"]
pub fn scoped_failure_dump_path(path: Option<PathBuf>) -> ScopedFailureDumpGuard {
    SCOPED_PATH.with(|s| s.borrow_mut().push(path));
    ScopedFailureDumpGuard { _private: () }
}

/// RAII guard for [`scoped_failure_dump_path`]; restores the previous
/// scope on drop.
#[derive(Debug)]
pub struct ScopedFailureDumpGuard {
    _private: (),
}

impl Drop for ScopedFailureDumpGuard {
    fn drop(&mut self) {
        SCOPED_PATH.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// The effective non-machine dump destination for this thread:
/// the innermost scope if one is active (even a suppressing `None`),
/// else the process-wide slot. The outer `Option` is "is any dump
/// configured at all".
fn ambient_path() -> Option<PathBuf> {
    let scoped = SCOPED_PATH.with(|s| s.borrow().last().cloned());
    match scoped {
        Some(inner) => inner,
        None => GLOBAL_PATH
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone(),
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn error_kind(err: &MachineError) -> &'static str {
    match err {
        MachineError::Deadlock(_) => "deadlock",
        MachineError::RankCrashed { .. } => "rank_crashed",
        MachineError::RankPanicked { .. } => "rank_panicked",
        MachineError::PeerFailed { .. } => "peer_failed",
        MachineError::RecvTimeout { .. } => "recv_timeout",
        MachineError::DataCorruption { .. } => "data_corruption",
        MachineError::TypeMismatch { .. } => "type_mismatch",
    }
}

/// Render the full post-mortem document for `err`: the error, the
/// wait-for graph (for deadlocks), a snapshot of every registered
/// metric, and the flight recording as Chrome trace events.
pub fn failure_dump_string(err: &MachineError) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"kind\": \"{}\",", error_kind(err));
    let _ = writeln!(out, "  \"error\": \"{}\",", escape(&err.to_string()));
    if let MachineError::Deadlock(info) = err {
        out.push_str("  \"wait_for\": [");
        for (i, e) in info.edges.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let phase = match e.phase {
                Some(p) => format!("\"{}\"", escape(p)),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "{sep}{{\"from\": {}, \"to\": {}, \"op\": \"{}\", \"tag\": [{}, {}], \
                 \"phase\": {phase}}}",
                e.from,
                e.to,
                escape(e.op),
                e.tag.0,
                e.tag.1
            );
        }
        out.push_str("],\n");
        let finished: Vec<String> = info.finished.iter().map(|r| r.to_string()).collect();
        let _ = writeln!(out, "  \"finished\": [{}],", finished.join(", "));
    }
    let metrics = syrk_telemetry::snapshot_json(&registry::snapshot());
    let _ = writeln!(out, "  \"metrics\": {},", metrics.trim_end());
    let rec = flight::collect();
    let _ = writeln!(out, "  \"flight\": {{");
    let _ = writeln!(out, "    \"dropped\": {},", rec.dropped);
    out.push_str("    \"traceEvents\": [");
    let events = wall_trace_events(&rec, syrk_telemetry::export::WALL_PID);
    for (i, e) in events.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(out, "{sep}{e}");
    }
    out.push_str("]\n  }\n}\n");
    out
}

/// Serializes dump writes process-wide so concurrent failing runs
/// pointed at the same path cannot interleave their output.
static WRITE_LOCK: Mutex<()> = Mutex::new(());

/// Per-process sequence for unique temporary file names, so two dumps
/// racing toward one destination never share a scratch file either.
static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write the post-mortem document for `err` to `path` (see
/// [`failure_dump_string`]).
///
/// The document is rendered to a unique sibling temp file and renamed
/// into place under a process-wide write lock: a reader (or a second
/// concurrent dump) always observes one complete JSON document at
/// `path`, never a torn or truncated one.
pub fn write_failure_dump(path: &Path, err: &MachineError) -> std::io::Result<()> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    let doc = failure_dump_string(err);
    let _serialized = WRITE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let seq = WRITE_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(format!(".tmp.{}.{seq}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, doc)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Best-effort dump on a failed run: the machine's own path wins over
/// the calling thread's scope, which wins over the process-wide slot;
/// no configured path means no dump. IO failures are reported on
/// stderr, never propagated (the run's error is the story; the dump is
/// a diagnostic side channel).
pub(crate) fn dump_on_error(machine_path: Option<&Path>, err: &MachineError) {
    let Some(path) = machine_path.map(Path::to_path_buf).or_else(ambient_path) else {
        return;
    };
    match write_failure_dump(&path, err) {
        Ok(()) => eprintln!("failure dump written to {}", path.display()),
        Err(io) => eprintln!("failed to write failure dump to {}: {io}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{DeadlockInfo, WaitEdge};

    fn deadlock_error() -> MachineError {
        MachineError::Deadlock(DeadlockInfo {
            edges: vec![
                WaitEdge {
                    from: 0,
                    to: 1,
                    op: "recv",
                    tag: (0, 7),
                    phase: Some("ring"),
                },
                WaitEdge {
                    from: 1,
                    to: 0,
                    op: "recv",
                    tag: (0, 7),
                    phase: None,
                },
            ],
            finished: vec![2],
        })
    }

    #[test]
    fn dump_contains_graph_metrics_and_flight() {
        // Put at least one flight event in the rings so the wall row is
        // non-trivial.
        flight::enable();
        flight::instant(flight::FlightKind::Steal, 1);
        let doc = failure_dump_string(&deadlock_error());
        flight::disable();
        flight::clear();
        assert!(doc.contains("\"kind\": \"deadlock\""));
        assert!(doc.contains("\"wait_for\": ["));
        assert!(doc.contains("\"from\": 0, \"to\": 1"));
        assert!(doc.contains("\"phase\": \"ring\""));
        assert!(doc.contains("\"finished\": [2]"));
        assert!(doc.contains("\"metrics\": {"));
        assert!(doc.contains("\"counters\""));
        assert!(doc.contains("\"traceEvents\": ["));
        assert!(doc.contains("\"wall-clock\""));
    }

    #[test]
    fn non_deadlock_dump_skips_wait_for() {
        let doc = failure_dump_string(&MachineError::RankCrashed {
            rank: 3,
            after_ops: 9,
        });
        assert!(doc.contains("\"kind\": \"rank_crashed\""));
        assert!(!doc.contains("\"wait_for\""));
        assert!(doc.contains("\"metrics\": {"));
    }

    #[test]
    fn scoped_path_wins_over_global_and_restores() {
        // Thread-locals make this test immune to other tests' scopes;
        // exercise the precedence chain directly via ambient_path.
        let global = PathBuf::from("/tmp/syrk_dump_global.json");
        let prev = set_failure_dump_path(Some(global.clone()));
        assert_eq!(ambient_path(), Some(global.clone()));
        {
            let scoped = PathBuf::from("/tmp/syrk_dump_scoped.json");
            let _g = scoped_failure_dump_path(Some(scoped.clone()));
            assert_eq!(ambient_path(), Some(scoped.clone()));
            {
                // A suppressing inner scope shadows everything.
                let _g2 = scoped_failure_dump_path(None);
                assert_eq!(ambient_path(), None);
            }
            assert_eq!(ambient_path(), Some(scoped));
        }
        assert_eq!(ambient_path(), Some(global));
        set_failure_dump_path(prev);
    }

    #[test]
    fn scopes_are_per_thread() {
        let scoped = PathBuf::from("/tmp/syrk_dump_thread_a.json");
        let _g = scoped_failure_dump_path(Some(scoped.clone()));
        assert_eq!(ambient_path(), Some(scoped));
        // Another thread sees no scope (and whatever the global slot
        // holds — tests sharing it run under their own keys, so only
        // check the scope is absent by shadowing with one of our own).
        std::thread::spawn(|| {
            let other = PathBuf::from("/tmp/syrk_dump_thread_b.json");
            let _g = scoped_failure_dump_path(Some(other.clone()));
            assert_eq!(ambient_path(), Some(other));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn write_failure_dump_creates_parent_dirs() {
        let dir = std::env::temp_dir().join("syrk_dump_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/dump.json");
        write_failure_dump(&path, &deadlock_error()).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"kind\": \"deadlock\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
