//! Post-mortem failure dumps: when a machine run fails, the wait-for
//! graph, a metrics snapshot, and the wall-clock flight recording are
//! written to one JSON artifact.
//!
//! The watchdog's [`DeadlockInfo`](crate::DeadlockInfo) already says
//! *who* was blocked on *whom*; the dump adds *what the process was
//! actually doing* — every registered `syrk_*` counter and, when the
//! [flight recorder](syrk_telemetry::flight) was enabled, the wall-clock
//! spans (including the `recv:block` spans of the deadlocked receives
//! themselves, closed on the abort path) rendered as Chrome trace
//! events.
//!
//! A dump destination can be set two ways:
//!
//! * per machine, with
//!   [`Machine::with_failure_dump`](crate::Machine::with_failure_dump);
//! * process-wide, with [`set_failure_dump_path`] — for callers (like the
//!   `syrk-core` algorithms) that construct machines internally.
//!
//! The per-machine path wins when both are set. Dump writing is
//! best-effort: an unwritable path is reported on stderr and never masks
//! the run's own error.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::error::MachineError;
use syrk_telemetry::{flight, registry, wall_trace_events};

static GLOBAL_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Set (or clear, with `None`) the process-wide failure-dump path used
/// by every [`Machine`](crate::Machine) run that has no per-machine path.
/// Returns the previous setting.
pub fn set_failure_dump_path(path: Option<PathBuf>) -> Option<PathBuf> {
    let mut slot = GLOBAL_PATH.lock().unwrap_or_else(|e| e.into_inner());
    std::mem::replace(&mut slot, path)
}

fn global_path() -> Option<PathBuf> {
    GLOBAL_PATH
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn error_kind(err: &MachineError) -> &'static str {
    match err {
        MachineError::Deadlock(_) => "deadlock",
        MachineError::RankCrashed { .. } => "rank_crashed",
        MachineError::RankPanicked { .. } => "rank_panicked",
        MachineError::PeerFailed { .. } => "peer_failed",
        MachineError::RecvTimeout { .. } => "recv_timeout",
        MachineError::TypeMismatch { .. } => "type_mismatch",
    }
}

/// Render the full post-mortem document for `err`: the error, the
/// wait-for graph (for deadlocks), a snapshot of every registered
/// metric, and the flight recording as Chrome trace events.
pub fn failure_dump_string(err: &MachineError) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"kind\": \"{}\",", error_kind(err));
    let _ = writeln!(out, "  \"error\": \"{}\",", escape(&err.to_string()));
    if let MachineError::Deadlock(info) = err {
        out.push_str("  \"wait_for\": [");
        for (i, e) in info.edges.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let phase = match e.phase {
                Some(p) => format!("\"{}\"", escape(p)),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "{sep}{{\"from\": {}, \"to\": {}, \"op\": \"{}\", \"tag\": [{}, {}], \
                 \"phase\": {phase}}}",
                e.from,
                e.to,
                escape(e.op),
                e.tag.0,
                e.tag.1
            );
        }
        out.push_str("],\n");
        let finished: Vec<String> = info.finished.iter().map(|r| r.to_string()).collect();
        let _ = writeln!(out, "  \"finished\": [{}],", finished.join(", "));
    }
    let metrics = syrk_telemetry::snapshot_json(&registry::snapshot());
    let _ = writeln!(out, "  \"metrics\": {},", metrics.trim_end());
    let rec = flight::collect();
    let _ = writeln!(out, "  \"flight\": {{");
    let _ = writeln!(out, "    \"dropped\": {},", rec.dropped);
    out.push_str("    \"traceEvents\": [");
    let events = wall_trace_events(&rec, syrk_telemetry::export::WALL_PID);
    for (i, e) in events.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(out, "{sep}{e}");
    }
    out.push_str("]\n  }\n}\n");
    out
}

/// Write the post-mortem document for `err` to `path` (see
/// [`failure_dump_string`]).
pub fn write_failure_dump(path: &Path, err: &MachineError) -> std::io::Result<()> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, failure_dump_string(err))
}

/// Best-effort dump on a failed run: the machine's own path wins over
/// the process-wide one; no configured path means no dump. IO failures
/// are reported on stderr, never propagated (the run's error is the
/// story; the dump is a diagnostic side channel).
pub(crate) fn dump_on_error(machine_path: Option<&Path>, err: &MachineError) {
    let Some(path) = machine_path.map(Path::to_path_buf).or_else(global_path) else {
        return;
    };
    match write_failure_dump(&path, err) {
        Ok(()) => eprintln!("failure dump written to {}", path.display()),
        Err(io) => eprintln!("failed to write failure dump to {}: {io}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{DeadlockInfo, WaitEdge};

    fn deadlock_error() -> MachineError {
        MachineError::Deadlock(DeadlockInfo {
            edges: vec![
                WaitEdge {
                    from: 0,
                    to: 1,
                    op: "recv",
                    tag: (0, 7),
                    phase: Some("ring"),
                },
                WaitEdge {
                    from: 1,
                    to: 0,
                    op: "recv",
                    tag: (0, 7),
                    phase: None,
                },
            ],
            finished: vec![2],
        })
    }

    #[test]
    fn dump_contains_graph_metrics_and_flight() {
        // Put at least one flight event in the rings so the wall row is
        // non-trivial.
        flight::enable();
        flight::instant(flight::FlightKind::Steal, 1);
        let doc = failure_dump_string(&deadlock_error());
        flight::disable();
        flight::clear();
        assert!(doc.contains("\"kind\": \"deadlock\""));
        assert!(doc.contains("\"wait_for\": ["));
        assert!(doc.contains("\"from\": 0, \"to\": 1"));
        assert!(doc.contains("\"phase\": \"ring\""));
        assert!(doc.contains("\"finished\": [2]"));
        assert!(doc.contains("\"metrics\": {"));
        assert!(doc.contains("\"counters\""));
        assert!(doc.contains("\"traceEvents\": ["));
        assert!(doc.contains("\"wall-clock\""));
    }

    #[test]
    fn non_deadlock_dump_skips_wait_for() {
        let doc = failure_dump_string(&MachineError::RankCrashed {
            rank: 3,
            after_ops: 9,
        });
        assert!(doc.contains("\"kind\": \"rank_crashed\""));
        assert!(!doc.contains("\"wait_for\""));
        assert!(doc.contains("\"metrics\": {"));
    }

    #[test]
    fn write_failure_dump_creates_parent_dirs() {
        let dir = std::env::temp_dir().join("syrk_dump_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/dump.json");
        write_failure_dump(&path, &deadlock_error()).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"kind\": \"deadlock\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
