//! Deterministic fault injection for the simulated network.
//!
//! A [`FaultPlan`] is installed on a [`Machine`](crate::Machine) with
//! [`with_faults`](crate::Machine::with_faults) and describes a *seeded,
//! repeatable* pattern of transport degradation:
//!
//! * **drop** — a transmission attempt is lost in the network; the sender
//!   retransmits (bounded by [`retries`](FaultPlan::retries)), and every
//!   failed attempt is charged to the `retry:drop` phase,
//! * **duplicate** — the network delivers a stale second copy; the
//!   receiver detects it by its per-link sequence number and discards it,
//!   charging the wasted receive to `retry:dup`,
//! * **delay** — the message arrives with its sender-ready clock skewed
//!   forward (pure latency; no counters change),
//! * **corrupt** — the delivered bits fail the payload checksum; the
//!   receiver discards the copy (`retry:corrupt`) and consumes the
//!   retransmission instead,
//! * **stall** — a chosen rank loses a fixed amount of clock mid-phase,
//! * **crash** — a chosen rank dies after a fixed number of communication
//!   operations, which surfaces as
//!   [`MachineError::RankCrashed`](crate::MachineError::RankCrashed).
//!
//! Every per-message decision is a pure function of
//! `(seed, src, dst, seq)`, where `seq` is the per-link sequence number
//! assigned in program order by the (single-threaded) sending rank — so
//! fault patterns are bit-identical across host thread counts and runs.
//!
//! Fault handling is *detected and paid for*, never silent: retransmits
//! and discarded copies show up as `retry:*` phases in the
//! [`CostReport`](crate::CostReport), and by construction they never
//! change the payload a receive returns nor the costs charged to any
//! non-retry phase.

use syrk_dense::DetRng;
use syrk_telemetry::LazyCounter;

static DROPS_INJECTED: LazyCounter = LazyCounter::new("syrk_fault_drops_injected");
static DUPS_INJECTED: LazyCounter = LazyCounter::new("syrk_fault_dups_injected");
static CORRUPTS_INJECTED: LazyCounter = LazyCounter::new("syrk_fault_corrupts_injected");
static DELAYS_INJECTED: LazyCounter = LazyCounter::new("syrk_fault_delays_injected");
static STALLS_INJECTED: LazyCounter = LazyCounter::new("syrk_fault_stalls_injected");
static CRASHES_INJECTED: LazyCounter = LazyCounter::new("syrk_fault_crashes_injected");
static RETRY_DROP: LazyCounter = LazyCounter::new("syrk_retry_drop_handled");
static RETRY_DUP: LazyCounter = LazyCounter::new("syrk_retry_dup_handled");
static RETRY_CORRUPT: LazyCounter = LazyCounter::new("syrk_retry_corrupt_handled");
static RETRY_STALL: LazyCounter = LazyCounter::new("syrk_retry_stall_handled");

/// Meter one message's injected faults on the telemetry registry
/// (`syrk_fault_*_injected`). Called by the transmit path once per
/// faulted logical message.
pub(crate) fn note_injected(mf: &MessageFaults) {
    DROPS_INJECTED.add(mf.drops as u64);
    if mf.duplicate {
        DUPS_INJECTED.inc();
    }
    if mf.corrupt {
        CORRUPTS_INJECTED.inc();
    }
    if mf.delay > 0.0 {
        DELAYS_INJECTED.inc();
    }
}

/// Meter an injected rank stall (`syrk_fault_stalls_injected`).
pub(crate) fn note_stall() {
    STALLS_INJECTED.inc();
}

/// Meter an injected rank crash (`syrk_fault_crashes_injected`).
pub(crate) fn note_crash() {
    CRASHES_INJECTED.inc();
}

/// Meter one charged fault-handling step (`syrk_retry_*_handled`),
/// keyed by the `retry:*` phase name it was charged under. Unknown
/// phases are ignored (the phase constants are code-owned).
pub(crate) fn note_retry(phase: &str) {
    match phase {
        crate::comm::RETRY_DROP_PHASE => RETRY_DROP.inc(),
        crate::comm::RETRY_DUP_PHASE => RETRY_DUP.inc(),
        crate::comm::RETRY_CORRUPT_PHASE => RETRY_CORRUPT.inc(),
        crate::comm::RETRY_STALL_PHASE => RETRY_STALL.inc(),
        _ => {}
    }
}

/// splitmix64 finalizer, used to key per-message RNG streams and to
/// derive child communicator ids (see `Comm::split`).
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Faults the plan decided for one logical message.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct MessageFaults {
    /// Number of transmission attempts lost before the one that arrives.
    pub drops: u32,
    /// Deliver a stale duplicate copy after the real one.
    pub duplicate: bool,
    /// Deliver a corrupted copy (bad checksum) before the real one.
    pub corrupt: bool,
    /// Skew added to the delivered copy's sender-ready clock.
    pub delay: f64,
}

/// A seeded, deterministic fault-injection plan for a machine run.
///
/// ```
/// use syrk_machine::{FaultPlan, Machine};
///
/// let plan = FaultPlan::seeded(42).drop(0.2).duplicate(0.1).corrupt(0.05);
/// let out = Machine::new(2).with_faults(plan).run(|comm| {
///     if comm.rank() == 0 {
///         comm.send(1, 0, vec![1.0f64; 8]);
///         0.0
///     } else {
///         let v: Vec<f64> = comm.recv(0, 0);
///         v.iter().sum()
///     }
/// });
/// // Payloads always survive the faults; only retry:* phases record them.
/// assert_eq!(out.results[1], 8.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    drop_p: f64,
    dup_p: f64,
    delay_p: f64,
    delay_skew: f64,
    corrupt_p: f64,
    max_retries: u32,
    stall: Option<(usize, u64, f64)>,
    crash: Vec<(usize, u64)>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            delay_skew: 0.0,
            corrupt_p: 0.0,
            max_retries: 8,
            stall: None,
            crash: Vec::new(),
        }
    }

    /// Drop each transmission attempt with probability `p` (the sender
    /// retransmits; see [`retries`](FaultPlan::retries)).
    pub fn drop(mut self, p: f64) -> Self {
        self.drop_p = check_p(p);
        self
    }

    /// Deliver a stale duplicate of each message with probability `p`.
    pub fn duplicate(mut self, p: f64) -> Self {
        self.dup_p = check_p(p);
        self
    }

    /// Skew each message's arrival clock forward by `skew` model-time
    /// units with probability `p`.
    pub fn delay(mut self, p: f64, skew: f64) -> Self {
        assert!(skew >= 0.0, "delay skew must be non-negative");
        self.delay_p = check_p(p);
        self.delay_skew = skew;
        self
    }

    /// Corrupt the first delivered copy of each message with probability
    /// `p`; the receiver detects the bad checksum and consumes the
    /// retransmission instead.
    pub fn corrupt(mut self, p: f64) -> Self {
        self.corrupt_p = check_p(p);
        self
    }

    /// Bound the number of retransmissions per message (default 8). The
    /// final attempt always succeeds, so a drop plan can never livelock.
    pub fn retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Stall world rank `rank` for `clock` model-time units just before
    /// its `at_op`-th communication operation (1-based).
    pub fn stall_rank(mut self, rank: usize, at_op: u64, clock: f64) -> Self {
        assert!(clock >= 0.0, "stall clock must be non-negative");
        self.stall = Some((rank, at_op, clock));
        self
    }

    /// Crash world rank `rank` just before its `at_op`-th communication
    /// operation (1-based). The run aborts with
    /// [`MachineError::RankCrashed`](crate::MachineError::RankCrashed).
    /// May be called repeatedly to schedule crashes on several ranks;
    /// per run, whichever scheduled crash fires first wins.
    pub fn crash_rank(mut self, rank: usize, at_op: u64) -> Self {
        self.crash.push((rank, at_op));
        self
    }

    /// A copy of this plan with every crash scheduled for `rank`
    /// removed. Recovery drivers use this between attempts: the rank
    /// that crashed is gone from the shrunken world, so its fault must
    /// not re-fire against whichever survivor inherits the rank id.
    pub fn without_crashed(&self, rank: usize) -> Self {
        let mut plan = self.clone();
        plan.crash.retain(|&(r, _)| r != rank);
        plan
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether any per-message fault (drop/dup/delay/corrupt) is enabled —
    /// when false, the transport skips checksums and per-message draws.
    pub(crate) fn perturbs_messages(&self) -> bool {
        self.drop_p > 0.0 || self.dup_p > 0.0 || self.delay_p > 0.0 || self.corrupt_p > 0.0
    }

    /// Whether the plan targets whole ranks (stall/crash) — when false,
    /// the per-operation counters are not consulted.
    pub(crate) fn perturbs_ranks(&self) -> bool {
        self.stall.is_some() || !self.crash.is_empty()
    }

    /// Decide the faults for message `seq` on the `src → dst` link.
    /// Pure in `(seed, src, dst, seq)`; the draw order is fixed, so
    /// enabling one fault kind never re-randomizes another.
    pub(crate) fn decide(&self, src: usize, dst: usize, seq: u64) -> MessageFaults {
        if !self.perturbs_messages() {
            return MessageFaults::default();
        }
        let key = mix64(self.seed ^ mix64((src as u64) << 32 | dst as u64) ^ mix64(seq));
        let mut rng = DetRng::seed_from_u64(key);
        let mut f = MessageFaults::default();
        while f.drops < self.max_retries && rng.gen_f64() < self.drop_p {
            f.drops += 1;
        }
        f.duplicate = rng.gen_f64() < self.dup_p;
        f.corrupt = rng.gen_f64() < self.corrupt_p;
        if rng.gen_f64() < self.delay_p {
            f.delay = self.delay_skew;
        }
        f
    }

    /// Clock stall for `rank` at its `op`-th communication operation.
    pub(crate) fn stall_at(&self, rank: usize, op: u64) -> Option<f64> {
        match self.stall {
            Some((r, at, clock)) if r == rank && at == op => Some(clock),
            _ => None,
        }
    }

    /// Whether `rank` crashes at its `op`-th communication operation.
    pub(crate) fn crash_at(&self, rank: usize, op: u64) -> bool {
        self.crash.iter().any(|&(r, at)| r == rank && at == op)
    }
}

fn check_p(p: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "fault probability must be in [0, 1], got {p}"
    );
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_link_and_seq() {
        let plan = FaultPlan::seeded(7).drop(0.3).duplicate(0.2).corrupt(0.1);
        let a = plan.decide(0, 1, 5);
        let b = plan.decide(0, 1, 5);
        assert_eq!(a, b);
        // Different links / sequence numbers draw independently.
        let others = [plan.decide(1, 0, 5), plan.decide(0, 1, 6)];
        assert!(others.iter().any(|o| *o != a) || plan.decide(0, 1, 7) != a);
    }

    #[test]
    fn drops_are_bounded_by_retries() {
        let plan = FaultPlan::seeded(1).drop(1.0).retries(3);
        for seq in 0..64 {
            assert_eq!(plan.decide(0, 1, seq).drops, 3);
        }
    }

    #[test]
    fn no_faults_means_no_perturbation() {
        let plan = FaultPlan::seeded(9).crash_rank(1, 4);
        assert!(!plan.perturbs_messages());
        assert_eq!(plan.decide(0, 1, 0), MessageFaults::default());
        assert!(plan.crash_at(1, 4));
        assert!(!plan.crash_at(1, 3));
        assert!(!plan.crash_at(0, 4));
    }

    #[test]
    fn crashes_accumulate_and_unschedule_per_rank() {
        let plan = FaultPlan::seeded(9).crash_rank(1, 4).crash_rank(2, 7);
        assert!(plan.crash_at(1, 4));
        assert!(plan.crash_at(2, 7));
        let shrunk = plan.without_crashed(1);
        assert!(!shrunk.crash_at(1, 4));
        assert!(shrunk.crash_at(2, 7));
        assert!(shrunk.perturbs_ranks());
        assert!(!shrunk.without_crashed(2).perturbs_ranks());
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1]")]
    fn out_of_range_probability_rejected() {
        let _ = FaultPlan::seeded(0).drop(1.5);
    }
}
