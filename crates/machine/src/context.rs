//! Stackful coroutines for the event-driven engine.
//!
//! The event engine (see [`crate::engine`]) runs every simulated rank as a
//! resumable coroutine on one OS thread, so a rank can block deep inside a
//! receive (arbitrarily far down the user's SPMD closure) and hand control
//! back to the scheduler without unwinding. That requires a *stackful*
//! continuation: each rank gets its own call stack, and suspending is a
//! plain callee-saved context switch — no external crates, just two naked
//! functions per architecture (x86_64 SysV and AArch64 AAPCS64).
//!
//! The switch saves exactly what the respective ABI makes the callee
//! responsible for (x86_64: `rbp rbx r12–r15` + `rsp`; AArch64:
//! `x19–x28 x29 x30` + `d8–d15` + `sp`); everything else is caller-saved
//! and already spilled by the compiler around the `ctx_switch` call.
//!
//! Safety model:
//! * a coroutine is only ever resumed from the thread that created it, and
//!   only one coroutine per thread runs at a time (strict alternation with
//!   its scheduler), so no state is shared concurrently;
//! * panics unwind *inside* the coroutine's own stack and are caught at
//!   its outermost frame — unwinding never crosses the assembly frames;
//! * stacks carry a canary word at their low end, checked after every
//!   resume, so an overflow aborts loudly instead of corrupting a
//!   neighbouring allocation.
//!
//! Stacks are deliberately allocated below the glibc mmap threshold by
//! default (64 KiB), so a 10⁵-rank machine draws its stacks from the heap
//! arena instead of creating 10⁵ distinct mappings (the kernel caps a
//! process at `vm.max_map_count` mappings, typically 65530). Pages are
//! committed lazily, so an idle rank costs only the few KiB it actually
//! touches.

use std::alloc::{self, Layout};
use std::cell::Cell;

/// Whether this build has a context switch for the target architecture.
/// On unsupported targets the machine falls back to the threaded engine.
pub(crate) const SUPPORTED: bool = cfg!(any(target_arch = "x86_64", target_arch = "aarch64"));

/// Magic written at the lowest words of every coroutine stack and checked
/// after each resume.
const CANARY: u64 = 0xdead_5afe_57ac_ca11;

#[cfg(target_arch = "x86_64")]
mod arch {
    use std::arch::naked_asm;

    /// Save the callee-saved state on the current stack, store the stack
    /// pointer to `*save`, and resume from the stack pointer in
    /// `*restore`. Returns (into the restored context) when some other
    /// context switches back.
    #[unsafe(naked)]
    pub(super) unsafe extern "sysv64" fn ctx_switch(_save: *mut usize, _restore: *const usize) {
        naked_asm!(
            "push rbp",
            "push rbx",
            "push r12",
            "push r13",
            "push r14",
            "push r15",
            "mov [rdi], rsp",
            "mov rsp, [rsi]",
            "pop r15",
            "pop r14",
            "pop r13",
            "pop r12",
            "pop rbx",
            "pop rbp",
            "ret",
        )
    }

    /// First frame of every coroutine: `prepare` plants this as the `ret`
    /// target of the initial `ctx_switch`, with the bootstrap argument in
    /// the restored `r12`. Realigns the stack and calls the Rust entry
    /// (which never returns; the trailing `ud2` enforces that).
    #[unsafe(naked)]
    unsafe extern "sysv64" fn trampoline() {
        naked_asm!(
            "mov rdi, r12",
            "and rsp, -16",
            "call {entry}",
            "ud2",
            entry = sym super::coroutine_entry,
        )
    }

    /// Lay out the bootstrap frame below `top` (16-aligned) so the first
    /// `ctx_switch` into it pops zeros into the callee-saved registers
    /// (except `r12` = `arg`) and returns into `trampoline`.
    pub(super) unsafe fn prepare(top: *mut usize, arg: *mut u8) -> usize {
        unsafe {
            let mut sp = top;
            sp = sp.sub(1);
            *sp = trampoline as *const () as usize; // ret target
            sp = sp.sub(1);
            *sp = 0; // rbp
            sp = sp.sub(1);
            *sp = 0; // rbx
            sp = sp.sub(1);
            *sp = arg as usize; // r12 — bootstrap argument
            sp = sp.sub(1);
            *sp = 0; // r13
            sp = sp.sub(1);
            *sp = 0; // r14
            sp = sp.sub(1);
            *sp = 0; // r15
            sp as usize
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod arch {
    use std::arch::naked_asm;

    /// AArch64 twin of the x86_64 switch: saves `x19–x28`, the frame
    /// pointer/link register pair, and the low halves of `v8–v15` (the
    /// callee-saved SIMD state), swaps `sp`, and returns via the restored
    /// `x30`.
    #[unsafe(naked)]
    pub(super) unsafe extern "C" fn ctx_switch(_save: *mut usize, _restore: *const usize) {
        naked_asm!(
            "sub sp, sp, #160",
            "stp x19, x20, [sp, #0]",
            "stp x21, x22, [sp, #16]",
            "stp x23, x24, [sp, #32]",
            "stp x25, x26, [sp, #48]",
            "stp x27, x28, [sp, #64]",
            "stp x29, x30, [sp, #80]",
            "stp d8, d9, [sp, #96]",
            "stp d10, d11, [sp, #112]",
            "stp d12, d13, [sp, #128]",
            "stp d14, d15, [sp, #144]",
            "mov x9, sp",
            "str x9, [x0]",
            "ldr x9, [x1]",
            "mov sp, x9",
            "ldp x19, x20, [sp, #0]",
            "ldp x21, x22, [sp, #16]",
            "ldp x23, x24, [sp, #32]",
            "ldp x25, x26, [sp, #48]",
            "ldp x27, x28, [sp, #64]",
            "ldp x29, x30, [sp, #80]",
            "ldp d8, d9, [sp, #96]",
            "ldp d10, d11, [sp, #112]",
            "ldp d12, d13, [sp, #128]",
            "ldp d14, d15, [sp, #144]",
            "add sp, sp, #160",
            "ret",
        )
    }

    /// First frame: the bootstrap argument travels in the restored `x19`.
    #[unsafe(naked)]
    unsafe extern "C" fn trampoline() {
        naked_asm!(
            "mov x0, x19",
            "bl {entry}",
            "brk #0x1",
            entry = sym super::coroutine_entry,
        )
    }

    /// One 160-byte register frame below `top`: `x19` slot = `arg`, `x30`
    /// (link register) slot = `trampoline`, everything else zero. After
    /// the restoring `ctx_switch` pops it, `sp == top` (16-aligned, as
    /// AArch64 requires at all times).
    pub(super) unsafe fn prepare(top: *mut usize, arg: *mut u8) -> usize {
        unsafe {
            let sp = (top as *mut u8).sub(160) as *mut usize;
            std::ptr::write_bytes(sp, 0, 20);
            *sp = arg as usize; // x19 — bootstrap argument
            *sp.add(11) = trampoline as usize; // x30 — ret target
            sp as usize
        }
    }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
mod arch {
    /// Stub for unsupported targets; never called because
    /// [`super::SUPPORTED`] is false and the machine stays on the
    /// threaded engine.
    pub(super) unsafe extern "C" fn ctx_switch(_save: *mut usize, _restore: *const usize) {
        unreachable!("context switch on unsupported architecture")
    }

    pub(super) unsafe fn prepare(_top: *mut usize, _arg: *mut u8) -> usize {
        unreachable!("coroutine bootstrap on unsupported architecture")
    }
}

/// A heap-allocated coroutine stack with a canary at its low end.
struct Stack {
    ptr: *mut u8,
    layout: Layout,
}

impl Stack {
    fn new(size: usize) -> Stack {
        let size = size.max(16 * 1024) & !15;
        let layout = Layout::from_size_align(size, 16).expect("stack layout");
        let ptr = unsafe { alloc::alloc(layout) };
        if ptr.is_null() {
            alloc::handle_alloc_error(layout);
        }
        unsafe { (ptr as *mut u64).write(CANARY) };
        Stack { ptr, layout }
    }

    /// One past the highest usable word (stacks grow downward).
    fn top(&self) -> *mut usize {
        unsafe { self.ptr.add(self.layout.size()) as *mut usize }
    }

    fn canary_intact(&self) -> bool {
        unsafe { (self.ptr as *const u64).read() == CANARY }
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        unsafe { alloc::dealloc(self.ptr, self.layout) };
    }
}

/// Outcome of one [`Coroutine::resume`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    /// The coroutine suspended at a blocking point ([`yield_now`]).
    Yielded,
    /// The coroutine's closure ran to completion (or unwound into the
    /// entry's catch); it must not be resumed again.
    Complete,
}

/// Shared switch state between a coroutine and its scheduler. Boxed so
/// its address is stable while both sides hold raw pointers to it.
struct Inner {
    /// Scheduler-side stack pointer, live while the coroutine runs.
    sched_sp: usize,
    /// Coroutine-side stack pointer, live while it is suspended.
    coro_sp: usize,
    done: bool,
    /// The rank body; taken by `coroutine_entry` on first resume.
    closure: Option<Box<dyn FnOnce()>>,
}

thread_local! {
    /// The coroutine currently running on this thread (null in scheduler
    /// context). A stack of one: nested machines save and restore it
    /// around their own resumes.
    static CURRENT: Cell<*mut Inner> = const { Cell::new(std::ptr::null_mut()) };
}

/// Rust-side first frame of every coroutine, called by the architecture
/// trampoline on the coroutine's own stack. Runs the closure and switches
/// back to the scheduler for the last time.
extern "C" fn coroutine_entry(inner: *mut Inner) -> ! {
    {
        let closure = unsafe { (*inner).closure.take().expect("coroutine entered twice") };
        // The closure is expected to contain its own catch_unwind (the
        // engine wraps rank bodies exactly like the threaded runner's
        // thread bodies). A panic escaping it cannot unwind across the
        // assembly frames below, so it is a hard abort.
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(closure)).is_err() {
            eprintln!("fatal: panic escaped a simulated rank's outermost frame");
            std::process::abort();
        }
    }
    unsafe {
        (*inner).done = true;
        arch::ctx_switch(&mut (*inner).coro_sp, &(*inner).sched_sp);
    }
    // The scheduler never resumes a completed coroutine.
    std::process::abort();
}

/// A suspended rank: its private stack plus the saved switch state.
pub(crate) struct Coroutine {
    stack: Stack,
    inner: Box<Inner>,
    started: bool,
}

impl Coroutine {
    /// Create a coroutine that will run `closure` on a fresh stack of
    /// `stack_bytes` when first resumed. The closure must not unwind (wrap
    /// rank bodies in `catch_unwind`).
    pub(crate) fn new(stack_bytes: usize, closure: Box<dyn FnOnce()>) -> Coroutine {
        // SUPPORTED is a per-target const; the assert is a deliberate
        // runtime guard so unsupported targets still compile and can use
        // the threaded engine.
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(SUPPORTED, "stackful coroutines unsupported on this target");
        }
        Coroutine {
            stack: Stack::new(stack_bytes),
            inner: Box::new(Inner {
                sched_sp: 0,
                coro_sp: 0,
                done: false,
                closure: Some(closure),
            }),
            started: false,
        }
    }

    /// Whether the coroutine has run to completion.
    pub(crate) fn is_done(&self) -> bool {
        self.inner.done
    }

    /// Run the coroutine until it yields or completes. Must only be
    /// called from scheduler context (not from inside another resume of
    /// the same coroutine) and never after it completed.
    pub(crate) fn resume(&mut self) -> Status {
        assert!(!self.inner.done, "resume of a completed coroutine");
        let inner: *mut Inner = &mut *self.inner;
        if !self.started {
            self.started = true;
            self.inner.coro_sp = unsafe { arch::prepare(self.stack.top(), inner as *mut u8) };
        }
        let prev = CURRENT.with(|c| c.replace(inner));
        unsafe { arch::ctx_switch(&mut (*inner).sched_sp, &(*inner).coro_sp) };
        CURRENT.with(|c| c.set(prev));
        assert!(
            self.stack.canary_intact(),
            "a simulated rank overflowed its coroutine stack; raise it with \
             SYRK_MACHINE_STACK_KB or Machine::with_rank_stack"
        );
        if self.inner.done {
            Status::Complete
        } else {
            Status::Yielded
        }
    }
}

/// Suspend the coroutine currently running on this thread, returning
/// control to its scheduler. Returns when the scheduler resumes it.
///
/// Panics when called outside a coroutine — blocking receives only reach
/// this through the event engine, which always runs ranks as coroutines.
pub(crate) fn yield_now() {
    let inner = CURRENT.with(|c| c.get());
    assert!(
        !inner.is_null(),
        "yield_now outside a coroutine (event-engine receive on a non-event machine?)"
    );
    unsafe { arch::ctx_switch(&mut (*inner).coro_sp, &(*inner).sched_sp) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_to_completion_without_yield() {
        let hit = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hit);
        let mut co = Coroutine::new(
            64 * 1024,
            Box::new(move || {
                h.store(7, Ordering::SeqCst);
            }),
        );
        assert_eq!(co.resume(), Status::Complete);
        assert!(co.is_done());
        assert_eq!(hit.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn yield_suspends_and_resume_continues() {
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        let l = Rc::clone(&log);
        let mut co = Coroutine::new(
            64 * 1024,
            Box::new(move || {
                l.borrow_mut().push(1);
                yield_now();
                l.borrow_mut().push(2);
                yield_now();
                l.borrow_mut().push(3);
            }),
        );
        assert_eq!(co.resume(), Status::Yielded);
        assert_eq!(*log.borrow(), [1]);
        assert_eq!(co.resume(), Status::Yielded);
        assert_eq!(*log.borrow(), [1, 2]);
        assert_eq!(co.resume(), Status::Complete);
        assert_eq!(*log.borrow(), [1, 2, 3]);
    }

    #[test]
    fn interleaves_many_coroutines() {
        // Round-robin 8 counters; each increments its slot 100 times with
        // a yield between increments. Deep interleaving must preserve
        // per-coroutine program order and isolation.
        let counts = Arc::new((0..8).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
        let mut cos: Vec<Coroutine> = (0..8)
            .map(|i| {
                let counts = Arc::clone(&counts);
                Coroutine::new(
                    64 * 1024,
                    Box::new(move || {
                        for _ in 0..100 {
                            counts[i].fetch_add(1, Ordering::SeqCst);
                            yield_now();
                        }
                    }),
                )
            })
            .collect();
        let mut live = cos.len();
        while live > 0 {
            for co in cos.iter_mut() {
                if !co.is_done() && co.resume() == Status::Complete {
                    live -= 1;
                }
            }
        }
        for c in counts.iter() {
            assert_eq!(c.load(Ordering::SeqCst), 100);
        }
    }

    #[test]
    fn panic_inside_closure_is_caught_by_wrapper() {
        // Engine-style wrapper: catch_unwind inside the coroutine.
        let caught = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&caught);
        let mut co = Coroutine::new(
            64 * 1024,
            Box::new(move || {
                let r = std::panic::catch_unwind(|| panic!("boom"));
                if r.is_err() {
                    c.store(1, Ordering::SeqCst);
                }
            }),
        );
        assert_eq!(co.resume(), Status::Complete);
        assert_eq!(caught.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn float_state_survives_switches() {
        // Callee-saved FP registers (d8–d15 on AArch64) must round-trip
        // through a yield; accumulate in a way the compiler keeps in
        // registers across the call.
        let out = Arc::new(Mutexed(std::sync::Mutex::new(0.0f64)));
        let o = Arc::clone(&out);
        let mut co = Coroutine::new(
            64 * 1024,
            Box::new(move || {
                let mut acc = 1.5f64;
                for i in 0..10 {
                    acc = acc.mul_add(1.25, i as f64);
                    yield_now();
                }
                *o.0.lock().unwrap() = acc;
            }),
        );
        let mut reference = 1.5f64;
        for i in 0..10 {
            reference = reference.mul_add(1.25, i as f64);
        }
        while co.resume() != Status::Complete {}
        assert_eq!(*out.0.lock().unwrap(), reference);
    }

    struct Mutexed(std::sync::Mutex<f64>);
}
