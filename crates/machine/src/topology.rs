//! Logical process grids over a communicator.

use crate::comm::Comm;

/// A logical `p1 × p2` grid over `P = p1·p2` ranks, as used by the 3D SYRK
/// algorithm (§5.3): rank `(k, ℓ)` has grid row `k ∈ [0, p1)` and grid
/// column `ℓ ∈ [0, p2)`. The world rank is `k + ℓ·p1` (column-major), so a
/// *slice* `Π_{*ℓ}` (fixed ℓ) is a contiguous block of ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessGrid {
    /// Number of grid rows (the dimension indexed by `k`).
    pub p1: usize,
    /// Number of grid columns (the dimension indexed by `ℓ`).
    pub p2: usize,
}

impl ProcessGrid {
    /// Create a grid; `p1·p2` must equal the communicator size it is used
    /// with (checked at [`ProcessGrid::split`] time).
    pub fn new(p1: usize, p2: usize) -> Self {
        assert!(p1 >= 1 && p2 >= 1, "grid dimensions must be positive");
        ProcessGrid { p1, p2 }
    }

    /// Total number of ranks in the grid.
    pub fn size(&self) -> usize {
        self.p1 * self.p2
    }

    /// Grid coordinates `(k, ℓ)` of a world rank.
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        assert!(rank < self.size());
        (rank % self.p1, rank / self.p1)
    }

    /// World rank of grid coordinates `(k, ℓ)`.
    pub fn rank_of(&self, k: usize, l: usize) -> usize {
        assert!(k < self.p1 && l < self.p2);
        k + l * self.p1
    }

    /// Collectively split `comm` into this grid's communicators.
    ///
    /// Returns `(k, ℓ, slice, row)` where `slice` spans `Π_{*ℓ}` (the p1
    /// ranks sharing this rank's grid column ℓ — the "processor slice" that
    /// runs the 2D algorithm in Alg. 3) and `row` spans `Π_{k*}` (the p2
    /// ranks sharing grid row k — the reduction set in Alg. 3 line 5).
    pub fn split(&self, comm: &mut Comm) -> GridComms {
        assert_eq!(
            comm.size(),
            self.size(),
            "grid {}x{} does not tile a communicator of size {}",
            self.p1,
            self.p2,
            comm.size()
        );
        let (k, l) = self.coords(comm.rank());
        let slice = comm.split(l as u64, k);
        let row = comm.split(k as u64, l);
        debug_assert_eq!(slice.size(), self.p1);
        debug_assert_eq!(row.size(), self.p2);
        debug_assert_eq!(slice.rank(), k);
        debug_assert_eq!(row.rank(), l);
        GridComms { k, l, slice, row }
    }
}

/// The communicators a rank participates in on a [`ProcessGrid`].
pub struct GridComms {
    /// Grid row index `k ∈ [0, p1)`.
    pub k: usize,
    /// Grid column index `ℓ ∈ [0, p2)`.
    pub l: usize,
    /// Communicator over `Π_{*ℓ}`: all p1 ranks with the same ℓ.
    pub slice: Comm,
    /// Communicator over `Π_{k*}`: all p2 ranks with the same k.
    pub row: Comm,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    #[test]
    fn coords_roundtrip() {
        let g = ProcessGrid::new(3, 4);
        for r in 0..12 {
            let (k, l) = g.coords(r);
            assert_eq!(g.rank_of(k, l), r);
        }
        assert_eq!(g.coords(0), (0, 0));
        assert_eq!(g.coords(1), (1, 0)); // column-major: ranks advance down a slice
        assert_eq!(g.coords(3), (0, 1));
    }

    #[test]
    fn split_builds_slice_and_row_comms() {
        let g = ProcessGrid::new(2, 3);
        let out = Machine::new(6).run(|mut comm| {
            let gc = g.split(&mut comm);
            // Sum ranks within the slice: slices are {0,1}, {2,3}, {4,5}.
            let s = gc.slice.all_reduce(&[comm.rank() as f64]);
            // Sum ranks within the row: rows are {0,2,4} and {1,3,5}.
            let r = gc.row.all_reduce(&[comm.rank() as f64]);
            (gc.k, gc.l, s[0], r[0])
        });
        assert_eq!(out.results[0], (0, 0, 1.0, 6.0));
        assert_eq!(out.results[3], (1, 1, 5.0, 9.0));
        assert_eq!(out.results[4], (0, 2, 9.0, 6.0));
    }

    #[test]
    #[should_panic(expected = "does not tile")]
    fn wrong_grid_size_panics() {
        Machine::new(5).run(|mut comm| {
            ProcessGrid::new(2, 2).split(&mut comm);
        });
    }
}
