//! # syrk-machine — a simulated α-β-γ distributed-memory machine
//!
//! This crate is the parallel-machine substrate for the SPAA '23 paper
//! *Parallel Memory-Independent Communication Bounds for SYRK*
//! (Al Daas, Ballard, Grigori, Kumar, Rouse). The paper analyses
//! algorithms in the MPI / α-β-γ model (§3.2):
//!
//! * `P` processors, each with its own local memory,
//! * a fully connected network with bidirectional links,
//! * a message of `w` words costs `α + β·w`; a flop costs `γ`,
//! * collectives (`All-to-All`, `Reduce-Scatter`) use pairwise-exchange
//!   algorithms with latency `P − 1` and bandwidth `(1 − 1/P)·w`.
//!
//! [`Machine::run`] executes an SPMD closure on every rank — by default
//! as cooperatively scheduled coroutines on a deterministic discrete-event
//! loop (scaling to 10⁵ ranks in one process), or with one OS thread per
//! rank (`SYRK_MACHINE_ENGINE=threaded`); ranks communicate through
//! [`Comm`] (typed point-to-point, MPI-style collectives,
//! sub-communicators). All data movement is *real* — the
//! algorithms built on top compute actual numerical results — and every
//! word is metered, so measured communication can be compared directly
//! against the paper's lower bounds.
//!
//! ```
//! use syrk_machine::Machine;
//!
//! let out = Machine::new(3).run(|comm| {
//!     let blocks: Vec<Vec<f64>> = (0..comm.size())
//!         .map(|q| vec![(comm.rank() * 10 + q) as f64])
//!         .collect();
//!     let recv = comm.all_to_all(blocks);
//!     recv.iter().map(|b| b[0]).sum::<f64>()
//! });
//! // Rank 1 receives 01, 11, 21.
//! assert_eq!(out.results[1], 1.0 + 11.0 + 21.0);
//! assert_eq!(out.cost.max_words_sent(), 2); // (1 - 1/P)·w with w = 3
//! ```

#![warn(missing_docs)]

mod collectives;
mod comm;
mod context;
mod cost;
pub mod dump;
mod engine;
mod envelope;
mod error;
pub mod export;
mod fault;
mod machine;
mod metrics;
mod sync;
mod topology;
mod trace;

/// Re-export of the workspace telemetry crate: the metrics registry,
/// the wall-clock flight recorder, and their exporters. The machine's
/// counters (`syrk_coll_*`, `syrk_fault_*`, `syrk_retry_*`) land on this
/// registry; `telemetry::flight::enable()` turns on wall-clock recording
/// for [`chrome_trace_json_with_wall`] and failure dumps.
pub use syrk_telemetry as telemetry;

pub use collectives::{CollectiveAlg, ReduceScatterAlg};
pub use comm::{
    Comm, PhaseScope, HEARTBEAT_TIMEOUT_PROBES, RECOVER_AGREE_PHASE, RECOVER_BACKOFF_PHASE,
    RECOVER_DETECT_PHASE, RECOVER_REDISTRIBUTE_PHASE, RETRY_CORRUPT_PHASE, RETRY_DROP_PHASE,
    RETRY_DUP_PHASE, RETRY_STALL_PHASE,
};
pub use cost::{CostModel, CostReport, PhaseCost, PhaseRow, PhaseTable, RankCost, UNTAGGED_PHASE};
pub use dump::{
    failure_dump_string, scoped_failure_dump_path, set_failure_dump_path, write_failure_dump,
    ScopedFailureDumpGuard,
};
pub use envelope::Payload;
pub use error::{DeadlockInfo, MachineError, WaitEdge};
pub use export::{chrome_trace_json, chrome_trace_json_with_wall, timelines_csv};
pub use fault::FaultPlan;
pub use machine::{force_engine, EngineKind, ForcedEngineGuard, Machine, RunOutput};
pub use topology::{GridComms, ProcessGrid};
pub use trace::{Event, EventKind, Timeline};
