//! Per-collective telemetry: invocation counters and payload-size
//! histograms on the process registry.
//!
//! Each collective entry point records one call and observes its
//! per-rank input payload size in words (the `w` of the paper's
//! `(1 − 1/P)·w` bandwidth terms), so a long-running process can see
//! both how often each collective runs and the distribution of message
//! sizes it is being asked to move. Names follow the
//! `syrk_coll_<op>_calls` / `syrk_coll_<op>_payload_words` scheme.

use syrk_telemetry::{LazyCounter, LazyHistogram};

/// One collective's call counter and payload-size histogram.
pub(crate) struct CollMetrics {
    calls: LazyCounter,
    payload_words: LazyHistogram,
}

impl CollMetrics {
    const fn new(calls: &'static str, payload_words: &'static str) -> Self {
        CollMetrics {
            calls: LazyCounter::new(calls),
            payload_words: LazyHistogram::new(payload_words),
        }
    }

    /// Record one invocation with a per-rank input payload of `words`
    /// words.
    pub(crate) fn record(&self, words: usize) {
        self.calls.inc();
        self.payload_words.observe(words as u64);
    }
}

pub(crate) static ALL_GATHER: CollMetrics = CollMetrics::new(
    "syrk_coll_all_gather_calls",
    "syrk_coll_all_gather_payload_words",
);
pub(crate) static ALL_REDUCE: CollMetrics = CollMetrics::new(
    "syrk_coll_all_reduce_calls",
    "syrk_coll_all_reduce_payload_words",
);
pub(crate) static ALL_TO_ALL: CollMetrics = CollMetrics::new(
    "syrk_coll_all_to_all_calls",
    "syrk_coll_all_to_all_payload_words",
);
pub(crate) static BARRIER: CollMetrics =
    CollMetrics::new("syrk_coll_barrier_calls", "syrk_coll_barrier_payload_words");
pub(crate) static BCAST: CollMetrics =
    CollMetrics::new("syrk_coll_bcast_calls", "syrk_coll_bcast_payload_words");
pub(crate) static GATHER: CollMetrics =
    CollMetrics::new("syrk_coll_gather_calls", "syrk_coll_gather_payload_words");
pub(crate) static SCATTER: CollMetrics =
    CollMetrics::new("syrk_coll_scatter_calls", "syrk_coll_scatter_payload_words");
pub(crate) static REDUCE: CollMetrics =
    CollMetrics::new("syrk_coll_reduce_calls", "syrk_coll_reduce_payload_words");
pub(crate) static REDUCE_SCATTER: CollMetrics = CollMetrics::new(
    "syrk_coll_reduce_scatter_calls",
    "syrk_coll_reduce_scatter_payload_words",
);
pub(crate) static AGREE: CollMetrics =
    CollMetrics::new("syrk_coll_agree_calls", "syrk_coll_agree_payload_words");

#[cfg(test)]
mod tests {
    use crate::machine::Machine;
    use syrk_telemetry::registry;

    #[test]
    fn collectives_meter_calls_and_payloads() {
        let snap0 = registry::snapshot();
        let calls0 = snap0.counter("syrk_coll_all_gather_calls").unwrap_or(0);
        let p = 4usize;
        Machine::new(p).run(|comm| {
            comm.all_gather(vec![comm.rank() as f64; 5]);
        });
        let snap = registry::snapshot();
        // Every rank records its own invocation.
        assert!(snap.counter("syrk_coll_all_gather_calls").unwrap() >= calls0 + p as u64);
        let (count, sum) = snap
            .histogram("syrk_coll_all_gather_payload_words")
            .unwrap();
        assert!(count >= p as u64);
        assert!(sum >= (p * 5) as u64);
    }
}
