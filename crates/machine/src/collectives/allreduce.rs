//! All-Reduce = Reduce-Scatter + All-Gather (Rabenseifner's scheme),
//! which is bandwidth-optimal at `2(1 − 1/P)·w` words per rank.

use crate::comm::Comm;
use crate::error::MachineError;

impl Comm {
    /// Element-wise sum of every rank's `data`, delivered to every rank.
    /// All ranks must pass equal-length buffers.
    pub fn all_reduce(&self, data: &[f64]) -> Vec<f64> {
        self.try_all_reduce(data).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`all_reduce`](Comm::all_reduce): transport
    /// failures surface as [`MachineError`] instead of panicking.
    #[must_use = "the Result carries transport failures that must be handled"]
    pub fn try_all_reduce(&self, data: &[f64]) -> Result<Vec<f64>, MachineError> {
        crate::metrics::ALL_REDUCE.record(data.len());
        let _span = self.collective_phase("coll:all-reduce");
        let p = self.size();
        if p == 1 {
            return Ok(data.to_vec());
        }
        // Split the buffer into P near-even segments, reduce-scatter them,
        // then all-gather the reduced segments back together.
        let n = data.len();
        let base = n / p;
        let extra = n % p;
        let counts: Vec<usize> = (0..p).map(|q| base + usize::from(q < extra)).collect();
        let mine = self.try_reduce_scatter_block(data, &counts)?;
        self.try_all_gather_concat(mine)
    }
}

#[cfg(test)]
mod tests {
    use crate::machine::Machine;

    #[test]
    fn all_reduce_sums_everywhere() {
        for p in [1, 2, 3, 5, 8] {
            for n in [0, 1, 3, 17] {
                let out = Machine::new(p).run(|comm| {
                    let data: Vec<f64> = (0..n).map(|i| (comm.rank() * n + i) as f64).collect();
                    comm.all_reduce(&data)
                });
                for res in &out.results {
                    for (i, &x) in res.iter().enumerate() {
                        let expected: f64 = (0..p).map(|r| (r * n + i) as f64).sum();
                        assert_eq!(x, expected, "P={p} n={n} i={i}");
                    }
                }
            }
        }
    }

    #[test]
    fn bandwidth_is_twice_reduce_scatter() {
        let (p, n) = (4, 100);
        let out = Machine::new(p).run(|comm| {
            comm.all_reduce(&vec![1.0; n]);
        });
        // 2·(1 − 1/P)·n = 2 · 75 = 150 words per rank.
        for r in &out.cost.ranks {
            assert_eq!(r.words_sent, (2 * (n - n / p)) as u64);
        }
    }
}
