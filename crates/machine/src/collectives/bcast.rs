//! Broadcast via a binomial tree.

use crate::collectives::TAG_BCAST;
use crate::comm::Comm;
use crate::error::MachineError;

impl Comm {
    /// Broadcast `data` from `root` to every rank using a binomial tree:
    /// `⌈log₂ P⌉` rounds; every rank receives the buffer once and forwards
    /// it to at most `⌈log₂ P⌉` children.
    ///
    /// Only `root` needs to supply `Some(data)`; other ranks pass `None`.
    pub fn broadcast(&self, root: usize, data: Option<Vec<f64>>) -> Vec<f64> {
        self.try_broadcast(root, data)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`broadcast`](Comm::broadcast): transport failures
    /// surface as [`MachineError`] instead of panicking. Passing `None` on
    /// the root remains a programmer error and still panics.
    #[must_use = "the Result carries transport failures that must be handled"]
    pub fn try_broadcast(
        &self,
        root: usize,
        data: Option<Vec<f64>>,
    ) -> Result<Vec<f64>, MachineError> {
        crate::metrics::BCAST.record(data.as_ref().map_or(0, Vec::len));
        let _span = self.collective_phase("coll:bcast");
        let p = self.size();
        let me = self.rank();
        assert!(root < p, "broadcast root {root} out of range");
        // Rotate so the root is virtual rank 0 (binomial tree on vranks).
        let vrank = (me + p - root) % p;
        let to_real = |v: usize| (v + root) % p;

        // Climb the mask until finding the bit where we receive.
        let mut mask = 1usize;
        let mut buf = data;
        while mask < p {
            if vrank & mask != 0 {
                let parent = to_real(vrank - mask);
                debug_assert!(buf.is_none(), "non-root ranks must pass None");
                buf = Some(self.try_recv(parent, TAG_BCAST)?);
                break;
            }
            mask <<= 1;
        }
        let buf = buf.expect("root must provide the broadcast data");

        // Forward to children at decreasing masks.
        mask >>= 1;
        while mask > 0 {
            if vrank + mask < p {
                self.try_send(to_real(vrank + mask), TAG_BCAST, buf.clone())?;
            }
            mask >>= 1;
        }
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use crate::machine::Machine;

    #[test]
    fn broadcast_reaches_all_ranks_any_root() {
        for p in [1, 2, 3, 5, 8, 13] {
            for root in [0, p / 2, p - 1] {
                let out = Machine::new(p).run(|comm| {
                    let data = (comm.rank() == root).then(|| vec![3.25, -1.0, root as f64]);
                    comm.broadcast(root, data)
                });
                for res in &out.results {
                    assert_eq!(res, &vec![3.25, -1.0, root as f64], "P={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn latency_is_logarithmic() {
        let p = 16;
        let out = Machine::new(p).run(|comm| {
            comm.broadcast(0, (comm.rank() == 0).then(|| vec![1.0; 8]));
        });
        // Root sends log2(16) = 4 messages; no rank sends more.
        assert_eq!(out.cost.max_messages(), 4);
        assert_eq!(out.cost.ranks[0].msgs_sent, 4);
        // Total transfers: every non-root rank receives exactly once.
        assert_eq!(out.cost.total_words(), ((p - 1) * 8) as u64);
    }

    #[test]
    #[should_panic(expected = "root must provide")]
    fn missing_root_data_panics() {
        Machine::new(2).run(|comm| {
            let _ = comm.broadcast(0, None);
        });
    }
}
