//! Reduce (element-wise sum to a root) via a binomial tree.

use crate::collectives::TAG_REDUCE;
use crate::comm::Comm;
use crate::error::MachineError;

impl Comm {
    /// Element-wise sum of every rank's `data` delivered to `root`.
    /// Binomial tree: `⌈log₂ P⌉` rounds; returns `Some(sum)` on the root
    /// and `None` elsewhere. All ranks must pass equal-length buffers.
    pub fn reduce(&self, root: usize, data: &[f64]) -> Option<Vec<f64>> {
        self.try_reduce(root, data)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`reduce`](Comm::reduce): transport failures
    /// surface as [`MachineError`] instead of panicking.
    #[must_use = "the Result carries transport failures that must be handled"]
    pub fn try_reduce(&self, root: usize, data: &[f64]) -> Result<Option<Vec<f64>>, MachineError> {
        crate::metrics::REDUCE.record(data.len());
        let _span = self.collective_phase("coll:reduce");
        let p = self.size();
        let me = self.rank();
        assert!(root < p, "reduce root {root} out of range");
        let vrank = (me + p - root) % p;
        let to_real = |v: usize| (v + root) % p;
        let mut acc = data.to_vec();

        // Mirror image of the binomial broadcast: absorb children at
        // increasing masks, then send to the parent at the first set bit.
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                let parent = to_real(vrank - mask);
                self.try_send(parent, TAG_REDUCE, acc)?;
                return Ok(None);
            }
            let child_v = vrank + mask;
            if child_v < p {
                let inc: Vec<f64> = self.try_recv(to_real(child_v), TAG_REDUCE)?;
                assert_eq!(
                    inc.len(),
                    acc.len(),
                    "reduce buffers must have equal length"
                );
                for (a, b) in acc.iter_mut().zip(&inc) {
                    *a += b;
                }
                self.add_flops(acc.len() as u64);
            }
            mask <<= 1;
        }
        Ok(Some(acc))
    }
}

#[cfg(test)]
mod tests {
    use crate::machine::Machine;

    #[test]
    fn reduce_sums_to_root_any_root() {
        for p in [1, 2, 3, 6, 9, 16] {
            for root in [0, p - 1] {
                let out = Machine::new(p).run(|comm| {
                    let data = vec![comm.rank() as f64, 1.0];
                    comm.reduce(root, &data)
                });
                let expected: f64 = (0..p).map(|r| r as f64).sum();
                for (r, res) in out.results.iter().enumerate() {
                    if r == root {
                        assert_eq!(res.as_ref().unwrap(), &vec![expected, p as f64]);
                    } else {
                        assert!(res.is_none(), "P={p} root={root} rank {r}");
                    }
                }
            }
        }
    }

    #[test]
    fn every_nonroot_sends_exactly_once() {
        let p = 8;
        let out = Machine::new(p).run(|comm| {
            comm.reduce(0, &[1.0; 5]);
        });
        for (r, c) in out.cost.ranks.iter().enumerate() {
            assert_eq!(c.msgs_sent, u64::from(r != 0));
        }
        // Flops: P−1 partial-sum merges of 5 elements across the tree.
        assert_eq!(out.cost.total_flops(), ((p - 1) * 5) as u64);
    }
}
