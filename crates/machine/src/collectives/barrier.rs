//! Dissemination barrier.

use crate::collectives::TAG_BARRIER;
use crate::comm::Comm;
use crate::error::MachineError;

impl Comm {
    /// Synchronize all ranks: no rank returns before every rank has
    /// entered. Dissemination algorithm: `⌈log₂ P⌉` rounds of zero-word
    /// exchanges, so only latency is charged.
    pub fn barrier(&self) {
        self.try_barrier().unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible form of [`barrier`](Comm::barrier): transport failures
    /// surface as [`MachineError`] instead of panicking.
    #[must_use = "the Result carries transport failures that must be handled"]
    pub fn try_barrier(&self) -> Result<(), MachineError> {
        crate::metrics::BARRIER.record(0);
        let _span = self.collective_phase("coll:barrier");
        let p = self.size();
        let me = self.rank();
        let mut k = 1usize;
        while k < p {
            let dst = (me + k) % p;
            let src = (me + p - k) % p;
            let _: () = self.try_exchange(dst, (), src, TAG_BARRIER)?;
            k <<= 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::machine::Machine;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn barrier_separates_phases() {
        // Every rank increments before the barrier; after the barrier all
        // ranks must observe the full count.
        let p = 8;
        let counter = AtomicUsize::new(0);
        let out = Machine::new(p).run(|comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            counter.load(Ordering::SeqCst)
        });
        assert!(out.results.iter().all(|&c| c == p));
    }

    #[test]
    fn barrier_charges_no_bandwidth() {
        let out = Machine::new(16).run(|comm| comm.barrier());
        assert_eq!(out.cost.total_words(), 0);
        // Dissemination: log2(16) = 4 rounds.
        assert_eq!(out.cost.max_messages(), 4);
    }

    #[test]
    fn barrier_on_single_rank_is_noop() {
        let out = Machine::new(1).run(|comm| comm.barrier());
        assert_eq!(out.cost.total_words(), 0);
        assert_eq!(out.cost.max_messages(), 0);
    }
}
