//! Reduce-Scatter: element-wise sum across ranks, result scattered.
//!
//! Three algorithms (the §6 latency discussion made executable):
//!
//! | algorithm          | latency       | bandwidth            | restriction |
//! |--------------------|---------------|----------------------|-------------|
//! | pairwise exchange  | `P − 1`       | `(1 − 1/P)·w`        | none        |
//! | recursive halving  | `log₂ P`      | `(1 − 1/P)·w`        | `P = 2^k`   |
//! | reduce + scatter   | `log₂ P` tree + `P−1` root sends | up to `w·log₂ P` at the root | none |

use crate::collectives::TAG_REDUCE_SCATTER;
use crate::comm::Comm;
use crate::error::MachineError;

/// Algorithm selector for [`Comm::reduce_scatter_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReduceScatterAlg {
    /// `P − 1` rounds, bandwidth-optimal — the paper's §3.2 assumption.
    #[default]
    PairwiseExchange,
    /// `log₂ P` rounds, bandwidth-optimal; requires `P` a power of two
    /// (falls back to pairwise otherwise).
    RecursiveHalving,
    /// Binomial-tree reduce to rank 0 followed by a direct scatter:
    /// log-depth reduction but the root then sends `P − 1` messages and
    /// receives `O(w log P)` words — illustrating why naive tree
    /// composition does NOT achieve the §6 latency/bandwidth optimum.
    TreeThenScatter,
}

impl Comm {
    /// Reduce-scatter with the pairwise-exchange algorithm.
    ///
    /// `segments[q]` is this rank's *contribution* to the part of the
    /// result owned by rank `q`. Returns this rank's segment of the result:
    /// the element-wise sum over all ranks of their `segments[rank]`.
    /// All ranks must agree on the segment lengths.
    ///
    /// Cost (§3.2): `P − 1` messages, `Σ_{q≠rank} |segments[q]|` words sent
    /// and `(P − 1)·|segments[rank]|` additions — i.e. `(1 − 1/P)·w` words
    /// and flops when all segments have equal size `w/P`.
    ///
    /// ```
    /// use syrk_machine::Machine;
    /// let out = Machine::new(4).run(|comm| {
    ///     // Everyone contributes 1.0 to every rank's segment.
    ///     comm.reduce_scatter(vec![vec![1.0]; 4])[0]
    /// });
    /// assert!(out.results.iter().all(|&x| x == 4.0));
    /// ```
    pub fn reduce_scatter(&self, segments: Vec<Vec<f64>>) -> Vec<f64> {
        self.try_reduce_scatter(segments)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`reduce_scatter`](Comm::reduce_scatter): transport
    /// failures surface as [`MachineError`] instead of panicking.
    #[must_use = "the Result carries transport failures that must be handled"]
    pub fn try_reduce_scatter(
        &self,
        mut segments: Vec<Vec<f64>>,
    ) -> Result<Vec<f64>, MachineError> {
        crate::metrics::REDUCE_SCATTER.record(segments.iter().map(Vec::len).sum());
        let _span = self.collective_phase("coll:reduce-scatter");
        let p = self.size();
        let me = self.rank();
        assert_eq!(
            segments.len(),
            p,
            "reduce_scatter needs one segment per rank"
        );
        self.note_buffer(segments.iter().map(Vec::len).sum());
        let mut acc = std::mem::take(&mut segments[me]);
        for step in 1..p {
            let dst = (me + step) % p;
            let src = (me + p - step) % p;
            let out = std::mem::take(&mut segments[dst]);
            let inc: Vec<f64> = self.try_exchange(dst, out, src, TAG_REDUCE_SCATTER)?;
            assert_eq!(
                inc.len(),
                acc.len(),
                "reduce_scatter: rank {src} disagrees on the length of rank {me}'s segment"
            );
            for (a, b) in acc.iter_mut().zip(&inc) {
                *a += b;
            }
            self.add_flops(acc.len() as u64);
        }
        Ok(acc)
    }

    /// Reduce-scatter with an explicit algorithm choice.
    pub fn reduce_scatter_with(&self, segments: Vec<Vec<f64>>, alg: ReduceScatterAlg) -> Vec<f64> {
        self.try_reduce_scatter_with(segments, alg)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`reduce_scatter_with`](Comm::reduce_scatter_with).
    #[must_use = "the Result carries transport failures that must be handled"]
    pub fn try_reduce_scatter_with(
        &self,
        segments: Vec<Vec<f64>>,
        alg: ReduceScatterAlg,
    ) -> Result<Vec<f64>, MachineError> {
        let _span = self.collective_phase("coll:reduce-scatter");
        match alg {
            ReduceScatterAlg::PairwiseExchange => self.try_reduce_scatter(segments),
            ReduceScatterAlg::RecursiveHalving => {
                if self.size().is_power_of_two() {
                    self.rs_recursive_halving(segments)
                } else {
                    self.try_reduce_scatter(segments)
                }
            }
            ReduceScatterAlg::TreeThenScatter => self.rs_tree_then_scatter(segments),
        }
    }

    /// Recursive halving: `log₂ P` rounds. In round `r` the group splits
    /// in half; each rank ships its partial sums for the *other* half's
    /// segments to its mirror partner and accumulates the incoming ones.
    fn rs_recursive_halving(&self, segments: Vec<Vec<f64>>) -> Result<Vec<f64>, MachineError> {
        crate::metrics::REDUCE_SCATTER.record(segments.iter().map(Vec::len).sum());
        let p = self.size();
        let me = self.rank();
        assert!(p.is_power_of_two());
        assert_eq!(segments.len(), p);
        self.note_buffer(segments.iter().map(Vec::len).sum());
        // acc[q] = my current partial sum of rank q's segment, for q in
        // the still-active range [lo, lo + span).
        let mut acc = segments;
        let mut lo = 0usize;
        let mut span = p;
        while span > 1 {
            let half = span / 2;
            let in_low = me < lo + half;
            let partner = if in_low { me + half } else { me - half };
            // Send the half that partner's side owns; keep mine.
            let (keep_lo, send_lo) = if in_low {
                (lo, lo + half)
            } else {
                (lo + half, lo)
            };
            let mut out = Vec::new();
            for seg in &acc[send_lo..send_lo + half] {
                out.extend_from_slice(seg);
            }
            let inc: Vec<f64> = self.try_exchange(partner, out, partner, TAG_REDUCE_SCATTER)?;
            let mut off = 0;
            for seg in &mut acc[keep_lo..keep_lo + half] {
                let len = seg.len();
                assert!(
                    inc.len() >= off + len,
                    "recursive halving: partner disagrees on segment sizes"
                );
                for (a, b) in seg.iter_mut().zip(&inc[off..off + len]) {
                    *a += b;
                }
                off += len;
                self.add_flops(len as u64);
            }
            assert_eq!(off, inc.len(), "recursive halving: length mismatch");
            lo = keep_lo;
            span = half;
        }
        Ok(std::mem::take(&mut acc[me]))
    }

    /// Binomial reduce of the concatenated buffer to rank 0, then a
    /// direct scatter of the reduced segments.
    fn rs_tree_then_scatter(&self, segments: Vec<Vec<f64>>) -> Result<Vec<f64>, MachineError> {
        crate::metrics::REDUCE_SCATTER.record(segments.iter().map(Vec::len).sum());
        let p = self.size();
        assert_eq!(segments.len(), p);
        let lens: Vec<usize> = segments.iter().map(Vec::len).collect();
        let flat: Vec<f64> = segments.into_iter().flatten().collect();
        self.note_buffer(flat.len());
        let reduced = self.try_reduce(0, &flat)?;
        let blocks = reduced.map(|r| {
            let mut out = Vec::with_capacity(p);
            let mut off = 0;
            for &l in &lens {
                out.push(r[off..off + l].to_vec());
                off += l;
            }
            out
        });
        self.try_scatter(0, blocks)
    }

    /// Reduce-scatter over a contiguous buffer split into `counts[q]`-sized
    /// segments (an `MPI_Reduce_scatter`-style interface). Returns this
    /// rank's reduced segment of length `counts[rank]`.
    pub fn reduce_scatter_block(&self, data: &[f64], counts: &[usize]) -> Vec<f64> {
        self.try_reduce_scatter_block(data, counts)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`reduce_scatter_block`](Comm::reduce_scatter_block).
    #[must_use = "the Result carries transport failures that must be handled"]
    pub fn try_reduce_scatter_block(
        &self,
        data: &[f64],
        counts: &[usize],
    ) -> Result<Vec<f64>, MachineError> {
        let p = self.size();
        assert_eq!(counts.len(), p);
        assert_eq!(
            data.len(),
            counts.iter().sum::<usize>(),
            "counts must tile the buffer"
        );
        let mut segments = Vec::with_capacity(p);
        let mut off = 0;
        for &c in counts {
            segments.push(data[off..off + c].to_vec());
            off += c;
        }
        self.try_reduce_scatter(segments)
    }
}

#[cfg(test)]
mod tests {
    use crate::machine::Machine;

    #[test]
    fn reduce_scatter_sums_contributions() {
        for p in [1, 2, 3, 5, 8] {
            let out = Machine::new(p).run(|comm| {
                let me = comm.rank();
                // Contribution to rank q's segment: [me + q, 10*me].
                let segments: Vec<Vec<f64>> = (0..p)
                    .map(|q| vec![(me + q) as f64, (10 * me) as f64])
                    .collect();
                comm.reduce_scatter(segments)
            });
            let rank_sum: usize = (0..p).sum();
            for (q, seg) in out.results.iter().enumerate() {
                // Σ_me (me + q) = rank_sum + P·q ; Σ_me 10·me = 10·rank_sum.
                assert_eq!(seg[0], (rank_sum + p * q) as f64, "P={p} rank {q}");
                assert_eq!(seg[1], (10 * rank_sum) as f64);
            }
        }
    }

    #[test]
    fn cost_matches_paper_formula() {
        // With w total words per rank split evenly, bandwidth is
        // (1 − 1/P)·w words and (1 − 1/P)·w additions (§3.2).
        let (p, seg) = (5, 12);
        let out = Machine::new(p).run(|comm| {
            comm.reduce_scatter(vec![vec![1.0; seg]; p]);
        });
        let w = (p * seg) as u64;
        for r in &out.cost.ranks {
            assert_eq!(r.words_sent, w - seg as u64); // (1 - 1/P)·w
            assert_eq!(r.msgs_sent, (p - 1) as u64);
            assert_eq!(r.flops, w - seg as u64);
        }
    }

    #[test]
    fn block_interface_respects_counts() {
        let p = 4;
        let out = Machine::new(p).run(|comm| {
            let counts = vec![1, 2, 3, 4];
            let data: Vec<f64> = (0..10).map(|i| i as f64).collect();
            comm.reduce_scatter_block(&data, &counts)
        });
        // Every rank contributed the same buffer, so rank q's segment is
        // P × the q-th slice of 0..10.
        assert_eq!(out.results[0], vec![0.0 * 4.0]);
        assert_eq!(out.results[1], vec![4.0, 8.0]);
        assert_eq!(out.results[2], vec![12.0, 16.0, 20.0]);
        assert_eq!(out.results[3], vec![24.0, 28.0, 32.0, 36.0]);
    }

    #[test]
    fn empty_segments_are_fine() {
        let p = 3;
        let out = Machine::new(p).run(|comm| {
            let segments: Vec<Vec<f64>> = (0..p)
                .map(|q| if q == 1 { vec![2.0] } else { vec![] })
                .collect();
            comm.reduce_scatter(segments)
        });
        assert!(out.results[0].is_empty());
        assert_eq!(out.results[1], vec![6.0]);
        assert!(out.results[2].is_empty());
    }

    #[test]
    #[should_panic(expected = "disagrees on the length")]
    fn mismatched_segment_lengths_panic() {
        Machine::new(2).run(|comm| {
            let segments = if comm.rank() == 0 {
                vec![vec![1.0], vec![1.0]]
            } else {
                vec![vec![1.0, 2.0], vec![1.0]]
            };
            comm.reduce_scatter(segments);
        });
    }

    #[test]
    fn recursive_halving_matches_pairwise() {
        use super::ReduceScatterAlg;
        for p in [2usize, 4, 8, 16] {
            let run = |alg| {
                Machine::new(p)
                    .run(move |comm| {
                        let me = comm.rank();
                        let segments: Vec<Vec<f64>> =
                            (0..p).map(|q| vec![(me * p + q) as f64, 1.0]).collect();
                        comm.reduce_scatter_with(segments, alg)
                    })
                    .results
            };
            let pw = run(ReduceScatterAlg::PairwiseExchange);
            let rh = run(ReduceScatterAlg::RecursiveHalving);
            assert_eq!(pw, rh, "P={p}");
        }
    }

    #[test]
    fn recursive_halving_is_log_latency_same_bandwidth() {
        use super::ReduceScatterAlg;
        let (p, seg) = (8usize, 32usize);
        let run = |alg| {
            Machine::new(p)
                .run(move |comm| {
                    comm.reduce_scatter_with(vec![vec![1.0; seg]; p], alg);
                })
                .cost
        };
        let pw = run(ReduceScatterAlg::PairwiseExchange);
        let rh = run(ReduceScatterAlg::RecursiveHalving);
        assert_eq!(pw.max_messages(), (p - 1) as u64);
        assert_eq!(rh.max_messages(), 3); // log2(8)
                                          // Identical bandwidth: (1 - 1/P) * w.
        assert_eq!(rh.max_words_sent(), pw.max_words_sent());
    }

    #[test]
    fn tree_then_scatter_correct_any_p() {
        use super::ReduceScatterAlg;
        for p in [1usize, 3, 5, 8] {
            let out = Machine::new(p).run(move |comm| {
                let me = comm.rank();
                let segments: Vec<Vec<f64>> = (0..p).map(|q| vec![(me + q) as f64]).collect();
                comm.reduce_scatter_with(segments, ReduceScatterAlg::TreeThenScatter)
            });
            let rank_sum: usize = (0..p).sum();
            for (q, seg) in out.results.iter().enumerate() {
                assert_eq!(seg[0], (rank_sum + p * q) as f64, "P={p} q={q}");
            }
        }
    }

    #[test]
    fn tree_then_scatter_pays_bandwidth_for_latency() {
        use super::ReduceScatterAlg;
        let (p, seg) = (8usize, 64usize);
        let run = |alg| {
            Machine::new(p)
                .run(move |comm| {
                    comm.reduce_scatter_with(vec![vec![1.0; seg]; p], alg);
                })
                .cost
        };
        let pw = run(ReduceScatterAlg::PairwiseExchange);
        let tr = run(ReduceScatterAlg::TreeThenScatter);
        // Latency bounded by 2 log P at any single rank...
        assert!(tr.max_messages() <= 2 * 3 + 1);
        // ...but the root receives ~w log P and sends ~w: more total words.
        assert!(tr.max_words_total() > pw.max_words_total());
    }
}
