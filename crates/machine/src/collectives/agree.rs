//! Fault-tolerant agreement on the set of failed ranks.
//!
//! After a rank crash the survivors of a run must converge on *who*
//! died before the world can be shrunk and the computation replanned.
//! [`Comm::try_agree_on_failures`] models the two-step protocol a real
//! fault-tolerant runtime (ULFM-style `MPI_Comm_agree`) performs:
//!
//! 1. **detection** — each survivor probes its suspect links with
//!    heartbeats and charges the timeout window it waits before
//!    declaring the peer dead (`recover:detect`), and
//! 2. **agreement** — survivors exchange their suspect lists pairwise
//!    until every survivor holds the union (`recover:agree`).
//!
//! On a healthy fabric the agreement round is a *real* pairwise
//! all-gather of suspect ids over the simulated network. Once the world
//! has aborted (a crash already fired), the fabric is poisoned — any
//! blocking receive would observe the abort — so the exchange is
//! charged arithmetically instead, standing in for the out-of-band
//! control plane a real runtime falls back to. Both branches charge the
//! same pairwise-exchange cost shape and are deterministic, so threaded
//! and event engines agree bitwise on recovery outcomes.

use crate::collectives::TAG_AGREE;
use crate::comm::{Comm, HEARTBEAT_TIMEOUT_PROBES, RECOVER_AGREE_PHASE, RECOVER_DETECT_PHASE};
use crate::error::MachineError;

impl Comm {
    /// Agree with the other members of this communicator on the set of
    /// failed ranks.
    ///
    /// `local_suspects` are failure ids this rank suspects on its own
    /// (they may name ranks of a *previous, larger* world during a
    /// shrink-and-replan recovery, so they are not bounds-checked
    /// against this communicator). The crash registry of the current
    /// world — ranks actually killed by the fault plan — is always
    /// merged in. Returns the agreed, sorted, deduplicated union held
    /// by every caller.
    ///
    /// Detection and agreement costs are charged under the
    /// `recover:detect` / `recover:agree` phases regardless of any open
    /// caller phase, mirroring how `retry:*` traffic is isolated.
    /// Collective in the SPMD sense: every live member must call it.
    #[must_use = "the Result carries the agreed failure set or a transport failure"]
    pub fn try_agree_on_failures(
        &self,
        local_suspects: &[usize],
    ) -> Result<Vec<usize>, MachineError> {
        crate::metrics::AGREE.record(local_suspects.len());
        let p = self.size();
        let mut suspects: Vec<usize> = local_suspects.to_vec();
        suspects.extend(self.crashed_in_group());
        suspects.sort_unstable();
        suspects.dedup();

        // Detection: one unanswered heartbeat probe per suspect link,
        // plus the timeout window waited before declaring it dead.
        if !suspects.is_empty() {
            self.push_phase(RECOVER_DETECT_PHASE);
            for _ in &suspects {
                self.with_cost(|c, m| {
                    c.on_send(1, m);
                    c.clock += HEARTBEAT_TIMEOUT_PROBES as f64 * m.message(1);
                });
            }
            self.pop_phase();
        }

        // Agreement: pairwise exchange of suspect lists.
        self.push_phase(RECOVER_AGREE_PHASE);
        let result = if self.world_aborted() {
            // The fabric is poisoned by the abort: charge the exchange
            // arithmetically among the survivors (the out-of-band
            // control plane), never touching the dead network. The
            // registry already holds every crash, so the union is known.
            let w = suspects.len().max(1);
            let dead_here = suspects.iter().filter(|&&s| s < p).count();
            let live = p.saturating_sub(dead_here).max(1);
            self.with_cost(|c, m| {
                for _ in 1..live {
                    c.on_exchange(w, w, 0.0, m);
                }
            });
            Ok(suspects)
        } else {
            self.exchange_suspects(suspects)
        };
        self.pop_phase();
        result
    }

    /// Healthy-fabric agreement round: a real pairwise all-gather of
    /// suspect ids over the network, unioned at each member.
    fn exchange_suspects(&self, suspects: Vec<usize>) -> Result<Vec<usize>, MachineError> {
        let p = self.size();
        let me = self.rank();
        let mine: Vec<u64> = suspects.iter().map(|&s| s as u64).collect();
        let mut agreed = suspects;
        for step in 1..p {
            let dst = (me + step) % p;
            let src = (me + p - step) % p;
            let theirs: Vec<u64> = self.try_exchange(dst, mine.clone(), src, TAG_AGREE)?;
            agreed.extend(theirs.iter().map(|&s| s as usize));
        }
        agreed.sort_unstable();
        agreed.dedup();
        Ok(agreed)
    }
}

#[cfg(test)]
mod tests {
    use crate::comm::{RECOVER_AGREE_PHASE, RECOVER_DETECT_PHASE};
    use crate::machine::Machine;

    #[test]
    fn healthy_world_agrees_on_union_of_suspects() {
        let p = 4usize;
        let out = Machine::new(p).run(|comm| {
            // Each rank suspects a different id; all must converge.
            let mine = [10 + comm.rank()];
            comm.try_agree_on_failures(&mine).unwrap()
        });
        for agreed in &out.results {
            assert_eq!(agreed, &vec![10, 11, 12, 13]);
        }
        // Detection probed one suspect per rank; agreement exchanged
        // P − 1 times per rank. Both isolated in recover:* phases.
        for r in 0..p {
            let det = out.cost.phase_cost(r, RECOVER_DETECT_PHASE).unwrap();
            assert_eq!(det.msgs_sent, 1);
            assert_eq!(det.words_sent, 1);
            let agr = out.cost.phase_cost(r, RECOVER_AGREE_PHASE).unwrap();
            assert_eq!(agr.msgs_sent as usize, p - 1);
        }
    }

    #[test]
    fn empty_suspicion_agrees_on_empty_set() {
        let out = Machine::new(3).run(|comm| comm.try_agree_on_failures(&[]).unwrap());
        for agreed in &out.results {
            assert!(agreed.is_empty());
        }
    }

    #[test]
    fn single_rank_agrees_with_itself() {
        let out = Machine::new(1).run(|comm| comm.try_agree_on_failures(&[7]).unwrap());
        assert_eq!(out.results[0], vec![7]);
    }
}
