//! All-Gather: every rank ends with every rank's block.

use crate::collectives::TAG_ALLGATHER;
use crate::comm::Comm;
use crate::error::MachineError;

impl Comm {
    /// All-gather with the pairwise-exchange algorithm.
    ///
    /// Returns `blocks[q]` = rank `q`'s `mine`. Cost: `P − 1` messages and
    /// `(P − 1)·|mine|` words sent per rank, which is bandwidth-optimal
    /// (`(1 − 1/P)·W` with `W = P·|mine|` the gathered size).
    pub fn all_gather(&self, mine: Vec<f64>) -> Vec<Vec<f64>> {
        self.try_all_gather(mine).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`all_gather`](Comm::all_gather): transport
    /// failures surface as [`MachineError`] instead of panicking.
    #[must_use = "the Result carries transport failures that must be handled"]
    pub fn try_all_gather(&self, mine: Vec<f64>) -> Result<Vec<Vec<f64>>, MachineError> {
        crate::metrics::ALL_GATHER.record(mine.len());
        let _span = self.collective_phase("coll:all-gather");
        let p = self.size();
        let me = self.rank();
        self.note_buffer(mine.len() * p);
        let mut blocks: Vec<Vec<f64>> = vec![Vec::new(); p];
        for step in 1..p {
            let dst = (me + step) % p;
            let src = (me + p - step) % p;
            blocks[src] = self.try_exchange(dst, mine.clone(), src, TAG_ALLGATHER)?;
        }
        blocks[me] = mine;
        Ok(blocks)
    }

    /// All-gather returning the concatenation of all blocks in rank order.
    pub fn all_gather_concat(&self, mine: Vec<f64>) -> Vec<f64> {
        self.try_all_gather_concat(mine)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`all_gather_concat`](Comm::all_gather_concat).
    #[must_use = "the Result carries transport failures that must be handled"]
    pub fn try_all_gather_concat(&self, mine: Vec<f64>) -> Result<Vec<f64>, MachineError> {
        Ok(self.try_all_gather(mine)?.into_iter().flatten().collect())
    }
}

#[cfg(test)]
mod tests {
    use crate::machine::Machine;

    #[test]
    fn all_gather_collects_every_block() {
        for p in [1, 2, 4, 7] {
            let out = Machine::new(p).run(|comm| {
                let mine = vec![comm.rank() as f64; 3];
                comm.all_gather(mine)
            });
            for blocks in &out.results {
                for (q, blk) in blocks.iter().enumerate() {
                    assert_eq!(blk, &vec![q as f64; 3], "P={p}");
                }
            }
        }
    }

    #[test]
    fn concat_orders_by_rank() {
        let out = Machine::new(3).run(|comm| comm.all_gather_concat(vec![comm.rank() as f64]));
        assert_eq!(out.results[1], vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn bandwidth_is_p_minus_1_blocks() {
        let (p, b) = (6, 11);
        let out = Machine::new(p).run(|comm| {
            comm.all_gather(vec![0.0; b]);
        });
        for r in &out.cost.ranks {
            assert_eq!(r.words_sent, ((p - 1) * b) as u64);
            assert_eq!(r.msgs_sent, (p - 1) as u64);
        }
    }

    #[test]
    fn blocks_may_have_different_sizes() {
        let out = Machine::new(4).run(|comm| {
            let mine = vec![1.0; comm.rank() + 1];
            comm.all_gather_concat(mine).len()
        });
        assert!(out.results.iter().all(|&n| n == 1 + 2 + 3 + 4));
    }
}
