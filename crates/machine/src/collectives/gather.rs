//! Gather and Scatter (rooted, direct point-to-point).

use crate::collectives::{TAG_GATHER, TAG_SCATTER};
use crate::comm::Comm;
use crate::error::MachineError;

impl Comm {
    /// Gather every rank's `mine` at `root`. Returns `Some(blocks)` on the
    /// root (indexed by rank) and `None` elsewhere. Blocks may differ in
    /// size. Direct algorithm: the root receives `P − 1` messages.
    pub fn gather(&self, root: usize, mine: Vec<f64>) -> Option<Vec<Vec<f64>>> {
        self.try_gather(root, mine)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`gather`](Comm::gather): transport failures
    /// surface as [`MachineError`] instead of panicking.
    #[must_use = "the Result carries transport failures that must be handled"]
    pub fn try_gather(
        &self,
        root: usize,
        mine: Vec<f64>,
    ) -> Result<Option<Vec<Vec<f64>>>, MachineError> {
        crate::metrics::GATHER.record(mine.len());
        let _span = self.collective_phase("coll:gather");
        let p = self.size();
        let me = self.rank();
        assert!(root < p, "gather root {root} out of range");
        if me == root {
            let mut blocks: Vec<Vec<f64>> = vec![Vec::new(); p];
            for src in (0..p).filter(|&s| s != root) {
                blocks[src] = self.try_recv(src, TAG_GATHER)?;
            }
            blocks[root] = mine;
            Ok(Some(blocks))
        } else {
            self.try_send(root, TAG_GATHER, mine)?;
            Ok(None)
        }
    }

    /// Scatter `blocks[q]` from `root` to each rank `q`. Only the root
    /// supplies `Some(blocks)`. Returns this rank's block.
    pub fn scatter(&self, root: usize, blocks: Option<Vec<Vec<f64>>>) -> Vec<f64> {
        self.try_scatter(root, blocks)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`scatter`](Comm::scatter).
    #[must_use = "the Result carries transport failures that must be handled"]
    pub fn try_scatter(
        &self,
        root: usize,
        blocks: Option<Vec<Vec<f64>>>,
    ) -> Result<Vec<f64>, MachineError> {
        crate::metrics::SCATTER.record(
            blocks
                .as_ref()
                .map_or(0, |bs| bs.iter().map(Vec::len).sum()),
        );
        let _span = self.collective_phase("coll:scatter");
        let p = self.size();
        let me = self.rank();
        assert!(root < p, "scatter root {root} out of range");
        if me == root {
            let mut blocks = blocks.expect("root must provide the scatter blocks");
            assert_eq!(blocks.len(), p, "scatter needs one block per rank");
            for dst in (0..p).filter(|&d| d != root) {
                self.try_send(dst, TAG_SCATTER, std::mem::take(&mut blocks[dst]))?;
            }
            Ok(std::mem::take(&mut blocks[root]))
        } else {
            self.try_recv(root, TAG_SCATTER)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::machine::Machine;

    #[test]
    fn gather_collects_blocks_at_root() {
        let p = 5;
        let root = 2;
        let out = Machine::new(p).run(|comm| {
            let mine = vec![comm.rank() as f64; comm.rank() + 1];
            comm.gather(root, mine)
        });
        for (r, res) in out.results.iter().enumerate() {
            if r == root {
                let blocks = res.as_ref().unwrap();
                for (q, blk) in blocks.iter().enumerate() {
                    assert_eq!(blk, &vec![q as f64; q + 1]);
                }
            } else {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn scatter_distributes_blocks() {
        let p = 4;
        let out = Machine::new(p).run(|comm| {
            let blocks = (comm.rank() == 0)
                .then(|| (0..p).map(|q| vec![q as f64 * 2.0]).collect::<Vec<_>>());
            comm.scatter(0, blocks)
        });
        for (q, blk) in out.results.iter().enumerate() {
            assert_eq!(blk, &vec![q as f64 * 2.0]);
        }
    }

    #[test]
    fn gather_then_scatter_roundtrip() {
        let p = 6;
        let out = Machine::new(p).run(|comm| {
            let mine = vec![comm.rank() as f64 + 0.5];
            let gathered = comm.gather(0, mine);
            comm.scatter(0, gathered)
        });
        for (q, blk) in out.results.iter().enumerate() {
            assert_eq!(blk, &vec![q as f64 + 0.5]);
        }
    }
}
