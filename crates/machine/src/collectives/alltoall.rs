//! All-to-All (personalized exchange).

use crate::collectives::{CollectiveAlg, TAG_ALLTOALL};
use crate::comm::Comm;
use crate::error::MachineError;

impl Comm {
    /// Personalized all-to-all with the pairwise-exchange algorithm.
    ///
    /// `blocks[q]` is the data this rank sends to rank `q` (blocks may have
    /// different sizes; `blocks[rank]` is kept locally for free). Returns
    /// `recv[q]` = the block rank `q` sent to this rank.
    ///
    /// Cost (§3.2): `P − 1` messages, `Σ_{q≠rank} |blocks[q]|` words sent —
    /// i.e. `(1 − 1/P)·w` when all blocks have equal size `w/P`.
    ///
    /// ```
    /// use syrk_machine::Machine;
    /// let out = Machine::new(3).run(|comm| {
    ///     let blocks: Vec<Vec<f64>> =
    ///         (0..3).map(|q| vec![(comm.rank() * 3 + q) as f64]).collect();
    ///     comm.all_to_all(blocks)[2][0] // what rank 2 sent me
    /// });
    /// assert_eq!(out.results[1], 7.0); // rank 2's block for rank 1
    /// ```
    pub fn all_to_all(&self, blocks: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        self.all_to_all_with(blocks, CollectiveAlg::PairwiseExchange)
    }

    /// All-to-all with an explicit algorithm choice.
    pub fn all_to_all_with(&self, blocks: Vec<Vec<f64>>, alg: CollectiveAlg) -> Vec<Vec<f64>> {
        self.try_all_to_all_with(blocks, alg)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`all_to_all`](Comm::all_to_all): transport
    /// failures surface as [`MachineError`] instead of panicking.
    #[must_use = "the Result carries transport failures that must be handled"]
    pub fn try_all_to_all(&self, blocks: Vec<Vec<f64>>) -> Result<Vec<Vec<f64>>, MachineError> {
        self.try_all_to_all_with(blocks, CollectiveAlg::PairwiseExchange)
    }

    /// Sparse personalized all-to-all (the `MPI_Alltoallv` shape): the
    /// caller also supplies `recv_words[q]`, the size of the block rank
    /// `q` is sending here. A pairwise step where *neither* direction
    /// moves data is skipped outright — no message, no latency charge —
    /// and a step with traffic in only one direction degrades to a plain
    /// send or receive instead of a duplex exchange. Word counts are
    /// identical to [`try_all_to_all`](Comm::try_all_to_all); only the
    /// zero-word messages the dense schedule ships purely for lockstep
    /// are elided, which is what makes 10⁴-rank sparse exchanges (most
    /// pairs share nothing) tractable on the event engine.
    ///
    /// Contract: `recv_words[q]` must equal `blocks[rank].len()` as rank
    /// `q` sees it — both sides agree on every pair's sizes, exactly as
    /// `MPI_Alltoallv` counts must. Disagreement strands one side waiting
    /// for a message that never comes: an exact deadlock diagnostic on
    /// the event engine, a watchdog timeout on threads.
    #[must_use = "the Result carries transport failures that must be handled"]
    pub fn try_all_to_all_v(
        &self,
        mut blocks: Vec<Vec<f64>>,
        recv_words: &[usize],
    ) -> Result<Vec<Vec<f64>>, MachineError> {
        crate::metrics::ALL_TO_ALL.record(blocks.iter().map(Vec::len).sum());
        let _span = self.collective_phase("coll:all-to-all");
        let p = self.size();
        let me = self.rank();
        assert_eq!(blocks.len(), p, "all_to_all needs one block per rank");
        assert_eq!(
            recv_words.len(),
            p,
            "all_to_all_v needs one expected size per rank"
        );
        self.note_buffer(blocks.iter().map(Vec::len).sum());
        let mut recv: Vec<Vec<f64>> = vec![Vec::new(); p];
        recv[me] = std::mem::take(&mut blocks[me]);
        for step in 1..p {
            let dst = (me + step) % p;
            let src = (me + p - step) % p;
            let out = std::mem::take(&mut blocks[dst]);
            match (out.is_empty(), recv_words[src] == 0) {
                (false, false) => recv[src] = self.try_exchange(dst, out, src, TAG_ALLTOALL)?,
                (false, true) => self.try_send(dst, TAG_ALLTOALL, out)?,
                (true, false) => recv[src] = self.try_recv(src, TAG_ALLTOALL)?,
                (true, true) => {}
            }
        }
        Ok(recv)
    }

    /// Sparse all-to-all over explicit partner lists — the form the 2D
    /// SYRK exchange uses at 10⁴⁺ ranks.
    ///
    /// [`try_all_to_all_v`](Comm::try_all_to_all_v) still takes dense
    /// `P`-length vectors, which costs every rank O(P) memory even when
    /// it talks to a handful of partners; machine-wide that is O(P²)
    /// bytes, and at 10⁴ ranks the resulting multi-GB working set turns
    /// every coroutine resume into a cache-cold stall. This form takes
    /// only the live traffic: `sends` is `(dst, payload)` per outgoing
    /// block (payloads must be non-empty, destinations distinct), and
    /// `recvs` is `(src, words)` per expected incoming block (sources
    /// distinct, `words > 0`). Returns the received blocks parallel to
    /// `recvs`.
    ///
    /// Messages are issued in the dense pairwise schedule's step order —
    /// at step `s` rank `r` sends to `(r + s) % P` and receives from
    /// `(r + P − s) % P` — so the simulated clocks, message counts, and
    /// word counts are *identical* to [`try_all_to_all_v`] with the same
    /// traffic scattered into dense vectors.
    ///
    /// Contract (as for `MPI_Alltoallv` counts): `recvs` must list
    /// exactly the `(src, len)` pairs matching what each `src` sends
    /// here. Disagreement strands a rank in a receive that can never
    /// match: an exact deadlock diagnostic on the event engine, a
    /// watchdog timeout on threads.
    #[must_use = "the Result carries transport failures that must be handled"]
    pub fn try_all_to_all_sparse(
        &self,
        mut sends: Vec<(usize, Vec<f64>)>,
        recvs: &[(usize, usize)],
    ) -> Result<Vec<Vec<f64>>, MachineError> {
        crate::metrics::ALL_TO_ALL.record(sends.iter().map(|(_, b)| b.len()).sum());
        let _span = self.collective_phase("coll:all-to-all");
        let p = self.size();
        let me = self.rank();
        self.note_buffer(sends.iter().map(|(_, b)| b.len()).sum());
        // Order both sides by pairwise step; merging the two sorted lists
        // then replays the dense schedule, skipping idle steps for free.
        let mut tx: Vec<(usize, usize)> = (0..sends.len())
            .map(|idx| {
                let (dst, ref payload) = sends[idx];
                assert!(
                    dst < p && dst != me,
                    "sparse all-to-all: bad destination {dst}"
                );
                assert!(
                    !payload.is_empty(),
                    "sparse all-to-all: empty payload for {dst}"
                );
                ((dst + p - me) % p, idx)
            })
            .collect();
        tx.sort_unstable();
        let mut rx: Vec<(usize, usize)> = (0..recvs.len())
            .map(|idx| {
                let (src, words) = recvs[idx];
                assert!(src < p && src != me, "sparse all-to-all: bad source {src}");
                assert!(words > 0, "sparse all-to-all: zero-word receive from {src}");
                ((me + p - src) % p, idx)
            })
            .collect();
        rx.sort_unstable();
        debug_assert!(
            tx.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate destination"
        );
        debug_assert!(rx.windows(2).all(|w| w[0].0 != w[1].0), "duplicate source");
        let mut out: Vec<Vec<f64>> = (0..recvs.len()).map(|_| Vec::new()).collect();
        let (mut ti, mut ri) = (0, 0);
        while ti < tx.len() || ri < rx.len() {
            let ts = tx.get(ti).map_or(usize::MAX, |&(s, _)| s);
            let rs = rx.get(ri).map_or(usize::MAX, |&(s, _)| s);
            if ts == rs {
                let (sidx, ridx) = (tx[ti].1, rx[ri].1);
                let payload = std::mem::take(&mut sends[sidx].1);
                out[ridx] =
                    self.try_exchange(sends[sidx].0, payload, recvs[ridx].0, TAG_ALLTOALL)?;
                ti += 1;
                ri += 1;
            } else if ts < rs {
                let sidx = tx[ti].1;
                let payload = std::mem::take(&mut sends[sidx].1);
                self.try_send(sends[sidx].0, TAG_ALLTOALL, payload)?;
                ti += 1;
            } else {
                let ridx = rx[ri].1;
                out[ridx] = self.try_recv(recvs[ridx].0, TAG_ALLTOALL)?;
                ri += 1;
            }
        }
        for (buf, &(src, words)) in out.iter().zip(recvs) {
            debug_assert_eq!(buf.len(), words, "block from {src} has the wrong length");
        }
        Ok(out)
    }

    /// Fallible form of [`all_to_all_with`](Comm::all_to_all_with).
    #[must_use = "the Result carries transport failures that must be handled"]
    pub fn try_all_to_all_with(
        &self,
        blocks: Vec<Vec<f64>>,
        alg: CollectiveAlg,
    ) -> Result<Vec<Vec<f64>>, MachineError> {
        crate::metrics::ALL_TO_ALL.record(blocks.iter().map(Vec::len).sum());
        let _span = self.collective_phase("coll:all-to-all");
        let p = self.size();
        assert_eq!(blocks.len(), p, "all_to_all needs one block per rank");
        self.note_buffer(blocks.iter().map(Vec::len).sum());
        match alg {
            CollectiveAlg::PairwiseExchange => self.a2a_pairwise(blocks),
            CollectiveAlg::Bruck => self.a2a_bruck(blocks),
        }
    }

    fn a2a_pairwise(&self, mut blocks: Vec<Vec<f64>>) -> Result<Vec<Vec<f64>>, MachineError> {
        let p = self.size();
        let me = self.rank();
        let mut recv: Vec<Vec<f64>> = vec![Vec::new(); p];
        recv[me] = std::mem::take(&mut blocks[me]);
        for step in 1..p {
            let dst = (me + step) % p;
            let src = (me + p - step) % p;
            let out = std::mem::take(&mut blocks[dst]);
            recv[src] = self.try_exchange(dst, out, src, TAG_ALLTOALL)?;
        }
        Ok(recv)
    }

    /// Bruck's algorithm: `⌈log₂ P⌉` rounds. Requires uniform block sizes.
    ///
    /// Round `k` (for each bit `k` of the rank distance) ships every block
    /// whose destination distance has bit `k` set, so each round moves up to
    /// `⌈P/2⌉` blocks: latency `O(log P)`, bandwidth `≈ (w/2)·log₂ P`
    /// (the factor-`(log P)/2` inflation discussed in §6).
    fn a2a_bruck(&self, blocks: Vec<Vec<f64>>) -> Result<Vec<Vec<f64>>, MachineError> {
        let p = self.size();
        let me = self.rank();
        let b = blocks.first().map(Vec::len).unwrap_or(0);
        assert!(
            blocks.iter().all(|blk| blk.len() == b),
            "Bruck all-to-all requires uniform block sizes"
        );
        if p == 1 {
            return Ok(blocks);
        }
        // Phase 1: local rotation — slot d holds the block for rank me+d.
        let mut slots: Vec<Vec<f64>> = (0..p).map(|d| blocks[(me + d) % p].clone()).collect();
        // Phase 2: log rounds over distance bits.
        let mut k = 1usize;
        while k < p {
            let dst = (me + k) % p; // ranks send k "forward"
            let src = (me + p - k) % p;
            let moving: Vec<usize> = (0..p).filter(|d| d & k != 0).collect();
            // Pack: header of slot indices is metadata (indices are implied
            // by the round on the receive side), so only data words count.
            let mut out = Vec::with_capacity(moving.len() * b);
            for &d in &moving {
                out.extend_from_slice(&slots[d]);
            }
            let inc: Vec<f64> = self.try_exchange(dst, out, src, TAG_ALLTOALL)?;
            for (i, &d) in moving.iter().enumerate() {
                slots[d].copy_from_slice(&inc[i * b..(i + 1) * b]);
            }
            k <<= 1;
        }
        // Phase 3: inverse rotation. After phase 2, slot d holds the block
        // *destined to me* that originated at rank me − d (mod p), with the
        // bits of d consumed in distance order. Undo the rotation.
        let mut recv = vec![Vec::new(); p];
        for (d, slot) in slots.into_iter().enumerate() {
            recv[(me + p - d) % p] = slot;
        }
        Ok(recv)
    }
}

#[cfg(test)]
mod tests {
    use crate::collectives::CollectiveAlg;
    use crate::machine::Machine;

    /// The canonical all-to-all check: rank r sends `[r*P + q]` to rank q;
    /// afterwards rank q holds `[r*P + q]` from every r.
    fn check_alltoall(p: usize, alg: CollectiveAlg) {
        let out = Machine::new(p).run(|comm| {
            let me = comm.rank();
            let blocks: Vec<Vec<f64>> = (0..p)
                .map(|q| vec![(me * p + q) as f64, 1000.0 + me as f64])
                .collect();
            let recv = comm.all_to_all_with(blocks, alg);
            for (r, blk) in recv.iter().enumerate() {
                assert_eq!(blk[0], (r * p + me) as f64, "P={p} rank {me} from {r}");
                assert_eq!(blk[1], 1000.0 + r as f64);
            }
            true
        });
        assert!(out.results.iter().all(|&ok| ok));
    }

    #[test]
    fn pairwise_correct_various_p() {
        for p in [1, 2, 3, 4, 5, 7, 8, 12] {
            check_alltoall(p, CollectiveAlg::PairwiseExchange);
        }
    }

    #[test]
    fn bruck_correct_various_p() {
        for p in [1, 2, 3, 4, 5, 6, 7, 8, 11, 16] {
            check_alltoall(p, CollectiveAlg::Bruck);
        }
    }

    #[test]
    fn pairwise_bandwidth_matches_model() {
        // Uniform blocks of size b: each rank sends (P-1)·b words in P-1
        // messages — the (1 − 1/P)·w cost from §3.2 with w = P·b.
        let (p, b) = (6, 10);
        let out = Machine::new(p).run(|comm| {
            let blocks = vec![vec![0.0; b]; p];
            comm.all_to_all(blocks);
        });
        for r in &out.cost.ranks {
            assert_eq!(r.words_sent, ((p - 1) * b) as u64);
            assert_eq!(r.msgs_sent, (p - 1) as u64);
        }
    }

    #[test]
    fn pairwise_supports_nonuniform_blocks() {
        let p = 4;
        let out = Machine::new(p).run(|comm| {
            let me = comm.rank();
            // Block for rank q has length q+1 and is filled with me.
            let blocks: Vec<Vec<f64>> = (0..p).map(|q| vec![me as f64; q + 1]).collect();
            let recv = comm.all_to_all(blocks);
            for (r, blk) in recv.iter().enumerate() {
                assert_eq!(blk.len(), me + 1);
                assert!(blk.iter().all(|&x| x == r as f64));
            }
            true
        });
        assert!(out.results.iter().all(|&ok| ok));
    }

    #[test]
    fn sparse_alltoallv_skips_empty_pairs() {
        // Ranks exchange only with their ring neighbors; every other pair
        // is zero-word in both directions and must cost no messages.
        let p = 6;
        let out = Machine::new(p).run(|comm| {
            let me = comm.rank();
            let (right, left) = ((me + 1) % p, (me + p - 1) % p);
            let mut blocks = vec![Vec::new(); p];
            blocks[right] = vec![me as f64; 3];
            blocks[left] = vec![me as f64; 3];
            let mut recv_words = vec![0usize; p];
            recv_words[right] = 3;
            recv_words[left] = 3;
            let recv = comm.try_all_to_all_v(blocks, &recv_words).unwrap();
            for (q, blk) in recv.iter().enumerate() {
                if q == right || q == left {
                    assert_eq!(blk, &vec![q as f64; 3], "rank {me} from {q}");
                } else if q != me {
                    assert!(blk.is_empty(), "rank {me} got data from non-neighbor {q}");
                }
            }
            true
        });
        for r in &out.cost.ranks {
            assert_eq!(r.msgs_sent, 2);
            assert_eq!(r.words_sent, 6);
        }
    }

    #[test]
    fn sparse_alltoallv_handles_one_directional_pairs() {
        // Rank r sends r+1 words to every higher rank only, so every pair
        // has traffic in exactly one direction — the exchange must
        // degrade to plain sends/receives without deadlocking.
        let p = 4;
        let out = Machine::new(p).run(|comm| {
            let me = comm.rank();
            let blocks: Vec<Vec<f64>> = (0..p)
                .map(|q| {
                    if q > me {
                        vec![me as f64; me + 1]
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            let recv_words: Vec<usize> = (0..p).map(|q| if q < me { q + 1 } else { 0 }).collect();
            let recv = comm.try_all_to_all_v(blocks, &recv_words).unwrap();
            for (q, blk) in recv.iter().enumerate() {
                if q < me {
                    assert_eq!(blk, &vec![q as f64; q + 1], "rank {me} from {q}");
                } else if q != me {
                    assert!(blk.is_empty());
                }
            }
            true
        });
        for (r, cost) in out.cost.ranks.iter().enumerate() {
            assert_eq!(cost.msgs_sent, (p - 1 - r) as u64, "rank {r}");
        }
    }

    #[test]
    fn sparse_alltoallv_matches_dense_when_full() {
        // With every block nonempty the sparse form is the dense pairwise
        // exchange: identical results, words, messages, and clocks.
        let (p, b) = (5, 3);
        let body = move |sparse: bool| {
            Machine::new(p).run(move |comm| {
                let me = comm.rank();
                let blocks: Vec<Vec<f64>> = (0..p).map(|q| vec![(me * p + q) as f64; b]).collect();
                let recv = if sparse {
                    let sizes = vec![b; p];
                    comm.try_all_to_all_v(blocks, &sizes).unwrap()
                } else {
                    comm.try_all_to_all(blocks).unwrap()
                };
                recv.iter().map(|blk| blk[0]).sum::<f64>()
            })
        };
        let dense = body(false);
        let sparse = body(true);
        assert_eq!(dense.results, sparse.results);
        for (d, s) in dense.cost.ranks.iter().zip(&sparse.cost.ranks) {
            assert_eq!(d.words_sent, s.words_sent);
            assert_eq!(d.msgs_sent, s.msgs_sent);
            assert_eq!(d.clock.to_bits(), s.clock.to_bits());
        }
    }

    #[test]
    fn sparse_list_form_matches_dense_v_exactly() {
        // An asymmetric pattern: rank r sends r%3+1 words to r+1 and r+2
        // (mod p), receives from r-1 and r-2. Driving it through the
        // dense-vector and partner-list forms must produce identical
        // payloads, costs, and clocks — the list form replays the same
        // pairwise schedule.
        let p = 7;
        let pattern = |me: usize| -> Vec<(usize, Vec<f64>)> {
            (1..=2)
                .map(|d| ((me + d) % p, vec![me as f64; me % 3 + 1]))
                .collect()
        };
        let dense = Machine::new(p).run(|comm| {
            let me = comm.rank();
            let mut blocks = vec![Vec::new(); p];
            for (dst, payload) in pattern(me) {
                blocks[dst] = payload;
            }
            let mut recv_words = vec![0usize; p];
            for d in 1..=2 {
                let src = (me + p - d) % p;
                recv_words[src] = src % 3 + 1;
            }
            let recv = comm.try_all_to_all_v(blocks, &recv_words).unwrap();
            (1..=2)
                .map(|d| recv[(me + p - d) % p].clone())
                .collect::<Vec<_>>()
        });
        let sparse = Machine::new(p).run(|comm| {
            let me = comm.rank();
            let recvs: Vec<(usize, usize)> = (1..=2)
                .map(|d| {
                    let src = (me + p - d) % p;
                    (src, src % 3 + 1)
                })
                .collect();
            comm.try_all_to_all_sparse(pattern(me), &recvs).unwrap()
        });
        assert_eq!(dense.results, sparse.results);
        for (d, s) in dense.cost.ranks.iter().zip(&sparse.cost.ranks) {
            assert_eq!(d.words_sent, s.words_sent);
            assert_eq!(d.msgs_sent, s.msgs_sent);
            assert_eq!(d.clock.to_bits(), s.clock.to_bits());
        }
    }

    #[test]
    fn bruck_fewer_messages_more_words() {
        let (p, b) = (16, 100);
        let run = |alg| {
            Machine::new(p)
                .run(move |comm| {
                    comm.all_to_all_with(vec![vec![0.0; b]; p], alg);
                })
                .cost
        };
        let pw = run(CollectiveAlg::PairwiseExchange);
        let bruck = run(CollectiveAlg::Bruck);
        assert!(bruck.max_messages() < pw.max_messages());
        assert!(bruck.max_words_sent() > pw.max_words_sent());
        // log2(16) = 4 rounds, each shipping P/2 = 8 blocks.
        assert_eq!(bruck.max_messages(), 4);
        assert_eq!(bruck.max_words_sent(), (4 * 8 * b) as u64);
    }
}
