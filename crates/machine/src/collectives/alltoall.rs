//! All-to-All (personalized exchange).

use crate::collectives::{CollectiveAlg, TAG_ALLTOALL};
use crate::comm::Comm;
use crate::error::MachineError;

impl Comm {
    /// Personalized all-to-all with the pairwise-exchange algorithm.
    ///
    /// `blocks[q]` is the data this rank sends to rank `q` (blocks may have
    /// different sizes; `blocks[rank]` is kept locally for free). Returns
    /// `recv[q]` = the block rank `q` sent to this rank.
    ///
    /// Cost (§3.2): `P − 1` messages, `Σ_{q≠rank} |blocks[q]|` words sent —
    /// i.e. `(1 − 1/P)·w` when all blocks have equal size `w/P`.
    ///
    /// ```
    /// use syrk_machine::Machine;
    /// let out = Machine::new(3).run(|comm| {
    ///     let blocks: Vec<Vec<f64>> =
    ///         (0..3).map(|q| vec![(comm.rank() * 3 + q) as f64]).collect();
    ///     comm.all_to_all(blocks)[2][0] // what rank 2 sent me
    /// });
    /// assert_eq!(out.results[1], 7.0); // rank 2's block for rank 1
    /// ```
    pub fn all_to_all(&self, blocks: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        self.all_to_all_with(blocks, CollectiveAlg::PairwiseExchange)
    }

    /// All-to-all with an explicit algorithm choice.
    pub fn all_to_all_with(&self, blocks: Vec<Vec<f64>>, alg: CollectiveAlg) -> Vec<Vec<f64>> {
        self.try_all_to_all_with(blocks, alg)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`all_to_all`](Comm::all_to_all): transport
    /// failures surface as [`MachineError`] instead of panicking.
    #[must_use = "the Result carries transport failures that must be handled"]
    pub fn try_all_to_all(&self, blocks: Vec<Vec<f64>>) -> Result<Vec<Vec<f64>>, MachineError> {
        self.try_all_to_all_with(blocks, CollectiveAlg::PairwiseExchange)
    }

    /// Fallible form of [`all_to_all_with`](Comm::all_to_all_with).
    #[must_use = "the Result carries transport failures that must be handled"]
    pub fn try_all_to_all_with(
        &self,
        blocks: Vec<Vec<f64>>,
        alg: CollectiveAlg,
    ) -> Result<Vec<Vec<f64>>, MachineError> {
        crate::metrics::ALL_TO_ALL.record(blocks.iter().map(Vec::len).sum());
        let _span = self.collective_phase("coll:all-to-all");
        let p = self.size();
        assert_eq!(blocks.len(), p, "all_to_all needs one block per rank");
        self.note_buffer(blocks.iter().map(Vec::len).sum());
        match alg {
            CollectiveAlg::PairwiseExchange => self.a2a_pairwise(blocks),
            CollectiveAlg::Bruck => self.a2a_bruck(blocks),
        }
    }

    fn a2a_pairwise(&self, mut blocks: Vec<Vec<f64>>) -> Result<Vec<Vec<f64>>, MachineError> {
        let p = self.size();
        let me = self.rank();
        let mut recv: Vec<Vec<f64>> = vec![Vec::new(); p];
        recv[me] = std::mem::take(&mut blocks[me]);
        for step in 1..p {
            let dst = (me + step) % p;
            let src = (me + p - step) % p;
            let out = std::mem::take(&mut blocks[dst]);
            recv[src] = self.try_exchange(dst, out, src, TAG_ALLTOALL)?;
        }
        Ok(recv)
    }

    /// Bruck's algorithm: `⌈log₂ P⌉` rounds. Requires uniform block sizes.
    ///
    /// Round `k` (for each bit `k` of the rank distance) ships every block
    /// whose destination distance has bit `k` set, so each round moves up to
    /// `⌈P/2⌉` blocks: latency `O(log P)`, bandwidth `≈ (w/2)·log₂ P`
    /// (the factor-`(log P)/2` inflation discussed in §6).
    fn a2a_bruck(&self, blocks: Vec<Vec<f64>>) -> Result<Vec<Vec<f64>>, MachineError> {
        let p = self.size();
        let me = self.rank();
        let b = blocks.first().map(Vec::len).unwrap_or(0);
        assert!(
            blocks.iter().all(|blk| blk.len() == b),
            "Bruck all-to-all requires uniform block sizes"
        );
        if p == 1 {
            return Ok(blocks);
        }
        // Phase 1: local rotation — slot d holds the block for rank me+d.
        let mut slots: Vec<Vec<f64>> = (0..p).map(|d| blocks[(me + d) % p].clone()).collect();
        // Phase 2: log rounds over distance bits.
        let mut k = 1usize;
        while k < p {
            let dst = (me + k) % p; // ranks send k "forward"
            let src = (me + p - k) % p;
            let moving: Vec<usize> = (0..p).filter(|d| d & k != 0).collect();
            // Pack: header of slot indices is metadata (indices are implied
            // by the round on the receive side), so only data words count.
            let mut out = Vec::with_capacity(moving.len() * b);
            for &d in &moving {
                out.extend_from_slice(&slots[d]);
            }
            let inc: Vec<f64> = self.try_exchange(dst, out, src, TAG_ALLTOALL)?;
            for (i, &d) in moving.iter().enumerate() {
                slots[d].copy_from_slice(&inc[i * b..(i + 1) * b]);
            }
            k <<= 1;
        }
        // Phase 3: inverse rotation. After phase 2, slot d holds the block
        // *destined to me* that originated at rank me − d (mod p), with the
        // bits of d consumed in distance order. Undo the rotation.
        let mut recv = vec![Vec::new(); p];
        for (d, slot) in slots.into_iter().enumerate() {
            recv[(me + p - d) % p] = slot;
        }
        Ok(recv)
    }
}

#[cfg(test)]
mod tests {
    use crate::collectives::CollectiveAlg;
    use crate::machine::Machine;

    /// The canonical all-to-all check: rank r sends `[r*P + q]` to rank q;
    /// afterwards rank q holds `[r*P + q]` from every r.
    fn check_alltoall(p: usize, alg: CollectiveAlg) {
        let out = Machine::new(p).run(|comm| {
            let me = comm.rank();
            let blocks: Vec<Vec<f64>> = (0..p)
                .map(|q| vec![(me * p + q) as f64, 1000.0 + me as f64])
                .collect();
            let recv = comm.all_to_all_with(blocks, alg);
            for (r, blk) in recv.iter().enumerate() {
                assert_eq!(blk[0], (r * p + me) as f64, "P={p} rank {me} from {r}");
                assert_eq!(blk[1], 1000.0 + r as f64);
            }
            true
        });
        assert!(out.results.iter().all(|&ok| ok));
    }

    #[test]
    fn pairwise_correct_various_p() {
        for p in [1, 2, 3, 4, 5, 7, 8, 12] {
            check_alltoall(p, CollectiveAlg::PairwiseExchange);
        }
    }

    #[test]
    fn bruck_correct_various_p() {
        for p in [1, 2, 3, 4, 5, 6, 7, 8, 11, 16] {
            check_alltoall(p, CollectiveAlg::Bruck);
        }
    }

    #[test]
    fn pairwise_bandwidth_matches_model() {
        // Uniform blocks of size b: each rank sends (P-1)·b words in P-1
        // messages — the (1 − 1/P)·w cost from §3.2 with w = P·b.
        let (p, b) = (6, 10);
        let out = Machine::new(p).run(|comm| {
            let blocks = vec![vec![0.0; b]; p];
            comm.all_to_all(blocks);
        });
        for r in &out.cost.ranks {
            assert_eq!(r.words_sent, ((p - 1) * b) as u64);
            assert_eq!(r.msgs_sent, (p - 1) as u64);
        }
    }

    #[test]
    fn pairwise_supports_nonuniform_blocks() {
        let p = 4;
        let out = Machine::new(p).run(|comm| {
            let me = comm.rank();
            // Block for rank q has length q+1 and is filled with me.
            let blocks: Vec<Vec<f64>> = (0..p).map(|q| vec![me as f64; q + 1]).collect();
            let recv = comm.all_to_all(blocks);
            for (r, blk) in recv.iter().enumerate() {
                assert_eq!(blk.len(), me + 1);
                assert!(blk.iter().all(|&x| x == r as f64));
            }
            true
        });
        assert!(out.results.iter().all(|&ok| ok));
    }

    #[test]
    fn bruck_fewer_messages_more_words() {
        let (p, b) = (16, 100);
        let run = |alg| {
            Machine::new(p)
                .run(move |comm| {
                    comm.all_to_all_with(vec![vec![0.0; b]; p], alg);
                })
                .cost
        };
        let pw = run(CollectiveAlg::PairwiseExchange);
        let bruck = run(CollectiveAlg::Bruck);
        assert!(bruck.max_messages() < pw.max_messages());
        assert!(bruck.max_words_sent() > pw.max_words_sent());
        // log2(16) = 4 rounds, each shipping P/2 = 8 blocks.
        assert_eq!(bruck.max_messages(), 4);
        assert_eq!(bruck.max_words_sent(), (4 * 8 * b) as u64);
    }
}
