//! Collective operations over a [`Comm`](crate::Comm).
//!
//! The paper's algorithms (§5) communicate exclusively through
//! `All-to-All` and `Reduce-Scatter`, assuming *pairwise exchange*
//! implementations (§3.2): on `P` processors both collectives cost
//! `P − 1` messages (latency) and `(1 − 1/P)·w` words (bandwidth), where
//! `w` is the per-processor data size before the collective.
//! `Reduce-Scatter` additionally performs `(1 − 1/P)·w` additions.
//!
//! All of those are implemented here, plus the latency-efficient variants
//! discussed in §6 (Bruck all-to-all, binomial trees) so the trade-off can
//! be measured (experiment E12).

mod agree;
mod allgather;
mod allreduce;
mod alltoall;
mod barrier;
mod bcast;
mod gather;
mod reduce;
mod reduce_scatter;

pub use reduce_scatter::ReduceScatterAlg;

/// Algorithm selector for collectives that have several implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollectiveAlg {
    /// Pairwise exchange: `P − 1` rounds, bandwidth-optimal `(1 − 1/P)·w`.
    /// This is the algorithm assumed throughout the paper's cost analysis.
    #[default]
    PairwiseExchange,
    /// Bruck's log-structured algorithm: `⌈log₂ P⌉` rounds, bandwidth
    /// inflated by a factor of about `(log₂ P)/2` for all-to-all.
    Bruck,
}

/// Reserved tag space for collectives so they never collide with
/// user point-to-point tags (which should stay below this value).
pub(crate) const COLL_TAG: u64 = 1 << 60;

pub(crate) const TAG_ALLTOALL: u64 = COLL_TAG + 1;
pub(crate) const TAG_REDUCE_SCATTER: u64 = COLL_TAG + 2;
pub(crate) const TAG_ALLGATHER: u64 = COLL_TAG + 3;
pub(crate) const TAG_BCAST: u64 = COLL_TAG + 4;
pub(crate) const TAG_REDUCE: u64 = COLL_TAG + 5;
pub(crate) const TAG_GATHER: u64 = COLL_TAG + 6;
pub(crate) const TAG_SCATTER: u64 = COLL_TAG + 7;
pub(crate) const TAG_BARRIER: u64 = COLL_TAG + 8;
pub(crate) const TAG_AGREE: u64 = COLL_TAG + 9;
