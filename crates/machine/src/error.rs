//! Structured errors for the simulated machine.
//!
//! The machine distinguishes *programmer errors* (mismatched collective
//! arguments, unbalanced phase pops, out-of-range ranks — these stay
//! panics, as in MPI debug builds) from *runtime failures* that a robust
//! caller may want to observe and handle: a crashed or panicked peer, a
//! deadlocked communication pattern, a receive that timed out, or a
//! payload whose type does not match the receive. The latter are
//! [`MachineError`]s, produced by the `try_*` APIs on
//! [`Comm`](crate::Comm) and [`Machine::try_run`](crate::Machine::try_run).

use std::fmt;

/// What a blocked rank was waiting for when a deadlock was declared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitEdge {
    /// World rank of the blocked processor.
    pub from: usize,
    /// World rank it is waiting to hear from.
    pub to: usize,
    /// Blocking operation: `"recv"`, `"exchange"`, or a collective name.
    pub op: &'static str,
    /// `(communicator id, user tag)` the receive is matching on.
    pub tag: (u64, u64),
    /// The innermost cost phase active on the blocked rank, if any.
    pub phase: Option<&'static str>,
}

impl fmt::Display for WaitEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rank {} waits on rank {} ({} tag {:?}",
            self.from, self.to, self.op, self.tag
        )?;
        if let Some(p) = self.phase {
            write!(f, ", phase {p:?}")?;
        }
        write!(f, ")")
    }
}

/// Wait-for-graph diagnostic produced by the deadlock watchdog: one edge
/// per blocked rank, plus the set of ranks that had already finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockInfo {
    /// One wait-for edge per rank that was blocked when the watchdog fired.
    pub edges: Vec<WaitEdge>,
    /// Ranks that had already returned from the SPMD closure.
    pub finished: Vec<usize>,
}

impl fmt::Display for DeadlockInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "deadlock: all {} live ranks blocked with no progress",
            self.edges.len()
        )?;
        for e in &self.edges {
            write!(f, "\n  {e}")?;
        }
        if !self.finished.is_empty() {
            write!(f, "\n  finished ranks: {:?}", self.finished)?;
        }
        Ok(())
    }
}

/// A runtime failure of a machine run, returned by the `try_*` APIs.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// Every live rank was blocked in a receive with no message in flight;
    /// the watchdog aborted the run instead of hanging.
    Deadlock(DeadlockInfo),
    /// A rank was killed by an injected crash fault
    /// (see [`FaultPlan::crash_rank`](crate::FaultPlan::crash_rank)).
    RankCrashed {
        /// World rank that crashed.
        rank: usize,
        /// Number of communication operations it completed first.
        after_ops: u64,
    },
    /// A rank's closure panicked; the payload's message is preserved.
    RankPanicked {
        /// World rank that panicked.
        rank: usize,
        /// Panic message, when it was a string payload.
        message: String,
    },
    /// A rank aborted because another rank had already failed; the first
    /// failure is reported separately (this is the cascade, not the cause).
    PeerFailed {
        /// World rank that observed the failure.
        rank: usize,
    },
    /// A blocking receive saw no matching message within the machine's
    /// timeout (the coarse fallback when the watchdog cannot fire, e.g.
    /// one rank is stuck in local compute).
    RecvTimeout {
        /// World rank whose receive timed out.
        rank: usize,
        /// World rank it was receiving from.
        src: usize,
        /// `(communicator id, user tag)` being matched.
        tag: (u64, u64),
    },
    /// A rank's output failed an algorithm-level checksum verification
    /// (ABFT): the run produced data, but the data is wrong. Unlike a
    /// crash this does not shrink the world — the same grid can retry.
    DataCorruption {
        /// World rank whose output failed verification.
        rank: usize,
        /// Human-readable description of the failed check (which block,
        /// which row, and the localized column when identifiable).
        detail: String,
    },
    /// The matched message's payload was not of the requested type.
    TypeMismatch {
        /// Group rank performing the receive.
        rank: usize,
        /// Group rank of the sender.
        src: usize,
        /// User tag of the message.
        tag: u64,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Deadlock(info) => write!(f, "{info}"),
            MachineError::RankCrashed { rank, after_ops } => {
                write!(
                    f,
                    "rank {rank}: injected crash after {after_ops} operations"
                )
            }
            MachineError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            MachineError::PeerFailed { rank } => {
                write!(f, "rank {rank}: aborted because another rank failed first")
            }
            MachineError::DataCorruption { rank, detail } => {
                write!(
                    f,
                    "rank {rank}: output failed checksum verification: {detail}"
                )
            }
            MachineError::RecvTimeout { rank, src, tag } => {
                write!(f, "rank {rank}: recv from {src} tag {tag:?} timed out")
            }
            MachineError::TypeMismatch { rank, src, tag } => {
                write!(
                    f,
                    "rank {rank}: type mismatch receiving from {src} tag {tag}"
                )
            }
        }
    }
}

impl std::error::Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlock_display_lists_edges() {
        let info = DeadlockInfo {
            edges: vec![
                WaitEdge {
                    from: 0,
                    to: 1,
                    op: "recv",
                    tag: (0, 7),
                    phase: Some("ring"),
                },
                WaitEdge {
                    from: 1,
                    to: 0,
                    op: "recv",
                    tag: (0, 8),
                    phase: None,
                },
            ],
            finished: vec![2],
        };
        let s = MachineError::Deadlock(info).to_string();
        assert!(s.contains("rank 0 waits on rank 1"));
        assert!(s.contains("rank 1 waits on rank 0"));
        assert!(s.contains("phase \"ring\""));
        assert!(s.contains("finished ranks: [2]"));
    }

    #[test]
    fn error_messages_name_the_rank() {
        let e = MachineError::RankCrashed {
            rank: 3,
            after_ops: 12,
        };
        assert_eq!(e.to_string(), "rank 3: injected crash after 12 operations");
        let e = MachineError::TypeMismatch {
            rank: 1,
            src: 0,
            tag: 9,
        };
        assert!(e.to_string().contains("type mismatch"));
    }
}
