//! Timeline exporters: render per-rank [`Timeline`]s for external viewers.
//!
//! [`chrome_trace_json`] emits the Chrome trace-event format (the JSON
//! array-of-events dialect understood by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev)). Each simulated rank becomes one
//! thread row; each traced event becomes a complete (`"ph": "X"`) slice
//! whose start is the rank's α-β-γ clock *before* the event and whose
//! duration is the clock advance the event caused — so waiting on a
//! slower peer shows up as a wide `Recv`/`Exchange` slice, exactly the
//! critical-path structure the cost model charges. Model time is scaled
//! by 10⁶ (the format's timestamps are in microseconds, so one model
//! time-unit renders as one second).
//!
//! [`timelines_csv`] is the flat CSV dump the `trace` binary has always
//! produced, kept alongside the JSON for grep/spreadsheet workflows.

use crate::trace::{Event, EventKind, Timeline};
use std::fmt::Write as _;
use syrk_telemetry::export::WALL_PID;
use syrk_telemetry::{wall_trace_events, FlightRecording};

/// Scale from model time to trace-event microseconds.
const TS_SCALE: f64 = 1e6;

fn kind_label(kind: EventKind) -> &'static str {
    match kind {
        EventKind::Send => "send",
        EventKind::Recv => "recv",
        EventKind::Exchange => "exchange",
        EventKind::Flops => "flops",
    }
}

/// Minimal JSON string escaping (the strings here are phase names and
/// labels, but escape control characters anyway to keep the output valid
/// for arbitrary names).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn push_event(out: &mut String, e: &Event, rank: usize, prev_clock: f64) {
    let name = e.phase.unwrap_or_else(|| kind_label(e.kind));
    let ts = prev_clock * TS_SCALE;
    let dur = ((e.clock - prev_clock) * TS_SCALE).max(0.0);
    let peer = if e.peer == usize::MAX {
        "null".to_string()
    } else {
        e.peer.to_string()
    };
    let phase = match e.phase {
        Some(p) => format!("\"{}\"", escape(p)),
        None => "null".to_string(),
    };
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{},\
         \"args\":{{\"amount\":{},\"peer\":{},\"phase\":{}}}}}",
        escape(name),
        kind_label(e.kind),
        ts,
        dur,
        rank,
        e.amount,
        peer,
        phase,
    );
}

/// Render per-rank timelines as a Chrome trace-event JSON document
/// (an object with a `traceEvents` array, loadable in Perfetto).
///
/// Per rank the document contains one `thread_name` metadata record plus
/// one complete event per traced [`Event`]; within a rank, `ts` values are
/// non-decreasing because the α-β-γ clock is monotone.
pub fn chrome_trace_json(traces: &[Timeline]) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (rank, timeline) in traces.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{rank},\
             \"args\":{{\"name\":\"rank {rank}\"}}}}"
        );
        let mut prev = 0.0f64;
        for e in timeline {
            out.push(',');
            push_event(&mut out, e, rank, prev);
            prev = prev.max(e.clock);
        }
    }
    out.push_str("]}");
    out
}

/// Render per-rank timelines *and* a wall-clock flight recording as one
/// Chrome trace-event JSON document.
///
/// The simulated α-β-γ timelines keep `pid 0` (named `simulated`); the
/// flight recorder's wall-clock rows appear as a second process,
/// `pid 1` (named `wall-clock`), one thread row per recorded worker.
/// The two processes use unrelated time bases — model time scaled to
/// seconds vs. real nanoseconds rebased to the first event — so viewers
/// show them as separate, independently-zoomable lanes. An empty
/// recording degrades to exactly [`chrome_trace_json`]'s output.
pub fn chrome_trace_json_with_wall(traces: &[Timeline], rec: &FlightRecording) -> String {
    let base = chrome_trace_json(traces);
    let wall = wall_trace_events(rec, WALL_PID);
    if wall.is_empty() {
        return base;
    }
    // Splice the wall rows in before the closing "]}" of the base doc.
    let mut out = base;
    let tail = out.len() - 2;
    debug_assert_eq!(&out[tail..], "]}");
    out.truncate(tail);
    if !traces.is_empty() {
        out.push(',');
    }
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{{\"name\":\"simulated\"}}}}"
    );
    for e in &wall {
        out.push(',');
        out.push_str(e);
    }
    out.push_str("]}");
    out
}

/// Render per-rank timelines as CSV with a header row
/// (`rank,kind,peer,amount,clock,phase`).
pub fn timelines_csv(traces: &[Timeline]) -> String {
    let mut out = String::from("rank,kind,peer,amount,clock,phase\n");
    for (rank, timeline) in traces.iter().enumerate() {
        for e in timeline {
            let _ = writeln!(out, "{rank},{}", e.to_csv_row());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, clock: f64, phase: Option<&'static str>) -> Event {
        Event {
            kind,
            peer: if kind == EventKind::Flops {
                usize::MAX
            } else {
                1
            },
            amount: 8,
            clock,
            phase,
        }
    }

    #[test]
    fn chrome_trace_has_metadata_and_slices() {
        let traces = vec![
            vec![
                ev(EventKind::Send, 8.0, Some("allgather-A")),
                ev(EventKind::Flops, 10.0, None),
            ],
            vec![ev(EventKind::Recv, 8.0, None)],
        ];
        let json = chrome_trace_json(&traces);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"rank 0\"") && json.contains("\"rank 1\""));
        assert!(json.contains("\"allgather-A\""));
        // Unphased events fall back to the kind label.
        assert!(json.contains("\"name\":\"flops\""));
        // Slice for the second rank-0 event starts at the first's clock.
        assert!(json.contains("\"ts\":8000000.000,\"dur\":2000000.000"));
        // flops events carry a null peer.
        assert!(json.contains("\"peer\":null"));
    }

    #[test]
    fn empty_timelines_are_valid() {
        let json = chrome_trace_json(&[]);
        assert_eq!(json, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
        let json = chrome_trace_json(&[vec![]]);
        assert!(json.contains("thread_name"));
    }

    #[test]
    fn csv_includes_header_and_rank_column() {
        let traces = vec![vec![ev(EventKind::Send, 8.0, Some("p"))], vec![]];
        let csv = timelines_csv(&traces);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("rank,kind,peer,amount,clock,phase"));
        assert_eq!(lines.next(), Some("0,Send,1,8,8.000000e0,p"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn csv_export_quotes_injected_phase() {
        let traces = vec![vec![ev(EventKind::Send, 8.0, Some("x,y\n0,Send,9,9,9,z"))]];
        let csv = timelines_csv(&traces);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("rank,kind,peer,amount,clock,phase"));
        // The hostile phase stays inside one quoted field: the first data
        // line opens the quote and the forged "row" is its continuation,
        // not a parseable record of its own.
        assert_eq!(lines.next(), Some("0,Send,1,8,8.000000e0,\"x,y"));
        assert_eq!(lines.next(), Some("0,Send,9,9,9,z\""));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn wall_merge_adds_second_process_row() {
        use syrk_telemetry::{FlightEvent, FlightKind};
        let traces = vec![vec![ev(EventKind::Send, 8.0, Some("p"))]];
        let rec = FlightRecording {
            events: vec![FlightEvent {
                tid: 0,
                kind: FlightKind::Task,
                start_ns: 1_000,
                end_ns: 3_000,
                arg: 7,
            }],
            dropped: 0,
        };
        let json = chrome_trace_json_with_wall(&traces, &rec);
        assert!(json.starts_with('{') && json.ends_with("]}"));
        assert!(json.contains("\"name\":\"simulated\""));
        assert!(json.contains("\"wall-clock\""));
        assert!(json.contains("\"pid\": 1"));
        assert!(json.contains("\"task\""));
        // No ",]" or "[,": the splice keeps the array well-formed.
        assert!(!json.contains(",]") && !json.contains("[,"));
    }

    #[test]
    fn wall_merge_with_empty_recording_is_identity() {
        let traces = vec![vec![ev(EventKind::Send, 8.0, None)]];
        let rec = FlightRecording {
            events: vec![],
            dropped: 0,
        };
        assert_eq!(
            chrome_trace_json_with_wall(&traces, &rec),
            chrome_trace_json(&traces)
        );
    }

    #[test]
    fn wall_merge_onto_empty_timelines() {
        use syrk_telemetry::{FlightEvent, FlightKind};
        let rec = FlightRecording {
            events: vec![FlightEvent {
                tid: 2,
                kind: FlightKind::Steal,
                start_ns: 5,
                end_ns: 5,
                arg: 1,
            }],
            dropped: 0,
        };
        let json = chrome_trace_json_with_wall(&[], &rec);
        assert!(json.contains("\"wall-clock\""));
        assert!(!json.contains(",]") && !json.contains("[,"));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
