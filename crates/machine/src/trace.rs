//! Optional communication-event tracing.
//!
//! When enabled on the [`Machine`](crate::Machine), every send, receive,
//! exchange, and flop batch is recorded with the rank's α-β-γ clock at
//! completion, producing a per-rank timeline that can be dumped for
//! inspection (the `trace` binary in `syrk-bench` renders one as CSV).

/// What happened in a traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A point-to-point (or collective-internal) send.
    Send,
    /// A point-to-point (or collective-internal) receive.
    Recv,
    /// A duplex exchange step (send + receive charged once).
    Exchange,
    /// A batch of local arithmetic.
    Flops,
}

/// One traced event on one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// The peer world rank (sends/recvs/exchanges) or `usize::MAX` for
    /// local work.
    pub peer: usize,
    /// Words moved (max of the two directions for an exchange) or flops
    /// performed.
    pub amount: u64,
    /// The rank's α-β-γ clock when the event completed.
    pub clock: f64,
    /// The innermost phase open when the event was recorded (see
    /// [`Comm::push_phase`](crate::Comm::push_phase)), or `None` when the
    /// rank was outside any span.
    pub phase: Option<&'static str>,
}

impl Event {
    /// CSV row (kind,peer,amount,clock,phase); `-` for no peer / no phase.
    pub fn to_csv_row(&self) -> String {
        let peer = if self.peer == usize::MAX {
            "-".to_string()
        } else {
            self.peer.to_string()
        };
        format!(
            "{:?},{peer},{},{:.6e},{}",
            self.kind,
            self.amount,
            self.clock,
            self.phase.unwrap_or("-")
        )
    }
}

/// A per-rank event log.
pub type Timeline = Vec<Event>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_row_formats() {
        let e = Event {
            kind: EventKind::Send,
            peer: 3,
            amount: 10,
            clock: 1.5,
            phase: Some("allgather-A"),
        };
        assert_eq!(e.to_csv_row(), "Send,3,10,1.500000e0,allgather-A");
        let f = Event {
            kind: EventKind::Flops,
            peer: usize::MAX,
            amount: 7,
            clock: 0.0,
            phase: None,
        };
        assert!(f.to_csv_row().starts_with("Flops,-,7,"));
        assert!(f.to_csv_row().ends_with(",-"));
    }
}
