//! Optional communication-event tracing.
//!
//! When enabled on the [`Machine`](crate::Machine), every send, receive,
//! exchange, and flop batch is recorded with the rank's α-β-γ clock at
//! completion, producing a per-rank timeline that can be dumped for
//! inspection (the `trace` binary in `syrk-bench` renders one as CSV).

/// What happened in a traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A point-to-point (or collective-internal) send.
    Send,
    /// A point-to-point (or collective-internal) receive.
    Recv,
    /// A duplex exchange step (send + receive charged once).
    Exchange,
    /// A batch of local arithmetic.
    Flops,
}

/// One traced event on one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// The peer world rank (sends/recvs/exchanges) or `usize::MAX` for
    /// local work.
    pub peer: usize,
    /// Words moved (max of the two directions for an exchange) or flops
    /// performed.
    pub amount: u64,
    /// The rank's α-β-γ clock when the event completed.
    pub clock: f64,
    /// The innermost phase open when the event was recorded (see
    /// [`Comm::push_phase`](crate::Comm::push_phase)), or `None` when the
    /// rank was outside any span.
    pub phase: Option<&'static str>,
}

/// Quote a CSV field per RFC 4180 only when it needs it: fields with a
/// comma, double quote, or line break get wrapped in quotes with embedded
/// quotes doubled; plain fields pass through unchanged so existing
/// consumers (and greps) see the same bytes as before.
pub(crate) fn csv_field(s: &str) -> String {
    if s.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

impl Event {
    /// CSV row (kind,peer,amount,clock,phase); `-` for no peer / no phase.
    /// The phase field — the only caller-supplied string — is quoted per
    /// RFC 4180 when it contains CSV metacharacters, so a phase name like
    /// `a,b` cannot smuggle extra columns into the dump.
    pub fn to_csv_row(&self) -> String {
        let peer = if self.peer == usize::MAX {
            "-".to_string()
        } else {
            self.peer.to_string()
        };
        format!(
            "{:?},{peer},{},{:.6e},{}",
            self.kind,
            self.amount,
            self.clock,
            csv_field(self.phase.unwrap_or("-"))
        )
    }
}

/// A per-rank event log.
pub type Timeline = Vec<Event>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_row_formats() {
        let e = Event {
            kind: EventKind::Send,
            peer: 3,
            amount: 10,
            clock: 1.5,
            phase: Some("allgather-A"),
        };
        assert_eq!(e.to_csv_row(), "Send,3,10,1.500000e0,allgather-A");
        let f = Event {
            kind: EventKind::Flops,
            peer: usize::MAX,
            amount: 7,
            clock: 0.0,
            phase: None,
        };
        assert!(f.to_csv_row().starts_with("Flops,-,7,"));
        assert!(f.to_csv_row().ends_with(",-"));
    }

    #[test]
    fn csv_row_quotes_hostile_phase_names() {
        // A phase name with CSV metacharacters must not add columns or
        // rows to the dump.
        let e = Event {
            kind: EventKind::Send,
            peer: 1,
            amount: 2,
            clock: 1.0,
            phase: Some("evil,\"инъекция\"\nrow"),
        };
        let row = e.to_csv_row();
        // Still exactly 5 columns: commas inside the quoted field don't
        // count as separators.
        assert_eq!(row, "Send,1,2,1.000000e0,\"evil,\"\"инъекция\"\"\nrow\"");
        assert_eq!(
            row.split(',').take(4).collect::<Vec<_>>(),
            ["Send", "1", "2", "1.000000e0"]
        );
    }

    #[test]
    fn csv_field_passes_plain_strings_through() {
        assert_eq!(csv_field("allgather-A"), "allgather-A");
        assert_eq!(csv_field("-"), "-");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
