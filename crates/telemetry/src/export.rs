//! Exporters: Prometheus text exposition, a JSON snapshot writer matching
//! the repo's hand-rolled JSON style, and Chrome trace-event rendering of
//! a flight recording.
//!
//! Everything returns `String`s built with `std::fmt::Write` — callers
//! decide where the bytes go (stdout, a file, an HTTP response). The
//! Chrome-trace renderers come in two shapes: [`wall_trace_events`]
//! yields the individual event objects so `machine`'s exporter can splice
//! a wall-clock process row into its simulated-timeline document, and
//! [`wall_trace_json`] wraps them into a standalone document.

use std::fmt::Write as _;

use crate::flight::{FlightEvent, FlightKind, FlightRecording};
use crate::registry::{bucket_bound, MetricValue, MetricsSnapshot, HISTOGRAM_BUCKETS};

/// Escape a string for embedding inside JSON double quotes.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a snapshot in the Prometheus text exposition format (one
/// `# TYPE` line per metric; histograms expand to cumulative
/// `_bucket{le=…}` series plus `_sum` and `_count`).
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.entries {
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Histogram {
                count,
                sum,
                buckets,
            } => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for (i, n) in buckets.iter().enumerate() {
                    cumulative += n;
                    if i + 1 == HISTOGRAM_BUCKETS {
                        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                    } else {
                        let _ = writeln!(
                            out,
                            "{name}_bucket{{le=\"{}\"}} {cumulative}",
                            bucket_bound(i)
                        );
                    }
                }
                let _ = writeln!(out, "{name}_sum {sum}");
                let _ = writeln!(out, "{name}_count {count}");
            }
        }
    }
    out
}

/// Render a snapshot as a JSON document:
/// `{"counters":{…},"gauges":{…},"histograms":{name:{"count":…,"sum":…,"buckets":[…]}}}`.
/// Histogram buckets are per-bucket (non-cumulative) counts; bucket `i`'s
/// upper bound is [`bucket_bound`]`(i)`.
pub fn snapshot_json(snap: &MetricsSnapshot) -> String {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for (name, value) in &snap.entries {
        let key = escape_json(name);
        match value {
            MetricValue::Counter(v) => counters.push(format!("\"{key}\": {v}")),
            MetricValue::Gauge(v) => gauges.push(format!("\"{key}\": {v}")),
            MetricValue::Histogram {
                count,
                sum,
                buckets,
            } => {
                let bs: Vec<String> = buckets.iter().map(|b| b.to_string()).collect();
                histograms.push(format!(
                    "\"{key}\": {{\"count\": {count}, \"sum\": {sum}, \"buckets\": [{}]}}",
                    bs.join(", ")
                ));
            }
        }
    }
    format!(
        "{{\n  \"counters\": {{{}}},\n  \"gauges\": {{{}}},\n  \"histograms\": {{{}}}\n}}\n",
        counters.join(", "),
        gauges.join(", "),
        histograms.join(", ")
    )
}

/// Microseconds (Chrome-trace `ts` unit) from a nanosecond offset.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

/// Render a flight recording as individual Chrome trace-event JSON
/// objects under process `pid`: process/thread `M` metadata rows, then
/// one `X` slice per span (instant events — `start_ns == end_ns` —
/// become `i` events). Timestamps are re-based to the recording's
/// earliest event so the wall row starts at ts 0 alongside a simulated
/// timeline. Returns one JSON object per line-item, ready to be joined
/// with `,` inside a `traceEvents` array.
pub fn wall_trace_events(rec: &FlightRecording, pid: u64) -> Vec<String> {
    let mut out = Vec::new();
    if rec.events.is_empty() {
        return out;
    }
    out.push(format!(
        "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \
         \"args\": {{\"name\": \"wall-clock\"}}}}"
    ));
    let base = rec.events.iter().map(|e| e.start_ns).min().unwrap_or(0);
    let mut tids: Vec<u64> = rec.events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in &tids {
        out.push(format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \
             \"args\": {{\"name\": \"wall thread {tid}\"}}}}"
        ));
    }
    for e in &rec.events {
        out.push(wall_event_json(e, pid, base));
    }
    out
}

fn wall_event_json(e: &FlightEvent, pid: u64, base: u64) -> String {
    let name = escape_json(e.kind.name());
    let ts = us(e.start_ns - base);
    let arg_key = match e.kind {
        FlightKind::Task => "chunk",
        FlightKind::Steal => "victim",
        FlightKind::PackPublish | FlightKind::PackWait => "block",
        FlightKind::RecvBlock => "src",
    };
    if e.end_ns == e.start_ns {
        format!(
            "{{\"name\": \"{name}\", \"ph\": \"i\", \"s\": \"t\", \"pid\": {pid}, \
             \"tid\": {tid}, \"ts\": {ts}, \"args\": {{\"{arg_key}\": {arg}}}}}",
            tid = e.tid,
            arg = e.arg
        )
    } else {
        format!(
            "{{\"name\": \"{name}\", \"ph\": \"X\", \"pid\": {pid}, \"tid\": {tid}, \
             \"ts\": {ts}, \"dur\": {dur}, \"args\": {{\"{arg_key}\": {arg}}}}}",
            tid = e.tid,
            dur = us(e.end_ns - e.start_ns),
            arg = e.arg
        )
    }
}

/// Process id used for the wall-clock row when merged next to a
/// simulated timeline (which renders as pid 0).
pub const WALL_PID: u64 = 1;

/// Render a flight recording as a standalone Chrome trace-event JSON
/// document (`{"traceEvents": […]}` under [`WALL_PID`]), loadable in
/// Perfetto / `chrome://tracing`.
pub fn wall_trace_json(rec: &FlightRecording) -> String {
    let events = wall_trace_events(rec, WALL_PID);
    let mut out = String::from("{\n  \"traceEvents\": [\n");
    for (i, e) in events.iter().enumerate() {
        let sep = if i + 1 == events.len() { "" } else { "," };
        let _ = writeln!(out, "    {e}{sep}");
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{self};

    #[test]
    fn prometheus_text_exposes_all_kinds() {
        registry::counter("test_export_ctr").add(3);
        registry::gauge("test_export_gauge").set(-4);
        let h = registry::histogram("test_export_hist");
        h.observe(1);
        h.observe(100);
        let text = prometheus_text(&registry::snapshot());
        assert!(text.contains("# TYPE test_export_ctr counter"));
        assert!(text.contains("test_export_ctr 3"));
        assert!(text.contains("# TYPE test_export_gauge gauge"));
        assert!(text.contains("test_export_gauge -4"));
        assert!(text.contains("# TYPE test_export_hist histogram"));
        assert!(text.contains("test_export_hist_bucket{le=\"1\"} 1"));
        assert!(text.contains("test_export_hist_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("test_export_hist_sum 101"));
        assert!(text.contains("test_export_hist_count 2"));
    }

    #[test]
    fn snapshot_json_has_three_sections() {
        registry::counter("test_export_json_ctr").add(1);
        let json = snapshot_json(&registry::snapshot());
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"gauges\""));
        assert!(json.contains("\"histograms\""));
        assert!(json.contains("\"test_export_json_ctr\": 1"));
    }

    #[test]
    fn wall_trace_renders_slices_and_metadata() {
        let rec = FlightRecording {
            events: vec![
                FlightEvent {
                    tid: 0,
                    kind: FlightKind::Task,
                    start_ns: 10_000,
                    end_ns: 30_000,
                    arg: 2,
                },
                FlightEvent {
                    tid: 1,
                    kind: FlightKind::Steal,
                    start_ns: 15_000,
                    end_ns: 15_000,
                    arg: 0,
                },
            ],
            dropped: 0,
        };
        let doc = wall_trace_json(&rec);
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"wall-clock\""));
        assert!(doc.contains("\"thread_name\""));
        // Task: X slice rebased to ts 0, dur 20 µs, chunk arg.
        assert!(doc.contains("\"name\": \"task\", \"ph\": \"X\""));
        assert!(doc.contains("\"ts\": 0.000, \"dur\": 20.000"));
        assert!(doc.contains("\"chunk\": 2"));
        // Steal: instant event.
        assert!(doc.contains("\"name\": \"steal\", \"ph\": \"i\""));
        // Empty recording renders no events.
        assert!(wall_trace_events(&FlightRecording::default(), 1).is_empty());
    }
}
