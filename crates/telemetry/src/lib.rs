//! # syrk-telemetry — process-wide metrics and a wall-clock flight recorder
//!
//! Every other layer of the workspace meters *simulated* quantities: the
//! machine's α-β-γ ledger charges model words and flops, the dense
//! engine's counters charge packed words and microkernel tiles. What was
//! missing is the **real** side — live counters a long-running process
//! can expose, wall-clock latency evidence, and an artifact to dump when
//! something goes wrong. This crate provides all three, with no
//! dependencies (the workspace builds on a bare toolchain):
//!
//! * a [`registry`] of atomic [`Counter`]s, [`Gauge`]s, and fixed-bucket
//!   log₂ [`Histogram`]s, registered by static name, snapshot-able at any
//!   time, with Prometheus text exposition and JSON exporters
//!   ([`export`]);
//! * a [`flight`] recorder: bounded per-thread ring buffers of
//!   wall-clock-timestamped spans (task execution, steals, pack
//!   publication, blocked receives), cheap enough to leave compiled in
//!   and toggle at runtime; and
//! * renderers that merge a flight recording into the Chrome trace-event
//!   format, so one Perfetto view shows real elapsed time next to the
//!   simulated α-β-γ timeline.
//!
//! The hot-path cost model: a disabled flight recorder is one relaxed
//! atomic load per site; an enabled one is two `Instant` reads and one
//! uncontended mutex push per recorded span. Counters are single relaxed
//! `fetch_add`s. Nothing here takes a lock that a kernel inner loop can
//! reach.
//!
//! ```
//! use syrk_telemetry::{LazyCounter, registry};
//!
//! static REQUESTS: LazyCounter = LazyCounter::new("doc_requests");
//! REQUESTS.inc();
//! let snap = registry::snapshot();
//! assert!(snap.counter("doc_requests").unwrap() >= 1);
//! ```

#![warn(missing_docs)]

pub mod export;
pub mod flight;
pub mod registry;

pub use export::{prometheus_text, snapshot_json, wall_trace_events, wall_trace_json};
pub use flight::{FlightEvent, FlightKind, FlightRecording};
pub use registry::{
    Counter, Gauge, Histogram, LazyCounter, LazyGauge, LazyHistogram, MetricValue, MetricsSnapshot,
};
