//! Wall-clock flight recorder: bounded per-thread rings of timestamped
//! spans.
//!
//! The recorder is compiled in everywhere but costs one relaxed atomic
//! load per site while disabled. When [`enable`]d, each recording thread
//! lazily registers a bounded ring buffer (capacity
//! [`RING_CAPACITY`] events; oldest events are evicted and counted, never
//! blocking the writer). Spans are paired at record time — the caller
//! reads [`now_ns`] before and after the region — so an event is a single
//! fixed-size struct and rendering never has to match begin/end pairs.
//!
//! Rings live in `Arc`s held by a global list, so a recording survives
//! the scoped worker threads that produced it: [`collect`] merges every
//! ring ever registered, sorted by start time.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events kept per thread before the oldest is evicted. 4096 events at
/// 40 bytes each bounds a ring at ~160 KiB; a 512×512 SYRK on 8 workers
/// records a few hundred events per worker, so eviction only bites on
/// long-running processes — where the newest events are the useful ones.
pub const RING_CAPACITY: usize = 4096;

/// What a recorded span measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlightKind {
    /// A work-stealing task executing (arg = chunk index).
    Task,
    /// A successful steal (instant; arg = victim worker).
    Steal,
    /// Packing and publishing a shared panel (arg = block index).
    PackPublish,
    /// Spinning for another worker's panel publication (arg = block index).
    PackWait,
    /// Blocked in a receive loop (arg = source rank).
    RecvBlock,
}

impl FlightKind {
    /// Stable display name (used as the Chrome-trace slice name).
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::Task => "task",
            FlightKind::Steal => "steal",
            FlightKind::PackPublish => "pack:publish",
            FlightKind::PackWait => "pack:wait",
            FlightKind::RecvBlock => "recv:block",
        }
    }
}

/// One recorded span. `start_ns`/`end_ns` are nanoseconds since the
/// process's recording epoch (first [`now_ns`] call); instant events have
/// `start_ns == end_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Recorder-assigned thread id (dense worker ids and machine ranks
    /// each map to distinct tids in registration order).
    pub tid: u64,
    /// What was measured.
    pub kind: FlightKind,
    /// Span start, ns since the recording epoch.
    pub start_ns: u64,
    /// Span end, ns since the recording epoch.
    pub end_ns: u64,
    /// Kind-specific payload (chunk index, victim worker, block, rank).
    pub arg: u64,
}

struct Ring {
    tid: u64,
    events: Mutex<VecDeque<FlightEvent>>,
    dropped: AtomicU64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static LOCAL_RING: Arc<Ring> = {
        let ring = Arc::new(Ring {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            events: Mutex::new(VecDeque::with_capacity(64)),
            dropped: AtomicU64::new(0),
        });
        rings().lock().unwrap_or_else(|e| e.into_inner()).push(ring.clone());
        ring
    };
}

/// Start recording. Idempotent; affects every thread.
pub fn enable() {
    epoch(); // pin the epoch before the first event
    ENABLED.store(true, Ordering::Release);
}

/// Stop recording (already-recorded events are kept until [`clear`]).
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether spans are currently being recorded. Call sites gate their
/// `now_ns` reads on this; it is the entire disabled-path cost.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Nanoseconds since the recording epoch (saturated to `u64`).
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Record a span on the calling thread's ring. No-op while disabled.
#[inline]
pub fn record(kind: FlightKind, start_ns: u64, end_ns: u64, arg: u64) {
    if !is_enabled() {
        return;
    }
    LOCAL_RING.with(|ring| {
        let ev = FlightEvent {
            tid: ring.tid,
            kind,
            start_ns,
            end_ns,
            arg,
        };
        let mut q = ring.events.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() >= RING_CAPACITY {
            q.pop_front();
            ring.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(ev);
    });
}

/// Record an instant event (`start == end == now`). No-op while disabled.
#[inline]
pub fn instant(kind: FlightKind, arg: u64) {
    if !is_enabled() {
        return;
    }
    let t = now_ns();
    record(kind, t, t, arg);
}

/// A merged capture of every ring: all surviving events sorted by start
/// time, plus how many were evicted to stay within [`RING_CAPACITY`].
#[derive(Debug, Clone, Default)]
pub struct FlightRecording {
    /// Surviving events, sorted by `(start_ns, tid)`.
    pub events: Vec<FlightEvent>,
    /// Events evicted from full rings (0 means the capture is complete).
    pub dropped: u64,
}

impl FlightRecording {
    /// Whether nothing was recorded (and nothing evicted).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.dropped == 0
    }

    /// Number of surviving events of `kind`.
    pub fn count(&self, kind: FlightKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }
}

/// Merge every ring (including rings of threads that have exited) into
/// one recording.
pub fn collect() -> FlightRecording {
    let rings = rings().lock().unwrap_or_else(|e| e.into_inner());
    let mut events = Vec::new();
    let mut dropped = 0u64;
    for ring in rings.iter() {
        dropped += ring.dropped.load(Ordering::Relaxed);
        let q = ring.events.lock().unwrap_or_else(|e| e.into_inner());
        events.extend(q.iter().copied());
    }
    drop(rings);
    events.sort_by_key(|e| (e.start_ns, e.tid));
    FlightRecording { events, dropped }
}

/// Discard all recorded events and eviction counts (rings stay
/// registered). Use between runs to scope a recording to one region.
pub fn clear() {
    let rings = rings().lock().unwrap_or_else(|e| e.into_inner());
    for ring in rings.iter() {
        ring.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        ring.dropped.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global state, so these tests share one
    // `#[test]` to avoid cross-test interference under the parallel
    // harness.
    #[test]
    fn record_collect_clear_roundtrip() {
        // Disabled recorder records nothing.
        disable();
        clear();
        instant(FlightKind::Steal, 1);
        assert!(collect().is_empty());

        // Enabled recorder captures spans from multiple threads.
        enable();
        let t0 = now_ns();
        instant(FlightKind::Steal, 7);
        record(FlightKind::Task, t0, now_ns(), 3);
        std::thread::spawn(|| {
            let s = now_ns();
            record(FlightKind::PackWait, s, now_ns(), 9);
        })
        .join()
        .unwrap();
        let rec = collect();
        assert_eq!(rec.count(FlightKind::Steal), 1);
        assert_eq!(rec.count(FlightKind::Task), 1);
        assert_eq!(rec.count(FlightKind::PackWait), 1);
        assert_eq!(rec.dropped, 0);
        // Events from the dead thread survive; tids differ.
        let wait = rec
            .events
            .iter()
            .find(|e| e.kind == FlightKind::PackWait)
            .unwrap();
        let task = rec
            .events
            .iter()
            .find(|e| e.kind == FlightKind::Task)
            .unwrap();
        assert_ne!(wait.tid, task.tid);
        assert_eq!(task.arg, 3);
        assert!(task.end_ns >= task.start_ns);
        // Sorted by start time.
        assert!(rec
            .events
            .windows(2)
            .all(|w| w[0].start_ns <= w[1].start_ns));

        // Ring is bounded: overflow evicts oldest and counts drops.
        clear();
        for i in 0..(RING_CAPACITY as u64 + 10) {
            instant(FlightKind::Steal, i);
        }
        let rec = collect();
        assert_eq!(rec.events.len(), RING_CAPACITY);
        assert_eq!(rec.dropped, 10);
        // Oldest were evicted: the smallest surviving arg is 10.
        assert_eq!(rec.events.iter().map(|e| e.arg).min(), Some(10));

        disable();
        clear();
        assert!(collect().is_empty());
    }
}
